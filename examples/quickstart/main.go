// Quickstart: build a small community network, compute exact betweenness
// centrality with APGRE, and compare against the serial Brandes baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A social-like graph: 5,000 members in 30 communities connected through
	// bridge members (articulation points), with 30% one-link accounts.
	g := repro.GenerateSocial(repro.SocialParams{
		N:           5000,
		AvgDeg:      6,
		Communities: 30,
		TopShare:    0.5,
		LeafFrac:    0.3,
		Seed:        42,
	})
	fmt.Printf("graph: %v\n", g)

	// How much of Brandes' work is redundant on this graph?
	red, err := repro.AnalyzeRedundancy(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redundancy: %.0f%% effective, %.0f%% partial, %.0f%% total\n",
		100*red.Effective, 100*red.Partial, 100*red.Total)

	// APGRE.
	start := time.Now()
	bc, err := repro.BetweennessCentrality(g, repro.Options{Algorithm: repro.AlgoAPGRE})
	if err != nil {
		log.Fatal(err)
	}
	apgreTime := time.Since(start)
	fmt.Printf("APGRE:  %v\n", apgreTime)

	// Serial Brandes for reference.
	start = time.Now()
	ref, err := repro.BetweennessCentrality(g, repro.Options{Algorithm: repro.AlgoSerial})
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(start)
	fmt.Printf("serial: %v (APGRE speedup %.2fx)\n", serialTime,
		serialTime.Seconds()/apgreTime.Seconds())

	// The scores are identical; show the most central members.
	fmt.Println("\ntop 10 brokers:")
	for i, vs := range repro.TopK(bc, 10) {
		fmt.Printf("%2d. vertex %-6d bc=%.0f (serial agrees: %v)\n",
			i+1, vs.Vertex, vs.Score, almostEqual(vs.Score, ref[vs.Vertex]))
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(1+a)
}
