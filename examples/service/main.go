// BC as a service: drive the bcd daemon end-to-end, in process. A social
// graph is generated and saved to disk, the server loads it asynchronously
// through its bounded worker pool, and then the example does what a
// monitoring client would do — query top-K centrality, mutate edges and
// watch whether the incremental engine absorbed each change locally or had
// to rebuild the decomposition, pull the articulation census, and scrape the
// Prometheus metrics.
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	// A graph worth serving: community-structured, articulation-rich.
	g := repro.GenerateSocial(repro.SocialParams{
		N: 2000, AvgDeg: 5, Communities: 20,
		TopShare: 0.4, LeafFrac: 0.3, Seed: 7,
	})
	dir, err := os.MkdirTemp("", "bcd-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "social.bin")
	if err := repro.SaveGraph(path, "bin", g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %v, saved to %s\n", g, path)

	// The daemon, in process: the same handler tree `go run ./cmd/bcd` binds
	// to a port, here mounted on an httptest listener.
	reg := server.NewRegistry(server.Config{Workers: 2})
	defer reg.Close()
	ts := httptest.NewServer(server.New(reg, log.New(io.Discard, "", 0)))
	defer ts.Close()

	// Load is asynchronous: POST answers 202 and the entry is polled.
	post(ts.URL+"/v1/graphs", map[string]any{"name": "social", "path": path})
	var info struct {
		State       string  `json:"state"`
		Verts       int     `json:"verts"`
		Edges       int64   `json:"edges"`
		BuildMs     float64 `json:"build_ms"`
		Error       string  `json:"error"`
		LocalUpd    int     `json:"local_updates"`
		FullRebuild int     `json:"full_rebuilds"`
	}
	for {
		get(ts.URL+"/v1/graphs/social", &info)
		if info.State == "failed" {
			log.Fatalf("load failed: %s", info.Error)
		}
		if info.State == "ready" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("loaded: %d vertices, %d edges, decomposition + BC in %.0f ms\n\n",
		info.Verts, info.Edges, info.BuildMs)

	// Who brokers this network?
	topK := func(banner string) {
		var bc struct {
			Top []struct {
				Vertex int32   `json:"vertex"`
				BC     float64 `json:"bc"`
			} `json:"top"`
		}
		get(ts.URL+"/v1/graphs/social/bc?top=5", &bc)
		fmt.Println(banner)
		for i, e := range bc.Top {
			fmt.Printf("  %d. vertex %-5d bc=%.0f\n", i+1, e.Vertex, e.BC)
		}
	}
	topK("top-5 betweenness:")

	// Mutate: each response reports whether the change was absorbed by
	// recomputing only the affected sub-graph ("local") or forced a fresh
	// decomposition ("rebuild").
	fmt.Println("\nedge stream:")
	for _, e := range [][2]int{{11, 17}, {100, 1900}, {42, 1337}} {
		var mut struct {
			Result string  `json:"result"`
			TookMs float64 `json:"took_ms"`
		}
		postInto(ts.URL+"/v1/graphs/social/edges",
			map[string]any{"from": e[0], "to": e[1]}, &mut)
		fmt.Printf("  insert (%d,%d): %-8s %.1f ms\n", e[0], e[1], mut.Result, mut.TookMs)
	}
	get(ts.URL+"/v1/graphs/social", &info)
	fmt.Printf("absorbed %d locally, %d via rebuild\n\n", info.LocalUpd, info.FullRebuild)
	topK("top-5 after mutations:")

	// The articulation census — same document `bcstats -json` prints.
	var census struct {
		ArticulationPoints int `json:"articulation_points"`
		Decomposition      struct {
			Subgraphs int   `json:"subgraphs"`
			Roots     int64 `json:"roots"`
		} `json:"decomposition"`
		Redundancy struct {
			Total float64 `json:"total"`
		} `json:"redundancy"`
	}
	get(ts.URL+"/v1/graphs/social/stats", &census)
	fmt.Printf("\ncensus: %d articulation points, %d sub-graphs, %d roots of %d, total redundancy %.0f%%\n",
		census.ArticulationPoints, census.Decomposition.Subgraphs,
		census.Decomposition.Roots, info.Verts, 100*census.Redundancy.Total)

	// And the operational view: a few lines of the Prometheus scrape.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\nmetrics excerpt:")
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "bcd_incremental_updates_total") ||
			strings.HasPrefix(line, "bcd_graphs_loaded") ||
			strings.HasPrefix(line, "bcd_load_jobs_total") {
			fmt.Println("  " + line)
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, url, out)
}

func post(url string, body any) { postInto(url, body, nil) }

func postInto(url string, body, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, url, out)
}

func decode(resp *http.Response, url string, out any) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 400 {
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			log.Fatalf("%s: %v", url, err)
		}
	}
}
