// Power-grid contingency analysis: the paper's citation [6] uses parallel
// betweenness centrality to rank grid components whose failure would be most
// disruptive. This example builds a transmission-grid-like network (regional
// meshes joined by few tie-lines), runs an N-1 contingency screen over the
// top-BC buses, and recomputes BC after the worst single failure to show how
// criticality shifts.
//
//	go run ./examples/powergrid
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := buildGrid()
	fmt.Printf("grid: %v\n", g)

	bc, err := repro.BetweennessCentrality(g, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	base := repro.TopK(bc, 8)
	fmt.Println("most critical buses (base case):")
	for i, vs := range base {
		fmt.Printf("%2d. bus %-5d criticality=%.0f\n", i+1, vs.Vertex, vs.Score)
	}

	// N-1 screen: drop each top bus, measure stranded pairs.
	fmt.Println("\nN-1 contingency screen:")
	worst, worstStranded := repro.V(-1), int64(-1)
	total := connectedPairs(g)
	for _, vs := range base {
		stranded := total - connectedPairs(dropVertex(g, vs.Vertex))
		fmt.Printf("  lose bus %-5d -> %6d island-stranded pairs\n", vs.Vertex, stranded)
		if stranded > worstStranded {
			worst, worstStranded = vs.Vertex, stranded
		}
	}

	// Post-contingency criticality: recompute on the degraded grid.
	g2 := dropVertex(g, worst)
	bc2, err := repro.BetweennessCentrality(g2, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter losing bus %d, criticality shifts to:\n", worst)
	for i, vs := range repro.TopK(bc2, 5) {
		if vs.Vertex == worst {
			continue
		}
		fmt.Printf("%2d. bus %-5d criticality=%.0f (was %.0f)\n",
			i+1, vs.Vertex, vs.Score, bc[vs.Vertex])
	}
}

// buildGrid makes 6 regional meshes (road-like lattices) joined in a ring by
// single tie-lines — tie-line endpoints are the articulation points APGRE
// exploits, and exactly the buses contingency analysis cares about.
func buildGrid() *repro.Graph {
	const regions = 6
	var edges []repro.Edge
	offset := repro.V(0)
	var anchors []repro.V
	for r := 0; r < regions; r++ {
		mesh := repro.GenerateRoad(repro.RoadParams{
			Rows: 14, Cols: 14, DeleteFrac: 0.15, SpurFrac: 0.05, SpurLen: 2,
			Seed: int64(100 + r),
		})
		for _, e := range mesh.Edges() {
			edges = append(edges, repro.Edge{From: e.From + offset, To: e.To + offset})
		}
		anchors = append(anchors, offset) // region's tie-line bus
		offset += repro.V(mesh.NumVertices())
	}
	for r := 0; r < regions; r++ {
		edges = append(edges, repro.Edge{From: anchors[r], To: anchors[(r+1)%regions]})
	}
	return repro.NewGraph(int(offset), edges, false)
}

func dropVertex(g *repro.Graph, x repro.V) *repro.Graph {
	var kept []repro.Edge
	for _, e := range g.Edges() {
		if e.From != x && e.To != x {
			kept = append(kept, e)
		}
	}
	return repro.NewGraph(g.NumVertices(), kept, false)
}

func connectedPairs(g *repro.Graph) int64 {
	n := g.NumVertices()
	seen := make([]bool, n)
	var pairs int64
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var size int64
		stack := []repro.V{repro.V(s)}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, v := range g.Out(u) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		pairs += size * (size - 1)
	}
	return pairs
}
