// Community detection with Girvan–Newman: the paper's motivating
// application [7]. Divisive clustering removes the highest edge-betweenness
// edge until modularity peaks; the exact edge-BC engine bundled with this
// library drives each iteration.
//
//	go run ./examples/communities
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A friendship network with five ground-truth circles joined by a few
	// cross-circle acquaintances.
	g := buildCircles(5, 14, 3)
	fmt.Printf("network: %v\n", g)

	// The bridges between circles carry the most shortest paths.
	fmt.Println("\nhighest-betweenness edges (likely inter-circle):")
	for i, es := range repro.EdgeBetweenness(g, 0)[:5] {
		fmt.Printf("%d. %d–%d  score=%.0f\n", i+1, es.Edge.From, es.Edge.To, es.Score)
	}

	res, err := repro.DetectCommunities(g, repro.CommunityOptions{MaxRemovals: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGirvan–Newman found %d communities (modularity %.3f) after removing %d edges\n",
		res.Communities, res.Modularity, len(res.Removed))

	sizes := map[int32]int{}
	for _, l := range res.Labels {
		sizes[l]++
	}
	for c, sz := range sizes {
		fmt.Printf("  community %d: %d members\n", c, sz)
	}

	// Compare against the ground truth labelling.
	truth := make([]int32, g.NumVertices())
	for v := range truth {
		truth[v] = int32(v / 14)
	}
	fmt.Printf("\nmodularity: detected %.3f vs ground truth %.3f\n",
		res.Modularity, repro.Modularity(g, truth))
}

// buildCircles makes k cliques of size s, then adds bridges cross-linking
// consecutive circles.
func buildCircles(k, s, bridges int) *repro.Graph {
	var edges []repro.Edge
	for c := 0; c < k; c++ {
		base := c * s
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				// Sparse circles: ring + chords, not full cliques.
				if v == u+1 || (u+v)%4 == 0 {
					edges = append(edges, repro.Edge{From: repro.V(base + u), To: repro.V(base + v)})
				}
			}
		}
		if c+1 < k {
			for b := 0; b < bridges; b++ {
				edges = append(edges, repro.Edge{
					From: repro.V(base + b),
					To:   repro.V(base + s + b*2),
				})
			}
		}
	}
	return repro.NewGraph(k*s, edges, false)
}
