// Social-network analysis: find the broker accounts that hold a community
// network together — the §1 use case of identifying key actors — and show
// how removing the top broker fragments the network.
//
// The example exercises the decomposition API directly: brokers found by BC
// overwhelmingly turn out to be the articulation points APGRE exploits.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A messaging network: two big communities, many satellite groups, and a
	// long tail of single-contact accounts.
	g := repro.GenerateSocial(repro.SocialParams{
		N:           8000,
		AvgDeg:      5,
		Communities: 60,
		TopShare:    0.35,
		LeafFrac:    0.4,
		Seed:        7,
	})
	fmt.Printf("network: %v\n", g)

	dec, err := repro.Decompose(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structure: %d sub-communities held together by %d cut vertices\n",
		dec.Subgraphs, dec.ArticulationPoints)
	fmt.Printf("largest sub-community: %d members (%.0f%% of the network)\n",
		dec.TopVerts, 100*float64(dec.TopVerts)/float64(g.NumVertices()))

	bc, err := repro.BetweennessCentrality(g, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}

	top := repro.TopK(bc, 15)
	fmt.Println("\ntop brokers (highest betweenness):")
	for i, vs := range top {
		fmt.Printf("%2d. account %-6d bc=%-12.0f degree=%d\n",
			i+1, vs.Vertex, vs.Score, g.OutDegree(vs.Vertex))
	}

	// Remove the top broker and measure the damage: how many account pairs
	// lose their connection entirely?
	broker := top[0].Vertex
	var kept []repro.Edge
	for _, e := range g.Edges() {
		if e.From != broker && e.To != broker {
			kept = append(kept, e)
		}
	}
	g2 := repro.NewGraph(g.NumVertices(), kept, false)
	before := reachablePairs(g)
	after := reachablePairs(g2)
	fmt.Printf("\nremoving broker %d: connected pairs drop from %d to %d (-%.1f%%)\n",
		broker, before, after, 100*float64(before-after)/float64(before))
}

// reachablePairs counts ordered vertex pairs connected by a path.
func reachablePairs(g *repro.Graph) int64 {
	// Union of component sizes: pairs = Σ s·(s-1).
	n := g.NumVertices()
	seen := make([]bool, n)
	var pairs int64
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var size int64
		stack := []repro.V{repro.V(s)}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, v := range g.Out(u) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		pairs += size * (size - 1)
	}
	return pairs
}
