// Road-network analysis: rank intersections by betweenness to find the
// corridors most traffic must pass through (the transportation use case the
// paper cites [4]), and compare the exact APGRE result with the sampling
// approximation used by prior GPU work.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
)

func main() {
	// A city grid with closed streets (deleted edges) and dead-end spurs.
	g := repro.GenerateRoad(repro.RoadParams{
		Rows: 70, Cols: 70,
		DeleteFrac: 0.10,
		SpurFrac:   0.12,
		SpurLen:    3,
		Seed:       11,
	})
	fmt.Printf("road network: %v\n", g)

	start := time.Now()
	exact, err := repro.BetweennessCentrality(g, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact APGRE: %v\n", time.Since(start))

	start = time.Now()
	approx := repro.ApproximateBC(g, g.NumVertices()/20, 3) // 5% sample
	fmt.Printf("5%% sampling: %v\n", time.Since(start))

	topExact := repro.TopK(exact, 10)
	fmt.Println("\nbusiest intersections (exact):")
	for i, vs := range topExact {
		fmt.Printf("%2d. intersection %-6d load=%.0f\n", i+1, vs.Vertex, vs.Score)
	}

	// How well does sampling find the same set? (Recall@10 — the trade-off
	// exact APGRE removes.)
	approxTop := map[repro.V]bool{}
	for _, vs := range repro.TopK(approx, 10) {
		approxTop[vs.Vertex] = true
	}
	hits := 0
	for _, vs := range topExact {
		if approxTop[vs.Vertex] {
			hits++
		}
	}
	fmt.Printf("\nsampling recall@10 vs exact: %d/10\n", hits)

	// Spread of load across the network: percentile summary.
	sorted := append([]float64(nil), exact...)
	sort.Float64s(sorted)
	q := func(p float64) float64 { return sorted[int(p*float64(len(sorted)-1))] }
	fmt.Printf("load percentiles: p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
		q(0.5), q(0.9), q(0.99), sorted[len(sorted)-1])

	// Real roads have lengths: attach travel times and recompute with the
	// weighted APGRE engine (Dijkstra sweeps over the same decomposition).
	wg := repro.AttachRandomWeights(g, 9, 5)
	start = time.Now()
	weighted, err := repro.WeightedBetweennessCentrality(wg, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nweighted (travel-time) APGRE: %v\n", time.Since(start))
	moved := 0
	weightedTop := map[repro.V]bool{}
	for _, vs := range repro.TopK(weighted, 10) {
		weightedTop[vs.Vertex] = true
	}
	for _, vs := range topExact {
		if !weightedTop[vs.Vertex] {
			moved++
		}
	}
	fmt.Printf("travel times displace %d of the top-10 hop-count intersections\n", moved)
}
