// Dynamic network monitoring: maintain exact betweenness centrality while a
// communication network evolves — friendships form and dissolve — using the
// incremental engine built on the paper's decomposition. Changes confined to
// one sub-graph (the overwhelmingly common case in articulation-rich
// networks) are absorbed by recomputing just that sub-graph.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	g := repro.GenerateSocial(repro.SocialParams{
		N: 3000, AvgDeg: 5, Communities: 25,
		TopShare: 0.4, LeafFrac: 0.3, Seed: 21,
	})
	fmt.Printf("monitoring %v\n", g)

	start := time.Now()
	inc, err := repro.NewIncrementalBC(g, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial scores in %v\n", time.Since(start))
	report(inc, "t=0")

	// Simulate an evolving edge stream.
	r := rand.New(rand.NewSource(5))
	var applied, rebuilds int
	streamStart := time.Now()
	for applied < 30 {
		// Real friendship streams are triadic: most new edges close
		// triangles inside a community, so pick v near u most of the time.
		u := repro.V(r.Intn(g.NumVertices()))
		var v repro.V
		if nbrs := inc.Graph().Out(u); len(nbrs) > 0 && r.Float64() < 0.8 {
			hop := nbrs[r.Intn(len(nbrs))]
			if nn := inc.Graph().Out(hop); len(nn) > 0 {
				v = nn[r.Intn(len(nn))]
			} else {
				v = hop
			}
		} else {
			v = repro.V(r.Intn(g.NumVertices()))
		}
		if u == v {
			continue
		}
		before := inc.FullRebuilds()
		var opErr error
		if inc.Graph().HasArc(u, v) {
			opErr = inc.RemoveEdge(u, v)
		} else {
			opErr = inc.InsertEdge(u, v)
		}
		if opErr != nil {
			log.Fatal(opErr)
		}
		applied++
		rebuilds += inc.FullRebuilds() - before
	}
	elapsed := time.Since(streamStart)
	fmt.Printf("\napplied 30 updates in %v (%.1fms/update); %d were structural rebuilds\n",
		elapsed, float64(elapsed.Milliseconds())/30, rebuilds)
	report(inc, "t=30")

	// Verify against a from-scratch run.
	fresh, err := repro.BetweennessCentrality(inc.Graph(), repro.Options{Algorithm: repro.AlgoSerial})
	if err != nil {
		log.Fatal(err)
	}
	maxDiff := 0.0
	got := inc.BC()
	for i := range fresh {
		d := fresh[i] - got[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max divergence from fresh recomputation: %.2e\n", maxDiff)
}

func report(inc *repro.IncrementalBC, label string) {
	top := repro.TopK(inc.BC(), 3)
	fmt.Printf("%s top brokers:", label)
	for _, vs := range top {
		fmt.Printf("  %d (%.0f)", vs.Vertex, vs.Score)
	}
	fmt.Println()
}
