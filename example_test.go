package repro_test

import (
	"fmt"

	"repro"
)

// The smallest end-to-end use: build a graph, rank vertices by betweenness.
func ExampleBetweennessCentrality() {
	// A path 0-1-2-3-4: the middle vertex carries the most shortest paths.
	g := repro.NewGraph(5, []repro.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4},
	}, false)
	bc, err := repro.BetweennessCentrality(g, repro.Options{})
	if err != nil {
		panic(err)
	}
	for _, vs := range repro.TopK(bc, 3) {
		fmt.Printf("vertex %d: %.0f\n", vs.Vertex, vs.Score)
	}
	// Output:
	// vertex 2: 8
	// vertex 1: 6
	// vertex 3: 6
}

// Weighted graphs route shortest paths by length, not hop count.
func ExampleWeightedBetweennessCentrality() {
	// Square 0-1-2-3-0 with one heavy edge: paths avoid it.
	g := repro.NewWeightedGraph(4, []repro.WeightedEdge{
		{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1},
		{From: 2, To: 3, W: 1}, {From: 3, To: 0, W: 10},
	}, false)
	bc, err := repro.WeightedBetweennessCentrality(g, repro.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("inner vertices carry %.0f and %.0f\n", bc[1], bc[2])
	// Output:
	// inner vertices carry 4 and 4
}

// Decompose reports the articulation structure APGRE exploits.
func ExampleDecompose() {
	// Two triangles joined at vertex 2 — a single articulation point.
	g := repro.NewGraph(5, []repro.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0},
		{From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 2},
	}, false)
	d, err := repro.Decompose(g, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d sub-graphs, %d articulation point(s)\n", d.Subgraphs, d.ArticulationPoints)
	// Output:
	// 2 sub-graphs, 1 articulation point(s)
}

// Incremental maintenance absorbs local edge changes without a full
// recomputation.
func ExampleNewIncrementalBC() {
	g := repro.NewGraph(5, []repro.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4},
	}, false)
	inc, err := repro.NewIncrementalBC(g, repro.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("bc[2] = %.0f\n", inc.BC()[2])
	// Closing the cycle removes vertex 2's monopoly on shortest paths.
	if err := inc.InsertEdge(4, 0); err != nil {
		panic(err)
	}
	fmt.Printf("after closing the ring: bc[2] = %.0f\n", inc.BC()[2])
	// Output:
	// bc[2] = 8
	// after closing the ring: bc[2] = 2
}

// Edge betweenness finds the links communities hang together by.
func ExampleEdgeBetweenness() {
	// Two triangles bridged by the edge 2-3.
	g := repro.NewGraph(6, []repro.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0},
		{From: 3, To: 4}, {From: 4, To: 5}, {From: 5, To: 3},
		{From: 2, To: 3},
	}, false)
	top := repro.EdgeBetweenness(g, 1)[0]
	fmt.Printf("busiest edge: %d-%d\n", top.Edge.From, top.Edge.To)
	// Output:
	// busiest edge: 2-3
}
