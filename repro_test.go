package repro

import (
	"math"
	"path/filepath"
	"testing"
)

func TestFacadeAlgorithmsAgree(t *testing.T) {
	g := GenerateSocial(SocialParams{N: 300, AvgDeg: 5, Communities: 5,
		TopShare: 0.5, LeafFrac: 0.3, Seed: 1})
	want, err := BetweennessCentrality(g, Options{Algorithm: AlgoSerial})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range Algorithms() {
		got, err := BetweennessCentrality(g, Options{Algorithm: algo, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for v := range want {
			if math.Abs(want[v]-got[v]) > 1e-9*math.Max(1, want[v]) {
				t.Fatalf("%s differs at %d: %v vs %v", algo, v, want[v], got[v])
			}
		}
	}
	// Empty algorithm defaults to APGRE.
	if _, err := BetweennessCentrality(g, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := BetweennessCentrality(g, Options{Algorithm: "bogus"}); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestAsyncDirectedRejected(t *testing.T) {
	g := GenerateErdosRenyi(30, 60, true, 1)
	if _, err := BetweennessCentrality(g, Options{Algorithm: AlgoAsync}); err == nil {
		t.Fatal("async must reject directed graphs")
	}
}

func TestTopK(t *testing.T) {
	bc := []float64{1, 5, 3, 5, 0}
	top := TopK(bc, 3)
	if len(top) != 3 {
		t.Fatalf("TopK len = %d", len(top))
	}
	if top[0].Vertex != 1 || top[1].Vertex != 3 || top[2].Vertex != 2 {
		t.Fatalf("TopK order wrong: %v", top)
	}
	if got := TopK(bc, 100); len(got) != 5 {
		t.Fatal("TopK must clamp k")
	}
}

func TestDecomposeAndRedundancy(t *testing.T) {
	g := GenerateSocial(SocialParams{N: 500, AvgDeg: 5, Communities: 8,
		TopShare: 0.5, LeafFrac: 0.35, Seed: 2})
	d, err := Decompose(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Subgraphs < 2 || d.ArticulationPoints < 1 || d.TopVerts <= 0 {
		t.Fatalf("decomposition shape: %+v", d)
	}
	if d.Roots >= int64(g.NumVertices()) {
		t.Fatal("expected gamma elimination on leafy graph")
	}
	r, err := AnalyzeRedundancy(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Partial+r.Total <= 0 {
		t.Fatalf("no redundancy found: %+v", r)
	}
}

func TestApproximateBC(t *testing.T) {
	g := GenerateBarabasiAlbert(200, 3, 3)
	exact, _ := BetweennessCentrality(g, Options{Algorithm: AlgoSerial})
	approx := ApproximateBC(g, 80, 1)
	// Same argmax neighbourhood.
	argmax := func(x []float64) int {
		b := 0
		for i := range x {
			if x[i] > x[b] {
				b = i
			}
		}
		return b
	}
	rank := 0
	top := argmax(approx)
	for i := range exact {
		if exact[i] > exact[top] {
			rank++
		}
	}
	if rank >= 5 {
		t.Fatalf("approximation too loose: exact rank %d", rank)
	}
}

func TestGraphIORoundTrip(t *testing.T) {
	g := GenerateRoad(RoadParams{Rows: 10, Cols: 10, DeleteFrac: 0.1, SpurFrac: 0.1, SpurLen: 2, Seed: 4})
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveGraph(path, "", g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumArcs() != g.NumArcs() {
		t.Fatal("round trip changed the graph")
	}
}

func TestBreakdownExposed(t *testing.T) {
	g := GenerateWeb(WebParams{N: 400, Sites: 8, AvgDeg: 8, LeafFrac: 0.2, Seed: 5})
	var bd Breakdown
	if _, err := BetweennessCentrality(g, Options{Breakdown: &bd}); err != nil {
		t.Fatal(err)
	}
	if bd.Subgraphs == 0 || bd.Total <= 0 {
		t.Fatalf("breakdown not populated: %+v", bd)
	}
}

func TestTiming(t *testing.T) {
	if d := Timing(func() {}); d < 0 {
		t.Fatal("negative duration")
	}
}

func TestWeightedFacade(t *testing.T) {
	base := GenerateSocial(SocialParams{N: 250, AvgDeg: 4, Communities: 5,
		TopShare: 0.5, LeafFrac: 0.3, Seed: 6})
	g := AttachRandomWeights(base, 5, 7)
	if !g.Weighted() {
		t.Fatal("AttachRandomWeights lost weights")
	}
	want, err := WeightedBetweennessCentrality(g, Options{Algorithm: AlgoSerial})
	if err != nil {
		t.Fatal(err)
	}
	got, err := WeightedBetweennessCentrality(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(want[v]-got[v]) > 1e-9*math.Max(1, want[v]) {
			t.Fatalf("weighted APGRE differs at %d", v)
		}
	}
	if _, err := WeightedBetweennessCentrality(g, Options{Algorithm: AlgoSuccs}); err == nil {
		t.Fatal("expected error for unsupported weighted algorithm")
	}
	if _, err := WeightedBetweennessCentrality(base, Options{Algorithm: AlgoSerial}); err == nil {
		t.Fatal("expected error for unweighted graph")
	}
	// Direct construction.
	wg := NewWeightedGraph(3, []WeightedEdge{{From: 0, To: 1, W: 2}, {From: 1, To: 2, W: 3}}, false)
	bc, err := WeightedBetweennessCentrality(wg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bc[1] != 2 {
		t.Fatalf("middle bc = %v, want 2", bc[1])
	}
}

func TestEdgeBetweennessFacade(t *testing.T) {
	g := NewGraph(4, []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}}, false)
	es := EdgeBetweenness(g, 2)
	if len(es) != 3 {
		t.Fatalf("edges = %d", len(es))
	}
	// Middle edge of the path dominates.
	if es[0].Edge.From != 1 || es[0].Edge.To != 2 {
		t.Fatalf("top edge = %+v", es[0])
	}
}

func TestClosenessFacade(t *testing.T) {
	g := GenerateSocial(SocialParams{N: 200, AvgDeg: 4, Communities: 4,
		TopShare: 0.5, LeafFrac: 0.3, Seed: 9})
	res, err := ClosenessCentrality(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Closeness) != 200 {
		t.Fatalf("len = %d", len(res.Closeness))
	}
	for v, c := range res.Closeness {
		if c <= 0 || c > 1 {
			t.Fatalf("closeness[%d] = %v out of (0,1]", v, c)
		}
	}
	// Directed path: source sees everything, sink nothing.
	gd := NewGraph(3, []Edge{{From: 0, To: 1}, {From: 1, To: 2}}, true)
	rd, err := ClosenessCentrality(gd, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Closeness[2] != 0 || rd.Closeness[0] <= 0 {
		t.Fatalf("directed closeness = %v", rd.Closeness)
	}
}

func TestCommunitiesFacade(t *testing.T) {
	g := GenerateSocial(SocialParams{N: 90, AvgDeg: 4, Communities: 3,
		TopShare: 0.34, LeafFrac: 0, Seed: 8})
	res, err := DetectCommunities(g, CommunityOptions{MaxRemovals: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Communities < 2 {
		t.Fatalf("communities = %d", res.Communities)
	}
	if q := Modularity(g, res.Labels); math.Abs(q-res.Modularity) > 1e-9 {
		t.Fatalf("modularity mismatch: %v vs %v", q, res.Modularity)
	}
}

func TestNewFacadeExtensions(t *testing.T) {
	g := GenerateSocial(SocialParams{N: 150, AvgDeg: 4, Communities: 4,
		TopShare: 0.5, LeafFrac: 0.3, Seed: 13})

	h := HarmonicCentrality(g, 2)
	if len(h) != 150 || h[0] < 0 {
		t.Fatalf("harmonic = %v...", h[0])
	}

	for _, strat := range []PivotStrategy{PivotUniform, PivotDegree, PivotMaxMin} {
		approx, err := ApproximateBCWith(g, 40, strat, 1)
		if err != nil || len(approx) != 150 {
			t.Fatalf("strategy %v: %v", strat, err)
		}
	}

	// Relabeling preserves BC up to the permutation.
	want, _ := BetweennessCentrality(g, Options{Algorithm: AlgoSerial})
	g2, perm := RelabelBFS(g)
	got, err := BetweennessCentrality(g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Abs(want[v]-got[perm[v]]) > 1e-9*(1+want[v]) {
			t.Fatalf("relabeled BC differs at %d", v)
		}
	}
	g3, perm3 := RelabelByDegree(g)
	if g3.NumArcs() != g.NumArcs() || len(perm3) != 150 {
		t.Fatal("degree relabel shape wrong")
	}

	// Incremental facade.
	inc, err := NewIncrementalBC(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.BC()) != 150 {
		t.Fatal("incremental BC length")
	}
}
