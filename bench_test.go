package repro

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5) as testing.B targets. cmd/bcbench prints the same data as formatted
// tables; these benches integrate with `go test -bench` tooling and record
// the paper's derived metrics (MTEPS, speedups, redundancy fractions) via
// b.ReportMetric.
//
// Scale: benches default to 0.1× the already-scaled-down dataset registry so
// `go test -bench=. -benchmem ./...` finishes in minutes on one core; set
// REPRO_BENCH_SCALE to raise it.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/bcc"
	"repro/internal/brandes"
	"repro/internal/closeness"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/decompose"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func benchScale() float64 {
	if s := os.Getenv("REPRO_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.1
}

var (
	graphCacheMu sync.Mutex
	graphCache   = map[string]*graph.Graph{}
)

func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	graphCacheMu.Lock()
	defer graphCacheMu.Unlock()
	key := fmt.Sprintf("%s@%v", name, benchScale())
	if g, ok := graphCache[key]; ok {
		return g
	}
	ds, err := datasets.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g := ds.Build(benchScale())
	// Pre-build the transpose so it is not charged to the first algorithm.
	g.EnsureTranspose()
	graphCache[key] = g
	return g
}

type benchAlgo struct {
	name string
	run  func(g *graph.Graph) ([]float64, error)
}

func benchAlgos() []benchAlgo {
	return []benchAlgo{
		{"serial", func(g *graph.Graph) ([]float64, error) { return brandes.Serial(g), nil }},
		{"apgre", func(g *graph.Graph) ([]float64, error) { return core.Compute(g, core.Options{}) }},
		{"preds", func(g *graph.Graph) ([]float64, error) { return brandes.Preds(g, 0), nil }},
		{"succs", func(g *graph.Graph) ([]float64, error) { return brandes.Succs(g, 0), nil }},
		{"lockSyncFree", func(g *graph.Graph) ([]float64, error) { return brandes.LockSyncFree(g, 0), nil }},
		{"async", func(g *graph.Graph) ([]float64, error) { return brandes.Async(g, 0) }},
		{"hybrid", func(g *graph.Graph) ([]float64, error) { return brandes.Hybrid(g, 0), nil }},
	}
}

// BenchmarkTable2 measures execution time of every algorithm on every
// dataset (paper Table 2). Unsupported combinations (async on directed
// graphs) are skipped, mirroring the paper's "-" entries.
func BenchmarkTable2(b *testing.B) {
	for _, name := range datasets.Names() {
		for _, a := range benchAlgos() {
			b.Run(name+"/"+a.name, func(b *testing.B) {
				g := benchGraph(b, name)
				if _, err := a.run(g); err != nil {
					b.Skipf("unsupported: %v", err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := a.run(g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable3 measures the search rate (MTEPS = n·m/t, paper Table 3)
// for serial Brandes and APGRE, reported via the mteps metric.
func BenchmarkTable3(b *testing.B) {
	for _, name := range datasets.Names() {
		for _, a := range benchAlgos()[:2] { // serial and apgre carry Table 3's story
			b.Run(name+"/"+a.name, func(b *testing.B) {
				g := benchGraph(b, name)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := a.run(g); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				per := b.Elapsed() / time.Duration(max(1, b.N))
				b.ReportMetric(metrics.MTEPS(g.NumVertices(), g.NumEdges(), per), "mteps")
			})
		}
	}
}

// BenchmarkTable4 measures the decomposition itself (Algorithm 1 + α/β) and
// reports the sub-graph profile of paper Table 4.
func BenchmarkTable4(b *testing.B) {
	for _, name := range datasets.Names() {
		b.Run(name, func(b *testing.B) {
			g := benchGraph(b, name)
			var d *decompose.Decomposition
			var err error
			for i := 0; i < b.N; i++ {
				d, err = decompose.Decompose(g, decompose.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(d.Subgraphs)), "subgraphs")
			if d.TopIndex >= 0 {
				top := d.Subgraphs[d.TopIndex]
				b.ReportMetric(100*float64(top.NumVerts())/float64(g.NumVertices()), "topV%")
			}
		})
	}
}

// BenchmarkFigure2 measures the articulation-point census of the motivation
// figure.
func BenchmarkFigure2(b *testing.B) {
	_, g := datasets.HumanDisease()
	var aps, deg1 int
	for i := 0; i < b.N; i++ {
		aps, deg1 = bcc.CountArticulationPoints(g)
	}
	b.ReportMetric(float64(aps), "articulation")
	b.ReportMetric(float64(deg1), "degree1")
}

// BenchmarkFigure6 reports APGRE's speedup over serial Brandes per dataset
// (paper Figure 6) via the speedup metric.
func BenchmarkFigure6(b *testing.B) {
	for _, name := range datasets.Names() {
		b.Run(name, func(b *testing.B) {
			g := benchGraph(b, name)
			serial := Timing(func() { brandes.Serial(g) })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(g, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			per := b.Elapsed() / time.Duration(max(1, b.N))
			b.ReportMetric(metrics.Speedup(serial, per), "speedup")
		})
	}
}

// BenchmarkFigure7 measures the redundancy analysis and reports the
// effective / partial / total split (paper Figure 7) as metrics.
func BenchmarkFigure7(b *testing.B) {
	for _, name := range datasets.Names() {
		b.Run(name, func(b *testing.B) {
			g := benchGraph(b, name)
			d, err := decompose.Decompose(g, decompose.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var rep *core.RedundancyReport
			for i := 0; i < b.N; i++ {
				rep = core.AnalyzeRedundancy(g, d, 0, 1)
			}
			b.ReportMetric(100*rep.Effective, "effective%")
			b.ReportMetric(100*rep.Partial, "partial%")
			b.ReportMetric(100*rep.Total, "total%")
		})
	}
}

// BenchmarkFigure8 runs instrumented APGRE and reports the share of time in
// the preprocessing ("extra computation") phases, paper Figure 8, plus the
// effective-work counters the JSON benchmark records gate on.
func BenchmarkFigure8(b *testing.B) {
	for _, name := range []string{"com-youtube", "dblp-2010", "soc-douban", "web-notredame", "web-berkstan", "usa-roadny"} {
		b.Run(name, func(b *testing.B) {
			g := benchGraph(b, name)
			var bd core.Breakdown
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(g, core.Options{Breakdown: &bd}); err != nil {
					b.Fatal(err)
				}
			}
			if bd.Total <= 0 {
				b.Fatal("instrumented run left Breakdown.Total unset")
			}
			b.ReportMetric(100*float64(bd.Partition+bd.AlphaBeta)/float64(bd.Total), "extra%")
			b.ReportMetric(float64(bd.TraversedArcs), "arcs")
			b.ReportMetric(float64(bd.Roots), "roots")
		})
	}
}

// BenchmarkFigure9 sweeps worker counts for APGRE and the strongest baseline
// on the dblp stand-in (paper Figure 9's scaling study).
func BenchmarkFigure9(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8, 12} {
		b.Run(fmt.Sprintf("apgre/p=%d", p), func(b *testing.B) {
			g := benchGraph(b, "dblp-2010")
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(g, core.Options{Workers: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("succs/p=%d", p), func(b *testing.B) {
			g := benchGraph(b, "dblp-2010")
			for i := 0; i < b.N; i++ {
				brandes.Succs(g, p)
			}
		})
	}
}

// BenchmarkFigure10 sweeps APGRE worker counts to 32 on the two largest
// stand-ins (paper Figure 10's four-socket scaling).
func BenchmarkFigure10(b *testing.B) {
	for _, name := range []string{"wiki-talk", "com-youtube"} {
		for _, p := range []int{1, 4, 16, 32} {
			b.Run(fmt.Sprintf("%s/p=%d", name, p), func(b *testing.B) {
				g := benchGraph(b, name)
				for i := 0; i < b.N; i++ {
					if _, err := core.Compute(g, core.Options{Workers: p}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationThreshold sweeps Algorithm 1's merge threshold
// (DESIGN.md's first ablation: granularity vs articulation count).
func BenchmarkAblationThreshold(b *testing.B) {
	for _, th := range []int{2, 16, 64, 512, 4096} {
		b.Run(fmt.Sprintf("t=%d", th), func(b *testing.B) {
			g := benchGraph(b, "com-youtube")
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(g, core.Options{Threshold: th}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAlphaBeta compares the O(V+E) block-tree α/β counting
// against the paper's per-articulation-point BFS.
func BenchmarkAblationAlphaBeta(b *testing.B) {
	methods := map[string]decompose.AlphaBetaMethod{
		"tree": decompose.AlphaBetaTree,
		"bfs":  decompose.AlphaBetaBFS,
	}
	for name, m := range methods {
		b.Run(name, func(b *testing.B) {
			g := benchGraph(b, "com-youtube") // undirected: both methods valid
			for i := 0; i < b.N; i++ {
				if _, err := decompose.Decompose(g, decompose.Options{AlphaBeta: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGamma isolates total-redundancy elimination's
// contribution.
func BenchmarkAblationGamma(b *testing.B) {
	for _, name := range []string{"email-euall", "soc-douban"} {
		for _, off := range []bool{false, true} {
			label := "on"
			if off {
				label = "off"
			}
			b.Run(name+"/gamma="+label, func(b *testing.B) {
				g := benchGraph(b, name)
				for i := 0; i < b.N; i++ {
					if _, err := core.Compute(g, core.Options{DisableGamma: off}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationParallelism compares the two-level scheme against each
// level alone (paper §4's design claim).
func BenchmarkAblationParallelism(b *testing.B) {
	strategies := map[string]core.Strategy{
		"twolevel": core.StrategyTwoLevel,
		"fine":     core.StrategyFineOnly,
		"coarse":   core.StrategyCoarseOnly,
	}
	for label, s := range strategies {
		b.Run(label, func(b *testing.B) {
			g := benchGraph(b, "wiki-talk")
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(g, core.Options{Strategy: s, Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionCloseness compares the per-vertex BFS baseline with the
// articulation-point-accelerated closeness engine (our extension).
func BenchmarkExtensionCloseness(b *testing.B) {
	for _, name := range []string{"email-enron", "usa-roadny"} {
		b.Run(name+"/exact", func(b *testing.B) {
			g := benchGraph(b, name)
			for i := 0; i < b.N; i++ {
				closeness.Exact(g, 0)
			}
		})
		b.Run(name+"/decomposed", func(b *testing.B) {
			g := benchGraph(b, name)
			for i := 0; i < b.N; i++ {
				if _, err := closeness.Decomposed(g, closeness.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionWeighted measures weighted APGRE against Dijkstra-Brandes.
func BenchmarkExtensionWeighted(b *testing.B) {
	base := benchGraph(b, "com-youtube")
	g := gen.WithRandomWeights(base, 9, 1)
	b.Run("dijkstra-brandes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			brandes.WeightedSerial(g)
		}
	})
	b.Run("weighted-apgre", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ComputeWeighted(g, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkAblationRelabel measures the locality effect of vertex
// renumbering (Cong & Makarychev [24]) on serial Brandes.
func BenchmarkAblationRelabel(b *testing.B) {
	base := benchGraph(b, "com-youtube")
	bfsG := graph.Relabel(base, graph.BFSOrder(base))
	degG := graph.Relabel(base, graph.DegreeOrder(base))
	for label, g := range map[string]*graph.Graph{
		"original": base, "bfs-order": bfsG, "degree-order": degG,
	} {
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				brandes.Serial(g)
			}
		})
	}
}

// BenchmarkExtensionPivots measures the sampling strategies' runtime (their
// accuracy trade-off is covered by internal/brandes tests).
func BenchmarkExtensionPivots(b *testing.B) {
	g := benchGraph(b, "email-enron")
	strategies := map[string]brandes.PivotStrategy{
		"uniform": brandes.PivotUniform,
		"degree":  brandes.PivotDegree,
		"maxmin":  brandes.PivotMaxMin,
	}
	for label, s := range strategies {
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := brandes.SampledWith(g, g.NumVertices()/10, s, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
