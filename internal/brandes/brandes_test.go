package brandes

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// bcClose compares BC vectors with a relative tolerance.
func bcClose(a, b []float64, tol float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		diff := math.Abs(a[i] - b[i])
		scale := math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i])))
		if diff > tol*scale {
			return i, false
		}
	}
	return -1, true
}

func TestSerialPath(t *testing.T) {
	// Path 0-1-2-3-4: BC(v) for interior v counts ordered pairs passing it.
	bc := Serial(gen.Path(5))
	want := []float64{0, 6, 8, 6, 0} // e.g. vertex 2: pairs (0,3),(0,4),(1,3),(1,4) ×2 directions
	for i := range want {
		if math.Abs(bc[i]-want[i]) > 1e-12 {
			t.Fatalf("bc[%d] = %v, want %v", i, bc[i], want[i])
		}
	}
}

func TestSerialStar(t *testing.T) {
	bc := Serial(gen.Star(6))
	// Hub: 5*4 = 20 ordered leaf pairs; leaves 0.
	if bc[0] != 20 {
		t.Fatalf("hub bc = %v, want 20", bc[0])
	}
	for i := 1; i < 6; i++ {
		if bc[i] != 0 {
			t.Fatalf("leaf bc[%d] = %v, want 0", i, bc[i])
		}
	}
}

func TestSerialCycle(t *testing.T) {
	// Even cycle n=6: by symmetry all scores equal. Each ordered pair at
	// distance 2 has 1 shortest path with 1 interior vertex; distance 3 has
	// 2 paths with 2 interior vertices each. Per vertex: pairs at distance
	// 2: contributes...; rely on symmetry + total-dependency identity
	// instead: sum of BC = sum over pairs of (interior vertices per pair).
	bc := Serial(gen.Cycle(6))
	for i := 1; i < 6; i++ {
		if math.Abs(bc[i]-bc[0]) > 1e-12 {
			t.Fatalf("cycle bc not symmetric: %v", bc)
		}
	}
	var total float64
	for _, x := range bc {
		total += x
	}
	// Ordered pairs: 6 at distance 1 per vertex... compute directly:
	// d=1: 12 pairs, 0 interior. d=2: 12 pairs, 1 interior. d=3: 6 vertex
	// pairs ×2 directions = 6... n=6: antipodal pairs: 3 unordered ×2 = 6
	// ordered, each with 2 shortest paths of 2 interior vertices → weight 2.
	// Total = 12*1 + 6*2 = 24.
	if math.Abs(total-24) > 1e-9 {
		t.Fatalf("cycle total dependency = %v, want 24", total)
	}
}

func TestSerialDirectedChain(t *testing.T) {
	// 0->1->2: only pair (0,2) passes 1.
	g := graph.NewFromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}}, true)
	bc := Serial(g)
	if bc[0] != 0 || bc[1] != 1 || bc[2] != 0 {
		t.Fatalf("bc = %v", bc)
	}
}

func TestSerialDiamondSigma(t *testing.T) {
	// Diamond: 0->1,0->2,1->3,2->3 directed. σ(0,3)=2, each middle vertex
	// carries 1/2.
	g := graph.NewFromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}}, true)
	bc := Serial(g)
	if bc[1] != 0.5 || bc[2] != 0.5 {
		t.Fatalf("bc = %v, want middles 0.5", bc)
	}
}

func TestSerialSuccsMatchesSerial(t *testing.T) {
	for _, g := range testGraphs() {
		a, b := Serial(g), SerialSuccs(g)
		if i, ok := bcClose(a, b, 1e-9); !ok {
			t.Fatalf("%v: SerialSuccs differs at %d: %v vs %v", g, i, a[i], b[i])
		}
	}
}

func testGraphs() []*graph.Graph {
	return []*graph.Graph{
		gen.Path(30),
		gen.Cycle(20),
		gen.Star(25),
		gen.Lollipop(6, 8),
		gen.Grid2D(6, 7),
		gen.Tree(60, 3),
		gen.BarabasiAlbert(120, 2, 4),
		gen.ErdosRenyi(80, 200, false, 5),
		gen.ErdosRenyi(80, 240, true, 6),
		gen.SocialLike(gen.SocialParams{N: 150, AvgDeg: 4, Communities: 4, TopShare: 0.5, LeafFrac: 0.25, Seed: 7}),
		gen.SocialLike(gen.SocialParams{N: 150, AvgDeg: 4, Communities: 4, TopShare: 0.5, LeafFrac: 0.25, Directed: true, Reciprocity: 0.5, Seed: 8}),
		gen.RoadLike(gen.RoadParams{Rows: 7, Cols: 8, DeleteFrac: 0.12, SpurFrac: 0.15, SpurLen: 2, Seed: 9}),
	}
}

func TestParallelVariantsMatchSerial(t *testing.T) {
	for gi, g := range testGraphs() {
		want := Serial(g)
		for _, p := range []int{1, 3} {
			if got := Preds(g, p); !okBC(t, want, got) {
				t.Fatalf("graph %d workers %d: Preds differs", gi, p)
			}
			if got := Succs(g, p); !okBC(t, want, got) {
				t.Fatalf("graph %d workers %d: Succs differs", gi, p)
			}
			if got := LockSyncFree(g, p); !okBC(t, want, got) {
				t.Fatalf("graph %d workers %d: LockSyncFree differs", gi, p)
			}
			if got := Hybrid(g, p); !okBC(t, want, got) {
				t.Fatalf("graph %d workers %d: Hybrid differs", gi, p)
			}
			if !g.Directed() {
				got, err := Async(g, p)
				if err != nil {
					t.Fatal(err)
				}
				if !okBC(t, want, got) {
					t.Fatalf("graph %d workers %d: Async differs", gi, p)
				}
			}
		}
	}
}

func okBC(t *testing.T, want, got []float64) bool {
	t.Helper()
	i, ok := bcClose(want, got, 1e-9)
	if !ok {
		t.Logf("mismatch at vertex %d: want %v got %v", i, want[i], got[i])
	}
	return ok
}

func TestAsyncRejectsDirected(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, true, 1)
	if _, err := Async(g, 2); err == nil {
		t.Fatal("expected error for directed input")
	}
}

func TestSampledFullEqualsExact(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 11)
	want := Serial(g)
	got := Sampled(g, 100, 1) // all sources sampled → exact
	if i, ok := bcClose(want, got, 1e-9); !ok {
		t.Fatalf("full sampling differs at %d", i)
	}
}

func TestSampledApproximates(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 12)
	exact := Serial(g)
	approx := Sampled(g, 100, 2)
	// Spearman-free sanity: the top-BC vertex under sampling must be in the
	// exact top 5.
	argmax := func(x []float64) int {
		best := 0
		for i := range x {
			if x[i] > x[best] {
				best = i
			}
		}
		return best
	}
	top := argmax(approx)
	rank := 0
	for i := range exact {
		if exact[i] > exact[top] {
			rank++
		}
	}
	if rank >= 5 {
		t.Fatalf("sampled argmax has exact rank %d, want < 5", rank)
	}
	if s := Sampled(g, 0, 3); len(s) != 300 {
		t.Fatal("samples clamp failed")
	}
}

func TestEmptyAndTiny(t *testing.T) {
	empty := graph.NewFromEdges(0, nil, false)
	if len(Serial(empty)) != 0 || len(Succs(empty, 2)) != 0 || len(Hybrid(empty, 2)) != 0 || len(Preds(empty, 2)) != 0 || len(LockSyncFree(empty, 2)) != 0 {
		t.Fatal("empty graph must give empty scores")
	}
	one := graph.NewFromEdges(1, nil, false)
	if bc := Serial(one); bc[0] != 0 {
		t.Fatal("singleton bc must be 0")
	}
	two := graph.NewFromEdges(2, []graph.Edge{{From: 0, To: 1}}, false)
	bc := Serial(two)
	if bc[0] != 0 || bc[1] != 0 {
		t.Fatalf("K2 bc = %v", bc)
	}
}

// Property: all variants agree on random graphs, and every BC score is
// non-negative and bounded by (n-1)(n-2).
func TestQuickAllVariantsAgree(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		g := gen.ErdosRenyi(60, 150, directed, seed)
		want := Serial(g)
		n := float64(g.NumVertices())
		for _, x := range want {
			if x < 0 || x > (n-1)*(n-2)+1e-9 {
				return false
			}
		}
		for _, got := range [][]float64{Succs(g, 2), LockSyncFree(g, 2), Hybrid(g, 2), Preds(g, 2)} {
			if _, ok := bcClose(want, got, 1e-9); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
