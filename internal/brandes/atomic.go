package brandes

import "repro/internal/par"

// atomicAddFloat64 adds delta to *addr atomically — the "lock" the succs
// variant [13] eliminates; the preds variant [12] needs it because several
// DAG successors update a shared predecessor's δ concurrently.
func atomicAddFloat64(addr *float64, delta float64) { par.AddFloat64(addr, delta) }
