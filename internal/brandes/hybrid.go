package brandes

import (
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/par"
)

// Hybrid is the Ligra-style BC [25] built on direction-optimizing BFS [33]:
// the forward σ phase switches between top-down frontier pushes and
// bottom-up sweeps (each undiscovered vertex pulls σ from in-neighbors one
// level up) based on frontier edge volume, and the backward phase is
// successor-pull. Beamer's α=14, β=24 heuristics select the direction.
func Hybrid(g *graph.Graph, workers int) []float64 {
	const alphaDiv, betaDiv = 14, 24
	n := g.NumVertices()
	p := par.Workers(workers)
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	g.EnsureTranspose()
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	visited := bitset.New(n)
	lv := &levels{}
	bag := par.NewBag[graph.V](p)

	for s := graph.V(0); int(s) < n; s++ {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		visited.Reset()
		lv.reset()

		dist[s] = 0
		sigma[s] = 1
		visited.Set(int(s))
		lv.push(0, s)
		frontier := lv.level(0)
		unexplored := g.NumArcs()
		bottomUp := false
		for d := int32(1); len(frontier) > 0; d++ {
			if !bottomUp {
				var fe int64
				for _, u := range frontier {
					fe += int64(g.OutDegree(u))
				}
				if fe > unexplored/alphaDiv {
					bottomUp = true
				}
				unexplored -= fe
			} else if len(frontier) < n/betaDiv {
				bottomUp = false
			}
			if bottomUp {
				// Bottom-up: owned writes, no atomics needed for σ.
				par.ForWorker(n, p, 0, func(w, vi int) {
					v := graph.V(vi)
					if dist[v] >= 0 {
						return
					}
					var sg float64
					for _, u := range g.In(v) {
						// Atomic: u may be claimed at level d concurrently;
						// the claimed value never equals d-1 so only the
						// synchronization matters, not the logic.
						if atomic.LoadInt32(&dist[u]) == d-1 {
							sg += sigma[u]
						}
					}
					if sg > 0 {
						atomic.StoreInt32(&dist[v], d)
						sigma[v] = sg
						visited.TrySet(vi)
						bag.Add(w, v)
					}
				})
			} else {
				par.ForWorker(len(frontier), p, 0, func(w, i int) {
					u := frontier[i]
					for _, v := range g.Out(u) {
						if visited.TrySet(int(v)) {
							atomic.StoreInt32(&dist[v], d)
							bag.Add(w, v)
							atomicAddFloat64(&sigma[v], sigma[u])
							continue
						}
						if dv := atomic.LoadInt32(&dist[v]); dv == d || dv < 0 {
							atomicAddFloat64(&sigma[v], sigma[u])
						}
					}
				})
			}
			next := bag.Drain(nil)
			lv.push(int(d), next...)
			frontier = lv.level(int(d))
		}
		backwardSuccs(g, s, p, dist, sigma, delta, lv, bc)
	}
	return bc
}
