package brandes

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestSampledWithFullIsExact(t *testing.T) {
	g := gen.BarabasiAlbert(120, 2, 3)
	want := Serial(g)
	for _, strat := range []PivotStrategy{PivotUniform, PivotDegree, PivotMaxMin} {
		got, err := SampledWith(g, 120, strat, 1)
		if err != nil {
			t.Fatal(err)
		}
		// All strategies pick every vertex when samples == n... MaxMin stops
		// when all are pivots, and scaling accounts for the actual count.
		for v := range want {
			if math.Abs(want[v]-got[v]) > 1e-9*(1+want[v]) {
				t.Fatalf("strategy %d: exact mismatch at %d: %v vs %v", strat, v, want[v], got[v])
			}
		}
	}
}

func TestSampledWithUnknownStrategy(t *testing.T) {
	if _, err := SampledWith(gen.Path(5), 2, PivotStrategy(9), 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestSampledWithEmpty(t *testing.T) {
	bc, err := SampledWith(graph.NewFromEdges(0, nil, false), 3, PivotUniform, 1)
	if err != nil || len(bc) != 0 {
		t.Fatalf("empty: %v %v", bc, err)
	}
}

// rankErrorAtK measures how many of the exact top-k vertices a strategy's
// estimate recovers.
func recallAtK(exact, approx []float64, k int) int {
	top := func(x []float64) map[int]bool {
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return x[idx[a]] > x[idx[b]] })
		out := map[int]bool{}
		for _, i := range idx[:k] {
			out[i] = true
		}
		return out
	}
	te, ta := top(exact), top(approx)
	hits := 0
	for v := range te {
		if ta[v] {
			hits++
		}
	}
	return hits
}

func TestPivotStrategiesRecall(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 500, AvgDeg: 5, Communities: 8,
		TopShare: 0.5, LeafFrac: 0.3, Seed: 4})
	exact := Serial(g)
	for _, strat := range []PivotStrategy{PivotUniform, PivotDegree, PivotMaxMin} {
		approx, err := SampledWith(g, 60, strat, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got := recallAtK(exact, approx, 10); got < 5 {
			t.Fatalf("strategy %d: recall@10 = %d, want >= 5", strat, got)
		}
	}
}

func TestMaxMinPivotsScattered(t *testing.T) {
	// On a long path, max-min pivots must include both extremes quickly.
	g := gen.Path(101)
	pivots := maxMinPivots(g, 3, newSeededRand(7))
	sort.Slice(pivots, func(i, j int) bool { return pivots[i] < pivots[j] })
	if pivots[len(pivots)-1]-pivots[0] < 50 {
		t.Fatalf("pivots not scattered: %v", pivots)
	}
}

func TestDegreePivotsPreferHubs(t *testing.T) {
	g := gen.Star(200)
	r := newSeededRand(3)
	hubCount := 0
	for trial := 0; trial < 50; trial++ {
		pv := degreePivots(g, 1, r)
		if pv[0] == 0 {
			hubCount++
		}
	}
	// Hub holds ~half the smoothed degree mass; expect well above the 1/200
	// uniform rate.
	if hubCount < 10 {
		t.Fatalf("hub picked %d/50 times — degree weighting not applied", hubCount)
	}
}

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
