package brandes

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Warm per-source sweeps run entirely on pooled scratch restored by sparse
// resets, so they must not allocate.
func TestSerialSweepWarmAllocs(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 300, AvgDeg: 4, Communities: 3,
		TopShare: 0.5, LeafFrac: 0.2, Seed: 11})
	n := g.NumVertices()
	bc := make([]float64, n)

	for _, tc := range []struct {
		name  string
		preds bool
		run   func(st *serialScratch, s graph.V)
	}{
		{"preds", true, func(st *serialScratch, s graph.V) { st.runSource(g, s, bc) }},
		{"succs", false, func(st *serialScratch, s graph.V) { st.runSourceSuccs(g, s, bc) }},
	} {
		st := newSerialScratch(g, tc.preds)
		for s := graph.V(0); int(s) < n; s++ {
			tc.run(st, s) // warm: every source once
		}
		s := graph.V(0)
		allocs := testing.AllocsPerRun(50, func() {
			tc.run(st, s)
			s = (s + 1) % graph.V(n)
		})
		st.release()
		if allocs != 0 {
			t.Errorf("%s: warm per-source sweep allocates %.1f/op, want 0", tc.name, allocs)
		}
	}
}

// BenchmarkSerialFull measures the whole preds-serial baseline on a small
// social graph — the pooled-scratch refactor shows up as fewer allocations
// per call (sparse resets win wall time only when sweeps reach a small
// fraction of the graph; on a connected graph they match the old full
// clears).
func BenchmarkSerialFull(b *testing.B) {
	g := gen.SocialLike(gen.SocialParams{N: 300, AvgDeg: 4, Communities: 3,
		TopShare: 0.5, LeafFrac: 0.2, Seed: 11})
	Serial(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Serial(g)
	}
}
