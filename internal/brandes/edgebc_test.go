package brandes

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestEdgeBCPath(t *testing.T) {
	// Path 0-1-2-3: arc (1,2) carries pairs (0,2),(0,3),(1,2),(1,3) = 4.
	g := gen.Path(4)
	ebc := EdgeBC(g)
	arc12 := g.ArcPos(1, 2)
	if ebc[arc12] != 4 {
		t.Fatalf("ebc(1->2) = %v, want 4", ebc[arc12])
	}
	arc21 := g.ArcPos(2, 1)
	if ebc[arc21] != 4 {
		t.Fatalf("ebc(2->1) = %v, want 4 (symmetry)", ebc[arc21])
	}
	// End arc (0,1): pairs (0,1),(0,2),(0,3) = 3.
	if got := ebc[g.ArcPos(0, 1)]; got != 3 {
		t.Fatalf("ebc(0->1) = %v, want 3", got)
	}
}

func TestEdgeBCStar(t *testing.T) {
	// Star with hub 0, leaves 1..4: arc (i,0) carries source-i pairs
	// (i,0),(i,j≠i) = 4; arc (0,i) carries (j,i) for j≠i and (0,i) = 4.
	g := gen.Star(5)
	ebc := EdgeBC(g)
	for leaf := graph.V(1); leaf <= 4; leaf++ {
		if got := ebc[g.ArcPos(leaf, 0)]; got != 4 {
			t.Fatalf("ebc(%d->0) = %v, want 4", leaf, got)
		}
		if got := ebc[g.ArcPos(0, leaf)]; got != 4 {
			t.Fatalf("ebc(0->%d) = %v, want 4", leaf, got)
		}
	}
}

func TestEdgeBCDirectedDiamond(t *testing.T) {
	// 0->1->3, 0->2->3: σ(0,3)=2 so each arc on the split carries 1/2 for
	// the (0,3) pair plus 1 for its own endpoint pair.
	g := graph.NewFromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}}, true)
	ebc := EdgeBC(g)
	if got := ebc[g.ArcPos(0, 1)]; math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("ebc(0->1) = %v, want 1.5", got)
	}
	if got := ebc[g.ArcPos(1, 3)]; math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("ebc(1->3) = %v, want 1.5", got)
	}
}

// Identity: the vertex dependency equals the sum of dependencies of its
// outgoing DAG arcs minus the target's own count — more simply, vertex BC
// of v equals Σ_in-arcs ebc - (number of pairs with t = v)... we instead
// test the cheap global identity: Σ_arcs ebc(a) = Σ_{s,t pairs} (path
// length in edges) = Σ_v BC(v) + #connected ordered pairs.
func TestEdgeBCGlobalIdentity(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Grid2D(5, 5),
		gen.BarabasiAlbert(80, 2, 1),
		gen.ErdosRenyi(60, 150, true, 2),
		gen.SocialLike(gen.SocialParams{N: 120, AvgDeg: 4, Communities: 4, TopShare: 0.5, LeafFrac: 0.3, Seed: 3}),
	}
	for gi, g := range graphs {
		ebc := EdgeBC(g)
		var edgeSum float64
		for _, x := range ebc {
			edgeSum += x
		}
		bc := Serial(g)
		var vertexSum float64
		for _, x := range bc {
			vertexSum += x
		}
		// Each (s,t) pair at distance d contributes d to edgeSum and d-1 to
		// vertexSum, so edgeSum - vertexSum = #connected ordered pairs.
		pairs := connectedOrderedPairs(g)
		if math.Abs(edgeSum-vertexSum-pairs) > 1e-6*(1+edgeSum) {
			t.Fatalf("graph %d: edgeSum %v - vertexSum %v != pairs %v",
				gi, edgeSum, vertexSum, pairs)
		}
	}
}

func connectedOrderedPairs(g *graph.Graph) float64 {
	n := g.NumVertices()
	var pairs float64
	dist := make([]int32, n)
	for s := graph.V(0); int(s) < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []graph.V{s}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Out(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
					pairs++
				}
			}
		}
	}
	return pairs
}

func TestEdgeBCParallelMatchesSerial(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 200, AvgDeg: 5, Communities: 4, TopShare: 0.5, LeafFrac: 0.2, Seed: 4})
	want := EdgeBC(g)
	for _, p := range []int{1, 2, 4} {
		got := EdgeBCParallel(g, p)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9*(1+want[i]) {
				t.Fatalf("p=%d: arc %d differs: %v vs %v", p, i, want[i], got[i])
			}
		}
	}
}

func TestCombineUndirectedEdges(t *testing.T) {
	g := gen.Path(4)
	scores := CombineUndirectedEdges(g, EdgeBC(g))
	if len(scores) != 3 {
		t.Fatalf("got %d edges, want 3", len(scores))
	}
	// Middle edge {1,2} has the top combined score 4+4=8.
	if scores[0].Edge != (graph.Edge{From: 1, To: 2}) || scores[0].Score != 8 {
		t.Fatalf("top edge = %+v", scores[0])
	}
	// Directed graphs list arcs as-is.
	gd := graph.NewFromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}}, true)
	ds := CombineUndirectedEdges(gd, EdgeBC(gd))
	if len(ds) != 2 {
		t.Fatalf("directed arcs = %d, want 2", len(ds))
	}
}

// Property: edge scores are non-negative and the parallel version agrees.
func TestQuickEdgeBC(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		g := gen.ErdosRenyi(40, 90, directed, seed)
		a := EdgeBC(g)
		b := EdgeBCParallel(g, 3)
		for i := range a {
			if a[i] < 0 || math.Abs(a[i]-b[i]) > 1e-9*(1+a[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
