package brandes

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
)

// EdgeBC computes exact edge betweenness centrality:
// EBC(e) = Σ_{s≠t} σ_st(e)/σ_st, the measure Girvan–Newman community
// detection removes edges by (the paper's motivating citation [7]). Scores
// are indexed by CSR arc position (graph.ArcBase/ArcPos); for undirected
// graphs each edge has two arcs whose scores are symmetric halves — use
// CombineUndirectedEdges to fold them.
func EdgeBC(g *graph.Graph) []float64 {
	ebc := make([]float64, g.NumArcs())
	edgeBCRange(g, 0, g.NumVertices(), ebc)
	return ebc
}

// EdgeBCParallel computes EdgeBC with coarse-grained source parallelism and
// per-worker partial score arrays.
func EdgeBCParallel(g *graph.Graph, workers int) []float64 {
	n := g.NumVertices()
	p := par.Workers(workers)
	if p > n {
		p = n
	}
	if p <= 1 {
		return EdgeBC(g)
	}
	partials := make([][]float64, p)
	par.For(p, p, func(w int) {
		lo := n * w / p
		hi := n * (w + 1) / p
		part := make([]float64, g.NumArcs())
		edgeBCRange(g, lo, hi, part)
		partials[w] = part
	})
	out := partials[0]
	for _, part := range partials[1:] {
		for i, x := range part {
			out[i] += x
		}
	}
	return out
}

// edgeBCRange accumulates the edge-dependency contributions of sources in
// [lo, hi) into ebc.
func edgeBCRange(g *graph.Graph, lo, hi int, ebc []float64) {
	n := g.NumVertices()
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]graph.V, 0, n)
	for i := range dist {
		dist[i] = -1
	}
	for si := lo; si < hi; si++ {
		s := graph.V(si)
		order = order[:0]
		dist[s] = 0
		sigma[s] = 1
		order = append(order, s)
		for head := 0; head < len(order); head++ {
			u := order[head]
			for _, v := range g.Out(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					order = append(order, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			base := g.ArcBase(v)
			var acc float64
			for k, w := range g.Out(v) {
				if dist[w] == dist[v]+1 {
					c := sigma[v] / sigma[w] * (1 + delta[w])
					ebc[base+int64(k)] += c
					acc += c
				}
			}
			delta[v] = acc
		}
		for _, v := range order {
			dist[v] = -1
			sigma[v] = 0
			delta[v] = 0
		}
	}
}

// EdgeScore pairs an edge with its combined betweenness.
type EdgeScore struct {
	Edge  graph.Edge
	Score float64
}

// CombineUndirectedEdges folds the two arc scores of each undirected edge
// into one score per edge (From < To), sorted by decreasing score. For
// directed graphs it simply lists every arc.
func CombineUndirectedEdges(g *graph.Graph, arcScores []float64) []EdgeScore {
	var out []EdgeScore
	for u := 0; u < g.NumVertices(); u++ {
		base := g.ArcBase(graph.V(u))
		for k, v := range g.Out(graph.V(u)) {
			score := arcScores[base+int64(k)]
			if g.Directed() {
				out = append(out, EdgeScore{Edge: graph.Edge{From: graph.V(u), To: v}, Score: score})
				continue
			}
			if graph.V(u) > v {
				continue
			}
			if rev := g.ArcPos(v, graph.V(u)); rev >= 0 {
				score += arcScores[rev]
			}
			out = append(out, EdgeScore{Edge: graph.Edge{From: graph.V(u), To: v}, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Edge.From != out[j].Edge.From {
			return out[i].Edge.From < out[j].Edge.From
		}
		return out[i].Edge.To < out[j].Edge.To
	})
	return out
}
