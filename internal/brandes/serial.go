// Package brandes implements Brandes' exact betweenness centrality algorithm
// and the published parallel variants the paper benchmarks against (§5.1):
// preds-serial [12], preds [12], succs [13], lockSyncFree [14], async [11]
// and hybrid [25]/[33], plus the sampling approximation [19] mentioned for
// GPU context.
//
// Conventions: scores follow the directed-sum definition
// BC(v) = Σ_{s≠v≠t} σ_st(v)/σ_st over ordered pairs; undirected graphs count
// each unordered pair in both directions (no ÷2), matching the paper's usage.
// Unreachable pairs contribute zero. σ counts use float64, which is exact for
// path counts below 2^53 and standard practice for BC implementations.
package brandes

import (
	"repro/internal/graph"
	"repro/internal/ws"
)

// sweepPool is this package's arena of pooled per-vertex sweep scratch: the
// serial baselines run one source sweep per call into a checked-out ws.Sweep
// and restore its clean-slot invariants with dirty-list sparse resets, so a
// warm per-source sweep performs zero heap allocations. (Sparse resets are
// bit-neutral versus the old full clears: a slot the previous source never
// touched already holds its initial value.)
//
// The pool is package-private on purpose: brandes reuses the sweep's Di2i
// array as its δ accumulator, which needs a "zero everywhere" invariant the
// shared arena does not provide (the four-dependency engines leave Di2i
// dirty by design). Within this pool the invariant holds — fresh sweeps
// start zeroed and every sweep here sparse-resets δ over its visit order.
var sweepPool ws.Pool

// serialScratch bundles the pooled sweep with the CSR-style predecessor
// storage Serial needs (sized by the graph's in-degrees, so it is per-graph
// rather than pooled).
type serialScratch struct {
	sw       *ws.Sweep
	predOffs []int64
	predBuf  []graph.V
	predLen  []int32
}

func newSerialScratch(g *graph.Graph, preds bool) *serialScratch {
	n := g.NumVertices()
	st := &serialScratch{sw: sweepPool.Get(n)}
	if preds {
		// A vertex's predecessors are a subset of its in-neighbors, so
		// in-degrees bound the per-vertex capacity.
		g.EnsureTranspose()
		st.predOffs = make([]int64, n+1)
		for v := 0; v < n; v++ {
			st.predOffs[v+1] = st.predOffs[v] + int64(g.InDegree(graph.V(v)))
		}
		st.predBuf = make([]graph.V, st.predOffs[n])
		st.predLen = make([]int32, n)
	}
	return st
}

func (st *serialScratch) release() {
	sweepPool.Put(st.sw)
	st.sw = nil
}

// runSource executes one predecessor-list Brandes sweep from s, adding the
// source's dependencies into bc. All per-vertex state is restored by sparse
// resets over the visit order (the dirty list), so warm calls do not
// allocate.
func (st *serialScratch) runSource(g *graph.Graph, s graph.V, bc []float64) {
	dist, sigma, delta := st.sw.Dist, st.sw.Sigma, st.sw.Di2i
	// Forward BFS: σ counting and predecessor collection.
	dist[s] = 0
	sigma[s] = 1
	order := append(st.sw.Order[:0], s)
	for head := 0; head < len(order); head++ {
		u := order[head]
		for _, v := range g.Out(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				order = append(order, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
				st.predBuf[st.predOffs[v]+int64(st.predLen[v])] = u
				st.predLen[v]++
			}
		}
	}
	st.sw.Order = order
	// Backward accumulation over predecessors.
	for i := len(order) - 1; i > 0; i-- {
		v := order[i]
		coef := (1 + delta[v]) / sigma[v]
		lo := st.predOffs[v]
		for k := int32(0); k < st.predLen[v]; k++ {
			u := st.predBuf[lo+int64(k)]
			delta[u] += sigma[u] * coef
		}
		bc[v] += delta[v]
	}
	// Sparse reset: only the visited vertices carry state.
	for _, v := range order {
		dist[v] = -1
		sigma[v] = 0
		delta[v] = 0
		st.predLen[v] = 0
	}
}

// Serial is the textbook sequential Brandes algorithm with predecessor lists
// ("preds-serial", the baseline every speedup in the paper is relative to).
func Serial(g *graph.Graph) []float64 {
	n := g.NumVertices()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	st := newSerialScratch(g, true)
	for s := graph.V(0); int(s) < n; s++ {
		st.runSource(g, s, bc)
	}
	st.release()
	return bc
}

// runSourceSuccs executes one successor-pull Brandes sweep from s (no
// predecessor lists; the backward sweep re-derives DAG successors from the
// distance array), adding the source's dependencies into bc.
func (st *serialScratch) runSourceSuccs(g *graph.Graph, s graph.V, bc []float64) {
	dist, sigma, delta := st.sw.Dist, st.sw.Sigma, st.sw.Di2i
	dist[s] = 0
	sigma[s] = 1
	order := append(st.sw.Order[:0], s)
	for head := 0; head < len(order); head++ {
		u := order[head]
		for _, v := range g.Out(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				order = append(order, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	st.sw.Order = order
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		var acc float64
		for _, w := range g.Out(v) {
			if dist[w] == dist[v]+1 {
				acc += sigma[v] / sigma[w] * (1 + delta[w])
			}
		}
		delta[v] = acc
		if v != s {
			bc[v] += acc
		}
	}
	for _, v := range order {
		dist[v] = -1
		sigma[v] = 0
		delta[v] = 0
	}
}

// SerialSuccs is the sequential successor-pull formulation: no predecessor
// lists are stored; the backward sweep re-derives DAG successors from the
// distance array. It is the serial skeleton the succs/lockSyncFree parallel
// variants build on.
func SerialSuccs(g *graph.Graph) []float64 {
	n := g.NumVertices()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	st := newSerialScratch(g, false)
	for s := graph.V(0); int(s) < n; s++ {
		st.runSourceSuccs(g, s, bc)
	}
	st.release()
	return bc
}
