// Package brandes implements Brandes' exact betweenness centrality algorithm
// and the published parallel variants the paper benchmarks against (§5.1):
// preds-serial [12], preds [12], succs [13], lockSyncFree [14], async [11]
// and hybrid [25]/[33], plus the sampling approximation [19] mentioned for
// GPU context.
//
// Conventions: scores follow the directed-sum definition
// BC(v) = Σ_{s≠v≠t} σ_st(v)/σ_st over ordered pairs; undirected graphs count
// each unordered pair in both directions (no ÷2), matching the paper's usage.
// Unreachable pairs contribute zero. σ counts use float64, which is exact for
// path counts below 2^53 and standard practice for BC implementations.
package brandes

import (
	"repro/internal/graph"
)

// Serial is the textbook sequential Brandes algorithm with predecessor lists
// ("preds-serial", the baseline every speedup in the paper is relative to).
func Serial(g *graph.Graph) []float64 {
	n := g.NumVertices()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]graph.V, 0, n) // visit order; reverse is the dependency order
	// CSR-style predecessor storage: v's predecessors are a subset of its
	// in-neighbors, so in-degrees bound the per-vertex capacity.
	g.EnsureTranspose()
	predOffs := make([]int64, n+1)
	for v := 0; v < n; v++ {
		predOffs[v+1] = predOffs[v] + int64(g.InDegree(graph.V(v)))
	}
	predBuf := make([]graph.V, predOffs[n])
	predLen := make([]int32, n)

	for s := graph.V(0); int(s) < n; s++ {
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			predLen[i] = 0
		}
		// Forward BFS: σ counting and predecessor collection.
		dist[s] = 0
		sigma[s] = 1
		order = append(order[:0], s)
		for head := 0; head < len(order); head++ {
			u := order[head]
			for _, v := range g.Out(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					order = append(order, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					predBuf[predOffs[v]+int64(predLen[v])] = u
					predLen[v]++
				}
			}
		}
		// Backward accumulation over predecessors.
		for i := len(order) - 1; i > 0; i-- {
			v := order[i]
			coef := (1 + delta[v]) / sigma[v]
			lo := predOffs[v]
			for k := int32(0); k < predLen[v]; k++ {
				u := predBuf[lo+int64(k)]
				delta[u] += sigma[u] * coef
			}
			bc[v] += delta[v]
		}
	}
	return bc
}

// SerialSuccs is the sequential successor-pull formulation: no predecessor
// lists are stored; the backward sweep re-derives DAG successors from the
// distance array. It is the serial skeleton the succs/lockSyncFree parallel
// variants build on.
func SerialSuccs(g *graph.Graph) []float64 {
	n := g.NumVertices()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]graph.V, 0, n)

	for s := graph.V(0); int(s) < n; s++ {
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		dist[s] = 0
		sigma[s] = 1
		order = append(order[:0], s)
		for head := 0; head < len(order); head++ {
			u := order[head]
			for _, v := range g.Out(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					order = append(order, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			var acc float64
			for _, w := range g.Out(v) {
				if dist[w] == dist[v]+1 {
					acc += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			delta[v] = acc
			if v != s {
				bc[v] += acc
			}
		}
	}
	return bc
}
