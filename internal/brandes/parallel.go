package brandes

import (
	"fmt"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/par"
)

// levels holds the per-level frontier buckets of one BFS ("Levels[]" in the
// paper's Algorithm 2).
type levels struct {
	buckets [][]graph.V
}

func (l *levels) level(d int) []graph.V {
	if d < len(l.buckets) {
		return l.buckets[d]
	}
	return nil
}

func (l *levels) reset() {
	for i := range l.buckets {
		l.buckets[i] = l.buckets[i][:0]
	}
	l.buckets = l.buckets[:0]
}

func (l *levels) push(d int, vs ...graph.V) {
	for len(l.buckets) <= d {
		l.buckets = append(l.buckets, nil)
	}
	l.buckets[d] = append(l.buckets[d], vs...)
}

// forwardLevelSync runs the parallel level-synchronous σ/dist phase shared by
// the preds and succs variants: frontier-parallel expansion with CAS
// discovery and atomic σ accumulation.
func forwardLevelSync(g *graph.Graph, s graph.V, p int,
	dist []int32, sigma []float64, visited *bitset.Bitset, lv *levels, bag *par.Bag[graph.V]) {
	dist[s] = 0
	sigma[s] = 1
	visited.Set(int(s))
	lv.push(0, s)
	frontier := lv.level(0)
	for d := int32(1); len(frontier) > 0; d++ {
		par.ForWorker(len(frontier), p, 0, func(w, i int) {
			u := frontier[i]
			for _, v := range g.Out(u) {
				if visited.TrySet(int(v)) {
					atomic.StoreInt32(&dist[v], d)
					bag.Add(w, v)
					atomicAddFloat64(&sigma[v], sigma[u])
					continue
				}
				// Already claimed. A still-unset distance means the claim
				// happened during this very level (claims only occur while
				// expanding level d), so v is at level d either way.
				if dv := atomic.LoadInt32(&dist[v]); dv == d || dv < 0 {
					atomicAddFloat64(&sigma[v], sigma[u])
				}
			}
		})
		next := bag.Drain(nil)
		lv.push(int(d), next...)
		frontier = lv.level(int(d))
	}
}

// Preds is the Bader–Madduri fine-grained level-synchronous parallelization
// [12]: predecessor lists are built during the forward phase with atomic
// slot reservation, and the backward phase pushes δ updates to predecessors
// with atomic float adds (the lock-equivalent the later variants remove).
func Preds(g *graph.Graph, workers int) []float64 {
	n := g.NumVertices()
	p := par.Workers(workers)
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	g.EnsureTranspose()
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	visited := bitset.New(n)
	lv := &levels{}
	bag := par.NewBag[graph.V](p)
	predOffs := make([]int64, n+1)
	for v := 0; v < n; v++ {
		predOffs[v+1] = predOffs[v] + int64(g.InDegree(graph.V(v)))
	}
	predBuf := make([]graph.V, predOffs[n])
	predLen := make([]int32, n)

	for s := graph.V(0); int(s) < n; s++ {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			predLen[i] = 0
		}
		visited.Reset()
		lv.reset()

		// Forward with predecessor collection.
		dist[s] = 0
		sigma[s] = 1
		visited.Set(int(s))
		lv.push(0, s)
		frontier := lv.level(0)
		for d := int32(1); len(frontier) > 0; d++ {
			par.ForWorker(len(frontier), p, 0, func(w, i int) {
				u := frontier[i]
				for _, v := range g.Out(u) {
					atLevelD := false
					if visited.TrySet(int(v)) {
						atomic.StoreInt32(&dist[v], d)
						bag.Add(w, v)
						atLevelD = true
					} else if dv := atomic.LoadInt32(&dist[v]); dv == d || dv < 0 {
						// dv < 0: claimed during this level by another
						// worker whose dist store is still in flight.
						atLevelD = true
					}
					if atLevelD {
						atomicAddFloat64(&sigma[v], sigma[u])
						slot := atomic.AddInt32(&predLen[v], 1) - 1
						predBuf[predOffs[v]+int64(slot)] = u
					}
				}
			})
			next := bag.Drain(nil)
			lv.push(int(d), next...)
			frontier = lv.level(int(d))
		}

		// Backward: per level, push to predecessors with atomic adds.
		for d := len(lv.buckets) - 1; d >= 0; d-- {
			bucket := lv.level(d)
			par.For(len(bucket), p, func(i int) {
				v := bucket[i]
				coef := (1 + delta[v]) / sigma[v]
				lo := predOffs[v]
				for k := int32(0); k < predLen[v]; k++ {
					u := predBuf[lo+int64(k)]
					atomicAddFloat64(&delta[u], sigma[u]*coef)
				}
				if v != s {
					bc[v] += delta[v]
				}
			})
		}
	}
	return bc
}

// Succs is the Madduri et al. successor-based variant [13]: identical
// forward phase, but the backward sweep has each vertex pull from its DAG
// successors (out-neighbors one level deeper), so every δ write is owned and
// phase 2 needs no synchronization.
func Succs(g *graph.Graph, workers int) []float64 {
	n := g.NumVertices()
	p := par.Workers(workers)
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	visited := bitset.New(n)
	lv := &levels{}
	bag := par.NewBag[graph.V](p)

	for s := graph.V(0); int(s) < n; s++ {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		visited.Reset()
		lv.reset()
		forwardLevelSync(g, s, p, dist, sigma, visited, lv, bag)
		backwardSuccs(g, s, p, dist, sigma, delta, lv, bc)
	}
	return bc
}

// backwardSuccs is the successor-pull dependency accumulation shared by the
// succs, lockSyncFree and hybrid variants.
func backwardSuccs(g *graph.Graph, s graph.V, p int,
	dist []int32, sigma, delta []float64, lv *levels, bc []float64) {
	for d := len(lv.buckets) - 1; d >= 0; d-- {
		bucket := lv.level(d)
		par.For(len(bucket), p, func(i int) {
			v := bucket[i]
			var acc float64
			for _, w := range g.Out(v) {
				if dist[w] == dist[v]+1 {
					acc += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			delta[v] = acc
			if v != s {
				bc[v] += acc
			}
		})
	}
}

// LockSyncFree is the Tan et al. variant [14]: no lock synchronization in
// either phase. Discovery still claims vertices (wait-free CAS bitset), but
// σ is computed by each newly discovered vertex pulling from its in-neighbors
// one level up — σ writes are owned, eliminating the atomic adds of the
// push-based forward phase — and the backward phase is successor-pull.
func LockSyncFree(g *graph.Graph, workers int) []float64 {
	n := g.NumVertices()
	p := par.Workers(workers)
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	g.EnsureTranspose()
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	visited := bitset.New(n)
	lv := &levels{}
	bag := par.NewBag[graph.V](p)

	for s := graph.V(0); int(s) < n; s++ {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		visited.Reset()
		lv.reset()

		dist[s] = 0
		sigma[s] = 1
		visited.Set(int(s))
		lv.push(0, s)
		frontier := lv.level(0)
		for d := int32(1); len(frontier) > 0; d++ {
			// Discover the next level.
			par.ForWorker(len(frontier), p, 0, func(w, i int) {
				u := frontier[i]
				for _, v := range g.Out(u) {
					if visited.TrySet(int(v)) {
						dist[v] = d
						bag.Add(w, v)
					}
				}
			})
			next := bag.Drain(nil)
			// Owned σ pull: each new vertex sums its in-neighbors' σ.
			par.For(len(next), p, func(i int) {
				v := next[i]
				var sg float64
				for _, u := range g.In(v) {
					if dist[u] == d-1 {
						sg += sigma[u]
					}
				}
				sigma[v] = sg
			})
			lv.push(int(d), next...)
			frontier = lv.level(int(d))
		}
		backwardSuccs(g, s, p, dist, sigma, delta, lv, bc)
	}
	return bc
}

// Async approximates the Prountzos–Pingali asynchronous algorithm [11] at the
// granularity the paper exploits: sources are processed concurrently by a
// dynamic scheduler (no level barriers between sources), each worker
// accumulating into a private BC array merged at the end. Like the original
// Galois implementation it only handles undirected graphs.
func Async(g *graph.Graph, workers int) ([]float64, error) {
	if g.Directed() {
		return nil, fmt.Errorf("brandes: async variant only supports undirected graphs")
	}
	n := g.NumVertices()
	p := par.Workers(workers)
	partial := make([][]float64, p)
	type ws struct {
		dist  []int32
		sigma []float64
		delta []float64
		order []graph.V
	}
	states := make([]*ws, p)
	par.ForWorker(n, p, 1, func(w, si int) {
		st := states[w]
		if st == nil {
			st = &ws{
				dist:  make([]int32, n),
				sigma: make([]float64, n),
				delta: make([]float64, n),
			}
			for i := range st.dist {
				st.dist[i] = -1
			}
			states[w] = st
			partial[w] = make([]float64, n)
		}
		s := graph.V(si)
		bc := partial[w]
		// Serial Brandes iteration for this source on worker-private state.
		st.order = st.order[:0]
		st.dist[s] = 0
		st.sigma[s] = 1
		st.order = append(st.order, s)
		for head := 0; head < len(st.order); head++ {
			u := st.order[head]
			for _, v := range g.Out(u) {
				if st.dist[v] < 0 {
					st.dist[v] = st.dist[u] + 1
					st.order = append(st.order, v)
				}
				if st.dist[v] == st.dist[u]+1 {
					st.sigma[v] += st.sigma[u]
				}
			}
		}
		for i := len(st.order) - 1; i >= 0; i-- {
			v := st.order[i]
			var acc float64
			for _, w2 := range g.Out(v) {
				if st.dist[w2] == st.dist[v]+1 {
					acc += st.sigma[v] / st.sigma[w2] * (1 + st.delta[w2])
				}
			}
			st.delta[v] = acc
			if v != s {
				bc[v] += acc
			}
		}
		// Sparse reset along the visited order only.
		for _, v := range st.order {
			st.dist[v] = -1
			st.sigma[v] = 0
			st.delta[v] = 0
		}
	})
	bc := make([]float64, n)
	for _, part := range partial {
		for v, x := range part {
			bc[v] += x
		}
	}
	return bc, nil
}
