package brandes

import (
	"math/rand"

	"repro/internal/graph"
)

// Sampled approximates BC by running Brandes' accumulation from a uniform
// sample of source vertices and scaling by n/samples (Bader et al. [19]).
// The paper cites sampling (on GPUs) as the previous fastest approach that
// APGRE's *exact* computation overtakes; we include it for that comparison.
// samples is clamped to [1, n].
func Sampled(g *graph.Graph, samples int, seed int64) []float64 {
	n := g.NumVertices()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	if samples < 1 {
		samples = 1
	}
	if samples > n {
		samples = n
	}
	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(n)

	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]graph.V, 0, n)
	for i := range dist {
		dist[i] = -1
	}

	for k := 0; k < samples; k++ {
		s := graph.V(perm[k])
		order = order[:0]
		dist[s] = 0
		sigma[s] = 1
		order = append(order, s)
		for head := 0; head < len(order); head++ {
			u := order[head]
			for _, v := range g.Out(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					order = append(order, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			var acc float64
			for _, w := range g.Out(v) {
				if dist[w] == dist[v]+1 {
					acc += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			delta[v] = acc
			if v != s {
				bc[v] += acc
			}
		}
		for _, v := range order {
			dist[v] = -1
			sigma[v] = 0
			delta[v] = 0
		}
	}
	scale := float64(n) / float64(samples)
	for v := range bc {
		bc[v] *= scale
	}
	return bc
}
