package brandes

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Pivot-selection strategies for approximate BC (Brandes & Pich [20]:
// "Centrality Estimation in Large Networks" compares exactly these
// families). SampledWith generalizes Sampled to a chosen strategy.
type PivotStrategy int

const (
	// PivotUniform samples sources uniformly at random (Bader et al. [19]).
	PivotUniform PivotStrategy = iota
	// PivotDegree samples proportionally to out-degree: hubs root the DAGs
	// that cover the most pairs.
	PivotDegree
	// PivotMaxMin picks pivots greedily maximizing the minimum distance to
	// previously chosen pivots (scattered coverage; Brandes–Pich's best
	// performer on spatial graphs).
	PivotMaxMin
)

// SampledWith approximates BC from `samples` pivots chosen by the given
// strategy, scaling by n/samples. samples is clamped to [1, n].
func SampledWith(g *graph.Graph, samples int, strategy PivotStrategy, seed int64) ([]float64, error) {
	n := g.NumVertices()
	bc := make([]float64, n)
	if n == 0 {
		return bc, nil
	}
	if samples < 1 {
		samples = 1
	}
	if samples > n {
		samples = n
	}
	var pivots []graph.V
	r := rand.New(rand.NewSource(seed))
	switch strategy {
	case PivotUniform:
		for _, i := range r.Perm(n)[:samples] {
			pivots = append(pivots, graph.V(i))
		}
	case PivotDegree:
		pivots = degreePivots(g, samples, r)
	case PivotMaxMin:
		pivots = maxMinPivots(g, samples, r)
	default:
		return nil, fmt.Errorf("brandes: unknown pivot strategy %d", strategy)
	}

	st := newSampleState(n)
	for _, s := range pivots {
		st.accumulate(g, s, bc)
	}
	scale := float64(n) / float64(len(pivots))
	for v := range bc {
		bc[v] *= scale
	}
	return bc, nil
}

// degreePivots draws distinct vertices with probability proportional to
// out-degree (plus one smoothing, so isolated vertices stay samplable).
func degreePivots(g *graph.Graph, k int, r *rand.Rand) []graph.V {
	n := g.NumVertices()
	cum := make([]float64, n+1)
	for v := 0; v < n; v++ {
		cum[v+1] = cum[v] + float64(g.OutDegree(graph.V(v))+1)
	}
	chosen := map[graph.V]bool{}
	var out []graph.V
	for len(out) < k && len(out) < n {
		x := r.Float64() * cum[n]
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] <= x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		v := graph.V(lo)
		if !chosen[v] {
			chosen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// maxMinPivots greedily picks each next pivot at maximum BFS distance from
// the closest already-picked pivot (unreachable counts as infinitely far).
func maxMinPivots(g *graph.Graph, k int, r *rand.Rand) []graph.V {
	n := g.NumVertices()
	minDist := make([]int32, n)
	for i := range minDist {
		minDist[i] = int32(n + 1) // "infinity"
	}
	cur := graph.V(r.Intn(n))
	out := []graph.V{cur}
	queue := make([]graph.V, 0, n)
	dist := make([]int32, n)
	for len(out) < k {
		// BFS from the newest pivot, folding into minDist.
		for i := range dist {
			dist[i] = -1
		}
		dist[cur] = 0
		minDist[cur] = 0
		queue = append(queue[:0], cur)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Out(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					if dist[v] < minDist[v] {
						minDist[v] = dist[v]
					}
					queue = append(queue, v)
				}
			}
		}
		best, bestD := graph.V(-1), int32(-1)
		for v := 0; v < n; v++ {
			if minDist[v] > bestD {
				best, bestD = graph.V(v), minDist[v]
			}
		}
		if bestD == 0 {
			break // every vertex is already a pivot
		}
		cur = best
		out = append(out, cur)
	}
	return out
}

// sampleState is the reusable single-source Brandes accumulator shared by
// the sampling strategies.
type sampleState struct {
	dist  []int32
	sigma []float64
	delta []float64
	order []graph.V
}

func newSampleState(n int) *sampleState {
	st := &sampleState{
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
	}
	for i := range st.dist {
		st.dist[i] = -1
	}
	return st
}

func (st *sampleState) accumulate(g *graph.Graph, s graph.V, bc []float64) {
	st.order = st.order[:0]
	st.dist[s] = 0
	st.sigma[s] = 1
	st.order = append(st.order, s)
	for head := 0; head < len(st.order); head++ {
		u := st.order[head]
		for _, v := range g.Out(u) {
			if st.dist[v] < 0 {
				st.dist[v] = st.dist[u] + 1
				st.order = append(st.order, v)
			}
			if st.dist[v] == st.dist[u]+1 {
				st.sigma[v] += st.sigma[u]
			}
		}
	}
	for i := len(st.order) - 1; i >= 0; i-- {
		v := st.order[i]
		var acc float64
		for _, w := range g.Out(v) {
			if st.dist[w] == st.dist[v]+1 {
				acc += st.sigma[v] / st.sigma[w] * (1 + st.delta[w])
			}
		}
		st.delta[v] = acc
		if v != s {
			bc[v] += acc
		}
	}
	for _, v := range st.order {
		st.dist[v] = -1
		st.sigma[v] = 0
		st.delta[v] = 0
	}
}
