package brandes

import (
	"container/heap"

	"repro/internal/graph"
	"repro/internal/par"
)

// Weighted betweenness centrality via Brandes' original Dijkstra
// formulation. The paper scopes APGRE to unweighted graphs; this engine is
// the weighted substrate our weighted APGRE extension (internal/core) is
// verified against.
//
// Equality of path lengths uses exact float64 comparison: along a relaxation
// chain Dijkstra computes each distance as the same sum of the same weights,
// so ties between alternative shortest paths compare exactly when weights
// are integers or other values without rounding (the generators produce
// integer weights). Arbitrary float weights with near-ties may split σ
// counts; see DESIGN.md.

// dijkstraState is the reusable per-run scratch for weighted BC.
type dijkstraState struct {
	dist  []float64
	sigma []float64
	delta []float64
	done  []bool
	order []graph.V // settled order; reverse = dependency order
	pq    wpq
}

func newDijkstraState(n int) *dijkstraState {
	st := &dijkstraState{
		dist:  make([]float64, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		done:  make([]bool, n),
	}
	for i := range st.dist {
		st.dist[i] = -1
	}
	return st
}

type wpqItem struct {
	d float64
	v graph.V
}

// wpq is a binary min-heap with lazy deletion.
type wpq []wpqItem

func (q wpq) Len() int           { return len(q) }
func (q wpq) Less(i, j int) bool { return q[i].d < q[j].d }
func (q wpq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *wpq) Push(x any)        { *q = append(*q, x.(wpqItem)) }
func (q *wpq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// runSource accumulates source s's dependency contributions into bc.
// g must be weighted (positive weights).
func (st *dijkstraState) runSource(g *graph.Graph, s graph.V, bc []float64) {
	dist, sigma, delta := st.dist, st.sigma, st.delta
	st.order = st.order[:0]
	st.pq = st.pq[:0]
	dist[s] = 0
	sigma[s] = 1
	heap.Push(&st.pq, wpqItem{0, s})
	for st.pq.Len() > 0 {
		it := heap.Pop(&st.pq).(wpqItem)
		v := it.v
		if st.done[v] || it.d != dist[v] {
			continue // stale heap entry
		}
		st.done[v] = true
		st.order = append(st.order, v)
		wts := g.OutWeights(v)
		for i, w := range g.Out(v) {
			nd := dist[v] + wts[i]
			switch {
			case dist[w] < 0 || nd < dist[w]:
				dist[w] = nd
				sigma[w] = sigma[v]
				heap.Push(&st.pq, wpqItem{nd, w})
			case nd == dist[w]:
				sigma[w] += sigma[v]
			}
		}
	}
	// Backward: successor pull in reverse settled order.
	for i := len(st.order) - 1; i >= 0; i-- {
		v := st.order[i]
		var acc float64
		wts := g.OutWeights(v)
		for k, w := range g.Out(v) {
			if dist[w] == dist[v]+wts[k] {
				acc += sigma[v] / sigma[w] * (1 + delta[w])
			}
		}
		delta[v] = acc
		if v != s {
			bc[v] += acc
		}
	}
	// Sparse reset.
	for _, v := range st.order {
		dist[v] = -1
		sigma[v] = 0
		delta[v] = 0
		st.done[v] = false
	}
}

// WeightedSerial computes exact BC of a weighted graph with one Dijkstra
// sweep per source (O(n·(m log n)) time).
func WeightedSerial(g *graph.Graph) []float64 {
	n := g.NumVertices()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	st := newDijkstraState(n)
	for s := graph.V(0); int(s) < n; s++ {
		st.runSource(g, s, bc)
	}
	return bc
}

// WeightedParallel computes weighted BC with coarse-grained source
// parallelism and per-worker partial accumulators.
func WeightedParallel(g *graph.Graph, workers int) []float64 {
	n := g.NumVertices()
	p := par.Workers(workers)
	if p <= 1 || n == 0 {
		return WeightedSerial(g)
	}
	states := make([]*dijkstraState, p)
	partials := make([][]float64, p)
	par.ForWorker(n, p, 1, func(w, si int) {
		if states[w] == nil {
			states[w] = newDijkstraState(n)
			partials[w] = make([]float64, n)
		}
		states[w].runSource(g, graph.V(si), partials[w])
	})
	bc := make([]float64, n)
	for _, part := range partials {
		for v, x := range part {
			bc[v] += x
		}
	}
	return bc
}
