// Package bfs provides the breadth-first-search substrate: serial BFS,
// level-synchronous parallel BFS (the paper's fine-grained phase-1 pattern),
// and a direction-optimizing hybrid BFS (Beamer et al. [33], the basis of the
// "hybrid" baseline). It also provides blocked-region variants used to count
// the α and β quantities of the decomposition (§3.1: "the number of vertices
// which a can reach without passing through SGi").
package bfs

import (
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/par"
)

// Unreached marks vertices not reached by a traversal.
const Unreached = int32(-1)

// HybridAlpha and HybridBeta are the direction-optimizing switch parameters
// of Beamer et al. [33]: go bottom-up when the frontier's out-edge volume
// exceeds 1/HybridAlpha of the unexplored edge volume, and back top-down once
// the frontier shrinks below 1/HybridBeta of the vertex count.
const (
	HybridAlpha = 14
	HybridBeta  = 24
)

// DefaultBottomUpFrac is the frontier/unvisited vertex-ratio threshold the
// σ-BFS sweeps (internal/core) use when Options.BottomUpFrac is unset. It is
// the vertex-count analogue of the HybridAlpha edge-volume rule — cheaper to
// evaluate inside the per-root sweep, where frontier edge volumes would have
// to be re-summed every level for every root.
const DefaultBottomUpFrac = 1.0 / HybridAlpha

// ShouldBottomUp is the shared vertex-ratio heuristic: switch to a bottom-up
// sweep when the frontier holds more than frac of the still-unvisited
// vertices. frac <= 0 disables bottom-up entirely.
func ShouldBottomUp(frontier, unvisited int, frac float64) bool {
	if frac <= 0 || unvisited <= 0 {
		return false
	}
	return float64(frontier) > frac*float64(unvisited)
}

// Distances returns BFS distances from s over out-arcs; unreached vertices
// get Unreached.
func Distances(g *graph.Graph, s graph.V) []int32 {
	return DistancesBlocked(g, s, nil)
}

// DistancesBlocked is Distances but never enters a vertex v (other than s
// itself) for which blocked(v) is true. A nil blocked blocks nothing.
func DistancesBlocked(g *graph.Graph, s graph.V, blocked func(graph.V) bool) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[s] = 0
	frontier := []graph.V{s}
	var next []graph.V
	for d := int32(1); len(frontier) > 0; d++ {
		next = next[:0]
		for _, u := range frontier {
			for _, v := range g.Out(u) {
				if dist[v] != Unreached {
					continue
				}
				if blocked != nil && blocked(v) {
					continue
				}
				dist[v] = d
				next = append(next, v)
			}
		}
		frontier, next = next, frontier
	}
	return dist
}

// ReachableCount returns the number of vertices reachable from s (counting s)
// without entering blocked vertices. Used for α of articulation points.
func ReachableCount(g *graph.Graph, s graph.V, blocked func(graph.V) bool) int64 {
	dist := DistancesBlocked(g, s, blocked)
	var c int64
	for _, d := range dist {
		if d != Unreached {
			c++
		}
	}
	return c
}

// ReverseReachableCount counts vertices that can reach s over out-arcs (i.e.
// forward reachability on the transpose), without entering blocked vertices.
// Used for β of articulation points on directed graphs; for undirected
// graphs it equals ReachableCount.
func ReverseReachableCount(g *graph.Graph, s graph.V, blocked func(graph.V) bool) int64 {
	if !g.Directed() {
		return ReachableCount(g, s, blocked)
	}
	return ReachableCount(g.Transpose(), s, blocked)
}

// ParallelDistances runs level-synchronous parallel BFS with the given worker
// count: the frontier is processed with a parallel for; newly discovered
// vertices are claimed with an atomic bitset and collected in per-worker bags
// (the reduction-bag pattern the paper's implementation uses).
func ParallelDistances(g *graph.Graph, s graph.V, workers int) []int32 {
	n := g.NumVertices()
	p := par.Workers(workers)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	visited := bitset.New(n)
	visited.Set(int(s))
	dist[s] = 0
	frontier := []graph.V{s}
	bag := par.NewBag[graph.V](p)
	for d := int32(1); len(frontier) > 0; d++ {
		par.ForWorker(len(frontier), p, 0, func(w, i int) {
			u := frontier[i]
			for _, v := range g.Out(u) {
				if visited.TrySet(int(v)) {
					dist[v] = d
					bag.Add(w, v)
				}
			}
		})
		frontier = bag.Drain(frontier)
	}
	return dist
}

// HybridDistances runs direction-optimizing BFS: top-down steps while the
// frontier is small, switching to bottom-up (every unvisited vertex scans its
// in-neighbors for a frontier member) when the frontier's out-edge volume
// exceeds alpha-th of the unexplored edge volume, and back once the frontier
// shrinks. Parameters follow Beamer et al.'s HybridAlpha/HybridBeta.
func HybridDistances(g *graph.Graph, s graph.V, workers int) []int32 {
	const alpha, beta = HybridAlpha, HybridBeta
	n := g.NumVertices()
	p := par.Workers(workers)
	g.EnsureTranspose()

	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	visited := bitset.New(n)
	visited.Set(int(s))
	dist[s] = 0

	frontier := []graph.V{s}
	bag := par.NewBag[graph.V](p)
	unexploredEdges := g.NumArcs()
	bottomUp := false

	frontierEdges := func(f []graph.V) int64 {
		var e int64
		for _, u := range f {
			e += int64(g.OutDegree(u))
		}
		return e
	}

	for d := int32(1); len(frontier) > 0; d++ {
		if !bottomUp {
			fe := frontierEdges(frontier)
			if fe > unexploredEdges/alpha {
				bottomUp = true
			}
			unexploredEdges -= fe
		}
		if bottomUp && len(frontier) < n/beta {
			bottomUp = false
		}
		if bottomUp {
			// Bottom-up: each unvisited vertex looks for any in-neighbor at
			// distance d-1. Writes are owned (one per v), no atomics needed.
			par.ForWorker(n, p, 0, func(w, vi int) {
				v := graph.V(vi)
				if dist[v] != Unreached {
					return
				}
				for _, u := range g.In(v) {
					// Atomic: a neighbour u may be concurrently claimed at
					// level d by another worker; the claimed value d never
					// equals d-1, so the logic is unaffected, but the
					// accesses must still be synchronized.
					if atomic.LoadInt32(&dist[u]) == d-1 {
						atomic.StoreInt32(&dist[v], d)
						visited.TrySet(int(v))
						bag.Add(w, v)
						return
					}
				}
			})
		} else {
			par.ForWorker(len(frontier), p, 0, func(w, i int) {
				u := frontier[i]
				for _, v := range g.Out(u) {
					if visited.TrySet(int(v)) {
						if dist[v] == Unreached {
							dist[v] = d
							bag.Add(w, v)
						}
					}
				}
			})
		}
		frontier = bag.Drain(frontier)
	}
	return dist
}
