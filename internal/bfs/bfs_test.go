package bfs

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestDistancesPath(t *testing.T) {
	g := gen.Path(6)
	d := Distances(g, 0)
	for i := 0; i < 6; i++ {
		if d[i] != int32(i) {
			t.Fatalf("d[%d] = %d, want %d", i, d[i], i)
		}
	}
	d2 := Distances(g, 3)
	want := []int32{3, 2, 1, 0, 1, 2}
	for i := range want {
		if d2[i] != want[i] {
			t.Fatalf("d2[%d] = %d, want %d", i, d2[i], want[i])
		}
	}
}

func TestDistancesDirectedUnreachable(t *testing.T) {
	// 0->1->2, 3 isolated; nothing reaches 0.
	g := graph.NewFromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}}, true)
	d := Distances(g, 0)
	if d[0] != 0 || d[1] != 1 || d[2] != 2 || d[3] != Unreached {
		t.Fatalf("d = %v", d)
	}
	d1 := Distances(g, 2)
	if d1[0] != Unreached || d1[1] != Unreached || d1[2] != 0 {
		t.Fatalf("d1 = %v", d1)
	}
}

func TestDistancesBlocked(t *testing.T) {
	// Path 0-1-2-3-4; blocking 2 cuts off 3,4.
	g := gen.Path(5)
	d := DistancesBlocked(g, 0, func(v graph.V) bool { return v == 2 })
	if d[0] != 0 || d[1] != 1 || d[2] != Unreached || d[3] != Unreached || d[4] != Unreached {
		t.Fatalf("d = %v", d)
	}
	// Blocking the source itself must not prevent the search from starting.
	d2 := DistancesBlocked(g, 2, func(v graph.V) bool { return v == 2 })
	if d2[2] != 0 || d2[1] != 1 || d2[3] != 1 || d2[0] != 2 {
		t.Fatalf("d2 = %v", d2)
	}
}

func TestReachableCounts(t *testing.T) {
	g := gen.Path(5)
	if c := ReachableCount(g, 0, nil); c != 5 {
		t.Fatalf("reach = %d", c)
	}
	if c := ReachableCount(g, 0, func(v graph.V) bool { return v == 3 }); c != 3 {
		t.Fatalf("blocked reach = %d, want 3 (0,1,2)", c)
	}
	gd := graph.NewFromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 3, To: 2}}, true)
	if c := ReachableCount(gd, 0, nil); c != 3 {
		t.Fatalf("directed reach = %d, want 3", c)
	}
	if c := ReverseReachableCount(gd, 2, nil); c != 4 {
		t.Fatalf("reverse reach of 2 = %d, want 4 (0,1,3,2)", c)
	}
	if c := ReverseReachableCount(gd, 0, nil); c != 1 {
		t.Fatalf("reverse reach of 0 = %d, want 1", c)
	}
	// Undirected: reverse == forward.
	if a, b := ReachableCount(g, 1, nil), ReverseReachableCount(g, 1, nil); a != b {
		t.Fatalf("undirected reverse %d != forward %d", b, a)
	}
}

func sameDist(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestParallelMatchesSerial(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Path(50),
		gen.Grid2D(15, 17),
		gen.BarabasiAlbert(400, 3, 1),
		gen.ErdosRenyi(300, 900, true, 2),
		gen.SocialLike(gen.SocialParams{N: 500, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 3}),
		gen.Star(100),
	}
	for gi, g := range graphs {
		for _, s := range []graph.V{0, graph.V(g.NumVertices() / 2)} {
			want := Distances(g, s)
			for _, p := range []int{1, 2, 4} {
				if got := ParallelDistances(g, s, p); !sameDist(got, want) {
					t.Fatalf("graph %d src %d workers %d: parallel BFS differs", gi, s, p)
				}
				if got := HybridDistances(g, s, p); !sameDist(got, want) {
					t.Fatalf("graph %d src %d workers %d: hybrid BFS differs", gi, s, p)
				}
			}
		}
	}
}

// TestNineFamiliesAllVariants runs ParallelDistances and HybridDistances
// against serial Distances on the nine graph families the repo's equivalence
// suites use everywhere (see internal/approx), plus directed and disconnected
// inputs, at several worker counts and sources.
func TestNineFamiliesAllVariants(t *testing.T) {
	families := map[string]*graph.Graph{
		"path":     gen.Path(20),
		"star":     gen.Star(20),
		"lollipop": gen.Lollipop(6, 10),
		"tree":     gen.Tree(50, 1),
		"caveman":  gen.Caveman(4, 6, false),
		"grid":     gen.Grid2D(6, 6),
		"social": gen.SocialLike(gen.SocialParams{
			N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 1}),
		"socialDir": gen.SocialLike(gen.SocialParams{
			N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3,
			Directed: true, Reciprocity: 0.5, Seed: 2}),
		"er": gen.ErdosRenyi(300, 900, false, 7),
		// Beyond the nine: a sparse directed graph with unreachable regions
		// and an explicitly disconnected graph (two components + isolated
		// vertices), both of which exercise the Unreached handling in the
		// bottom-up branch.
		"erDir": gen.ErdosRenyi(200, 400, true, 9),
		"disconnected": graph.NewFromEdges(12, []graph.Edge{
			{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0},
			{From: 4, To: 5}, {From: 5, To: 6}, {From: 6, To: 7}, {From: 7, To: 4},
		}, false),
	}
	for name, g := range families {
		n := g.NumVertices()
		for _, s := range []graph.V{0, graph.V(n / 2), graph.V(n - 1)} {
			want := Distances(g, s)
			for _, p := range []int{1, 2, 4, 8} {
				if got := ParallelDistances(g, s, p); !sameDist(got, want) {
					t.Fatalf("%s src %d workers %d: ParallelDistances differs", name, s, p)
				}
				if got := HybridDistances(g, s, p); !sameDist(got, want) {
					t.Fatalf("%s src %d workers %d: HybridDistances differs", name, s, p)
				}
			}
		}
	}
}

// TestShouldBottomUp pins the shared vertex-ratio heuristic contract.
func TestShouldBottomUp(t *testing.T) {
	if ShouldBottomUp(10, 100, 0) {
		t.Fatal("frac 0 must disable bottom-up")
	}
	if ShouldBottomUp(10, 100, -1) {
		t.Fatal("negative frac must disable bottom-up")
	}
	if ShouldBottomUp(5, 0, DefaultBottomUpFrac) {
		t.Fatal("no unvisited vertices: nothing to sweep bottom-up")
	}
	if !ShouldBottomUp(20, 100, DefaultBottomUpFrac) {
		t.Fatal("20 of 100 unvisited exceeds 1/14")
	}
	if ShouldBottomUp(5, 100, DefaultBottomUpFrac) {
		t.Fatal("5 of 100 unvisited is below 1/14")
	}
	// Boundary: strictly greater-than, not >=.
	if ShouldBottomUp(25, 100, 0.25) {
		t.Fatal("exactly frac*unvisited must stay top-down")
	}
}

func TestHybridDense(t *testing.T) {
	// A dense graph forces the bottom-up branch.
	g := gen.Complete(200)
	want := Distances(g, 0)
	got := HybridDistances(g, 0, 4)
	if !sameDist(got, want) {
		t.Fatal("hybrid BFS wrong on dense graph")
	}
}

// Property: on random graphs, every BFS variant agrees with serial and
// distances obey the edge relaxation property |d(u)-d(v)| <= 1 on undirected
// edges.
func TestQuickBFSAgree(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		g := gen.ErdosRenyi(120, 360, false, seed)
		p := 1 + int(pRaw%4)
		want := Distances(g, 0)
		if !sameDist(ParallelDistances(g, 0, p), want) {
			return false
		}
		if !sameDist(HybridDistances(g, 0, p), want) {
			return false
		}
		for _, e := range g.Edges() {
			du, dv := want[e.From], want[e.To]
			if du == Unreached != (dv == Unreached) {
				return false
			}
			if du != Unreached && dv != Unreached && du-dv > 1 || dv-du > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleVertex(t *testing.T) {
	g := graph.NewFromEdges(1, nil, false)
	d := Distances(g, 0)
	if len(d) != 1 || d[0] != 0 {
		t.Fatalf("d = %v", d)
	}
	if got := ParallelDistances(g, 0, 4); got[0] != 0 {
		t.Fatal("parallel single vertex wrong")
	}
	if got := HybridDistances(g, 0, 4); got[0] != 0 {
		t.Fatal("hybrid single vertex wrong")
	}
}
