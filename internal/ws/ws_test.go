package ws

import (
	"sync"
	"testing"
)

func TestGrowPreservesInvariants(t *testing.T) {
	var s Sweep
	s.Grow(10)
	if s.Cap() != 10 {
		t.Fatalf("Cap() = %d, want 10", s.Cap())
	}
	if err := s.CheckClean(); err != nil {
		t.Fatalf("fresh sweep dirty: %v", err)
	}
	// Dirty a few slots, sparse-reset them, then grow: invariants must hold
	// across the whole new capacity.
	s.Dist[3] = 7
	s.Sigma[3] = 2
	s.Visited.Set(3)
	s.Dist[3] = -1
	s.Sigma[3] = 0
	s.Visited.Clear(3)
	s.Grow(1000)
	if err := s.CheckClean(); err != nil {
		t.Fatalf("grown sweep dirty: %v", err)
	}
	if s.Cap() != 1000 {
		t.Fatalf("Cap() = %d, want 1000", s.Cap())
	}
	// Growing smaller is a no-op.
	dist := &s.Dist[0]
	s.Grow(5)
	if &s.Dist[0] != dist || s.Cap() != 1000 {
		t.Fatal("Grow to a smaller size must not reallocate")
	}
}

func TestGrowWeighted(t *testing.T) {
	var s Sweep
	s.GrowWeighted(8)
	if len(s.FDist) != 8 || len(s.Done) != 8 {
		t.Fatalf("weighted arrays not sized: %d/%d", len(s.FDist), len(s.Done))
	}
	if err := s.CheckClean(); err != nil {
		t.Fatalf("weighted sweep dirty: %v", err)
	}
	// Plain Grow must keep the weighted arrays in step once enabled.
	s.Grow(64)
	if len(s.FDist) != 64 || len(s.Done) != 64 {
		t.Fatalf("Grow dropped weighted arrays: %d/%d", len(s.FDist), len(s.Done))
	}
	if err := s.CheckClean(); err != nil {
		t.Fatalf("regrown weighted sweep dirty: %v", err)
	}
	// GrowWeighted on an unweighted-but-large sweep sizes FDist to the
	// existing capacity, not the (smaller) request.
	var u Sweep
	u.Grow(100)
	u.GrowWeighted(10)
	if len(u.FDist) != 100 {
		t.Fatalf("FDist sized %d, want existing capacity 100", len(u.FDist))
	}
}

func TestGrowLanes(t *testing.T) {
	var s Sweep
	s.GrowLanes(8)
	if len(s.LaneSigma) != 8*LaneWidth || len(s.LaneSeen) != 8 || len(s.LaneFront) != 8 {
		t.Fatalf("lane arrays not sized: %d/%d/%d", len(s.LaneSigma), len(s.LaneSeen), len(s.LaneFront))
	}
	if len(s.LaneDi2i) != 8*LaneWidth || len(s.LaneDi2o) != 8*LaneWidth ||
		len(s.LaneDo2o) != 8*LaneWidth || len(s.LaneBC) != 8*LaneWidth {
		t.Fatal("per-lane δ/BC arrays not sized")
	}
	if err := s.CheckClean(); err != nil {
		t.Fatalf("laned sweep dirty: %v", err)
	}
	// Plain Grow must keep the lane arrays in step once enabled.
	s.Grow(64)
	if len(s.LaneSigma) != 64*LaneWidth || len(s.LaneSeen) != 64 {
		t.Fatalf("Grow dropped lane arrays: %d/%d", len(s.LaneSigma), len(s.LaneSeen))
	}
	if err := s.CheckClean(); err != nil {
		t.Fatalf("regrown laned sweep dirty: %v", err)
	}
	// GrowLanes on a larger existing sweep sizes lanes to the existing
	// capacity, not the (smaller) request — mirroring GrowWeighted.
	var u Sweep
	u.Grow(100)
	u.GrowLanes(10)
	if len(u.LaneSigma) != 100*LaneWidth {
		t.Fatalf("LaneSigma sized %d, want existing capacity %d", len(u.LaneSigma), 100*LaneWidth)
	}
	// Dirty lane state must be caught and scrubbed.
	u.LaneSigma[5] = 1
	u.LaneSeen[3] = 0xff
	u.LaneFront[2] = 1
	if err := u.CheckClean(); err == nil {
		t.Fatal("expected dirty laned sweep")
	}
	u.Scrub()
	if err := u.CheckClean(); err != nil {
		t.Fatalf("scrubbed laned sweep dirty: %v", err)
	}
}

func TestScrub(t *testing.T) {
	var s Sweep
	s.GrowWeighted(16)
	s.Dist[5] = 3
	s.Sigma[5] = 1
	s.BC[5] = 2
	s.FDist[5] = 0.5
	s.Done[5] = true
	s.Visited.Set(5)
	if err := s.CheckClean(); err == nil {
		t.Fatal("expected dirty sweep")
	}
	s.Scrub()
	if err := s.CheckClean(); err != nil {
		t.Fatalf("scrubbed sweep dirty: %v", err)
	}
}

func TestPoolReuse(t *testing.T) {
	var p Pool
	a := p.Get(100)
	p.Put(a)
	b := p.Get(10)
	if b != a {
		t.Fatal("pool did not reuse the free sweep")
	}
	if b.Cap() != 100 {
		t.Fatalf("reused sweep shrank: Cap() = %d", b.Cap())
	}
	if g := b.Gen(); g != 2 {
		t.Fatalf("Gen() = %d, want 2 after two checkouts", g)
	}
	// The pool prefers the largest free sweep.
	big := p.Get(5000)
	p.Put(b)
	p.Put(big)
	c := p.Get(1)
	if c != big {
		t.Fatal("pool did not hand out the largest free sweep")
	}
	if size, inUse := p.Stats(); size != 2 || inUse != 1 {
		t.Fatalf("Stats() = (%d, %d), want (2, 1)", size, inUse)
	}
	p.Put(c)
	p.Put(p.Get(1)) // drains the other free entry and returns it
	if size, inUse := p.Stats(); size != 2 || inUse != 0 {
		t.Fatalf("Stats() = (%d, %d), want (2, 0)", size, inUse)
	}
	p.Put(nil) // no-op
}

// TestPoolRace hammers checkout/return from 8 goroutines; run under -race
// (ci.sh does) this pins the pool's synchronization and that no two
// goroutines ever share a checked-out sweep.
func TestPoolRace(t *testing.T) {
	var p Pool
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 64 + (g*37+i)%256
				s := p.Get(n)
				// Exclusive use: write, verify, sparse-reset.
				for v := 0; v < n; v++ {
					s.Dist[v] = int32(g)
					s.Sigma[v] = float64(i)
				}
				for v := 0; v < n; v++ {
					if s.Dist[v] != int32(g) || s.Sigma[v] != float64(i) {
						t.Errorf("sweep shared between goroutines: got (%d,%g)", s.Dist[v], s.Sigma[v])
						break
					}
					s.Dist[v] = -1
					s.Sigma[v] = 0
				}
				p.Put(s)
			}
		}(g)
	}
	wg.Wait()
	if _, inUse := p.Stats(); inUse != 0 {
		t.Fatalf("inUse = %d after all returns", inUse)
	}
	if size, _ := p.Stats(); size < 1 || size > goroutines {
		t.Fatalf("size = %d, want between 1 and %d", size, goroutines)
	}
	s := p.Get(1)
	if err := s.CheckClean(); err != nil {
		t.Fatalf("pooled sweep dirty after race test: %v", err)
	}
	p.Put(s)
}

// BenchmarkPoolCheckout measures the warm Get/Put cycle plus a touched-slot
// sparse reset — the per-engine overhead the arena adds to a sweep.
func BenchmarkPoolCheckout(b *testing.B) {
	var p Pool
	p.Put(p.Get(4096)) // warm: one sweep sized up front
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := p.Get(4096)
		v := int32(i % 4096)
		s.Dist[v] = 0
		s.Sigma[v] = 1
		s.Dist[v] = -1
		s.Sigma[v] = 0
		p.Put(s)
	}
}
