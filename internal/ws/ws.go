// Package ws provides the unified sweep-workspace arena shared by every
// betweenness-centrality engine in the repository: the core APGRE serial,
// fine-grained and weighted engines, the exported RootSweep used by the
// approximate estimator, the Brandes baselines, and (through core's pool)
// the bcd serving path.
//
// A Sweep bundles all per-vertex scratch one root sweep needs — distances,
// path counts, the four dependency arrays, a local BC accumulator, a visited
// bitset frontier and the BFS queue/order ring — sized by the largest
// sub-graph it has seen. The lane-widened layer (GrowLanes) adds the
// LaneWidth-slots-per-vertex σ/δ/BC arrays and per-vertex lane-mask words the
// bit-parallel multi-source engine (internal/msbfs) batches 64 roots over.
// A Pool hands Sweeps out to workers (Get) and takes
// them back (Put), so steady-state computation performs zero per-sweep heap
// allocation: the arena grows to the high-water mark once and is reused by
// every engine, request and worker thereafter.
//
// # Clean-slot invariants and lazy reset
//
// Instead of zeroing O(n) state per checkout, the arena relies on epoch-style
// lazy clearing: every Sweep in the pool satisfies the clean-slot invariants
//
//	Dist[v]  == -1     FDist[v] == -1     Sigma[v] == 0
//	BC[v]    == 0      Done[v]  == false  Visited   all clear
//
// and every engine restores them with a dirty-list sparse reset — walking
// only the vertices its own sweep touched (the Order ring is exactly that
// dirty list), which is O(touched), not O(n). Di2i/Di2o/Do2o carry no
// invariant: the four-dependency backward step assigns each visited vertex's
// slots exactly once per root, so they never need clearing at all. Grow
// preserves the invariants for new slots, so a freshly grown region is
// indistinguishable from a sparsely reset one — which is why pooling is
// bit-neutral: an engine reading a clean slot cannot tell whether the value
// came from make(), from a sparse reset, or from another engine's reset.
package ws

import (
	"fmt"
	"sync"

	"repro/internal/bitset"
)

// LaneWidth is the root-batch width of the lane-parallel (MS-BFS) arrays:
// one machine word of lanes, each lane tracking one root of a batched
// multi-source sweep.
const LaneWidth = 64

// Sweep is one checkout of per-vertex sweep scratch. Field slices all have
// length Cap() (Visited has at least that many bits; the Lane* float arrays
// have LaneWidth slots per vertex); callers index them by local vertex id.
// See the package comment for which fields carry clean-slot invariants.
type Sweep struct {
	capV     int
	weighted bool
	lanes    bool
	gen      uint64 // checkout epoch, bumped by Pool.Get (diagnostics)
	Dist     []int32
	Sigma    []float64
	Di2i     []float64
	Di2o     []float64
	Do2o     []float64
	BC       []float64
	Order    []int32 // BFS queue / settled-order ring; doubles as the dirty list
	Visited  *bitset.Bitset
	FDist    []float64 // weighted distances; allocated by GrowWeighted
	Done     []bool    // Dijkstra settled flags; allocated by GrowWeighted

	// Lane-parallel scratch for the MS-BFS batched engine (allocated by
	// GrowLanes): LaneSigma/LaneDi2i/LaneDi2o/LaneDo2o/LaneBC hold LaneWidth
	// slots per vertex (slot v*LaneWidth+l belongs to root lane l), LaneSeen
	// and LaneFront one lane-mask word per vertex. Invariants: LaneSigma,
	// LaneSeen and LaneFront are all zero in the pool; the per-lane δ and BC
	// arrays carry no invariant — like Di2i, the batched backward step
	// assigns every visited (vertex, lane) slot exactly once per batch and
	// the fold reads only visited slots.
	LaneSigma []float64
	LaneDi2i  []float64
	LaneDi2o  []float64
	LaneDo2o  []float64
	LaneBC    []float64
	LaneSeen  []uint64
	LaneFront []uint64
}

// Cap returns the number of vertices the sweep is sized for.
func (s *Sweep) Cap() int { return s.capV }

// Gen returns the checkout epoch (how many times Pool.Get handed this sweep
// out). Purely diagnostic.
func (s *Sweep) Gen() uint64 { return s.gen }

// Grow sizes the sweep for n local vertices, preserving every clean-slot
// invariant. Existing clean arrays hold only invariant values, so growth
// replaces them wholesale instead of copying — O(new capacity), paid only
// when the high-water mark rises.
func (s *Sweep) Grow(n int) {
	if s.capV >= n {
		return
	}
	s.capV = n
	s.Dist = make([]int32, n)
	for i := range s.Dist {
		s.Dist[i] = -1
	}
	s.Sigma = make([]float64, n)
	s.Di2i = make([]float64, n)
	s.Di2o = make([]float64, n)
	s.Do2o = make([]float64, n)
	s.BC = make([]float64, n)
	s.Visited = bitset.New(n)
	if s.weighted {
		s.growWeighted()
	}
	if s.lanes {
		s.growLanes()
	}
}

// GrowWeighted is Grow plus the weighted-engine arrays (FDist, Done). Once
// called, later Grow calls keep the weighted arrays sized too.
func (s *Sweep) GrowWeighted(n int) {
	s.Grow(n)
	if !s.weighted || len(s.FDist) < s.capV {
		s.weighted = true
		s.growWeighted()
	}
}

func (s *Sweep) growWeighted() {
	s.FDist = make([]float64, s.capV)
	for i := range s.FDist {
		s.FDist[i] = -1
	}
	s.Done = make([]bool, s.capV)
}

// GrowLanes is Grow plus the lane-parallel MS-BFS arrays (LaneWidth slots per
// vertex). Once called, later Grow calls keep the lane arrays sized too.
// Fresh allocations are zero, which is exactly the lane invariants, so — as
// with Grow — a grown region is indistinguishable from a sparsely reset one.
func (s *Sweep) GrowLanes(n int) {
	s.Grow(n)
	if !s.lanes || len(s.LaneSeen) < s.capV {
		s.lanes = true
		s.growLanes()
	}
}

func (s *Sweep) growLanes() {
	s.LaneSigma = make([]float64, s.capV*LaneWidth)
	s.LaneDi2i = make([]float64, s.capV*LaneWidth)
	s.LaneDi2o = make([]float64, s.capV*LaneWidth)
	s.LaneDo2o = make([]float64, s.capV*LaneWidth)
	s.LaneBC = make([]float64, s.capV*LaneWidth)
	s.LaneSeen = make([]uint64, s.capV)
	s.LaneFront = make([]uint64, s.capV)
}

// CheckClean verifies the clean-slot invariants over the whole capacity;
// it exists for tests and debugging (engines rely on sparse resets instead).
func (s *Sweep) CheckClean() error {
	for v := 0; v < s.capV; v++ {
		switch {
		case s.Dist[v] != -1:
			return fmt.Errorf("ws: dirty Dist[%d] = %d", v, s.Dist[v])
		case s.Sigma[v] != 0:
			return fmt.Errorf("ws: dirty Sigma[%d] = %g", v, s.Sigma[v])
		case s.BC[v] != 0:
			return fmt.Errorf("ws: dirty BC[%d] = %g", v, s.BC[v])
		case s.Visited.Get(v):
			return fmt.Errorf("ws: dirty Visited[%d]", v)
		}
		if s.weighted {
			if s.FDist[v] != -1 {
				return fmt.Errorf("ws: dirty FDist[%d] = %g", v, s.FDist[v])
			}
			if s.Done[v] {
				return fmt.Errorf("ws: dirty Done[%d]", v)
			}
		}
		if s.lanes {
			if s.LaneSeen[v] != 0 {
				return fmt.Errorf("ws: dirty LaneSeen[%d] = %#x", v, s.LaneSeen[v])
			}
			if s.LaneFront[v] != 0 {
				return fmt.Errorf("ws: dirty LaneFront[%d] = %#x", v, s.LaneFront[v])
			}
			for l := v * LaneWidth; l < (v+1)*LaneWidth; l++ {
				if s.LaneSigma[l] != 0 {
					return fmt.Errorf("ws: dirty LaneSigma[%d] = %g", l, s.LaneSigma[l])
				}
			}
		}
	}
	return nil
}

// Scrub unconditionally restores every invariant in O(cap); a recovery
// hatch for callers that overwrote state wholesale (e.g. a dense distance
// pass) and cannot enumerate what they touched.
func (s *Sweep) Scrub() {
	for i := range s.Dist {
		s.Dist[i] = -1
	}
	for i := range s.Sigma {
		s.Sigma[i] = 0
	}
	for i := range s.BC {
		s.BC[i] = 0
	}
	s.Visited.Reset()
	if s.weighted {
		for i := range s.FDist {
			s.FDist[i] = -1
		}
		for i := range s.Done {
			s.Done[i] = false
		}
	}
	if s.lanes {
		for i := range s.LaneSigma {
			s.LaneSigma[i] = 0
		}
		for i := range s.LaneSeen {
			s.LaneSeen[i] = 0
		}
		for i := range s.LaneFront {
			s.LaneFront[i] = 0
		}
	}
}

// Pool is a concurrency-safe free list of Sweeps. The zero value is ready to
// use. Get prefers the largest free sweep so small requests ride on already-
// grown arenas instead of growing small ones; the pool therefore converges
// on a few sweeps sized by the largest sub-graph, checked out per worker.
type Pool struct {
	mu    sync.Mutex
	free  []*Sweep
	size  int // sweeps ever created and not discarded
	inUse int
}

// Get checks a sweep sized for n vertices out of the pool, creating one only
// when the free list is empty. The caller has exclusive use until Put.
func (p *Pool) Get(n int) *Sweep {
	p.mu.Lock()
	var s *Sweep
	if len(p.free) > 0 {
		best := 0
		for i := 1; i < len(p.free); i++ {
			if p.free[i].capV > p.free[best].capV {
				best = i
			}
		}
		s = p.free[best]
		last := len(p.free) - 1
		p.free[best] = p.free[last]
		p.free[last] = nil
		p.free = p.free[:last]
	} else {
		s = &Sweep{}
		p.size++
	}
	p.inUse++
	p.mu.Unlock()
	s.gen++
	s.Grow(n)
	return s
}

// Put returns a sweep to the pool. The caller must have restored the
// clean-slot invariants (the engines' dirty-list resets do) — the pool does
// not scrub, that is the whole point. Put(nil) is a no-op.
func (p *Pool) Put(s *Sweep) {
	if s == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, s)
	p.inUse--
	p.mu.Unlock()
}

// Stats reports the pool gauges: size is the number of sweeps the pool has
// created (free + checked out), inUse how many are currently checked out.
func (p *Pool) Stats() (size, inUse int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size, p.inUse
}
