package core

import (
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/decompose"
	"repro/internal/par"
)

func atomicAddFloat64(addr *float64, delta float64) { par.AddFloat64(addr, delta) }

// The four-dependency backward step is identical in the serial and parallel
// engines: each DAG vertex pulls from its successors (out-neighbours one
// level deeper) and folds in the articulation-point seeds inline — δ_i2o
// seeds α(v) at every reachable AP (Eq. 4's init) and δ_o2o seeds
// β(s)·α(v) when the root is itself an AP (Eq. 6's init). Folding the seeds
// into the backward step means the δ arrays never need clearing: every
// visited vertex's slots are assigned exactly once per root.

// serialState is the per-worker scratch for coarse-grained (small sub-graph)
// processing: one goroutine runs whole sub-graphs with serial phases.
type serialState struct {
	alloc     int // allocated length of the slices below
	dist      []int32
	sigma     []float64
	di2i      []float64
	di2o      []float64
	do2o      []float64
	order     []int32
	bcLocal   []float64
	traversed int64
}

// ensure sizes the scratch for a sub-graph of n local vertices, preserving
// the "dist == -1 everywhere" invariant maintained by sparse resets.
func (st *serialState) ensure(n int) {
	if st.alloc >= n {
		return
	}
	st.alloc = n
	st.dist = make([]int32, n)
	for i := range st.dist {
		st.dist[i] = -1
	}
	st.sigma = make([]float64, n)
	st.di2i = make([]float64, n)
	st.di2o = make([]float64, n)
	st.do2o = make([]float64, n)
	st.bcLocal = make([]float64, n)
}

// runRoot executes Algorithm 2 for one root s of sg: forward σ BFS, then the
// backward four-dependency accumulation and BC merge (Eq. 7).
func (st *serialState) runRoot(sg *decompose.Subgraph, s int32, directed bool) {
	dist, sigma := st.dist, st.sigma
	di2i, di2o, do2o := st.di2i, st.di2o, st.do2o

	// Phase 1: forward BFS counting shortest paths.
	st.order = append(st.order[:0], s)
	dist[s] = 0
	sigma[s] = 1
	for head := 0; head < len(st.order); head++ {
		u := st.order[head]
		out := sg.Out(u)
		st.traversed += int64(len(out))
		du1 := dist[u] + 1
		for _, w := range out {
			if dist[w] < 0 {
				dist[w] = du1
				st.order = append(st.order, w)
			}
			if dist[w] == du1 {
				sigma[w] += sigma[u]
			}
		}
	}

	// Phase 2: backward accumulation in reverse BFS order.
	sIsArt := sg.IsArt[s]
	betaS := sg.Beta[s]
	gammaS := float64(sg.Gamma[s])
	for i := len(st.order) - 1; i >= 0; i-- {
		v := st.order[i]
		var i2i, i2o, o2o float64
		sv := sigma[v]
		dv1 := dist[v] + 1
		for _, w := range sg.Out(v) {
			if dist[w] == dv1 {
				r := sv / sigma[w]
				i2i += r * (1 + di2i[w])
				i2o += r * di2o[w]
				if sIsArt {
					o2o += r * do2o[w]
				}
			}
		}
		if v != s && sg.IsArt[v] {
			i2o += sg.Alpha[v] // δ_i2o seed (Eq. 4)
			if sIsArt {
				o2o += betaS * sg.Alpha[v] // δ_o2o seed (Eq. 6)
			}
		}
		di2i[v], di2o[v] = i2i, i2o
		if sIsArt {
			do2o[v] = o2o
		}
		if v != s {
			contrib := (1+gammaS)*(i2i+i2o) + o2o
			if sIsArt {
				contrib += betaS * i2i // δ_o2i = β(s)·δ_i2i (Eq. 5)
			}
			st.bcLocal[v] += contrib
		} else if gammaS > 0 {
			root := i2i + i2o
			if sIsArt {
				// Folded-leaf paths to every target outside the sub-graph
				// pass through s itself when s is a boundary AP; the δ_i2o
				// seeds exclude v == s, so add α(s) here (a gap in the
				// paper's Eq. 7 — see DESIGN.md §1).
				root += sg.Alpha[s]
			}
			if !directed {
				// Undirected correction (DESIGN.md §1): each folded leaf is
				// itself a reachable target of the root recursion and must
				// not count toward its own dependency.
				root--
			}
			st.bcLocal[v] += gammaS * root
		}
	}

	// Sparse reset: only dist and sigma carry state across roots.
	for _, v := range st.order {
		dist[v] = -1
		sigma[v] = 0
	}
}

// fineState processes one (large) sub-graph with fine-grained
// level-synchronous parallelism: frontier-parallel σ BFS with atomic adds
// and a successor-pull backward sweep with owned writes, exactly the
// paper's Algorithm 2 phase structure.
type fineState struct {
	p         int
	alloc     int // allocated length of the per-vertex slices below
	dist      []int32
	sigma     []float64
	di2i      []float64
	di2o      []float64
	do2o      []float64
	visited   *bitset.Bitset
	buckets   [][]int32
	bag       *par.Bag[int32]
	bcLocal   []float64
	traversed int64
}

func newFineState(p int) *fineState {
	return &fineState{p: p, bag: par.NewBag[int32](p)}
}

// ensure sizes the scratch for a sub-graph of n local vertices. Like
// serialState.ensure it preserves the "dist == -1 everywhere" invariant
// (runRoot's sparse resets maintain it across roots and sub-graphs), so a
// single fineState can serve every large sub-graph without reallocating.
func (st *fineState) ensure(n int) {
	if st.alloc >= n {
		return
	}
	st.alloc = n
	st.dist = make([]int32, n)
	for i := range st.dist {
		st.dist[i] = -1
	}
	st.sigma = make([]float64, n)
	st.di2i = make([]float64, n)
	st.di2o = make([]float64, n)
	st.do2o = make([]float64, n)
	st.visited = bitset.New(n)
	st.bcLocal = make([]float64, n)
}

func (st *fineState) runRoot(sg *decompose.Subgraph, s int32, directed bool) {
	p := st.p
	dist, sigma := st.dist, st.sigma
	di2i, di2o, do2o := st.di2i, st.di2o, st.do2o

	// Phase 1: level-synchronous parallel forward BFS.
	st.buckets = st.buckets[:0]
	dist[s] = 0
	sigma[s] = 1
	st.visited.Set(int(s))
	st.buckets = append(st.buckets, []int32{s})
	frontier := st.buckets[0]
	for d := int32(1); len(frontier) > 0; d++ {
		par.ForWorker(len(frontier), p, 0, func(w, i int) {
			u := frontier[i]
			su := sigma[u]
			for _, v := range sg.Out(u) {
				if st.visited.TrySet(int(v)) {
					atomic.StoreInt32(&dist[v], d)
					st.bag.Add(w, v)
					atomicAddFloat64(&sigma[v], su)
					continue
				}
				// A negative distance on a claimed vertex means the claim
				// happened during this level: v is at level d either way.
				if dv := atomic.LoadInt32(&dist[v]); dv == d || dv < 0 {
					atomicAddFloat64(&sigma[v], su)
				}
			}
		})
		next := st.bag.Drain(nil)
		st.buckets = append(st.buckets, next)
		frontier = next
	}

	// Phase 2: backward sweep, one level at a time, owned writes only.
	sIsArt := sg.IsArt[s]
	betaS := sg.Beta[s]
	gammaS := float64(sg.Gamma[s])
	for d := len(st.buckets) - 1; d >= 0; d-- {
		bucket := st.buckets[d]
		par.For(len(bucket), p, func(i int) {
			v := bucket[i]
			var i2i, i2o, o2o float64
			sv := sigma[v]
			dv1 := dist[v] + 1
			for _, w := range sg.Out(v) {
				if dist[w] == dv1 {
					r := sv / sigma[w]
					i2i += r * (1 + di2i[w])
					i2o += r * di2o[w]
					if sIsArt {
						o2o += r * do2o[w]
					}
				}
			}
			if v != s && sg.IsArt[v] {
				i2o += sg.Alpha[v]
				if sIsArt {
					o2o += betaS * sg.Alpha[v]
				}
			}
			di2i[v], di2o[v] = i2i, i2o
			if sIsArt {
				do2o[v] = o2o
			}
			if v != s {
				contrib := (1+gammaS)*(i2i+i2o) + o2o
				if sIsArt {
					contrib += betaS * i2i
				}
				st.bcLocal[v] += contrib
			} else if gammaS > 0 {
				root := i2i + i2o
				if sIsArt {
					root += sg.Alpha[s] // see serialState.runRoot
				}
				if !directed {
					root--
				}
				st.bcLocal[v] += gammaS * root
			}
		})
	}

	// Reset.
	for _, bucket := range st.buckets {
		for _, v := range bucket {
			st.traversed += int64(len(sg.Out(v)))
			dist[v] = -1
			sigma[v] = 0
		}
	}
	st.visited.Reset()
}
