package core

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/bfs"
	"repro/internal/bitset"
	"repro/internal/decompose"
	"repro/internal/par"
	"repro/internal/ws"
)

func atomicAddFloat64(addr *float64, delta float64) { par.AddFloat64(addr, delta) }

// sweepPool is the process-wide sweep-workspace arena (internal/ws): every
// engine in this package checks its per-vertex scratch out of it and returns
// it with the clean-slot invariants restored, so warm steady-state
// computation — repeated ComputeDecomposed calls, incremental updates, approx
// batches, bcd requests — performs zero per-sweep heap allocation.
var sweepPool ws.Pool

// SweepPoolStats exposes the arena's gauges (sweeps created, sweeps checked
// out) for serving telemetry — bcd publishes them as bcd_ws_pool_size and
// bcd_ws_in_use on /metrics.
func SweepPoolStats() (size, inUse int) { return sweepPool.Stats() }

// hybridMinVerts gates the direction-optimizing σ-BFS: below this size the
// bottom-up word scan costs more than it saves, and the transpose CSR is not
// worth building. Callers that want the hybrid sweep call sg.EnsureIn() for
// sub-graphs at or above this size; runRoot goes bottom-up only when the
// in-CSR is present AND hybridFrac is positive.
const hybridMinVerts = 256

// resolveFrac maps Options.BottomUpFrac to the effective threshold: 0 means
// the shared default, negative disables bottom-up sweeps entirely.
func resolveFrac(f float64) float64 {
	switch {
	case f == 0:
		return bfs.DefaultBottomUpFrac
	case f < 0:
		return 0
	default:
		return f
	}
}

// unvisitedWord returns the complement of the visited word wi restricted to
// valid vertex ids below n; base is wi*64.
func unvisitedWord(visited *bitset.Bitset, wi, n int) (word uint64, base int) {
	base = wi << 6
	word = ^visited.Word(wi)
	if rem := n - base; rem < 64 {
		word &= ^uint64(0) >> (64 - uint(rem))
	}
	return word, base
}

// The four-dependency backward step is identical in the serial and parallel
// engines: each DAG vertex pulls from its successors (out-neighbours one
// level deeper) and folds in the articulation-point seeds inline — δ_i2o
// seeds α(v) at every reachable AP (Eq. 4's init) and δ_o2o seeds
// β(s)·α(v) when the root is itself an AP (Eq. 6's init). Folding the seeds
// into the backward step means the δ arrays never need clearing: every
// visited vertex's slots are assigned exactly once per root.

// serialState is the per-worker scratch for coarse-grained (small sub-graph)
// processing: one goroutine runs whole sub-graphs with serial phases. All
// per-vertex arrays live in a pooled ws.Sweep checked out on first ensure
// and returned clean by release.
type serialState struct {
	ws        *ws.Sweep
	traversed int64

	// hybridFrac > 0 enables the direction-optimizing forward sweep: a level
	// whose frontier exceeds hybridFrac of the still-unvisited vertices runs
	// bottom-up over the visited bitset's complement (scanning in-arcs via
	// sg.In), the rest run top-down. Requires the sub-graph's in-CSR
	// (sg.EnsureIn); without it the sweep stays top-down. Either mode yields
	// bit-identical output: σ path counts are integer-valued (exact float64
	// sums, order-independent), dist is mode-independent, and the backward
	// phase only needs `order` grouped by non-decreasing level — within-level
	// permutations cannot change any value it computes.
	hybridFrac float64
}

// ensure checks sweep scratch sized for n local vertices out of the shared
// pool (growing it when a bigger sub-graph arrives); the clean-slot
// invariants — dist == -1 everywhere, σ/BC zero, visited clear — are
// guaranteed by the pool and maintained by runRoot's sparse resets.
func (st *serialState) ensure(n int) {
	if st.ws == nil {
		st.ws = sweepPool.Get(n)
		return
	}
	st.ws.Grow(n)
}

// release returns the scratch to the pool. The caller must have drained
// ws.BC (flush + zero) first; everything else is clean by the sparse-reset
// discipline.
func (st *serialState) release() {
	if st.ws != nil {
		sweepPool.Put(st.ws)
		st.ws = nil
	}
}

// runRoot executes Algorithm 2 for one root s of sg: forward σ BFS (direction
// optimizing when enabled), then the backward four-dependency accumulation
// and BC merge (Eq. 7).
func (st *serialState) runRoot(sg *decompose.Subgraph, s int32, directed bool) {
	dist, sigma := st.ws.Dist, st.ws.Sigma
	di2i, di2o, do2o := st.ws.Di2i, st.ws.Di2o, st.ws.Do2o
	bcLocal := st.ws.BC
	visited := st.ws.Visited
	n := sg.NumVerts()
	hybrid := st.hybridFrac > 0 && sg.HasIn()

	// Phase 1: forward BFS counting shortest paths, level by level. order is
	// grouped by level (non-decreasing dist), which is all phase 2 needs.
	order := append(st.ws.Order[:0], s)
	dist[s] = 0
	sigma[s] = 1
	if hybrid {
		visited.Set(int(s))
	}
	for d, lo, hi := int32(1), 0, 1; lo < hi; d++ {
		if hybrid && bfs.ShouldBottomUp(hi-lo, n-hi, st.hybridFrac) {
			// Bottom-up: every unvisited vertex scans its in-arcs for parents
			// one level up; σ is the sum over all such parents — the same
			// integer sum top-down accumulates edge by edge.
			for wi := 0; wi<<6 < n; wi++ {
				word, base := unvisitedWord(visited, wi, n)
				for word != 0 {
					tz := bits.TrailingZeros64(word)
					word &= word - 1
					v := int32(base + tz)
					var sv float64
					for _, u := range sg.In(v) {
						if dist[u] == d-1 {
							sv += sigma[u]
						}
					}
					if sv != 0 {
						dist[v] = d
						sigma[v] = sv
						visited.Set(int(v))
						order = append(order, v)
					}
				}
			}
		} else {
			for i := lo; i < hi; i++ {
				u := order[i]
				du1 := dist[u] + 1
				for _, w := range sg.Out(u) {
					if dist[w] < 0 {
						dist[w] = du1
						if hybrid {
							visited.Set(int(w))
						}
						order = append(order, w)
					}
					if dist[w] == du1 {
						sigma[w] += sigma[u]
					}
				}
			}
		}
		lo, hi = hi, len(order)
	}
	st.ws.Order = order

	// Phase 2: backward accumulation in reverse BFS order.
	sIsArt := sg.IsArt[s]
	betaS := sg.Beta[s]
	gammaS := float64(sg.Gamma[s])
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		var i2i, i2o, o2o float64
		sv := sigma[v]
		dv1 := dist[v] + 1
		for _, w := range sg.Out(v) {
			if dist[w] == dv1 {
				r := sv / sigma[w]
				i2i += r * (1 + di2i[w])
				i2o += r * di2o[w]
				if sIsArt {
					o2o += r * do2o[w]
				}
			}
		}
		if v != s && sg.IsArt[v] {
			i2o += sg.Alpha[v] // δ_i2o seed (Eq. 4)
			if sIsArt {
				o2o += betaS * sg.Alpha[v] // δ_o2o seed (Eq. 6)
			}
		}
		di2i[v], di2o[v] = i2i, i2o
		if sIsArt {
			do2o[v] = o2o
		}
		if v != s {
			contrib := (1+gammaS)*(i2i+i2o) + o2o
			if sIsArt {
				contrib += betaS * i2i // δ_o2i = β(s)·δ_i2i (Eq. 5)
			}
			bcLocal[v] += contrib
		} else if gammaS > 0 {
			root := i2i + i2o
			if sIsArt {
				// Folded-leaf paths to every target outside the sub-graph
				// pass through s itself when s is a boundary AP; the δ_i2o
				// seeds exclude v == s, so add α(s) here (a gap in the
				// paper's Eq. 7 — see DESIGN.md §1).
				root += sg.Alpha[s]
			}
			if !directed {
				// Undirected correction (DESIGN.md §1): each folded leaf is
				// itself a reachable target of the root recursion and must
				// not count toward its own dependency.
				root--
			}
			bcLocal[v] += gammaS * root
		}
	}

	// Sparse reset: only dist, sigma and visited carry state across roots,
	// and order is exactly the dirty list — O(touched), the pool's lazy-reset
	// contract. traversed keeps its pre-hybrid definition — Σ outdeg over
	// visited vertices (what a pure top-down sweep examines) — so the work
	// metric stays comparable across scheduler and sweep-mode choices.
	for _, v := range order {
		st.traversed += int64(len(sg.Out(v)))
		dist[v] = -1
		sigma[v] = 0
	}
	if hybrid {
		for _, v := range order {
			visited.Clear(int(v))
		}
	}
}

// fineState processes one (large) sub-graph with fine-grained
// level-synchronous parallelism: frontier-parallel σ BFS with atomic adds
// and a successor-pull backward sweep with owned writes, exactly the
// paper's Algorithm 2 phase structure. Per-vertex arrays come from the same
// pooled ws.Sweep as the serial engine; the frontier buckets and bag are
// engine-private.
type fineState struct {
	p         int
	ws        *ws.Sweep
	buckets   [][]int32
	bag       *par.Bag[int32]
	traversed int64

	// hybridFrac mirrors serialState.hybridFrac: the vertex-ratio threshold
	// for switching a level to a bottom-up sweep (0 disables). The parallel
	// bottom-up partitions unvisited vertices by 64-bit bitset word, so each
	// worker owns its words' visited bits and dist/σ writes; dist is still
	// read/written atomically because in-neighbors may be claimed at the
	// current level concurrently (the claimed value d never equals d-1, so
	// the parent test is unaffected).
	hybridFrac float64
}

func newFineState(p int) *fineState {
	return &fineState{p: p, bag: par.NewBag[int32](p)}
}

// ensure mirrors serialState.ensure: one pooled sweep serves every large
// sub-graph without reallocating, its invariants maintained by runRoot's
// resets.
func (st *fineState) ensure(n int) {
	if st.ws == nil {
		st.ws = sweepPool.Get(n)
		return
	}
	st.ws.Grow(n)
}

// release returns the scratch to the pool (see serialState.release).
func (st *fineState) release() {
	if st.ws != nil {
		sweepPool.Put(st.ws)
		st.ws = nil
	}
}

func (st *fineState) runRoot(sg *decompose.Subgraph, s int32, directed bool) {
	p := st.p
	dist, sigma := st.ws.Dist, st.ws.Sigma
	di2i, di2o, do2o := st.ws.Di2i, st.ws.Di2o, st.ws.Do2o
	bcLocal := st.ws.BC
	visited := st.ws.Visited
	n := sg.NumVerts()
	hybrid := st.hybridFrac > 0 && sg.HasIn()

	// Phase 1: level-synchronous parallel forward BFS, direction-optimizing
	// when enabled (see hybridFrac). Bucket contents are unordered within a
	// level; phase 2 only does owned per-vertex writes, so order is free.
	st.buckets = st.buckets[:0]
	dist[s] = 0
	sigma[s] = 1
	visited.Set(int(s))
	st.buckets = append(st.buckets, []int32{s})
	frontier := st.buckets[0]
	discovered := 1
	for d := int32(1); len(frontier) > 0; d++ {
		if hybrid && bfs.ShouldBottomUp(len(frontier), n-discovered, st.hybridFrac) {
			// Bottom-up, one visited-bitset word per index: the word owner is
			// the only writer of its bits and of dist/σ for its vertices.
			par.ForWorker((n+63)/64, p, 0, func(w, wi int) {
				word, base := unvisitedWord(visited, wi, n)
				for word != 0 {
					tz := bits.TrailingZeros64(word)
					word &= word - 1
					v := int32(base + tz)
					var sv float64
					for _, u := range sg.In(v) {
						if atomic.LoadInt32(&dist[u]) == d-1 {
							sv += sigma[u]
						}
					}
					if sv != 0 {
						atomic.StoreInt32(&dist[v], d)
						sigma[v] = sv
						visited.Set(int(v))
						st.bag.Add(w, v)
					}
				}
			})
		} else {
			par.ForWorker(len(frontier), p, 0, func(w, i int) {
				u := frontier[i]
				su := sigma[u]
				for _, v := range sg.Out(u) {
					if visited.TrySet(int(v)) {
						atomic.StoreInt32(&dist[v], d)
						st.bag.Add(w, v)
						atomicAddFloat64(&sigma[v], su)
						continue
					}
					// A negative distance on a claimed vertex means the claim
					// happened during this level: v is at level d either way.
					if dv := atomic.LoadInt32(&dist[v]); dv == d || dv < 0 {
						atomicAddFloat64(&sigma[v], su)
					}
				}
			})
		}
		next := st.bag.Drain(nil)
		st.buckets = append(st.buckets, next)
		frontier = next
		discovered += len(next)
	}

	// Phase 2: backward sweep, one level at a time, owned writes only.
	sIsArt := sg.IsArt[s]
	betaS := sg.Beta[s]
	gammaS := float64(sg.Gamma[s])
	for d := len(st.buckets) - 1; d >= 0; d-- {
		bucket := st.buckets[d]
		par.For(len(bucket), p, func(i int) {
			v := bucket[i]
			var i2i, i2o, o2o float64
			sv := sigma[v]
			dv1 := dist[v] + 1
			for _, w := range sg.Out(v) {
				if dist[w] == dv1 {
					r := sv / sigma[w]
					i2i += r * (1 + di2i[w])
					i2o += r * di2o[w]
					if sIsArt {
						o2o += r * do2o[w]
					}
				}
			}
			if v != s && sg.IsArt[v] {
				i2o += sg.Alpha[v]
				if sIsArt {
					o2o += betaS * sg.Alpha[v]
				}
			}
			di2i[v], di2o[v] = i2i, i2o
			if sIsArt {
				do2o[v] = o2o
			}
			if v != s {
				contrib := (1+gammaS)*(i2i+i2o) + o2o
				if sIsArt {
					contrib += betaS * i2i
				}
				bcLocal[v] += contrib
			} else if gammaS > 0 {
				root := i2i + i2o
				if sIsArt {
					root += sg.Alpha[s] // see serialState.runRoot
				}
				if !directed {
					root--
				}
				bcLocal[v] += gammaS * root
			}
		})
	}

	// Reset. The buckets are the dirty list here; the visited bitset was
	// written word-parallel, so a word-granular Reset is the cheap option.
	for _, bucket := range st.buckets {
		for _, v := range bucket {
			st.traversed += int64(len(sg.Out(v)))
			dist[v] = -1
			sigma[v] = 0
		}
	}
	visited.Reset()
}
