package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/brandes"
	"repro/internal/gen"
	"repro/internal/graph"
)

func assertIncMatches(t *testing.T, inc *Incremental, label string) {
	t.Helper()
	want := brandes.Serial(inc.Graph())
	got := inc.BC()
	if i, ok := bcClose(want, got, 1e-9); !ok {
		t.Fatalf("%s: incremental BC differs at %d: want %v got %v",
			label, i, want[i], got[i])
	}
}

func TestIncrementalIntraSubgraph(t *testing.T) {
	g := gen.Caveman(4, 5, false)
	inc, err := NewIncremental(g, Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "initial")

	// Chord inside clique 1 (vertices 5..9 are one sub-graph).
	if err := inc.InsertEdge(6, 9); err == nil {
		t.Fatal("expected duplicate error for clique edge")
	}
	// Cliques are complete; remove an edge instead, then re-add it.
	if err := inc.RemoveEdge(6, 9); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "remove clique chord")
	if err := inc.InsertEdge(6, 9); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "re-add clique chord")
	if inc.FullRebuilds() != 0 {
		t.Fatalf("intra-sub-graph ops triggered %d rebuilds", inc.FullRebuilds())
	}
}

func TestIncrementalCrossSubgraphRebuilds(t *testing.T) {
	g := gen.Caveman(3, 5, false)
	inc, err := NewIncremental(g, Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Vertices 1 (clique 0) and 11 (clique 2) share no sub-graph: inserting
	// the edge fuses blocks along the whole chain.
	if err := inc.InsertEdge(1, 11); err != nil {
		t.Fatal(err)
	}
	if inc.FullRebuilds() != 1 {
		t.Fatalf("rebuilds = %d, want 1", inc.FullRebuilds())
	}
	assertIncMatches(t, inc, "cross insert")
	// Removing it again: the edge now lives in one (big) sub-graph.
	if err := inc.RemoveEdge(1, 11); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "cross remove")
}

func TestIncrementalLeafDynamics(t *testing.T) {
	// Star: removing a spoke isolates a leaf; re-adding restores it. γ
	// bookkeeping must follow.
	inc, err := NewIncremental(gen.Star(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.RemoveEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "spoke removed")
	if err := inc.InsertEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "spoke restored")
	// Adding an edge between two leaves creates a triangle-ish block within
	// the same sub-graph.
	if err := inc.InsertEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "leaf-leaf edge")
}

func TestIncrementalDirected(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 120, AvgDeg: 4, Communities: 4,
		TopShare: 0.5, LeafFrac: 0.3, Directed: true, Reciprocity: 0.5, Seed: 9})
	inc, err := NewIncremental(g, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "initial directed")
	// Reverse an existing arc: remove u->v, insert v->u.
	var u, v graph.V = -1, -1
	for _, e := range g.Edges() {
		if !g.HasArc(e.To, e.From) {
			u, v = e.From, e.To
			break
		}
	}
	if u < 0 {
		t.Skip("no one-way arc found")
	}
	if err := inc.RemoveEdge(u, v); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "arc removed")
	if err := inc.InsertEdge(v, u); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "arc reversed")
}

func TestIncrementalValidation(t *testing.T) {
	inc, err := NewIncremental(gen.Path(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.InsertEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := inc.InsertEdge(0, 99); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := inc.InsertEdge(0, 1); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := inc.RemoveEdge(0, 3); err == nil {
		t.Fatal("absent removal accepted")
	}
	if _, err := NewIncremental(gen.WithRandomWeights(gen.Path(4), 3, 1), Options{}); err == nil {
		t.Fatal("weighted graph accepted")
	}
}

// bridgeWorld builds two triangles joined by a bridge: {0,1,2} - (2,3) -
// {3,4,5}. With Threshold 1 the decomposition keeps three sub-graphs: the
// two triangles and the bridge block {2,3}, with boundary APs 2 and 3.
func bridgeWorld(directed bool) *graph.Graph {
	edges := []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0},
		{From: 2, To: 3},
		{From: 3, To: 4}, {From: 4, To: 5}, {From: 5, To: 3},
	}
	if directed {
		// Make every edge reciprocal so both triangles stay strongly
		// connected; the decomposition still finds the same blocks.
		for _, e := range append([]graph.Edge(nil), edges...) {
			edges = append(edges, graph.Edge{From: e.To, To: e.From})
		}
	}
	return graph.NewFromEdges(6, edges, directed)
}

// Removing a bridge edge splits its block and disconnects the two triangles.
// This must stay a local (no-rebuild) update AND stay exact: the triangles'
// boundary APs lose their entire outside regions, so their α/β must drop to
// zero even though those sub-graphs were not the ones mutated.
func TestIncrementalBridgeRemoval(t *testing.T) {
	for _, directed := range []bool{false, true} {
		name := "undirected"
		if directed {
			name = "directed"
		}
		t.Run(name, func(t *testing.T) {
			inc, err := NewIncremental(bridgeWorld(directed), Options{Threshold: 1})
			if err != nil {
				t.Fatal(err)
			}
			assertIncMatches(t, inc, "initial")
			if err := inc.RemoveEdge(2, 3); err != nil {
				t.Fatal(err)
			}
			if inc.FullRebuilds() != 0 {
				t.Fatalf("bridge removal forced %d rebuilds, want 0 (local split)", inc.FullRebuilds())
			}
			assertIncMatches(t, inc, "bridge removed")
			if directed {
				// The reciprocal arc 3->2 still connects the triangles one
				// way; drop it too so both cases end fully disconnected.
				if err := inc.RemoveEdge(3, 2); err != nil {
					t.Fatal(err)
				}
				assertIncMatches(t, inc, "reverse bridge removed")
			}
			// The components must no longer see each other: every BC score
			// counts only triangle-internal paths (zero, in fact).
			for v, s := range inc.BC() {
				if s != 0 {
					t.Fatalf("split triangles have no brokered paths; bc[%d] = %v", v, s)
				}
			}
			// Re-inserting the bridge is intra-sub-graph again and must
			// restore the regions (the split-aware insertion refresh path).
			if err := inc.InsertEdge(2, 3); err != nil {
				t.Fatal(err)
			}
			if directed {
				assertIncMatches(t, inc, "one-way bridge")
				if err := inc.InsertEdge(3, 2); err != nil {
					t.Fatal(err)
				}
			}
			if inc.FullRebuilds() != 0 {
				t.Fatalf("bridge re-insertion forced %d rebuilds, want 0", inc.FullRebuilds())
			}
			assertIncMatches(t, inc, "bridge restored")
		})
	}
}

// A leaf edge is the degenerate bridge: removing it splits off an isolated
// vertex while another sub-graph still carries the AP's stale α.
func TestIncrementalLeafBridgeRemoval(t *testing.T) {
	// Triangle {0,1,2} plus the leaf edge 2-3, Threshold 1 so the leaf block
	// stays its own sub-graph and 2 is a boundary AP with α=1 in the triangle.
	g := graph.NewFromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}, {From: 2, To: 3},
	}, false)
	inc, err := NewIncremental(g, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "initial")
	if err := inc.RemoveEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if inc.FullRebuilds() != 0 {
		t.Fatalf("leaf removal forced %d rebuilds, want 0", inc.FullRebuilds())
	}
	assertIncMatches(t, inc, "leaf detached")
	if err := inc.InsertEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "leaf reattached")
}

// Randomized soak: a stream of random insertions and removals, each followed
// by an exactness check against a fresh Brandes run.
// TestSnapshotEpochImmutable: a snapshot taken before a mutation is a frozen
// epoch — its scores, graph and decomposition never change, no matter how the
// engine moves on; the next snapshot carries a higher sequence number.
func TestSnapshotEpochImmutable(t *testing.T) {
	g := gen.Caveman(4, 5, false)
	inc, err := NewIncremental(g, Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	snap0 := inc.Snapshot()
	bc0 := append([]float64(nil), snap0.BCView()...)
	edges0 := snap0.Graph.NumEdges()
	subs0 := len(snap0.Decomposition.Subgraphs)

	if err := inc.RemoveEdge(6, 9); err != nil { // local update
		t.Fatal(err)
	}
	if err := inc.InsertEdge(1, 11); err != nil { // forces a rebuild
		t.Fatal(err)
	}

	for i, v := range snap0.BCView() {
		if v != bc0[i] {
			t.Fatalf("old epoch's scores changed at %d: %v -> %v", i, bc0[i], v)
		}
	}
	if snap0.Graph.NumEdges() != edges0 {
		t.Fatalf("old epoch's graph changed: %d -> %d edges", edges0, snap0.Graph.NumEdges())
	}
	if len(snap0.Decomposition.Subgraphs) != subs0 {
		t.Fatal("old epoch's decomposition changed shape")
	}
	snap1 := inc.Snapshot()
	if snap1.Seq <= snap0.Seq {
		t.Fatalf("seq did not advance: %d -> %d", snap0.Seq, snap1.Seq)
	}
	assertIncMatches(t, inc, "after mutations")
}

// TestIncrementalConcurrentReaders hammers lock-free snapshot reads while a
// writer mutates — the race detector (ci runs this package under -race)
// checks the epoch handoff, and each reader checks its epoch is internally
// consistent (score vector sized to its own graph).
func TestIncrementalConcurrentReaders(t *testing.T) {
	g := gen.Caveman(4, 6, false)
	inc, err := NewIncremental(g, Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		go func() {
			for {
				select {
				case <-done:
					errs <- nil
					return
				default:
				}
				snap := inc.Snapshot()
				if len(snap.BCView()) != snap.Graph.NumVertices() {
					errs <- errInconsistentEpoch
					return
				}
				var sum float64
				for _, v := range snap.BCView() {
					sum += v
				}
				_ = sum
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if err := inc.RemoveEdge(1, 2); err != nil {
			t.Fatal(err)
		}
		if err := inc.InsertEdge(1, 2); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	for r := 0; r < 4; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	assertIncMatches(t, inc, "after concurrent churn")
}

var errInconsistentEpoch = fmt.Errorf("snapshot scores not sized to snapshot graph")

func TestIncrementalRandomOps(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 90, AvgDeg: 4, Communities: 4,
		TopShare: 0.5, LeafFrac: 0.3, Seed: 10})
	inc, err := NewIncremental(g, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	ops := 0
	for ops < 40 {
		u := graph.V(r.Intn(90))
		v := graph.V(r.Intn(90))
		if u == v {
			continue
		}
		cur := inc.Graph()
		var opErr error
		if cur.HasArc(u, v) {
			opErr = inc.RemoveEdge(u, v)
		} else {
			opErr = inc.InsertEdge(u, v)
		}
		if opErr != nil {
			t.Fatalf("op %d (%d,%d): %v", ops, u, v, opErr)
		}
		ops++
		assertIncMatches(t, inc, "soak")
	}
	if inc.FullRebuilds() == 0 {
		t.Log("note: soak run never required a structural rebuild")
	}
}
