package core

import (
	"math/rand"
	"testing"

	"repro/internal/brandes"
	"repro/internal/gen"
	"repro/internal/graph"
)

func assertIncMatches(t *testing.T, inc *Incremental, label string) {
	t.Helper()
	want := brandes.Serial(inc.Graph())
	got := inc.BC()
	if i, ok := bcClose(want, got, 1e-9); !ok {
		t.Fatalf("%s: incremental BC differs at %d: want %v got %v",
			label, i, want[i], got[i])
	}
}

func TestIncrementalIntraSubgraph(t *testing.T) {
	g := gen.Caveman(4, 5, false)
	inc, err := NewIncremental(g, Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "initial")

	// Chord inside clique 1 (vertices 5..9 are one sub-graph).
	if err := inc.InsertEdge(6, 9); err == nil {
		t.Fatal("expected duplicate error for clique edge")
	}
	// Cliques are complete; remove an edge instead, then re-add it.
	if err := inc.RemoveEdge(6, 9); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "remove clique chord")
	if err := inc.InsertEdge(6, 9); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "re-add clique chord")
	if inc.FullRebuilds != 0 {
		t.Fatalf("intra-sub-graph ops triggered %d rebuilds", inc.FullRebuilds)
	}
}

func TestIncrementalCrossSubgraphRebuilds(t *testing.T) {
	g := gen.Caveman(3, 5, false)
	inc, err := NewIncremental(g, Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Vertices 1 (clique 0) and 11 (clique 2) share no sub-graph: inserting
	// the edge fuses blocks along the whole chain.
	if err := inc.InsertEdge(1, 11); err != nil {
		t.Fatal(err)
	}
	if inc.FullRebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", inc.FullRebuilds)
	}
	assertIncMatches(t, inc, "cross insert")
	// Removing it again: the edge now lives in one (big) sub-graph.
	if err := inc.RemoveEdge(1, 11); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "cross remove")
}

func TestIncrementalLeafDynamics(t *testing.T) {
	// Star: removing a spoke isolates a leaf; re-adding restores it. γ
	// bookkeeping must follow.
	inc, err := NewIncremental(gen.Star(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.RemoveEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "spoke removed")
	if err := inc.InsertEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "spoke restored")
	// Adding an edge between two leaves creates a triangle-ish block within
	// the same sub-graph.
	if err := inc.InsertEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "leaf-leaf edge")
}

func TestIncrementalDirected(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 120, AvgDeg: 4, Communities: 4,
		TopShare: 0.5, LeafFrac: 0.3, Directed: true, Reciprocity: 0.5, Seed: 9})
	inc, err := NewIncremental(g, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "initial directed")
	// Reverse an existing arc: remove u->v, insert v->u.
	var u, v graph.V = -1, -1
	for _, e := range g.Edges() {
		if !g.HasArc(e.To, e.From) {
			u, v = e.From, e.To
			break
		}
	}
	if u < 0 {
		t.Skip("no one-way arc found")
	}
	if err := inc.RemoveEdge(u, v); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "arc removed")
	if err := inc.InsertEdge(v, u); err != nil {
		t.Fatal(err)
	}
	assertIncMatches(t, inc, "arc reversed")
}

func TestIncrementalValidation(t *testing.T) {
	inc, err := NewIncremental(gen.Path(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.InsertEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := inc.InsertEdge(0, 99); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := inc.InsertEdge(0, 1); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := inc.RemoveEdge(0, 3); err == nil {
		t.Fatal("absent removal accepted")
	}
	if _, err := NewIncremental(gen.WithRandomWeights(gen.Path(4), 3, 1), Options{}); err == nil {
		t.Fatal("weighted graph accepted")
	}
}

// Randomized soak: a stream of random insertions and removals, each followed
// by an exactness check against a fresh Brandes run.
func TestIncrementalRandomOps(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 90, AvgDeg: 4, Communities: 4,
		TopShare: 0.5, LeafFrac: 0.3, Seed: 10})
	inc, err := NewIncremental(g, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	ops := 0
	for ops < 40 {
		u := graph.V(r.Intn(90))
		v := graph.V(r.Intn(90))
		if u == v {
			continue
		}
		cur := inc.Graph()
		var opErr error
		if cur.HasArc(u, v) {
			opErr = inc.RemoveEdge(u, v)
		} else {
			opErr = inc.InsertEdge(u, v)
		}
		if opErr != nil {
			t.Fatalf("op %d (%d,%d): %v", ops, u, v, opErr)
		}
		ops++
		assertIncMatches(t, inc, "soak")
	}
	if inc.FullRebuilds == 0 {
		t.Log("note: soak run never required a structural rebuild")
	}
}
