package core

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestApplyBatchLocalSingleEpoch: a burst of intra-sub-graph mutations
// spanning several sub-graphs must publish exactly one epoch, rebuild
// nothing, and land on the same scores as applying them one at a time.
func TestApplyBatchLocalSingleEpoch(t *testing.T) {
	g := gen.Caveman(4, 5, false)
	inc, err := NewIncremental(g, Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq0 := inc.Snapshot().Seq
	// One removal per clique: each lands in a different sub-graph.
	ops := []EdgeOp{
		{Add: false, U: 1, V: 4},
		{Add: false, U: 6, V: 9},
		{Add: false, U: 11, V: 14},
		{Add: false, U: 16, V: 19},
	}
	errs, err := inc.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("op %d rejected: %v", i, e)
		}
	}
	if seq := inc.Snapshot().Seq; seq != seq0+1 {
		t.Fatalf("batch published %d epochs, want 1", seq-seq0)
	}
	if inc.FullRebuilds() != 0 {
		t.Fatalf("local batch triggered %d rebuilds", inc.FullRebuilds())
	}
	if inc.LocalUpdates() != len(ops) {
		t.Fatalf("LocalUpdates = %d, want %d", inc.LocalUpdates(), len(ops))
	}
	assertIncMatches(t, inc, "after local batch")
}

// TestApplyBatchStructuralOneRebuild: a batch containing several
// cross-sub-graph insertions must pay for ONE rebuild, not one per edge.
func TestApplyBatchStructuralOneRebuild(t *testing.T) {
	g := gen.Caveman(3, 5, false)
	inc, err := NewIncremental(g, Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq0 := inc.Snapshot().Seq
	ops := []EdgeOp{
		{Add: true, U: 1, V: 11}, // clique 0 <-> clique 2: structural
		{Add: true, U: 2, V: 12}, // another structural insert
		{Add: false, U: 6, V: 9}, // plus an intra-clique removal
	}
	errs, err := inc.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("op %d rejected: %v", i, e)
		}
	}
	if got := inc.FullRebuilds(); got != 1 {
		t.Fatalf("rebuilds = %d, want 1 for the whole batch", got)
	}
	if seq := inc.Snapshot().Seq; seq != seq0+1 {
		t.Fatalf("batch published %d epochs, want 1", seq-seq0)
	}
	assertIncMatches(t, inc, "after structural batch")
}

// TestApplyBatchSkipsInvalid: invalid ops are reported per index and
// skipped; the valid remainder still applies.
func TestApplyBatchSkipsInvalid(t *testing.T) {
	g := gen.Caveman(3, 5, false)
	inc, err := NewIncremental(g, Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	ops := []EdgeOp{
		{Add: true, U: 1, V: 2},   // already present: skipped
		{Add: false, U: 1, V: 11}, // absent: skipped
		{Add: true, U: 3, V: 3},   // self-loop: skipped
		{Add: true, U: 0, V: 999}, // out of range: skipped
		{Add: false, U: 6, V: 9},  // valid removal
	}
	errs, err := inc.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if errs[i] == nil {
			t.Fatalf("invalid op %d accepted", i)
		}
	}
	if errs[4] != nil {
		t.Fatalf("valid op rejected: %v", errs[4])
	}
	if inc.Graph().HasArc(6, 9) {
		t.Fatal("valid removal not applied")
	}
	assertIncMatches(t, inc, "after mixed-validity batch")
}

// TestApplyBatchIntraBatchSequence: validation sees the batch's own earlier
// ops, so remove-then-reinsert of the same edge inside one batch behaves
// like sequential application — and still costs one epoch.
func TestApplyBatchIntraBatchSequence(t *testing.T) {
	g := gen.Caveman(3, 5, false)
	inc, err := NewIncremental(g, Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq0 := inc.Snapshot().Seq
	ops := []EdgeOp{
		{Add: false, U: 6, V: 9},
		{Add: true, U: 6, V: 9}, // valid only because the removal is staged
	}
	errs, err := inc.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("staged sequence rejected: %v", errs)
	}
	if seq := inc.Snapshot().Seq; seq != seq0+1 {
		t.Fatalf("batch published %d epochs, want 1", seq-seq0)
	}
	if !inc.Graph().HasArc(6, 9) {
		t.Fatal("edge missing after remove+reinsert batch")
	}
	assertIncMatches(t, inc, "after staged sequence")
}

// TestApplyBatchAllInvalidNoPublish: a batch with nothing applicable must
// not publish an epoch at all.
func TestApplyBatchAllInvalidNoPublish(t *testing.T) {
	g := gen.Caveman(3, 5, false)
	inc, err := NewIncremental(g, Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq0 := inc.Snapshot().Seq
	errs, err := inc.ApplyBatch([]EdgeOp{
		{Add: true, U: 1, V: 2},
		{Add: true, U: 2, V: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] == nil || errs[1] == nil {
		t.Fatalf("invalid ops accepted: %v", errs)
	}
	if seq := inc.Snapshot().Seq; seq != seq0 {
		t.Fatalf("empty-effect batch published an epoch (seq %d -> %d)", seq0, seq)
	}
}

// TestApplyBatchSoak drives random batched mutations and checks against
// serial Brandes after every batch — the batched analogue of the
// single-mutation soak.
func TestApplyBatchSoak(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 90, AvgDeg: 4, Communities: 3,
		TopShare: 0.5, LeafFrac: 0.3, Seed: 17})
	inc, err := NewIncremental(g, Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	n := g.NumVertices()
	for round := 0; round < 8; round++ {
		ops := make([]EdgeOp, 0, 6)
		for len(ops) < cap(ops) {
			u := graph.V(rng.Intn(n))
			v := graph.V(rng.Intn(n))
			if u == v {
				continue
			}
			ops = append(ops, EdgeOp{Add: !inc.Graph().HasArc(u, v), U: u, V: v})
		}
		if _, err := inc.ApplyBatch(ops); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		assertIncMatches(t, inc, "soak round")
	}
}
