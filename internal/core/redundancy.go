package core

import (
	"math/rand"

	"repro/internal/decompose"
	"repro/internal/graph"
)

// RedundancyReport is the Figure 7 measurement: how Brandes' total work
// splits into effective computation, partial redundancy (re-traversals of
// common sub-DAGs that APGRE reuses) and total redundancy (whole DAGs of
// γ-folded vertices that APGRE never builds). Formulas per DESIGN.md §4:
//
//	W      = Σ_s m(s)                     — Brandes' work (arcs per DAG)
//	W_tot  = Σ_{u removed} m(u)           — folded roots' DAGs
//	W_eff  = Σ_SGi Σ_{s∈R_SGi} m_SGi(s)   — APGRE's per-sub-graph sweeps
//	partial = (W - W_tot - W_eff) / W
type RedundancyReport struct {
	BrandesWork   int64
	EffectiveWork int64
	TotalRedWork  int64
	// Effective + Partial + Total ≈ 1.
	Effective, Partial, Total float64
	// Sampled reports whether directed reachability was estimated from a
	// source sample rather than computed exactly (undirected graphs are
	// always exact: every BFS covers the whole connected component).
	Sampled bool
}

// AnalyzeRedundancy measures the redundancy split for g's decomposition.
// sampleK bounds the number of BFS probes used on directed graphs
// (<= 0 means 256); undirected graphs are analyzed exactly in O(V+E).
func AnalyzeRedundancy(g *graph.Graph, d *decompose.Decomposition, sampleK int, seed int64) *RedundancyReport {
	if sampleK <= 0 {
		sampleK = 256
	}
	rep := &RedundancyReport{}
	n := g.NumVertices()
	if n == 0 {
		return rep
	}
	removed := removedVertices(d, n)

	if !g.Directed() {
		// Exact: a BFS from any vertex traverses every arc of its component.
		labels, count := graph.ConnectedComponents(g)
		compArcs := make([]int64, count)
		for v := 0; v < n; v++ {
			compArcs[labels[v]] += int64(g.OutDegree(graph.V(v)))
		}
		for v := 0; v < n; v++ {
			rep.BrandesWork += compArcs[labels[v]]
			if removed[v] {
				rep.TotalRedWork += compArcs[labels[v]]
			}
		}
		for _, sg := range d.Subgraphs {
			rep.EffectiveWork += int64(len(sg.Roots)) * sg.NumArcs()
		}
	} else {
		rep.Sampled = true
		r := rand.New(rand.NewSource(seed))
		// W: sample sources uniformly.
		rep.BrandesWork = int64(float64(n) * meanReachableArcs(g, sampleSources(r, n, sampleK)))
		// W_tot: folded vertices u have m(u) = 1 + m(out-neighbour).
		var removedList []graph.V
		for v := 0; v < n; v++ {
			if removed[v] {
				removedList = append(removedList, graph.V(v))
			}
		}
		if len(removedList) > 0 {
			k := sampleK
			if k > len(removedList) {
				k = len(removedList)
			}
			r.Shuffle(len(removedList), func(i, j int) {
				removedList[i], removedList[j] = removedList[j], removedList[i]
			})
			var sum float64
			for _, u := range removedList[:k] {
				sum += 1 + reachableArcs(g, g.Out(u)[0])
			}
			rep.TotalRedWork = int64(sum / float64(k) * float64(len(removedList)))
		}
		// W_eff: stratified per-sub-graph root sampling.
		var totalRoots int64
		for _, sg := range d.Subgraphs {
			totalRoots += int64(len(sg.Roots))
		}
		for _, sg := range d.Subgraphs {
			nr := len(sg.Roots)
			if nr == 0 {
				continue
			}
			k := int(int64(sampleK) * int64(nr) / maxI64(totalRoots, 1))
			if k < 1 {
				k = 1
			}
			if k > nr {
				k = nr
			}
			var sum float64
			for i := 0; i < k; i++ {
				s := sg.Roots[r.Intn(nr)]
				sum += subgraphReachableArcs(sg, s)
			}
			rep.EffectiveWork += int64(sum / float64(k) * float64(nr))
		}
	}

	if rep.BrandesWork > 0 {
		w := float64(rep.BrandesWork)
		rep.Effective = float64(rep.EffectiveWork) / w
		rep.Total = float64(rep.TotalRedWork) / w
		rep.Partial = 1 - rep.Effective - rep.Total
		if rep.Partial < 0 {
			rep.Partial = 0
		}
	}
	return rep
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// removedVertices marks vertices folded out of the root set by γ.
func removedVertices(d *decompose.Decomposition, n int) []bool {
	removed := make([]bool, n)
	for _, sg := range d.Subgraphs {
		inRoots := make(map[int32]bool, len(sg.Roots))
		for _, l := range sg.Roots {
			inRoots[l] = true
		}
		for l, v := range sg.Verts {
			if !inRoots[int32(l)] {
				removed[v] = true
			}
		}
	}
	return removed
}

func sampleSources(r *rand.Rand, n, k int) []graph.V {
	if k >= n {
		out := make([]graph.V, n)
		for i := range out {
			out[i] = graph.V(i)
		}
		return out
	}
	out := make([]graph.V, k)
	for i := range out {
		out[i] = graph.V(r.Intn(n))
	}
	return out
}

func meanReachableArcs(g *graph.Graph, sources []graph.V) float64 {
	var sum float64
	for _, s := range sources {
		sum += reachableArcs(g, s)
	}
	if len(sources) == 0 {
		return 0
	}
	return sum / float64(len(sources))
}

// reachableArcs counts the arcs Brandes' forward BFS from s would scan:
// the out-degrees of all vertices reachable from s.
func reachableArcs(g *graph.Graph, s graph.V) float64 {
	n := g.NumVertices()
	seen := make([]bool, n)
	stack := []graph.V{s}
	seen[s] = true
	var arcs int64
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		arcs += int64(g.OutDegree(u))
		for _, v := range g.Out(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return float64(arcs)
}

// subgraphReachableArcs is reachableArcs over a sub-graph's local CSR.
func subgraphReachableArcs(sg *decompose.Subgraph, s int32) float64 {
	seen := make([]bool, sg.NumVerts())
	stack := []int32{s}
	seen[s] = true
	var arcs int64
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out := sg.Out(u)
		arcs += int64(len(out))
		for _, v := range out {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return float64(arcs)
}
