package core

import (
	"math"
	"testing"

	"repro/internal/decompose"
	"repro/internal/gen"
	"repro/internal/graph"
)

func analyze(t *testing.T, g *graph.Graph, th int) *RedundancyReport {
	t.Helper()
	d, err := decompose.Decompose(g, decompose.Options{Threshold: th})
	if err != nil {
		t.Fatal(err)
	}
	return AnalyzeRedundancy(g, d, 0, 1)
}

func TestRedundancyStarExact(t *testing.T) {
	// Star(10): W = 10 BFS × 18 arcs = 180; 9 leaves folded → W_tot = 162;
	// one root sweeping 18 arcs → W_eff = 18; partial = 0.
	rep := analyze(t, gen.Star(10), 64)
	if rep.BrandesWork != 180 || rep.TotalRedWork != 162 || rep.EffectiveWork != 18 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Partial != 0 || math.Abs(rep.Total-0.9) > 1e-12 || math.Abs(rep.Effective-0.1) > 1e-12 {
		t.Fatalf("fractions = %+v", rep)
	}
	if rep.Sampled {
		t.Fatal("undirected analysis must be exact")
	}
}

func TestRedundancyCycleNoSavings(t *testing.T) {
	rep := analyze(t, gen.Cycle(20), 64)
	if rep.Effective != 1 || rep.Partial != 0 || rep.Total != 0 {
		t.Fatalf("biconnected graph should have zero redundancy: %+v", rep)
	}
}

func TestRedundancyCavemanPartial(t *testing.T) {
	// Chained cliques: most of Brandes' work is partial redundancy.
	rep := analyze(t, gen.Caveman(8, 8, false), 4)
	if rep.Partial < 0.5 {
		t.Fatalf("caveman partial redundancy = %.2f, want > 0.5", rep.Partial)
	}
	if rep.Effective <= 0 || rep.Effective > 0.5 {
		t.Fatalf("caveman effective = %.2f", rep.Effective)
	}
}

func TestRedundancyFractionsSum(t *testing.T) {
	graphs := []*graph.Graph{
		gen.SocialLike(gen.SocialParams{N: 600, AvgDeg: 5, Communities: 8, TopShare: 0.5, LeafFrac: 0.3, Seed: 1}),
		gen.RoadLike(gen.RoadParams{Rows: 12, Cols: 12, DeleteFrac: 0.1, SpurFrac: 0.1, SpurLen: 2, Seed: 2}),
		gen.Tree(300, 3),
	}
	for gi, g := range graphs {
		rep := analyze(t, g, 32)
		sum := rep.Effective + rep.Partial + rep.Total
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("graph %d: fractions sum to %v: %+v", gi, sum, rep)
		}
		for _, f := range []float64{rep.Effective, rep.Partial, rep.Total} {
			if f < 0 || f > 1 {
				t.Fatalf("graph %d: fraction out of range: %+v", gi, rep)
			}
		}
	}
}

func TestRedundancyEffectiveMatchesCounters(t *testing.T) {
	// The analyzer's W_eff must equal the TraversedArcs the real computation
	// reports (undirected exact path).
	g := gen.SocialLike(gen.SocialParams{N: 500, AvgDeg: 4, Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 4})
	d, err := decompose.Decompose(g, decompose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeRedundancy(g, d, 0, 1)
	var bd Breakdown
	if _, err := ComputeDecomposed(d, Options{Breakdown: &bd}); err != nil {
		t.Fatal(err)
	}
	if rep.EffectiveWork != bd.TraversedArcs {
		t.Fatalf("analyzer W_eff %d != computed traversal %d", rep.EffectiveWork, bd.TraversedArcs)
	}
}

func TestRedundancyDirectedSampled(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 400, AvgDeg: 5, Communities: 6,
		TopShare: 0.5, LeafFrac: 0.3, Directed: true, Reciprocity: 0.5, Seed: 5})
	d, err := decompose.Decompose(g, decompose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeRedundancy(g, d, 64, 7)
	if !rep.Sampled {
		t.Fatal("directed analysis should be sampled")
	}
	if rep.BrandesWork <= 0 || rep.EffectiveWork <= 0 {
		t.Fatalf("empty estimates: %+v", rep)
	}
	if rep.Total <= 0 {
		t.Fatalf("directed leafy graph should show total redundancy: %+v", rep)
	}
	sum := rep.Effective + rep.Partial + rep.Total
	if sum < 0.5 || sum > 1.5 {
		t.Fatalf("sampled fractions implausible (sum %v): %+v", sum, rep)
	}
}

func TestRedundancyEmpty(t *testing.T) {
	g := graph.NewFromEdges(0, nil, false)
	d, _ := decompose.Decompose(g, decompose.Options{})
	rep := AnalyzeRedundancy(g, d, 0, 1)
	if rep.BrandesWork != 0 || rep.Effective != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
}
