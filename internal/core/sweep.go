package core

import (
	"repro/internal/bfs"
	"repro/internal/decompose"
	"repro/internal/msbfs"
	"repro/internal/ws"
)

// RootSweep exposes the serial four-dependency engine (state.go) one root at
// a time, so samplers outside this package — internal/approx's per-sub-graph
// pivot estimator — run exactly the same arithmetic as the exact engine. A
// full-budget sample therefore reproduces the coarse serial path of
// ComputeDecomposed bit-for-bit, not merely "up to rounding": same per-root
// sweep, same in-sub-graph accumulation order, same α/β/γ seeds.
//
// Usage discipline: after a group of Run calls on one sub-graph, Collect the
// accumulated scores with dst sized to that sub-graph's NumVerts before
// switching to another sub-graph. Collect zeroes the internal buffer, which
// keeps the scratch reusable across sub-graphs of different sizes.
//
// The scratch itself is a pooled ws.Sweep checked out of the shared core
// arena on the first Run; long-lived holders (the cached bcd estimator keeps
// one RootSweep per worker warm across requests) should call Release when
// idle or discarded so the workspace returns to the pool.
type RootSweep struct {
	st     serialState
	kernel msbfs.Kernel
}

// Run executes Algorithm 2 for one root of sg (forward σ BFS plus the
// backward four-dependency accumulation with the α/β/γ boundary terms),
// adding the root's contribution into the sweep's local score buffer. The
// scratch grows on demand and is reusable across sub-graphs. Large
// sub-graphs get the same direction-optimizing sweep as the exact engine —
// a per-level mode choice that is bit-neutral (see serialState.hybridFrac),
// so the bit-for-bit replay guarantee is unaffected.
func (rs *RootSweep) Run(sg *decompose.Subgraph, root int32, directed bool) {
	if sg.NumVerts() >= hybridMinVerts {
		sg.EnsureIn()
		rs.st.hybridFrac = bfs.DefaultBottomUpFrac
	} else {
		rs.st.hybridFrac = 0
	}
	rs.st.ensure(sg.NumVerts())
	rs.st.runRoot(sg, root, directed)
}

// RunBatch executes the given roots of sg through the bit-parallel
// multi-source kernel (internal/msbfs), up to ws.LaneWidth per traversal,
// accumulating into the same local score buffer as Run. The result is
// bit-identical to calling Run on each root in order (see the msbfs package
// comment), so samplers may switch between the two freely — a full-budget
// batched sample still replays the exact engine bit-for-bit. Below the
// engine's break-even gates the scalar per-root path is used directly.
func (rs *RootSweep) RunBatch(sg *decompose.Subgraph, roots []int32, directed bool) {
	if len(roots) < msbfsMinLanes || sg.NumVerts() < msbfsMinVerts {
		for _, s := range roots {
			rs.Run(sg, s, directed)
		}
		return
	}
	rs.st.ensure(sg.NumVerts())
	for lo := 0; lo < len(roots); lo += ws.LaneWidth {
		hi := lo + ws.LaneWidth
		if hi > len(roots) {
			hi = len(roots)
		}
		rs.st.traversed += rs.kernel.Run(sg, roots[lo:hi], directed, rs.st.ws)
	}
}

// Collect adds the accumulated local scores for the first len(dst) local
// vertices into dst and zeroes the internal buffer, leaving the sweep ready
// for the next sub-graph or pivot batch.
func (rs *RootSweep) Collect(dst []float64) {
	if rs.st.ws == nil {
		return
	}
	bc := rs.st.ws.BC
	for l := range dst {
		dst[l] += bc[l]
		bc[l] = 0
	}
}

// Traversed returns the total number of arcs traversed by all Run calls so
// far (the paper's work metric).
func (rs *RootSweep) Traversed() int64 { return rs.st.traversed }

// Release returns the pooled workspace to the shared arena. The sweep stays
// usable — the next Run checks a workspace out again — but callers must
// Collect any pending scores first (Release drops them back into the pool's
// clean state by zeroing the accumulation buffer).
func (rs *RootSweep) Release() {
	if rs.st.ws == nil {
		return
	}
	for l := range rs.st.ws.BC {
		rs.st.ws.BC[l] = 0
	}
	rs.st.release()
}
