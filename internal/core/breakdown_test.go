package core

import (
	"testing"

	"repro/internal/decompose"
	"repro/internal/gen"
)

func breakdownGraph() *gen.SocialParams {
	return &gen.SocialParams{N: 1200, AvgDeg: 6, Communities: 12,
		TopShare: 0.45, LeafFrac: 0.35, Seed: 42}
}

// TestBreakdownTotalCompute pins Figure 8's invariant on the full pipeline:
// Total is exactly the sum of the four phases and is never the zero value.
func TestBreakdownTotalCompute(t *testing.T) {
	g := gen.SocialLike(*breakdownGraph())
	for _, workers := range []int{1, 4} {
		var bd Breakdown
		if _, err := Compute(g, Options{Workers: workers, Breakdown: &bd}); err != nil {
			t.Fatal(err)
		}
		if bd.Total <= 0 {
			t.Fatalf("workers=%d: Breakdown.Total = %v, want > 0", workers, bd.Total)
		}
		if sum := bd.Partition + bd.AlphaBeta + bd.TopBC + bd.RestBC; bd.Total != sum {
			t.Fatalf("workers=%d: Total %v != phase sum %v", workers, bd.Total, sum)
		}
	}
}

// TestBreakdownTotalComputeDecomposed covers the direct-caller path (used by
// the incremental engine and the integration suite): ComputeDecomposed must
// populate Total itself instead of leaving the caller's zero in place.
func TestBreakdownTotalComputeDecomposed(t *testing.T) {
	g := gen.SocialLike(*breakdownGraph())
	d, err := decompose.Decompose(g, decompose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var bd Breakdown
		if _, err := ComputeDecomposed(d, Options{Workers: workers, Breakdown: &bd}); err != nil {
			t.Fatal(err)
		}
		if bd.Total <= 0 {
			t.Fatalf("workers=%d: Breakdown.Total = %v, want > 0", workers, bd.Total)
		}
		if sum := bd.Partition + bd.AlphaBeta + bd.TopBC + bd.RestBC; bd.Total != sum {
			t.Fatalf("workers=%d: Total %v != phase sum %v", workers, bd.Total, sum)
		}
		// Direct callers did not time a decomposition, so the preprocessing
		// phases stay zero and Total is exactly the BC phases.
		if bd.Partition != 0 || bd.AlphaBeta != 0 {
			t.Fatalf("workers=%d: unexpected preprocessing timings %v/%v",
				workers, bd.Partition, bd.AlphaBeta)
		}
	}
}

// TestFineStateReuse forces every sub-graph — large and small alike — through
// the shared fine-grained state (StrategyFineOnly, several workers) and
// checks the scores still match textbook Brandes, guarding the ensure-style
// reset that lets one fineState serve sub-graphs of different sizes.
func TestFineStateReuse(t *testing.T) {
	params := *breakdownGraph()
	params.Communities = 20
	g := gen.SocialLike(params)
	assertMatchesBrandes(t, g,
		Options{Workers: 4, Strategy: StrategyFineOnly}, "fine-state reuse")

	// Directed flavour exercises the directed root correction too.
	params.Directed = true
	params.Reciprocity = 0.5
	params.Seed = 43
	dg := gen.SocialLike(params)
	assertMatchesBrandes(t, dg,
		Options{Workers: 4, Strategy: StrategyFineOnly}, "fine-state reuse directed")
}
