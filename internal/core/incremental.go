package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/decompose"
	"repro/internal/graph"
)

// Incremental maintains exact BC scores across edge insertions and removals
// — the dynamic-graph direction the paper's decomposition naturally enables.
//
// The key observation: every edge belongs to exactly one sub-graph (it lives
// in one biconnected block), and an intra-sub-graph change moves no vertex
// across the articulation-point frontier. The boundary APs stay cut
// vertices, α/β (outside-region counts) are untouched, and shortest paths
// between sub-graph vertices stay inside — so only the mutated sub-graph's
// contribution to BC changes, and the update costs O(|SGi|·|E_SGi|) instead
// of the full O(|V|·|E|) recomputation.
//
// Two situations force a full rebuild, counted in FullRebuilds: an inserted
// edge whose endpoints share no sub-graph (it fuses blocks along the tree
// path between them), and edges touching isolated vertices (which belong to
// no sub-graph). Removals never rebuild: deleting an edge can only split
// structure, which leaves the existing (now conservative) partition valid.
//
// # Epochs
//
// The graph, decomposition and scores live together in one immutable *epoch*
// behind an atomic pointer. Readers (BC, Graph, Decomposition, Snapshot)
// never lock: they load the pointer and get a consistent generation that
// will never change underneath them. Mutators serialize on an internal
// mutex, build the next epoch copy-on-write — sharing the CSRs of every
// sub-graph the mutation does not rewrite (decompose.CloneForMutation /
// CloneForAlphaBeta) — and publish it with a single pointer store. That
// shrinks any outer write lock (e.g. bcd's per-entry RWMutex) to nothing:
// serving reads stay lock-free even while a mutation recomputes.
//
// Unweighted graphs only.
type Incremental struct {
	opt      Options
	directed bool
	n        int

	// mu serializes mutators; it guards edges and splitSinceRebuild. Readers
	// never take it — they load cur.
	mu    sync.Mutex
	edges []graph.Edge

	// splitSinceRebuild records that an undirected removal may have split a
	// sub-graph internally since the last full rebuild. While set, insertions
	// must refresh α/β too: re-adding an edge can reconnect outside regions
	// that the split had cut off.
	splitSinceRebuild bool

	cur atomic.Pointer[epochState]

	fullRebuilds atomic.Int64
	localUpdates atomic.Int64
}

// epochState is one immutable generation: a graph, the decomposition built
// over it, the per-sub-graph BC contributions and the merged scores. Once
// published via Incremental.cur nothing in it is ever written again.
type epochState struct {
	seq     uint64
	g       *graph.Graph
	d       *decompose.Decomposition
	sgOf    [][]int32   // vertex -> sub-graph indices (partition-stable)
	contrib [][]float64 // per-sub-graph local BC contributions
	bc      []float64
}

// Snapshot is a consistent, immutable view of one epoch: the graph, the
// decomposition and the scores all belong to the same generation. Callers
// must treat every reachable structure as read-only.
type Snapshot struct {
	// Seq increments with every published epoch (mutation or rebuild); equal
	// Seq values denote the identical epoch, so caches keyed by Seq (e.g.
	// bcd's approx estimator) invalidate exactly when the graph changes.
	Seq           uint64
	Graph         *graph.Graph
	Decomposition *decompose.Decomposition
	bc            []float64
}

// BC returns a copy of the snapshot's scores.
func (s Snapshot) BC() []float64 {
	out := make([]float64, len(s.bc))
	copy(out, s.bc)
	return out
}

// BCView returns the snapshot's scores without copying. The slice is
// immutable (it belongs to a published epoch); callers must not modify it.
func (s Snapshot) BCView() []float64 { return s.bc }

// NewIncremental decomposes g and computes the initial scores. The Options'
// parallel settings are ignored (updates run serially); Threshold,
// DisableGamma and RootEngine apply — the engine choice is bit-invisible in
// the scores (see RootEngine), so mutations absorbed under either engine
// publish identical epochs.
func NewIncremental(g *graph.Graph, opt Options) (*Incremental, error) {
	if g.Weighted() {
		return nil, fmt.Errorf("core: incremental BC supports unweighted graphs only")
	}
	switch opt.RootEngine {
	case EngineScalar, EngineMSBFS:
	default:
		return nil, fmt.Errorf("core: unknown root engine %d", opt.RootEngine)
	}
	inc := &Incremental{
		opt:      opt,
		directed: g.Directed(),
		n:        g.NumVertices(),
		edges:    g.Edges(),
	}
	if err := inc.rebuild(); err != nil {
		return nil, err
	}
	inc.fullRebuilds.Store(0) // the initial build does not count
	return inc, nil
}

// Snapshot returns the current epoch. Lock-free; the result stays internally
// consistent forever (later mutations publish new epochs instead of editing
// this one).
func (inc *Incremental) Snapshot() Snapshot {
	e := inc.cur.Load()
	return Snapshot{Seq: e.seq, Graph: e.g, Decomposition: e.d, bc: e.bc}
}

// BC returns a copy of the current scores.
func (inc *Incremental) BC() []float64 { return inc.Snapshot().BC() }

// Graph returns the current graph.
func (inc *Incremental) Graph() *graph.Graph { return inc.cur.Load().g }

// Decomposition returns the current decomposition. After removals the
// partition can be conservative (a split block keeps its pre-split
// sub-graph); callers must treat it as read-only.
func (inc *Incremental) Decomposition() *decompose.Decomposition { return inc.cur.Load().d }

// FullRebuilds counts structural fallbacks (for tests and telemetry).
func (inc *Incremental) FullRebuilds() int { return int(inc.fullRebuilds.Load()) }

// LocalUpdates counts mutations absorbed without a rebuild (the incremental
// fast path bcd reports on its /metrics endpoint).
func (inc *Incremental) LocalUpdates() int { return int(inc.localUpdates.Load()) }

// publish makes next the current epoch. Directed graphs get their transpose
// materialized first so no reader ever triggers the lazy build concurrently.
func (inc *Incremental) publish(next *epochState) {
	if inc.directed {
		next.g.EnsureTranspose()
	}
	inc.cur.Store(next)
}

// rebuild decomposes from scratch and recomputes every contribution into a
// fresh epoch. Caller holds mu (or is the constructor).
func (inc *Incremental) rebuild() error {
	inc.fullRebuilds.Add(1)
	inc.splitSinceRebuild = false
	g := graph.NewFromEdges(inc.n, inc.edges, inc.directed)
	d, err := decompose.Decompose(g, decompose.Options{
		Threshold:    inc.opt.Threshold,
		AlphaBeta:    inc.opt.AlphaBeta,
		DisableGamma: inc.opt.DisableGamma,
	})
	if err != nil {
		return err
	}
	next := &epochState{
		g:       g,
		d:       d,
		sgOf:    make([][]int32, inc.n),
		contrib: make([][]float64, len(d.Subgraphs)),
		bc:      make([]float64, inc.n),
	}
	if prev := inc.cur.Load(); prev != nil {
		next.seq = prev.seq + 1
	}
	for si, sg := range d.Subgraphs {
		for _, v := range sg.Verts {
			next.sgOf[v] = append(next.sgOf[v], int32(si))
		}
	}
	for si := range d.Subgraphs {
		if err := inc.recompute(next, si); err != nil {
			return err
		}
	}
	inc.publish(next)
	return nil
}

// recompute refreshes sub-graph si's contribution inside the epoch under
// construction and patches its scores. The sweep scratch is pooled; the
// stored contribution is a private copy (epochs share contrib arrays
// copy-on-write, so workspace memory must never leak into one).
func (inc *Incremental) recompute(next *epochState, si int) error {
	sg := next.d.Subgraphs[si]
	n := sg.NumVerts()
	st := &msbfsState{}
	if n >= hybridMinVerts {
		sg.EnsureIn()
		st.hybridFrac = resolveFrac(inc.opt.BottomUpFrac)
	}
	st.ensure(n)
	if inc.opt.RootEngine == EngineMSBFS {
		st.runRoots(sg, sg.Roots, inc.directed)
	} else {
		for _, s := range sg.Roots {
			st.runRoot(sg, s, inc.directed)
		}
	}
	fresh := make([]float64, n)
	copy(fresh, st.ws.BC[:n])
	for l := range st.ws.BC[:n] {
		st.ws.BC[l] = 0
	}
	st.release()
	old := next.contrib[si]
	for l, v := range sg.Verts {
		if old != nil {
			next.bc[v] -= old[l]
		}
		next.bc[v] += fresh[l]
	}
	next.contrib[si] = fresh
	return nil
}

// commonSubgraph returns the sub-graph index containing both endpoints, or
// -1 (two sub-graphs never share more than one vertex, so the intersection
// has at most one element).
func commonSubgraph(sgOf [][]int32, u, v graph.V) int {
	for _, a := range sgOf[u] {
		for _, b := range sgOf[v] {
			if a == b {
				return int(a)
			}
		}
	}
	return -1
}

func (inc *Incremental) validate(u, v graph.V) error {
	if u == v {
		return fmt.Errorf("core: self-loop %d", u)
	}
	if u < 0 || int(u) >= inc.n || v < 0 || int(v) >= inc.n {
		return fmt.Errorf("core: vertex out of range")
	}
	return nil
}

// EdgeOp is one staged mutation for ApplyBatch: Add true inserts the edge
// (U,V) — the arc U->V for directed graphs — and false removes it.
type EdgeOp struct {
	Add  bool
	U, V graph.V
}

// InsertEdge adds the edge (u,v) — the arc u->v for directed graphs — and
// updates the scores.
func (inc *Incremental) InsertEdge(u, v graph.V) error {
	return inc.applyOne(EdgeOp{Add: true, U: u, V: v})
}

// RemoveEdge deletes the edge (u,v) — the arc u->v for directed graphs.
func (inc *Incremental) RemoveEdge(u, v graph.V) error {
	return inc.applyOne(EdgeOp{Add: false, U: u, V: v})
}

func (inc *Incremental) applyOne(op EdgeOp) error {
	errs, err := inc.ApplyBatch([]EdgeOp{op})
	if err != nil {
		return err
	}
	return errs[0]
}

// ApplyBatch applies ops in order and publishes at most ONE new epoch for
// the whole batch — a burst of N mutations costs one pointer swap and, when
// any op is structural, one full rebuild instead of N. Ops that fail
// validation (self-loop, out-of-range vertex, duplicate insert, absent
// removal — judged against the graph state with the batch's earlier ops
// staged in) are skipped and reported per-index in the first return value;
// the remaining ops all apply. The second return value is a batch-level
// failure (decomposition error), after which no epoch was published.
func (inc *Incremental) ApplyBatch(ops []EdgeOp) ([]error, error) {
	errs := make([]error, len(ops))
	inc.mu.Lock()
	defer inc.mu.Unlock()
	prev := inc.cur.Load()

	// Stage: validate each op against the current graph plus the batch's own
	// earlier deltas, so intra-batch insert-then-remove sequences behave
	// exactly as they would applied one at a time.
	type arcKey struct{ u, v graph.V }
	norm := func(u, v graph.V) arcKey {
		if !inc.directed && u > v {
			u, v = v, u
		}
		return arcKey{u, v}
	}
	staged := make(map[arcKey]bool, len(ops)) // key -> present after staged ops
	present := func(u, v graph.V) bool {
		if p, ok := staged[norm(u, v)]; ok {
			return p
		}
		return prev.g.HasArc(u, v)
	}
	valid := 0
	for i, op := range ops {
		if err := inc.validate(op.U, op.V); err != nil {
			errs[i] = err
			continue
		}
		if op.Add && present(op.U, op.V) {
			errs[i] = fmt.Errorf("core: edge %d->%d already present", op.U, op.V)
			continue
		}
		if !op.Add && !present(op.U, op.V) {
			errs[i] = fmt.Errorf("core: edge %d->%d absent", op.U, op.V)
			continue
		}
		staged[norm(op.U, op.V)] = op.Add
		valid++
	}
	if valid == 0 {
		return errs, nil
	}

	// Apply the valid ops to the edge list and classify the batch: every op
	// must stay inside one sub-graph for the local path; a cross-sub-graph
	// insertion (block fusion), an isolated-vertex attachment, or an endpoint
	// missing from its sub-graph forces the structural path — one rebuild for
	// the whole batch, since rebuild() re-decomposes inc.edges which already
	// carries every staged op.
	structural := false
	var locals []localOp
	for i, op := range ops {
		if errs[i] != nil {
			continue
		}
		if op.Add {
			inc.edges = append(inc.edges, graph.Edge{From: op.U, To: op.V})
		} else {
			inc.removeFromEdgeList(op.U, op.V)
		}
		if !op.Add && !inc.directed {
			// An undirected removal may split a block internally; later
			// insertions must refresh α/β until the next rebuild.
			inc.splitSinceRebuild = true
		}
		si := commonSubgraph(prev.sgOf, op.U, op.V)
		if si < 0 {
			structural = true
			continue
		}
		sg := prev.d.Subgraphs[si]
		lu, lv := sg.LocalID(op.U), sg.LocalID(op.V)
		if lu < 0 || lv < 0 {
			structural = true
			continue
		}
		locals = append(locals, localOp{si: si, add: op.Add, lu: lu, lv: lv, anyRemove: !op.Add})
	}
	if structural {
		return errs, inc.rebuild()
	}
	return errs, inc.applyLocalBatch(prev, locals)
}

// removeFromEdgeList drops the first edge matching (u,v) — either
// orientation for undirected graphs — from the mutable edge list.
func (inc *Incremental) removeFromEdgeList(u, v graph.V) {
	for i, e := range inc.edges {
		match := e.From == u && e.To == v
		if !inc.directed {
			match = match || (e.From == v && e.To == u)
		}
		if match {
			inc.edges = append(inc.edges[:i], inc.edges[i+1:]...)
			return
		}
	}
}

// localOp is one staged intra-sub-graph mutation in local-id space.
type localOp struct {
	si        int
	add       bool
	lu, lv    int32
	anyRemove bool
}

// applyLocalBatch performs a batch of intra-sub-graph mutations by building
// the next epoch copy-on-write: clone the decomposition shell, swap in
// cloned sub-graphs for everything the batch writes (each mutated
// sub-graph's CSR/γ/roots, plus α/β arrays everywhere when they need a
// refresh), patch the clones, recompute the affected contributions once and
// publish a single epoch. Unchanged sub-graph CSRs are shared between
// epochs.
//
// Other sub-graphs' α/β can shift even though the partition stays valid:
//
//   - Directed graphs: reachability between outside regions routes *through*
//     a mutated sub-graph, so any intra-sub-graph arc change can move α/β
//     elsewhere.
//   - Undirected removals: deleting a bridge inside the sub-graph (a
//     block-splitting removal) can cut a boundary AP of *another* sub-graph
//     off from the regions it used to reach — e.g. two triangles joined by a
//     bridge sub-graph: removing the bridge must drop the triangles' α from
//     3 to 0. Insertions after such a split can reconnect those regions.
//
// In all those cases, refresh α/β against the mutated graph (BFS counting —
// the undirected tree method only sees the partition shape, not internal
// splits) and recompute every sub-graph whose values moved; the previous
// epoch's arrays serve as the before-image, so no separate snapshot is
// needed. The cheap path — undirected insertions with no split possible —
// recomputes only the mutated sub-graphs. Recomputation always walks
// sub-graphs in index order so score accumulation stays deterministic.
func (inc *Incremental) applyLocalBatch(prev *epochState, ops []localOp) error {
	refreshAB := inc.directed || inc.splitSinceRebuild
	mutated := map[int]bool{}
	for _, op := range ops {
		mutated[op.si] = true
		if op.anyRemove {
			refreshAB = true
		}
	}
	sis := make([]int, 0, len(mutated))
	for si := range mutated {
		sis = append(sis, si)
	}
	sort.Ints(sis)

	next := &epochState{
		seq:     prev.seq + 1,
		d:       prev.d.CloneShallow(),
		sgOf:    prev.sgOf, // the partition is unchanged
		contrib: append([][]float64(nil), prev.contrib...),
		bc:      append([]float64(nil), prev.bc...),
	}
	if refreshAB {
		for sj := range next.d.Subgraphs {
			if !mutated[sj] {
				next.d.Subgraphs[sj] = next.d.Subgraphs[sj].CloneForAlphaBeta()
			}
		}
	}
	for _, si := range sis {
		next.d.Subgraphs[si] = prev.d.Subgraphs[si].CloneForMutation()
	}
	for _, op := range ops {
		if err := next.d.Subgraphs[op.si].MutateEdge(op.add, op.lu, op.lv, inc.directed); err != nil {
			return err
		}
	}
	next.g = graph.NewFromEdges(inc.n, inc.edges, inc.directed)
	next.d.SetGraph(next.g)
	for _, si := range sis {
		next.d.RefreshRoots(si, inc.opt.DisableGamma)
	}
	inc.localUpdates.Add(int64(len(ops)))
	if !refreshAB {
		for _, si := range sis {
			if err := inc.recompute(next, si); err != nil {
				return err
			}
		}
		inc.publish(next)
		return nil
	}
	if err := next.d.RecomputeAlphaBeta(0); err != nil {
		return err
	}
	for sj := range next.d.Subgraphs {
		if mutated[sj] || alphaBetaChanged(next.d.Subgraphs[sj], prev.d.Subgraphs[sj]) {
			if err := inc.recompute(next, sj); err != nil {
				return err
			}
		}
	}
	inc.publish(next)
	return nil
}

// alphaBetaChanged compares a clone's refreshed (α, β) against the previous
// epoch's values over the boundary APs (Arts is shared between the two).
func alphaBetaChanged(next, prev *decompose.Subgraph) bool {
	for _, la := range next.Arts {
		if next.Alpha[la] != prev.Alpha[la] || next.Beta[la] != prev.Beta[la] {
			return true
		}
	}
	return false
}
