package core

import (
	"fmt"

	"repro/internal/decompose"
	"repro/internal/graph"
)

// Incremental maintains exact BC scores across edge insertions and removals
// — the dynamic-graph direction the paper's decomposition naturally enables.
//
// The key observation: every edge belongs to exactly one sub-graph (it lives
// in one biconnected block), and an intra-sub-graph change moves no vertex
// across the articulation-point frontier. The boundary APs stay cut
// vertices, α/β (outside-region counts) are untouched, and shortest paths
// between sub-graph vertices stay inside — so only the mutated sub-graph's
// contribution to BC changes, and the update costs O(|SGi|·|E_SGi|) instead
// of the full O(|V|·|E|) recomputation.
//
// Two situations force a full rebuild, counted in FullRebuilds: an inserted
// edge whose endpoints share no sub-graph (it fuses blocks along the tree
// path between them), and edges touching isolated vertices (which belong to
// no sub-graph). Removals never rebuild: deleting an edge can only split
// structure, which leaves the existing (now conservative) partition valid.
//
// Unweighted graphs only.
type Incremental struct {
	opt      Options
	directed bool
	n        int
	edges    []graph.Edge
	g        *graph.Graph
	d        *decompose.Decomposition
	sgOf     [][]int32   // vertex -> sub-graph indices
	contrib  [][]float64 // per-sub-graph local BC contributions
	bc       []float64

	// splitSinceRebuild records that an undirected removal may have split a
	// sub-graph internally since the last full rebuild. While set, insertions
	// must refresh α/β too: re-adding an edge can reconnect outside regions
	// that the split had cut off.
	splitSinceRebuild bool

	// FullRebuilds counts structural fallbacks (for tests and telemetry).
	FullRebuilds int
	// LocalUpdates counts mutations absorbed without a rebuild (the
	// incremental fast path bcd reports on its /metrics endpoint).
	LocalUpdates int
}

// NewIncremental decomposes g and computes the initial scores. The Options'
// parallel settings are ignored (updates run serially); Threshold and
// DisableGamma apply.
func NewIncremental(g *graph.Graph, opt Options) (*Incremental, error) {
	if g.Weighted() {
		return nil, fmt.Errorf("core: incremental BC supports unweighted graphs only")
	}
	inc := &Incremental{
		opt:      opt,
		directed: g.Directed(),
		n:        g.NumVertices(),
		edges:    g.Edges(),
	}
	if err := inc.rebuild(); err != nil {
		return nil, err
	}
	inc.FullRebuilds = 0 // the initial build does not count
	return inc, nil
}

// BC returns a copy of the current scores.
func (inc *Incremental) BC() []float64 {
	out := make([]float64, len(inc.bc))
	copy(out, inc.bc)
	return out
}

// Graph returns the current graph.
func (inc *Incremental) Graph() *graph.Graph { return inc.g }

// Decomposition returns the current decomposition. After removals the
// partition can be conservative (a split block keeps its pre-split
// sub-graph); callers must treat it as read-only.
func (inc *Incremental) Decomposition() *decompose.Decomposition { return inc.d }

// rebuild decomposes from scratch and recomputes every contribution.
func (inc *Incremental) rebuild() error {
	inc.FullRebuilds++
	inc.splitSinceRebuild = false
	inc.g = graph.NewFromEdges(inc.n, inc.edges, inc.directed)
	d, err := decompose.Decompose(inc.g, decompose.Options{
		Threshold:    inc.opt.Threshold,
		AlphaBeta:    inc.opt.AlphaBeta,
		DisableGamma: inc.opt.DisableGamma,
	})
	if err != nil {
		return err
	}
	inc.d = d
	inc.sgOf = make([][]int32, inc.n)
	for si, sg := range d.Subgraphs {
		for _, v := range sg.Verts {
			inc.sgOf[v] = append(inc.sgOf[v], int32(si))
		}
	}
	inc.contrib = make([][]float64, len(d.Subgraphs))
	inc.bc = make([]float64, inc.n)
	for si := range d.Subgraphs {
		if err := inc.recompute(si); err != nil {
			return err
		}
	}
	return nil
}

// recompute refreshes sub-graph si's contribution and patches the global
// scores.
func (inc *Incremental) recompute(si int) error {
	sg := inc.d.Subgraphs[si]
	st := &serialState{}
	if sg.NumVerts() >= hybridMinVerts {
		sg.EnsureIn()
		st.hybridFrac = resolveFrac(inc.opt.BottomUpFrac)
	}
	st.ensure(sg.NumVerts())
	for _, s := range sg.Roots {
		st.runRoot(sg, s, inc.directed)
	}
	old := inc.contrib[si]
	for l, v := range sg.Verts {
		if old != nil {
			inc.bc[v] -= old[l]
		}
		inc.bc[v] += st.bcLocal[l]
	}
	inc.contrib[si] = st.bcLocal[:sg.NumVerts()]
	return nil
}

// commonSubgraph returns the sub-graph index containing both endpoints, or
// -1 (two sub-graphs never share more than one vertex, so the intersection
// has at most one element).
func (inc *Incremental) commonSubgraph(u, v graph.V) int {
	for _, a := range inc.sgOf[u] {
		for _, b := range inc.sgOf[v] {
			if a == b {
				return int(a)
			}
		}
	}
	return -1
}

func (inc *Incremental) validate(u, v graph.V) error {
	if u == v {
		return fmt.Errorf("core: self-loop %d", u)
	}
	if u < 0 || int(u) >= inc.n || v < 0 || int(v) >= inc.n {
		return fmt.Errorf("core: vertex out of range")
	}
	return nil
}

// InsertEdge adds the edge (u,v) — the arc u->v for directed graphs — and
// updates the scores.
func (inc *Incremental) InsertEdge(u, v graph.V) error {
	if err := inc.validate(u, v); err != nil {
		return err
	}
	if inc.g.HasArc(u, v) {
		return fmt.Errorf("core: edge %d->%d already present", u, v)
	}
	inc.edges = append(inc.edges, graph.Edge{From: u, To: v})
	si := inc.commonSubgraph(u, v)
	if si < 0 {
		// Cross-sub-graph insertion fuses blocks along the tree path (or
		// attaches an isolated vertex): structural, rebuild.
		return inc.rebuild()
	}
	return inc.applyLocal(si, true, u, v)
}

// RemoveEdge deletes the edge (u,v) — the arc u->v for directed graphs.
func (inc *Incremental) RemoveEdge(u, v graph.V) error {
	if err := inc.validate(u, v); err != nil {
		return err
	}
	if !inc.g.HasArc(u, v) {
		return fmt.Errorf("core: edge %d->%d absent", u, v)
	}
	for i, e := range inc.edges {
		match := e.From == u && e.To == v
		if !inc.directed {
			match = match || (e.From == v && e.To == u)
		}
		if match {
			inc.edges = append(inc.edges[:i], inc.edges[i+1:]...)
			break
		}
	}
	si := inc.commonSubgraph(u, v)
	if si < 0 {
		// Cannot happen for an existing edge (every edge lives in one
		// block, hence one sub-graph), but stay safe.
		return inc.rebuild()
	}
	return inc.applyLocal(si, false, u, v)
}

// applyLocal performs an intra-sub-graph mutation: patch the graph, the
// sub-graph CSR and its roots, then recompute the affected contributions.
//
// Other sub-graphs' α/β can shift even though the partition stays valid:
//
//   - Directed graphs: reachability between outside regions routes *through*
//     the mutated sub-graph, so any intra-sub-graph arc change can move α/β
//     elsewhere.
//   - Undirected removals: deleting a bridge inside the sub-graph (a
//     block-splitting removal) can cut a boundary AP of *another* sub-graph
//     off from the regions it used to reach — e.g. two triangles joined by a
//     bridge sub-graph: removing the bridge must drop the triangles' α from
//     3 to 0. Insertions after such a split can reconnect those regions.
//
// In all those cases, snapshot α/β, refresh them against the mutated graph
// (BFS counting — the undirected tree method only sees the partition shape,
// not internal splits), and recompute every sub-graph whose values moved.
// The cheap path — undirected mutation with no split possible — recomputes
// only the mutated sub-graph.
func (inc *Incremental) applyLocal(si int, add bool, u, v graph.V) error {
	sg := inc.d.Subgraphs[si]
	lu, lv := sg.LocalID(u), sg.LocalID(v)
	if lu < 0 || lv < 0 {
		return inc.rebuild()
	}
	if !add && !inc.directed {
		inc.splitSinceRebuild = true
	}
	refreshAB := inc.directed || !add || inc.splitSinceRebuild
	var oldAB [][]float64
	if refreshAB {
		oldAB = snapshotAlphaBeta(inc.d)
	}
	if err := sg.MutateEdge(add, lu, lv, inc.directed); err != nil {
		return err
	}
	inc.g = graph.NewFromEdges(inc.n, inc.edges, inc.directed)
	inc.d.SetGraph(inc.g)
	inc.d.RefreshRoots(si, inc.opt.DisableGamma)
	inc.LocalUpdates++
	if !refreshAB {
		return inc.recompute(si)
	}
	if err := inc.d.RecomputeAlphaBeta(0); err != nil {
		return err
	}
	for sj := range inc.d.Subgraphs {
		if sj == si || alphaBetaChanged(inc.d.Subgraphs[sj], oldAB[sj]) {
			if err := inc.recompute(sj); err != nil {
				return err
			}
		}
	}
	return nil
}

// snapshotAlphaBeta copies every sub-graph's (α, β) pairs, flattened per
// sub-graph as [α0, β0, α1, β1, ...] over its Arts.
func snapshotAlphaBeta(d *decompose.Decomposition) [][]float64 {
	out := make([][]float64, len(d.Subgraphs))
	for si, sg := range d.Subgraphs {
		snap := make([]float64, 0, 2*len(sg.Arts))
		for _, la := range sg.Arts {
			snap = append(snap, sg.Alpha[la], sg.Beta[la])
		}
		out[si] = snap
	}
	return out
}

func alphaBetaChanged(sg *decompose.Subgraph, old []float64) bool {
	for i, la := range sg.Arts {
		if sg.Alpha[la] != old[2*i] || sg.Beta[la] != old[2*i+1] {
			return true
		}
	}
	return false
}
