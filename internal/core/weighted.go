package core

import (
	"container/heap"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/ws"
)

// Weighted APGRE — our extension of the paper beyond its unweighted scope.
// Every structural ingredient survives positive edge weights unchanged:
// articulation points still factor shortest-path counts
// (σ_st = σ_sa·σ_at), α/β/γ are reachability counts independent of weights,
// and the four-dependency recursions only ever use σ ratios along DAG arcs.
// Only the traversal changes: Dijkstra replaces BFS for σ/dist, and the
// backward sweep runs in reverse settled order instead of reverse levels.
// Parallelism is coarse-grained across sub-graphs (the fine-grained
// level-synchronous scheme has no direct weighted analogue; delta-stepping
// is future work).

// ComputeWeighted runs the APGRE pipeline on a weighted graph (positive
// weights, see graph.NewWeightedFromEdges) and returns exact BC scores
// matching brandes.WeightedSerial.
func ComputeWeighted(g *graph.Graph, opt Options) ([]float64, error) {
	if !g.Weighted() {
		return nil, fmt.Errorf("core: ComputeWeighted requires a weighted graph (use Compute)")
	}
	var tm decompose.Timings
	d, err := decompose.Decompose(g, decompose.Options{
		Threshold:    opt.Threshold,
		AlphaBeta:    opt.AlphaBeta,
		Workers:      opt.Workers,
		DisableGamma: opt.DisableGamma,
		Timings:      &tm,
	})
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	bc := make([]float64, n)
	if n == 0 || len(d.Subgraphs) == 0 {
		return bc, nil
	}
	p := par.Workers(opt.Workers)
	directed := g.Directed()
	var traversed, roots int64

	// Two-level weighted scheme: sub-graphs at or above the fine cutoff are
	// processed with root-level parallelism (each worker owns a private
	// Dijkstra state and partial BC array — Dijkstra has no level-
	// synchronous analogue, so source parallelism replaces it); the rest run
	// coarse-grained, one goroutine per sub-graph.
	cutoff := opt.FineCutoff
	if cutoff <= 0 {
		cutoff = 2048
	}
	switch opt.Scheduler {
	case SchedulerDynamic, SchedulerStatic:
	default:
		return nil, fmt.Errorf("core: unknown scheduler %d", opt.Scheduler)
	}
	start := time.Now()
	if opt.Scheduler == SchedulerDynamic && opt.Strategy != StrategyFineOnly {
		// Unified cost-ordered unit scheduler with Dijkstra engines: same
		// queue, chunking and deterministic merge as the unweighted path
		// (sched.go); Dijkstra replaces the σ-BFS inside runRoot.
		units := buildUnits(d, p, cutoff, p > 1 && opt.Strategy == StrategyTwoLevel, false, opt.RootBudget)
		traversed = drainUnits(units, p, directed, func() rootEngine {
			return &weightedState{}
		}, bc)
		for i := range units {
			roots += int64(units[i].hi - units[i].lo)
		}
		if opt.Breakdown != nil {
			opt.Breakdown.Partition = tm.Partition
			opt.Breakdown.AlphaBeta = tm.AlphaBeta
			opt.Breakdown.RestBC = time.Since(start)
			opt.Breakdown.Total = tm.Partition + tm.AlphaBeta + opt.Breakdown.RestBC
			opt.Breakdown.TraversedArcs = traversed
			opt.Breakdown.Roots = roots
			opt.Breakdown.Subgraphs = len(d.Subgraphs)
			opt.Breakdown.Articulations = d.NumArticulation
		}
		return bc, nil
	}
	var big, small []*decompose.Subgraph
	for i, sg := range d.Subgraphs {
		if p > 1 && opt.Strategy != StrategyCoarseOnly &&
			(i == d.TopIndex || sg.NumVerts() >= cutoff) {
			big = append(big, sg)
		} else {
			small = append(small, sg)
		}
	}
	totalRoots := totalRootCount(d)
	for _, sg := range big {
		rs := sg.Roots[:rootPrefix(len(sg.Roots), totalRoots, opt.RootBudget)]
		if opt.Strategy == StrategyFineOnly {
			// Fine-grained: delta-stepping distances + distance-group
			// level-synchronous σ/dependency sweeps, one root at a time —
			// the weighted analogue of the paper's inner level.
			st := newWeightedFineState(sg, p)
			for _, s := range rs {
				st.runRoot(sg, s, directed)
			}
			flushLocal(bc, sg, st.ws.BC)
			traversed += st.traversed
			st.release()
		} else {
			// Root-parallel: workers own private Dijkstra states and
			// partial BC arrays.
			states := make([]*weightedState, p)
			par.ForWorker(len(rs), p, 1, func(w, ri int) {
				st := states[w]
				if st == nil {
					st = &weightedState{}
					st.ensure(sg.NumVerts())
					states[w] = st
				}
				st.runRoot(sg, rs[ri], directed)
			})
			n := sg.NumVerts()
			for _, st := range states {
				if st == nil {
					continue
				}
				flushLocal(bc, sg, st.ws.BC)
				for l := range st.ws.BC[:n] {
					st.ws.BC[l] = 0
				}
				traversed += st.traversed
				st.release()
			}
		}
		roots += int64(len(rs))
	}
	states := make([]*weightedState, p)
	par.ForWorker(len(small), p, 1, func(w, i int) {
		st := states[w]
		if st == nil {
			st = &weightedState{}
			states[w] = st
		}
		sg := small[i]
		st.ensure(sg.NumVerts())
		rs := sg.Roots[:rootPrefix(len(sg.Roots), totalRoots, opt.RootBudget)]
		for _, s := range rs {
			st.runRoot(sg, s, directed)
		}
		flushLocalAtomic(bc, sg, st.ws.BC)
		for l := range st.ws.BC[:sg.NumVerts()] {
			st.ws.BC[l] = 0
		}
		atomic.AddInt64(&traversed, st.traversed)
		st.traversed = 0
		atomic.AddInt64(&roots, int64(len(rs)))
	})
	for _, st := range states {
		if st != nil {
			st.release()
		}
	}

	if opt.Breakdown != nil {
		opt.Breakdown.Partition = tm.Partition
		opt.Breakdown.AlphaBeta = tm.AlphaBeta
		opt.Breakdown.RestBC = time.Since(start)
		opt.Breakdown.Total = tm.Partition + tm.AlphaBeta + opt.Breakdown.RestBC
		opt.Breakdown.TraversedArcs = traversed
		opt.Breakdown.Roots = roots
		opt.Breakdown.Subgraphs = len(d.Subgraphs)
		opt.Breakdown.Articulations = d.NumArticulation
	}
	return bc, nil
}

// weightedState is the per-worker scratch for the weighted engine. Like
// serialState it draws its per-vertex arrays from the shared pooled ws.Sweep
// (using the weighted extension: FDist for float distances, Done for settled
// flags); only the Dijkstra heap is engine-private.
type weightedState struct {
	ws        *ws.Sweep
	pq        wheap
	traversed int64
}

// ensure checks weighted sweep scratch out of the shared pool; the "dist ==
// -1 / done == false everywhere" invariants are guaranteed by the pool and
// maintained by runRoot's sparse resets.
func (st *weightedState) ensure(n int) {
	if st.ws == nil {
		st.ws = sweepPool.Get(0)
	}
	st.ws.GrowWeighted(n)
}

// release returns the scratch to the pool (BC must be drained first).
func (st *weightedState) release() {
	if st.ws != nil {
		sweepPool.Put(st.ws)
		st.ws = nil
	}
}

type wheapItem struct {
	d float64
	v int32
}

type wheap []wheapItem

func (q wheap) Len() int           { return len(q) }
func (q wheap) Less(i, j int) bool { return q[i].d < q[j].d }
func (q wheap) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *wheap) Push(x any)        { *q = append(*q, x.(wheapItem)) }
func (q *wheap) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// runRoot is Algorithm 2 with Dijkstra: identical four-dependency backward
// accumulation as the unweighted serialState, over the settled order.
func (st *weightedState) runRoot(sg *decompose.Subgraph, s int32, directed bool) {
	dist, sigma := st.ws.FDist, st.ws.Sigma
	di2i, di2o, do2o := st.ws.Di2i, st.ws.Di2o, st.ws.Do2o
	bcLocal := st.ws.BC
	done := st.ws.Done

	// Phase 1: Dijkstra with σ counting.
	order := st.ws.Order[:0]
	st.pq = st.pq[:0]
	dist[s] = 0
	sigma[s] = 1
	heap.Push(&st.pq, wheapItem{0, s})
	for st.pq.Len() > 0 {
		it := heap.Pop(&st.pq).(wheapItem)
		v := it.v
		if done[v] || it.d != dist[v] {
			continue
		}
		done[v] = true
		order = append(order, v)
		out := sg.Out(v)
		wts := sg.OutWeights(v)
		st.traversed += int64(len(out))
		for i, w := range out {
			nd := dist[v] + wts[i]
			switch {
			case dist[w] < 0 || nd < dist[w]:
				dist[w] = nd
				sigma[w] = sigma[v]
				heap.Push(&st.pq, wheapItem{nd, w})
			case nd == dist[w]:
				sigma[w] += sigma[v]
			}
		}
	}

	st.ws.Order = order

	// Phase 2: backward four-dependency accumulation (cf. serialState).
	sIsArt := sg.IsArt[s]
	betaS := sg.Beta[s]
	gammaS := float64(sg.Gamma[s])
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		var i2i, i2o, o2o float64
		sv := sigma[v]
		out := sg.Out(v)
		wts := sg.OutWeights(v)
		for k, w := range out {
			if dist[w] == dist[v]+wts[k] {
				r := sv / sigma[w]
				i2i += r * (1 + di2i[w])
				i2o += r * di2o[w]
				if sIsArt {
					o2o += r * do2o[w]
				}
			}
		}
		if v != s && sg.IsArt[v] {
			i2o += sg.Alpha[v]
			if sIsArt {
				o2o += betaS * sg.Alpha[v]
			}
		}
		di2i[v], di2o[v] = i2i, i2o
		if sIsArt {
			do2o[v] = o2o
		}
		if v != s {
			contrib := (1+gammaS)*(i2i+i2o) + o2o
			if sIsArt {
				contrib += betaS * i2i
			}
			bcLocal[v] += contrib
		} else if gammaS > 0 {
			root := i2i + i2o
			if sIsArt {
				root += sg.Alpha[s]
			}
			if !directed {
				root--
			}
			bcLocal[v] += gammaS * root
		}
	}

	// Sparse reset over the settled order (the dirty list).
	for _, v := range order {
		dist[v] = -1
		sigma[v] = 0
		done[v] = false
	}
}
