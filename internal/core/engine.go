package core

import (
	"fmt"

	"repro/internal/decompose"
	"repro/internal/msbfs"
	"repro/internal/ws"
)

// RootEngine selects the sweep kernel the dynamic scheduler drives for
// unweighted graphs. Both engines compute bit-identical scores (see
// internal/msbfs's package comment for why batching cannot change a bit), so
// the choice is purely a performance knob: the batched engine amortizes one
// CSR stream over up to 64 roots and wins on graphs whose sub-graphs keep
// many roots after γ elimination; the scalar engine has no per-batch
// overhead and wins on small or root-poor sub-graphs (the msbfsState
// break-even guard picks per sub-graph automatically).
type RootEngine int

const (
	// EngineScalar is the default: one root per sweep (serialState), with
	// the direction-optimizing hybrid σ-BFS on large sub-graphs.
	EngineScalar RootEngine = iota
	// EngineMSBFS batches up to ws.LaneWidth roots per traversal using the
	// bit-parallel multi-source kernel (internal/msbfs). Weighted graphs and
	// the static scheduler always use the scalar engine regardless of this
	// setting — the batched kernel is BFS-based and integrates behind the
	// dynamic unit queue only.
	EngineMSBFS
)

// String returns the engine name used in benchmark record keys and flags.
func (e RootEngine) String() string {
	switch e {
	case EngineScalar:
		return "scalar"
	case EngineMSBFS:
		return "msbfs"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ParseRootEngine maps an engine name ("scalar", "msbfs"; "" means scalar)
// to its RootEngine value.
func ParseRootEngine(name string) (RootEngine, error) {
	switch name {
	case "", "scalar":
		return EngineScalar, nil
	case "msbfs":
		return EngineMSBFS, nil
	default:
		return 0, fmt.Errorf("core: unknown root engine %q (want scalar or msbfs)", name)
	}
}

// Break-even gates for the batched kernel, per (sub-graph, root-range) unit:
// below either bound the per-batch overhead (lane bookkeeping, the 64-slot
// stride on every σ/δ access) costs more than the shared CSR stream saves,
// and msbfsState degrades to the scalar per-root loop. The fallback is
// unobservable in the output — both paths are bit-identical — so the bounds
// are tuned purely for speed. Measured on the power-law stand-ins (best-of-30
// single-thread sweeps): minVerts 128→64 doubled the wiki-talk win (its many
// 64-128-vertex sub-graphs batch profitably), while 32 and below regressed
// the fragmented email-euall stand-in; minLanes was flat across 4/8/16.
const (
	msbfsMinLanes = 8
	msbfsMinVerts = 64
)

// batchEngine extends rootEngine with a root-range entry point. drainUnits
// feeds whole unit ranges to engines that implement it, letting the msbfs
// kernel batch them; plain engines get the per-root loop.
type batchEngine interface {
	rootEngine
	runRoots(sg *decompose.Subgraph, roots []int32, directed bool)
}

// msbfsState is the dynamic scheduler's batched engine: the bit-parallel
// multi-source kernel for unit ranges above the break-even gates, the
// embedded scalar serialState below them (and for rootEngine's one-root
// path). Both feed the same pooled ws.Sweep accumulation buffer, so a unit
// may mix batched and scalar sweeps freely.
type msbfsState struct {
	serialState
	kernel msbfs.Kernel
}

func (st *msbfsState) runRoots(sg *decompose.Subgraph, roots []int32, directed bool) {
	if len(roots) < msbfsMinLanes || sg.NumVerts() < msbfsMinVerts {
		for _, s := range roots {
			st.runRoot(sg, s, directed)
		}
		return
	}
	for lo := 0; lo < len(roots); lo += ws.LaneWidth {
		hi := lo + ws.LaneWidth
		if hi > len(roots) {
			hi = len(roots)
		}
		st.traversed += st.kernel.Run(sg, roots[lo:hi], directed, st.ws)
	}
}

// dynamicSerialCutoff is the small-graph break-even guard: when the whole
// decomposition's estimated sweep cost Σ|roots|·(|V|+|E|) falls below it,
// computeDynamic degrades to the p == 1 serial coarse path even if more
// workers were requested — below this much work, worker startup and the
// per-unit partial-array merges cost more than the parallelism returns
// (ROADMAP: road-network inputs ran 1.5× slower at p=8 than p=1). The
// fallback is bit-invisible because it drains the SAME unit list serially:
// unit boundaries fix each sub-graph's partial-sum association, and the
// serial drain's in-order flushes replay the parallel drain's canonical
// merge addition for addition. A var, not a const, so tests can pin
// bit-equality across the boundary by moving it.
var dynamicSerialCutoff int64 = 1 << 21

// totalSweepCost estimates the decomposition's full sweep work under the
// scalar cost model (the guard is an absolute work bound, so it uses the
// engine-independent model).
func totalSweepCost(d *decompose.Decomposition) int64 {
	var total int64
	for _, sg := range d.Subgraphs {
		total += int64(len(sg.Roots)) * (int64(sg.NumVerts()) + sg.NumArcs())
	}
	return total
}
