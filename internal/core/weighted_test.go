package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/brandes"
	"repro/internal/gen"
	"repro/internal/graph"
)

func assertWeightedMatches(t *testing.T, g *graph.Graph, opt Options, label string) {
	t.Helper()
	want := brandes.WeightedSerial(g)
	got, err := ComputeWeighted(g, opt)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if i, ok := bcClose(want, got, 1e-9); !ok {
		t.Fatalf("%s: weighted APGRE differs at vertex %d: want %v got %v",
			label, i, want[i], got[i])
	}
}

func TestWeightedSerialHand(t *testing.T) {
	// Weighted diamond: 0-1 (1), 0-2 (2), 1-3 (1), 2-3 (1): unique shortest
	// path 0-1-3 of length 2 beats 0-2-3 of length 3. BC(1) counts (0,3)
	// both directions = 2; BC(2) only carries pair (0,2)... nothing.
	g := graph.NewWeightedFromEdges(4, []graph.WeightedEdge{
		{From: 0, To: 1, W: 1}, {From: 0, To: 2, W: 2},
		{From: 1, To: 3, W: 1}, {From: 2, To: 3, W: 1},
	}, false)
	bc := brandes.WeightedSerial(g)
	if bc[1] != 2 || bc[2] != 0 {
		t.Fatalf("bc = %v, want [0 2 0 0]", bc)
	}
	// Equal-length tie: make 0-2-3 also length 2 → σ(0,3)=2, each carries 1/2
	// per direction.
	g2 := graph.NewWeightedFromEdges(4, []graph.WeightedEdge{
		{From: 0, To: 1, W: 1}, {From: 0, To: 2, W: 1},
		{From: 1, To: 3, W: 1}, {From: 2, To: 3, W: 1},
	}, false)
	bc2 := brandes.WeightedSerial(g2)
	if bc2[1] != 1 || bc2[2] != 1 {
		t.Fatalf("bc2 = %v, want middles 1", bc2)
	}
}

func TestWeightedUnitMatchesUnweighted(t *testing.T) {
	// Unit weights must reproduce the unweighted scores exactly.
	graphs := []*graph.Graph{
		gen.Path(15),
		gen.Star(12),
		gen.SocialLike(gen.SocialParams{N: 200, AvgDeg: 4, Communities: 4, TopShare: 0.5, LeafFrac: 0.3, Seed: 1}),
		gen.ErdosRenyi(80, 200, true, 2),
	}
	for gi, g := range graphs {
		want := brandes.Serial(g)
		wg := g.UnitWeights()
		got := brandes.WeightedSerial(wg)
		if i, ok := bcClose(want, got, 1e-9); !ok {
			t.Fatalf("graph %d: unit-weight mismatch at %d", gi, i)
		}
		got2, err := ComputeWeighted(wg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := bcClose(want, got2, 1e-9); !ok {
			t.Fatalf("graph %d: weighted APGRE unit mismatch at %d", gi, i)
		}
	}
}

func TestWeightedAPGREMatchesDijkstra(t *testing.T) {
	cases := []*graph.Graph{
		gen.WithRandomWeights(gen.Caveman(4, 5, false), 5, 1),
		gen.WithRandomWeights(gen.Lollipop(6, 8), 4, 2),
		gen.WithRandomWeights(gen.SocialLike(gen.SocialParams{N: 300, AvgDeg: 4,
			Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 3}), 7, 3),
		gen.WithRandomWeights(gen.SocialLike(gen.SocialParams{N: 250, AvgDeg: 4,
			Communities: 5, TopShare: 0.5, LeafFrac: 0.3, Directed: true, Reciprocity: 0.5, Seed: 4}), 6, 4),
		gen.WithRandomWeights(gen.RoadLike(gen.RoadParams{Rows: 8, Cols: 8,
			DeleteFrac: 0.1, SpurFrac: 0.2, SpurLen: 2, Seed: 5}), 9, 5),
	}
	for gi, g := range cases {
		for _, th := range []int{2, 64} {
			for _, w := range []int{1, 3} {
				assertWeightedMatches(t, g, Options{Threshold: th, Workers: w},
					string(rune('a'+gi)))
			}
		}
	}
}

func TestWeightedParallelMatchesSerial(t *testing.T) {
	g := gen.WithRandomWeights(gen.BarabasiAlbert(150, 3, 6), 5, 7)
	want := brandes.WeightedSerial(g)
	got := brandes.WeightedParallel(g, 3)
	if i, ok := bcClose(want, got, 1e-9); !ok {
		t.Fatalf("parallel weighted differs at %d", i)
	}
}

func TestComputeWeightedRejectsUnweighted(t *testing.T) {
	if _, err := ComputeWeighted(gen.Path(5), Options{}); err == nil {
		t.Fatal("expected error for unweighted graph")
	}
}

func TestWeightedGammaElimination(t *testing.T) {
	// Star with weighted spokes: all leaves fold into the hub.
	var wedges []graph.WeightedEdge
	for i := 1; i <= 8; i++ {
		wedges = append(wedges, graph.WeightedEdge{From: 0, To: graph.V(i), W: float64(i)})
	}
	g := graph.NewWeightedFromEdges(9, wedges, false)
	var bd Breakdown
	got, err := ComputeWeighted(g, Options{Breakdown: &bd})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Roots != 1 {
		t.Fatalf("roots = %d, want 1 (all leaves folded)", bd.Roots)
	}
	want := brandes.WeightedSerial(g)
	if i, ok := bcClose(want, got, 1e-9); !ok {
		t.Fatalf("weighted star differs at %d", i)
	}
	if got[0] != 8*7 {
		t.Fatalf("hub bc = %v, want 56", got[0])
	}
}

// Property: weighted APGRE ≡ weighted Brandes on random weighted graphs of
// both directednesses and with γ on/off.
func TestQuickWeightedEquivalence(t *testing.T) {
	f := func(seed int64, cfg uint8) bool {
		directed := cfg&1 != 0
		base := gen.SocialLike(gen.SocialParams{N: 100, AvgDeg: 4, Communities: 4,
			TopShare: 0.5, LeafFrac: 0.3, Directed: directed, Reciprocity: 0.5, Seed: seed})
		g := gen.WithRandomWeights(base, 1+int(cfg>>1)%8, seed+1)
		want := brandes.WeightedSerial(g)
		got, err := ComputeWeighted(g, Options{Threshold: 4, DisableGamma: cfg&2 != 0})
		if err != nil {
			return false
		}
		_, ok := bcClose(want, got, 1e-9)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedVsUnweightedDiffer(t *testing.T) {
	// Sanity: weights actually change the answer on a graph where the
	// heavy edge diverts shortest paths.
	base := gen.Cycle(6)
	unw := brandes.Serial(base)
	var wedges []graph.WeightedEdge
	for i, e := range base.Edges() {
		w := 1.0
		if i == 0 {
			w = 10 // one heavy edge forces paths the long way round
		}
		wedges = append(wedges, graph.WeightedEdge{From: e.From, To: e.To, W: w})
	}
	wg := graph.NewWeightedFromEdges(6, wedges, false)
	w := brandes.WeightedSerial(wg)
	if _, same := bcClose(unw, w, 1e-9); same {
		t.Fatal("weights had no effect on cycle BC")
	}
	if math.IsNaN(w[0]) {
		t.Fatal("NaN score")
	}
}

func TestWeightedFineEngineMatches(t *testing.T) {
	// Force the delta-stepping fine engine on every sub-graph (cutoff 1,
	// StrategyFineOnly, multiple workers) and compare with Dijkstra-Brandes.
	cases := []*graph.Graph{
		gen.WithRandomWeights(gen.Caveman(4, 6, false), 5, 21),
		gen.WithRandomWeights(gen.SocialLike(gen.SocialParams{N: 300, AvgDeg: 4,
			Communities: 5, TopShare: 0.5, LeafFrac: 0.3, Seed: 22}), 7, 22),
		gen.WithRandomWeights(gen.SocialLike(gen.SocialParams{N: 250, AvgDeg: 4,
			Communities: 4, TopShare: 0.5, LeafFrac: 0.25, Directed: true, Reciprocity: 0.5, Seed: 23}), 6, 23),
		gen.WithRandomWeights(gen.Grid2D(8, 8), 4, 24),
	}
	for gi, g := range cases {
		want := brandes.WeightedSerial(g)
		got, err := ComputeWeighted(g, Options{
			Strategy: StrategyFineOnly, FineCutoff: 1, Workers: 3, Threshold: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := bcClose(want, got, 1e-9); !ok {
			t.Fatalf("graph %d: fine weighted engine differs at %d: want %v got %v",
				gi, i, want[i], got[i])
		}
	}
}
