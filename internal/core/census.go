package core

import (
	"repro/internal/bcc"
	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// CensusOptions tunes BuildCensus.
type CensusOptions struct {
	// Threshold echoes the decomposition threshold into the census.
	Threshold int
	// RedundancySampleK bounds the redundancy analysis: 0 means exact,
	// > 0 samples that many sources (the bcd stats endpoint uses sampling so
	// a census stays cheap on loaded graphs), < 0 skips the analysis.
	RedundancySampleK int
	// Seed drives source sampling when RedundancySampleK > 0.
	Seed int64
}

// BuildCensus assembles the articulation-point census of g under the
// decomposition d — the one serializer behind both `bcstats -json` and the
// daemon's GET /v1/graphs/{name}/stats.
func BuildCensus(name string, g *graph.Graph, d *decompose.Decomposition, opt CensusOptions) metrics.GraphCensus {
	st := graph.Stats(g)
	aps, deg1 := bcc.CountArticulationPoints(g)
	c := metrics.GraphCensus{
		Schema:   metrics.CensusSchemaVersion,
		Graph:    name,
		Directed: g.Directed(),
		Verts:    g.NumVertices(),
		Edges:    g.NumEdges(),
		Arcs:     g.NumArcs(),
		Degree: metrics.DegreeCensus{
			Min:      st.MinOut,
			Max:      st.MaxOut,
			Mean:     st.MeanOut,
			Isolated: st.Isolated,
			Sources:  st.Sources,
		},
		ArticulationPoints: aps,
		SingleEdgeVertices: deg1,
	}
	if g.Directed() {
		_, count := graph.StronglyConnectedComponents(g)
		c.SCC = &metrics.SCCCensus{Count: count, Largest: graph.LargestSCCSize(g)}
	}
	c.Decomposition = metrics.DecompositionCensus{
		Threshold:   opt.Threshold,
		Subgraphs:   len(d.Subgraphs),
		BoundaryAPs: d.NumArticulation,
		Roots:       d.TotalRoots(),
	}
	n := g.NumVertices()
	sizes := d.SubgraphSizes()
	for i := 0; i < len(sizes) && i < 5; i++ {
		c.Decomposition.Largest = append(c.Decomposition.Largest, metrics.SubgraphCensus{
			Verts:     sizes[i].Verts,
			Arcs:      sizes[i].Arcs,
			VertShare: float64(sizes[i].Verts) / float64(max(1, n)),
		})
	}
	if opt.RedundancySampleK >= 0 {
		rep := AnalyzeRedundancy(g, d, opt.RedundancySampleK, opt.Seed)
		method := "exact"
		if rep.Sampled {
			method = "sampled"
		}
		c.Redundancy = &metrics.RedundancyCensus{
			Method:    method,
			Effective: rep.Effective,
			Partial:   rep.Partial,
			Total:     rep.Total,
		}
	}
	return c
}
