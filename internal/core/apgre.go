// Package core implements APGRE, the paper's contribution: articulation-
// points-guided redundancy elimination for exact betweenness centrality
// (§3, Algorithm 2).
//
// After the graph is decomposed into sub-graphs along articulation points
// (internal/decompose), each sub-graph runs a Brandes-style computation that
// maintains the paper's four dependencies simultaneously:
//
//	δ_i2i — source and target inside the sub-graph (Eq. 3, classic Brandes)
//	δ_i2o — target outside, folded through α of the exit AP (Eq. 4)
//	δ_o2i — source outside, β(s)·δ_i2i when the root is an AP (Eq. 5)
//	δ_o2o — both outside, β(root)·α(exit AP) seeds (Eq. 6)
//
// merged into BC scores with the γ total-redundancy weights (Eq. 7/8,
// Theorem 3). Parallelism is two-level as in §4: coarse-grained across
// sub-graphs, fine-grained level-synchronous inside large ones.
//
// Correctness note (DESIGN.md §1): for undirected graphs the paper's root
// term γ(s)·(δ_i2i(s)+δ_i2o(s)) overcounts each folded leaf's dependency by
// exactly 1 (the leaf is reachable from s and counts itself as a target);
// the undirected path subtracts γ(s) accordingly. The property tests against
// Brandes fail without this correction.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/par"
)

// Strategy selects the parallelization scheme.
type Strategy int

const (
	// StrategyTwoLevel is the paper's scheme: large sub-graphs run with
	// fine-grained level-synchronous parallelism, the remaining sub-graphs
	// run concurrently with serial inner loops.
	StrategyTwoLevel Strategy = iota
	// StrategyFineOnly processes sub-graphs one at a time, each with
	// fine-grained parallelism (the paper's inner level alone).
	StrategyFineOnly
	// StrategyCoarseOnly processes sub-graphs concurrently with serial
	// inner loops (the outer level alone).
	StrategyCoarseOnly
)

// Scheduler selects how sub-graph work is distributed over workers.
type Scheduler int

const (
	// SchedulerDynamic is the default: one cost-ordered queue of
	// (sub-graph, root-range) work units, estimated at |roots|·(|V|+|E|)
	// each, drained by a fixed worker pool with per-worker scratch. Large
	// sub-graphs are chunked into root ranges so they fan out across workers
	// without a barrier separating them from the small sub-graphs.
	SchedulerDynamic Scheduler = iota
	// SchedulerStatic is the legacy two-phase scheme (fine-grained phase A
	// over large sub-graphs, then coarse-grained phase B), kept for A/B
	// benchmarking. StrategyFineOnly always uses it — the level-synchronous
	// engine is phase A.
	SchedulerStatic
)

// String returns the scheduler name used in benchmark record keys.
func (s Scheduler) String() string {
	switch s {
	case SchedulerDynamic:
		return "dynamic"
	case SchedulerStatic:
		return "static"
	default:
		return fmt.Sprintf("scheduler(%d)", int(s))
	}
}

// Options configures Compute.
type Options struct {
	// Workers bounds goroutine parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Threshold is the decomposition merge threshold (Algorithm 1).
	Threshold int
	// AlphaBeta selects the α/β computation method.
	AlphaBeta decompose.AlphaBetaMethod
	// DisableGamma turns off total-redundancy elimination (ablation).
	DisableGamma bool
	// Strategy selects the parallelization scheme.
	Strategy Strategy
	// Scheduler selects the work-distribution scheme; the zero value is
	// SchedulerDynamic.
	Scheduler Scheduler
	// RootEngine selects the sweep kernel for unweighted graphs under the
	// dynamic scheduler; the zero value is EngineScalar. EngineMSBFS batches
	// up to 64 roots per traversal (internal/msbfs) and is bit-identical to
	// scalar, so this is purely a performance knob. Weighted graphs and
	// SchedulerStatic silently use the scalar engine.
	RootEngine RootEngine
	// FineCutoff is the vertex count at or above which a sub-graph uses
	// fine-grained parallelism under StrategyTwoLevel; <= 0 means 2048.
	// The dynamic scheduler uses the same cutoff only to attribute time to
	// Breakdown.TopBC vs RestBC.
	FineCutoff int
	// BottomUpFrac tunes the direction-optimizing σ-BFS: a level goes
	// bottom-up when its frontier exceeds this fraction of the unvisited
	// vertices. 0 means bfs.DefaultBottomUpFrac; negative disables bottom-up
	// sweeps. Either setting yields bit-identical BC (see serialState).
	BottomUpFrac float64
	// RootBudget, when > 0, caps the total number of BFS roots processed:
	// each sub-graph keeps a proportional prefix of its root list,
	// ⌈|roots_i|·budget/total⌉ (so every non-empty sub-graph keeps at least
	// one root, and ceiling may push the realized total slightly past the
	// budget — Breakdown.Roots reports the real count). The prefix depends
	// only on (decomposition, budget), never on workers or engine, so a
	// budgeted run is bit-deterministic across the whole -sched/-engine
	// matrix, and budget >= total roots replays the exact computation
	// bit-for-bit. The scores are the exact contribution of the processed
	// roots — a Graph500-style throughput measure for at-scale benchmarking,
	// NOT an unbiased BC estimate; use ApproxCompute's pivot sampling for
	// estimation with error bounds.
	RootBudget int
	// Breakdown, when non-nil, receives phase timings and work counters
	// (Figure 8's execution-time breakdown).
	Breakdown *Breakdown
}

// Breakdown records where APGRE's time goes, mirroring Figure 8: the two
// preprocessing phases ("extra computations") and the BC calculation split
// into the large sub-graphs (dominated by the top sub-graph) and the rest.
type Breakdown struct {
	Partition time.Duration // graph partition (FINDBCC + merging + building)
	AlphaBeta time.Duration // counting α/β per articulation point
	TopBC     time.Duration // BC of sub-graphs processed fine-grained
	RestBC    time.Duration // BC of the remaining sub-graphs
	Total     time.Duration
	// TraversedArcs counts arcs examined during BC BFS phases — the
	// effective work after redundancy elimination.
	TraversedArcs int64
	// Roots is the number of BFS roots actually processed (|R| summed).
	Roots int64
	// Subgraphs and Articulations echo the decomposition's shape.
	Subgraphs     int
	Articulations int
}

// Compute runs the full APGRE pipeline on g and returns exact BC scores
// (directed-sum convention, identical to internal/brandes values).
func Compute(g *graph.Graph, opt Options) ([]float64, error) {
	var tm decompose.Timings
	d, err := decompose.Decompose(g, decompose.Options{
		Threshold:    opt.Threshold,
		AlphaBeta:    opt.AlphaBeta,
		Workers:      opt.Workers,
		DisableGamma: opt.DisableGamma,
		Timings:      &tm,
	})
	if err != nil {
		return nil, err
	}
	if opt.Breakdown != nil {
		// Populate the preprocessing phases before the BC phase so
		// computeSplit folds them into Total (Figure 8's full sum).
		opt.Breakdown.Partition = tm.Partition
		opt.Breakdown.AlphaBeta = tm.AlphaBeta
	}
	return ComputeDecomposed(d, opt)
}

// ComputeDecomposed runs the BC phase of APGRE on an existing decomposition.
// The decomposition must have been built from the same graph with compatible
// options (in particular, DisableGamma must match the decomposition's roots).
// When opt.Breakdown is set, Total is always populated: it sums the BC phases
// plus whatever Partition/AlphaBeta values the caller pre-populated (Compute
// fills them from the decomposition timings; direct callers that did not time
// their own decomposition get Total = TopBC + RestBC).
func ComputeDecomposed(d *decompose.Decomposition, opt Options) ([]float64, error) {
	g := d.G
	n := g.NumVertices()
	bc := make([]float64, n)
	if n == 0 || len(d.Subgraphs) == 0 {
		return bc, nil
	}
	p := par.Workers(opt.Workers)
	cutoff := opt.FineCutoff
	if cutoff <= 0 {
		cutoff = 2048
	}
	switch opt.Strategy {
	case StrategyTwoLevel, StrategyFineOnly, StrategyCoarseOnly:
	default:
		return nil, fmt.Errorf("core: unknown strategy %d", opt.Strategy)
	}
	switch opt.Scheduler {
	case SchedulerDynamic, SchedulerStatic:
	default:
		return nil, fmt.Errorf("core: unknown scheduler %d", opt.Scheduler)
	}
	switch opt.RootEngine {
	case EngineScalar, EngineMSBFS:
	default:
		return nil, fmt.Errorf("core: unknown root engine %d", opt.RootEngine)
	}
	// StrategyFineOnly is inherently phase-structured (one level-synchronous
	// sub-graph at a time), so it always takes the static path.
	if opt.Scheduler == SchedulerDynamic && opt.Strategy != StrategyFineOnly {
		return computeDynamic(d, opt, p, cutoff, bc)
	}
	var big, small []*decompose.Subgraph
	switch opt.Strategy {
	case StrategyTwoLevel:
		for i, sg := range d.Subgraphs {
			// The top sub-graph always gets the fine-grained treatment (it
			// dominates the runtime, §5.3); others only above the cutoff.
			if i == d.TopIndex || sg.NumVerts() >= cutoff {
				big = append(big, sg)
			} else {
				small = append(small, sg)
			}
		}
	case StrategyFineOnly:
		big = d.Subgraphs
	case StrategyCoarseOnly:
		small = d.Subgraphs
	}
	return computeSplit(d, opt, big, small, p, bc)
}

// totalRootCount sums the decomposition's root lists — the denominator of
// RootBudget's proportional prefix.
func totalRootCount(d *decompose.Decomposition) int64 {
	var t int64
	for _, sg := range d.Subgraphs {
		t += int64(len(sg.Roots))
	}
	return t
}

// rootPrefix returns how many of a sub-graph's nr roots a budgeted run
// processes (see Options.RootBudget). budget <= 0 means no cap.
func rootPrefix(nr int, totalRoots int64, budget int) int {
	if budget <= 0 || totalRoots == 0 || int64(budget) >= totalRoots {
		return nr
	}
	return int((int64(nr)*int64(budget) + totalRoots - 1) / totalRoots)
}

// computeSplit runs phase A (fine-grained) over big and phase B
// (coarse-grained) over small, accumulating into bc.
func computeSplit(d *decompose.Decomposition, opt Options,
	big, small []*decompose.Subgraph, p int, bc []float64) ([]float64, error) {
	g := d.G
	directed := g.Directed()
	frac := resolveFrac(opt.BottomUpFrac)
	prepareHybrid(d, frac)
	totalRoots := totalRootCount(d)
	var traversed, roots int64

	// Phase A: large sub-graphs. With several workers this is the paper's
	// fine-grained level-synchronous engine; with one worker the serial
	// engine does the same sweep without atomic/frontier-bag overhead (the
	// phase split is kept so Figure 8's top/rest attribution stays correct).
	startA := time.Now()
	var serialBig *serialState
	var fineBig *fineState
	for _, sg := range big {
		n := sg.NumVerts()
		rs := sg.Roots[:rootPrefix(len(sg.Roots), totalRoots, opt.RootBudget)]
		if p == 1 {
			if serialBig == nil {
				serialBig = &serialState{hybridFrac: frac}
			}
			serialBig.ensure(n)
			for _, s := range rs {
				serialBig.runRoot(sg, s, directed)
			}
			flushLocal(bc, sg, serialBig.ws.BC)
			for l := range serialBig.ws.BC[:n] {
				serialBig.ws.BC[l] = 0
			}
			traversed += serialBig.traversed
			serialBig.traversed = 0
		} else {
			// One fine state serves every large sub-graph; ensure grows it
			// and the post-flush zeroing keeps it clean for the next one.
			if fineBig == nil {
				fineBig = newFineState(p)
				fineBig.hybridFrac = frac
			}
			fineBig.ensure(n)
			for _, s := range rs {
				fineBig.runRoot(sg, s, directed)
			}
			flushLocal(bc, sg, fineBig.ws.BC)
			for l := range fineBig.ws.BC[:n] {
				fineBig.ws.BC[l] = 0
			}
			traversed += fineBig.traversed
			fineBig.traversed = 0
		}
		roots += int64(len(rs))
	}
	if serialBig != nil {
		serialBig.release()
	}
	if fineBig != nil {
		fineBig.release()
	}
	topDur := time.Since(startA)

	// Phase B: remaining sub-graphs, coarse-grained with serial inner loops
	// and per-worker scratch.
	startB := time.Now()
	scratches := make([]*serialState, p)
	par.ForWorker(len(small), p, 1, func(w, i int) {
		st := scratches[w]
		if st == nil {
			st = &serialState{hybridFrac: frac}
			scratches[w] = st
		}
		sg := small[i]
		st.ensure(sg.NumVerts())
		rs := sg.Roots[:rootPrefix(len(sg.Roots), totalRoots, opt.RootBudget)]
		for _, s := range rs {
			st.runRoot(sg, s, directed)
		}
		flushLocalAtomic(bc, sg, st.ws.BC)
		for l := range st.ws.BC[:sg.NumVerts()] {
			st.ws.BC[l] = 0
		}
		atomic.AddInt64(&traversed, st.traversed)
		st.traversed = 0
		atomic.AddInt64(&roots, int64(len(rs)))
	})
	for _, st := range scratches {
		if st != nil {
			st.release()
		}
	}
	restDur := time.Since(startB)

	if opt.Breakdown != nil {
		bd := opt.Breakdown
		bd.TopBC = topDur
		bd.RestBC = restDur
		// Total always covers the BC phases; Partition/AlphaBeta are folded
		// in when the caller (Compute, or a direct ComputeDecomposed user
		// that timed its own decomposition) pre-populated them.
		bd.Total = bd.Partition + bd.AlphaBeta + topDur + restDur
		bd.TraversedArcs = traversed
		bd.Roots = roots
		bd.Subgraphs = len(d.Subgraphs)
		bd.Articulations = d.NumArticulation
	}
	return bc, nil
}

// flushLocal adds a sub-graph's local BC scores into the global array
// (single-threaded caller).
func flushLocal(bc []float64, sg *decompose.Subgraph, local []float64) {
	for l, v := range sg.Verts {
		bc[v] += local[l]
	}
}

// flushLocalAtomic is flushLocal for concurrent callers; only articulation
// points are ever shared between sub-graphs, but cache-line neighbours still
// require atomic adds.
func flushLocalAtomic(bc []float64, sg *decompose.Subgraph, local []float64) {
	for l, v := range sg.Verts {
		if local[l] != 0 {
			atomicAddFloat64(&bc[v], local[l])
		}
	}
}
