package core

import (
	"testing"

	"repro/internal/decompose"
	"repro/internal/gen"
)

// TestRootBudgetDeterministic pins RootBudget's contract: the trimmed root
// set is a pure function of (decomposition, budget), so a budgeted run is
// bit-identical across worker counts, schedulers and engines — exactly the
// property the at-scale sweeps rely on when they compare p=1 against p=8 on
// a budget instead of a full exact run.
func TestRootBudgetDeterministic(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{
		N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 1})
	for _, budget := range []int{1, 7, 50} {
		base, err := Compute(g, Options{Workers: 1, Threshold: 8, RootBudget: budget})
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []Options{
			{Workers: 8, Threshold: 8, RootBudget: budget},
			{Workers: 8, Threshold: 8, RootBudget: budget, Scheduler: SchedulerStatic},
			{Workers: 8, Threshold: 8, RootBudget: budget, RootEngine: EngineMSBFS},
			{Workers: 3, Threshold: 8, RootBudget: budget, Scheduler: SchedulerStatic},
		} {
			got, err := Compute(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			for v := range base {
				if base[v] != got[v] {
					t.Fatalf("budget=%d opt=%+v: BC[%d] = %v, want %v (bit-exact)",
						budget, opt, v, got[v], base[v])
				}
			}
		}
	}
}

// A budget at or above the total root count must replay the exact
// computation bit for bit, and a smaller budget must actually trim:
// Breakdown.Roots reports the realized count, bounded below by one root per
// non-empty sub-graph and above by budget + #subgraphs (the ceiling slack).
func TestRootBudgetExactAndTrimmed(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{
		N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 1})
	d, err := decompose.Decompose(g, decompose.Options{Threshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	total := int(totalRootCount(d))
	if total < 20 {
		t.Fatalf("fixture too small: %d roots", total)
	}

	var full Breakdown
	exact, err := Compute(g, Options{Workers: 4, Threshold: 8, Breakdown: &full})
	if err != nil {
		t.Fatal(err)
	}
	if full.Roots != int64(total) {
		t.Fatalf("unbudgeted run processed %d roots, decomposition has %d", full.Roots, total)
	}

	var capped Breakdown
	replay, err := Compute(g, Options{
		Workers: 4, Threshold: 8, RootBudget: total, Breakdown: &capped})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Roots != int64(total) {
		t.Fatalf("budget=total processed %d roots, want %d", capped.Roots, total)
	}
	for v := range exact {
		if exact[v] != replay[v] {
			t.Fatalf("budget=total diverged from exact at vertex %d", v)
		}
	}

	budget := total / 4
	var trimmed Breakdown
	if _, err := Compute(g, Options{
		Workers: 4, Threshold: 8, RootBudget: budget, Breakdown: &trimmed}); err != nil {
		t.Fatal(err)
	}
	nsg := int64(len(d.Subgraphs))
	if trimmed.Roots < 1 || trimmed.Roots > int64(budget)+nsg {
		t.Fatalf("budget=%d realized %d roots, want within [1, %d]",
			budget, trimmed.Roots, int64(budget)+nsg)
	}
	if trimmed.Roots >= full.Roots {
		t.Fatalf("budget=%d did not trim (%d of %d roots)", budget, trimmed.Roots, full.Roots)
	}
}

// rootPrefix is the proportional-allocation primitive behind RootBudget;
// check its boundary behavior directly.
func TestRootPrefix(t *testing.T) {
	cases := []struct {
		nr     int
		total  int64
		budget int
		want   int
	}{
		{10, 100, 0, 10},   // no budget: keep everything
		{10, 100, -1, 10},  // negative: keep everything
		{10, 100, 100, 10}, // budget == total: keep everything
		{10, 100, 200, 10}, // budget > total: keep everything
		{10, 100, 50, 5},   // exact half
		{10, 100, 1, 1},    // ceiling floor: never drop a non-empty sub-graph
		{1, 100, 1, 1},
		{0, 100, 1, 0}, // empty stays empty
		{7, 7, 3, 3},
	}
	for _, tc := range cases {
		if got := rootPrefix(tc.nr, tc.total, tc.budget); got != tc.want {
			t.Errorf("rootPrefix(%d, %d, %d) = %d, want %d",
				tc.nr, tc.total, tc.budget, got, tc.want)
		}
	}
}
