package core

import (
	"testing"

	"repro/internal/decompose"
	"repro/internal/gen"
)

// Allocation gates for the pooled sweep-workspace arena: once a workspace is
// warm (checked out and grown to the sub-graph's size), repeated root sweeps
// must not touch the heap — the dirty-list sparse resets restore the
// clean-slot invariants without reallocating anything.

func decomposeForAlloc(t *testing.T, nScale float64) *decompose.Decomposition {
	t.Helper()
	g := gen.SocialLike(gen.SocialParams{N: int(400 * nScale), AvgDeg: 4,
		Communities: 4, TopShare: 0.5, LeafFrac: 0.3, Seed: 7})
	d, err := decompose.Decompose(g, decompose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// BenchmarkRootSweepWarm measures the steady-state per-root sweep on the
// largest sub-graph of the fixture; -benchmem should report 0 allocs/op
// (EXPERIMENTS.md records the before/after of the arena refactor).
func BenchmarkRootSweepWarm(b *testing.B) {
	g := gen.SocialLike(gen.SocialParams{N: 400, AvgDeg: 4,
		Communities: 4, TopShare: 0.5, LeafFrac: 0.3, Seed: 7})
	d, err := decompose.Decompose(g, decompose.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var sg *decompose.Subgraph
	for _, cand := range d.Subgraphs {
		if len(cand.Roots) > 0 && (sg == nil || cand.NumVerts() > sg.NumVerts()) {
			sg = cand
		}
	}
	var rs RootSweep
	rs.Run(sg, sg.Roots[0], g.Directed())
	dst := make([]float64, sg.NumVerts())
	rs.Collect(dst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Run(sg, sg.Roots[i%len(sg.Roots)], g.Directed())
	}
	b.StopTimer()
	rs.Collect(dst)
	rs.Release()
}

func TestRootSweepWarmAllocs(t *testing.T) {
	// Small sub-graphs exercise the plain top-down sweep, the large one the
	// direction-optimizing hybrid; both must be allocation-free warm.
	for _, scale := range []float64{0.25, 1} {
		d := decomposeForAlloc(t, scale)
		var sg *decompose.Subgraph
		for _, cand := range d.Subgraphs {
			if len(cand.Roots) > 1 && (sg == nil || cand.NumVerts() > sg.NumVerts()) {
				sg = cand
			}
		}
		if sg == nil {
			t.Fatal("no multi-root sub-graph in fixture")
		}
		var rs RootSweep
		directed := d.G.Directed()
		for _, r := range sg.Roots {
			rs.Run(sg, r, directed)
		}
		dst := make([]float64, sg.NumVerts())
		rs.Collect(dst)
		i := 0
		allocs := testing.AllocsPerRun(50, func() {
			rs.Run(sg, sg.Roots[i%len(sg.Roots)], directed)
			i++
		})
		rs.Collect(dst)
		rs.Release()
		if allocs != 0 {
			t.Fatalf("scale %v (n=%d): warm RootSweep.Run allocates %.1f/op, want 0",
				scale, sg.NumVerts(), allocs)
		}
	}
}
