package core

import (
	"sort"
	"time"

	"repro/internal/decompose"
	"repro/internal/par"
	"repro/internal/ws"
)

// The dynamic scheduler replaces the legacy phase-A/phase-B split with one
// cost-ordered queue of (sub-graph, root-range) work units. Each unit's cost
// is estimated as |roots|·(|V_i|+|E_i|) — the Brandes work bound for its
// slice of the sub-graph — and the queue is drained largest-first by a fixed
// worker pool (par.ForWorker with grain 1: atomic-counter claiming, the
// work-stealing analogue). Large sub-graphs are split into several root
// ranges so they fan out across workers, and because everything lives in one
// queue there is no barrier holding small sub-graphs back while the top
// sub-graph finishes.
//
// Determinism: at p == 1 units are whole sub-graphs processed in index order
// with direct flushes — exactly the legacy coarse serial path (what
// RootSweep/approx replay bit-for-bit). At p > 1 each unit accumulates into
// a private partial array and the partials are merged sequentially in
// (sub-graph index, root-range) order after the drain, so the result is a
// deterministic function of (graph, options) regardless of worker
// interleaving. Only articulation points are shared between sub-graphs, so
// the extra memory is one float64 slice per unit, Σ|V_i| overall.

// unitsPerWorkerTarget controls chunking: a sub-graph is split so that no
// unit exceeds ~1/(unitsPerWorkerTarget·p) of the total estimated work,
// giving the pool a few claimable pieces per worker without shredding the
// queue into scheduling overhead.
const unitsPerWorkerTarget = 4

type workUnit struct {
	sg      *decompose.Subgraph
	sgIdx   int
	lo, hi  int // root range [lo, hi) into sg.Roots
	big     bool
	cost    int64
	partial []float64
	dur     time.Duration
}

// rootEngine is the per-worker sweep engine the scheduler drives: the serial
// unweighted four-dependency engine (serialState) and its Dijkstra analogue
// (weightedState) both implement it.
type rootEngine interface {
	ensure(n int)
	runRoot(sg *decompose.Subgraph, s int32, directed bool)
	local() []float64     // per-sub-graph BC accumulation buffer
	takeTraversed() int64 // drain the traversed-arc counter
	release()             // return pooled scratch (caller drained local first)
}

func (st *serialState) local() []float64 { return st.ws.BC }

func (st *serialState) takeTraversed() int64 {
	t := st.traversed
	st.traversed = 0
	return t
}

func (st *weightedState) local() []float64 { return st.ws.BC }

func (st *weightedState) takeTraversed() int64 {
	t := st.traversed
	st.traversed = 0
	return t
}

// prepareHybrid builds the in-CSR of every sub-graph large enough for the
// direction-optimizing sweep. No-op when bottom-up is disabled.
func prepareHybrid(d *decompose.Decomposition, frac float64) {
	if frac <= 0 {
		return
	}
	for _, sg := range d.Subgraphs {
		if sg.NumVerts() >= hybridMinVerts {
			sg.EnsureIn()
		}
	}
}

// unitCost estimates the sweep work for nr roots of sg. The scalar engine
// pays one traversal per root, |roots|·(|V|+|E|); the batched engine shares
// each traversal across a lane word, ⌈|roots|/LaneWidth⌉·(|V|+|E|).
func unitCost(sg *decompose.Subgraph, nr int, laneBatched bool) int64 {
	work := int64(sg.NumVerts()) + sg.NumArcs()
	if laneBatched {
		return int64((nr+ws.LaneWidth-1)/ws.LaneWidth) * work
	}
	return int64(nr) * work
}

// buildUnits constructs the work-unit list in canonical (sgIdx, root-range)
// order. chunking splits costly sub-graphs into root ranges sized so the
// queue holds a few units per worker; otherwise every unit is a whole
// sub-graph. cutoff classifies units as "big" for Breakdown attribution.
//
// Unit BOUNDARIES are engine-independent: the chunk count always comes from
// the scalar cost model, and chunk sizes are rounded up to whole lane words
// for every engine. Boundaries determine the floating-point association of
// each sub-graph's per-unit partial sums, so keeping them fixed is what
// makes the engine choice bit-invisible (and lets the batched engine run
// whole lane words per unit with no boundary ever splitting a batch). Unit
// cost, by contrast, uses the requested engine's model (laneBatched switches
// to ⌈roots/LaneWidth⌉·(|V|+|E|)); it only orders the drain queue, which the
// canonical merge makes bit-neutral.
//
// budget is Options.RootBudget: each sub-graph's root list is trimmed to its
// proportional prefix BEFORE chunking, so the unit boundaries of a budgeted
// run are again a pure function of (decomposition, options) — the
// determinism argument above carries over unchanged.
func buildUnits(d *decompose.Decomposition, p, cutoff int, chunking, laneBatched bool, budget int) []workUnit {
	totalRoots := totalRootCount(d)
	var total int64
	costs := make([]int64, len(d.Subgraphs))
	for i, sg := range d.Subgraphs {
		costs[i] = unitCost(sg, rootPrefix(len(sg.Roots), totalRoots, budget), false)
		total += costs[i]
	}
	var units []workUnit
	for i, sg := range d.Subgraphs {
		nr := rootPrefix(len(sg.Roots), totalRoots, budget)
		if nr == 0 {
			continue
		}
		chunks := 1
		if chunking {
			if target := total / int64(unitsPerWorkerTarget*p); target > 0 {
				chunks = int(costs[i] / target)
			}
			if chunks < 1 {
				chunks = 1
			}
			if chunks > nr {
				chunks = nr
			}
		}
		per := (nr + chunks - 1) / chunks
		if per%ws.LaneWidth != 0 && per < nr {
			per += ws.LaneWidth - per%ws.LaneWidth
		}
		big := i == d.TopIndex || sg.NumVerts() >= cutoff
		for lo := 0; lo < nr; lo += per {
			hi := lo + per
			if hi > nr {
				hi = nr
			}
			units = append(units, workUnit{
				sg: sg, sgIdx: i, lo: lo, hi: hi, big: big,
				cost: unitCost(sg, hi-lo, laneBatched),
			})
		}
	}
	return units
}

// drainUnits runs every unit and merges results into bc deterministically
// (see the package comment above). newEngine constructs one per-worker
// engine; returns the total traversed-arc count.
func drainUnits(units []workUnit, p int, directed bool, newEngine func() rootEngine, bc []float64) int64 {
	runUnit := func(st rootEngine, u *workUnit) {
		n := u.sg.NumVerts()
		st.ensure(n)
		t0 := time.Now()
		if be, ok := st.(batchEngine); ok {
			be.runRoots(u.sg, u.sg.Roots[u.lo:u.hi], directed)
		} else {
			for _, s := range u.sg.Roots[u.lo:u.hi] {
				st.runRoot(u.sg, s, directed)
			}
		}
		u.dur = time.Since(t0)
	}
	if p <= 1 || len(units) < 2 {
		st := newEngine()
		for i := range units {
			u := &units[i]
			runUnit(st, u)
			loc := st.local()[:u.sg.NumVerts()]
			flushLocal(bc, u.sg, loc)
			for l := range loc {
				loc[l] = 0
			}
		}
		t := st.takeTraversed()
		st.release()
		return t
	}
	// Drain order: descending cost, ties broken by canonical order so the
	// queue itself is deterministic.
	queue := make([]int, len(units))
	for i := range queue {
		queue[i] = i
	}
	sort.Slice(queue, func(a, b int) bool {
		ua, ub := &units[queue[a]], &units[queue[b]]
		if ua.cost != ub.cost {
			return ua.cost > ub.cost
		}
		if ua.sgIdx != ub.sgIdx {
			return ua.sgIdx < ub.sgIdx
		}
		return ua.lo < ub.lo
	})
	engines := make([]rootEngine, p)
	par.ForWorker(len(queue), p, 1, func(w, qi int) {
		u := &units[queue[qi]]
		st := engines[w]
		if st == nil {
			st = newEngine()
			engines[w] = st
		}
		runUnit(st, u)
		loc := st.local()[:u.sg.NumVerts()]
		u.partial = make([]float64, len(loc))
		copy(u.partial, loc)
		for l := range loc {
			loc[l] = 0
		}
	})
	// Deterministic merge: canonical (sgIdx, lo) order.
	for i := range units {
		flushLocal(bc, units[i].sg, units[i].partial)
		units[i].partial = nil
	}
	var traversed int64
	for _, st := range engines {
		if st != nil {
			traversed += st.takeTraversed()
			st.release()
		}
	}
	return traversed
}

// computeDynamic runs the unweighted BC phase with the dynamic unit
// scheduler, accumulating into bc.
func computeDynamic(d *decompose.Decomposition, opt Options, p, cutoff int, bc []float64) ([]float64, error) {
	directed := d.G.Directed()
	frac := resolveFrac(opt.BottomUpFrac)
	start := time.Now()
	prepareHybrid(d, frac)
	batched := opt.RootEngine == EngineMSBFS
	newEngine := func() rootEngine { return &serialState{hybridFrac: frac} }
	if batched {
		newEngine = func() rootEngine {
			return &msbfsState{serialState: serialState{hybridFrac: frac}}
		}
	}
	// StrategyCoarseOnly promises serial whole-sub-graph processing, so only
	// StrategyTwoLevel chunks root ranges.
	units := buildUnits(d, p, cutoff, p > 1 && opt.Strategy == StrategyTwoLevel, batched, opt.RootBudget)
	// Small-graph break-even guard: below the work cutoff, drain the SAME
	// unit list with one worker instead of p. The p == 1 drain flushes each
	// unit's local scores in canonical order — additions identical to the
	// parallel drain's canonical partial merge — so degrading is bit-exact,
	// and faster than paying worker startup plus per-unit partial arrays for
	// a few milliseconds of sweep work.
	drainP := p
	if p > 1 && totalSweepCost(d) < dynamicSerialCutoff {
		drainP = 1
	}
	traversed := drainUnits(units, drainP, directed, newEngine, bc)
	wall := time.Since(start)

	if opt.Breakdown != nil {
		fillDynamicBreakdown(opt.Breakdown, d, units, wall, traversed)
	}
	return bc, nil
}

// fillDynamicBreakdown populates bd from a finished drain. Per-unit
// durations overlap at p > 1, so the measured wall time is attributed
// proportionally to the big/small duration shares; TopBC + RestBC == wall
// exactly, keeping the Breakdown sum invariant the tests pin.
func fillDynamicBreakdown(bd *Breakdown, d *decompose.Decomposition, units []workUnit, wall time.Duration, traversed int64) {
	var bigDur, allDur time.Duration
	var roots int64
	for i := range units {
		allDur += units[i].dur
		if units[i].big {
			bigDur += units[i].dur
		}
		roots += int64(units[i].hi - units[i].lo)
	}
	var top time.Duration
	if allDur > 0 {
		top = time.Duration(float64(wall) * float64(bigDur) / float64(allDur))
	}
	bd.TopBC = top
	bd.RestBC = wall - top
	bd.Total = bd.Partition + bd.AlphaBeta + wall
	bd.TraversedArcs = traversed
	bd.Roots = roots
	bd.Subgraphs = len(d.Subgraphs)
	bd.Articulations = d.NumArticulation
}
