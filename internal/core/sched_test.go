package core

import (
	"math"
	"testing"

	"repro/internal/brandes"
	"repro/internal/gen"
	"repro/internal/graph"
)

// schedFamilies returns the nine graph families the repo's equivalence
// suites standardize on (see internal/approx testGraphs).
func schedFamilies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":     gen.Path(20),
		"star":     gen.Star(20),
		"lollipop": gen.Lollipop(6, 10),
		"tree":     gen.Tree(50, 1),
		"caveman":  gen.Caveman(4, 6, false),
		"grid":     gen.Grid2D(6, 6),
		"social": gen.SocialLike(gen.SocialParams{
			N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 1}),
		"socialDir": gen.SocialLike(gen.SocialParams{
			N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3,
			Directed: true, Reciprocity: 0.5, Seed: 2}),
		"er": gen.ErdosRenyi(300, 900, false, 7),
	}
}

// TestSchedulerWorkerSweepMatchesBrandes is the acceptance pin for the
// dynamic scheduler: BC at workers 1, 2, 4 and 8 matches serial Brandes
// within the suite tolerance on all nine graph families, with a low
// threshold and fine cutoff so decomposition, chunking and the hybrid sweep
// all engage even at these sizes.
func TestSchedulerWorkerSweepMatchesBrandes(t *testing.T) {
	for name, g := range schedFamilies() {
		want := brandes.Serial(g)
		for _, p := range []int{1, 2, 4, 8} {
			got, err := Compute(g, Options{
				Workers: p, Threshold: 8, FineCutoff: 64,
			})
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			if i, ok := bcClose(want, got, 1e-9); !ok {
				t.Fatalf("%s p=%d: dynamic scheduler differs from Brandes at vertex %d: want %v got %v",
					name, p, i, want[i], got[i])
			}
		}
	}
}

// TestSchedulerStaticDynamicEquivalent cross-checks the two schedulers
// against each other at several worker counts.
func TestSchedulerStaticDynamicEquivalent(t *testing.T) {
	for name, g := range schedFamilies() {
		for _, p := range []int{1, 3, 8} {
			dyn, err := Compute(g, Options{Workers: p, Threshold: 8, Scheduler: SchedulerDynamic})
			if err != nil {
				t.Fatalf("%s p=%d dynamic: %v", name, p, err)
			}
			sta, err := Compute(g, Options{Workers: p, Threshold: 8, Scheduler: SchedulerStatic})
			if err != nil {
				t.Fatalf("%s p=%d static: %v", name, p, err)
			}
			if i, ok := bcClose(dyn, sta, 1e-9); !ok {
				t.Fatalf("%s p=%d: schedulers disagree at vertex %d: dynamic %v static %v",
					name, p, i, dyn[i], sta[i])
			}
		}
	}
}

// TestSchedulerDeterministic pins the deterministic-merge design: repeated
// multi-worker runs return bit-identical scores despite nondeterministic
// unit-to-worker assignment.
func TestSchedulerDeterministic(t *testing.T) {
	g := schedFamilies()["social"]
	base, err := Compute(g, Options{Workers: 8, Threshold: 8, FineCutoff: 64})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		got, err := Compute(g, Options{Workers: 8, Threshold: 8, FineCutoff: 64})
		if err != nil {
			t.Fatal(err)
		}
		for v := range base {
			if math.Float64bits(got[v]) != math.Float64bits(base[v]) {
				t.Fatalf("run %d: bc[%d] = %v (bits %x), first run %v (bits %x)",
					run, v, got[v], math.Float64bits(got[v]), base[v], math.Float64bits(base[v]))
			}
		}
	}
}

// TestHybridSweepBitNeutral pins the direction-optimizing sweep's bit
// neutrality claim (serialState.hybridFrac): forcing bottom-up levels on,
// off, or at an aggressive threshold never changes a single output bit.
func TestHybridSweepBitNeutral(t *testing.T) {
	for name, g := range schedFamilies() {
		var ref []float64
		// 0 = default frac, -1 = disabled, 0.01 = nearly always bottom-up
		// once the frontier is 1% of the unvisited set.
		for _, frac := range []float64{-1, 0, 0.01} {
			got, err := Compute(g, Options{
				Workers: 1, Threshold: 8, BottomUpFrac: frac,
			})
			if err != nil {
				t.Fatalf("%s frac=%v: %v", name, frac, err)
			}
			if ref == nil {
				ref = got
				continue
			}
			for v := range ref {
				if math.Float64bits(got[v]) != math.Float64bits(ref[v]) {
					t.Fatalf("%s frac=%v: bc[%d] = %v, disabled-hybrid run %v",
						name, frac, v, got[v], ref[v])
				}
			}
		}
	}
}

// TestFineEngineBottomUp forces the level-synchronous engine's parallel
// bottom-up branch: StrategyFineOnly on a graph whose top sub-graph exceeds
// hybridMinVerts, with an aggressive switch threshold, checked against
// Brandes and against the disabled-hybrid fine engine bit for bit.
func TestFineEngineBottomUp(t *testing.T) {
	g := schedFamilies()["er"] // biconnected core of 300 vertices
	want := brandes.Serial(g)
	var ref []float64
	for _, frac := range []float64{-1, 0.01} {
		got, err := Compute(g, Options{
			Workers: 4, Threshold: 8, Strategy: StrategyFineOnly, BottomUpFrac: frac,
		})
		if err != nil {
			t.Fatalf("frac=%v: %v", frac, err)
		}
		if i, ok := bcClose(want, got, 1e-9); !ok {
			t.Fatalf("frac=%v: differs from Brandes at vertex %d: want %v got %v",
				frac, i, want[i], got[i])
		}
		if ref == nil {
			ref = got
			continue
		}
		for v := range ref {
			if math.Float64bits(got[v]) != math.Float64bits(ref[v]) {
				t.Fatalf("fine engine hybrid changed bc[%d]: %v vs %v", v, got[v], ref[v])
			}
		}
	}
}

// TestUnknownScheduler mirrors TestUnknownStrategy for the new option.
func TestUnknownScheduler(t *testing.T) {
	if _, err := Compute(gen.Path(5), Options{Scheduler: Scheduler(99)}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := ComputeWeighted(gen.WithRandomWeights(gen.Path(5), 3, 1),
		Options{Scheduler: Scheduler(99)}); err == nil {
		t.Fatal("weighted: unknown scheduler accepted")
	}
	if SchedulerDynamic.String() != "dynamic" || SchedulerStatic.String() != "static" {
		t.Fatal("scheduler names changed; benchmark record keys depend on them")
	}
}

// TestWeightedSchedulerEquivalent runs the weighted engine under both
// schedulers against the serial weighted Brandes reference.
func TestWeightedSchedulerEquivalent(t *testing.T) {
	g := gen.WithRandomWeights(gen.SocialLike(gen.SocialParams{
		N: 200, AvgDeg: 4, Communities: 4, TopShare: 0.5, LeafFrac: 0.3, Seed: 5}), 4, 9)
	want := brandes.WeightedSerial(g)
	for _, p := range []int{1, 4} {
		for _, sched := range []Scheduler{SchedulerDynamic, SchedulerStatic} {
			got, err := ComputeWeighted(g, Options{Workers: p, Threshold: 8, Scheduler: sched})
			if err != nil {
				t.Fatalf("p=%d %v: %v", p, sched, err)
			}
			if i, ok := bcClose(want, got, 1e-9); !ok {
				t.Fatalf("p=%d %v: differs from weighted Brandes at vertex %d: want %v got %v",
					p, sched, i, want[i], got[i])
			}
		}
	}
}
