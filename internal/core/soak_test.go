package core

import (
	"testing"

	"repro/internal/brandes"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestIncrementalDirectedSoak(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := gen.SocialLike(gen.SocialParams{N: 120, AvgDeg: 4, Communities: 4,
			TopShare: 0.5, LeafFrac: 0.3, Directed: true, Reciprocity: 0.5, Seed: seed})
		inc, err := NewIncremental(g, Options{Threshold: 4})
		if err != nil {
			t.Fatal(err)
		}
		var u, v graph.V = -1, -1
		for _, e := range g.Edges() {
			if !g.HasArc(e.To, e.From) {
				u, v = e.From, e.To
				break
			}
		}
		if u < 0 {
			continue
		}
		if err := inc.RemoveEdge(u, v); err != nil {
			t.Fatal(err)
		}
		want := brandes.Serial(inc.Graph())
		got := inc.BC()
		if i, ok := bcClose(want, got, 1e-9); !ok {
			t.Fatalf("seed %d: after removing %d->%d differs at %d: want %v got %v",
				seed, u, v, i, want[i], got[i])
		}
	}
}

// Directed random-op soak: insertions and removals of random arcs with
// exactness checks, over several seeds.
func TestIncrementalDirectedRandomOps(t *testing.T) {
	r := newDetRand(7)
	for seed := int64(0); seed < 6; seed++ {
		g := gen.SocialLike(gen.SocialParams{N: 80, AvgDeg: 4, Communities: 3,
			TopShare: 0.5, LeafFrac: 0.25, Directed: true, Reciprocity: 0.4, Seed: seed})
		inc, err := NewIncremental(g, Options{Threshold: 4})
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 12; op++ {
			u := graph.V(r.Intn(80))
			v := graph.V(r.Intn(80))
			if u == v {
				continue
			}
			var opErr error
			if inc.Graph().HasArc(u, v) {
				opErr = inc.RemoveEdge(u, v)
			} else {
				opErr = inc.InsertEdge(u, v)
			}
			if opErr != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, opErr)
			}
			want := brandes.Serial(inc.Graph())
			if i, ok := bcClose(want, inc.BC(), 1e-9); !ok {
				t.Fatalf("seed %d op %d (%d,%d): differs at %d", seed, op, u, v, i)
			}
		}
	}
}

// newDetRand avoids importing math/rand twice across files.
func newDetRand(seed int64) *detRand { return &detRand{state: uint64(seed)*2685821657736338717 + 1} }

type detRand struct{ state uint64 }

func (r *detRand) Intn(n int) int {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return int(r.state % uint64(n))
}
