package core

import (
	"math"
	"sort"

	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/sssp"
	"repro/internal/ws"
)

// Fine-grained parallel weighted engine: the weighted analogue of the
// paper's level-synchronous scheme. Distances come from parallel
// delta-stepping (internal/sssp); σ counting and the backward
// four-dependency sweep then run level-synchronously over *distance groups*
// — with positive weights no shortest-path DAG arc connects two vertices at
// equal distance, so each group's vertices are mutually independent and all
// writes are owned, exactly like the unweighted per-level phases.
//
// Per-vertex σ/δ/BC scratch comes from the shared pooled ws.Sweep;
// distances live in a reusable sssp.Workspace (delta-stepping overwrites the
// whole array per root, so it cannot share the sweep's invariant-carrying
// FDist).
type weightedFineState struct {
	p     int
	lg    *graph.Graph // sub-graph materialized over local ids
	ws    *ws.Sweep
	wsp   sssp.Workspace
	dist  []float64
	delta float64
	// groupEnds[i] = end index (into order) of the i-th equal-distance group.
	groupEnds []int32
	traversed int64
}

func newWeightedFineState(sg *decompose.Subgraph, p int) *weightedFineState {
	lg := sg.AsGraph()
	lg.EnsureTranspose()
	st := &weightedFineState{
		p:     p,
		lg:    lg,
		ws:    sweepPool.Get(sg.NumVerts()),
		delta: sssp.DefaultDelta(lg),
	}
	return st
}

// release drains the local BC accumulator (the caller flushed it already)
// and returns the pooled sweep.
func (st *weightedFineState) release() {
	if st.ws == nil {
		return
	}
	for l := range st.ws.BC[:st.lg.NumVertices()] {
		st.ws.BC[l] = 0
	}
	sweepPool.Put(st.ws)
	st.ws = nil
}

func (st *weightedFineState) runRoot(sg *decompose.Subgraph, s int32, directed bool) {
	lg := st.lg
	n := sg.NumVerts()

	// Phase 1a: parallel delta-stepping distances (workspace-reusing form —
	// one warm state serves every root without reallocating).
	st.dist = st.wsp.DeltaStepping(lg, s, st.delta, st.p)
	dist := st.dist

	// Phase 1b: order reached vertices by distance and form equal-distance
	// groups.
	order := st.ws.Order[:0]
	for v := int32(0); int(v) < n; v++ {
		if !math.IsInf(dist[v], 1) {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(i, j int) bool { return dist[order[i]] < dist[order[j]] })
	st.ws.Order = order
	st.groupEnds = st.groupEnds[:0]
	for i := 1; i <= len(order); i++ {
		if i == len(order) || dist[order[i]] != dist[order[i-1]] {
			st.groupEnds = append(st.groupEnds, int32(i))
		}
	}

	// Phase 1c: σ pull per group, ascending. Within a group writes are
	// owned (no equal-distance DAG arcs under positive weights).
	sigma := st.ws.Sigma
	groupStart := int32(0)
	for _, end := range st.groupEnds {
		grp := order[groupStart:end]
		par.For(len(grp), st.p, func(i int) {
			v := grp[i]
			if v == s {
				sigma[v] = 1
				return
			}
			var sg float64
			inN := lg.In(v)
			inW := lg.InWeights(v)
			for k, u := range inN {
				if dist[u]+inW[k] == dist[v] {
					sg += sigma[u]
				}
			}
			sigma[v] = sg
		})
		groupStart = end
	}

	// Phase 2: backward four-dependency sweep per group, descending.
	sIsArt := sg.IsArt[s]
	betaS := sg.Beta[s]
	gammaS := float64(sg.Gamma[s])
	di2i, di2o, do2o := st.ws.Di2i, st.ws.Di2o, st.ws.Do2o
	bcLocal := st.ws.BC
	for gi := len(st.groupEnds) - 1; gi >= 0; gi-- {
		start := int32(0)
		if gi > 0 {
			start = st.groupEnds[gi-1]
		}
		grp := order[start:st.groupEnds[gi]]
		par.For(len(grp), st.p, func(i int) {
			v := grp[i]
			var i2i, i2o, o2o float64
			sv := sigma[v]
			out := lg.Out(v)
			wts := sg.OutWeights(v)
			for k, w := range out {
				if dist[w] == dist[v]+wts[k] {
					r := sv / sigma[w]
					i2i += r * (1 + di2i[w])
					i2o += r * di2o[w]
					if sIsArt {
						o2o += r * do2o[w]
					}
				}
			}
			if v != s && sg.IsArt[v] {
				i2o += sg.Alpha[v]
				if sIsArt {
					o2o += betaS * sg.Alpha[v]
				}
			}
			di2i[v], di2o[v] = i2i, i2o
			if sIsArt {
				do2o[v] = o2o
			}
			if v != s {
				contrib := (1+gammaS)*(i2i+i2o) + o2o
				if sIsArt {
					contrib += betaS * i2i
				}
				bcLocal[v] += contrib
			} else if gammaS > 0 {
				root := i2i + i2o
				if sIsArt {
					root += sg.Alpha[s]
				}
				if !directed {
					root--
				}
				bcLocal[v] += gammaS * root
			}
		})
	}

	// Sparse reset over the reached order (σ is the only invariant-carrying
	// array this engine touches).
	for _, v := range order {
		st.traversed += int64(len(lg.Out(v)))
		sigma[v] = 0
	}
}
