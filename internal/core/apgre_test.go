package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/brandes"
	"repro/internal/decompose"
	"repro/internal/gen"
	"repro/internal/graph"
)

func bcClose(a, b []float64, tol float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		diff := math.Abs(a[i] - b[i])
		scale := math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i])))
		if diff > tol*scale {
			return i, false
		}
	}
	return -1, true
}

func assertMatchesBrandes(t *testing.T, g *graph.Graph, opt Options, label string) {
	t.Helper()
	want := brandes.Serial(g)
	got, err := Compute(g, opt)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if i, ok := bcClose(want, got, 1e-9); !ok {
		t.Fatalf("%s: APGRE differs from Brandes at vertex %d: want %v got %v",
			label, i, want[i], got[i])
	}
}

func TestPaperExampleGraphs(t *testing.T) {
	// The structures §2.2 uses to motivate the approach.
	cases := map[string]*graph.Graph{
		"path":        gen.Path(20),
		"star":        gen.Star(20),
		"cycle":       gen.Cycle(15),
		"lollipop":    gen.Lollipop(6, 10),
		"tree":        gen.Tree(50, 1),
		"caveman":     gen.Caveman(4, 6, false),
		"cavemanRing": gen.Caveman(4, 6, true),
		"grid":        gen.Grid2D(6, 6),
		"K2":          graph.NewFromEdges(2, []graph.Edge{{From: 0, To: 1}}, false),
		"K1":          graph.NewFromEdges(1, nil, false),
		"empty":       graph.NewFromEdges(0, nil, false),
	}
	for name, g := range cases {
		assertMatchesBrandes(t, g, Options{Threshold: 4}, name)
	}
}

func TestFigure3Graph(t *testing.T) {
	// The 13-vertex graph of paper Figure 3 (directed), and its undirected
	// view, with several thresholds.
	edges := []graph.Edge{
		{From: 0, To: 2}, {From: 1, To: 2},
		{From: 2, To: 5}, {From: 2, To: 4},
		{From: 5, To: 3}, {From: 5, To: 6}, {From: 4, To: 3}, {From: 4, To: 6},
		{From: 3, To: 12}, {From: 3, To: 10}, {From: 10, To: 12},
		{From: 6, To: 7}, {From: 6, To: 8}, {From: 7, To: 9}, {From: 8, To: 9},
	}
	for _, directed := range []bool{true, false} {
		g := graph.NewFromEdges(13, edges, directed)
		for _, th := range []int{1, 2, 4, 1000} {
			assertMatchesBrandes(t, g, Options{Threshold: th}, "figure3")
		}
	}
}

func TestSocialGraphsAllStrategies(t *testing.T) {
	graphs := []*graph.Graph{
		gen.SocialLike(gen.SocialParams{N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 1}),
		gen.SocialLike(gen.SocialParams{N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Directed: true, Reciprocity: 0.5, Seed: 2}),
		gen.RoadLike(gen.RoadParams{Rows: 9, Cols: 9, DeleteFrac: 0.12, SpurFrac: 0.15, SpurLen: 2, Seed: 3}),
		gen.BarabasiAlbert(300, 2, 4),
	}
	for gi, g := range graphs {
		for _, strat := range []Strategy{StrategyTwoLevel, StrategyFineOnly, StrategyCoarseOnly} {
			for _, w := range []int{1, 3} {
				opt := Options{Strategy: strat, Workers: w, Threshold: 8}
				assertMatchesBrandes(t, g, opt, "social")
				_ = gi
			}
		}
	}
}

func TestFineCutoffForcesBothPaths(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 500, AvgDeg: 5, Communities: 8, TopShare: 0.5, LeafFrac: 0.25, Seed: 5})
	// Cutoff 1: everything fine-grained. Huge cutoff: everything coarse.
	assertMatchesBrandes(t, g, Options{FineCutoff: 1, Workers: 2}, "all-fine")
	assertMatchesBrandes(t, g, Options{FineCutoff: 1 << 30, Workers: 2}, "all-coarse")
}

func TestAlphaBetaMethodsAgree(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 350, AvgDeg: 4, Communities: 7, TopShare: 0.4, LeafFrac: 0.3, Seed: 6})
	a, err := Compute(g, Options{AlphaBeta: decompose.AlphaBetaTree})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(g, Options{AlphaBeta: decompose.AlphaBetaBFS})
	if err != nil {
		t.Fatal(err)
	}
	if i, ok := bcClose(a, b, 1e-12); !ok {
		t.Fatalf("methods differ at %d", i)
	}
}

func TestDisableGammaStillExact(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 300, AvgDeg: 4, Communities: 5, TopShare: 0.5, LeafFrac: 0.35, Seed: 7})
	assertMatchesBrandes(t, g, Options{DisableGamma: true}, "gamma-off")
	gd := gen.SocialLike(gen.SocialParams{N: 300, AvgDeg: 4, Communities: 5, TopShare: 0.5, LeafFrac: 0.35, Directed: true, Reciprocity: 0.4, Seed: 8})
	assertMatchesBrandes(t, gd, Options{DisableGamma: true}, "gamma-off-directed")
}

func TestGammaReducesRoots(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 400, AvgDeg: 4, Communities: 5, TopShare: 0.5, LeafFrac: 0.4, Seed: 9})
	var with, without Breakdown
	if _, err := Compute(g, Options{Breakdown: &with}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(g, Options{DisableGamma: true, Breakdown: &without}); err != nil {
		t.Fatal(err)
	}
	if with.Roots >= without.Roots {
		t.Fatalf("gamma elimination did not reduce roots: %d vs %d", with.Roots, without.Roots)
	}
	if with.TraversedArcs >= without.TraversedArcs {
		t.Fatalf("gamma elimination did not reduce work: %d vs %d", with.TraversedArcs, without.TraversedArcs)
	}
}

func TestBreakdownPopulated(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 300, AvgDeg: 4, Communities: 6, TopShare: 0.5, LeafFrac: 0.2, Seed: 10})
	var bd Breakdown
	if _, err := Compute(g, Options{Breakdown: &bd, FineCutoff: 50}); err != nil {
		t.Fatal(err)
	}
	if bd.Subgraphs <= 1 {
		t.Fatalf("breakdown subgraphs = %d", bd.Subgraphs)
	}
	if bd.TraversedArcs == 0 || bd.Roots == 0 {
		t.Fatalf("breakdown counters empty: %+v", bd)
	}
	if bd.Total < bd.Partition || bd.Total < bd.TopBC {
		t.Fatalf("breakdown total inconsistent: %+v", bd)
	}
}

func TestAPGREReducesWorkVsBrandes(t *testing.T) {
	// On a leafy community graph APGRE must traverse far fewer arcs than
	// Brandes' n BFS sweeps.
	g := gen.SocialLike(gen.SocialParams{N: 1000, AvgDeg: 5, Communities: 12, TopShare: 0.4, LeafFrac: 0.35, Seed: 11})
	var bd Breakdown
	if _, err := Compute(g, Options{Breakdown: &bd}); err != nil {
		t.Fatal(err)
	}
	brandesWork := int64(g.NumVertices()) * g.NumArcs() // connected undirected: every BFS scans all arcs
	if bd.TraversedArcs*2 > brandesWork {
		t.Fatalf("APGRE work %d not < half of Brandes %d", bd.TraversedArcs, brandesWork)
	}
}

func TestComputeDecomposedReuse(t *testing.T) {
	g := gen.Caveman(5, 6, false)
	d, err := decompose.Decompose(g, decompose.Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := brandes.Serial(g)
	for _, strat := range []Strategy{StrategyTwoLevel, StrategyCoarseOnly} {
		got, err := ComputeDecomposed(d, Options{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := bcClose(want, got, 1e-9); !ok {
			t.Fatalf("reused decomposition differs at %d", i)
		}
	}
}

func TestUnknownStrategy(t *testing.T) {
	g := gen.Path(5)
	if _, err := Compute(g, Options{Strategy: Strategy(99)}); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Components + isolated vertices.
	edges := append(gen.Caveman(3, 4, false).Edges(),
		graph.Edge{From: 13, To: 14}, graph.Edge{From: 14, To: 15})
	g := graph.NewFromEdges(18, edges, false)
	assertMatchesBrandes(t, g, Options{Threshold: 3}, "disconnected")
}

// The decisive property test: APGRE ≡ Brandes on random graphs of every
// flavour (sparse/dense, directed/undirected, varying thresholds and worker
// counts). The undirected γ root-term correction and every dependency seed
// is exercised here.
func TestQuickEquivalence(t *testing.T) {
	f := func(seed int64, cfg uint8) bool {
		directed := cfg&1 != 0
		th := []int{1, 4, 64}[int(cfg>>1)%3]
		w := 1 + int(cfg>>3)%3
		var g *graph.Graph
		switch int(cfg>>5) % 3 {
		case 0:
			g = gen.ErdosRenyi(70, 140, directed, seed)
		case 1:
			g = gen.SocialLike(gen.SocialParams{N: 120, AvgDeg: 4, Communities: 4,
				TopShare: 0.5, LeafFrac: 0.3, Directed: directed, Reciprocity: 0.5, Seed: seed})
		default:
			g = gen.RoadLike(gen.RoadParams{Rows: 6, Cols: 7, DeleteFrac: 0.15,
				SpurFrac: 0.2, SpurLen: 2, Seed: seed})
		}
		want := brandes.Serial(g)
		got, err := Compute(g, Options{Threshold: th, Workers: w, FineCutoff: 60})
		if err != nil {
			return false
		}
		_, ok := bcClose(want, got, 1e-9)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: BC of an articulation point equals the sum of its sub-graph
// scores and is always >= the plain count of cross pairs through it.
func TestQuickArticulationScores(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.Caveman(3, 4, false)
		_ = seed
		want := brandes.Serial(g)
		got, err := Compute(g, Options{Threshold: 3})
		if err != nil {
			return false
		}
		_, ok := bcClose(want, got, 1e-9)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}
