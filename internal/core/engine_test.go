package core

import (
	"math"
	"testing"

	"repro/internal/brandes"
	"repro/internal/decompose"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ws"
)

// engineFamilies is the nine-family suite plus a disconnected graph (two
// components, isolated vertices) — the batched kernel must handle lanes that
// never reach most of the sub-graph.
func engineFamilies() map[string]*graph.Graph {
	fams := schedFamilies()
	fams["disconnected"] = graph.NewFromEdges(40, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 0},
		{From: 2, To: 4}, {From: 4, To: 5}, {From: 5, To: 6},
		{From: 10, To: 11}, {From: 11, To: 12}, {From: 12, To: 10},
		{From: 12, To: 13}, {From: 13, To: 14}, {From: 14, To: 15},
	}, false)
	return fams
}

// forceParallel drops the small-graph serial guard for the duration of a
// test so multi-worker paths genuinely engage on test-sized graphs.
func forceParallel(t *testing.T) {
	t.Helper()
	old := dynamicSerialCutoff
	dynamicSerialCutoff = 0
	t.Cleanup(func() { dynamicSerialCutoff = old })
}

func bcBitsEqual(t *testing.T, name string, want, got []float64) {
	t.Helper()
	for v := range want {
		if math.Float64bits(want[v]) != math.Float64bits(got[v]) {
			t.Fatalf("%s: engines differ at vertex %d: %v vs %v (bits %#x vs %#x)",
				name, v, want[v], got[v],
				math.Float64bits(want[v]), math.Float64bits(got[v]))
		}
	}
}

// TestMSBFSEngineBitMatchesScalar is the msbfs determinism suite: on every
// family (directed and disconnected included) and at every worker count, the
// batched engine returns bit-identical scores to the scalar engine at the
// same worker count — the acceptance pin that makes EngineMSBFS a pure
// performance knob. (Worker count itself legitimately shapes unit
// boundaries and hence partial-sum association; the invariant is that the
// ENGINE never does.)
func TestMSBFSEngineBitMatchesScalar(t *testing.T) {
	forceParallel(t)
	for name, g := range engineFamilies() {
		for _, p := range []int{1, 2, 4, 8} {
			want, err := Compute(g, Options{Workers: p, Threshold: 8, FineCutoff: 64})
			if err != nil {
				t.Fatalf("%s p=%d scalar: %v", name, p, err)
			}
			got, err := Compute(g, Options{
				Workers: p, Threshold: 8, FineCutoff: 64, RootEngine: EngineMSBFS,
			})
			if err != nil {
				t.Fatalf("%s p=%d msbfs: %v", name, p, err)
			}
			bcBitsEqual(t, name, want, got)
		}
	}
}

// TestMSBFSEngineMatchesBrandes anchors the batched engine to ground truth
// (two engines could be bit-equal and both wrong).
func TestMSBFSEngineMatchesBrandes(t *testing.T) {
	forceParallel(t)
	for name, g := range engineFamilies() {
		want := brandes.Serial(g)
		got, err := Compute(g, Options{
			Workers: 4, Threshold: 8, FineCutoff: 64, RootEngine: EngineMSBFS,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if i, ok := bcClose(want, got, 1e-9); !ok {
			t.Fatalf("%s: msbfs differs from Brandes at vertex %d: want %v got %v",
				name, i, want[i], got[i])
		}
	}
}

// TestMSBFSBatchRemainder pins the partial-batch path above the break-even
// gates: a sub-graph whose root count is not a multiple of the lane width
// must route its tail roots through a partial-word batch and still match the
// scalar engine bit for bit.
func TestMSBFSBatchRemainder(t *testing.T) {
	forceParallel(t)
	g := gen.ErdosRenyi(500, 1500, false, 3)
	d, err := decompose.Decompose(g, decompose.Options{Threshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	over := false
	for _, sg := range d.Subgraphs {
		if sg.NumVerts() >= msbfsMinVerts && len(sg.Roots) >= msbfsMinLanes &&
			len(sg.Roots)%ws.LaneWidth != 0 {
			over = true
		}
	}
	if !over {
		t.Fatal("test graph has no sub-graph exercising a partial batch above the gates")
	}
	for _, p := range []int{1, 8} {
		want, err := ComputeDecomposed(d, Options{Workers: p, Threshold: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ComputeDecomposed(d, Options{
			Workers: p, Threshold: 8, RootEngine: EngineMSBFS,
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		bcBitsEqual(t, "er500", want, got)
	}
}

// TestMSBFSEngineDeterministic reruns the batched engine at p=8 and demands
// bit-identical output — the scheduler's deterministic merge must hold with
// batch-granular units too.
func TestMSBFSEngineDeterministic(t *testing.T) {
	forceParallel(t)
	g := schedFamilies()["social"]
	base, err := Compute(g, Options{Workers: 8, Threshold: 8, FineCutoff: 64, RootEngine: EngineMSBFS})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		got, err := Compute(g, Options{Workers: 8, Threshold: 8, FineCutoff: 64, RootEngine: EngineMSBFS})
		if err != nil {
			t.Fatal(err)
		}
		bcBitsEqual(t, "social rerun", base, got)
	}
}

// TestDynamicSerialCutoffBoundary pins the small-graph break-even guard's
// bit-neutrality: the same multi-worker request run just below the guard
// (degraded to the serial coarse path) and with the guard disabled (true
// 8-worker drain) must produce identical bits, for both engines. The guard
// may therefore move freely as break-even tuning evolves without any
// observable output change.
func TestDynamicSerialCutoffBoundary(t *testing.T) {
	old := dynamicSerialCutoff
	t.Cleanup(func() { dynamicSerialCutoff = old })
	for name, g := range engineFamilies() {
		for _, eng := range []RootEngine{EngineScalar, EngineMSBFS} {
			dynamicSerialCutoff = 1 << 62 // guard always fires: serial path
			serial, err := Compute(g, Options{
				Workers: 8, Threshold: 8, FineCutoff: 64, RootEngine: eng,
			})
			if err != nil {
				t.Fatalf("%s/%v serial-guarded: %v", name, eng, err)
			}
			dynamicSerialCutoff = 0 // guard never fires: real parallel drain
			parallel, err := Compute(g, Options{
				Workers: 8, Threshold: 8, FineCutoff: 64, RootEngine: eng,
			})
			if err != nil {
				t.Fatalf("%s/%v parallel: %v", name, eng, err)
			}
			bcBitsEqual(t, name+"/"+eng.String(), serial, parallel)
		}
	}
}

// TestRootSweepRunBatchBitMatch pins RunBatch's contract: batching pivots is
// bit-identical to running them one at a time, above and below the
// break-even gates.
func TestRootSweepRunBatchBitMatch(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"social": schedFamilies()["social"], // above the gates
		"path":   gen.Path(20),              // below: scalar fallback path
	} {
		d, err := decompose.Decompose(g, decompose.Options{Threshold: 8})
		if err != nil {
			t.Fatal(err)
		}
		var one, batch RootSweep
		for _, sg := range d.Subgraphs {
			n := sg.NumVerts()
			for _, s := range sg.Roots {
				one.Run(sg, s, g.Directed())
			}
			batch.RunBatch(sg, sg.Roots, g.Directed())
			a := make([]float64, n)
			b := make([]float64, n)
			one.Collect(a)
			batch.Collect(b)
			for l := range a {
				if math.Float64bits(a[l]) != math.Float64bits(b[l]) {
					t.Fatalf("%s sg %d vertex %d: Run %v, RunBatch %v", name, sg.ID, l, a[l], b[l])
				}
			}
		}
		if tr1, tr2 := one.Traversed(), batch.Traversed(); tr1 != tr2 {
			t.Fatalf("%s: traversed metric diverged: Run %d, RunBatch %d", name, tr1, tr2)
		}
		one.Release()
		batch.Release()
	}
}

// TestRootEngineStringParse covers the flag round-trip and validation.
func TestRootEngineStringParse(t *testing.T) {
	for _, e := range []RootEngine{EngineScalar, EngineMSBFS} {
		got, err := ParseRootEngine(e.String())
		if err != nil || got != e {
			t.Fatalf("ParseRootEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if e, err := ParseRootEngine(""); err != nil || e != EngineScalar {
		t.Fatalf("empty engine name: %v, %v", e, err)
	}
	if _, err := ParseRootEngine("simd"); err == nil {
		t.Fatal("unknown engine name accepted")
	}
	if RootEngine(99).String() == "" {
		t.Fatal("out-of-range String is empty")
	}
	if _, err := Compute(gen.Path(4), Options{RootEngine: RootEngine(99)}); err == nil {
		t.Fatal("Compute accepted an unknown root engine")
	}
}
