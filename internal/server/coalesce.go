package server

// Query coalescing: identical top-K queries against the same published epoch
// share one ranking pass.
//
// The cache key is (epoch sequence number, k). The epoch seq is perfect for
// this: core.Incremental bumps it exactly once per published epoch, so a
// cached ranking can never serve stale scores — the first query after a
// mutation lands sees a new seq and recomputes. Within one epoch, the first
// request for a given k ranks (singleflight); concurrent duplicates block on
// its done channel instead of redoing the O(n log n) sort, and later
// requests at the same epoch hit the stored result outright. That makes the
// hot cached-read path O(1) and allocation-free, which is what keeps read
// p99 flat while the mutation worker is busy rebuilding.

import "sync"

// topkCoalesceCap bounds the per-epoch result map so a client probing many
// distinct k values cannot grow it without bound; overflow queries just rank
// uncached.
const topkCoalesceCap = 64

// topkCall is one in-flight or completed ranking; done closes when top/n are
// set. The result slice is immutable after close(done).
type topkCall struct {
	done chan struct{}
	top  []VertexScore
	n    int
}

// topkCache is the per-entry epoch-keyed singleflight table. Zero value is
// ready to use.
type topkCache struct {
	mu    sync.Mutex
	seq   uint64
	calls map[int]*topkCall
}

// TopKCoalesced returns the k highest-BC vertices and the vertex count,
// sharing work with concurrent and recent identical queries on the same
// epoch. hit reports whether the ranking was reused (for the cache metric).
// The returned slice is shared and must not be mutated.
func (e *Entry) TopKCoalesced(k int) (top []VertexScore, n int, hit bool, err error) {
	inc, err := e.ready()
	if err != nil {
		return nil, 0, false, err
	}
	snap := inc.Snapshot()
	c := &e.topk
	c.mu.Lock()
	if c.calls == nil || snap.Seq > c.seq {
		c.seq = snap.Seq
		c.calls = make(map[int]*topkCall, 8)
	}
	var call *topkCall
	if snap.Seq == c.seq {
		if cached, ok := c.calls[k]; ok {
			c.mu.Unlock()
			<-cached.done
			return cached.top, cached.n, true, nil
		}
		if len(c.calls) < topkCoalesceCap {
			call = &topkCall{done: make(chan struct{})}
			c.calls[k] = call
		}
	}
	// snap.Seq < c.seq means a publish raced us after we took the snapshot:
	// rank this one uncached rather than rolling the cache backwards.
	c.mu.Unlock()

	// Rank against this call's snapshot. A newer epoch may publish while we
	// sort; that only means the next query at the new seq recomputes — the
	// stored result stays pinned to the seq it was keyed under.
	bc := snap.BCView()
	scr := topKScratch.Get().(*rankScratch)
	ranked := append([]VertexScore(nil), scr.topK(bc, k)...)
	topKScratch.Put(scr)
	if call != nil {
		call.top = ranked
		call.n = len(bc)
		close(call.done)
	}
	return ranked, len(bc), false, nil
}
