package server

import (
	"io"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server/promtext"
)

// Metrics bundles the daemon's Prometheus families. Label cardinality is
// bounded by construction: routes are mux patterns, never raw paths.
type Metrics struct {
	reg *promtext.Registry

	requests     *promtext.CounterVec    // route, method, code
	latency      *promtext.HistogramVec  // route
	graphs       *promtext.GaugeVec      // (none)
	incremental  *promtext.CounterVec    // result = local | rebuild
	loads        *promtext.CounterVec    // status = ok | error | canceled
	approxPivots *promtext.CounterVec    // graph
	approxError  *promtext.FloatGaugeVec // graph
	wsPoolSize   *promtext.GaugeVec      // (none)
	wsInUse      *promtext.GaugeVec      // (none)
	overload     *promtext.CounterVec    // op = build | mutation
	batches      *promtext.CounterVec    // (none)
	batchOps     *promtext.CounterVec    // (none)
	topk         *promtext.CounterVec    // result = hit | miss
	durability   *promtext.CounterVec    // event = append | snapshot | recover | error
}

// NewMetrics builds the metric families.
func NewMetrics() *Metrics {
	reg := promtext.NewRegistry()
	m := &Metrics{
		reg: reg,
		requests: reg.NewCounter("bcd_requests_total",
			"HTTP requests served, by route pattern, method and status code.",
			"route", "method", "code"),
		latency: reg.NewHistogram("bcd_request_duration_seconds",
			"HTTP request latency in seconds, by route pattern.",
			metrics.DurationBuckets(), "route"),
		graphs: reg.NewGauge("bcd_graphs_loaded",
			"Graphs currently in the ready state."),
		incremental: reg.NewCounter("bcd_incremental_updates_total",
			"Edge mutations absorbed, by result: local (intra-sub-graph "+
				"incremental update) or rebuild (full re-decomposition).",
			"result"),
		loads: reg.NewCounter("bcd_load_jobs_total",
			"Graph build jobs finished, by status.", "status"),
		approxPivots: reg.NewCounter("bcd_approx_pivots_total",
			"Pivot sweeps run by the approximate-BC estimator, by graph "+
				"(foreground query refinement plus background batches).",
			"graph"),
		approxError: reg.NewFloatGauge("bcd_approx_error_estimate",
			"Latest bootstrap CI half-width of the approximate-BC estimate "+
				"on the normalized scale, by graph (0 once exact).",
			"graph"),
		wsPoolSize: reg.NewGauge("bcd_ws_pool_size",
			"Sweep workspaces held by the shared engine arena "+
				"(free + checked out), sampled at scrape time."),
		wsInUse: reg.NewGauge("bcd_ws_in_use",
			"Sweep workspaces currently checked out of the shared engine "+
				"arena, sampled at scrape time."),
		overload: reg.NewCounter("bcd_overload_total",
			"Requests shed by admission control (answered 429), by queue: "+
				"build (load jobs) or mutation (per-graph edge updates).",
			"op"),
		batches: reg.NewCounter("bcd_mutation_batches_total",
			"Coalesced mutation batches applied — one WAL fsync and one "+
				"published epoch each."),
		batchOps: reg.NewCounter("bcd_mutation_batch_ops_total",
			"Edge mutations carried inside coalesced batches; the ratio to "+
				"bcd_mutation_batches_total is the burst amortization factor."),
		topk: reg.NewCounter("bcd_topk_cache_total",
			"Exact top-K queries, by result: hit (ranking reused from the "+
				"epoch-keyed cache) or miss (ranked fresh).",
			"result"),
		durability: reg.NewCounter("bcd_durability_total",
			"WAL/snapshot events: append (batch fsynced), snapshot "+
				"(compaction written), recover (graph rebuilt from disk), "+
				"error.",
			"event"),
	}
	// Pre-register the low-cardinality series so scrapers see zeros instead
	// of absent series before the first event.
	m.incremental.With("local")
	m.incremental.With("rebuild")
	m.loads.With("ok")
	m.loads.With("error")
	m.loads.With("canceled")
	m.graphs.With()
	m.wsPoolSize.With()
	m.wsInUse.With()
	m.overload.With("build")
	m.overload.With("mutation")
	m.batches.With()
	m.batchOps.With()
	m.topk.With("hit")
	m.topk.With("miss")
	m.durability.With("append")
	m.durability.With("snapshot")
	m.durability.With("recover")
	m.durability.With("error")
	return m
}

// SampleWorkspacePool refreshes the sweep-arena gauges from the core pool's
// counters. The /metrics handler calls it per scrape — the gauges are
// point-in-time samples, not event-driven.
func (m *Metrics) SampleWorkspacePool() {
	size, inUse := core.SweepPoolStats()
	m.wsPoolSize.With().Set(int64(size))
	m.wsInUse.With().Set(int64(inUse))
}

// Hook wires the metrics into a registry's lifecycle callbacks.
func (m *Metrics) Hook(r *Registry) {
	r.onLoadDone = func(status string) { m.loads.With(status).Inc() }
	r.onMutate = func(result string) { m.incremental.With(result).Inc() }
	r.onCount = func(n int) { m.graphs.With().Set(int64(n)) }
	r.onApprox = func(name string, pivots int, errEstimate float64) {
		m.approxPivots.With(name).Add(pivots)
		m.approxError.With(name).Set(errEstimate)
	}
	r.onOverload = func(op string) { m.overload.With(op).Inc() }
	r.onBatch = func(ops int) {
		m.batches.With().Inc()
		m.batchOps.With().Add(ops)
	}
	r.onTopK = func(hit bool) {
		if hit {
			m.topk.With("hit").Inc()
		} else {
			m.topk.With("miss").Inc()
		}
	}
	r.onDurability = func(event string) { m.durability.With(event).Inc() }
}

// ObserveRequest records one served request.
func (m *Metrics) ObserveRequest(route, method string, code int, took time.Duration) {
	m.requests.With(route, method, strconv.Itoa(code)).Inc()
	m.latency.With(route).Observe(took.Seconds())
}

// WriteTo renders the exposition text.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) { return m.reg.WriteTo(w) }
