package server

import (
	"io"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server/promtext"
)

// Metrics bundles the daemon's Prometheus families. Label cardinality is
// bounded by construction: routes are mux patterns, never raw paths.
type Metrics struct {
	reg *promtext.Registry

	requests     *promtext.CounterVec    // route, method, code
	latency      *promtext.HistogramVec  // route
	graphs       *promtext.GaugeVec      // (none)
	incremental  *promtext.CounterVec    // result = local | rebuild
	loads        *promtext.CounterVec    // status = ok | error | canceled
	approxPivots *promtext.CounterVec    // graph
	approxError  *promtext.FloatGaugeVec // graph
	wsPoolSize   *promtext.GaugeVec      // (none)
	wsInUse      *promtext.GaugeVec      // (none)
}

// NewMetrics builds the metric families.
func NewMetrics() *Metrics {
	reg := promtext.NewRegistry()
	m := &Metrics{
		reg: reg,
		requests: reg.NewCounter("bcd_requests_total",
			"HTTP requests served, by route pattern, method and status code.",
			"route", "method", "code"),
		latency: reg.NewHistogram("bcd_request_duration_seconds",
			"HTTP request latency in seconds, by route pattern.",
			metrics.DurationBuckets(), "route"),
		graphs: reg.NewGauge("bcd_graphs_loaded",
			"Graphs currently in the ready state."),
		incremental: reg.NewCounter("bcd_incremental_updates_total",
			"Edge mutations absorbed, by result: local (intra-sub-graph "+
				"incremental update) or rebuild (full re-decomposition).",
			"result"),
		loads: reg.NewCounter("bcd_load_jobs_total",
			"Graph build jobs finished, by status.", "status"),
		approxPivots: reg.NewCounter("bcd_approx_pivots_total",
			"Pivot sweeps run by the approximate-BC estimator, by graph "+
				"(foreground query refinement plus background batches).",
			"graph"),
		approxError: reg.NewFloatGauge("bcd_approx_error_estimate",
			"Latest bootstrap CI half-width of the approximate-BC estimate "+
				"on the normalized scale, by graph (0 once exact).",
			"graph"),
		wsPoolSize: reg.NewGauge("bcd_ws_pool_size",
			"Sweep workspaces held by the shared engine arena "+
				"(free + checked out), sampled at scrape time."),
		wsInUse: reg.NewGauge("bcd_ws_in_use",
			"Sweep workspaces currently checked out of the shared engine "+
				"arena, sampled at scrape time."),
	}
	// Pre-register the low-cardinality series so scrapers see zeros instead
	// of absent series before the first event.
	m.incremental.With("local")
	m.incremental.With("rebuild")
	m.loads.With("ok")
	m.loads.With("error")
	m.loads.With("canceled")
	m.graphs.With()
	m.wsPoolSize.With()
	m.wsInUse.With()
	return m
}

// SampleWorkspacePool refreshes the sweep-arena gauges from the core pool's
// counters. The /metrics handler calls it per scrape — the gauges are
// point-in-time samples, not event-driven.
func (m *Metrics) SampleWorkspacePool() {
	size, inUse := core.SweepPoolStats()
	m.wsPoolSize.With().Set(int64(size))
	m.wsInUse.With().Set(int64(inUse))
}

// Hook wires the metrics into a registry's lifecycle callbacks.
func (m *Metrics) Hook(r *Registry) {
	r.onLoadDone = func(status string) { m.loads.With(status).Inc() }
	r.onMutate = func(result string) { m.incremental.With(result).Inc() }
	r.onCount = func(n int) { m.graphs.With().Set(int64(n)) }
	r.onApprox = func(name string, pivots int, errEstimate float64) {
		m.approxPivots.With(name).Add(pivots)
		m.approxError.With(name).Set(errEstimate)
	}
}

// ObserveRequest records one served request.
func (m *Metrics) ObserveRequest(route, method string, code int, took time.Duration) {
	m.requests.With(route, method, strconv.Itoa(code)).Inc()
	m.latency.With(route).Observe(took.Seconds())
}

// WriteTo renders the exposition text.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) { return m.reg.WriteTo(w) }
