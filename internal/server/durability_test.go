package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// lifecycleSpec is the standard durable-test load; bigSnapshotEvery keeps
// the build-time snapshot in place so recovery genuinely replays the WAL.
const bigSnapshotEvery = 1 << 20

func durableRegistry(t *testing.T, dir string) *Registry {
	t.Helper()
	return NewRegistry(Config{Workers: 2, DataDir: dir, SnapshotEvery: bigSnapshotEvery})
}

func loadLifecycle(t *testing.T, r *Registry, name string) *Entry {
	t.Helper()
	e, err := r.Load(LoadSpec{Name: name, N: lifecycleN, Edges: lifecycleEdges, Threshold: lifecycleThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if info := waitState(t, e); info.State != StateReady {
		t.Fatalf("load %q: state %s (%s)", name, info.State, info.Error)
	}
	return e
}

// TestKillAndRecover is the crash-recovery proof: mutate a durable graph,
// abandon the registry WITHOUT Close (the kill -9 analogue — acknowledged
// mutations are already fsynced to the WAL, nothing else is flushed), then
// recover from disk in a fresh registry. The recovered scores must be
// bit-identical to a fresh computation of the mutated graph, and the
// recovered entry must show zero engine-replayed mutations: recovery is one
// decomposition of snapshot+WAL, not a re-run of history.
func TestKillAndRecover(t *testing.T) {
	dir := t.TempDir()
	r1 := durableRegistry(t, dir)
	e1 := loadLifecycle(t, r1, "kill")

	// A burst touching both mutation paths: local chord, structural
	// cross-component insert, local leaf removal.
	muts := []struct {
		add  bool
		u, v int32
	}{
		{true, 1, 3},
		{true, 9, 4},
		{false, 0, 7},
	}
	for _, m := range muts {
		res, err := r1.Mutate(e1, m.add, m.u, m.v)
		if err != nil {
			t.Fatalf("mutate %+v: %v", m, err)
		}
		if !res.Applied {
			t.Fatalf("mutate %+v acknowledged without Applied", m)
		}
	}
	// Every Mutate above returned only after its WAL append fsynced, so the
	// full burst is durable. Abandon r1 here — no Close, no final snapshot.

	// The WAL (not the snapshot) must carry the burst, or this test would
	// pass without exercising replay.
	if fi, err := os.Stat(filepath.Join(dir, "kill", walFile)); err != nil || fi.Size() == 0 {
		t.Fatalf("wal.log missing or empty before recovery (err=%v)", err)
	}

	r2 := durableRegistry(t, dir)
	defer r2.Close()
	names, err := r2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "kill" {
		t.Fatalf("recovered %v, want [kill]", names)
	}
	e2 := r2.Get("kill")
	if e2 == nil {
		t.Fatal("recovered entry not registered")
	}
	info := waitState(t, e2)
	if info.State != StateReady {
		t.Fatalf("recovered state %s (%s)", info.State, info.Error)
	}
	if info.Threshold != lifecycleThreshold {
		t.Fatalf("recovered threshold %d, want %d (meta.json lost it)", info.Threshold, lifecycleThreshold)
	}
	// One decomposition of the final state — not a replay of the mutation
	// history through the engine.
	if info.LocalUpdates != 0 || info.FullRebuilds != 0 {
		t.Fatalf("recovery replayed mutations through the engine: %d local / %d rebuilds",
			info.LocalUpdates, info.FullRebuilds)
	}

	got, err := e2.BC()
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "recovered scores",
		got, lifecycleGraph([][2]int32{{1, 3}, {9, 4}}, [][2]int32{{0, 7}}))
}

// TestRecoverTornWALTail: garbage appended to the WAL (a torn write from the
// crash) must not poison recovery — replay stops at the last intact record.
func TestRecoverTornWALTail(t *testing.T) {
	dir := t.TempDir()
	r1 := durableRegistry(t, dir)
	e1 := loadLifecycle(t, r1, "torn")
	if _, err := r1.Mutate(e1, true, 1, 3); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, "torn", walFile)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{walOpInsert, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r2 := durableRegistry(t, dir)
	defer r2.Close()
	if _, err := r2.Recover(); err != nil {
		t.Fatal(err)
	}
	e2 := r2.Get("torn")
	info := waitState(t, e2)
	if info.State != StateReady {
		t.Fatalf("recovered state %s (%s)", info.State, info.Error)
	}
	got, err := e2.BC()
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "recovered scores after torn tail",
		got, lifecycleGraph([][2]int32{{1, 3}}, nil))
}

// TestCleanCloseCompactsWAL: a graceful Close writes a final snapshot and
// truncates the WAL, so the next start replays nothing.
func TestCleanCloseCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	r1 := durableRegistry(t, dir)
	e1 := loadLifecycle(t, r1, "clean")
	if _, err := r1.Mutate(e1, true, 1, 3); err != nil {
		t.Fatal(err)
	}
	r1.Close()

	if fi, err := os.Stat(filepath.Join(dir, "clean", walFile)); err != nil || fi.Size() != 0 {
		t.Fatalf("wal.log not truncated by clean shutdown (size=%v err=%v)", fi, err)
	}
	r2 := durableRegistry(t, dir)
	defer r2.Close()
	if _, err := r2.Recover(); err != nil {
		t.Fatal(err)
	}
	e2 := r2.Get("clean")
	info := waitState(t, e2)
	if info.State != StateReady {
		t.Fatalf("recovered state %s (%s)", info.State, info.Error)
	}
	got, err := e2.BC()
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "recovered scores after clean close",
		got, lifecycleGraph([][2]int32{{1, 3}}, nil))
}

// TestSnapshotCompaction: once the WAL passes SnapshotEvery records the
// worker rewrites the snapshot and truncates the log, keeping recovery cost
// bounded.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry(Config{Workers: 1, DataDir: dir, SnapshotEvery: 2, MutationBatch: 1})
	defer r.Close()
	e := loadLifecycle(t, r, "compact")
	for i, m := range []struct {
		add  bool
		u, v int32
	}{{true, 1, 3}, {false, 1, 3}, {true, 1, 3}, {false, 1, 3}} {
		if _, err := r.Mutate(e, m.add, m.u, m.v); err != nil {
			t.Fatalf("mutate %d: %v", i, err)
		}
	}
	// 4 records at SnapshotEvery=2: at least one compaction must run,
	// leaving fewer than 2 records in the log. Mutations are acknowledged
	// BEFORE the worker compacts (acks must not wait on a snapshot write),
	// so poll rather than stat once.
	deadline := time.Now().Add(10 * time.Second)
	for {
		fi, err := os.Stat(filepath.Join(dir, "compact", walFile))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() < 2*walRecordSize {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("wal.log still holds %d bytes (>= %d) 10s after the last ack: compaction never ran",
				fi.Size(), 2*walRecordSize)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestUnloadRemovesDurableDir: unload deletes the graph's durable directory,
// so it does not resurrect on the next Recover.
func TestUnloadRemovesDurableDir(t *testing.T) {
	dir := t.TempDir()
	r := durableRegistry(t, dir)
	defer r.Close()
	loadLifecycle(t, r, "gone")
	gdir := filepath.Join(dir, "gone")
	if _, err := os.Stat(gdir); err != nil {
		t.Fatalf("durable dir missing before unload: %v", err)
	}
	if !r.Unload("gone") {
		t.Fatal("unload reported missing")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(gdir); os.IsNotExist(err) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("durable dir still present 10s after unload")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDecodeWALTornTail covers the frame-level corruption cases directly.
func TestDecodeWALTornTail(t *testing.T) {
	var buf []byte
	ops := []core.EdgeOp{{Add: true, U: 1, V: 2}, {Add: false, U: 3, V: 4}}
	for _, op := range ops {
		buf = appendWALRecord(buf, op)
	}

	got, truncated, err := decodeWAL(buf)
	if err != nil || truncated || len(got) != 2 || got[0] != ops[0] || got[1] != ops[1] {
		t.Fatalf("intact decode = %v truncated=%v err=%v", got, truncated, err)
	}

	// Short tail: a partial third record.
	short := append(append([]byte(nil), buf...), walOpInsert, 9, 9)
	if got, truncated, _ := decodeWAL(short); !truncated || len(got) != 2 {
		t.Fatalf("short-tail decode = %d ops truncated=%v, want 2/true", len(got), truncated)
	}

	// Bit flip inside the second record: CRC must stop replay after the
	// first.
	flipped := append([]byte(nil), buf...)
	flipped[walRecordSize+3] ^= 0xff
	if got, truncated, _ := decodeWAL(flipped); !truncated || len(got) != 1 {
		t.Fatalf("bit-flip decode = %d ops truncated=%v, want 1/true", len(got), truncated)
	}

	// Unknown op byte.
	bad := append([]byte(nil), buf...)
	bad[walRecordSize] = 0x7f
	if got, truncated, _ := decodeWAL(bad); !truncated || len(got) != 1 {
		t.Fatalf("bad-op decode = %d ops truncated=%v, want 1/true", len(got), truncated)
	}
}

// TestMutationBurstCoalesces: N concurrent mutations while the worker is
// held at the gate must land in far fewer than N epoch publishes.
func TestMutationBurstCoalesces(t *testing.T) {
	r := NewRegistry(Config{Workers: 1, MutationQueueDepth: 64, MutationBatch: 64})
	defer r.Close()
	gate := make(chan struct{})
	var once sync.Once
	r.beforeMutate = func() {
		// Hold only the first batch: everything sent meanwhile queues up and
		// is drained into it.
		once.Do(func() { <-gate })
	}

	// A 30-vertex path: chords {i, i+2} are all absent and all valid.
	const n = 30
	edges := make([][2]int32, 0, n-1)
	for i := int32(0); i < n-1; i++ {
		edges = append(edges, [2]int32{i, i + 1})
	}
	e, err := r.Load(LoadSpec{Name: "burst", N: n, Edges: edges, Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if info := waitState(t, e); info.State != StateReady {
		t.Fatalf("state %s (%s)", info.State, info.Error)
	}
	seq0 := e.Info().Epoch
	edges0 := e.Info().Edges

	const burst = 20
	var wg sync.WaitGroup
	results := make([]MutationResult, burst)
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Mutate(e, true, int32(i), int32(i+2))
		}(i)
	}
	// Let the burst queue up behind the gated first batch, then release.
	deadline := time.Now().Add(10 * time.Second)
	for int(e.pending.Load()) < burst {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d mutations queued after 10s", e.pending.Load(), burst)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	maxBatched := 0
	for i := 0; i < burst; i++ {
		if errs[i] != nil {
			t.Fatalf("mutation %d: %v", i, errs[i])
		}
		if !results[i].Applied {
			t.Fatalf("mutation %d not applied", i)
		}
		if results[i].Batched > maxBatched {
			maxBatched = results[i].Batched
		}
	}
	info := e.Info()
	if info.Edges != edges0+burst {
		t.Fatalf("edges = %d, want %d", info.Edges, edges0+burst)
	}
	epochs := info.Epoch - seq0
	if epochs == 0 || epochs > 2 {
		t.Fatalf("burst of %d mutations published %d epochs, want 1-2 (coalesced)", burst, epochs)
	}
	if maxBatched < burst/2 {
		t.Fatalf("largest batch carried %d ops, want >= %d", maxBatched, burst/2)
	}
}

// TestOverloadAnswers429 drives the admission-control path over HTTP: with
// the worker held and the queue full, mutations get 429 + Retry-After (never
// 400/500) while reads keep being served from the epoch snapshot.
func TestOverloadAnswers429(t *testing.T) {
	reg := NewRegistry(Config{
		Workers: 1, MutationQueueDepth: 1, MutationBatch: 1,
		RetryAfter: 3 * time.Second,
	})
	gate := make(chan struct{})
	held := make(chan struct{}, 16)
	var once sync.Once
	reg.beforeMutate = func() {
		once.Do(func() {
			held <- struct{}{}
			<-gate
		})
	}
	ts := httptest.NewServer(New(reg, nil))
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	base := ts.URL
	loadAndWait(t, base, LoadSpec{
		Name: "ovl", N: lifecycleN, Edges: lifecycleEdges, Threshold: lifecycleThreshold,
	})

	// First mutation occupies the worker (held at the gate)...
	type mutReply struct {
		code int
		body MutationResult
	}
	replies := make(chan mutReply, 2)
	sendMut := func(from, to int32) {
		var res MutationResult
		code := do(t, "POST", base+"/v1/graphs/ovl/edges", edgeRequest{From: from, To: to}, &res)
		replies <- mutReply{code, res}
	}
	go sendMut(1, 3)
	<-held
	// ...the second fills the depth-1 queue...
	go sendMut(9, 4)
	deadline := time.Now().Add(10 * time.Second)
	e := reg.Get("ovl")
	for e.pending.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second mutation never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// ...and the third must be shed with 429 + Retry-After, not 400/500.
	req, _ := http.NewRequest("POST", base+"/v1/graphs/ovl/edges?from=9&to=3", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body errorBody
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded mutation got %d (%s), want 429", resp.StatusCode, body.Error)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	if !strings.Contains(body.Error, "queue full") {
		t.Fatalf("429 body %q does not explain the queue", body.Error)
	}

	// Reads bypass the mutation queue entirely: cached top-K stays serviced
	// while the worker is wedged.
	var top bcResponse
	if code := do(t, "GET", base+"/v1/graphs/ovl/bc?top=3", nil, &top); code != http.StatusOK {
		t.Fatalf("read during overload got %d, want 200", code)
	}
	if len(top.Top) != 3 {
		t.Fatalf("read during overload returned %d entries", len(top.Top))
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if rep := <-replies; rep.code != http.StatusOK || !rep.body.Applied {
			t.Fatalf("queued mutation finished %d (applied=%v), want 200/applied", rep.code, rep.body.Applied)
		}
	}
}

// TestMutateCanceledClient: a mutation whose client is already gone is
// answered 499 with an explicit applied=false, and nothing is written.
func TestMutateCanceledClient(t *testing.T) {
	reg := NewRegistry(Config{Workers: 2})
	defer reg.Close()
	srv := New(reg, nil)
	e, err := reg.Load(LoadSpec{Name: "cancel", N: lifecycleN, Edges: lifecycleEdges, Threshold: lifecycleThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if info := waitState(t, e); info.State != StateReady {
		t.Fatalf("state %s (%s)", info.State, info.Error)
	}
	edgesBefore := e.Info().Edges

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/graphs/cancel/edges?from=1&to=3", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("canceled mutation got %d, want %d", w.Code, statusClientClosedRequest)
	}
	var body canceledBody
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad 499 body %q: %v", w.Body.Bytes(), err)
	}
	if body.Applied {
		t.Fatal("499 response claims the mutation was applied")
	}
	if after := e.Info().Edges; after != edgesBefore {
		t.Fatalf("canceled mutation changed the graph (%d -> %d edges)", edgesBefore, after)
	}
}

// TestTopKCoalescing: identical top-K queries on one epoch share a ranking;
// a mutation invalidates it by bumping the epoch seq.
func TestTopKCoalescing(t *testing.T) {
	r := NewRegistry(Config{Workers: 2})
	defer r.Close()
	e, err := r.Load(LoadSpec{Name: "co", N: lifecycleN, Edges: lifecycleEdges, Threshold: lifecycleThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if info := waitState(t, e); info.State != StateReady {
		t.Fatalf("state %s (%s)", info.State, info.Error)
	}

	first, n1, hit1, err := e.TopKCoalesced(5)
	if err != nil || hit1 {
		t.Fatalf("first query: hit=%v err=%v, want miss", hit1, err)
	}
	second, n2, hit2, err := e.TopKCoalesced(5)
	if err != nil || !hit2 {
		t.Fatalf("second query: hit=%v err=%v, want hit", hit2, err)
	}
	if n1 != n2 || len(first) != len(second) {
		t.Fatalf("coalesced results diverge: n %d/%d len %d/%d", n1, n2, len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("coalesced result differs at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
	// A different k is its own cache line.
	if _, _, hit, _ := e.TopKCoalesced(3); hit {
		t.Fatal("distinct k reported a cache hit")
	}
	if _, _, hit, _ := e.TopKCoalesced(3); !hit {
		t.Fatal("repeated k missed the cache")
	}

	// Mutation publishes a new epoch: the cache must invalidate.
	if _, err := r.Mutate(e, true, 1, 3); err != nil {
		t.Fatal(err)
	}
	post, _, hit, err := e.TopKCoalesced(5)
	if err != nil || hit {
		t.Fatalf("post-mutation query: hit=%v err=%v, want miss", hit, err)
	}
	if len(post) != 5 {
		t.Fatalf("post-mutation top-5 has %d entries", len(post))
	}
}
