package server

import (
	"math"
	"testing"
)

// TestLoadEngineBitMatchAndEcho: an entry loaded with the msbfs engine must
// serve scores bit-identical to a scalar entry of the same graph — the engine
// is a performance knob, never an accuracy one — and Info must echo the
// engine so clients can see what they got. The 200-vertex ER graph keeps at
// least one sub-graph above the kernel's break-even gates, so the batched
// path actually runs.
func TestLoadEngineBitMatchAndEcho(t *testing.T) {
	r := NewRegistry(Config{Workers: 2})
	defer r.Close()

	scalarSpec, _ := erSpec("sc")
	msbfsSpec, _ := erSpec("ms")
	msbfsSpec.Engine = "msbfs"

	es, err := r.Load(scalarSpec)
	if err != nil {
		t.Fatal(err)
	}
	em, err := r.Load(msbfsSpec)
	if err != nil {
		t.Fatal(err)
	}
	if info := waitState(t, es); info.State != StateReady || info.Engine != "scalar" {
		t.Fatalf("scalar entry: state %s engine %q (%s)", info.State, info.Engine, info.Error)
	}
	if info := waitState(t, em); info.State != StateReady || info.Engine != "msbfs" {
		t.Fatalf("msbfs entry: state %s engine %q (%s)", info.State, info.Engine, info.Error)
	}

	want, err := es.BC()
	if err != nil {
		t.Fatal(err)
	}
	got, err := em.BC()
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Float64bits(want[v]) != math.Float64bits(got[v]) {
			t.Fatalf("vertex %d: scalar %v, msbfs %v (bit mismatch)", v, want[v], got[v])
		}
	}
}

// TestMutateEngineBitMatch: mutations absorbed under the msbfs engine publish
// the same epochs as under scalar — the incremental recompute path routes
// through the batched kernel without changing a bit.
func TestMutateEngineBitMatch(t *testing.T) {
	r := NewRegistry(Config{Workers: 2})
	defer r.Close()

	load := func(name, engine string) *Entry {
		e, err := r.Load(LoadSpec{Name: name, N: lifecycleN, Edges: lifecycleEdges,
			Threshold: lifecycleThreshold, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if info := waitState(t, e); info.State != StateReady {
			t.Fatalf("load %q: state %s (%s)", name, info.State, info.Error)
		}
		return e
	}
	es := load("sc", "")
	em := load("ms", "msbfs")

	muts := []struct {
		add  bool
		u, v int32
	}{
		{true, 1, 3},  // local chord
		{true, 9, 4},  // structural cross-component insert
		{false, 0, 7}, // leaf removal
	}
	for _, m := range muts {
		for _, e := range []*Entry{es, em} {
			if _, err := r.Mutate(e, m.add, m.u, m.v); err != nil {
				t.Fatalf("mutate %+v on %q: %v", m, e.Name(), err)
			}
		}
	}
	want, err := es.BC()
	if err != nil {
		t.Fatal(err)
	}
	got, err := em.BC()
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Float64bits(want[v]) != math.Float64bits(got[v]) {
			t.Fatalf("post-mutation vertex %d: scalar %v, msbfs %v", v, want[v], got[v])
		}
	}
}

// TestLoadEngineValidation: an unknown engine name is rejected at Load time,
// before any build job is enqueued.
func TestLoadEngineValidation(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()
	spec := triangleSpec("bad")
	spec.Engine = "simd"
	if _, err := r.Load(spec); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if r.Get("bad") != nil {
		t.Fatal("rejected load left an entry registered")
	}
}

// TestRecoverKeepsEngine: the engine choice survives durable recovery via
// the meta.json sidecar, like the threshold does.
func TestRecoverKeepsEngine(t *testing.T) {
	dir := t.TempDir()
	r1 := durableRegistry(t, dir)
	e, err := r1.Load(LoadSpec{Name: "eng", N: lifecycleN, Edges: lifecycleEdges,
		Threshold: lifecycleThreshold, Engine: "msbfs"})
	if err != nil {
		t.Fatal(err)
	}
	if info := waitState(t, e); info.State != StateReady {
		t.Fatalf("load: state %s (%s)", info.State, info.Error)
	}
	r1.Close()

	r2 := durableRegistry(t, dir)
	defer r2.Close()
	names, err := r2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "eng" {
		t.Fatalf("recovered %v, want [eng]", names)
	}
	e2 := r2.Get("eng")
	info := waitState(t, e2)
	if info.State != StateReady {
		t.Fatalf("recovered state %s (%s)", info.State, info.Error)
	}
	if info.Engine != "msbfs" {
		t.Fatalf("recovered engine %q, want msbfs (meta.json lost it)", info.Engine)
	}
}
