package server

import (
	"testing"
)

// The bc?top=K serving path — epoch score view plus pooled top-K ranking —
// must not allocate once the scratch pool is warm. (JSON encoding sits
// outside this gate; the handler's own data path is what the workspace
// arena pins to zero.)
func TestTopKServingWarmAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()
	e, err := r.Load(triangleSpec("alloc"))
	if err != nil {
		t.Fatal(err)
	}
	if info := waitState(t, e); info.State != StateReady {
		t.Fatalf("state = %s (%s)", info.State, info.Error)
	}

	serve := func() {
		scores, err := e.BCView()
		if err != nil {
			t.Fatal(err)
		}
		scr := topKScratch.Get().(*rankScratch)
		if top := scr.topK(scores, 2); len(top) != 2 {
			t.Fatalf("topK returned %d entries", len(top))
		}
		topKScratch.Put(scr)
	}
	serve() // warm the pooled scratch
	if allocs := testing.AllocsPerRun(100, serve); allocs != 0 {
		t.Fatalf("warm top-K serving allocates %.1f/op, want 0", allocs)
	}
}

// The coalesced top-K hit path — the lane overloaded readers live on — must
// also be allocation-free once the epoch's ranking is cached.
func TestTopKCoalescedHitAllocs(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()
	e, err := r.Load(triangleSpec("coalloc"))
	if err != nil {
		t.Fatal(err)
	}
	if info := waitState(t, e); info.State != StateReady {
		t.Fatalf("state = %s (%s)", info.State, info.Error)
	}
	if _, _, hit, err := e.TopKCoalesced(2); err != nil || hit {
		t.Fatalf("priming query: hit=%v err=%v", hit, err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, hit, err := e.TopKCoalesced(2); err != nil || !hit {
			t.Fatalf("hit=%v err=%v, want cached hit", hit, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("coalesced hit path allocates %.1f/op, want 0", allocs)
	}
}
