package server

// Durability: per-graph write-ahead log + binary snapshots.
//
// Every served graph with durability enabled (Config.DataDir) owns one
// directory:
//
//	<DataDir>/<name>/
//	    meta.json     — load parameters (threshold, directedness), schema v1
//	    snapshot.bin  — graphio binary CSR of the graph at snapshot time
//	    wal.log       — mutations appended (and fsynced) since the snapshot
//
// The mutation worker appends a batch's ops to the WAL and fsyncs BEFORE
// applying them to the engine, so any acknowledged mutation is durable. A
// crash can leave a torn record at the WAL tail; the framing CRC detects it
// and replay stops there — by the write-ahead ordering a torn record was
// never acknowledged, so dropping it is correct.
//
// Recovery (Registry.Recover) reads the snapshot, replays the WAL over its
// edge list in memory, and hands the reconstructed graph to the normal
// build pipeline: the daemon pays ONE decomposition of the recovered state
// instead of re-materializing the original source and re-absorbing the
// whole mutation history. Replay is idempotent — records already compacted
// into the snapshot (a crash can land between snapshot rename and WAL
// truncate) and records that failed engine validation are skipped.
//
// Snapshots compact the WAL: after Config.SnapshotEvery records the worker
// rewrites snapshot.bin (write-temp + rename) and truncates the log, so
// recovery cost is bounded by one snapshot load plus a short tail.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graphio"
)

const (
	metaFile     = "meta.json"
	snapshotFile = "snapshot.bin"
	walFile      = "wal.log"

	walOpInsert byte = 0x01
	walOpRemove byte = 0x02

	// walRecordSize frames every record: op byte, two int32 endpoints, and a
	// CRC32 (IEEE) of the preceding 9 bytes.
	walRecordSize = 1 + 4 + 4 + 4
)

// graphMeta is the durable load-parameter sidecar. It carries what the
// snapshot's graph bytes cannot: the decomposition threshold and root-sweep
// engine the entry was loaded with.
type graphMeta struct {
	Schema    int       `json:"schema"`
	Name      string    `json:"name"`
	Threshold int       `json:"threshold"`
	Directed  bool      `json:"directed"`
	SavedAt   time.Time `json:"saved_at"`
	// Engine is core.RootEngine.String(); absent in pre-engine sidecars,
	// which core.ParseRootEngine reads as scalar.
	Engine string `json:"engine,omitempty"`
}

// walWriter owns an entry's open WAL file. It is confined to the entry's
// mutation worker goroutine — no locking.
type walWriter struct {
	f       *os.File
	path    string
	records int // records currently in the file
	buf     []byte
}

// openWAL opens (creating if needed) the WAL at path and counts the intact
// records already present, so the snapshot cadence survives restarts.
func openWAL(path string) (*walWriter, error) {
	ops, _, err := replayWALFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f, path: path, records: len(ops)}, nil
}

// Append encodes ops as framed records, writes them in one syscall and
// fsyncs. Only after Append returns may the ops be applied or acknowledged.
func (w *walWriter) Append(ops []core.EdgeOp) error {
	w.buf = w.buf[:0]
	for _, op := range ops {
		w.buf = appendWALRecord(w.buf, op)
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("server: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("server: wal sync: %w", err)
	}
	w.records += len(ops)
	return nil
}

// Reset truncates the log after a successful snapshot compaction.
func (w *walWriter) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("server: wal truncate: %w", err)
	}
	w.records = 0
	return nil
}

// Close releases the file handle.
func (w *walWriter) Close() error { return w.f.Close() }

func appendWALRecord(buf []byte, op core.EdgeOp) []byte {
	start := len(buf)
	b := walOpRemove
	if op.Add {
		b = walOpInsert
	}
	buf = append(buf, b)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(op.U))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(op.V))
	crc := crc32.ChecksumIEEE(buf[start : start+9])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// replayWALFile reads the intact record prefix of the WAL at path. A torn or
// corrupt tail (short read, bad CRC, unknown op byte) terminates the replay
// at the last good record; truncated reports whether that happened.
func replayWALFile(path string) (ops []core.EdgeOp, truncated bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	return decodeWAL(data)
}

func decodeWAL(data []byte) (ops []core.EdgeOp, truncated bool, err error) {
	for off := 0; off < len(data); off += walRecordSize {
		if off+walRecordSize > len(data) {
			return ops, true, nil
		}
		rec := data[off : off+walRecordSize]
		if crc32.ChecksumIEEE(rec[:9]) != binary.LittleEndian.Uint32(rec[9:]) {
			return ops, true, nil
		}
		var add bool
		switch rec[0] {
		case walOpInsert:
			add = true
		case walOpRemove:
			add = false
		default:
			return ops, true, nil
		}
		ops = append(ops, core.EdgeOp{
			Add: add,
			U:   graph.V(int32(binary.LittleEndian.Uint32(rec[1:5]))),
			V:   graph.V(int32(binary.LittleEndian.Uint32(rec[5:9]))),
		})
	}
	return ops, false, nil
}

// writeMeta persists the load-parameter sidecar (write-temp + rename).
func writeMeta(dir string, meta graphMeta) error {
	meta.Schema = 1
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, metaFile), append(data, '\n'))
}

func readMeta(dir string) (graphMeta, error) {
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return graphMeta{}, err
	}
	var meta graphMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return graphMeta{}, fmt.Errorf("server: %s: %w", filepath.Join(dir, metaFile), err)
	}
	if meta.Schema != 1 {
		return graphMeta{}, fmt.Errorf("server: %s: schema %d, this build reads 1", dir, meta.Schema)
	}
	return meta, nil
}

// writeSnapshot persists g as the entry's snapshot (write-temp + rename, so
// a crash mid-write leaves the previous snapshot intact).
func writeSnapshot(dir string, g *graph.Graph) error {
	var buf bytes.Buffer
	if err := graphio.WriteBinary(&buf, g); err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, snapshotFile), buf.Bytes())
}

func readSnapshot(dir string) (*graph.Graph, error) {
	f, err := os.Open(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graphio.ReadBinary(f)
}

// atomicWrite writes data to path via a temp file, fsync and rename.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// recoveredState is one graph reconstructed from its durable directory.
type recoveredState struct {
	meta graphMeta
	g    *graph.Graph
}

// loadDurable rebuilds a graph's in-memory state from dir: snapshot +
// WAL-tail replay. Replay is idempotent against the snapshot (inapplicable
// records are skipped).
func loadDurable(dir string) (recoveredState, error) {
	meta, err := readMeta(dir)
	if err != nil {
		return recoveredState{}, err
	}
	g, err := readSnapshot(dir)
	if err != nil {
		return recoveredState{}, err
	}
	if g.Directed() != meta.Directed {
		return recoveredState{}, fmt.Errorf("server: %s: snapshot directedness disagrees with meta", dir)
	}
	ops, _, err := replayWALFile(filepath.Join(dir, walFile))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return recoveredState{}, err
	}
	if len(ops) > 0 {
		g = replayOps(g, ops)
	}
	return recoveredState{meta: meta, g: g}, nil
}

// replayOps applies WAL records to g's edge list and rebuilds the graph
// once at the final state. Inapplicable ops (duplicate insert, absent
// removal, out-of-range endpoint) are skipped: they are either records the
// engine rejected after logging, or records already compacted into the
// snapshot by a crash between snapshot rename and WAL truncate.
func replayOps(g *graph.Graph, ops []core.EdgeOp) *graph.Graph {
	n := g.NumVertices()
	directed := g.Directed()
	type arcKey struct{ u, v graph.V }
	norm := func(u, v graph.V) arcKey {
		if !directed && u > v {
			u, v = v, u
		}
		return arcKey{u, v}
	}
	edges := g.Edges()
	present := make(map[arcKey]bool, len(edges))
	for _, e := range edges {
		present[norm(e.From, e.To)] = true
	}
	for _, op := range ops {
		if op.U == op.V || op.U < 0 || int(op.U) >= n || op.V < 0 || int(op.V) >= n {
			continue
		}
		k := norm(op.U, op.V)
		if op.Add == present[k] {
			continue
		}
		present[k] = op.Add
		if op.Add {
			edges = append(edges, graph.Edge{From: op.U, To: op.V})
		} else {
			for i, e := range edges {
				if norm(e.From, e.To) == k {
					edges = append(edges[:i], edges[i+1:]...)
					break
				}
			}
		}
	}
	return graph.NewFromEdges(n, edges, directed)
}
