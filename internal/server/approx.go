package server

// Approximate-mode serving: GET /v1/graphs/{name}/bc?mode=approx is answered
// from a per-entry approx.Estimator cached next to the exact scores. The
// estimator is built lazily from the entry's decomposition, refined just far
// enough to satisfy each query (a pivot budget or an eps target), and kept
// warm: after answering, one extra batch is refined in the background so
// repeated queries converge toward exactness without blocking anyone.
// Mutations drop the estimator (registry.go) since both the scores and the
// decomposition it references may have changed.

import (
	"math"

	"repro/internal/approx"
)

// approxSeed fixes the serving estimator's sampling seed: responses are
// deterministic for a given load + mutation history, which keeps the
// httptest suite and operators' curls reproducible.
const approxSeed = 1

// ApproxInfo describes a served estimate.
type ApproxInfo struct {
	// Pivots is the total root sweeps behind the estimate, ExactRoots what
	// the exact engine would need.
	Pivots     int   `json:"pivots"`
	ExactRoots int64 `json:"exact_roots"`
	// ErrorEstimate is the bootstrap CI half-width on normalized BC; 0 when
	// Exact (non-finite values are clamped to 0 with Exact == false only
	// before any batches exist, which a served query never observes).
	ErrorEstimate float64 `json:"error_estimate"`
	Exact         bool    `json:"exact"`
}

// ApproxBC serves approximate scores for e, refining the cached estimator to
// the requested pivot budget (pivots > 0) or eps target (otherwise). The
// returned slice is private to the caller.
func (r *Registry) ApproxBC(e *Entry, pivots int, eps float64) ([]float64, ApproxInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	inc, err := e.readyLocked()
	if err != nil {
		return nil, ApproxInfo{}, err
	}
	if e.est == nil {
		est, err := approx.NewEstimator(inc.Decomposition(), approx.Options{Seed: approxSeed})
		if err != nil {
			return nil, ApproxInfo{}, err
		}
		e.est = est
	}
	before := e.est.Pivots()
	if pivots > 0 {
		e.est.EnsureBudget(pivots)
	} else {
		e.est.EnsureEps(eps)
	}
	info := ApproxInfo{
		Pivots:        e.est.Pivots(),
		ExactRoots:    e.est.ExactRoots(),
		ErrorEstimate: finiteOrZero(e.est.ErrorEstimate()),
		Exact:         e.est.Exact(),
	}
	r.notifyApprox(e.name, e.est.Pivots()-before, info.ErrorEstimate)
	scores := e.est.Estimate()
	if !info.Exact {
		r.refineInBackground(e)
	}
	return scores, info, nil
}

// refineInBackground runs one extra batch on the entry's estimator off the
// request path. At most one refinement goroutine per entry is in flight; it
// re-checks the estimator under the lock because a mutation or unload may
// have intervened.
func (r *Registry) refineInBackground(e *Entry) {
	if !e.refining.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer e.refining.Store(false)
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.est == nil || e.est.Exact() {
			return
		}
		before := e.est.Pivots()
		if e.est.Refine(approx.DefaultBatchSize) > 0 {
			r.notifyApprox(e.name, e.est.Pivots()-before, finiteOrZero(e.est.ErrorEstimate()))
		}
	}()
}

func (r *Registry) notifyApprox(name string, pivots int, errEstimate float64) {
	if r.onApprox != nil {
		r.onApprox(name, pivots, errEstimate)
	}
}

// finiteOrZero clamps the estimator's +Inf "no batches yet" sentinel for
// JSON (which cannot encode infinities).
func finiteOrZero(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}
