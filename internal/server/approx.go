package server

// Approximate-mode serving: GET /v1/graphs/{name}/bc?mode=approx is answered
// from a per-entry approx.Estimator cached next to the exact scores. The
// estimator is built lazily from an epoch snapshot's decomposition, refined
// just far enough to satisfy each query (a pivot budget or an eps target),
// and kept warm: after answering, one extra batch is refined in the
// background so repeated queries converge toward exactness without blocking
// anyone.
//
// Invalidation is lazy and epoch-keyed: the estimator remembers the epoch
// sequence number it sampled (Entry.estSeq). A mutation publishes a new
// epoch without touching estimator state at all; the next approx query
// compares the cached seq against the current snapshot's, releases the
// stale estimator's pooled sweeps back to the core arena, and rebuilds from
// the new epoch's decomposition — which is immutable, so sampling can
// proceed concurrently with further mutations.

import (
	"math"

	"repro/internal/approx"
	"repro/internal/core"
)

// approxSeed fixes the serving estimator's sampling seed: responses are
// deterministic for a given load + mutation history, which keeps the
// httptest suite and operators' curls reproducible.
const approxSeed = 1

// ApproxInfo describes a served estimate.
type ApproxInfo struct {
	// Pivots is the total root sweeps behind the estimate, ExactRoots what
	// the exact engine would need.
	Pivots     int   `json:"pivots"`
	ExactRoots int64 `json:"exact_roots"`
	// ErrorEstimate is the bootstrap CI half-width on normalized BC; 0 when
	// Exact (non-finite values are clamped to 0 with Exact == false only
	// before any batches exist, which a served query never observes).
	ErrorEstimate float64 `json:"error_estimate"`
	Exact         bool    `json:"exact"`
}

// estimatorFor returns the entry's cached estimator, rebuilding it when the
// cached one sampled an older epoch. Callers must hold e.estMu.
func (e *Entry) estimatorFor(snap core.Snapshot) (*approx.Estimator, error) {
	if e.est != nil && e.estSeq == snap.Seq {
		return e.est, nil
	}
	if e.est != nil {
		e.est.Release() // return the stale estimator's pooled sweeps
		e.est = nil
	}
	// The entry's engine routes pivot sweeps too (batching is bit-invisible
	// in the estimates, so this only changes refinement speed).
	est, err := approx.NewEstimator(snap.Decomposition, approx.Options{Seed: approxSeed, Engine: e.engine})
	if err != nil {
		return nil, err
	}
	e.est, e.estSeq = est, snap.Seq
	return est, nil
}

// dropEstimator releases the cached estimator's pooled workspaces (Unload).
func (e *Entry) dropEstimator() {
	e.estMu.Lock()
	defer e.estMu.Unlock()
	if e.est != nil {
		e.est.Release()
		e.est = nil
	}
}

// ApproxBC serves approximate scores for e, refining the cached estimator to
// the requested pivot budget (pivots > 0) or eps target (otherwise). The
// returned slice is private to the caller.
func (r *Registry) ApproxBC(e *Entry, pivots int, eps float64) ([]float64, ApproxInfo, error) {
	inc, err := e.ready()
	if err != nil {
		return nil, ApproxInfo{}, err
	}
	snap := inc.Snapshot()
	e.estMu.Lock()
	defer e.estMu.Unlock()
	est, err := e.estimatorFor(snap)
	if err != nil {
		return nil, ApproxInfo{}, err
	}
	before := est.Pivots()
	if pivots > 0 {
		est.EnsureBudget(pivots)
	} else {
		est.EnsureEps(eps)
	}
	info := ApproxInfo{
		Pivots:        est.Pivots(),
		ExactRoots:    est.ExactRoots(),
		ErrorEstimate: finiteOrZero(est.ErrorEstimate()),
		Exact:         est.Exact(),
	}
	r.notifyApprox(e.name, est.Pivots()-before, info.ErrorEstimate)
	scores := est.Estimate()
	if !info.Exact {
		r.refineInBackground(e)
	}
	return scores, info, nil
}

// refineInBackground runs one extra batch on the entry's estimator off the
// request path. At most one refinement goroutine per entry is in flight; it
// re-checks the estimator under estMu because an unload or an epoch change
// may have intervened (a stale estimator is left alone — the next query
// replaces it).
func (r *Registry) refineInBackground(e *Entry) {
	if !e.refining.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer e.refining.Store(false)
		e.estMu.Lock()
		defer e.estMu.Unlock()
		if e.est == nil || e.est.Exact() {
			return
		}
		before := e.est.Pivots()
		if e.est.Refine(approx.DefaultBatchSize) > 0 {
			r.notifyApprox(e.name, e.est.Pivots()-before, finiteOrZero(e.est.ErrorEstimate()))
		}
	}()
}

func (r *Registry) notifyApprox(name string, pivots int, errEstimate float64) {
	if r.onApprox != nil {
		r.onApprox(name, pivots, errEstimate)
	}
}

// finiteOrZero clamps the estimator's +Inf "no batches yet" sentinel for
// JSON (which cannot encode infinities).
func finiteOrZero(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}
