package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// lifecycleEdges is the lifecycle test graph: two 4-cycles sharing the
// articulation point 3, a leaf hanging off each side, a separate 9-10
// component, and the isolated vertex 11. Every shortest-path count σ in this
// graph (and in every mutation the tests apply) is a power of two, so all BC
// dependencies are dyadic rationals: floating-point arithmetic on them is
// EXACT, which is what lets the tests demand bit-identical scores between
// the incrementally maintained state and a fresh core.Compute, regardless of
// summation order or parallelism.
var lifecycleEdges = [][2]int32{
	{0, 1}, {1, 2}, {2, 3}, {3, 0}, // cycle A
	{3, 4}, {4, 5}, {5, 6}, {6, 3}, // cycle B, AP 3
	{0, 7}, {5, 8}, // leaves
	{9, 10}, // separate component
}

const lifecycleN = 12
const lifecycleThreshold = 2 // keep leaf blocks as their own sub-graphs

func lifecycleGraph(extra [][2]int32, removed [][2]int32) *graph.Graph {
	edges := make([]graph.Edge, 0, len(lifecycleEdges)+len(extra))
	skip := func(e [2]int32) bool {
		for _, d := range removed {
			if (d == e) || (d[0] == e[1] && d[1] == e[0]) {
				return true
			}
		}
		return false
	}
	for _, e := range lifecycleEdges {
		if !skip(e) {
			edges = append(edges, graph.Edge{From: e[0], To: e[1]})
		}
	}
	for _, e := range extra {
		edges = append(edges, graph.Edge{From: e[0], To: e[1]})
	}
	return graph.NewFromEdges(lifecycleN, edges, false)
}

func newTestServer(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry(Config{Workers: 2})
	ts := httptest.NewServer(New(reg, nil))
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return ts, reg
}

// do issues a request and decodes the JSON response into out (if non-nil),
// returning the status code.
func do(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// loadAndWait loads spec and polls the status endpoint until ready.
func loadAndWait(t *testing.T, base string, spec LoadSpec) {
	t.Helper()
	if code := do(t, "POST", base+"/v1/graphs", spec, nil); code != http.StatusAccepted {
		t.Fatalf("load returned %d, want 202", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var info EntryInfo
		do(t, "GET", base+"/v1/graphs/"+spec.Name, nil, &info)
		switch info.State {
		case StateReady:
			return
		case StateFailed:
			t.Fatalf("load of %q failed: %s", spec.Name, info.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("graph %q not ready after 30s", spec.Name)
}

// fetchScores reads the full score array.
func fetchScores(t *testing.T, base, name string) []float64 {
	t.Helper()
	var resp bcResponse
	if code := do(t, "GET", base+"/v1/graphs/"+name+"/bc?top=0", nil, &resp); code != http.StatusOK {
		t.Fatalf("bc?top=0 returned %d", code)
	}
	return resp.Scores
}

// assertBitIdentical compares served scores against a fresh core.Compute of
// the expected graph, bit for bit.
func assertBitIdentical(t *testing.T, label string, got []float64, g *graph.Graph) {
	t.Helper()
	want, err := core.Compute(g, core.Options{Threshold: lifecycleThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d scores, want %d", label, len(got), len(want))
	}
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("%s: bc[%d] = %v (bits %x), fresh compute %v (bits %x)",
				label, v, got[v], math.Float64bits(got[v]), want[v], math.Float64bits(want[v]))
		}
	}
}

// TestLifecycle drives the full serving lifecycle: load → query → mutate
// (local and rebuild paths) → query, checking after every step that the
// served scores are bit-identical to a fresh computation on the mutated
// graph.
func TestLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	base := ts.URL
	loadAndWait(t, base, LoadSpec{
		Name: "life", N: lifecycleN, Edges: lifecycleEdges, Threshold: lifecycleThreshold,
	})

	assertBitIdentical(t, "after load", fetchScores(t, base, "life"), lifecycleGraph(nil, nil))

	// Step 1: a chord inside cycle A — intra-sub-graph, must stay local.
	var mut MutationResult
	if code := do(t, "POST", base+"/v1/graphs/life/edges",
		edgeRequest{From: 1, To: 3}, &mut); code != http.StatusOK {
		t.Fatalf("insert returned %d", code)
	}
	if mut.Result != "local" {
		t.Fatalf("intra-block insert result = %q, want local", mut.Result)
	}
	assertBitIdentical(t, "after local insert",
		fetchScores(t, base, "life"), lifecycleGraph([][2]int32{{1, 3}}, nil))

	// Step 2: connect the separate 9-10 component — cross-sub-graph, must
	// force a rebuild.
	if code := do(t, "POST", base+"/v1/graphs/life/edges",
		edgeRequest{From: 9, To: 4}, &mut); code != http.StatusOK {
		t.Fatalf("insert returned %d", code)
	}
	if mut.Result != "rebuild" {
		t.Fatalf("cross-component insert result = %q, want rebuild", mut.Result)
	}
	assertBitIdentical(t, "after rebuild insert",
		fetchScores(t, base, "life"), lifecycleGraph([][2]int32{{1, 3}, {9, 4}}, nil))

	// Step 3: remove the 0-7 leaf edge — a block-splitting removal that must
	// stay local while other sub-graphs' α/β adjust.
	if code := do(t, "DELETE", base+"/v1/graphs/life/edges?from=0&to=7", nil, &mut); code != http.StatusOK {
		t.Fatalf("delete returned %d", code)
	}
	if mut.Result != "local" {
		t.Fatalf("leaf removal result = %q, want local", mut.Result)
	}
	assertBitIdentical(t, "after leaf removal",
		fetchScores(t, base, "life"),
		lifecycleGraph([][2]int32{{1, 3}, {9, 4}}, [][2]int32{{0, 7}}))

	// The info endpoint reports how mutations were absorbed.
	var info EntryInfo
	do(t, "GET", base+"/v1/graphs/life", nil, &info)
	if info.LocalUpdates != 2 || info.FullRebuilds != 1 {
		t.Fatalf("info = %+v, want 2 local / 1 rebuild", info)
	}

	// Per-vertex view: 3 is the articulation point joining the cycles; after
	// the mutations it still brokers cycle B (and now the 9-10 tail).
	var v3 VertexInfo
	if code := do(t, "GET", base+"/v1/graphs/life/vertices/3", nil, &v3); code != http.StatusOK {
		t.Fatalf("vertex returned %d", code)
	}
	if !v3.IsArticulation || v3.Rank != 1 {
		t.Fatalf("vertex 3 = %+v, want articulation at rank 1", v3)
	}
	if v3.InDegree != nil {
		t.Fatalf("undirected graph reported in-degree %d", *v3.InDegree)
	}

	// Top-K agrees with the full array.
	var top bcResponse
	do(t, "GET", base+"/v1/graphs/life/bc?top=3", nil, &top)
	scores := fetchScores(t, base, "life")
	if len(top.Top) != 3 || top.Top[0].Vertex != 3 ||
		top.Top[0].Score != scores[3] {
		t.Fatalf("top-3 = %+v, inconsistent with full scores", top.Top)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	base := ts.URL
	loadAndWait(t, base, LoadSpec{
		Name: "st", N: lifecycleN, Edges: lifecycleEdges, Threshold: lifecycleThreshold,
	})
	var census struct {
		Schema        int    `json:"schema"`
		Graph         string `json:"graph"`
		Verts         int    `json:"verts"`
		Decomposition struct {
			Threshold int `json:"threshold"`
			Subgraphs int `json:"subgraphs"`
			Roots     int `json:"roots"`
		} `json:"decomposition"`
		Redundancy struct {
			Method string  `json:"method"`
			Total  float64 `json:"total"`
		} `json:"redundancy"`
	}
	if code := do(t, "GET", base+"/v1/graphs/st/stats", nil, &census); code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	if census.Schema != 1 || census.Graph != "st" || census.Verts != lifecycleN {
		t.Fatalf("census header = %+v", census)
	}
	// Cycle A, cycle B (which absorbs the 5-8 leaf block — smaller than the
	// threshold, it merges into its father), the 0-7 leaf, and the 9-10
	// block: four sub-graphs (isolated 11 belongs to none).
	if census.Decomposition.Subgraphs != 4 {
		t.Fatalf("subgraphs = %d, want 4", census.Decomposition.Subgraphs)
	}
	if census.Decomposition.Threshold != lifecycleThreshold {
		t.Fatalf("threshold = %d, want %d", census.Decomposition.Threshold, lifecycleThreshold)
	}
	if census.Redundancy.Method != "exact" {
		t.Fatalf("redundancy method = %q, want exact for a tiny graph", census.Redundancy.Method)
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	base := ts.URL

	check := func(label string, got, want int) {
		t.Helper()
		if got != want {
			t.Fatalf("%s: status %d, want %d", label, got, want)
		}
	}
	check("unknown graph info", do(t, "GET", base+"/v1/graphs/nope", nil, nil), 404)
	check("unknown graph bc", do(t, "GET", base+"/v1/graphs/nope/bc", nil, nil), 404)
	check("unknown graph mutate", do(t, "POST", base+"/v1/graphs/nope/edges",
		edgeRequest{From: 0, To: 1}, nil), 404)
	check("unknown graph unload", do(t, "DELETE", base+"/v1/graphs/nope", nil, nil), 404)
	check("bad load body", do(t, "POST", base+"/v1/graphs",
		map[string]any{"name": "x", "bogus": true}, nil), 400)
	check("bad name", do(t, "POST", base+"/v1/graphs",
		LoadSpec{Name: "bad name!", Dataset: "email-enron"}, nil), 400)

	loadAndWait(t, base, LoadSpec{Name: "g", N: lifecycleN, Edges: lifecycleEdges})
	check("duplicate name", do(t, "POST", base+"/v1/graphs",
		LoadSpec{Name: "g", N: 3, Edges: [][2]int32{{0, 1}}}, nil), 409)
	check("bad top", do(t, "GET", base+"/v1/graphs/g/bc?top=-1", nil, nil), 400)
	check("bad vertex id", do(t, "GET", base+"/v1/graphs/g/vertices/xyz", nil, nil), 400)
	check("vertex out of range", do(t, "GET", base+"/v1/graphs/g/vertices/99", nil, nil), 404)
	check("self-loop", do(t, "POST", base+"/v1/graphs/g/edges",
		edgeRequest{From: 2, To: 2}, nil), 400)
	check("duplicate edge", do(t, "POST", base+"/v1/graphs/g/edges",
		edgeRequest{From: 0, To: 1}, nil), 400)
	check("absent edge removal", do(t, "DELETE", base+"/v1/graphs/g/edges?from=0&to=6", nil, nil), 400)
	check("bad edge args", do(t, "DELETE", base+"/v1/graphs/g/edges?from=a&to=b", nil, nil), 400)

	// Healthz is plain text.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

// TestConcurrentMutateQuery hammers one graph with concurrent mutations and
// queries; run under -race this is the serving subsystem's thread-safety
// proof. Each mutator toggles its own private edge an even number of times,
// so the final state must equal the base graph — bit for bit.
func TestConcurrentMutateQuery(t *testing.T) {
	ts, _ := newTestServer(t)
	base := ts.URL
	loadAndWait(t, base, LoadSpec{
		Name: "conc", N: lifecycleN, Edges: lifecycleEdges, Threshold: lifecycleThreshold,
	})

	const rounds = 10
	toggles := [][2]int32{
		{1, 3}, // intra-block chord (local path)
		{9, 4}, // cross-component (rebuild path)
		{9, 3}, // another cross-component edge
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for _, e := range toggles {
		wg.Add(1)
		go func(e [2]int32) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/graphs/conc/edges", base)
			for i := 0; i < rounds; i++ {
				for _, method := range []string{"POST", "DELETE"} {
					req, _ := http.NewRequest(method,
						fmt.Sprintf("%s?from=%d&to=%d", url, e[0], e[1]), nil)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						errs <- err.Error()
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						errs <- fmt.Sprintf("%s %v: status %d", method, e, resp.StatusCode)
						return
					}
				}
			}
		}(e)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{
				"/v1/graphs/conc/bc?top=5",
				"/v1/graphs/conc/vertices/3",
				"/v1/graphs/conc/stats",
				"/v1/graphs",
				"/metrics",
			}
			for i := 0; i < rounds*4; i++ {
				resp, err := http.Get(base + paths[i%len(paths)])
				if err != nil {
					errs <- err.Error()
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Sprintf("GET %s: status %d", paths[i%len(paths)], resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if t.Failed() {
		t.FailNow()
	}
	assertBitIdentical(t, "after concurrent toggles",
		fetchScores(t, base, "conc"), lifecycleGraph(nil, nil))
}

// promSample matches one exposition sample line. Label values are matched as
// quoted strings (they may legally contain "{" and "}", e.g. route patterns).
var promSample = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\})? (-?[0-9][0-9.e+-]*|\+Inf|NaN)$`)

// TestMetricsEndpoint drives traffic and then verifies /metrics parses as
// Prometheus text format and carries the promised series.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	base := ts.URL
	loadAndWait(t, base, LoadSpec{
		Name: "m", N: lifecycleN, Edges: lifecycleEdges, Threshold: lifecycleThreshold,
	})
	do(t, "GET", base+"/v1/graphs/m/bc?top=3", nil, nil)
	do(t, "GET", base+"/v1/graphs/nope", nil, nil) // a 404 to label a non-200 code
	var mut MutationResult
	do(t, "POST", base+"/v1/graphs/m/edges", edgeRequest{From: 1, To: 3}, &mut) // local
	do(t, "POST", base+"/v1/graphs/m/edges", edgeRequest{From: 9, To: 4}, &mut) // rebuild

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	// 1. Every line parses; histogram buckets are cumulative and agree with
	// their _count.
	types := map[string]string{}
	values := map[string]float64{}
	var order []string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		values[m[1]+m[2]] = v
		order = append(order, m[1]+m[2])
	}
	if len(order) == 0 {
		t.Fatal("no samples")
	}
	for name, typ := range types {
		if typ != "counter" && typ != "gauge" && typ != "histogram" {
			t.Fatalf("metric %s has unknown type %q", name, typ)
		}
	}
	// Cumulativeness: within each histogram series, bucket values must be
	// non-decreasing in declaration order and end equal to _count.
	var prev float64
	var prevSeries string
	for _, key := range order {
		if !strings.Contains(key, "_bucket{") {
			continue
		}
		series := key[:strings.Index(key, "le=\"")]
		if series != prevSeries {
			prev, prevSeries = 0, series
		}
		if values[key] < prev {
			t.Fatalf("bucket %s decreased (%v < %v)", key, values[key], prev)
		}
		prev = values[key]
	}

	// 2. The promised series exist with sane values.
	bcRoute := `route="GET /v1/graphs/{name}/bc"`
	if v := values[`bcd_requests_total{`+bcRoute+`,method="GET",code="200"}`]; v < 1 {
		t.Fatalf("bc request counter = %v, want >= 1\n%s", v, text)
	}
	if v := values[`bcd_requests_total{route="GET /v1/graphs/{name}",method="GET",code="404"}`]; v < 1 {
		t.Fatalf("404 request counter = %v, want >= 1\n%s", v, text)
	}
	if v := values[`bcd_request_duration_seconds_count{`+bcRoute+`}`]; v < 1 {
		t.Fatalf("bc latency count = %v, want >= 1\n%s", v, text)
	}
	if v := values[`bcd_request_duration_seconds_bucket{`+bcRoute+`,le="+Inf"}`]; v != values[`bcd_request_duration_seconds_count{`+bcRoute+`}`] {
		t.Fatalf("+Inf bucket != count\n%s", text)
	}
	if v := values[`bcd_incremental_updates_total{result="local"}`]; v != 1 {
		t.Fatalf("local counter = %v, want 1\n%s", v, text)
	}
	if v := values[`bcd_incremental_updates_total{result="rebuild"}`]; v != 1 {
		t.Fatalf("rebuild counter = %v, want 1\n%s", v, text)
	}
	if v := values[`bcd_graphs_loaded`]; v != 1 {
		t.Fatalf("graphs loaded = %v, want 1\n%s", v, text)
	}
	if v := values[`bcd_load_jobs_total{status="ok"}`]; v != 1 {
		t.Fatalf("load ok counter = %v, want 1\n%s", v, text)
	}
}

// TestDirectedServing exercises the directed path end to end (load, query,
// mutate) — in/out degrees and transpose handling differ from undirected.
func TestDirectedServing(t *testing.T) {
	ts, _ := newTestServer(t)
	base := ts.URL
	// A directed diamond with a tail: 0->1->3, 0->2->3, 3->4.
	edges := [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}}
	loadAndWait(t, base, LoadSpec{Name: "dir", Edges: edges, Directed: true, Threshold: 1})

	var v3 VertexInfo
	if code := do(t, "GET", base+"/v1/graphs/dir/vertices/3", nil, &v3); code != http.StatusOK {
		t.Fatalf("vertex returned %d", code)
	}
	if v3.InDegree == nil || *v3.InDegree != 2 || v3.OutDegree != 1 {
		t.Fatalf("vertex 3 = %+v, want in=2 out=1", v3)
	}
	var mut MutationResult
	if code := do(t, "POST", base+"/v1/graphs/dir/edges",
		edgeRequest{From: 4, To: 0}, &mut); code != http.StatusOK {
		t.Fatalf("insert returned %d", code)
	}
	got := fetchScores(t, base, "dir")
	g := make([]graph.Edge, 0, len(edges)+1)
	for _, e := range edges {
		g = append(g, graph.Edge{From: e[0], To: e[1]})
	}
	g = append(g, graph.Edge{From: 4, To: 0})
	want, err := core.Compute(graph.NewFromEdges(5, g, true), core.Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("directed bc[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}
