package promtext

import (
	"regexp"
	"strings"
	"testing"
)

// metricLine matches one sample of the text exposition format.
var metricLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// checkFormat asserts every line is a comment or a well-formed sample.
func checkFormat(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reqs_total", "Requests.", "route", "code")
	g := r.NewGauge("graphs_loaded", "Loaded graphs.")
	c.With("/bc", "200").Inc()
	c.With("/bc", "200").Add(2)
	c.With("/bc", "404").Inc()
	g.With().Set(7)
	g.With().Add(-2)

	text := render(t, r)
	checkFormat(t, text)
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{route="/bc",code="200"} 3`,
		`reqs_total{route="/bc",code="404"} 1`,
		"# TYPE graphs_loaded gauge",
		"graphs_loaded 5",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.1, 1, 10}, "route")
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.With("/bc").Observe(v)
	}
	text := render(t, r)
	checkFormat(t, text)
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{route="/bc",le="0.1"} 1`,
		`latency_seconds_bucket{route="/bc",le="1"} 3`,
		`latency_seconds_bucket{route="/bc",le="10"} 4`,
		`latency_seconds_bucket{route="/bc",le="+Inf"} 5`,
		`latency_seconds_sum{route="/bc"} 56.05`,
		`latency_seconds_count{route="/bc"} 5`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("a_total", "A.", "x")
	c.With("zebra").Inc()
	c.With("apple").Inc()
	text := render(t, r)
	if strings.Index(text, `x="apple"`) > strings.Index(text, `x="zebra"`) {
		t.Fatalf("series not sorted:\n%s", text)
	}
	if text != render(t, r) {
		t.Fatal("rendering is not deterministic")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("esc_total", "Escapes.", "v")
	c.With("a\"b\\c\nd").Inc()
	text := render(t, r)
	if !strings.Contains(text, `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", text)
	}
}

func TestEmptyFamilyEmitsHeaders(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("unused_total", "Never incremented.")
	text := render(t, r)
	checkFormat(t, text)
	if !strings.Contains(text, "# TYPE unused_total counter") {
		t.Fatalf("missing schema header:\n%s", text)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "D.")
	for name, fn := range map[string]func(){
		"duplicate name":    func() { r.NewCounter("dup_total", "D.") },
		"bad metric name":   func() { r.NewCounter("0bad", "B.") },
		"bad label name":    func() { r.NewCounter("ok_total", "B.", "0bad") },
		"label count":       func() { r.NewCounter("ok2_total", "B.", "a").With("x", "y") },
		"histogram buckets": func() { r.NewHistogram("h_seconds", "H.", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFloatGauge(t *testing.T) {
	r := NewRegistry()
	fg := r.NewFloatGauge("approx_error_estimate", "CI half-width.", "graph")
	fg.With("wiki").Set(0.0125)
	fg.With("road").Set(0)

	text := render(t, r)
	checkFormat(t, text)
	for _, want := range []string{
		"# TYPE approx_error_estimate gauge",
		`approx_error_estimate{graph="wiki"} 0.0125`,
		`approx_error_estimate{graph="road"} 0`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}
