// Package promtext renders families of internal/metrics instruments in the
// Prometheus text exposition format (version 0.0.4) using only the standard
// library. It is the serving layer's answer to client_golang: bcd feeds its
// request counters, latency histograms and incremental-update counters
// through a Registry here and exposes the result on GET /metrics.
//
// Supported shapes: counter, gauge and histogram families, each with a fixed
// label-name schema and any number of label-value series. Output is
// deterministic (families in registration order, series sorted) so tests and
// scrapers see stable text.
package promtext

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// Registry holds metric families and renders them.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	seen map[string]bool
}

type family struct {
	name, help, typ string
	labels          []string
	buckets         []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // label-values key -> *metrics.{Counter,Gauge,Histogram}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: map[string]bool{}}
}

func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("promtext: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("promtext: invalid label name %q", l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[name] {
		panic(fmt.Sprintf("promtext: duplicate metric %q", name))
	}
	r.seen[name] = true
	f := &family{name: name, help: help, typ: typ, labels: labels,
		buckets: buckets, series: map[string]any{}}
	r.fams = append(r.fams, f)
	return f
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// NewCounter registers a counter family with the given label schema.
func (r *Registry) NewCounter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", labels, nil)}
}

// With returns the counter for the given label values, creating it on first
// use. The number of values must match the registered label names.
func (cv *CounterVec) With(values ...string) *metrics.Counter {
	return cv.f.get(values, func() any { return &metrics.Counter{} }).(*metrics.Counter)
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// NewGauge registers a gauge family with the given label schema.
func (r *Registry) NewGauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", labels, nil)}
}

// With returns the gauge for the given label values, creating it on first use.
func (gv *GaugeVec) With(values ...string) *metrics.Gauge {
	return gv.f.get(values, func() any { return &metrics.Gauge{} }).(*metrics.Gauge)
}

// FloatGaugeVec is a gauge family over continuous values (error estimates,
// ratios) keyed by label values.
type FloatGaugeVec struct{ f *family }

// NewFloatGauge registers a float-valued gauge family with the given label
// schema. It renders with TYPE gauge — Prometheus gauges are float-valued;
// the int/float split exists only on the instrument side.
func (r *Registry) NewFloatGauge(name, help string, labels ...string) *FloatGaugeVec {
	return &FloatGaugeVec{r.register(name, help, "gauge", labels, nil)}
}

// With returns the gauge for the given label values, creating it on first use.
func (gv *FloatGaugeVec) With(values ...string) *metrics.FloatGauge {
	return gv.f.get(values, func() any { return &metrics.FloatGauge{} }).(*metrics.FloatGauge)
}

// HistogramVec is a histogram family keyed by label values; every series
// shares the family's bucket bounds.
type HistogramVec struct{ f *family }

// NewHistogram registers a histogram family with the given finite bucket
// bounds and label schema.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	probe := metrics.NewHistogram(buckets...) // validates and normalizes
	return &HistogramVec{r.register(name, help, "histogram", labels, probe.Bounds())}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (hv *HistogramVec) With(values ...string) *metrics.Histogram {
	return hv.f.get(values, func() any {
		return metrics.NewHistogram(hv.f.buckets...)
	}).(*metrics.Histogram)
}

func (f *family) get(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("promtext: %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
	}
	return s
}

// WriteTo renders every family. Families with no series are emitted as bare
// HELP/TYPE headers so scrapers learn the schema before first use.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var total int64
	for _, f := range fams {
		n, err := f.writeTo(w)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (f *family) writeTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)

	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()

	for i, k := range keys {
		var values []string
		if k != "" || len(f.labels) > 0 {
			values = strings.Split(k, "\x00")
		}
		switch m := series[i].(type) {
		case *metrics.Counter:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelSet(f.labels, values, "", ""),
				strconv.FormatUint(m.Value(), 10))
		case *metrics.Gauge:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelSet(f.labels, values, "", ""),
				strconv.FormatInt(m.Value(), 10))
		case *metrics.FloatGauge:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelSet(f.labels, values, "", ""),
				strconv.FormatFloat(m.Value(), 'g', -1, 64))
		case *metrics.Histogram:
			buckets, sum, count := m.Snapshot()
			var cum uint64
			for bi, bound := range f.buckets {
				cum += buckets[bi]
				le := strconv.FormatFloat(bound, 'g', -1, 64)
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelSet(f.labels, values, "le", le), cum)
			}
			cum += buckets[len(f.buckets)]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
				labelSet(f.labels, values, "le", "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelSet(f.labels, values, "", ""),
				strconv.FormatFloat(sum, 'g', -1, 64))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelSet(f.labels, values, "", ""), count)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// labelSet renders {k="v",...}; extraK/extraV append a synthetic label (le).
// An empty set renders as nothing.
func labelSet(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		// %q escapes backslash, quote and newline exactly as the text format
		// requires.
		fmt.Fprintf(&b, "%s=%q", name, v)
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
