// Package server is the serving subsystem behind the bcd daemon: a Registry
// of named loaded graphs, each holding a core.Incremental handle, plus the
// net/http JSON API over it (server.go) and its Prometheus metrics
// (metrics.go).
//
// The decomposition-based structure is what makes serving cheap: biconnected
// blocks and α/β/γ weights are computed once at load time and reused across
// every query, and intra-block edge updates flow through core.Incremental
// instead of recomputing the world.
//
// Concurrency model: core.Incremental publishes immutable epochs behind an
// atomic pointer, so queries read through inc.Snapshot() without holding any
// entry lock during the read — the per-entry RWMutex only guards the entry
// lifecycle fields (state, error, the inc pointer itself), and a mutation's
// exclusive window is the pointer swap inside the engine, not the recompute.
// Per-request scratch (top-K ranking) and the engines' per-vertex sweep
// state come from pooled arenas (sync.Pool here, internal/ws in core), so a
// warm daemon serves queries without per-request heap allocation outside
// JSON encoding.
package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/metrics"
)

// State is a loaded graph's lifecycle phase.
type State string

const (
	// StateLoading means the build job (parse + decompose + initial BC) is
	// queued or running.
	StateLoading State = "loading"
	// StateReady means queries and mutations are being served.
	StateReady State = "ready"
	// StateFailed means the build job errored; the entry stays visible so
	// clients can read the error, and the name can be re-used after Unload.
	StateFailed State = "failed"
	// StateAborted means the build job was cut short by registry shutdown,
	// not by a build error — job polling can tell the two apart.
	StateAborted State = "aborted"
)

// Config tunes a Registry.
type Config struct {
	// Workers bounds how many build/recompute jobs run concurrently
	// (par.Pool-style: a fixed worker set draining a shared queue).
	// <= 0 means 2.
	Workers int
	// QueueDepth bounds the number of queued build jobs; <= 0 means 16.
	// Loads beyond it are rejected with an error rather than queued without
	// bound.
	QueueDepth int
	// DefaultThreshold is the decomposition threshold used when a LoadSpec
	// does not set one; <= 0 means decompose.DefaultThreshold.
	DefaultThreshold int

	// DataDir enables durability: each graph gets a WAL + snapshot directory
	// under it (see wal.go) and Recover can rebuild the registry after a
	// crash or restart. Empty disables durability.
	DataDir string
	// SnapshotEvery bounds the WAL: after this many logged mutation records
	// the worker writes a fresh snapshot and truncates the log. <= 0 means
	// 256.
	SnapshotEvery int
	// MutationQueueDepth bounds each graph's pending-mutation queue;
	// mutations beyond it are rejected with an OverloadError (HTTP 429)
	// instead of queueing without bound. <= 0 means 128.
	MutationQueueDepth int
	// MutationBatch caps how many queued mutations the worker coalesces into
	// one engine batch — one WAL fsync and ONE published epoch per batch,
	// instead of one rebuild per edge. <= 0 means 64.
	MutationBatch int
	// RetryAfter is the backoff hint attached to OverloadErrors (the HTTP
	// layer's Retry-After header). <= 0 means 1s.
	RetryAfter time.Duration
}

// LoadSpec names a graph source for Registry.Load. Exactly one of Dataset,
// Path or Edges must be set.
type LoadSpec struct {
	// Name registers the graph under this identifier (required,
	// [A-Za-z0-9._-]{1,64}).
	Name string `json:"name"`

	// Dataset is a named synthetic dataset (datasets.Names), built at Scale
	// (<= 0 means 0.25).
	Dataset string  `json:"dataset,omitempty"`
	Scale   float64 `json:"scale,omitempty"`

	// Path is a graph file readable by graphio.LoadFile; Format overrides
	// extension sniffing and Directed applies to edge-list input.
	Path     string `json:"path,omitempty"`
	Format   string `json:"format,omitempty"`
	Directed bool   `json:"directed,omitempty"`

	// Edges is an inline edge list over vertices [0, N); Directed applies.
	N     int        `json:"n,omitempty"`
	Edges [][2]int32 `json:"edges,omitempty"`

	// Threshold overrides the registry's default decomposition threshold.
	Threshold int `json:"threshold,omitempty"`

	// Engine selects the root-sweep kernel the entry's recomputes run
	// through ("scalar", "msbfs"; empty means scalar — see core.RootEngine).
	// The choice is bit-invisible in the published scores, so it is purely a
	// performance knob; it persists across durable recovery.
	Engine string `json:"engine,omitempty"`
}

var nameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// Entry is one named graph in the registry. mu guards the lifecycle fields
// only; once an entry is ready, queries go through inc.Snapshot() and never
// hold mu while reading graph data.
type Entry struct {
	name string

	mu        sync.RWMutex
	state     State
	err       string
	inc       *core.Incremental
	threshold int
	engine    core.RootEngine
	loadedAt  time.Time
	buildTime time.Duration

	// est is the lazily built approximate-mode estimator (approx.go),
	// pinned to the epoch sequence number it sampled (estSeq) — a mutation
	// publishes a new epoch and the next approx query notices the stale seq
	// and rebuilds, so Mutate never touches estimator state. estMu is
	// separate from mu (never acquired while holding mu) so long-running
	// refinement cannot block exact queries or mutations; refining guards
	// the single background refinement goroutine.
	estMu    sync.Mutex
	est      *approx.Estimator
	estSeq   uint64
	refining atomic.Bool

	// Durability + admission control (set once when the build job finishes,
	// before the mutation worker starts; dir/wal are then confined to that
	// worker). mutCh is the bounded mutation queue: Mutate enqueues under
	// mu.RLock, stopMutations closes it under mu.Lock, so a send can never
	// race a close. walErr records the first durability failure for Info.
	dir         string
	wal         *walWriter
	walErr      string
	mutCh       chan *mutRequest
	mutStopped  bool
	dropDurable bool
	mutDone     chan struct{}
	pending     atomic.Int64

	// topk is the epoch-seq-keyed top-K singleflight cache (coalesce.go).
	topk topkCache
}

// mutRequest is one queued edge mutation; done (buffered) carries the
// outcome back to the blocked HTTP handler.
type mutRequest struct {
	add  bool
	u, v graph.V
	done chan mutOutcome
}

type mutOutcome struct {
	res MutationResult
	err error
}

// EntryInfo is a point-in-time snapshot of an entry, JSON-ready.
type EntryInfo struct {
	Name     string `json:"name"`
	State    State  `json:"state"`
	Error    string `json:"error,omitempty"`
	Directed bool   `json:"directed,omitempty"`
	Verts    int    `json:"verts,omitempty"`
	Edges    int64  `json:"edges,omitempty"`
	// Threshold is the decomposition threshold the graph was loaded with.
	Threshold int `json:"threshold,omitempty"`
	// Engine is the root-sweep kernel the entry recomputes with
	// (core.RootEngine.String()).
	Engine string `json:"engine,omitempty"`
	// Subgraphs/BoundaryAPs echo the cached decomposition's shape.
	Subgraphs   int `json:"subgraphs,omitempty"`
	BoundaryAPs int `json:"boundary_aps,omitempty"`
	// LocalUpdates and FullRebuilds count how mutations were absorbed.
	LocalUpdates int `json:"local_updates"`
	FullRebuilds int `json:"full_rebuilds"`
	// LoadedAt/BuildMs are set once the build job finishes.
	LoadedAt *time.Time `json:"loaded_at,omitempty"`
	BuildMs  float64    `json:"build_ms,omitempty"`
	// Epoch is the engine's published epoch sequence number — load-generator
	// clients compare it against the mutations they sent to observe batching.
	Epoch uint64 `json:"epoch,omitempty"`
	// PendingMutations is the current mutation-queue depth.
	PendingMutations int `json:"pending_mutations,omitempty"`
	// Durable reports whether the entry has a WAL+snapshot directory;
	// DurabilityError surfaces the first WAL/snapshot failure, if any.
	Durable         bool   `json:"durable,omitempty"`
	DurabilityError string `json:"durability_error,omitempty"`
}

// MutationResult reports how an edge update was absorbed.
type MutationResult struct {
	// Result is "local" (intra-sub-graph incremental update) or "rebuild"
	// (structural change forced a full re-decomposition).
	Result string `json:"result"`
	// Applied is the unambiguous effect marker: true means the edge update
	// was logged and published; a response without it means nothing changed.
	Applied bool  `json:"applied"`
	Verts   int   `json:"verts"`
	Edges   int64 `json:"edges"`
	// Batched is how many queued mutations shared this epoch publish (and
	// WAL fsync) with this one.
	Batched int `json:"batched,omitempty"`
	// TookMs is the wall time of the update (the whole batch's wall time
	// when Batched > 1).
	TookMs float64 `json:"took_ms"`
}

// Registry is the set of loaded graphs plus the bounded build-job pool.
type Registry struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.RWMutex
	graphs map[string]*Entry
	closed bool

	jobs chan buildJob
	wg   sync.WaitGroup
	// mutWg tracks per-entry mutation workers; Close waits on it after the
	// build workers have drained, so no new worker can start mid-shutdown.
	mutWg sync.WaitGroup

	// onLoadDone, onMutate and onApprox are metrics hooks (nil-safe); see
	// metrics.go.
	onLoadDone   func(status string)
	onMutate     func(result string)
	onCount      func(loaded int)
	onApprox     func(name string, pivots int, errEstimate float64)
	onOverload   func(op string)
	onBatch      func(ops int)
	onTopK       func(hit bool)
	onDurability func(event string)

	// beforeBuild and beforeMutate, when set (tests only), run at the start
	// of every build job / mutation batch — they let tests hold a worker
	// busy deterministically.
	beforeBuild  func()
	beforeMutate func()
}

type buildJob struct {
	e    *Entry
	spec LoadSpec
	// pre, when non-nil, is a graph recovered from a durable directory
	// (Recover): the job skips source materialization and pays only the
	// decomposition of the recovered state.
	pre *graph.Graph
}

// NewRegistry starts the worker pool. Close must be called to release it.
func NewRegistry(cfg Config) *Registry {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 256
	}
	if cfg.MutationQueueDepth <= 0 {
		cfg.MutationQueueDepth = 128
	}
	if cfg.MutationBatch <= 0 {
		cfg.MutationBatch = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Registry{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		graphs: map[string]*Entry{},
		jobs:   make(chan buildJob, cfg.QueueDepth),
	}
	// A fixed worker set draining a shared queue — par.Pool's shape, hand
	// rolled because jobs arrive over time rather than as a fixed index
	// range.
	r.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go r.worker()
	}
	return r
}

func (r *Registry) worker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.ctx.Done():
			// Abort queued builds: drain whatever is left so Close's final
			// drain and this race cleanly (each job is marked exactly once).
			return
		case j, ok := <-r.jobs:
			if !ok {
				return
			}
			r.runBuild(j)
		}
	}
}

// runBuild executes one load job: materialize the graph (or take the
// recovered one), decompose, compute initial BC, then set up durability and
// start the entry's mutation worker. The coarse-grained cancellation points
// are between phases — the phases themselves are CPU-bound library calls.
func (r *Registry) runBuild(j buildJob) {
	if r.beforeBuild != nil {
		r.beforeBuild()
	}
	start := time.Now()
	fail := func(status string, err error) {
		state := StateFailed
		if status == "canceled" {
			// Shutdown, not a build error: record the distinction so job
			// polling can tell the two apart.
			state = StateAborted
		}
		j.e.mu.Lock()
		j.e.state = state
		j.e.err = err.Error()
		j.e.mu.Unlock()
		r.notifyLoadDone(status)
	}
	if err := r.ctx.Err(); err != nil {
		fail("canceled", fmt.Errorf("server: load aborted by shutdown: %w", err))
		return
	}
	g := j.pre
	if g == nil {
		var err error
		g, err = buildGraph(j.spec)
		if err != nil {
			fail("error", err)
			return
		}
	}
	if err := r.ctx.Err(); err != nil {
		fail("canceled", fmt.Errorf("server: load aborted by shutdown: %w", err))
		return
	}
	inc, err := core.NewIncremental(g, core.Options{Threshold: j.e.threshold, RootEngine: j.e.engine})
	if err != nil {
		fail("error", err)
		return
	}

	// Only an entry still registered (not Unloaded mid-build, registry not
	// closing) gets durable state and a mutation worker; a detached entry
	// completes as inert garbage, exactly as before. The mutWg.Add happens
	// inside the build worker, so Close's ordering (wg.Wait, then
	// mutWg.Wait) can never miss a worker.
	r.mu.Lock()
	attached := !r.closed && r.graphs[j.e.name] == j.e
	if attached {
		r.mutWg.Add(1)
	}
	r.mu.Unlock()

	var dir string
	var wal *walWriter
	if attached && r.cfg.DataDir != "" {
		dir = filepath.Join(r.cfg.DataDir, j.e.name)
		if err := r.initDurable(dir, j.e, g); err != nil {
			r.mutWg.Done()
			fail("error", err)
			return
		}
		// The build-time snapshot already holds the full graph (for a
		// recovered entry that compacts the replayed WAL), so the log
		// restarts empty.
		wal, err = openWAL(filepath.Join(dir, walFile))
		if err == nil {
			err = wal.Reset()
		}
		if err != nil {
			if wal != nil {
				wal.Close()
			}
			r.mutWg.Done()
			fail("error", &DurabilityError{Name: j.e.name, Err: err})
			return
		}
	}

	// No transpose pre-materialization needed here: the incremental engine
	// ensures directed epochs publish with the transpose already built, so
	// concurrent lock-free readers never trigger the lazy In() build.
	j.e.mu.Lock()
	j.e.inc = inc
	j.e.state = StateReady
	j.e.loadedAt = time.Now().UTC()
	j.e.buildTime = time.Since(start)
	if attached {
		j.e.dir = dir
		j.e.wal = wal
		j.e.mutCh = make(chan *mutRequest, r.cfg.MutationQueueDepth)
		j.e.mutDone = make(chan struct{})
	}
	j.e.mu.Unlock()
	if attached {
		go r.mutWorker(j.e)
	}
	r.notifyLoadDone("ok")
	r.notifyCount(r.NumReady())
}

// initDurable creates the entry's durable directory and writes the
// load-parameter sidecar plus the build-time snapshot.
func (r *Registry) initDurable(dir string, e *Entry, g *graph.Graph) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return &DurabilityError{Name: e.name, Err: err}
	}
	meta := graphMeta{
		Name:      e.name,
		Threshold: e.threshold,
		Directed:  g.Directed(),
		SavedAt:   time.Now().UTC(),
		Engine:    e.engine.String(),
	}
	if err := writeMeta(dir, meta); err != nil {
		return &DurabilityError{Name: e.name, Err: err}
	}
	if err := writeSnapshot(dir, g); err != nil {
		return &DurabilityError{Name: e.name, Err: err}
	}
	r.notifyDurability("snapshot")
	return nil
}

func buildGraph(spec LoadSpec) (*graph.Graph, error) {
	switch {
	case spec.Dataset != "":
		scale := spec.Scale
		if scale <= 0 {
			scale = 0.25
		}
		if spec.Dataset == "human-disease" {
			_, g := datasets.HumanDisease()
			return g, nil
		}
		ds, err := datasets.ByName(spec.Dataset)
		if err != nil {
			return nil, err
		}
		return ds.Build(scale), nil
	case spec.Path != "":
		return graphio.LoadFile(spec.Path, spec.Format, spec.Directed)
	case len(spec.Edges) > 0:
		n := spec.N
		edges := make([]graph.Edge, len(spec.Edges))
		for i, e := range spec.Edges {
			edges[i] = graph.Edge{From: e[0], To: e[1]}
			for _, v := range e {
				if int(v) >= n {
					n = int(v) + 1
				}
				if v < 0 {
					return nil, fmt.Errorf("server: negative vertex %d in inline edge list", v)
				}
			}
		}
		return graph.NewFromEdges(n, edges, spec.Directed), nil
	default:
		return nil, fmt.Errorf("server: load spec needs one of dataset, path or edges")
	}
}

// Load registers spec.Name and enqueues the build job. It returns
// immediately; poll Get until the state leaves StateLoading.
func (r *Registry) Load(spec LoadSpec) (*Entry, error) {
	// "." and ".." pass nameRE but would escape DataDir via filepath.Join;
	// reject them outright.
	if !nameRE.MatchString(spec.Name) || spec.Name == "." || spec.Name == ".." {
		return nil, fmt.Errorf("server: invalid graph name %q (want %s)", spec.Name, nameRE)
	}
	if spec.Dataset == "" && spec.Path == "" && len(spec.Edges) == 0 {
		return nil, fmt.Errorf("server: load spec needs one of dataset, path or edges")
	}
	threshold := spec.Threshold
	if threshold <= 0 {
		threshold = r.cfg.DefaultThreshold
	}
	engine, err := core.ParseRootEngine(spec.Engine)
	if err != nil {
		return nil, err
	}
	e := &Entry{name: spec.Name, state: StateLoading, threshold: threshold, engine: engine}

	// The enqueue happens under r.mu so Close (which takes r.mu before
	// closing the channel) can never close r.jobs mid-send.
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrShutdown
	}
	if _, ok := r.graphs[spec.Name]; ok {
		return nil, &ConflictError{Name: spec.Name}
	}
	select {
	case r.jobs <- buildJob{e: e, spec: spec}:
		r.graphs[spec.Name] = e
		return e, nil
	default:
		r.notifyOverload("build")
		return nil, &OverloadError{Op: "build", Name: spec.Name, RetryAfter: r.cfg.RetryAfter}
	}
}

// ConflictError reports a Load against a name already in use.
type ConflictError struct{ Name string }

func (e *ConflictError) Error() string {
	return fmt.Sprintf("server: graph %q already loaded", e.Name)
}

// ErrShutdown reports an operation against a registry that has been closed.
// HTTP maps it to 503.
var ErrShutdown = errors.New("server: registry is shut down")

// OverloadError is the admission-control rejection: the bounded queue for Op
// ("build" or "mutation") is full. It is load shedding, not a client error —
// HTTP maps it to 429 with a Retry-After header, never 400.
type OverloadError struct {
	Op         string
	Name       string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: %s queue full for %q, retry after %s", e.Op, e.Name, e.RetryAfter)
}

// DurabilityError wraps a WAL or snapshot failure. The write-ahead ordering
// means a mutation whose WAL append failed was NOT applied.
type DurabilityError struct {
	Name string
	Err  error
}

func (e *DurabilityError) Error() string {
	return fmt.Sprintf("server: durability failure for %q: %v", e.Name, e.Err)
}

func (e *DurabilityError) Unwrap() error { return e.Err }

// Get returns the entry for name, or nil.
func (r *Registry) Get(name string) *Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.graphs[name]
}

// Unload removes name from the registry. In-flight queries finish on their
// epoch snapshots; a build job still running for it completes into the
// detached entry and is garbage afterwards. The entry's cached estimator is
// released so its pooled sweep workspaces return to the shared arena, its
// mutation worker drains and exits, and its durable directory is deleted —
// an unloaded graph does not come back on Recover.
func (r *Registry) Unload(name string) bool {
	r.mu.Lock()
	e, ok := r.graphs[name]
	delete(r.graphs, name)
	r.mu.Unlock()
	if ok {
		e.dropEstimator()
		e.stopMutations(true)
		e.mu.RLock()
		dir, done := e.dir, e.mutDone
		e.mu.RUnlock()
		if dir != "" {
			// Wait for the worker to release its WAL handle, then drop the
			// directory; async so the HTTP handler is not held behind a
			// draining batch.
			go func() {
				if done != nil {
					<-done
				}
				os.RemoveAll(dir)
			}()
		}
		r.notifyCount(r.NumReady())
	}
	return ok
}

// List returns a snapshot of every entry, sorted by name.
func (r *Registry) List() []EntryInfo {
	r.mu.RLock()
	entries := make([]*Entry, 0, len(r.graphs))
	for _, e := range r.graphs {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	out := make([]EntryInfo, len(entries))
	for i, e := range entries {
		out[i] = e.Info()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NumReady counts entries currently in StateReady.
func (r *Registry) NumReady() int {
	r.mu.RLock()
	entries := make([]*Entry, 0, len(r.graphs))
	for _, e := range r.graphs {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	n := 0
	for _, e := range entries {
		e.mu.RLock()
		if e.state == StateReady {
			n++
		}
		e.mu.RUnlock()
	}
	return n
}

// Close shuts the registry down: queued builds are aborted (marked
// StateAborted, distinguishable from genuine failures), running builds
// finish, every mutation worker drains its queue, writes a final snapshot
// and closes its WAL, and no further loads are accepted. Safe to call more
// than once.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()

	r.cancel()
	close(r.jobs)
	r.wg.Wait()
	// Workers have exited; whatever is still queued was never started.
	for j := range r.jobs {
		j.e.mu.Lock()
		j.e.state = StateAborted
		j.e.err = "server: load aborted by shutdown"
		j.e.mu.Unlock()
		r.notifyLoadDone("canceled")
	}
	// All build workers are done, so the set of mutation workers is final:
	// stop each (drains queued mutations, final snapshot + WAL close) and
	// wait for them.
	r.mu.RLock()
	entries := make([]*Entry, 0, len(r.graphs))
	for _, e := range r.graphs {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	for _, e := range entries {
		e.stopMutations(false)
	}
	r.mutWg.Wait()
}

func (r *Registry) notifyLoadDone(status string) {
	if r.onLoadDone != nil {
		r.onLoadDone(status)
	}
}

func (r *Registry) notifyMutate(result string) {
	if r.onMutate != nil {
		r.onMutate(result)
	}
}

func (r *Registry) notifyCount(n int) {
	if r.onCount != nil {
		r.onCount(n)
	}
}

func (r *Registry) notifyOverload(op string) {
	if r.onOverload != nil {
		r.onOverload(op)
	}
}

func (r *Registry) notifyBatch(ops int) {
	if r.onBatch != nil {
		r.onBatch(ops)
	}
}

func (r *Registry) notifyTopK(hit bool) {
	if r.onTopK != nil {
		r.onTopK(hit)
	}
}

func (r *Registry) notifyDurability(event string) {
	if r.onDurability != nil {
		r.onDurability(event)
	}
}

// ---- Entry accessors -------------------------------------------------------

// Name returns the registry key.
func (e *Entry) Name() string { return e.name }

// Info snapshots the entry. Graph-shaped fields come from one epoch
// snapshot, so they are mutually consistent even while mutations land.
func (e *Entry) Info() EntryInfo {
	e.mu.RLock()
	info := EntryInfo{
		Name:      e.name,
		State:     e.state,
		Error:     e.err,
		Threshold: e.threshold,
		Engine:    e.engine.String(),
	}
	inc := e.inc
	if inc != nil {
		at := e.loadedAt
		info.LoadedAt = &at
		info.BuildMs = float64(e.buildTime) / float64(time.Millisecond)
	}
	info.Durable = e.dir != ""
	info.DurabilityError = e.walErr
	e.mu.RUnlock()
	if inc != nil {
		snap := inc.Snapshot()
		g, d := snap.Graph, snap.Decomposition
		info.Directed = g.Directed()
		info.Verts = g.NumVertices()
		info.Edges = g.NumEdges()
		info.Subgraphs = len(d.Subgraphs)
		info.BoundaryAPs = d.NumArticulation
		info.LocalUpdates = inc.LocalUpdates()
		info.FullRebuilds = inc.FullRebuilds()
		info.Epoch = snap.Seq
		info.PendingMutations = int(e.pending.Load())
	}
	return info
}

// NotReadyError reports an operation against an entry that is not serving.
type NotReadyError struct {
	Name  string
	State State
	Cause string
}

func (e *NotReadyError) Error() string {
	if e.Cause != "" {
		return fmt.Sprintf("server: graph %q is %s: %s", e.Name, e.State, e.Cause)
	}
	return fmt.Sprintf("server: graph %q is %s", e.Name, e.State)
}

// readyLocked returns the incremental handle if the entry serves, else a
// NotReadyError. Callers must hold e.mu (either mode).
func (e *Entry) readyLocked() (*core.Incremental, error) {
	if e.state != StateReady || e.inc == nil {
		return nil, &NotReadyError{Name: e.name, State: e.state, Cause: e.err}
	}
	return e.inc, nil
}

// ready fetches the incremental handle under a brief read lock. All query
// paths go through it and then read epoch snapshots lock-free.
func (e *Entry) ready() (*core.Incremental, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.readyLocked()
}

// BC returns a copy of the current scores.
func (e *Entry) BC() ([]float64, error) {
	inc, err := e.ready()
	if err != nil {
		return nil, err
	}
	return inc.Snapshot().BC(), nil
}

// BCView returns the current epoch's score vector without copying. The
// epoch is immutable, so the slice is safe to read concurrently with
// mutations — but it must not be written.
func (e *Entry) BCView() ([]float64, error) {
	inc, err := e.ready()
	if err != nil {
		return nil, err
	}
	return inc.Snapshot().BCView(), nil
}

// VertexScore pairs a vertex with its score.
type VertexScore struct {
	Vertex graph.V `json:"vertex"`
	Score  float64 `json:"bc"`
}

// TopK returns the k highest-BC vertices (score desc, ties by vertex id) and
// the total vertex count. k <= 0 means all vertices. The returned slice is
// freshly allocated; the request path uses a rankScratch instead.
func (e *Entry) TopK(k int) ([]VertexScore, int, error) {
	bc, err := e.BCView()
	if err != nil {
		return nil, 0, err
	}
	var scr rankScratch
	top := scr.topK(bc, k)
	return append([]VertexScore(nil), top...), len(bc), nil
}

// rankScratch is reusable top-K ranking scratch. Handlers check one out of
// topKScratch per request and return it after the response is encoded, so a
// warm daemon ranks without allocating.
type rankScratch struct {
	all []VertexScore
}

// topKScratch pools rankScratch instances across requests (and the census
// path's redundancy sampling reuses the same pool through topKOf).
var topKScratch = sync.Pool{New: func() any { return new(rankScratch) }}

// compareVertexScore orders score desc, ties by vertex id. A named function
// (not a capturing closure) keeps the sort allocation-free.
func compareVertexScore(a, b VertexScore) int {
	switch {
	case a.Score > b.Score:
		return -1
	case a.Score < b.Score:
		return 1
	case a.Vertex < b.Vertex:
		return -1
	case a.Vertex > b.Vertex:
		return 1
	}
	return 0
}

// topK ranks a score vector into the scratch's reusable buffer: score desc,
// ties by vertex id, k <= 0 means all vertices. The returned slice aliases
// the scratch and is valid until the next topK call on it.
func (scr *rankScratch) topK(scores []float64, k int) []VertexScore {
	if cap(scr.all) < len(scores) {
		scr.all = make([]VertexScore, len(scores))
	}
	all := scr.all[:len(scores)]
	for v, s := range scores {
		all[v] = VertexScore{Vertex: graph.V(v), Score: s}
	}
	slices.SortFunc(all, compareVertexScore)
	if k <= 0 || k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// topKOf is the convenience form over a pooled scratch for callers that can
// tolerate one copy (k results, not n).
func topKOf(scores []float64, k int) []VertexScore {
	scr := topKScratch.Get().(*rankScratch)
	top := append([]VertexScore(nil), scr.topK(scores, k)...)
	topKScratch.Put(scr)
	return top
}

// VertexInfo is the single-vertex view.
type VertexInfo struct {
	Vertex graph.V `json:"vertex"`
	Score  float64 `json:"bc"`
	// Rank is 1-based by descending score (ties share the better rank).
	Rank      int  `json:"rank"`
	OutDegree int  `json:"out_degree"`
	InDegree  *int `json:"in_degree,omitempty"` // directed graphs only
	// IsArticulation reports whether the vertex is a boundary articulation
	// point of the cached decomposition.
	IsArticulation bool `json:"is_articulation"`
}

// Vertex returns the per-vertex view of v. Score, rank and degrees all come
// from one epoch snapshot, so the view is internally consistent even if a
// mutation lands mid-request.
func (e *Entry) Vertex(v int) (VertexInfo, error) {
	inc, err := e.ready()
	if err != nil {
		return VertexInfo{}, err
	}
	snap := inc.Snapshot()
	g := snap.Graph
	if v < 0 || v >= g.NumVertices() {
		return VertexInfo{}, &VertexRangeError{Vertex: v, N: g.NumVertices()}
	}
	bc := snap.BCView()
	info := VertexInfo{
		Vertex:    graph.V(v),
		Score:     bc[v],
		OutDegree: g.OutDegree(graph.V(v)),
	}
	rank := 1
	for _, s := range bc {
		if s > info.Score {
			rank++
		}
	}
	info.Rank = rank
	if g.Directed() {
		in := g.InDegree(graph.V(v))
		info.InDegree = &in
	}
	for _, sg := range snap.Decomposition.Subgraphs {
		l := sg.LocalID(graph.V(v))
		if l >= 0 && sg.IsArt[l] {
			info.IsArticulation = true
			break
		}
	}
	return info, nil
}

// VertexRangeError reports a vertex id outside [0, N).
type VertexRangeError struct{ Vertex, N int }

func (e *VertexRangeError) Error() string {
	return fmt.Sprintf("server: vertex %d out of range [0,%d)", e.Vertex, e.N)
}

// Mutate enqueues an edge insert (add=true) or removal on the entry's
// bounded mutation queue and blocks until the worker reports the outcome.
// Admission control happens here: a full queue rejects immediately with an
// OverloadError (HTTP 429) instead of queueing without bound. Once enqueued,
// the call waits for the outcome unconditionally — a success response always
// means the mutation was logged and applied, never "maybe". Reads are
// unaffected throughout: they go through lock-free epoch snapshots and never
// enter this queue, which is the priority lane that keeps cached top-K
// latency flat during rebuilds.
func (r *Registry) Mutate(e *Entry, add bool, u, v int32) (MutationResult, error) {
	e.mu.RLock()
	if _, err := e.readyLocked(); err != nil {
		e.mu.RUnlock()
		return MutationResult{}, err
	}
	if e.mutCh == nil || e.mutStopped {
		// Ready but detached (unloaded mid-build) or shutting down.
		e.mu.RUnlock()
		return MutationResult{}, ErrShutdown
	}
	req := &mutRequest{add: add, u: graph.V(u), v: graph.V(v), done: make(chan mutOutcome, 1)}
	select {
	case e.mutCh <- req:
		e.pending.Add(1)
		e.mu.RUnlock()
	default:
		e.mu.RUnlock()
		r.notifyOverload("mutation")
		return MutationResult{}, &OverloadError{Op: "mutation", Name: e.name, RetryAfter: r.cfg.RetryAfter}
	}
	out := <-req.done
	e.pending.Add(-1)
	return out.res, out.err
}

// stopMutations closes the entry's mutation queue (idempotent). The worker
// drains what is already queued, then exits; drop=true additionally skips
// the final snapshot because the durable directory is about to be deleted.
func (e *Entry) stopMutations(drop bool) {
	e.mu.Lock()
	if e.mutCh == nil || e.mutStopped {
		e.mu.Unlock()
		return
	}
	e.mutStopped = true
	e.dropDurable = drop
	close(e.mutCh)
	e.mu.Unlock()
}

// mutWorker is the entry's single mutation-applying goroutine: it drains the
// bounded queue in batches of up to MutationBatch ops, so a burst of N
// mutations costs one WAL fsync and ONE published epoch per batch instead of
// N rebuilds. Confining WAL and engine writes to one goroutine also removes
// any mutator-vs-mutator locking.
func (r *Registry) mutWorker(e *Entry) {
	defer func() {
		if e.wal != nil {
			if !e.dropDurable {
				// Final compaction: snapshot the current graph and truncate
				// the log so the next start replays nothing.
				snap := e.inc.Snapshot()
				if err := writeSnapshot(e.dir, snap.Graph); err == nil {
					e.wal.Reset()
					r.notifyDurability("snapshot")
				} else {
					r.notifyDurability("error")
				}
			}
			e.wal.Close()
		}
		close(e.mutDone)
		r.mutWg.Done()
	}()
	for req := range e.mutCh {
		if r.beforeMutate != nil {
			r.beforeMutate()
		}
		batch := append(make([]*mutRequest, 0, r.cfg.MutationBatch), req)
	drain:
		for len(batch) < r.cfg.MutationBatch {
			select {
			case more, ok := <-e.mutCh:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		r.processBatch(e, batch)
	}
}

// processBatch logs, applies and acknowledges one coalesced batch. Ordering
// is write-ahead: the WAL append+fsync happens BEFORE the engine apply, so
// an acknowledged mutation is always recoverable, and a WAL failure means
// the batch was not applied at all.
func (r *Registry) processBatch(e *Entry, batch []*mutRequest) {
	start := time.Now()
	ops := make([]core.EdgeOp, len(batch))
	for i, req := range batch {
		ops[i] = core.EdgeOp{Add: req.add, U: req.u, V: req.v}
	}
	if e.wal != nil {
		if err := e.wal.Append(ops); err != nil {
			derr := &DurabilityError{Name: e.name, Err: err}
			e.mu.Lock()
			if e.walErr == "" {
				e.walErr = derr.Error()
			}
			e.mu.Unlock()
			r.notifyDurability("error")
			for _, req := range batch {
				req.done <- mutOutcome{err: derr}
			}
			return
		}
		r.notifyDurability("append")
	}
	inc := e.inc // set before the worker starts, never reassigned
	before := inc.FullRebuilds()
	errs, err := inc.ApplyBatch(ops)
	if err != nil {
		for _, req := range batch {
			req.done <- mutOutcome{err: err}
		}
		return
	}
	snap := inc.Snapshot()
	result := "local"
	if inc.FullRebuilds() > before {
		result = "rebuild"
	}
	tookMs := float64(time.Since(start)) / float64(time.Millisecond)
	for i, req := range batch {
		if errs[i] != nil {
			req.done <- mutOutcome{err: errs[i]}
			continue
		}
		req.done <- mutOutcome{res: MutationResult{
			Result:  result,
			Applied: true,
			Verts:   snap.Graph.NumVertices(),
			Edges:   snap.Graph.NumEdges(),
			Batched: len(batch),
			TookMs:  tookMs,
		}}
		r.notifyMutate(result)
	}
	r.notifyBatch(len(batch))
	if e.wal != nil && e.wal.records >= r.cfg.SnapshotEvery {
		if err := writeSnapshot(e.dir, snap.Graph); err != nil {
			e.mu.Lock()
			if e.walErr == "" {
				e.walErr = (&DurabilityError{Name: e.name, Err: err}).Error()
			}
			e.mu.Unlock()
			r.notifyDurability("error")
		} else if err := e.wal.Reset(); err == nil {
			r.notifyDurability("snapshot")
		} else {
			r.notifyDurability("error")
		}
	}
}

// Recover scans DataDir for durable graph directories and re-enqueues a
// build job for each: snapshot + WAL-tail replay reconstructs the final
// graph in memory, and the daemon pays one decomposition of that state
// instead of re-materializing the original source and re-absorbing the whole
// mutation history. It returns the names it enqueued. Call it once, before
// serving.
func (r *Registry) Recover() ([]string, error) {
	if r.cfg.DataDir == "" {
		return nil, nil
	}
	dirents, err := os.ReadDir(r.cfg.DataDir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, de := range dirents {
		if !de.IsDir() {
			continue
		}
		name := de.Name()
		if !nameRE.MatchString(name) {
			continue
		}
		dir := filepath.Join(r.cfg.DataDir, name)
		st, err := loadDurable(dir)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				// Not a durable graph directory (no meta/snapshot yet).
				continue
			}
			return names, err
		}
		engine, err := core.ParseRootEngine(st.meta.Engine)
		if err != nil {
			return names, fmt.Errorf("server: %s: %w", dir, err)
		}
		e := &Entry{name: name, state: StateLoading, threshold: st.meta.Threshold, engine: engine}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return names, ErrShutdown
		}
		if _, ok := r.graphs[name]; ok {
			r.mu.Unlock()
			continue
		}
		select {
		case r.jobs <- buildJob{e: e, spec: LoadSpec{Name: name}, pre: st.g}:
			r.graphs[name] = e
			names = append(names, name)
			r.mu.Unlock()
		default:
			r.mu.Unlock()
			return names, &OverloadError{Op: "build", Name: name, RetryAfter: r.cfg.RetryAfter}
		}
		r.notifyDurability("recover")
	}
	return names, nil
}

// Census builds the stats view (the bcstats census) of the entry. Redundancy
// analysis is sampled above sampleCutoff vertices so the endpoint stays
// cheap on big graphs.
func (e *Entry) Census() (metrics.GraphCensus, error) {
	inc, err := e.ready()
	if err != nil {
		return metrics.GraphCensus{}, err
	}
	snap := inc.Snapshot()
	g := snap.Graph
	const sampleCutoff = 4096
	sampleK := 0
	if g.NumVertices() > sampleCutoff {
		sampleK = 64
	}
	return core.BuildCensus(e.name, g, snap.Decomposition, core.CensusOptions{
		Threshold:         e.threshold,
		RedundancySampleK: sampleK,
		Seed:              1,
	}), nil
}
