// Package server is the serving subsystem behind the bcd daemon: a Registry
// of named loaded graphs, each holding a core.Incremental handle, plus the
// net/http JSON API over it (server.go) and its Prometheus metrics
// (metrics.go).
//
// The decomposition-based structure is what makes serving cheap: biconnected
// blocks and α/β/γ weights are computed once at load time and reused across
// every query, and intra-block edge updates flow through core.Incremental
// instead of recomputing the world.
//
// Concurrency model: core.Incremental publishes immutable epochs behind an
// atomic pointer, so queries read through inc.Snapshot() without holding any
// entry lock during the read — the per-entry RWMutex only guards the entry
// lifecycle fields (state, error, the inc pointer itself), and a mutation's
// exclusive window is the pointer swap inside the engine, not the recompute.
// Per-request scratch (top-K ranking) and the engines' per-vertex sweep
// state come from pooled arenas (sync.Pool here, internal/ws in core), so a
// warm daemon serves queries without per-request heap allocation outside
// JSON encoding.
package server

import (
	"context"
	"fmt"
	"regexp"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/metrics"
)

// State is a loaded graph's lifecycle phase.
type State string

const (
	// StateLoading means the build job (parse + decompose + initial BC) is
	// queued or running.
	StateLoading State = "loading"
	// StateReady means queries and mutations are being served.
	StateReady State = "ready"
	// StateFailed means the build job errored; the entry stays visible so
	// clients can read the error, and the name can be re-used after Unload.
	StateFailed State = "failed"
)

// Config tunes a Registry.
type Config struct {
	// Workers bounds how many build/recompute jobs run concurrently
	// (par.Pool-style: a fixed worker set draining a shared queue).
	// <= 0 means 2.
	Workers int
	// QueueDepth bounds the number of queued build jobs; <= 0 means 16.
	// Loads beyond it are rejected with an error rather than queued without
	// bound.
	QueueDepth int
	// DefaultThreshold is the decomposition threshold used when a LoadSpec
	// does not set one; <= 0 means decompose.DefaultThreshold.
	DefaultThreshold int
}

// LoadSpec names a graph source for Registry.Load. Exactly one of Dataset,
// Path or Edges must be set.
type LoadSpec struct {
	// Name registers the graph under this identifier (required,
	// [A-Za-z0-9._-]{1,64}).
	Name string `json:"name"`

	// Dataset is a named synthetic dataset (datasets.Names), built at Scale
	// (<= 0 means 0.25).
	Dataset string  `json:"dataset,omitempty"`
	Scale   float64 `json:"scale,omitempty"`

	// Path is a graph file readable by graphio.LoadFile; Format overrides
	// extension sniffing and Directed applies to edge-list input.
	Path     string `json:"path,omitempty"`
	Format   string `json:"format,omitempty"`
	Directed bool   `json:"directed,omitempty"`

	// Edges is an inline edge list over vertices [0, N); Directed applies.
	N     int        `json:"n,omitempty"`
	Edges [][2]int32 `json:"edges,omitempty"`

	// Threshold overrides the registry's default decomposition threshold.
	Threshold int `json:"threshold,omitempty"`
}

var nameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// Entry is one named graph in the registry. mu guards the lifecycle fields
// only; once an entry is ready, queries go through inc.Snapshot() and never
// hold mu while reading graph data.
type Entry struct {
	name string

	mu        sync.RWMutex
	state     State
	err       string
	inc       *core.Incremental
	threshold int
	loadedAt  time.Time
	buildTime time.Duration

	// est is the lazily built approximate-mode estimator (approx.go),
	// pinned to the epoch sequence number it sampled (estSeq) — a mutation
	// publishes a new epoch and the next approx query notices the stale seq
	// and rebuilds, so Mutate never touches estimator state. estMu is
	// separate from mu (never acquired while holding mu) so long-running
	// refinement cannot block exact queries or mutations; refining guards
	// the single background refinement goroutine.
	estMu    sync.Mutex
	est      *approx.Estimator
	estSeq   uint64
	refining atomic.Bool
}

// EntryInfo is a point-in-time snapshot of an entry, JSON-ready.
type EntryInfo struct {
	Name     string `json:"name"`
	State    State  `json:"state"`
	Error    string `json:"error,omitempty"`
	Directed bool   `json:"directed,omitempty"`
	Verts    int    `json:"verts,omitempty"`
	Edges    int64  `json:"edges,omitempty"`
	// Threshold is the decomposition threshold the graph was loaded with.
	Threshold int `json:"threshold,omitempty"`
	// Subgraphs/BoundaryAPs echo the cached decomposition's shape.
	Subgraphs   int `json:"subgraphs,omitempty"`
	BoundaryAPs int `json:"boundary_aps,omitempty"`
	// LocalUpdates and FullRebuilds count how mutations were absorbed.
	LocalUpdates int `json:"local_updates"`
	FullRebuilds int `json:"full_rebuilds"`
	// LoadedAt/BuildMs are set once the build job finishes.
	LoadedAt *time.Time `json:"loaded_at,omitempty"`
	BuildMs  float64    `json:"build_ms,omitempty"`
}

// MutationResult reports how an edge update was absorbed.
type MutationResult struct {
	// Result is "local" (intra-sub-graph incremental update) or "rebuild"
	// (structural change forced a full re-decomposition).
	Result string `json:"result"`
	Verts  int    `json:"verts"`
	Edges  int64  `json:"edges"`
	// TookMs is the wall time of the update.
	TookMs float64 `json:"took_ms"`
}

// Registry is the set of loaded graphs plus the bounded build-job pool.
type Registry struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.RWMutex
	graphs map[string]*Entry
	closed bool

	jobs chan buildJob
	wg   sync.WaitGroup

	// onLoadDone, onMutate and onApprox are metrics hooks (nil-safe); see
	// metrics.go.
	onLoadDone func(status string)
	onMutate   func(result string)
	onCount    func(loaded int)
	onApprox   func(name string, pivots int, errEstimate float64)

	// beforeBuild, when set (tests only), runs at the start of every build
	// job — it lets tests hold a worker busy deterministically.
	beforeBuild func()
}

type buildJob struct {
	e    *Entry
	spec LoadSpec
}

// NewRegistry starts the worker pool. Close must be called to release it.
func NewRegistry(cfg Config) *Registry {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Registry{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		graphs: map[string]*Entry{},
		jobs:   make(chan buildJob, cfg.QueueDepth),
	}
	// A fixed worker set draining a shared queue — par.Pool's shape, hand
	// rolled because jobs arrive over time rather than as a fixed index
	// range.
	r.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go r.worker()
	}
	return r
}

func (r *Registry) worker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.ctx.Done():
			// Abort queued builds: drain whatever is left so Close's final
			// drain and this race cleanly (each job is marked exactly once).
			return
		case j, ok := <-r.jobs:
			if !ok {
				return
			}
			r.runBuild(j)
		}
	}
}

// runBuild executes one load job: materialize the graph, decompose, compute
// initial BC. The coarse-grained cancellation points are between phases —
// the phases themselves are CPU-bound library calls.
func (r *Registry) runBuild(j buildJob) {
	if r.beforeBuild != nil {
		r.beforeBuild()
	}
	start := time.Now()
	fail := func(status string, err error) {
		j.e.mu.Lock()
		j.e.state = StateFailed
		j.e.err = err.Error()
		j.e.mu.Unlock()
		r.notifyLoadDone(status)
	}
	if err := r.ctx.Err(); err != nil {
		fail("canceled", fmt.Errorf("server: load canceled: %w", err))
		return
	}
	g, err := buildGraph(j.spec)
	if err != nil {
		fail("error", err)
		return
	}
	if err := r.ctx.Err(); err != nil {
		fail("canceled", fmt.Errorf("server: load canceled: %w", err))
		return
	}
	inc, err := core.NewIncremental(g, core.Options{Threshold: j.e.threshold})
	if err != nil {
		fail("error", err)
		return
	}
	// No transpose pre-materialization needed here: the incremental engine
	// ensures directed epochs publish with the transpose already built, so
	// concurrent lock-free readers never trigger the lazy In() build.
	j.e.mu.Lock()
	j.e.inc = inc
	j.e.state = StateReady
	j.e.loadedAt = time.Now().UTC()
	j.e.buildTime = time.Since(start)
	j.e.mu.Unlock()
	r.notifyLoadDone("ok")
	r.notifyCount(r.NumReady())
}

func buildGraph(spec LoadSpec) (*graph.Graph, error) {
	switch {
	case spec.Dataset != "":
		scale := spec.Scale
		if scale <= 0 {
			scale = 0.25
		}
		if spec.Dataset == "human-disease" {
			_, g := datasets.HumanDisease()
			return g, nil
		}
		ds, err := datasets.ByName(spec.Dataset)
		if err != nil {
			return nil, err
		}
		return ds.Build(scale), nil
	case spec.Path != "":
		return graphio.LoadFile(spec.Path, spec.Format, spec.Directed)
	case len(spec.Edges) > 0:
		n := spec.N
		edges := make([]graph.Edge, len(spec.Edges))
		for i, e := range spec.Edges {
			edges[i] = graph.Edge{From: e[0], To: e[1]}
			for _, v := range e {
				if int(v) >= n {
					n = int(v) + 1
				}
				if v < 0 {
					return nil, fmt.Errorf("server: negative vertex %d in inline edge list", v)
				}
			}
		}
		return graph.NewFromEdges(n, edges, spec.Directed), nil
	default:
		return nil, fmt.Errorf("server: load spec needs one of dataset, path or edges")
	}
}

// Load registers spec.Name and enqueues the build job. It returns
// immediately; poll Get until the state leaves StateLoading.
func (r *Registry) Load(spec LoadSpec) (*Entry, error) {
	if !nameRE.MatchString(spec.Name) {
		return nil, fmt.Errorf("server: invalid graph name %q (want %s)", spec.Name, nameRE)
	}
	if spec.Dataset == "" && spec.Path == "" && len(spec.Edges) == 0 {
		return nil, fmt.Errorf("server: load spec needs one of dataset, path or edges")
	}
	threshold := spec.Threshold
	if threshold <= 0 {
		threshold = r.cfg.DefaultThreshold
	}
	e := &Entry{name: spec.Name, state: StateLoading, threshold: threshold}

	// The enqueue happens under r.mu so Close (which takes r.mu before
	// closing the channel) can never close r.jobs mid-send.
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("server: registry is shut down")
	}
	if _, ok := r.graphs[spec.Name]; ok {
		return nil, &ConflictError{Name: spec.Name}
	}
	select {
	case r.jobs <- buildJob{e: e, spec: spec}:
		r.graphs[spec.Name] = e
		return e, nil
	default:
		return nil, fmt.Errorf("server: build queue full (%d jobs)", r.cfg.QueueDepth)
	}
}

// ConflictError reports a Load against a name already in use.
type ConflictError struct{ Name string }

func (e *ConflictError) Error() string {
	return fmt.Sprintf("server: graph %q already loaded", e.Name)
}

// Get returns the entry for name, or nil.
func (r *Registry) Get(name string) *Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.graphs[name]
}

// Unload removes name from the registry. In-flight queries finish on their
// epoch snapshots; a build job still running for it completes into the
// detached entry and is garbage afterwards. The entry's cached estimator is
// released so its pooled sweep workspaces return to the shared arena.
func (r *Registry) Unload(name string) bool {
	r.mu.Lock()
	e, ok := r.graphs[name]
	delete(r.graphs, name)
	r.mu.Unlock()
	if ok {
		e.dropEstimator()
		r.notifyCount(r.NumReady())
	}
	return ok
}

// List returns a snapshot of every entry, sorted by name.
func (r *Registry) List() []EntryInfo {
	r.mu.RLock()
	entries := make([]*Entry, 0, len(r.graphs))
	for _, e := range r.graphs {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	out := make([]EntryInfo, len(entries))
	for i, e := range entries {
		out[i] = e.Info()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NumReady counts entries currently in StateReady.
func (r *Registry) NumReady() int {
	r.mu.RLock()
	entries := make([]*Entry, 0, len(r.graphs))
	for _, e := range r.graphs {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	n := 0
	for _, e := range entries {
		e.mu.RLock()
		if e.state == StateReady {
			n++
		}
		e.mu.RUnlock()
	}
	return n
}

// Close shuts the registry down: queued builds are aborted (marked failed),
// running builds finish, and no further loads are accepted. Safe to call
// more than once.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()

	r.cancel()
	close(r.jobs)
	r.wg.Wait()
	// Workers have exited; whatever is still queued was never started.
	for j := range r.jobs {
		j.e.mu.Lock()
		j.e.state = StateFailed
		j.e.err = "server: load aborted by shutdown"
		j.e.mu.Unlock()
		r.notifyLoadDone("canceled")
	}
}

func (r *Registry) notifyLoadDone(status string) {
	if r.onLoadDone != nil {
		r.onLoadDone(status)
	}
}

func (r *Registry) notifyMutate(result string) {
	if r.onMutate != nil {
		r.onMutate(result)
	}
}

func (r *Registry) notifyCount(n int) {
	if r.onCount != nil {
		r.onCount(n)
	}
}

// ---- Entry accessors -------------------------------------------------------

// Name returns the registry key.
func (e *Entry) Name() string { return e.name }

// Info snapshots the entry. Graph-shaped fields come from one epoch
// snapshot, so they are mutually consistent even while mutations land.
func (e *Entry) Info() EntryInfo {
	e.mu.RLock()
	info := EntryInfo{
		Name:      e.name,
		State:     e.state,
		Error:     e.err,
		Threshold: e.threshold,
	}
	inc := e.inc
	if inc != nil {
		at := e.loadedAt
		info.LoadedAt = &at
		info.BuildMs = float64(e.buildTime) / float64(time.Millisecond)
	}
	e.mu.RUnlock()
	if inc != nil {
		snap := inc.Snapshot()
		g, d := snap.Graph, snap.Decomposition
		info.Directed = g.Directed()
		info.Verts = g.NumVertices()
		info.Edges = g.NumEdges()
		info.Subgraphs = len(d.Subgraphs)
		info.BoundaryAPs = d.NumArticulation
		info.LocalUpdates = inc.LocalUpdates()
		info.FullRebuilds = inc.FullRebuilds()
	}
	return info
}

// NotReadyError reports an operation against an entry that is not serving.
type NotReadyError struct {
	Name  string
	State State
	Cause string
}

func (e *NotReadyError) Error() string {
	if e.Cause != "" {
		return fmt.Sprintf("server: graph %q is %s: %s", e.Name, e.State, e.Cause)
	}
	return fmt.Sprintf("server: graph %q is %s", e.Name, e.State)
}

// readyLocked returns the incremental handle if the entry serves, else a
// NotReadyError. Callers must hold e.mu (either mode).
func (e *Entry) readyLocked() (*core.Incremental, error) {
	if e.state != StateReady || e.inc == nil {
		return nil, &NotReadyError{Name: e.name, State: e.state, Cause: e.err}
	}
	return e.inc, nil
}

// ready fetches the incremental handle under a brief read lock. All query
// paths go through it and then read epoch snapshots lock-free.
func (e *Entry) ready() (*core.Incremental, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.readyLocked()
}

// BC returns a copy of the current scores.
func (e *Entry) BC() ([]float64, error) {
	inc, err := e.ready()
	if err != nil {
		return nil, err
	}
	return inc.Snapshot().BC(), nil
}

// BCView returns the current epoch's score vector without copying. The
// epoch is immutable, so the slice is safe to read concurrently with
// mutations — but it must not be written.
func (e *Entry) BCView() ([]float64, error) {
	inc, err := e.ready()
	if err != nil {
		return nil, err
	}
	return inc.Snapshot().BCView(), nil
}

// VertexScore pairs a vertex with its score.
type VertexScore struct {
	Vertex graph.V `json:"vertex"`
	Score  float64 `json:"bc"`
}

// TopK returns the k highest-BC vertices (score desc, ties by vertex id) and
// the total vertex count. k <= 0 means all vertices. The returned slice is
// freshly allocated; the request path uses a rankScratch instead.
func (e *Entry) TopK(k int) ([]VertexScore, int, error) {
	bc, err := e.BCView()
	if err != nil {
		return nil, 0, err
	}
	var scr rankScratch
	top := scr.topK(bc, k)
	return append([]VertexScore(nil), top...), len(bc), nil
}

// rankScratch is reusable top-K ranking scratch. Handlers check one out of
// topKScratch per request and return it after the response is encoded, so a
// warm daemon ranks without allocating.
type rankScratch struct {
	all []VertexScore
}

// topKScratch pools rankScratch instances across requests (and the census
// path's redundancy sampling reuses the same pool through topKOf).
var topKScratch = sync.Pool{New: func() any { return new(rankScratch) }}

// compareVertexScore orders score desc, ties by vertex id. A named function
// (not a capturing closure) keeps the sort allocation-free.
func compareVertexScore(a, b VertexScore) int {
	switch {
	case a.Score > b.Score:
		return -1
	case a.Score < b.Score:
		return 1
	case a.Vertex < b.Vertex:
		return -1
	case a.Vertex > b.Vertex:
		return 1
	}
	return 0
}

// topK ranks a score vector into the scratch's reusable buffer: score desc,
// ties by vertex id, k <= 0 means all vertices. The returned slice aliases
// the scratch and is valid until the next topK call on it.
func (scr *rankScratch) topK(scores []float64, k int) []VertexScore {
	if cap(scr.all) < len(scores) {
		scr.all = make([]VertexScore, len(scores))
	}
	all := scr.all[:len(scores)]
	for v, s := range scores {
		all[v] = VertexScore{Vertex: graph.V(v), Score: s}
	}
	slices.SortFunc(all, compareVertexScore)
	if k <= 0 || k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// topKOf is the convenience form over a pooled scratch for callers that can
// tolerate one copy (k results, not n).
func topKOf(scores []float64, k int) []VertexScore {
	scr := topKScratch.Get().(*rankScratch)
	top := append([]VertexScore(nil), scr.topK(scores, k)...)
	topKScratch.Put(scr)
	return top
}

// VertexInfo is the single-vertex view.
type VertexInfo struct {
	Vertex graph.V `json:"vertex"`
	Score  float64 `json:"bc"`
	// Rank is 1-based by descending score (ties share the better rank).
	Rank      int  `json:"rank"`
	OutDegree int  `json:"out_degree"`
	InDegree  *int `json:"in_degree,omitempty"` // directed graphs only
	// IsArticulation reports whether the vertex is a boundary articulation
	// point of the cached decomposition.
	IsArticulation bool `json:"is_articulation"`
}

// Vertex returns the per-vertex view of v. Score, rank and degrees all come
// from one epoch snapshot, so the view is internally consistent even if a
// mutation lands mid-request.
func (e *Entry) Vertex(v int) (VertexInfo, error) {
	inc, err := e.ready()
	if err != nil {
		return VertexInfo{}, err
	}
	snap := inc.Snapshot()
	g := snap.Graph
	if v < 0 || v >= g.NumVertices() {
		return VertexInfo{}, &VertexRangeError{Vertex: v, N: g.NumVertices()}
	}
	bc := snap.BCView()
	info := VertexInfo{
		Vertex:    graph.V(v),
		Score:     bc[v],
		OutDegree: g.OutDegree(graph.V(v)),
	}
	rank := 1
	for _, s := range bc {
		if s > info.Score {
			rank++
		}
	}
	info.Rank = rank
	if g.Directed() {
		in := g.InDegree(graph.V(v))
		info.InDegree = &in
	}
	for _, sg := range snap.Decomposition.Subgraphs {
		l := sg.LocalID(graph.V(v))
		if l >= 0 && sg.IsArt[l] {
			info.IsArticulation = true
			break
		}
	}
	return info, nil
}

// VertexRangeError reports a vertex id outside [0, N).
type VertexRangeError struct{ Vertex, N int }

func (e *VertexRangeError) Error() string {
	return fmt.Sprintf("server: vertex %d out of range [0,%d)", e.Vertex, e.N)
}

// Mutate inserts (add=true) or removes the edge (u,v) through the
// incremental engine and reports whether the update stayed local or forced a
// rebuild. The entry lock is held only to fetch the handle: concurrent
// mutators serialize inside the engine, readers keep serving the previous
// epoch throughout the recompute, and the new epoch becomes visible with one
// atomic pointer swap. The approximate-mode estimator is NOT touched here —
// it notices the new epoch sequence number lazily (approx.go). The
// registry's mutate hook feeds the Prometheus counters.
func (r *Registry) Mutate(e *Entry, add bool, u, v int32) (MutationResult, error) {
	inc, err := e.ready()
	if err != nil {
		return MutationResult{}, err
	}
	start := time.Now()
	before := inc.FullRebuilds()
	if add {
		err = inc.InsertEdge(u, v)
	} else {
		err = inc.RemoveEdge(u, v)
	}
	if err != nil {
		return MutationResult{}, err
	}
	snap := inc.Snapshot()
	res := MutationResult{
		Result: "local",
		Verts:  snap.Graph.NumVertices(),
		Edges:  snap.Graph.NumEdges(),
		TookMs: float64(time.Since(start)) / float64(time.Millisecond),
	}
	// Rebuild attribution via the counter delta; with concurrent mutators
	// the delta may credit a neighbor's rebuild, which only skews the
	// local/rebuild metric split, never the scores.
	if inc.FullRebuilds() > before {
		res.Result = "rebuild"
	}
	r.notifyMutate(res.Result)
	return res, nil
}

// Census builds the stats view (the bcstats census) of the entry. Redundancy
// analysis is sampled above sampleCutoff vertices so the endpoint stays
// cheap on big graphs.
func (e *Entry) Census() (metrics.GraphCensus, error) {
	inc, err := e.ready()
	if err != nil {
		return metrics.GraphCensus{}, err
	}
	snap := inc.Snapshot()
	g := snap.Graph
	const sampleCutoff = 4096
	sampleK := 0
	if g.NumVertices() > sampleCutoff {
		sampleK = 64
	}
	return core.BuildCensus(e.name, g, snap.Decomposition, core.CensusOptions{
		Threshold:         e.threshold,
		RedundancySampleK: sampleK,
		Seed:              1,
	}), nil
}
