package server

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// getWithHeaders issues a GET and returns status, body-decoded response and
// the two approx headers (empty when absent).
func getWithHeaders(t *testing.T, url string, out any) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, data, err)
		}
	}
	return resp.StatusCode, resp.Header.Get("X-BC-Error-Estimate"), resp.Header.Get("X-BC-Pivots")
}

// erSpec loads a 200-vertex Erdős–Rényi graph inline: essentially one big
// biconnected block, so the estimator has a sub-graph large enough to
// actually sample (everything in the tiny lifecycle graph presolves).
func erSpec(name string) (LoadSpec, *graph.Graph) {
	g := gen.ErdosRenyi(200, 800, false, 3)
	edges := make([][2]int32, 0, g.NumEdges())
	for _, e := range g.Edges() {
		edges = append(edges, [2]int32{e.From, e.To})
	}
	return LoadSpec{Name: name, N: g.NumVertices(), Edges: edges}, g
}

// TestApproxFullBudgetServesExact: pivots >= n must serve the exact scores
// with the exact flag, a zero error estimate, and both approx headers set.
func TestApproxFullBudgetServesExact(t *testing.T) {
	ts, _ := newTestServer(t)
	spec, _ := erSpec("er")
	loadAndWait(t, ts.URL, spec)

	exact := fetchScores(t, ts.URL, "er")
	var resp bcResponse
	code, errHdr, pivHdr := getWithHeaders(t,
		ts.URL+"/v1/graphs/er/bc?mode=approx&pivots=100000&top=0", &resp)
	if code != http.StatusOK {
		t.Fatalf("approx full budget returned %d", code)
	}
	if resp.Mode != "approx" || resp.Approx == nil {
		t.Fatalf("response not marked approx: %+v", resp)
	}
	if !resp.Approx.Exact || resp.Approx.ErrorEstimate != 0 {
		t.Fatalf("full budget not exact: %+v", *resp.Approx)
	}
	if errHdr == "" || pivHdr == "" {
		t.Fatalf("approx headers missing: err=%q pivots=%q", errHdr, pivHdr)
	}
	if hdr, _ := strconv.Atoi(pivHdr); hdr != resp.Approx.Pivots {
		t.Fatalf("X-BC-Pivots %q != body pivots %d", pivHdr, resp.Approx.Pivots)
	}
	if len(resp.Scores) != len(exact) {
		t.Fatalf("%d scores, want %d", len(resp.Scores), len(exact))
	}
	for v := range exact {
		if math.Abs(resp.Scores[v]-exact[v]) > 1e-9*(1+math.Abs(exact[v])) {
			t.Fatalf("vertex %d: approx-exact %v vs exact %v", v, resp.Scores[v], exact[v])
		}
	}
}

// TestApproxSampledQuery exercises the genuinely stochastic path: a budget
// below n must answer non-exact with a positive error estimate, and repeated
// queries only ever add pivots (the estimator refines, never restarts).
func TestApproxSampledQuery(t *testing.T) {
	ts, _ := newTestServer(t)
	spec, _ := erSpec("ers")
	loadAndWait(t, ts.URL, spec)

	var resp bcResponse
	code, errHdr, _ := getWithHeaders(t, ts.URL+"/v1/graphs/ers/bc?mode=approx&pivots=40", &resp)
	if code != http.StatusOK {
		t.Fatalf("approx returned %d", code)
	}
	a := *resp.Approx
	if a.Exact {
		t.Fatalf("40-pivot budget on 200 vertices came back exact: %+v", a)
	}
	if a.Pivots < 40 || int64(a.Pivots) >= a.ExactRoots {
		t.Fatalf("implausible pivot count: %+v", a)
	}
	if a.ErrorEstimate <= 0 {
		t.Fatalf("sampled estimate carries no error estimate: %+v", a)
	}
	if v, err := strconv.ParseFloat(errHdr, 64); err != nil || v != a.ErrorEstimate {
		t.Fatalf("X-BC-Error-Estimate %q != body %v", errHdr, a.ErrorEstimate)
	}
	if len(resp.Top) != 10 {
		t.Fatalf("default top-K length %d, want 10", len(resp.Top))
	}

	// eps-driven follow-up on the same estimator: pivots must not shrink.
	var resp2 bcResponse
	code, _, _ = getWithHeaders(t, ts.URL+"/v1/graphs/ers/bc?mode=approx&eps=0.5", &resp2)
	if code != http.StatusOK {
		t.Fatalf("approx eps query returned %d", code)
	}
	if resp2.Approx.Pivots < a.Pivots {
		t.Fatalf("pivot count shrank: %d -> %d", a.Pivots, resp2.Approx.Pivots)
	}

	// The metrics endpoint must expose the new families with the graph label.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`bcd_approx_pivots_total{graph="ers"}`,
		`bcd_approx_error_estimate{graph="ers"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestApproxBadParams covers the 400 paths.
func TestApproxBadParams(t *testing.T) {
	ts, _ := newTestServer(t)
	loadAndWait(t, ts.URL, LoadSpec{Name: "g", N: lifecycleN, Edges: lifecycleEdges})
	for _, q := range []string{
		"mode=bogus",
		"mode=approx&pivots=0",
		"mode=approx&pivots=-3",
		"mode=approx&eps=0",
		"mode=approx&eps=nope",
	} {
		if code, _, _ := getWithHeaders(t, ts.URL+"/v1/graphs/g/bc?"+q, nil); code != http.StatusBadRequest {
			t.Fatalf("query %q returned %d, want 400", q, code)
		}
	}
}

// TestApproxInvalidatedByMutation: after an edge mutation the estimator is
// rebuilt, so a full-budget approx query reflects the mutated graph.
func TestApproxInvalidatedByMutation(t *testing.T) {
	ts, _ := newTestServer(t)
	spec, _ := erSpec("erm")
	loadAndWait(t, ts.URL, spec)

	// Warm the estimator with a sampled query, then mutate.
	if code, _, _ := getWithHeaders(t, ts.URL+"/v1/graphs/erm/bc?mode=approx&pivots=40", nil); code != http.StatusOK {
		t.Fatalf("warmup returned %d", code)
	}
	if code := do(t, "POST", ts.URL+"/v1/graphs/erm/edges",
		edgeRequest{From: 0, To: 199}, nil); code != http.StatusOK {
		t.Fatalf("edge insert failed: %d", code)
	}
	exact := fetchScores(t, ts.URL, "erm")
	var resp bcResponse
	code, _, _ := getWithHeaders(t, ts.URL+"/v1/graphs/erm/bc?mode=approx&pivots=100000&top=0", &resp)
	if code != http.StatusOK {
		t.Fatalf("post-mutation approx returned %d", code)
	}
	if !resp.Approx.Exact {
		t.Fatalf("full budget not exact after mutation: %+v", *resp.Approx)
	}
	for v := range exact {
		if math.Abs(resp.Scores[v]-exact[v]) > 1e-9*(1+math.Abs(exact[v])) {
			t.Fatalf("vertex %d stale after mutation: %v vs %v", v, resp.Scores[v], exact[v])
		}
	}
}
