package server

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// triangleSpec is the smallest useful inline load.
func triangleSpec(name string) LoadSpec {
	return LoadSpec{Name: name, Edges: [][2]int32{{0, 1}, {1, 2}, {2, 0}}}
}

// waitState polls until the entry leaves StateLoading.
func waitState(t *testing.T, e *Entry) EntryInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		info := e.Info()
		if info.State != StateLoading {
			return info
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("graph %q still loading after 30s", e.Name())
	return EntryInfo{}
}

func TestRegistryLoadLifecycle(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()

	e, err := r.Load(triangleSpec("tri"))
	if err != nil {
		t.Fatal(err)
	}
	info := waitState(t, e)
	if info.State != StateReady {
		t.Fatalf("state = %s (%s), want ready", info.State, info.Error)
	}
	if info.Verts != 3 || info.Edges != 3 {
		t.Fatalf("info = %+v, want 3 verts / 3 edges", info)
	}
	bc, err := e.BC()
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range bc {
		if s != 0 {
			t.Fatalf("triangle bc[%d] = %v, want 0", v, s)
		}
	}
	if n := r.NumReady(); n != 1 {
		t.Fatalf("NumReady = %d, want 1", n)
	}
	if !r.Unload("tri") {
		t.Fatal("unload reported missing")
	}
	if r.Get("tri") != nil {
		t.Fatal("entry survived unload")
	}
	if r.Unload("tri") {
		t.Fatal("double unload reported success")
	}
}

func TestRegistryLoadValidation(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()

	cases := []struct {
		name string
		spec LoadSpec
		want string
	}{
		{"bad name", LoadSpec{Name: "no spaces!", Dataset: "email-enron"}, "invalid graph name"},
		{"empty name", LoadSpec{Dataset: "email-enron"}, "invalid graph name"},
		{"no source", LoadSpec{Name: "empty"}, "needs one of"},
	}
	for _, tc := range cases {
		if _, err := r.Load(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	// Conflicts are typed so the HTTP layer can answer 409.
	if _, err := r.Load(triangleSpec("dup")); err != nil {
		t.Fatal(err)
	}
	_, err := r.Load(triangleSpec("dup"))
	if _, ok := err.(*ConflictError); !ok {
		t.Fatalf("duplicate load: err = %v, want ConflictError", err)
	}

	// A bad source fails asynchronously: the entry lands in StateFailed with
	// the cause, and stays queryable-as-failed.
	e, err := r.Load(LoadSpec{Name: "ghost", Dataset: "no-such-dataset"})
	if err != nil {
		t.Fatal(err)
	}
	info := waitState(t, e)
	if info.State != StateFailed || !strings.Contains(info.Error, "unknown dataset") {
		t.Fatalf("info = %+v, want failed/unknown dataset", info)
	}
	if _, err := e.BC(); err == nil {
		t.Fatal("BC on failed entry succeeded")
	}
}

func TestRegistryBoundedQueue(t *testing.T) {
	r := NewRegistry(Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	r.beforeBuild = func() {
		started <- struct{}{}
		<-gate
	}

	// First job occupies the single worker; second fills the queue; third
	// must be rejected rather than buffered without bound.
	if _, err := r.Load(triangleSpec("a")); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := r.Load(triangleSpec("b")); err != nil {
		t.Fatal(err)
	}
	_, err := r.Load(triangleSpec("c"))
	if err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("err = %v, want queue full", err)
	}

	close(gate)
	r.Close()

	// After shutdown, loads are refused and nothing is left loading: the
	// queued job either completed or was aborted by Close.
	if _, err := r.Load(triangleSpec("d")); err == nil {
		t.Fatal("load accepted after Close")
	}
	for _, name := range []string{"a", "b"} {
		e := r.Get(name)
		if e == nil {
			t.Fatalf("entry %q vanished", name)
		}
		if st := e.Info().State; st == StateLoading {
			t.Fatalf("entry %q still loading after Close", name)
		}
	}
}

func TestRegistryCloseAbortsQueued(t *testing.T) {
	r := NewRegistry(Config{Workers: 1, QueueDepth: 4})
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	r.beforeBuild = func() {
		started <- struct{}{}
		<-gate
	}
	if _, err := r.Load(triangleSpec("running")); err != nil {
		t.Fatal(err)
	}
	<-started
	eq, err := r.Load(triangleSpec("queued"))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		r.Close()
		close(done)
	}()
	// Wait until Close has actually canceled the job context before letting
	// the in-flight build proceed — otherwise the worker could drain both
	// jobs normally before Close gets scheduled.
	for r.ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	<-done
	// Shutdown aborts are StateAborted, NOT StateFailed: job polling must be
	// able to tell "the server went down" from "your graph didn't build".
	info := waitState(t, eq)
	if info.State != StateAborted {
		t.Fatalf("queued job state = %s, want aborted (shutdown, not failure)", info.State)
	}
	if !strings.Contains(info.Error, "shutdown") {
		t.Fatalf("abort reason %q does not name shutdown", info.Error)
	}
}

func TestRegistryLoadRejectsTraversalNames(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()
	// "." and ".." match the name charset but would escape DataDir when
	// joined into a durable path.
	for _, name := range []string{".", ".."} {
		spec := triangleSpec(name)
		if _, err := r.Load(spec); err == nil || !strings.Contains(err.Error(), "invalid graph name") {
			t.Fatalf("name %q: err = %v, want invalid graph name", name, err)
		}
	}
}

func TestRegistryOverloadTyped(t *testing.T) {
	r := NewRegistry(Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	r.beforeBuild = func() {
		started <- struct{}{}
		<-gate
	}
	defer func() {
		close(gate)
		r.Close()
	}()
	if _, err := r.Load(triangleSpec("a")); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := r.Load(triangleSpec("b")); err != nil {
		t.Fatal(err)
	}
	_, err := r.Load(triangleSpec("c"))
	var overload *OverloadError
	if !errors.As(err, &overload) {
		t.Fatalf("err = %T %v, want *OverloadError", err, err)
	}
	if overload.Op != "build" || overload.RetryAfter != 2*time.Second {
		t.Fatalf("overload = %+v, want build op with 2s retry", overload)
	}
}

func TestBuildGraphInlineEdges(t *testing.T) {
	g, err := buildGraph(LoadSpec{Edges: [][2]int32{{0, 5}}, Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 || !g.Directed() {
		t.Fatalf("got %v, want 6 directed vertices", g)
	}
	if _, err := buildGraph(LoadSpec{Edges: [][2]int32{{-1, 2}}}); err == nil {
		t.Fatal("negative vertex accepted")
	}
}
