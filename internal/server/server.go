package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/internal/graph"
)

// Server is the bcd HTTP API over a Registry. It implements http.Handler.
//
// Routes (all JSON unless noted):
//
//	POST   /v1/graphs                      load a graph (async; 202 + poll)
//	GET    /v1/graphs                      list loaded graphs
//	GET    /v1/graphs/{name}               status / info of one graph
//	DELETE /v1/graphs/{name}               unload
//	GET    /v1/graphs/{name}/bc?top=K      top-K scores (top=0: full array)
//	       …/bc?mode=approx&eps=E|pivots=K approximate scores from the cached
//	                                       sampling estimator (approx.go)
//	GET    /v1/graphs/{name}/vertices/{v}  one vertex's score, rank, degrees
//	POST   /v1/graphs/{name}/edges         insert an edge
//	DELETE /v1/graphs/{name}/edges         remove an edge
//	GET    /v1/graphs/{name}/stats         articulation-point census
//	GET    /healthz                        liveness (text)
//	GET    /metrics                        Prometheus text format
type Server struct {
	reg *Registry
	m   *Metrics
	mux *http.ServeMux
	log *log.Logger
}

// New builds a Server over reg. logger may be nil for silence. The returned
// server owns reg's metrics hooks.
func New(reg *Registry, logger *log.Logger) *Server {
	s := &Server{reg: reg, m: NewMetrics(), mux: http.NewServeMux(), log: logger}
	s.m.Hook(reg)
	s.route("POST /v1/graphs", s.handleLoad)
	s.route("GET /v1/graphs", s.handleList)
	s.route("GET /v1/graphs/{name}", s.handleGraph)
	s.route("DELETE /v1/graphs/{name}", s.handleUnload)
	s.route("GET /v1/graphs/{name}/bc", s.handleBC)
	s.route("GET /v1/graphs/{name}/vertices/{v}", s.handleVertex)
	s.route("POST /v1/graphs/{name}/edges", s.handleInsertEdge)
	s.route("DELETE /v1/graphs/{name}/edges", s.handleRemoveEdge)
	s.route("GET /v1/graphs/{name}/stats", s.handleStats)
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the server's metric bundle (the bcd main preloads gauges).
func (s *Server) Metrics() *Metrics { return s.m }

// statusWriter captures the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// route registers an instrumented handler under a Go 1.22 mux pattern
// ("METHOD /path/{wildcard}"). The pattern itself is the route label, so
// metric cardinality never grows with traffic.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		took := time.Since(start)
		s.m.ObserveRequest(pattern, r.Method, sw.code, took)
		if s.log != nil {
			s.log.Printf("%s %s -> %d (%s)", r.Method, r.URL.Path, sw.code, took)
		}
	})
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil && s.log != nil {
		s.log.Printf("server: encode response: %v", err)
	}
}

// writeError maps registry errors onto HTTP status codes. Overload and
// shutdown are server-side conditions (429/503), never 400: a client that
// did nothing wrong must not be told it did.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	var conflict *ConflictError
	var notReady *NotReadyError
	var vrange *VertexRangeError
	var overload *OverloadError
	var durability *DurabilityError
	switch {
	case errors.As(err, &overload):
		// Admission control: load shedding with an explicit backoff hint.
		retry := int(overload.RetryAfter / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrShutdown):
		code = http.StatusServiceUnavailable
	case errors.As(err, &durability):
		// The storage layer failed, not the request.
		code = http.StatusInternalServerError
	case errors.As(err, &conflict):
		code = http.StatusConflict
	case errors.As(err, &notReady):
		switch notReady.State {
		case StateLoading:
			// The canonical "come back later" answer for job polling.
			code = http.StatusConflict
		case StateAborted:
			// Shutdown took the build down, not a bad request.
			code = http.StatusServiceUnavailable
		default:
			code = http.StatusUnprocessableEntity
		}
	case errors.As(err, &vrange):
		code = http.StatusNotFound
	}
	s.writeJSON(w, code, errorBody{Error: err.Error()})
}

func (s *Server) writeNotFound(w http.ResponseWriter, name string) {
	s.writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("server: graph %q not loaded", name)})
}

// entry resolves {name}, writing 404 on a miss.
func (s *Server) entry(w http.ResponseWriter, r *http.Request) *Entry {
	name := r.PathValue("name")
	e := s.reg.Get(name)
	if e == nil {
		s.writeNotFound(w, name)
	}
	return e
}

// ---- handlers --------------------------------------------------------------

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var spec LoadSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad load spec: " + err.Error()})
		return
	}
	e, err := s.reg.Load(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, e.Info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Graphs []EntryInfo `json:"graphs"`
	}{s.reg.List()})
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	e := s.entry(w, r)
	if e == nil {
		return
	}
	s.writeJSON(w, http.StatusOK, e.Info())
}

func (s *Server) handleUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Unload(name) {
		s.writeNotFound(w, name)
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		Name     string `json:"name"`
		Unloaded bool   `json:"unloaded"`
	}{name, true})
}

type bcResponse struct {
	Name  string `json:"name"`
	Verts int    `json:"verts"`
	// Mode is "approx" for sampled responses (absent for exact ones), with
	// Approx carrying the estimator's accounting.
	Mode   string      `json:"mode,omitempty"`
	Approx *ApproxInfo `json:"approx,omitempty"`
	// Top is the top-K list; Scores is the full per-vertex array when the
	// request asked for everything (top=0).
	Top    []VertexScore `json:"top,omitempty"`
	Scores []float64     `json:"scores,omitempty"`
}

// defaultApproxEps is the eps target used when mode=approx names neither a
// pivot budget nor an eps.
const defaultApproxEps = 0.05

func (s *Server) handleBC(w http.ResponseWriter, r *http.Request) {
	e := s.entry(w, r)
	if e == nil {
		return
	}
	q := r.URL.Query()
	top := 10
	if raw := q.Get("top"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "top must be a non-negative integer"})
			return
		}
		top = v
	}

	resp := bcResponse{Name: e.Name()}
	var scores []float64
	switch mode := q.Get("mode"); mode {
	case "", "exact":
		if top > 0 {
			// Exact top-K: coalesced path. Identical queries on the same
			// epoch share one ranking pass (and concurrent duplicates block
			// on the first instead of redoing the sort), so the cached-read
			// lane costs O(k) per request while mutations rebuild.
			ranked, n, hit, err := e.TopKCoalesced(top)
			if err != nil {
				s.writeError(w, err)
				return
			}
			s.reg.notifyTopK(hit)
			resp.Verts = n
			resp.Top = ranked
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
		// The epoch's score vector is immutable, so the handler serves it
		// without copying; JSON encoding only reads it.
		var err error
		scores, err = e.BCView()
		if err != nil {
			s.writeError(w, err)
			return
		}
	case "approx":
		pivots := 0
		if raw := q.Get("pivots"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v <= 0 {
				s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "pivots must be a positive integer"})
				return
			}
			pivots = v
		}
		eps := defaultApproxEps
		if raw := q.Get("eps"); raw != "" {
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil || v <= 0 {
				s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "eps must be a positive number"})
				return
			}
			eps = v
		}
		var info ApproxInfo
		var err error
		scores, info, err = s.reg.ApproxBC(e, pivots, eps)
		if err != nil {
			s.writeError(w, err)
			return
		}
		resp.Mode = "approx"
		resp.Approx = &info
		w.Header().Set("X-BC-Error-Estimate", strconv.FormatFloat(info.ErrorEstimate, 'g', -1, 64))
		w.Header().Set("X-BC-Pivots", strconv.Itoa(info.Pivots))
	default:
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "mode must be exact or approx"})
		return
	}

	resp.Verts = len(scores)
	if top == 0 {
		resp.Scores = scores
	} else {
		// Rank into pooled scratch; the slice aliases it, so the scratch
		// goes back to the pool only after the response is encoded.
		scr := topKScratch.Get().(*rankScratch)
		defer topKScratch.Put(scr)
		resp.Top = scr.topK(scores, top)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	e := s.entry(w, r)
	if e == nil {
		return
	}
	v, err := strconv.Atoi(r.PathValue("v"))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "vertex id must be an integer"})
		return
	}
	info, err := e.Vertex(v)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

type edgeRequest struct {
	From graph.V `json:"from"`
	To   graph.V `json:"to"`
}

// edgeArgs reads (from, to) from the JSON body or, for bodyless DELETEs,
// from query parameters.
func edgeArgs(r *http.Request) (edgeRequest, error) {
	q := r.URL.Query()
	if q.Has("from") || q.Has("to") {
		from, err1 := strconv.Atoi(q.Get("from"))
		to, err2 := strconv.Atoi(q.Get("to"))
		if err1 != nil || err2 != nil {
			return edgeRequest{}, fmt.Errorf("from and to must be integers")
		}
		return edgeRequest{From: graph.V(from), To: graph.V(to)}, nil
	}
	var req edgeRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return edgeRequest{}, fmt.Errorf("bad edge body (want {\"from\":u,\"to\":v} or ?from=u&to=v): %w", err)
	}
	return req, nil
}

func (s *Server) mutate(w http.ResponseWriter, r *http.Request, add bool) {
	e := s.entry(w, r)
	if e == nil {
		return
	}
	req, err := edgeArgs(r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if r.Context().Err() != nil {
		// The client disconnected or canceled BEFORE we enqueued anything:
		// skip the write entirely and say so unambiguously. 499 (nginx's
		// "client closed request") rather than 400 — the request wasn't
		// malformed, it was abandoned. Once Mutate enqueues, it waits for
		// the outcome regardless of the client, so a 200 always means the
		// mutation was applied and an abort always means it was not.
		s.writeJSON(w, statusClientClosedRequest, canceledBody{
			Error:   "request canceled before any write",
			Applied: false,
		})
		return
	}
	res, err := s.reg.Mutate(e, add, req.From, req.To)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// statusClientClosedRequest is nginx's conventional code for a request the
// client abandoned; Go's net/http has no named constant for it.
const statusClientClosedRequest = 499

// canceledBody is the mutation-abort response: Applied is explicit so the
// effect-vs-abort status never has to be inferred from the status code.
type canceledBody struct {
	Error   string `json:"error"`
	Applied bool   `json:"applied"`
}

func (s *Server) handleInsertEdge(w http.ResponseWriter, r *http.Request) { s.mutate(w, r, true) }
func (s *Server) handleRemoveEdge(w http.ResponseWriter, r *http.Request) { s.mutate(w, r, false) }

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	e := s.entry(w, r)
	if e == nil {
		return
	}
	census, err := e.Census()
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, census)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.SampleWorkspacePool()
	if _, err := s.m.WriteTo(w); err != nil && s.log != nil {
		s.log.Printf("server: write metrics: %v", err)
	}
}
