package datasets

import (
	"testing"

	"repro/internal/bcc"
	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/graph"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("registry has %d datasets, want 12 (Table 1)", len(all))
	}
	seen := map[string]bool{}
	for _, d := range all {
		if d.Name == "" || d.Build == nil || d.BaseN < 64 {
			t.Fatalf("malformed dataset %+v", d)
		}
		if seen[d.Name] {
			t.Fatalf("duplicate dataset %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("wiki-talk")
	if err != nil || d.Name != "wiki-talk" {
		t.Fatalf("ByName: %v %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
	if len(Names()) != 12 {
		t.Fatal("Names wrong length")
	}
}

func TestBuildsAreSane(t *testing.T) {
	for _, d := range All() {
		g := d.Build(0.25)
		if g.Directed() != d.Directed {
			t.Fatalf("%s: directedness mismatch", d.Name)
		}
		if g.NumVertices() < 64 {
			t.Fatalf("%s: too few vertices at scale 0.25", d.Name)
		}
		if _, count := graph.ConnectedComponents(g); count != 1 {
			t.Fatalf("%s: not (weakly) connected: %d components", d.Name, count)
		}
		// Deterministic: same scale twice gives identical sizes.
		g2 := d.Build(0.25)
		if g2.NumVertices() != g.NumVertices() || g2.NumArcs() != g.NumArcs() {
			t.Fatalf("%s: nondeterministic build", d.Name)
		}
	}
}

func TestScaleGrows(t *testing.T) {
	d, _ := ByName("email-enron")
	small, big := d.Build(0.25), d.Build(1)
	if big.NumVertices() <= small.NumVertices() {
		t.Fatal("scale did not grow the graph")
	}
}

// Every stand-in must actually have the articulation structure APGRE
// exploits: a nontrivial decomposition with redundancy to eliminate
// (except controls). This pins the Figure 7 / Table 4 shape at small scale.
func TestStandInsHaveRedundancy(t *testing.T) {
	for _, d := range All() {
		g := d.Build(0.25)
		dec, err := decompose.Decompose(g, decompose.Options{})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if len(dec.Subgraphs) < 2 {
			t.Fatalf("%s: decomposes into %d subgraphs — no structure", d.Name, len(dec.Subgraphs))
		}
		rep := core.AnalyzeRedundancy(g, dec, 64, 1)
		if rep.Partial+rep.Total < 0.05 {
			t.Fatalf("%s: redundancy %.2f+%.2f too low — stand-in mistuned",
				d.Name, rep.Partial, rep.Total)
		}
		// Leafy datasets must show substantial total redundancy.
		switch d.Name {
		case "email-euall", "wiki-talk", "soc-douban":
			if rep.Total < 0.25 {
				t.Fatalf("%s: total redundancy %.2f, want >= 0.25", d.Name, rep.Total)
			}
		}
	}
}

func TestHumanDisease(t *testing.T) {
	d, g := HumanDisease()
	if d.Name != "human-disease" || g.NumVertices() != 1419 {
		t.Fatalf("human disease stand-in wrong: %v %v", d, g)
	}
	aps, deg1 := bcc.CountArticulationPoints(g)
	if aps < 50 || deg1 < 100 {
		t.Fatalf("expected many APs/leaves (Figure 2), got %d/%d", aps, deg1)
	}
}
