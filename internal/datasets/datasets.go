// Package datasets is the registry of synthetic stand-ins for the paper's
// twelve evaluation graphs (Table 1). The real SNAP/DIMACS files are not
// available offline; per DESIGN.md §3 each stand-in is a seeded generator
// tuned to land in the original's structural band: directedness, density,
// top-sub-graph share (Table 4) and degree-1/leaf fraction (Figure 7's
// total-redundancy driver).
//
// Sizes: BaseN is the default benchmark size (scale=1), chosen so a full
// serial-Brandes sweep stays laptop-feasible; PaperVerts/PaperEdges record
// the original sizes for Table 1 reporting. The Build(scale) knob scales the
// vertex count (structure knobs stay fixed).
package datasets

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Dataset describes one evaluation graph.
type Dataset struct {
	Name        string
	Description string
	PaperVerts  int64
	PaperEdges  int64
	Directed    bool
	BaseN       int
	Build       func(scale float64) *graph.Graph
}

func scaled(baseN int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(baseN) * scale)
	if n < 64 {
		n = 64
	}
	return n
}

func social(baseN int, p gen.SocialParams) func(float64) *graph.Graph {
	return func(scale float64) *graph.Graph {
		q := p
		q.N = scaled(baseN, scale)
		q.Communities = int(math.Max(4, float64(p.Communities)*math.Sqrt(scale)))
		return gen.SocialLike(q)
	}
}

func web(baseN int, p gen.WebParams) func(float64) *graph.Graph {
	return func(scale float64) *graph.Graph {
		q := p
		q.N = scaled(baseN, scale)
		q.Sites = int(math.Max(4, float64(p.Sites)*math.Sqrt(scale)))
		return gen.WebLike(q)
	}
}

func road(baseRows, baseCols int, p gen.RoadParams) func(float64) *graph.Graph {
	return func(scale float64) *graph.Graph {
		if scale <= 0 {
			scale = 1
		}
		q := p
		f := math.Sqrt(scale)
		q.Rows = int(math.Max(8, float64(baseRows)*f))
		q.Cols = int(math.Max(8, float64(baseCols)*f))
		return gen.RoadLike(q)
	}
}

// All returns the twelve Table 1 stand-ins in the paper's order.
func All() []Dataset {
	return []Dataset{
		{
			Name:        "email-enron",
			Description: "Enron email network (undirected, dense hubs, ~31% leaf fold)",
			PaperVerts:  36692, PaperEdges: 367662, Directed: false, BaseN: 2400,
			Build: social(2400, gen.SocialParams{AvgDeg: 14, Communities: 60,
				TopShare: 0.55, LeafFrac: 0.30, Seed: 101}),
		},
		{
			Name:        "email-euall",
			Description: "EU institution email (directed, very sparse, ~70% single-edge sources)",
			PaperVerts:  265214, PaperEdges: 420045, Directed: true, BaseN: 4000,
			Build: social(4000, gen.SocialParams{AvgDeg: 4, Communities: 120,
				TopShare: 0.14, LeafFrac: 0.70, Directed: true, Reciprocity: 0.25, Seed: 102}),
		},
		{
			Name:        "slashdot0811",
			Description: "Slashdot Zoo (directed, dense top community, few leaves)",
			PaperVerts:  77360, PaperEdges: 905468, Directed: true, BaseN: 2200,
			Build: social(2200, gen.SocialParams{AvgDeg: 16, Communities: 80,
				TopShare: 0.70, LeafFrac: 0.12, Directed: true, Reciprocity: 0.8, Seed: 103}),
		},
		{
			Name:        "soc-douban",
			Description: "DouBan social network (directed, ~67% leaf fold)",
			PaperVerts:  154908, PaperEdges: 654188, Directed: true, BaseN: 3200,
			Build: social(3200, gen.SocialParams{AvgDeg: 8, Communities: 150,
				TopShare: 0.34, LeafFrac: 0.65, Directed: true, Reciprocity: 0.4, Seed: 104}),
		},
		{
			Name:        "wiki-talk",
			Description: "Wikipedia talk pages (directed, 80% partial redundancy off a 26% top core)",
			PaperVerts:  2394385, PaperEdges: 5021410, Directed: true, BaseN: 5000,
			Build: social(5000, gen.SocialParams{AvgDeg: 5, Communities: 300,
				TopShare: 0.26, LeafFrac: 0.30, Directed: true, Reciprocity: 0.3, Seed: 105}),
		},
		{
			Name:        "dblp-2010",
			Description: "DBLP collaboration (reciprocal, two large communities, ~49% partial)",
			PaperVerts:  326186, PaperEdges: 1615400, Directed: true, BaseN: 3600,
			Build: social(3600, gen.SocialParams{AvgDeg: 10, Communities: 140,
				TopShare: 0.46, LeafFrac: 0.42, Directed: true, Reciprocity: 0.95, Seed: 106}),
		},
		{
			Name:        "com-youtube",
			Description: "YouTube friendships (undirected, ~53% leaf fold)",
			PaperVerts:  1134890, PaperEdges: 5975248, Directed: false, BaseN: 4400,
			Build: social(4400, gen.SocialParams{AvgDeg: 10, Communities: 200,
				TopShare: 0.46, LeafFrac: 0.53, Seed: 107}),
		},
		{
			Name:        "web-notredame",
			Description: "Notre Dame web crawl (directed hierarchical sites, 64% partial)",
			PaperVerts:  325729, PaperEdges: 1497134, Directed: true, BaseN: 3200,
			Build: web(3200, gen.WebParams{Sites: 120, AvgDeg: 9, LeafFrac: 0.30, Seed: 108}),
		},
		{
			Name:        "web-berkstan",
			Description: "Berkeley–Stanford crawl (directed, dense top site)",
			PaperVerts:  685230, PaperEdges: 7600595, Directed: true, BaseN: 3000,
			Build: web(3000, gen.WebParams{Sites: 50, AvgDeg: 20, LeafFrac: 0.10, Seed: 109}),
		},
		{
			Name:        "web-google",
			Description: "Google contest web graph (directed, dominant top component)",
			PaperVerts:  875713, PaperEdges: 5105039, Directed: true, BaseN: 3400,
			Build: web(3400, gen.WebParams{Sites: 150, AvgDeg: 11, LeafFrac: 0.15, Seed: 110}),
		},
		{
			Name:        "usa-roadny",
			Description: "New York road network (undirected grid-like, 88% in top sub-graph)",
			PaperVerts:  264346, PaperEdges: 733846, Directed: false, BaseN: 3600,
			Build: road(60, 60, gen.RoadParams{DeleteFrac: 0.08, SpurFrac: 0.10, SpurLen: 3, Seed: 111}),
		},
		{
			Name:        "usa-roadbay",
			Description: "SF Bay Area road network (undirected, sparser deletions, more spurs)",
			PaperVerts:  321270, PaperEdges: 800172, Directed: false, BaseN: 4000,
			Build: road(63, 63, gen.RoadParams{DeleteFrac: 0.12, SpurFrac: 0.18, SpurLen: 4, Seed: 112}),
		},
	}
}

// ByName returns the dataset with the given name.
func ByName(name string) (Dataset, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("datasets: unknown dataset %q (see datasets.All)", name)
}

// Names returns all dataset names in order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.Name
	}
	return out
}

// HumanDisease returns the Figure 2 motivation graph stand-in.
func HumanDisease() (Dataset, *graph.Graph) {
	d := Dataset{
		Name:        "human-disease",
		Description: "Human Disease Network (Figure 2: 1419 vertices, 3926 edges)",
		PaperVerts:  1419, PaperEdges: 3926, BaseN: 1419,
	}
	return d, gen.HumanDiseaseLike(29)
}
