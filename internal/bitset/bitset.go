// Package bitset provides a compact, fixed-capacity bit set used by the BFS
// and decomposition substrates for visited/frontier bookkeeping.
//
// The set is not safe for concurrent mutation of the same word; callers that
// share a set across goroutines must either partition the index space so no
// two goroutines touch the same 64-bit word, or use the atomic variants
// (TrySet, GetAtomic).
package bitset

import (
	"math/bits"
	"sync/atomic"
)

// Bitset is a fixed-capacity set of non-negative integers below Len().
type Bitset struct {
	words []uint64
	n     int
}

// New returns a Bitset able to hold values in [0, n).
func New(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity the set was created with.
func (b *Bitset) Len() int { return b.n }

// Set marks i as a member. i must be in [0, Len()).
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether i is a member.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// TrySet atomically sets bit i and reports whether this call changed it
// (i.e. returns false if the bit was already set). Safe for concurrent use.
func (b *Bitset) TrySet(i int) bool {
	w := &b.words[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// GetAtomic reports membership with an atomic load. Safe for concurrent use.
func (b *Bitset) GetAtomic(i int) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(1<<(uint(i)&63)) != 0
}

// Reset clears every bit without reallocating.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of members.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls fn for every member in increasing order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi<<6 + tz)
			w &= w - 1
		}
	}
}

// NumWords returns the number of 64-bit words backing the set. Together with
// Word it lets traversals iterate word-granular — e.g. a bottom-up BFS sweep
// claiming one word of unvisited vertices per worker so plain (non-atomic)
// Set calls on that word are race-free.
func (b *Bitset) NumWords() int { return len(b.words) }

// Word returns the wi-th backing word; bit k of Word(wi) is member wi*64+k.
// Bits at or beyond Len() are always zero.
func (b *Bitset) Word(wi int) uint64 { return b.words[wi] }

// WordAt returns the backing word containing member i together with the base
// member id of that word (base = i &^ 63), so bit k of word is member base+k.
// The word-lane view of a set: the MS-BFS engine treats each 64-bit word as
// one batch of root lanes.
func (b *Bitset) WordAt(i int) (word uint64, base int) {
	return b.words[i>>6], i &^ 63
}

// SetWord overwrites the wi-th backing word. The caller is responsible for
// keeping bits at or beyond Len() zero (LaneMask helps).
func (b *Bitset) SetWord(wi int, w uint64) { b.words[wi] = w }

// OrWord merges mask into the wi-th backing word — the word-granular analogue
// of Set, used when a traversal owns whole words of the index space.
func (b *Bitset) OrWord(wi int, mask uint64) { b.words[wi] |= mask }

// AndNotWord clears every mask bit from the wi-th backing word — the
// word-granular analogue of Clear.
func (b *Bitset) AndNotWord(wi int, mask uint64) { b.words[wi] &^= mask }

// ForEachWord calls fn for every backing word in increasing index order,
// including zero words; fn may inspect a whole 64-lane batch at once.
func (b *Bitset) ForEachWord(fn func(wi int, w uint64)) {
	for wi, w := range b.words {
		fn(wi, w)
	}
}

// LaneMask returns a word with the low k lanes set: the membership mask of a
// partial batch of k < 64 roots. k is clamped to [0, 64]; LaneMask(64) is all
// ones.
func LaneMask(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k)) - 1
}

// ForEachLane calls fn for every set lane of word in increasing order. The
// per-word iteration primitive of the MS-BFS engine's cooler paths (its hot
// loops inline the same bit trick).
func ForEachLane(word uint64, fn func(lane int)) {
	for word != 0 {
		fn(bits.TrailingZeros64(word))
		word &= word - 1
	}
}

// Union sets b = b ∪ other. Both sets must have the same capacity.
func (b *Bitset) Union(other *Bitset) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// Clone returns a deep copy of the set.
func (b *Bitset) Clone() *Bitset {
	nb := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(nb.words, b.words)
	return nb
}
