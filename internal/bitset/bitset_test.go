package bitset

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count after clear = %d, want 7", got)
	}
}

func TestReset(t *testing.T) {
	b := New(1000)
	for i := 0; i < 1000; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("Count after Reset = %d, want 0", b.Count())
	}
}

func TestForEachOrder(t *testing.T) {
	b := New(300)
	want := []int{2, 5, 63, 64, 100, 255, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d members, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ForEach[%d] = %d, want %d", k, got[k], want[k])
		}
	}
}

func TestTrySetConcurrent(t *testing.T) {
	const n = 4096
	b := New(n)
	var wins int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			local := 0
			for k := 0; k < 20000; k++ {
				if b.TrySet(r.Intn(n)) {
					local++
				}
			}
			mu.Lock()
			wins += int64(local)
			mu.Unlock()
		}(int64(w))
	}
	wg.Wait()
	if int(wins) != b.Count() {
		t.Fatalf("TrySet wins %d != Count %d: a bit was won twice", wins, b.Count())
	}
}

func TestUnionClone(t *testing.T) {
	a, b := New(200), New(200)
	a.Set(3)
	a.Set(100)
	b.Set(100)
	b.Set(150)
	c := a.Clone()
	c.Union(b)
	for _, i := range []int{3, 100, 150} {
		if !c.Get(i) {
			t.Fatalf("union missing %d", i)
		}
	}
	if c.Count() != 3 {
		t.Fatalf("union Count = %d, want 3", c.Count())
	}
	// Clone must be independent.
	c.Set(7)
	if a.Get(7) {
		t.Fatal("Clone aliases original storage")
	}
}

// Property: membership after a sequence of sets matches a map-based model.
func TestQuickModel(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := New(1 << 16)
		model := map[int]bool{}
		for _, u := range idxs {
			b.Set(int(u))
			model[int(u)] = true
		}
		if b.Count() != len(model) {
			return false
		}
		for i := range model {
			if !b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWordAccess(t *testing.T) {
	b := New(130)
	if got := b.NumWords(); got != 3 {
		t.Fatalf("NumWords = %d, want 3", got)
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(129)
	if got := b.Word(0); got != 1|1<<63 {
		t.Fatalf("Word(0) = %#x", got)
	}
	if got := b.Word(1); got != 1 {
		t.Fatalf("Word(1) = %#x", got)
	}
	if got := b.Word(2); got != 1<<1 {
		t.Fatalf("Word(2) = %#x", got)
	}
	// Reconstructing membership from words must agree with ForEach.
	var fromWords []int
	for wi := 0; wi < b.NumWords(); wi++ {
		w := b.Word(wi)
		for k := 0; k < 64; k++ {
			if w&(1<<uint(k)) != 0 {
				fromWords = append(fromWords, wi*64+k)
			}
		}
	}
	var fromEach []int
	b.ForEach(func(i int) { fromEach = append(fromEach, i) })
	if len(fromWords) != len(fromEach) {
		t.Fatalf("word scan found %d members, ForEach %d", len(fromWords), len(fromEach))
	}
	for i := range fromEach {
		if fromWords[i] != fromEach[i] {
			t.Fatalf("word scan[%d] = %d, ForEach %d", i, fromWords[i], fromEach[i])
		}
	}
	if New(0).NumWords() != 0 {
		t.Fatal("zero-capacity set has backing words")
	}
}

func TestWordLaneHelpers(t *testing.T) {
	b := New(200)
	b.Set(5)
	b.Set(70)
	if w, base := b.WordAt(5); w != 1<<5 || base != 0 {
		t.Fatalf("WordAt(5) = %#x, %d", w, base)
	}
	if w, base := b.WordAt(70); w != 1<<6 || base != 64 {
		t.Fatalf("WordAt(70) = %#x, %d", w, base)
	}
	b.OrWord(1, 0xf0)
	for _, i := range []int{68, 69, 70, 71} {
		if !b.Get(i) {
			t.Fatalf("OrWord missed bit %d", i)
		}
	}
	b.AndNotWord(1, 0x30)
	if b.Get(68) || b.Get(69) || !b.Get(70) || !b.Get(71) {
		t.Fatal("AndNotWord cleared the wrong lanes")
	}
	b.SetWord(2, 0b101)
	if !b.Get(128) || b.Get(129) || !b.Get(130) {
		t.Fatal("SetWord wrote the wrong lanes")
	}
	// ForEachWord must reconstruct exactly the member set.
	var fromWords []int
	b.ForEachWord(func(wi int, w uint64) {
		ForEachLane(w, func(lane int) { fromWords = append(fromWords, wi*64+lane) })
	})
	var fromEach []int
	b.ForEach(func(i int) { fromEach = append(fromEach, i) })
	if len(fromWords) != len(fromEach) {
		t.Fatalf("word scan found %d members, ForEach %d", len(fromWords), len(fromEach))
	}
	for i := range fromEach {
		if fromWords[i] != fromEach[i] {
			t.Fatalf("word scan[%d] = %d, ForEach %d", i, fromWords[i], fromEach[i])
		}
	}
}

func TestLaneMask(t *testing.T) {
	cases := map[int]uint64{
		-1: 0, 0: 0, 1: 1, 2: 3, 63: ^uint64(0) >> 1, 64: ^uint64(0), 70: ^uint64(0),
	}
	for k, want := range cases {
		if got := LaneMask(k); got != want {
			t.Fatalf("LaneMask(%d) = %#x, want %#x", k, got, want)
		}
	}
	// LaneMask(k) must agree with setting lanes 0..k-1 one by one.
	for k := 0; k <= 64; k++ {
		var want uint64
		for l := 0; l < k; l++ {
			want |= 1 << uint(l)
		}
		if got := LaneMask(k); got != want {
			t.Fatalf("LaneMask(%d) = %#x, want %#x", k, got, want)
		}
	}
}

func TestForEachLaneOrder(t *testing.T) {
	var got []int
	ForEachLane(1|1<<7|1<<63, func(lane int) { got = append(got, lane) })
	want := []int{0, 7, 63}
	if len(got) != len(want) {
		t.Fatalf("ForEachLane visited %d lanes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEachLane[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	ForEachLane(0, func(int) { t.Fatal("ForEachLane visited a lane of the zero word") })
}

func TestZeroCapacity(t *testing.T) {
	b := New(0)
	if b.Count() != 0 || b.Len() != 0 {
		t.Fatal("zero-capacity set misbehaves")
	}
	b2 := New(-5)
	if b2.Len() != 0 {
		t.Fatal("negative capacity not clamped")
	}
}
