package bitset

import (
	"math/bits"
	"testing"
)

// FuzzWordRoundTrip drives a Bitset with an interleaved op stream — bit sets,
// bit clears and whole-word writes — against a plain map model, then checks
// that the word-lane view (WordAt, Word, ForEachWord/ForEachLane) and the
// bit view (Get, Count, ForEach) reconstruct exactly the same membership.
// Each byte of data encodes one op: the low 2 bits pick the op, the rest
// (combined with a rolling position) pick the target.
func FuzzWordRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 64, 128, 7})
	f.Add([]byte{0x41, 0x00, 0xff, 0x81, 0x40, 0x23})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 300 // spans several words plus a partial tail word
		b := New(n)
		model := make(map[int]bool)
		pos := 0
		for _, op := range data {
			pos = (pos*31 + int(op>>2)) % n
			switch op & 3 {
			case 0:
				b.Set(pos)
				model[pos] = true
			case 1:
				b.Clear(pos)
				delete(model, pos)
			case 2:
				// Whole-word write derived from the op byte, masked so bits
				// at or beyond Len stay zero (SetWord's contract).
				wi := pos >> 6
				w := uint64(op) * 0x0101010101010101
				if base := wi << 6; n-base < 64 {
					w &= LaneMask(n - base)
				}
				b.SetWord(wi, w)
				for k := 0; k < 64; k++ {
					i := wi<<6 + k
					if i >= n {
						break
					}
					if w&(1<<uint(k)) != 0 {
						model[i] = true
					} else {
						delete(model, i)
					}
				}
			case 3:
				mask := uint64(op) << uint(pos&63)
				wi := pos >> 6
				if base := wi << 6; n-base < 64 {
					mask &= LaneMask(n - base)
				}
				b.OrWord(wi, mask)
				ForEachLane(mask, func(lane int) { model[wi<<6+lane] = true })
			}
		}
		if b.Count() != len(model) {
			t.Fatalf("Count = %d, model has %d members", b.Count(), len(model))
		}
		for i := 0; i < n; i++ {
			if b.Get(i) != model[i] {
				t.Fatalf("Get(%d) = %v, model %v", i, b.Get(i), model[i])
			}
		}
		// Word-lane round-trip: every member must be recoverable through
		// WordAt, and the word scan must visit each exactly once.
		visited := 0
		b.ForEachWord(func(wi int, w uint64) {
			if got := b.Word(wi); got != w {
				t.Fatalf("ForEachWord word %d = %#x, Word says %#x", wi, w, got)
			}
			visited += bits.OnesCount64(w)
			ForEachLane(w, func(lane int) {
				i := wi<<6 + lane
				if !model[i] {
					t.Fatalf("word scan found non-member %d", i)
				}
				if word, base := b.WordAt(i); base != wi<<6 || word&(1<<uint(lane)) == 0 {
					t.Fatalf("WordAt(%d) = %#x, %d: lane %d missing", i, word, base, lane)
				}
			})
		})
		if visited != len(model) {
			t.Fatalf("word scan visited %d members, model has %d", visited, len(model))
		}
	})
}
