package bcc

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// bruteArticulation decides articulation by vertex removal: v is an
// articulation point iff deleting it increases the number of connected
// components among the remaining vertices of its component.
func bruteArticulation(g *graph.Graph, v graph.V) bool {
	und := g.Undirected()
	n := und.NumVertices()
	if und.OutDegree(v) < 2 {
		return false
	}
	// Count components among vertices != v before and after.
	countComponents := func(skip graph.V) int {
		seen := make([]bool, n)
		comps := 0
		var stack []graph.V
		for s := graph.V(0); int(s) < n; s++ {
			if seen[s] || s == skip {
				continue
			}
			comps++
			stack = append(stack[:0], s)
			seen[s] = true
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range und.Out(u) {
					if w == skip || seen[w] {
						continue
					}
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		return comps
	}
	// Removing v turns its component into k pieces; v is an articulation
	// point iff k >= 2, i.e. the component count strictly rises.
	return countComponents(v) > countComponents(-1)
}

func apSet(g *graph.Graph) map[graph.V]bool {
	res := Find(g)
	out := map[graph.V]bool{}
	for _, v := range res.ArticulationPoints() {
		out[v] = true
	}
	return out
}

func TestPaperFigure3Graph(t *testing.T) {
	// The 13-vertex directed graph of paper Figure 3(a); its undirected view
	// has articulation points 2, 3 and 6 (§2.2). Edges transcribed from the
	// figure's structure: leaves 0,1 -> 2; core 2,4,5 around 3 and 6;
	// 6 -> {7,8,9} chain-free fan; 3 -> {12,10} with 10-12 linked.
	edges := []graph.Edge{
		{From: 0, To: 2}, {From: 1, To: 2},
		{From: 2, To: 5}, {From: 2, To: 4},
		{From: 5, To: 3}, {From: 5, To: 6}, {From: 4, To: 3}, {From: 4, To: 6},
		{From: 3, To: 12}, {From: 3, To: 10}, {From: 10, To: 12},
		{From: 6, To: 7}, {From: 6, To: 8}, {From: 7, To: 9}, {From: 8, To: 9},
	}
	g := graph.NewFromEdges(13, edges, true)
	aps := apSet(g)
	for _, want := range []graph.V{2, 3, 6} {
		if !aps[want] {
			t.Fatalf("vertex %d should be an articulation point; got %v", want, aps)
		}
	}
	if len(aps) != 3 {
		t.Fatalf("articulation points = %v, want exactly {2,3,6}", aps)
	}
}

func TestPathAllInteriorAPs(t *testing.T) {
	g := gen.Path(10)
	res := Find(g)
	for v := 1; v < 9; v++ {
		if !res.IsArticulation[v] {
			t.Fatalf("interior path vertex %d not marked", v)
		}
	}
	if res.IsArticulation[0] || res.IsArticulation[9] {
		t.Fatal("path endpoints wrongly marked")
	}
	if res.NumBlocks() != 9 {
		t.Fatalf("path blocks = %d, want 9 (each edge a bridge)", res.NumBlocks())
	}
}

func TestCycleNoAPs(t *testing.T) {
	res := Find(gen.Cycle(12))
	if len(res.ArticulationPoints()) != 0 {
		t.Fatalf("cycle has APs: %v", res.ArticulationPoints())
	}
	if res.NumBlocks() != 1 {
		t.Fatalf("cycle blocks = %d, want 1", res.NumBlocks())
	}
	if len(res.BlockVerts[0]) != 12 || len(res.BlockEdges[0]) != 12 {
		t.Fatal("cycle block contents wrong")
	}
}

func TestStarHubOnly(t *testing.T) {
	res := Find(gen.Star(8))
	aps := res.ArticulationPoints()
	if len(aps) != 1 || aps[0] != 0 {
		t.Fatalf("star APs = %v, want [0]", aps)
	}
	if res.NumBlocks() != 7 {
		t.Fatalf("star blocks = %d, want 7", res.NumBlocks())
	}
	if len(res.VertexBlocks[0]) != 7 {
		t.Fatalf("hub in %d blocks, want 7", len(res.VertexBlocks[0]))
	}
	if len(res.VertexBlocks[3]) != 1 {
		t.Fatal("leaf should be in exactly one block")
	}
}

func TestCompleteGraphOneBlock(t *testing.T) {
	res := Find(gen.Complete(7))
	if res.NumBlocks() != 1 || len(res.ArticulationPoints()) != 0 {
		t.Fatalf("K7: blocks=%d aps=%v", res.NumBlocks(), res.ArticulationPoints())
	}
}

func TestLollipop(t *testing.T) {
	res := Find(gen.Lollipop(5, 3))
	// Blocks: K5 + 3 bridges; APs: clique vertex 0 and the 2 interior path vertices.
	if res.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", res.NumBlocks())
	}
	aps := res.ArticulationPoints()
	if len(aps) != 3 {
		t.Fatalf("APs = %v, want 3 of them", aps)
	}
}

func TestDisconnected(t *testing.T) {
	// Two triangles sharing nothing + isolated vertex.
	g := graph.NewFromEdges(7, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0},
		{From: 3, To: 4}, {From: 4, To: 5}, {From: 5, To: 3},
	}, false)
	res := Find(g)
	if res.NumBlocks() != 2 {
		t.Fatalf("blocks = %d, want 2", res.NumBlocks())
	}
	if len(res.ArticulationPoints()) != 0 {
		t.Fatal("no APs expected")
	}
	if len(res.VertexBlocks[6]) != 0 {
		t.Fatal("isolated vertex should be in no block")
	}
}

func TestEdgesPartitioned(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 600, AvgDeg: 5, Communities: 8, TopShare: 0.5, LeafFrac: 0.3, Seed: 21})
	res := Find(g)
	total := 0
	seen := map[[2]graph.V]bool{}
	for _, edges := range res.BlockEdges {
		for _, e := range edges {
			key := [2]graph.V{e.From, e.To}
			if e.From > e.To {
				key = [2]graph.V{e.To, e.From}
			}
			if seen[key] {
				t.Fatalf("edge %v appears in two blocks", key)
			}
			seen[key] = true
			total++
		}
	}
	if int64(total) != g.Undirected().NumEdges() {
		t.Fatalf("blocks cover %d edges, graph has %d", total, g.Undirected().NumEdges())
	}
}

func TestVertexBlocksConsistency(t *testing.T) {
	g := gen.Caveman(5, 4, false)
	res := Find(g)
	for v := 0; v < g.NumVertices(); v++ {
		inBlocks := map[int32]bool{}
		for b, verts := range res.BlockVerts {
			for _, u := range verts {
				if u == graph.V(v) {
					inBlocks[int32(b)] = true
				}
			}
		}
		if len(inBlocks) != len(res.VertexBlocks[v]) {
			t.Fatalf("vertex %d: VertexBlocks len %d, actual %d", v, len(res.VertexBlocks[v]), len(inBlocks))
		}
		for _, b := range res.VertexBlocks[v] {
			if !inBlocks[b] {
				t.Fatalf("vertex %d: stale block id %d", v, b)
			}
		}
		// A vertex in >1 block must be an articulation point and vice versa
		// (within a connected graph).
		if (len(res.VertexBlocks[v]) > 1) != res.IsArticulation[v] {
			t.Fatalf("vertex %d: blocks=%d articulation=%v", v, len(res.VertexBlocks[v]), res.IsArticulation[v])
		}
	}
}

func TestAgainstBruteForce(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Tree(40, 1),
		gen.ErdosRenyi(30, 45, false, 2),
		gen.ErdosRenyi(30, 60, false, 3),
		gen.SocialLike(gen.SocialParams{N: 60, AvgDeg: 4, Communities: 4, TopShare: 0.5, LeafFrac: 0.2, Seed: 4}),
		gen.RoadLike(gen.RoadParams{Rows: 6, Cols: 6, DeleteFrac: 0.15, SpurFrac: 0.2, SpurLen: 2, Seed: 5}),
		gen.ErdosRenyi(25, 40, true, 6), // directed: undirected-view APs
	}
	for gi, g := range graphs {
		aps := apSet(g)
		for v := graph.V(0); int(v) < g.NumVertices(); v++ {
			want := bruteArticulation(g, v)
			if aps[v] != want {
				t.Fatalf("graph %d vertex %d: Find says %v, brute force says %v", gi, v, aps[v], want)
			}
		}
	}
}

// Property: on random graphs the articulation set matches brute force and
// blocks partition the edges.
func TestQuickBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(24, 30, false, seed)
		aps := apSet(g)
		for v := graph.V(0); int(v) < g.NumVertices(); v++ {
			if aps[v] != bruteArticulation(g, v) {
				return false
			}
		}
		res := Find(g)
		edgeCount := 0
		for _, es := range res.BlockEdges {
			edgeCount += len(es)
		}
		return int64(edgeCount) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCountArticulationPoints(t *testing.T) {
	aps, deg1 := CountArticulationPoints(gen.Star(10))
	if aps != 1 || deg1 != 9 {
		t.Fatalf("aps=%d deg1=%d", aps, deg1)
	}
}

func TestBlockVertsSortedStable(t *testing.T) {
	// Determinism: two runs produce identical output.
	g := gen.SocialLike(gen.SocialParams{N: 200, AvgDeg: 4, Communities: 5, TopShare: 0.4, LeafFrac: 0.25, Seed: 8})
	a, b := Find(g), Find(g)
	if a.NumBlocks() != b.NumBlocks() {
		t.Fatal("nondeterministic block count")
	}
	for i := range a.BlockVerts {
		av := append([]graph.V{}, a.BlockVerts[i]...)
		bv := append([]graph.V{}, b.BlockVerts[i]...)
		sort.Slice(av, func(x, y int) bool { return av[x] < av[y] })
		sort.Slice(bv, func(x, y int) bool { return bv[x] < bv[y] })
		if len(av) != len(bv) {
			t.Fatal("nondeterministic block contents")
		}
		for j := range av {
			if av[j] != bv[j] {
				t.Fatal("nondeterministic block contents")
			}
		}
	}
}
