// Package bcc finds articulation points and biconnected components with an
// iterative Hopcroft–Tarjan depth-first search (paper §4, Algorithm 1's
// FINDBCC, citing [32]) in O(|V|+|E|) time. It is iterative because the
// paper's inputs reach millions of vertices and recursion would overflow the
// goroutine stack on path-like graphs.
//
// A biconnected component ("block") is a maximal edge set in which every two
// edges lie on a common simple cycle; bridges are single-edge blocks. Any
// connected graph decomposes into a tree of blocks attached at articulation
// points (property 3 of §3.1), which is exactly the structure the APGRE
// decomposition consumes.
package bcc

import (
	"repro/internal/graph"
)

// Result describes the biconnected decomposition of the *undirected view* of
// a graph.
type Result struct {
	// IsArticulation[v] reports whether removing v disconnects its component.
	IsArticulation []bool
	// BlockEdges[b] lists the undirected edges of block b.
	BlockEdges [][]graph.Edge
	// BlockVerts[b] lists the distinct vertices of block b.
	BlockVerts [][]graph.V
	// VertexBlocks[v] lists the blocks containing v (several iff v is an
	// articulation point; empty iff v is isolated).
	VertexBlocks [][]int32
}

// NumBlocks returns the number of biconnected components.
func (r *Result) NumBlocks() int { return len(r.BlockEdges) }

// ArticulationPoints returns the sorted list of articulation points.
func (r *Result) ArticulationPoints() []graph.V {
	var out []graph.V
	for v, is := range r.IsArticulation {
		if is {
			out = append(out, graph.V(v))
		}
	}
	return out
}

type frame struct {
	u, parent  graph.V
	iter       int32
	parentSkip bool
}

// Find computes the biconnected decomposition. Directed graphs are analyzed
// through their underlying undirected structure, exactly as the paper's
// GRAPHPARTITION does (Algorithm 1 line 1: GETUNDG).
func Find(g *graph.Graph) *Result {
	und := g.Undirected()
	n := und.NumVertices()
	res := &Result{
		IsArticulation: make([]bool, n),
		VertexBlocks:   make([][]int32, n),
	}
	disc := make([]int32, n)
	low := make([]int32, n)
	for i := range disc {
		disc[i] = -1
	}
	var timer int32
	var stack []frame
	var edgeStack []graph.Edge
	rootChildren := 0
	inBlock := make([]int32, n) // scratch: last block id a vertex was added to
	for i := range inBlock {
		inBlock[i] = -1
	}

	emitBlock := func(until graph.Edge) {
		id := int32(len(res.BlockEdges))
		var edges []graph.Edge
		for {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			edges = append(edges, e)
			if e == until {
				break
			}
		}
		var verts []graph.V
		for _, e := range edges {
			for _, v := range [2]graph.V{e.From, e.To} {
				if inBlock[v] != id {
					inBlock[v] = id
					verts = append(verts, v)
					res.VertexBlocks[v] = append(res.VertexBlocks[v], id)
				}
			}
		}
		res.BlockEdges = append(res.BlockEdges, edges)
		res.BlockVerts = append(res.BlockVerts, verts)
	}

	for r := graph.V(0); int(r) < n; r++ {
		if disc[r] != -1 {
			continue
		}
		rootChildren = 0
		stack = append(stack[:0], frame{u: r, parent: -1})
		disc[r] = timer
		low[r] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.u
			adj := und.Out(u)
			if int(f.iter) < len(adj) {
				v := adj[f.iter]
				f.iter++
				if v == f.parent && !f.parentSkip {
					// Skip the single tree edge back to the parent (CSR has
					// deduplicated arcs, so there is exactly one).
					f.parentSkip = true
					continue
				}
				if disc[v] == -1 {
					if u == r {
						rootChildren++
					}
					edgeStack = append(edgeStack, graph.Edge{From: u, To: v})
					disc[v] = timer
					low[v] = timer
					timer++
					stack = append(stack, frame{u: v, parent: u})
				} else if disc[v] < disc[u] {
					// Back edge.
					edgeStack = append(edgeStack, graph.Edge{From: u, To: v})
					if disc[v] < low[u] {
						low[u] = disc[v]
					}
				}
				continue
			}
			// u is finished; fold into parent.
			stack = stack[:len(stack)-1]
			if f.parent < 0 {
				continue
			}
			p := f.parent
			if low[u] < low[p] {
				low[p] = low[u]
			}
			if low[u] >= disc[p] {
				// p separates u's subtree: emit the block ending at (p,u).
				emitBlock(graph.Edge{From: p, To: u})
				if p != r {
					res.IsArticulation[p] = true
				}
			}
		}
		if rootChildren > 1 {
			res.IsArticulation[r] = true
		}
	}
	return res
}

// CountArticulationPoints is a convenience for the motivation census
// (Figure 2): it returns the number of articulation points and the number of
// degree-1 vertices of the undirected view.
func CountArticulationPoints(g *graph.Graph) (aps, degree1 int) {
	res := Find(g)
	for _, is := range res.IsArticulation {
		if is {
			aps++
		}
	}
	und := g.Undirected()
	for v := 0; v < und.NumVertices(); v++ {
		if und.OutDegree(graph.V(v)) == 1 {
			degree1++
		}
	}
	return aps, degree1
}
