package community

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// twoCliques builds two K5s joined by a single bridge — the canonical
// Girvan–Newman test case: the bridge has maximal edge betweenness and its
// removal yields the obvious two communities.
func twoCliques() *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			edges = append(edges, graph.Edge{From: graph.V(u), To: graph.V(v)})
			edges = append(edges, graph.Edge{From: graph.V(u + 5), To: graph.V(v + 5)})
		}
	}
	edges = append(edges, graph.Edge{From: 0, To: 5})
	return graph.NewFromEdges(10, edges, false)
}

func TestGirvanNewmanTwoCliques(t *testing.T) {
	res, err := GirvanNewman(twoCliques(), Options{Target: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Communities != 2 {
		t.Fatalf("communities = %d, want 2", res.Communities)
	}
	// First removed edge must be the bridge.
	if len(res.Removed) != 1 || res.Removed[0] != (graph.Edge{From: 0, To: 5}) {
		t.Fatalf("removed = %v, want the bridge {0,5}", res.Removed)
	}
	// Cliques stay together.
	for v := 1; v < 5; v++ {
		if res.Labels[v] != res.Labels[0] {
			t.Fatalf("clique A split: labels %v", res.Labels)
		}
		if res.Labels[v+5] != res.Labels[5] {
			t.Fatalf("clique B split: labels %v", res.Labels)
		}
	}
	if res.Labels[0] == res.Labels[5] {
		t.Fatal("cliques not separated")
	}
	// Modularity of the 2-clique split: e_intra = 20/21, degree sums equal.
	if res.Modularity < 0.4 {
		t.Fatalf("modularity = %v, want > 0.4", res.Modularity)
	}
}

func TestGirvanNewmanModularityMode(t *testing.T) {
	// Without a target, the modularity-max partition on a 3-community graph
	// should find roughly 3 communities.
	g := gen.Caveman(3, 6, false)
	res, err := GirvanNewman(g, Options{MaxRemovals: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Communities < 2 || res.Communities > 4 {
		t.Fatalf("communities = %d, want ~3", res.Communities)
	}
	if res.Modularity <= 0 {
		t.Fatalf("modularity = %v", res.Modularity)
	}
}

func TestGirvanNewmanRejectsDirected(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, true, 1)
	if _, err := GirvanNewman(g, Options{Target: 2}); err == nil {
		t.Fatal("expected error for directed input")
	}
}

func TestGirvanNewmanEdgeless(t *testing.T) {
	g := graph.NewFromEdges(4, nil, false)
	res, err := GirvanNewman(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Communities != 4 {
		t.Fatalf("edgeless graph: %d communities, want 4", res.Communities)
	}
}

func TestModularity(t *testing.T) {
	g := twoCliques()
	// Everything in one community: Q = 1 - 1 = 0 (single community).
	all := make([]int32, 10)
	if q := Modularity(g, all); math.Abs(q) > 1e-12 {
		t.Fatalf("single-community Q = %v, want 0", q)
	}
	// Perfect split.
	split := []int32{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	q := Modularity(g, split)
	// m=21; intra=20; degree sums 21 each: Q = 20/21 - 2*(21/42)^2 = 20/21 - 0.5.
	want := 20.0/21.0 - 0.5
	if math.Abs(q-want) > 1e-12 {
		t.Fatalf("split Q = %v, want %v", q, want)
	}
	// Random labels score worse than the true split.
	bad := []int32{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	if Modularity(g, bad) >= q {
		t.Fatal("random labelling should not beat the true split")
	}
	if Modularity(graph.NewFromEdges(0, nil, false), nil) != 0 {
		t.Fatal("empty graph Q != 0")
	}
}
