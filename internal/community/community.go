// Package community implements Girvan–Newman community detection, the
// paper's motivating application [7]: communities emerge by repeatedly
// removing the edge with the highest betweenness (computed with the bundled
// exact edge-BC engine) until the graph splits into the requested number of
// components or modularity peaks.
package community

import (
	"fmt"

	"repro/internal/brandes"
	"repro/internal/graph"
)

// Result describes a detected community structure.
type Result struct {
	// Labels maps each vertex to a community id in [0, Communities).
	Labels []int32
	// Communities is the number of communities found.
	Communities int
	// Modularity is Newman's Q for the partition on the original graph.
	Modularity float64
	// Removed lists the cut edges in removal order.
	Removed []graph.Edge
}

// Options configures GirvanNewman.
type Options struct {
	// Target stops once the graph has at least this many components.
	// <= 0 selects the modularity-maximizing partition instead.
	Target int
	// MaxRemovals bounds edge removals (<= 0 means the edge count).
	MaxRemovals int
	// Workers parallelizes the per-iteration edge-BC computation.
	Workers int
}

// GirvanNewman runs the classic divisive algorithm on an undirected graph.
// Each iteration recomputes exact edge betweenness (O(nm)), removes the top
// edge, and records the partition; the best partition per Options is
// returned.
func GirvanNewman(g *graph.Graph, opt Options) (*Result, error) {
	if g.Directed() {
		return nil, fmt.Errorf("community: GirvanNewman requires an undirected graph")
	}
	if opt.MaxRemovals <= 0 {
		opt.MaxRemovals = int(g.NumEdges())
	}

	totalEdges := float64(g.NumEdges())
	degrees := make([]float64, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		degrees[v] = float64(g.OutDegree(graph.V(v)))
	}

	cur := g
	best := snapshot(g, degrees, totalEdges, nil)
	var removed []graph.Edge
	for iter := 0; iter < opt.MaxRemovals; iter++ {
		if cur.NumEdges() == 0 {
			break
		}
		scores := brandes.EdgeBCParallel(cur, opt.Workers)
		top := brandes.CombineUndirectedEdges(cur, scores)
		if len(top) == 0 {
			break
		}
		cut := top[0].Edge
		removed = append(removed, cut)
		var kept []graph.Edge
		for _, e := range cur.Edges() {
			if e != cut {
				kept = append(kept, e)
			}
		}
		cur = graph.NewFromEdges(g.NumVertices(), kept, false)

		snap := snapshot(cur, degrees, totalEdges, removed)
		if opt.Target > 0 {
			if snap.Communities >= opt.Target {
				return snap, nil
			}
			best = snap // keep the latest until the target is reached
			continue
		}
		if snap.Modularity > best.Modularity {
			best = snap
		}
	}
	return best, nil
}

// snapshot labels the current components and scores the partition's
// modularity against the ORIGINAL graph (degrees and edge count), which is
// how Girvan–Newman's Q is defined.
func snapshot(cur *graph.Graph, origDegree []float64, totalEdges float64, removed []graph.Edge) *Result {
	labels, count := graph.ConnectedComponents(cur)
	res := &Result{Labels: labels, Communities: count,
		Removed: append([]graph.Edge(nil), removed...)}
	if totalEdges == 0 {
		return res
	}
	// Q = Σ_c (e_c/m - (d_c/2m)^2): e_c = intra-community edges that remain
	// in the ORIGINAL graph. Count original edges whose endpoints share a
	// label; removed edges count too if their endpoints were re-joined by
	// another path (standard definition uses the original adjacency).
	intra := make([]float64, count)
	degSum := make([]float64, count)
	for v, d := range origDegree {
		degSum[labels[v]] += d
	}
	// Original adjacency: reconstruct intra counts from cur plus removed
	// edges whose endpoints still share a component.
	for _, e := range cur.Edges() {
		if labels[e.From] == labels[e.To] {
			intra[labels[e.From]]++
		}
	}
	for _, e := range removed {
		if labels[e.From] == labels[e.To] {
			intra[labels[e.From]]++
		}
	}
	for c := 0; c < count; c++ {
		res.Modularity += intra[c]/totalEdges - (degSum[c]/(2*totalEdges))*(degSum[c]/(2*totalEdges))
	}
	return res
}

// Modularity computes Newman's Q of an arbitrary labelling on g.
func Modularity(g *graph.Graph, labels []int32) float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	maxL := int32(0)
	for _, l := range labels {
		if l > maxL {
			maxL = l
		}
	}
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	intra := make([]float64, maxL+1)
	degSum := make([]float64, maxL+1)
	for v := 0; v < g.NumVertices(); v++ {
		degSum[labels[v]] += float64(g.OutDegree(graph.V(v)))
	}
	for _, e := range g.Edges() {
		if labels[e.From] == labels[e.To] {
			intra[labels[e.From]]++
		}
	}
	var q float64
	for c := range intra {
		q += intra[c]/m - (degSum[c]/(2*m))*(degSum[c]/(2*m))
	}
	return q
}
