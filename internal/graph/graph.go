// Package graph provides the Compressed Sparse Row (CSR) graph substrate the
// whole repository is built on, mirroring the storage the paper uses (§5.1:
// "the graphs are stored in Compressed Sparse Row (CSR) format").
//
// Graphs are unweighted and either directed or undirected. An undirected
// graph stores each edge as two arcs, so NumArcs == 2*NumEdges for it.
// Vertices are dense int32 identifiers in [0, NumVertices()).
package graph

import (
	"fmt"
	"sort"
)

// V is the vertex identifier type. The repository uses 32-bit ids throughout
// for cache efficiency, matching the scale of the paper's inputs (<= a few
// million vertices).
type V = int32

// Edge is a single (From, To) pair in an edge list.
type Edge struct {
	From, To V
}

// Graph is an immutable CSR graph. For directed graphs the in-adjacency
// (transpose) is built lazily on first use and cached; for undirected graphs
// the out-adjacency is symmetric so the transpose is the graph itself.
type Graph struct {
	n        int
	directed bool
	offs     []int64   // len n+1
	adj      []V       // out-neighbors, sorted per vertex
	wts      []float64 // arc weights, nil for unweighted graphs

	inOffs []int64 // directed only, lazy
	inAdj  []V
	inWts  []float64
}

// NewFromEdges builds a graph with n vertices from an edge list. Self-loops
// are dropped and parallel edges are deduplicated (both are standard
// preprocessing for exact BC: self-loops never lie on shortest paths and
// multi-arcs would inflate σ counts). For undirected graphs each input edge
// {u,v} is stored as the two arcs u->v and v->u regardless of input order,
// and duplicate opposite-order inputs collapse. Edges with endpoints outside
// [0, n) cause a panic, since silent truncation would corrupt experiments.
func NewFromEdges(n int, edges []Edge, directed bool) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	for _, e := range edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", e.From, e.To, n))
		}
	}
	// Count arcs.
	deg := make([]int64, n+1)
	addArc := func(u, v V) { deg[u+1]++ }
	for _, e := range edges {
		if e.From == e.To {
			continue
		}
		addArc(e.From, e.To)
		if !directed {
			addArc(e.To, e.From)
		}
	}
	offs := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offs[i+1] = offs[i] + deg[i+1]
	}
	adj := make([]V, offs[n])
	cur := make([]int64, n)
	put := func(u, v V) {
		adj[offs[u]+cur[u]] = v
		cur[u]++
	}
	for _, e := range edges {
		if e.From == e.To {
			continue
		}
		put(e.From, e.To)
		if !directed {
			put(e.To, e.From)
		}
	}
	g := &Graph{n: n, directed: directed, offs: offs, adj: adj}
	g.sortAndDedup()
	return g
}

// sortAndDedup sorts each adjacency list and removes duplicates, compacting
// the CSR arrays in place.
func (g *Graph) sortAndDedup() {
	newOffs := make([]int64, g.n+1)
	w := int64(0)
	for u := 0; u < g.n; u++ {
		lo, hi := g.offs[u], g.offs[u+1]
		row := g.adj[lo:hi]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		start := w
		for i := range row {
			if i > 0 && row[i] == row[i-1] {
				continue
			}
			g.adj[w] = row[i]
			w++
		}
		newOffs[u] = start
	}
	newOffs[g.n] = w
	// newOffs[u] currently holds start positions; shift into offsets form.
	offs := make([]int64, g.n+1)
	copy(offs, newOffs)
	offs[g.n] = w
	g.offs = offs
	g.adj = g.adj[:w:w]
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumArcs returns the number of stored arcs (directed edges). For an
// undirected graph this is twice the number of edges.
func (g *Graph) NumArcs() int64 { return g.offs[g.n] }

// NumEdges returns the number of logical edges: arcs for a directed graph,
// arcs/2 for an undirected one.
func (g *Graph) NumEdges() int64 {
	if g.directed {
		return g.NumArcs()
	}
	return g.NumArcs() / 2
}

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u V) int { return int(g.offs[u+1] - g.offs[u]) }

// Out returns the out-neighbors of u as a shared, read-only slice.
func (g *Graph) Out(u V) []V { return g.adj[g.offs[u]:g.offs[u+1]] }

// buildTranspose materializes the in-adjacency for directed graphs.
func (g *Graph) buildTranspose() {
	deg := make([]int64, g.n+1)
	for _, v := range g.adj {
		deg[v+1]++
	}
	inOffs := make([]int64, g.n+1)
	for i := 0; i < g.n; i++ {
		inOffs[i+1] = inOffs[i] + deg[i+1]
	}
	inAdj := make([]V, inOffs[g.n])
	var inWts []float64
	if g.wts != nil {
		inWts = make([]float64, inOffs[g.n])
	}
	cur := make([]int64, g.n)
	for u := 0; u < g.n; u++ {
		base := g.offs[u]
		for i, v := range g.Out(V(u)) {
			pos := inOffs[v] + cur[v]
			inAdj[pos] = V(u)
			if inWts != nil {
				inWts[pos] = g.wts[base+int64(i)]
			}
			cur[v]++
		}
	}
	g.inOffs, g.inAdj, g.inWts = inOffs, inAdj, inWts
}

// In returns the in-neighbors of u. For undirected graphs it is Out(u).
// The first call on a directed graph materializes the transpose; callers that
// will use In concurrently must call EnsureTranspose once beforehand.
func (g *Graph) In(u V) []V {
	if !g.directed {
		return g.Out(u)
	}
	if g.inOffs == nil {
		g.buildTranspose()
	}
	return g.inAdj[g.inOffs[u]:g.inOffs[u+1]]
}

// InDegree returns the in-degree of u (== OutDegree for undirected graphs).
func (g *Graph) InDegree(u V) int { return len(g.In(u)) }

// EnsureTranspose forces construction of the in-adjacency so subsequent In
// calls are read-only and goroutine-safe.
func (g *Graph) EnsureTranspose() {
	if g.directed && g.inOffs == nil {
		g.buildTranspose()
	}
}

// ArcBase returns the CSR position of u's first out-arc; u's i-th neighbor
// in Out(u) is arc ArcBase(u)+i. Arc positions index the per-arc score
// arrays of edge betweenness.
func (g *Graph) ArcBase(u V) int64 { return g.offs[u] }

// ArcPos returns the CSR position of arc u->v, or -1 if absent.
func (g *Graph) ArcPos(u, v V) int64 {
	row := g.Out(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if i < len(row) && row[i] == v {
		return g.offs[u] + int64(i)
	}
	return -1
}

// HasArc reports whether the arc u->v exists, by binary search.
func (g *Graph) HasArc(u, v V) bool {
	row := g.Out(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	return i < len(row) && row[i] == v
}

// Edges returns the logical edge list. For undirected graphs each edge
// appears once with From < To.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(V(u)) {
			if g.directed || V(u) < v {
				out = append(out, Edge{V(u), v})
			}
		}
	}
	return out
}

// Undirected returns the graph itself when already undirected, otherwise the
// symmetrized version (every arc made bidirectional). The paper's
// decomposition step operates on the underlying undirected structure
// (Algorithm 1's GETUNDG).
func (g *Graph) Undirected() *Graph {
	if !g.directed {
		return g
	}
	return NewFromEdges(g.n, g.Edges(), false)
}

// Transpose returns the reverse graph. For undirected graphs it returns g.
func (g *Graph) Transpose() *Graph {
	if !g.directed {
		return g
	}
	g.EnsureTranspose()
	t := &Graph{n: g.n, directed: true, offs: g.inOffs, adj: g.inAdj, wts: g.inWts,
		inOffs: g.offs, inAdj: g.adj, inWts: g.wts}
	return t
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph{%s, n=%d, m=%d}", kind, g.n, g.NumEdges())
}
