package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCDirectedChain(t *testing.T) {
	// 0->1->2: three singleton SCCs, reverse-topological labels.
	g := NewFromEdges(3, []Edge{{From: 0, To: 1}, {From: 1, To: 2}}, true)
	labels, count := StronglyConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	// Arc u->v across components implies labels[u] > labels[v].
	if !(labels[0] > labels[1] && labels[1] > labels[2]) {
		t.Fatalf("labels not reverse-topological: %v", labels)
	}
}

func TestSCCCycle(t *testing.T) {
	g := NewFromEdges(4, []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 0}}, true)
	_, count := StronglyConnectedComponents(g)
	if count != 1 {
		t.Fatalf("cycle SCCs = %d, want 1", count)
	}
	if LargestSCCSize(g) != 4 {
		t.Fatal("largest SCC wrong")
	}
}

func TestSCCTwoCyclesBridged(t *testing.T) {
	// Cycle {0,1,2} -> cycle {3,4,5} via arc 2->3.
	g := NewFromEdges(6, []Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0},
		{From: 3, To: 4}, {From: 4, To: 5}, {From: 5, To: 3},
		{From: 2, To: 3},
	}, true)
	labels, count := StronglyConnectedComponents(g)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("first cycle split")
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatal("second cycle split")
	}
	if labels[2] <= labels[3] {
		t.Fatalf("condensation order wrong: %v", labels)
	}
}

func TestSCCUndirected(t *testing.T) {
	// For undirected graphs SCCs equal connected components.
	g := NewFromEdges(5, []Edge{{From: 0, To: 1}, {From: 2, To: 3}}, false)
	_, scc := StronglyConnectedComponents(g)
	_, cc := ConnectedComponents(g)
	if scc != cc {
		t.Fatalf("undirected SCC count %d != CC count %d", scc, cc)
	}
}

// bruteSCC: u,v strongly connected iff v reachable from u and u from v.
func bruteSCCSame(g *Graph, u, v V) bool {
	reach := func(a, b V) bool {
		seen := make([]bool, g.NumVertices())
		stack := []V{a}
		seen[a] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if x == b {
				return true
			}
			for _, y := range g.Out(x) {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		return false
	}
	return reach(u, v) && reach(v, u)
}

func TestQuickSCCBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 18
		var edges []Edge
		for k := 0; k < 36; k++ {
			edges = append(edges, Edge{From: V(r.Intn(n)), To: V(r.Intn(n))})
		}
		g := NewFromEdges(n, edges, true)
		labels, _ := StronglyConnectedComponents(g)
		for u := V(0); int(u) < n; u++ {
			for v := u + 1; int(v) < n; v++ {
				if (labels[u] == labels[v]) != bruteSCCSame(g, u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCDeep(t *testing.T) {
	// 50k-vertex directed path: iterative implementation must not overflow.
	n := 50000
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{From: V(i), To: V(i + 1)})
	}
	g := NewFromEdges(n, edges, true)
	_, count := StronglyConnectedComponents(g)
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}
