package graph

import (
	"testing"
	"testing/quick"
)

func TestRelabelIdentity(t *testing.T) {
	g := NewFromEdges(4, []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}}, false)
	id := []V{0, 1, 2, 3}
	g2 := Relabel(g, id)
	if g2.NumArcs() != g.NumArcs() || !g2.HasArc(1, 2) {
		t.Fatal("identity relabel changed the graph")
	}
}

func TestRelabelPermutes(t *testing.T) {
	g := NewFromEdges(3, []Edge{{From: 0, To: 1}, {From: 1, To: 2}}, true)
	g2 := Relabel(g, []V{2, 0, 1}) // 0->2, 1->0, 2->1
	if !g2.HasArc(2, 0) || !g2.HasArc(0, 1) || g2.HasArc(0, 2) {
		t.Fatal("relabel arcs wrong")
	}
}

func TestRelabelValidation(t *testing.T) {
	g := NewFromEdges(3, []Edge{{From: 0, To: 1}}, false)
	mustPanic(t, func() { Relabel(g, []V{0, 1}) })    // wrong length
	mustPanic(t, func() { Relabel(g, []V{0, 1, 1}) }) // duplicate
	mustPanic(t, func() { Relabel(g, []V{0, 1, 5}) }) // out of range
}

func TestRelabelPreservesWeights(t *testing.T) {
	g := NewWeightedFromEdges(3, []WeightedEdge{{From: 0, To: 1, W: 4}, {From: 1, To: 2, W: 9}}, false)
	g2 := Relabel(g, []V{1, 2, 0})
	if !g2.Weighted() {
		t.Fatal("weights dropped")
	}
	if w := g2.ArcWeight(g2.ArcPos(1, 2)); w != 4 {
		t.Fatalf("w = %v, want 4", w)
	}
}

func TestBFSOrderContiguity(t *testing.T) {
	// Path: BFS order from 0 is the identity.
	g := NewFromEdges(5, []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4}}, false)
	perm := BFSOrder(g)
	for i, p := range perm {
		if int(p) != i {
			t.Fatalf("path BFS order: perm[%d] = %d", i, p)
		}
	}
}

func TestDegreeOrderHubsFirst(t *testing.T) {
	g := NewFromEdges(5, []Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3}, {From: 3, To: 4}}, false)
	perm := DegreeOrder(g)
	if perm[0] != 0 {
		t.Fatalf("hub 0 (deg 3) should map to 0, got %d", perm[0])
	}
	if perm[3] != 1 {
		t.Fatalf("vertex 3 (deg 2) should map to 1, got %d", perm[3])
	}
}

func TestInversePermutation(t *testing.T) {
	perm := []V{2, 0, 1}
	inv := InversePermutation(perm)
	for old, neu := range perm {
		if inv[neu] != V(old) {
			t.Fatal("inverse wrong")
		}
	}
}

// Property: relabeling preserves degree multiset and arc count, and
// relabeling back with the inverse restores the original adjacency.
func TestQuickRelabelRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		// Deterministic small random graph from the seed.
		n := 20
		var edges []Edge
		x := uint64(seed)
		for k := 0; k < 50; k++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			u := V(x % uint64(n))
			v := V((x >> 8) % uint64(n))
			edges = append(edges, Edge{From: u, To: v})
		}
		g := NewFromEdges(n, edges, false)
		perm := BFSOrder(g)
		g2 := Relabel(g, perm)
		if g2.NumArcs() != g.NumArcs() {
			return false
		}
		g3 := Relabel(g2, InversePermutation(perm))
		for u := 0; u < n; u++ {
			a, b := g.Out(V(u)), g3.Out(V(u))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
