package graph

// ConnectedComponents labels the (weakly) connected components of g: the
// returned slice maps each vertex to a component id in [0, count), and count
// is the number of components. Directed graphs are treated as undirected
// (weak connectivity), which is what the decomposition step needs.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	und := g
	if g.Directed() {
		// Weak connectivity: explore both arc directions without building a
		// full symmetrized copy.
		g.EnsureTranspose()
	}
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]V, 0, 1024)
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		labels[s] = id
		queue = append(queue[:0], V(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range und.Out(u) {
				if labels[v] < 0 {
					labels[v] = id
					queue = append(queue, v)
				}
			}
			if g.Directed() {
				for _, v := range g.In(u) {
					if labels[v] < 0 {
						labels[v] = id
						queue = append(queue, v)
					}
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the induced subgraph of g's largest weakly
// connected component together with the mapping from new ids to original ids.
// The paper's inputs are used as single connected instances; our synthetic
// generators occasionally produce stray small components, which experiments
// strip with this helper.
func LargestComponent(g *Graph) (*Graph, []V) {
	labels, count := ConnectedComponents(g)
	if count <= 1 {
		ids := make([]V, g.NumVertices())
		for i := range ids {
			ids[i] = V(i)
		}
		return g, ids
	}
	sizes := make([]int64, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := int32(0)
	for c := int32(1); c < int32(count); c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	keep := make([]V, 0, sizes[best])
	for v, l := range labels {
		if l == best {
			keep = append(keep, V(v))
		}
	}
	sub, _ := Induced(g, keep)
	return sub, keep
}

// Induced builds the subgraph induced by the given vertices (which must be
// distinct). It returns the subgraph, whose vertex i corresponds to keep[i],
// and the old->new mapping (-1 for dropped vertices).
func Induced(g *Graph, keep []V) (*Graph, []int32) {
	oldToNew := make([]int32, g.NumVertices())
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for i, v := range keep {
		oldToNew[v] = int32(i)
	}
	var edges []Edge
	for i, v := range keep {
		for _, w := range g.Out(v) {
			nw := oldToNew[w]
			if nw < 0 {
				continue
			}
			if g.Directed() || int32(i) < nw {
				edges = append(edges, Edge{V(i), nw})
			}
		}
	}
	return NewFromEdges(len(keep), edges, g.Directed()), oldToNew
}
