package graph

import (
	"strings"
	"testing"
)

// undirected triangle 0-1-2 plus a pendant 3 hanging off 2, in CSR form.
func validCSR() (int, []int64, []V) {
	offs := []int64{0, 2, 4, 7, 8}
	adj := []V{1, 2, 0, 2, 0, 1, 3, 2}
	return 4, offs, adj
}

func TestNewFromCSRValid(t *testing.T) {
	n, offs, adj := validCSR()
	g, err := NewFromCSR(n, offs, adj, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumArcs() != 8 || g.NumEdges() != 4 {
		t.Fatalf("shape: %v", g)
	}
	if !g.HasArc(3, 2) || !g.HasArc(2, 3) || g.HasArc(0, 3) {
		t.Fatal("adjacency mismatch")
	}
	// Adoption is zero-copy: the returned graph serves rows out of the
	// caller's slab (this is what lets the mmap reader hand over a read-only
	// mapping).
	if &g.Out(0)[0] != &adj[0] {
		t.Fatal("NewFromCSR copied the adjacency")
	}
}

func TestNewFromCSRDirectedAsymmetry(t *testing.T) {
	// 0->1->2, no mirrors: fine when directed, rejected when undirected.
	offs := []int64{0, 1, 2, 2}
	adj := []V{1, 2}
	if _, err := NewFromCSR(3, offs, adj, true); err != nil {
		t.Fatalf("directed: %v", err)
	}
	if _, err := NewFromCSR(3, offs, adj, false); err == nil ||
		!strings.Contains(err.Error(), "mirror") {
		t.Fatalf("undirected missing mirror: got %v", err)
	}
}

func TestNewFromCSRRejects(t *testing.T) {
	cases := []struct {
		name string
		n    int
		offs []int64
		adj  []V
		want string
	}{
		{"negative n", -1, nil, nil, "negative"},
		{"offsets length", 2, []int64{0, 1}, []V{1}, "offsets length"},
		{"nonzero start", 2, []int64{1, 1, 2}, []V{0, 1}, "start at 0"},
		{"end mismatch", 2, []int64{0, 1, 3}, []V{1, 0}, "offsets end"},
		{"non-monotone", 3, []int64{0, 2, 1, 2}, []V{1, 2}, "non-monotone"},
		{"neighbor range", 2, []int64{0, 1, 2}, []V{1, 5}, "out of range"},
		{"self-loop", 2, []int64{0, 1, 2}, []V{1, 1}, "self-loop"},
		{"unsorted row", 3, []int64{0, 2, 2, 2}, []V{2, 1}, "strictly increasing"},
		{"duplicate", 3, []int64{0, 2, 2, 2}, []V{1, 1}, "strictly increasing"},
	}
	for _, tc := range cases {
		_, err := NewFromCSR(tc.n, tc.offs, tc.adj, true)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestNewFromCSRUnsortedCanonicalizes(t *testing.T) {
	// Same triangle+pendant as validCSR but with scrambled rows, duplicate
	// arcs and self-loops mixed in. Canonicalization must reproduce exactly
	// what NewFromEdges builds for the same edge multiset.
	offs := []int64{0, 4, 6, 10, 12}
	adj := []V{2, 1, 1, 0, 2, 0, 3, 1, 0, 2, 2, 2}
	g := NewFromCSRUnsorted(4, offs, adj, false)

	want := NewFromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}}, false)
	if g.NumVertices() != want.NumVertices() || g.NumArcs() != want.NumArcs() {
		t.Fatalf("shape %v != %v", g, want)
	}
	for u := 0; u < 4; u++ {
		got, exp := g.Out(V(u)), want.Out(V(u))
		if len(got) != len(exp) {
			t.Fatalf("vertex %d: row %v != %v", u, got, exp)
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("vertex %d: row %v != %v", u, got, exp)
			}
		}
	}
}

func TestNewFromCSRUnsortedPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("out of range", func() {
		NewFromCSRUnsorted(2, []int64{0, 1, 1}, []V{7}, true)
	})
	mustPanic("bad offsets", func() {
		NewFromCSRUnsorted(2, []int64{0, 2}, []V{1, 0}, true)
	})
}
