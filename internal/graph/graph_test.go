package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestUndirectedBasics(t *testing.T) {
	// 0-1, 1-2, 2-0 triangle plus pendant 3-2.
	g := NewFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 2}}, false)
	if g.NumVertices() != 4 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("m = %d, want 4", g.NumEdges())
	}
	if g.NumArcs() != 8 {
		t.Fatalf("arcs = %d, want 8", g.NumArcs())
	}
	if g.OutDegree(2) != 3 {
		t.Fatalf("deg(2) = %d, want 3", g.OutDegree(2))
	}
	if !g.HasArc(0, 1) || !g.HasArc(1, 0) || g.HasArc(0, 3) {
		t.Fatal("HasArc wrong")
	}
	out := g.Out(2)
	for i := 1; i < len(out); i++ {
		if out[i-1] >= out[i] {
			t.Fatal("adjacency not sorted strictly")
		}
	}
}

func TestSelfLoopsAndDuplicatesDropped(t *testing.T) {
	g := NewFromEdges(3, []Edge{{0, 0}, {0, 1}, {0, 1}, {1, 0}, {1, 2}}, false)
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2 (dedup + loop drop)", g.NumEdges())
	}
	gd := NewFromEdges(3, []Edge{{0, 0}, {0, 1}, {0, 1}, {1, 0}, {1, 2}}, true)
	// Directed: 0->1, 1->0, 1->2 remain.
	if gd.NumEdges() != 3 {
		t.Fatalf("directed m = %d, want 3", gd.NumEdges())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	mustPanic(t, func() { NewFromEdges(2, []Edge{{0, 2}}, false) })
	mustPanic(t, func() { NewFromEdges(2, []Edge{{-1, 0}}, true) })
	mustPanic(t, func() { NewFromEdges(-1, nil, true) })
}

func TestDirectedTranspose(t *testing.T) {
	g := NewFromEdges(4, []Edge{{0, 1}, {0, 2}, {2, 3}, {3, 0}}, true)
	g.EnsureTranspose()
	if got := g.In(0); len(got) != 1 || got[0] != 3 {
		t.Fatalf("In(0) = %v", got)
	}
	if got := g.In(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("In(1) = %v", got)
	}
	tr := g.Transpose()
	if !tr.HasArc(1, 0) || tr.HasArc(0, 1) {
		t.Fatal("transpose arcs wrong")
	}
	if tr.NumEdges() != g.NumEdges() {
		t.Fatal("transpose edge count differs")
	}
	// Transpose of transpose has original arcs.
	trtr := tr.Transpose()
	if !trtr.HasArc(0, 1) || !trtr.HasArc(3, 0) {
		t.Fatal("double transpose lost arcs")
	}
}

func TestUndirectedView(t *testing.T) {
	g := NewFromEdges(3, []Edge{{0, 1}, {1, 2}}, true)
	u := g.Undirected()
	if u.Directed() {
		t.Fatal("Undirected returned directed graph")
	}
	if !u.HasArc(1, 0) || !u.HasArc(2, 1) {
		t.Fatal("symmetrization missing arcs")
	}
	// Already-undirected graphs return themselves.
	if u.Undirected() != u {
		t.Fatal("Undirected of undirected should be identity")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(40)
		var es []Edge
		for k := 0; k < 3*n; k++ {
			es = append(es, Edge{V(r.Intn(n)), V(r.Intn(n))})
		}
		directed := trial%2 == 0
		g := NewFromEdges(n, es, directed)
		g2 := NewFromEdges(n, g.Edges(), directed)
		if g.NumEdges() != g2.NumEdges() {
			t.Fatalf("round trip edge count %d != %d", g.NumEdges(), g2.NumEdges())
		}
		for u := 0; u < n; u++ {
			a, b := g.Out(V(u)), g2.Out(V(u))
			if len(a) != len(b) {
				t.Fatalf("deg mismatch at %d", u)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("adjacency mismatch at %d", u)
				}
			}
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} and {3,4}; 5 isolated.
	g := NewFromEdges(6, []Edge{{0, 1}, {1, 2}, {3, 4}}, false)
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("component {0,1,2} split")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatal("component {3,4} wrong")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("isolated vertex merged")
	}
}

func TestWeakComponentsDirected(t *testing.T) {
	// 0->1<-2 is weakly connected even though not strongly.
	g := NewFromEdges(3, []Edge{{0, 1}, {2, 1}}, true)
	_, count := ConnectedComponents(g)
	if count != 1 {
		t.Fatalf("weak components = %d, want 1", count)
	}
}

func TestLargestComponent(t *testing.T) {
	g := NewFromEdges(7, []Edge{{0, 1}, {1, 2}, {2, 3}, {4, 5}}, false)
	sub, ids := LargestComponent(g)
	if sub.NumVertices() != 4 {
		t.Fatalf("largest component size %d, want 4", sub.NumVertices())
	}
	if len(ids) != 4 {
		t.Fatalf("ids len %d", len(ids))
	}
	for i, old := range ids {
		if int(old) != i { // 0..3 keep their ids here
			t.Fatalf("ids[%d] = %d", i, old)
		}
	}
}

func TestInduced(t *testing.T) {
	g := NewFromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, false)
	sub, oldToNew := Induced(g, []V{1, 2, 3})
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("induced n=%d m=%d", sub.NumVertices(), sub.NumEdges())
	}
	if oldToNew[0] != -1 || oldToNew[1] != 0 || oldToNew[3] != 2 {
		t.Fatalf("oldToNew = %v", oldToNew)
	}
	if !sub.HasArc(0, 1) || !sub.HasArc(1, 2) || sub.HasArc(0, 2) {
		t.Fatal("induced adjacency wrong")
	}
}

func TestStatsUndirected(t *testing.T) {
	// star: center 0 with 4 leaves
	g := NewFromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, false)
	st := Stats(g)
	if st.Degree1 != 4 || st.MaxOut != 4 || st.MinOut != 1 || st.Isolated != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanOut != 8.0/5.0 {
		t.Fatalf("mean = %f", st.MeanOut)
	}
}

func TestStatsDirectedSources(t *testing.T) {
	// 0->1, 2->1: vertices 0 and 2 are total-redundancy candidates.
	g := NewFromEdges(4, []Edge{{0, 1}, {2, 1}}, true)
	st := Stats(g)
	if st.Sources != 2 {
		t.Fatalf("Sources = %d, want 2", st.Sources)
	}
	if st.Isolated != 1 {
		t.Fatalf("Isolated = %d, want 1", st.Isolated)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := NewFromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, false)
	degs, counts := DegreeHistogram(g)
	if len(degs) != 2 || degs[0] != 1 || degs[1] != 4 {
		t.Fatalf("degs = %v", degs)
	}
	if counts[0] != 4 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

// Property: arc count of an undirected graph is always even and every arc has
// its reverse.
func TestQuickUndirectedSymmetry(t *testing.T) {
	f := func(raw []uint16) bool {
		n := 20
		var es []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			es = append(es, Edge{V(raw[i] % uint16(n)), V(raw[i+1] % uint16(n))})
		}
		g := NewFromEdges(n, es, false)
		if g.NumArcs()%2 != 0 {
			return false
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Out(V(u)) {
				if !g.HasArc(v, V(u)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewFromEdges(0, nil, false)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph wrong")
	}
	_, count := ConnectedComponents(g)
	if count != 0 {
		t.Fatalf("components of empty graph = %d", count)
	}
	st := Stats(g)
	if st.MinOut != 0 {
		t.Fatalf("stats of empty graph: %+v", st)
	}
}

func TestStringer(t *testing.T) {
	g := NewFromEdges(2, []Edge{{0, 1}}, true)
	if got := g.String(); got != "graph{directed, n=2, m=1}" {
		t.Fatalf("String = %q", got)
	}
}
