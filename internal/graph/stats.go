package graph

import "sort"

// DegreeStats summarizes a graph's degree distribution; it backs the
// motivation census (paper Figure 2: articulation points and single-edge
// vertices in real graphs).
type DegreeStats struct {
	MinOut, MaxOut int
	MeanOut        float64
	// Degree1 counts vertices with total degree 1 in the undirected view —
	// the "vertices with a single edge" of §2.2.
	Degree1 int
	// Sources counts directed vertices with no in-edges and exactly one
	// out-edge: the total-redundancy candidates of §2.2 / Theorem 3.
	Sources int
	// Isolated counts degree-0 vertices.
	Isolated int
}

// Stats computes DegreeStats in one pass.
func Stats(g *Graph) DegreeStats {
	n := g.NumVertices()
	st := DegreeStats{MinOut: int(^uint(0) >> 1)}
	if n == 0 {
		st.MinOut = 0
		return st
	}
	g.EnsureTranspose()
	var sum int64
	for u := 0; u < n; u++ {
		d := g.OutDegree(V(u))
		sum += int64(d)
		if d < st.MinOut {
			st.MinOut = d
		}
		if d > st.MaxOut {
			st.MaxOut = d
		}
		if g.Directed() {
			if d == 0 && g.InDegree(V(u)) == 0 {
				st.Isolated++
			}
			if g.InDegree(V(u)) == 0 && d == 1 {
				st.Sources++
			}
			if g.InDegree(V(u))+d == 1 {
				st.Degree1++
			}
		} else {
			switch d {
			case 0:
				st.Isolated++
			case 1:
				st.Degree1++
				st.Sources++
			}
		}
	}
	st.MeanOut = float64(sum) / float64(n)
	return st
}

// DegreeHistogram returns sorted (degree, count) pairs of out-degrees,
// used to eyeball power-law shape in the dataset tests.
func DegreeHistogram(g *Graph) (degrees []int, counts []int64) {
	h := map[int]int64{}
	for u := 0; u < g.NumVertices(); u++ {
		h[g.OutDegree(V(u))]++
	}
	for d := range h {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int64, len(degrees))
	for i, d := range degrees {
		counts[i] = h[d]
	}
	return degrees, counts
}
