package graph

import "sort"

// Vertex relabeling for memory locality, after Cong & Makarychev [24] (the
// paper's related work §6: "perform prefetching and appropriate re-layout of
// the graph nodes to improve locality"). BFS order places each frontier
// contiguously; degree order places hubs together. Both return the relabeled
// graph and the old->new permutation so scores can be mapped back.

// Relabel builds the graph with vertex v renamed to perm[v]. perm must be a
// permutation of [0, n); weights are preserved.
func Relabel(g *Graph, perm []V) *Graph {
	n := g.NumVertices()
	if len(perm) != n {
		panic("graph: permutation length mismatch")
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			panic("graph: not a permutation")
		}
		seen[p] = true
	}
	if g.Weighted() {
		edges := g.WeightedEdges()
		out := make([]WeightedEdge, len(edges))
		for i, e := range edges {
			out[i] = WeightedEdge{From: perm[e.From], To: perm[e.To], W: e.W}
		}
		return NewWeightedFromEdges(n, out, g.Directed())
	}
	edges := g.Edges()
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = Edge{From: perm[e.From], To: perm[e.To]}
	}
	return NewFromEdges(n, out, g.Directed())
}

// BFSOrder returns the old->new permutation that renumbers vertices in BFS
// discovery order from the lowest-id vertex of each component (undirected
// view), so BFS frontiers become contiguous id ranges.
func BFSOrder(g *Graph) []V {
	und := g.Undirected()
	n := g.NumVertices()
	perm := make([]V, n)
	for i := range perm {
		perm[i] = -1
	}
	next := V(0)
	queue := make([]V, 0, 256)
	for s := 0; s < n; s++ {
		if perm[s] >= 0 {
			continue
		}
		perm[s] = next
		next++
		queue = append(queue[:0], V(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range und.Out(u) {
				if perm[v] < 0 {
					perm[v] = next
					next++
					queue = append(queue, v)
				}
			}
		}
	}
	return perm
}

// DegreeOrder returns the old->new permutation sorting vertices by
// decreasing undirected degree (ties by id), packing hubs into the same
// cache lines.
func DegreeOrder(g *Graph) []V {
	und := g.Undirected()
	n := g.NumVertices()
	order := make([]V, n)
	for i := range order {
		order[i] = V(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := und.OutDegree(order[i]), und.OutDegree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	perm := make([]V, n)
	for newID, old := range order {
		perm[old] = V(newID)
	}
	return perm
}

// InversePermutation returns the new->old mapping for a perm produced by
// BFSOrder/DegreeOrder, used to map relabeled scores back:
// scores_old[v] = scores_new[perm[v]].
func InversePermutation(perm []V) []V {
	inv := make([]V, len(perm))
	for old, neu := range perm {
		inv[neu] = V(old)
	}
	return inv
}
