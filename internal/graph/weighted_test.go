package graph

import (
	"testing"
	"testing/quick"
)

func TestWeightedBasics(t *testing.T) {
	g := NewWeightedFromEdges(3, []WeightedEdge{
		{From: 0, To: 1, W: 2.5}, {From: 1, To: 2, W: 1},
	}, false)
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	if g.NumEdges() != 2 || g.NumArcs() != 4 {
		t.Fatalf("m=%d arcs=%d", g.NumEdges(), g.NumArcs())
	}
	if w := g.ArcWeight(g.ArcPos(0, 1)); w != 2.5 {
		t.Fatalf("w(0,1) = %v", w)
	}
	if w := g.ArcWeight(g.ArcPos(1, 0)); w != 2.5 {
		t.Fatalf("w(1,0) = %v (undirected symmetry)", w)
	}
	ws := g.OutWeights(1)
	if len(ws) != 2 {
		t.Fatalf("OutWeights(1) = %v", ws)
	}
}

func TestWeightedParallelEdgesKeepMin(t *testing.T) {
	g := NewWeightedFromEdges(2, []WeightedEdge{
		{From: 0, To: 1, W: 5}, {From: 0, To: 1, W: 2}, {From: 0, To: 1, W: 9},
	}, true)
	if g.NumArcs() != 1 {
		t.Fatalf("arcs = %d, want 1", g.NumArcs())
	}
	if w := g.ArcWeight(g.ArcPos(0, 1)); w != 2 {
		t.Fatalf("kept weight %v, want min 2", w)
	}
}

func TestWeightedValidation(t *testing.T) {
	mustPanic(t, func() { NewWeightedFromEdges(2, []WeightedEdge{{From: 0, To: 1, W: 0}}, false) })
	mustPanic(t, func() { NewWeightedFromEdges(2, []WeightedEdge{{From: 0, To: 1, W: -1}}, false) })
	mustPanic(t, func() { NewWeightedFromEdges(2, []WeightedEdge{{From: 0, To: 2, W: 1}}, false) })
	g := NewFromEdges(2, []Edge{{From: 0, To: 1}}, false)
	mustPanic(t, func() { g.OutWeights(0) })
	if g.ArcWeight(0) != 1 {
		t.Fatal("unweighted ArcWeight must be 1")
	}
}

func TestWeightedTranspose(t *testing.T) {
	g := NewWeightedFromEdges(3, []WeightedEdge{
		{From: 0, To: 1, W: 3}, {From: 2, To: 1, W: 7},
	}, true)
	tr := g.Transpose()
	if !tr.Weighted() {
		t.Fatal("transpose lost weights")
	}
	if w := tr.ArcWeight(tr.ArcPos(1, 0)); w != 3 {
		t.Fatalf("transpose w(1->0) = %v, want 3", w)
	}
	if w := tr.ArcWeight(tr.ArcPos(1, 2)); w != 7 {
		t.Fatalf("transpose w(1->2) = %v, want 7", w)
	}
}

func TestWeightedEdgesRoundTrip(t *testing.T) {
	in := []WeightedEdge{{From: 0, To: 1, W: 2}, {From: 1, To: 2, W: 3}, {From: 0, To: 2, W: 4}}
	g := NewWeightedFromEdges(3, in, false)
	out := g.WeightedEdges()
	if len(out) != 3 {
		t.Fatalf("edges = %v", out)
	}
	g2 := NewWeightedFromEdges(3, out, false)
	for u := V(0); u < 3; u++ {
		a, b := g.OutWeights(u), g2.OutWeights(u)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("round trip changed weights")
			}
		}
	}
}

func TestUnitWeights(t *testing.T) {
	g := NewFromEdges(4, []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}}, true)
	w := g.UnitWeights()
	if !w.Weighted() || w.NumArcs() != g.NumArcs() {
		t.Fatal("UnitWeights wrong shape")
	}
	for u := V(0); int(u) < 4; u++ {
		for _, x := range w.OutWeights(u) {
			if x != 1 {
				t.Fatal("unit weight != 1")
			}
		}
	}
}

// Property: weighted construction preserves adjacency of the unweighted
// construction on the same edge list.
func TestQuickWeightedAdjacency(t *testing.T) {
	f := func(raw []uint16) bool {
		n := 15
		var we []WeightedEdge
		var ue []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := V(raw[i]%uint16(n)), V(raw[i+1]%uint16(n))
			we = append(we, WeightedEdge{From: u, To: v, W: 1 + float64(i%5)})
			ue = append(ue, Edge{From: u, To: v})
		}
		gw := NewWeightedFromEdges(n, we, false)
		gu := NewFromEdges(n, ue, false)
		if gw.NumArcs() != gu.NumArcs() {
			return false
		}
		for u := 0; u < n; u++ {
			a, b := gw.Out(V(u)), gu.Out(V(u))
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
