package graph

// StronglyConnectedComponents labels the SCCs of a directed graph with an
// iterative Tarjan algorithm (recursion-free, like the biconnected
// decomposition, to survive path-shaped graphs). For undirected graphs SCCs
// coincide with connected components. Returns per-vertex component ids in
// reverse topological order of the condensation (an arc u->v between
// different components implies labels[u] > labels[v]) and the component
// count.
func StronglyConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var sccStack []V
	type frame struct {
		v    V
		iter int32
	}
	var stack []frame
	var next int32

	for root := V(0); int(root) < n; root++ {
		if index[root] != -1 {
			continue
		}
		stack = append(stack[:0], frame{v: root})
		index[root] = next
		low[root] = next
		next++
		sccStack = append(sccStack, root)
		onStack[root] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			adj := g.Out(v)
			if int(f.iter) < len(adj) {
				w := adj[f.iter]
				f.iter++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					sccStack = append(sccStack, w)
					onStack[w] = true
					stack = append(stack, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := stack[len(stack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				id := int32(count)
				count++
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					labels[w] = id
					if w == v {
						break
					}
				}
			}
		}
	}
	return labels, count
}

// LargestSCCSize returns the vertex count of the biggest strongly connected
// component — the "core" directed BC sweeps actually traverse.
func LargestSCCSize(g *Graph) int {
	labels, count := StronglyConnectedComponents(g)
	if count == 0 {
		return 0
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for _, s := range sizes {
		if s > best {
			best = s
		}
	}
	return best
}
