package graph

import (
	"fmt"
	"sort"
)

// WeightedEdge is an edge with a positive length. Weighted graphs extend the
// paper's unweighted setting: the articulation-point factorization
// σ_st = σ_sa·σ_at holds for any positive edge weights, so APGRE's
// decomposition applies unchanged with Dijkstra in place of BFS (see
// internal/core's weighted engine).
type WeightedEdge struct {
	From, To V
	W        float64
}

// NewWeightedFromEdges builds a weighted CSR graph. Self-loops are dropped;
// parallel edges keep the minimum weight (only the shortest parallel edge
// can lie on a shortest path). Weights must be positive — zero or negative
// weights would break both Dijkstra and the biconnected shortest-path
// arguments — and violations panic, since silently accepting them would
// corrupt every downstream score.
func NewWeightedFromEdges(n int, edges []WeightedEdge, directed bool) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	for _, e := range edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", e.From, e.To, n))
		}
		if !(e.W > 0) {
			panic(fmt.Sprintf("graph: edge (%d,%d) has non-positive weight %v", e.From, e.To, e.W))
		}
	}
	type arc struct {
		to V
		w  float64
	}
	rows := make([][]arc, n)
	add := func(u, v V, w float64) { rows[u] = append(rows[u], arc{v, w}) }
	for _, e := range edges {
		if e.From == e.To {
			continue
		}
		add(e.From, e.To, e.W)
		if !directed {
			add(e.To, e.From, e.W)
		}
	}
	offs := make([]int64, n+1)
	var total int64
	for u := 0; u < n; u++ {
		row := rows[u]
		sort.Slice(row, func(i, j int) bool {
			if row[i].to != row[j].to {
				return row[i].to < row[j].to
			}
			return row[i].w < row[j].w
		})
		w := 0
		for i := range row {
			if i > 0 && row[i].to == row[w-1].to {
				continue // duplicate: the sort put the lightest first
			}
			row[w] = row[i]
			w++
		}
		rows[u] = row[:w]
		offs[u+1] = offs[u] + int64(w)
		total += int64(w)
	}
	adj := make([]V, total)
	wts := make([]float64, total)
	for u := 0; u < n; u++ {
		base := offs[u]
		for i, a := range rows[u] {
			adj[base+int64(i)] = a.to
			wts[base+int64(i)] = a.w
		}
	}
	return &Graph{n: n, directed: directed, offs: offs, adj: adj, wts: wts}
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.wts != nil }

// OutWeights returns the weights parallel to Out(u). Panics on unweighted
// graphs.
func (g *Graph) OutWeights(u V) []float64 {
	if g.wts == nil {
		panic("graph: OutWeights on unweighted graph")
	}
	return g.wts[g.offs[u]:g.offs[u+1]]
}

// InWeights returns the weights parallel to In(u). For undirected graphs it
// is OutWeights(u); directed graphs must have called EnsureTranspose (In
// does so on first use). Panics on unweighted graphs.
func (g *Graph) InWeights(u V) []float64 {
	if g.wts == nil {
		panic("graph: InWeights on unweighted graph")
	}
	if !g.directed {
		return g.OutWeights(u)
	}
	if g.inOffs == nil {
		g.buildTranspose()
	}
	return g.inWts[g.inOffs[u]:g.inOffs[u+1]]
}

// ArcWeight returns the weight of the arc at CSR position pos
// (see ArcBase/ArcPos). Unweighted graphs report 1 for every arc.
func (g *Graph) ArcWeight(pos int64) float64 {
	if g.wts == nil {
		return 1
	}
	return g.wts[pos]
}

// WeightedEdges returns the logical weighted edge list (From < To once per
// undirected edge).
func (g *Graph) WeightedEdges() []WeightedEdge {
	out := make([]WeightedEdge, 0, g.NumEdges())
	for u := 0; u < g.n; u++ {
		base := g.offs[u]
		for i, v := range g.Out(V(u)) {
			if g.directed || V(u) < v {
				out = append(out, WeightedEdge{From: V(u), To: v, W: g.ArcWeight(base + int64(i))})
			}
		}
	}
	return out
}

// UnitWeights returns a weighted copy of an unweighted graph with every
// edge at weight 1 (useful for cross-checking the weighted engines against
// the unweighted ones).
func (g *Graph) UnitWeights() *Graph {
	var wedges []WeightedEdge
	for _, e := range g.Edges() {
		wedges = append(wedges, WeightedEdge{From: e.From, To: e.To, W: 1})
	}
	return NewWeightedFromEdges(g.n, wedges, g.directed)
}
