package graph

import (
	"fmt"
	"sort"
)

// NewFromCSR adopts a prebuilt CSR directly — no edge list, no copy. It is
// the constructor behind the scale pipeline: graphio's streaming and
// memory-mapped readers hand their offset/adjacency arrays straight to it,
// so loading a multi-million-edge graph never materializes anything beyond
// the CSR itself.
//
// The arrays are validated, not trusted (binary files may be hostile or
// corrupt): offs must be a monotone prefix-sum starting at 0 and ending at
// len(adj); every row must be strictly increasing (sorted, duplicate-free)
// with neighbors in [0, n) and no self-loops; and for undirected graphs
// every arc u->v must have its mirror v->u, since the whole engine stack
// (BCC, decomposition, bottom-up BFS) assumes symmetric adjacency. The
// validation is a single O(n + m·log d) pass — cheap next to the I/O that
// produced the arrays.
//
// The caller transfers ownership: adj may be backing a read-only mmap, so
// the Graph never writes to either array (the lazily built transpose is a
// fresh allocation).
func NewFromCSR(n int, offs []int64, adj []V, directed bool) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if len(offs) != n+1 {
		return nil, fmt.Errorf("graph: offsets length %d, want %d", len(offs), n+1)
	}
	if n > 0 && offs[0] != 0 {
		return nil, fmt.Errorf("graph: offsets must start at 0, got %d", offs[0])
	}
	if len(offs) > 0 && offs[n] != int64(len(adj)) {
		return nil, fmt.Errorf("graph: offsets end at %d, adjacency has %d arcs", offs[n], len(adj))
	}
	for u := 0; u < n; u++ {
		lo, hi := offs[u], offs[u+1]
		if hi < lo {
			return nil, fmt.Errorf("graph: vertex %d: non-monotone offsets %d > %d", u, lo, hi)
		}
		prev := V(-1)
		for _, v := range adj[lo:hi] {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: vertex %d: neighbor %d out of range [0,%d)", u, v, n)
			}
			if v == V(u) {
				return nil, fmt.Errorf("graph: vertex %d: self-loop", u)
			}
			if v <= prev {
				return nil, fmt.Errorf("graph: vertex %d: row not strictly increasing at neighbor %d", u, v)
			}
			prev = v
		}
	}
	g := &Graph{n: n, directed: directed, offs: offs, adj: adj}
	if !directed {
		for u := 0; u < n; u++ {
			for _, v := range g.Out(V(u)) {
				if !g.HasArc(v, V(u)) {
					return nil, fmt.Errorf("graph: undirected CSR missing mirror arc %d->%d", v, u)
				}
			}
		}
	}
	return g, nil
}

// NewFromCSRUnsorted adopts a raw CSR whose rows may be unsorted and contain
// duplicates and self-loops, canonicalizing in place (sort, dedup, self-loop
// drop) before adoption. It is the finishing step of gen.BuildCSR: parallel
// chunk generators place arcs at racy cursor positions, so row order is
// nondeterministic — canonicalization makes the final graph a pure function
// of the edge multiset, independent of worker count.
//
// For undirected graphs the caller must have placed both directions of every
// edge (duplicates collapse consistently on both sides, so symmetry is
// preserved by construction). Out-of-range neighbors panic, mirroring
// NewFromEdges: silent truncation would corrupt experiments.
func NewFromCSRUnsorted(n int, offs []int64, adj []V, directed bool) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	if len(offs) != n+1 || (n > 0 && offs[0] != 0) || offs[n] != int64(len(adj)) {
		panic(fmt.Sprintf("graph: malformed offsets (len=%d, end=%d, arcs=%d)", len(offs), offs[n], len(adj)))
	}
	w := int64(0)
	newOffs := make([]int64, n+1)
	for u := 0; u < n; u++ {
		lo, hi := offs[u], offs[u+1]
		if hi < lo {
			panic(fmt.Sprintf("graph: vertex %d: non-monotone offsets", u))
		}
		row := adj[lo:hi]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		newOffs[u] = w
		for i, v := range row {
			if v < 0 || int(v) >= n {
				panic(fmt.Sprintf("graph: arc (%d,%d) out of range [0,%d)", u, v, n))
			}
			if v == V(u) || (i > 0 && v == row[i-1]) {
				continue
			}
			adj[w] = v
			w++
		}
	}
	newOffs[n] = w
	return &Graph{n: n, directed: directed, offs: newOffs, adj: adj[:w:w]}
}
