//go:build linux || darwin

package graphio

import (
	"os"
	"syscall"
)

const mmapSupported = true

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapBytes(b []byte) error {
	return syscall.Munmap(b)
}
