package graphio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
)

func writeBin(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMmapGraphMatchesStream(t *testing.T) {
	wantZeroCopy := mmapSupported && nativeLittleEndian()
	for name, g := range binFamilies() {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		path := writeBin(t, name+".bin", buf.Bytes())

		mg, err := MmapGraph(path)
		if err != nil {
			t.Fatalf("%s: MmapGraph: %v", name, err)
		}
		if mg.ZeroCopy != wantZeroCopy {
			t.Errorf("%s: ZeroCopy = %v, want %v on this platform", name, mg.ZeroCopy, wantZeroCopy)
		}
		if !sameCSR(g, mg.Graph) {
			t.Errorf("%s: mapped graph differs from source", name)
		}
		if err := mg.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
		if err := mg.Close(); err != nil { // idempotent
			t.Fatalf("%s: second Close: %v", name, err)
		}
	}
}

// A v1 file has no alignment padding, so the zero-copy cast is impossible;
// MmapGraph must fall back to the streaming reader and still return the
// right graph.
func TestMmapGraphV1Fallback(t *testing.T) {
	g := gen.ErdosRenyi(60, 150, false, 9)
	path := writeBin(t, "v1.bin", binBytesV1(g))
	mg, err := MmapGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	if mg.ZeroCopy {
		t.Error("v1 file must not be zero-copy mapped")
	}
	if !sameCSR(g, mg.Graph) {
		t.Error("fallback-loaded graph differs from source")
	}
}

// The zero-copy path refuses files whose size disagrees with the header —
// the mmap analogue of the streaming reader's truncation and trailing-data
// errors (the fallback reader catches the same corruption on platforms
// without mmap).
func TestMmapGraphSizeMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, gen.Path(10)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	if _, err := MmapGraph(writeBin(t, "trunc.bin", valid[:len(valid)-2])); err == nil {
		t.Error("truncated file accepted")
	}
	if _, err := MmapGraph(writeBin(t, "over.bin", append(append([]byte{}, valid...), 0))); err == nil {
		t.Error("oversized file accepted")
	}
	if _, err := MmapGraph(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("missing file accepted")
	}
}
