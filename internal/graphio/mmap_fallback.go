//go:build !linux && !darwin

package graphio

import (
	"fmt"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("graphio: memory mapping not supported on this platform")
}

func munmapBytes(b []byte) error {
	return nil
}
