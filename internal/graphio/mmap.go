package graphio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"

	"repro/internal/graph"
)

// Mapped is a read-only CSR graph whose adjacency array may alias a memory
// mapping of the source file. ZeroCopy reports which way the load went: true
// means Out() slices point into the mapping (the OS pages neighbors in on
// demand and can drop them under pressure), false means the portable
// fallback streamed the file into heap arrays via ReadBinaryCSR. Either way
// the Graph is safe for the full engine stack — graph.NewFromCSR never
// writes to the adopted arrays, and the lazily built transpose is a fresh
// allocation.
//
// Close unmaps the file. After Close, a ZeroCopy graph's adjacency is gone —
// the caller owns the ordering, exactly like the internal/ws epoch contract:
// retire the graph from every workspace before closing. Close on a fallback
// load is a no-op.
type Mapped struct {
	*graph.Graph
	ZeroCopy bool
	data     []byte
}

// Close releases the mapping, if any. Safe to call twice.
func (m *Mapped) Close() error {
	if m.data == nil {
		return nil
	}
	d := m.data
	m.data = nil
	return munmapBytes(d)
}

// MmapGraph opens a binary CSR file (WriteBinary format) as a read-only
// graph, memory-mapping the adjacency when the platform and the file allow
// it. Zero-copy engages only when all of these hold:
//
//   - the build target has an mmap backend (linux/darwin);
//   - the file is format v2, whose 28-byte padded header 4-byte-aligns the
//     degree table and adjacency (v1's 25-byte header cannot be
//     reinterpreted as []int32 at any page-aligned base);
//   - the host is little-endian, matching the on-disk byte order, so the
//     mapping's bytes are the in-memory representation.
//
// Otherwise it falls back to ReadBinaryCSR, which accepts both versions on
// any platform. The offset array is always materialized on the heap (the
// file stores u32 degrees, the CSR wants an int64 prefix sum): zero-copy
// saves the 4·arcs-byte adjacency — the dominant term — not the header walk.
//
// The mapped path validates exactly like the streaming path (hostile-header
// checks, strict row validation in graph.NewFromCSR) plus an exact file-size
// check: a v2 file must be precisely 28 + 4n + 4·arcs bytes, so truncated or
// oversized files are rejected before any CSR is built.
func MmapGraph(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	fallback := func() (*Mapped, error) {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		size := int64(-1)
		if fi, err := f.Stat(); err == nil {
			size = fi.Size()
		}
		g, err := readBinaryCSRSized(f, size)
		if err != nil {
			return nil, err
		}
		return &Mapped{Graph: g}, nil
	}

	hdr := make([]byte, binHdrSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("graphio: reading header of %s: %v", path, err)
	}
	if !mmapSupported || !nativeLittleEndian() || !bytes.HasPrefix(hdr, []byte(binMagic2)) {
		return fallback()
	}
	flags, n, arcs, _, err := readBinHeader(bytes.NewReader(hdr))
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	want := int64(binHdrSize) + 4*int64(n) + 4*int64(arcs)
	if st.Size() != want {
		return nil, fmt.Errorf("graphio: %s is %d bytes, header implies %d", path, st.Size(), want)
	}

	data, err := mmapFile(f, st.Size())
	if err != nil {
		// Mapping can fail for environmental reasons (e.g. the file lives on
		// a filesystem that refuses MAP_SHARED); the file itself is fine.
		return fallback()
	}
	reject := func(err error) (*Mapped, error) {
		munmapBytes(data)
		return nil, err
	}

	degBytes := data[binHdrSize : binHdrSize+4*int64(n)]
	offs := make([]int64, n+1)
	var total uint64
	for i := uint64(0); i < n; i++ {
		d := binary.LittleEndian.Uint32(degBytes[4*i:])
		if d > 1<<31-1 {
			return reject(fmt.Errorf("graphio: vertex %d degree %d wraps the CSR offset (non-monotonic)", i, d))
		}
		total += uint64(d)
		if total > arcs {
			return reject(fmt.Errorf("graphio: degree prefix sum %d at vertex %d exceeds arc count %d", total, i, arcs))
		}
		offs[i+1] = int64(total)
	}
	if total != arcs {
		return reject(fmt.Errorf("graphio: degree sum %d != arc count %d", total, arcs))
	}

	var adj []graph.V
	if arcs > 0 {
		adjBytes := data[binHdrSize+4*int64(n):]
		adj = unsafe.Slice((*graph.V)(unsafe.Pointer(unsafe.SliceData(adjBytes))), arcs)
	}
	g, err := graph.NewFromCSR(int(n), offs, adj, flags&1 != 0)
	if err != nil {
		return reject(err)
	}
	return &Mapped{Graph: g, ZeroCopy: true, data: data}, nil
}

// nativeLittleEndian reports whether the host byte order matches the
// little-endian on-disk order, the precondition for reinterpreting mapped
// bytes as []int32.
func nativeLittleEndian() bool {
	var buf [2]byte
	binary.NativeEndian.PutUint16(buf[:], 0x0102)
	return buf[0] == 0x02
}
