package graphio

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestGraphMLRoundTripUnweighted(t *testing.T) {
	g := gen.Caveman(3, 4, false)
	var buf bytes.Buffer
	if err := WriteGraphML(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, names, err := ReadGraphML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Weighted() {
		t.Fatal("unweighted graph came back weighted")
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %v vs %v", g2, g)
	}
	// WriteGraphML names nodes n0..n11 in order, so ids map back directly.
	for i, name := range names {
		if name != "n"+strconv.Itoa(i) {
			t.Fatalf("names[%d] = %q", i, name)
		}
	}
	for u := 0; u < g.NumVertices(); u++ {
		a, b := g.Out(int32(u)), g2.Out(int32(u))
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", u)
		}
	}
}

func TestGraphMLRoundTripWeightedDirected(t *testing.T) {
	g := gen.WithRandomWeights(gen.ErdosRenyi(40, 120, true, 3), 7, 4)
	var buf bytes.Buffer
	if err := WriteGraphML(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadGraphML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Weighted() || !g2.Directed() {
		t.Fatalf("lost attributes: %v", g2)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		aw, bw := g.OutWeights(u), g2.OutWeights(u)
		for i := range aw {
			if aw[i] != bw[i] {
				t.Fatalf("weight mismatch at %d[%d]", u, i)
			}
		}
	}
}

func TestGraphMLErrors(t *testing.T) {
	if _, _, err := ReadGraphML(strings.NewReader("not xml at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	bad := `<?xml version="1.0"?><graphml>
<key id="d0" for="edge" attr.name="weight" attr.type="double"/>
<graph edgedefault="undirected">
<node id="a"/><node id="b"/>
<edge source="a" target="b"><data key="d0">-3</data></edge>
</graph></graphml>`
	if _, _, err := ReadGraphML(strings.NewReader(bad)); err == nil {
		t.Fatal("negative weight accepted")
	}
	bad2 := strings.Replace(bad, "-3", "zzz", 1)
	if _, _, err := ReadGraphML(strings.NewReader(bad2)); err == nil {
		t.Fatal("non-numeric weight accepted")
	}
}

func TestGraphMLForeignIDs(t *testing.T) {
	in := `<?xml version="1.0"?><graphml><graph edgedefault="directed">
<node id="alice"/><node id="bob"/><node id="carol"/>
<edge source="alice" target="bob"/>
<edge source="bob" target="carol"/>
</graph></graphml>`
	g, names, err := ReadGraphML(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || !g.Directed() || g.NumEdges() != 2 {
		t.Fatalf("shape: %v", g)
	}
	if names[0] != "alice" || names[2] != "carol" {
		t.Fatalf("names = %v", names)
	}
	if !g.HasArc(0, 1) || !g.HasArc(1, 2) {
		t.Fatal("arcs wrong")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Caveman(3, 4, false),
		gen.WithRandomWeights(gen.BarabasiAlbert(30, 2, 1), 5, 2),
		gen.ErdosRenyi(25, 60, true, 3),
	} {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumArcs() != g.NumArcs() ||
			g2.Directed() != g.Directed() || g2.Weighted() != g.Weighted() {
			t.Fatalf("round trip changed shape: %v vs %v", g2, g)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	cases := []string{
		`{`,                               // bad json
		`{"nodes":[{"id":5}],"links":[]}`, // non-dense id
		`{"nodes":[{"id":0}],"links":[{"source":0,"target":3}]}`,                      // endpoint range
		`{"nodes":[{"id":0},{"id":1}],"links":[{"source":0,"target":1,"weight":-2}]}`, // bad weight
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}
