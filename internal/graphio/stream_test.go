package graphio

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// binFamilies returns the nine graph families the repo's equivalence suites
// standardize on (see internal/core schedFamilies) — here the fixture for
// proving the streaming reader reproduces the in-memory reader bit for bit.
func binFamilies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":     gen.Path(20),
		"star":     gen.Star(20),
		"lollipop": gen.Lollipop(6, 10),
		"tree":     gen.Tree(50, 1),
		"caveman":  gen.Caveman(4, 6, false),
		"grid":     gen.Grid2D(6, 6),
		"social": gen.SocialLike(gen.SocialParams{
			N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 1}),
		"socialDir": gen.SocialLike(gen.SocialParams{
			N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3,
			Directed: true, Reciprocity: 0.5, Seed: 2}),
		"er": gen.ErdosRenyi(300, 900, false, 7),
	}
}

// sameCSR reports whether two graphs are identical arc for arc — the
// bit-equality the streamed and mapped loaders must deliver.
func sameCSR(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.Directed() != b.Directed() ||
		a.NumArcs() != b.NumArcs() {
		return false
	}
	for u := 0; u < a.NumVertices(); u++ {
		ra, rb := a.Out(int32(u)), b.Out(int32(u))
		if len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i] != rb[i] {
				return false
			}
		}
	}
	return true
}

// binBytesV1 serializes g in the legacy v1 layout (25-byte unpadded header),
// which WriteBinary no longer emits but every reader must keep accepting —
// WAL snapshots written before the v2 switch are v1 files.
func binBytesV1(g *graph.Graph) []byte {
	flags := uint32(0)
	if g.Directed() {
		flags = 1
	}
	degs := make([]uint32, g.NumVertices())
	for u := range degs {
		degs[u] = uint32(g.OutDegree(int32(u)))
	}
	buf := bytes.NewBuffer(binHeader(flags, uint64(g.NumVertices()), uint64(g.NumArcs()), degs))
	for u := 0; u < g.NumVertices(); u++ {
		binary.Write(buf, binary.LittleEndian, g.Out(int32(u)))
	}
	return buf.Bytes()
}

func TestReadBinaryCSRMatchesReadBinary(t *testing.T) {
	for name, g := range binFamilies() {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data := buf.Bytes()
		inmem, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: ReadBinary: %v", name, err)
		}
		stream, err := ReadBinaryCSR(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: ReadBinaryCSR: %v", name, err)
		}
		if !sameCSR(g, inmem) {
			t.Fatalf("%s: ReadBinary round trip diverged", name)
		}
		if !sameCSR(inmem, stream) {
			t.Fatalf("%s: streaming reader differs from in-memory reader", name)
		}
	}
}

func TestReadBinaryCSRV1(t *testing.T) {
	g := gen.ErdosRenyi(60, 150, true, 11)
	stream, err := ReadBinaryCSR(bytes.NewReader(binBytesV1(g)))
	if err != nil {
		t.Fatal(err)
	}
	if !sameCSR(g, stream) {
		t.Fatal("v1 stream read diverged from source graph")
	}
}

func TestReadBinaryCSRErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, gen.Path(10)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "magic"},
		{"bad magic", []byte("NOPE\x01aaaaaaaaaaaaaaaaaaaaaaaa"), "magic"},
		{"truncated degrees", valid[:binHdrSize+5], "degree table truncated"},
		{"truncated adjacency", valid[:len(valid)-3], "adjacency truncated"},
		{"trailing data", append(append([]byte{}, valid...), 0xff), "trailing data"},
		{"degree exceeds arcs", binHeader(0, 2, 1, []uint32{5, 0}), "exceeds arc count"},
		{"degree wraps offset", binHeader(0, 2, 1, []uint32{0x8000_0000, 0}), "wraps the CSR offset"},
		{"degree sum short", append(binHeader(0, 2, 4, []uint32{1, 1}), make([]byte, 8)...), "degree sum"},
		{"implausible n", binHeader(0, 1<<32, 0, nil), "implausible"},
	}
	for _, tc := range cases {
		_, err := ReadBinaryCSR(bytes.NewReader(tc.data))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}

	// Rows that violate CSR invariants pass the streaming layer and must be
	// caught by graph.NewFromCSR's adoption validation: a self-loop...
	loop := append(binHeader(0, 2, 1, []uint32{1, 0}), 0, 0, 0, 0) // arc 0->0
	if _, err := ReadBinaryCSR(bytes.NewReader(loop)); err == nil ||
		!strings.Contains(err.Error(), "self-loop") {
		t.Errorf("self-loop: got %v", err)
	}
	// ...and an undirected arc without its mirror.
	half := append(binHeader(0, 2, 1, []uint32{1, 0}), 1, 0, 0, 0) // arc 0->1 only
	if _, err := ReadBinaryCSR(bytes.NewReader(half)); err == nil ||
		!strings.Contains(err.Error(), "mirror") {
		t.Errorf("missing mirror: got %v", err)
	}
}

// TestReadBinaryCSRMemoryBound pins the scale pipeline's core memory claim:
// the streaming reader's allocation volume is the returned CSR plus transient
// overhead that does not include an edge list — a small constant multiple of
// the CSR (append-doubling of the adjacency slab plus one fixed chunk
// buffer), and strictly less than the edge-list path on the same file. The
// end-to-end peak-RSS form of this claim (child-process VmHWM per loader) is
// measured by `bcbench -atscale`; this test keeps the allocation profile from
// regressing under `go test`.
func TestReadBinaryCSRMemoryBound(t *testing.T) {
	g := gen.ErdosRenyi(1<<15, 1<<18, false, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	csr := uint64(8*(g.NumVertices()+1)) + 4*uint64(g.NumArcs())

	measure := func(load func() (*graph.Graph, error)) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		gg, err := load()
		if err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		runtime.KeepAlive(gg)
		return after.TotalAlloc - before.TotalAlloc
	}

	stream := measure(func() (*graph.Graph, error) { return ReadBinaryCSR(bytes.NewReader(data)) })
	inmem := measure(func() (*graph.Graph, error) { return ReadBinary(bytes.NewReader(data)) })

	if limit := 3*csr + 1<<20; stream > limit {
		t.Errorf("streaming load allocated %d bytes, over the %d-byte bound (csr=%d)", stream, limit, csr)
	}
	if stream >= inmem {
		t.Errorf("streaming load allocated %d bytes, in-memory edge-list load %d — streaming should be cheaper", stream, inmem)
	}

	// With a size hint that matches the header's claim (the LoadFile / mmap
	// -fallback case) the reader preallocates both arrays: allocation volume
	// collapses to the CSR itself plus the chunk buffer, no growth slabs.
	sized := measure(func() (*graph.Graph, error) {
		return readBinaryCSRSized(bytes.NewReader(data), int64(len(data)))
	})
	if limit := csr + 1<<20; sized > limit {
		t.Errorf("size-verified load allocated %d bytes, over the %d-byte bound (csr=%d)", sized, limit, csr)
	}
}

// A size hint that disagrees with the header must not change behavior: the
// reader falls back to geometric growth and produces the identical graph.
func TestReadBinaryCSRSizedHintMismatch(t *testing.T) {
	g := gen.ErdosRenyi(300, 900, false, 7)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, hint := range []int64{-1, 0, 12, int64(len(data)) - 1, int64(len(data)) + 1, int64(len(data))} {
		got, err := readBinaryCSRSized(bytes.NewReader(data), hint)
		if err != nil {
			t.Fatalf("hint=%d: %v", hint, err)
		}
		if !sameCSR(g, got) {
			t.Fatalf("hint=%d: graph differs from source", hint)
		}
	}
}

func FuzzReadBinaryCSR(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, gen.Lollipop(4, 5)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(append(append([]byte{}, valid...), 0))
	f.Add(binBytesV1(gen.Path(6)))
	f.Add(binHeader(0, 2, 1, []uint32{5, 0}))
	f.Add(binHeader(0, 4, 1<<30, nil))
	f.Add([]byte("APGR\x02\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; when it accepts, the lenient reader must agree.
		g, err := ReadBinaryCSR(bytes.NewReader(data))
		if err != nil {
			return
		}
		g2, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("strict reader accepted what lenient rejected: %v", err)
		}
		if !sameCSR(g, g2) {
			t.Fatal("readers disagree on accepted input")
		}
	})
}
