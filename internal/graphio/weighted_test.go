package graphio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestWeightedEdgeListRoundTrip(t *testing.T) {
	g := gen.WithRandomWeights(gen.BarabasiAlbert(60, 2, 1), 9, 2)
	var buf bytes.Buffer
	if err := WriteWeightedEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, orig, err := ReadWeightedEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Weighted() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip shape wrong: %v", g2)
	}
	for u := 0; u < g2.NumVertices(); u++ {
		base := g2.ArcBase(int32(u))
		for i, v := range g2.Out(int32(u)) {
			gu, gv := int32(orig[u]), int32(orig[v])
			want := g.ArcWeight(g.ArcPos(gu, gv))
			if got := g2.ArcWeight(base + int64(i)); got != want {
				t.Fatalf("arc %d->%d weight %v, want %v", gu, gv, got, want)
			}
		}
	}
}

func TestWeightedEdgeListDefaults(t *testing.T) {
	in := "0 1\n1 2 3.5\n"
	g, _, err := ReadWeightedEdgeList(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if w := g.ArcWeight(g.ArcPos(0, 1)); w != 1 {
		t.Fatalf("default weight = %v, want 1", w)
	}
	if w := g.ArcWeight(g.ArcPos(1, 2)); w != 3.5 {
		t.Fatalf("weight = %v, want 3.5", w)
	}
}

func TestWeightedEdgeListErrors(t *testing.T) {
	cases := []string{
		"0 1 -2\n",  // negative weight
		"0 1 0\n",   // zero weight
		"0 1 abc\n", // bad weight
		"0\n",       // short line
		"-1 2 1\n",  // negative id
		"x 2 1\n",   // bad id
	}
	for _, in := range cases {
		if _, _, err := ReadWeightedEdgeList(strings.NewReader(in), false); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
	if err := WriteWeightedEdgeList(&bytes.Buffer{}, gen.Path(3)); err == nil {
		t.Fatal("expected error writing unweighted graph")
	}
}

func TestReadDIMACSWeighted(t *testing.T) {
	in := `c weighted road fragment
p sp 3 4
a 1 2 7
a 2 1 7
a 2 3 4
a 3 2 4
`
	g, err := ReadDIMACSWeighted(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() || g.NumEdges() != 2 {
		t.Fatalf("shape: %v", g)
	}
	if w := g.ArcWeight(g.ArcPos(0, 1)); w != 7 {
		t.Fatalf("w(0,1) = %v", w)
	}
	bad := []string{
		"p sp 2 1\na 1 2\n",   // missing weight
		"p sp 2 1\na 1 2 0\n", // zero weight
		"p sp 2 1\na 1 2 x\n", // bad weight
		"a 1 2 3\n",           // before problem line
		"c nothing\n",         // no problem line
	}
	for _, in := range bad {
		if _, err := ReadDIMACSWeighted(strings.NewReader(in), false); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}
