package graphio

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"

	"repro/internal/graph"
)

// GraphML and JSON interchange formats, so analysis results and inputs move
// between this library and mainstream tooling (Gephi, NetworkX, yEd read
// GraphML; d3 and notebooks read the JSON node-link form).

// graphML mirrors the subset of the GraphML schema we read and write.
type graphML struct {
	XMLName xml.Name     `xml:"graphml"`
	Keys    []graphMLKey `xml:"key"`
	Graph   graphMLGraph `xml:"graph"`
}

type graphMLKey struct {
	ID   string `xml:"id,attr"`
	For  string `xml:"for,attr"`
	Name string `xml:"attr.name,attr"`
	Type string `xml:"attr.type,attr"`
}

type graphMLGraph struct {
	EdgeDefault string        `xml:"edgedefault,attr"`
	Nodes       []graphMLNode `xml:"node"`
	Edges       []graphMLEdge `xml:"edge"`
}

type graphMLNode struct {
	ID string `xml:"id,attr"`
}

type graphMLEdge struct {
	Source string        `xml:"source,attr"`
	Target string        `xml:"target,attr"`
	Data   []graphMLData `xml:"data"`
}

type graphMLData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// WriteGraphML writes g as GraphML; weighted graphs carry a d0 "weight"
// edge attribute.
func WriteGraphML(w io.Writer, g *graph.Graph) error {
	doc := graphML{}
	if g.Weighted() {
		doc.Keys = append(doc.Keys, graphMLKey{ID: "d0", For: "edge", Name: "weight", Type: "double"})
	}
	doc.Graph.EdgeDefault = "undirected"
	if g.Directed() {
		doc.Graph.EdgeDefault = "directed"
	}
	for v := 0; v < g.NumVertices(); v++ {
		doc.Graph.Nodes = append(doc.Graph.Nodes, graphMLNode{ID: "n" + strconv.Itoa(v)})
	}
	add := func(u, v graph.V, weight float64) {
		e := graphMLEdge{Source: "n" + strconv.Itoa(int(u)), Target: "n" + strconv.Itoa(int(v))}
		if g.Weighted() {
			e.Data = append(e.Data, graphMLData{Key: "d0", Value: strconv.FormatFloat(weight, 'g', -1, 64)})
		}
		doc.Graph.Edges = append(doc.Graph.Edges, e)
	}
	if g.Weighted() {
		for _, e := range g.WeightedEdges() {
			add(e.From, e.To, e.W)
		}
	} else {
		for _, e := range g.Edges() {
			add(e.From, e.To, 1)
		}
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadGraphML reads a GraphML document written by WriteGraphML or by common
// tools: node ids are arbitrary strings (remapped densely in appearance
// order), edge direction comes from the graph's edgedefault, and a numeric
// "weight"-named attribute (or key d0) makes the result weighted.
func ReadGraphML(r io.Reader) (*graph.Graph, []string, error) {
	var doc graphML
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("graphio: graphml: %v", err)
	}
	weightKey := ""
	for _, k := range doc.Keys {
		if k.For == "edge" && (k.Name == "weight" || k.ID == "d0") {
			weightKey = k.ID
		}
	}
	directed := doc.Graph.EdgeDefault == "directed"
	remap := map[string]int32{}
	var names []string
	id := func(s string) int32 {
		if v, ok := remap[s]; ok {
			return v
		}
		v := int32(len(names))
		remap[s] = v
		names = append(names, s)
		return v
	}
	for _, n := range doc.Graph.Nodes {
		id(n.ID)
	}
	weighted := false
	var wedges []graph.WeightedEdge
	for _, e := range doc.Graph.Edges {
		we := graph.WeightedEdge{From: id(e.Source), To: id(e.Target), W: 1}
		for _, d := range e.Data {
			if d.Key == weightKey && weightKey != "" {
				w, err := strconv.ParseFloat(d.Value, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("graphio: graphml: bad weight %q", d.Value)
				}
				if !(w > 0) {
					return nil, nil, fmt.Errorf("graphio: graphml: non-positive weight %v", w)
				}
				we.W = w
				weighted = true
			}
		}
		wedges = append(wedges, we)
	}
	if weighted {
		return graph.NewWeightedFromEdges(len(names), wedges, directed), names, nil
	}
	edges := make([]graph.Edge, len(wedges))
	for i, we := range wedges {
		edges[i] = graph.Edge{From: we.From, To: we.To}
	}
	return graph.NewFromEdges(len(names), edges, directed), names, nil
}

// jsonGraph is the d3-style node-link form.
type jsonGraph struct {
	Directed bool       `json:"directed"`
	Nodes    []jsonNode `json:"nodes"`
	Links    []jsonLink `json:"links"`
}

type jsonNode struct {
	ID int32 `json:"id"`
}

type jsonLink struct {
	Source int32    `json:"source"`
	Target int32    `json:"target"`
	Weight *float64 `json:"weight,omitempty"`
}

// WriteJSON writes g in d3 node-link JSON.
func WriteJSON(w io.Writer, g *graph.Graph) error {
	doc := jsonGraph{Directed: g.Directed()}
	for v := 0; v < g.NumVertices(); v++ {
		doc.Nodes = append(doc.Nodes, jsonNode{ID: int32(v)})
	}
	if g.Weighted() {
		for _, e := range g.WeightedEdges() {
			we := e.W
			doc.Links = append(doc.Links, jsonLink{Source: e.From, Target: e.To, Weight: &we})
		}
	} else {
		for _, e := range g.Edges() {
			doc.Links = append(doc.Links, jsonLink{Source: e.From, Target: e.To})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON reads d3 node-link JSON written by WriteJSON. Node ids must be
// dense [0, n); any link carrying a weight makes the graph weighted.
func ReadJSON(r io.Reader) (*graph.Graph, error) {
	var doc jsonGraph
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("graphio: json: %v", err)
	}
	n := len(doc.Nodes)
	for _, nd := range doc.Nodes {
		if nd.ID < 0 || int(nd.ID) >= n {
			return nil, fmt.Errorf("graphio: json: node id %d not dense in [0,%d)", nd.ID, n)
		}
	}
	weighted := false
	for _, l := range doc.Links {
		if l.Weight != nil {
			weighted = true
			break
		}
	}
	if weighted {
		var wedges []graph.WeightedEdge
		for _, l := range doc.Links {
			w := 1.0
			if l.Weight != nil {
				w = *l.Weight
			}
			if !(w > 0) {
				return nil, fmt.Errorf("graphio: json: non-positive weight %v", w)
			}
			if badEndpoint(l, n) {
				return nil, fmt.Errorf("graphio: json: link endpoint out of range")
			}
			wedges = append(wedges, graph.WeightedEdge{From: l.Source, To: l.Target, W: w})
		}
		return graph.NewWeightedFromEdges(n, wedges, doc.Directed), nil
	}
	var edges []graph.Edge
	for _, l := range doc.Links {
		if badEndpoint(l, n) {
			return nil, fmt.Errorf("graphio: json: link endpoint out of range")
		}
		edges = append(edges, graph.Edge{From: l.Source, To: l.Target})
	}
	return graph.NewFromEdges(n, edges, doc.Directed), nil
}

func badEndpoint(l jsonLink, n int) bool {
	return l.Source < 0 || int(l.Source) >= n || l.Target < 0 || int(l.Target) >= n
}
