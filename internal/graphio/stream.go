package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/graph"
)

// streamChunk bounds the working buffers of ReadBinaryCSR: the reader's
// transient memory is O(streamChunk), independent of the graph's edge count
// (the CSR arrays it returns are of course O(n + m) — they ARE the graph).
const streamChunk = 1 << 16

// ReadBinaryCSR reads a WriteBinary stream (v1 or v2) directly into CSR
// form. Unlike ReadBinary it never materializes an edge list: the offset
// array is derived from the degree table as it streams past, and neighbors
// land in their final adjacency slots chunk by chunk, so the load's memory
// high-water is the returned CSR plus one fixed 256 KiB chunk buffer. This
// is the reader behind LoadFile(".bin") and bcd's -preload path.
//
// Hostile-header discipline matches ReadBinary: both CSR arrays grow
// geometrically with bytes actually read, so a header that claims 2^40 arcs
// costs memory proportional to the data it really ships, and a degree that
// would wrap an int32 CSR offset or overrun the declared arc count is
// rejected before the adjacency is touched. The reader is also strict where
// ReadBinary is lenient: rows must arrive sorted, duplicate-free, self-loop
// -free and (for undirected graphs) mirror-complete — everything WriteBinary
// guarantees — because the CSR is adopted as-is rather than rebuilt.
func ReadBinaryCSR(r io.Reader) (*graph.Graph, error) {
	return readBinaryCSRSized(r, -1)
}

// readBinaryCSRSized is ReadBinaryCSR with an optional source-size hint
// (fileSize < 0 means unknown). When the hint agrees byte-for-byte with the
// size the header implies, the header is no longer hostile — every byte it
// promises demonstrably exists — so both CSR arrays are preallocated at
// final size and the load's transient memory is exactly the chunk buffer.
// This is the path behind LoadFile and the mmap fallback, where the source
// is a regular file with a known size; a mismatched hint silently falls
// back to geometric growth (the stream may legitimately be a prefix of a
// longer pipe). Validation is identical either way.
func readBinaryCSRSized(r io.Reader, fileSize int64) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, streamChunk)
	flags, n, arcs, hdrLen, err := readBinHeader(br)
	if err != nil {
		return nil, err
	}
	sized := fileSize >= 0 && uint64(fileSize) == uint64(hdrLen)+4*n+4*arcs

	// One reused byte buffer serves both passes (binary.Read would allocate
	// fresh scratch per call, turning transient allocation O(m)); its size is
	// capped at the chunk limit so a hostile header cannot inflate it.
	buf := make([]byte, 4*min(max(n, arcs, 1), streamChunk))

	// Degree pass: fold the degree table into the offset array on the fly.
	offsCap := min(n+1, streamChunk)
	if sized {
		offsCap = n + 1
	}
	offs := make([]int64, 1, offsCap)
	var total uint64
	for read := uint64(0); read < n; {
		k := min(n-read, streamChunk)
		b := buf[:4*k]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("graphio: degree table truncated at vertex %d: %v", read, err)
		}
		for i := uint64(0); i < k; i++ {
			d := binary.LittleEndian.Uint32(b[4*i:])
			if d > 1<<31-1 {
				return nil, fmt.Errorf("graphio: vertex %d degree %d wraps the CSR offset (non-monotonic)", read+i, d)
			}
			total += uint64(d)
			if total > arcs {
				return nil, fmt.Errorf("graphio: degree prefix sum %d at vertex %d exceeds arc count %d", total, read+i, arcs)
			}
			offs = append(offs, int64(total))
		}
		read += k
	}
	if total != arcs {
		return nil, fmt.Errorf("graphio: degree sum %d != arc count %d", total, arcs)
	}

	// Adjacency pass: neighbors arrive in file order, which is already CSR
	// order, so they append straight into the slab. Row validation (range,
	// sortedness, self-loops, undirected symmetry) happens once, in
	// graph.NewFromCSR — a hostile stream can at worst make us buffer bytes
	// it actually shipped before the rejection lands.
	// The slab grows by explicit doubling capped at the declared arc count:
	// still geometric in bytes actually read (a truncated hostile stream
	// over-allocates at most 2x what it shipped), but with a 2x growth factor
	// the retired intermediate slabs total ~1x the final size, where append's
	// ~1.25x factor would retire ~4x (see TestReadBinaryCSRMemoryBound).
	// A size-verified source skips growth entirely.
	adjCap := min(arcs, streamChunk)
	if sized {
		adjCap = arcs
	}
	adj := make([]graph.V, 0, adjCap)
	for read := uint64(0); read < arcs; {
		k := min(arcs-read, streamChunk)
		b := buf[:4*k]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("graphio: adjacency truncated at arc %d: %v", read, err)
		}
		if need := read + k; need > uint64(cap(adj)) {
			grown := make([]graph.V, read, min(arcs, max(uint64(cap(adj))*2, need)))
			copy(grown, adj)
			adj = grown
		}
		for i := uint64(0); i < k; i++ {
			adj = append(adj, graph.V(binary.LittleEndian.Uint32(b[4*i:])))
		}
		read += k
	}
	// A well-formed file ends exactly at the last arc; trailing bytes mean
	// the header undersold the graph (the mmap reader enforces the same
	// property via an exact file-size check).
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("graphio: trailing data after %d arcs", arcs)
	}
	return graph.NewFromCSR(int(n), offs, adj, flags&1 != 0)
}
