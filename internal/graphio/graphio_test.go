package graphio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment line
% also a comment

10 20
20 30
10 30
`
	g, orig, err := ReadEdgeList(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if orig[0] != 10 || orig[1] != 20 || orig[2] != 30 {
		t.Fatalf("orig = %v", orig)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1\n",    // too few fields
		"a b\n",  // non-numeric
		"1 x\n",  // non-numeric second
		"-1 2\n", // negative id
		"3 -7\n", // negative id
	}
	for _, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in), true); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := gen.ErdosRenyi(80, 200, true, 5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, orig, err := ReadEdgeList(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	// ReadEdgeList densifies ids in appearance order, so compare through the
	// returned mapping: g2's vertex i is g's vertex orig[i].
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count %d != %d", g2.NumEdges(), g.NumEdges())
	}
	for u := 0; u < g2.NumVertices(); u++ {
		for _, v := range g2.Out(int32(u)) {
			if !g.HasArc(int32(orig[u]), int32(orig[v])) {
				t.Fatalf("arc %d->%d not in original", orig[u], orig[v])
			}
		}
	}
}

func TestReadDIMACS(t *testing.T) {
	in := `c road network fragment
p sp 4 5
a 1 2 7
a 2 1 7
a 2 3 4
a 3 2 4
a 1 4 2
`
	g, err := ReadDIMACS(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Paired arcs collapse: edges {0,1},{1,2},{0,3}.
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d, want 3", g.NumEdges())
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"a 1 2 3\n",           // arc before problem line
		"p sp x 3\n",          // bad n
		"p sp 2 1\na 1\n",     // short arc line
		"p sp 2 1\na 1 5 1\n", // out of range
		"p sp 2 1\nq 1 2\n",   // unknown record
		"c only comments\n",   // no problem line
		"p sp 2 1\na 1 z 1\n", // bad endpoint
	}
	for _, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in), false); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestBinaryRoundTripUndirected(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 300, AvgDeg: 4, Communities: 5, TopShare: 0.5, LeafFrac: 0.2, Seed: 3})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryRoundTripDirected(t *testing.T) {
	g := gen.ErdosRenyi(120, 500, true, 9)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Directed() {
		t.Fatal("directedness lost")
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph file at all"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
	// Truncated valid prefix.
	g := gen.Path(10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestBinaryRejectsBadOffsets(t *testing.T) {
	// Degree prefix sum exceeding the declared arc count must fail during
	// the degree stream, before the adjacency array is sized.
	bad := binHeader(0, 3, 2, []uint32{1, 5, 0})
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("expected prefix-sum-exceeds-arcs error")
	}
	// A degree that would wrap an int32 CSR offset is non-monotonic in
	// offset space and must be rejected outright.
	wrap := binHeader(0, 2, 1<<32, []uint32{0x8000_0000, 0x8000_0000})
	if _, err := ReadBinary(bytes.NewReader(wrap)); err == nil {
		t.Fatal("expected offset-wrap error")
	}
	// Degree sum smaller than the header's arc claim is also inconsistent.
	short := binHeader(0, 2, 10, []uint32{1, 1})
	if _, err := ReadBinary(bytes.NewReader(short)); err == nil {
		t.Fatal("expected degree-sum mismatch error")
	}
	// A header claiming a huge arc count with no payload must fail cheaply
	// on the missing degree stream instead of allocating per the claim.
	huge := binHeader(0, 1<<20, 1<<39, nil)
	if _, err := ReadBinary(bytes.NewReader(huge)); err == nil {
		t.Fatal("expected error for payloadless huge header")
	}
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	g := gen.Caveman(3, 4, false)

	elPath := filepath.Join(dir, "g.txt")
	if err := SaveFile(elPath, "", g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(elPath, "", false)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)

	binPath := filepath.Join(dir, "g.bin")
	if err := SaveFile(binPath, "", g); err != nil {
		t.Fatal(err)
	}
	g3, err := LoadFile(binPath, "", false)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g3)

	if err := SaveFile(filepath.Join(dir, "g.gr"), "", g); err == nil {
		t.Fatal("expected error writing DIMACS")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.txt"), "", false); err == nil {
		t.Fatal("expected error for missing file")
	}
	if _, err := LoadFile(elPath, "nope", false); err == nil {
		t.Fatal("expected unknown-format error")
	}
}

// Property: binary round trip preserves any small random graph exactly.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, directed bool) bool {
		g := gen.ErdosRenyi(40, 100, directed, seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return sameGraph(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func sameGraph(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() || a.Directed() != b.Directed() {
		return false
	}
	for u := 0; u < a.NumVertices(); u++ {
		x, y := a.Out(int32(u)), b.Out(int32(u))
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
	}
	return true
}

func assertSameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if !sameGraph(a, b) {
		t.Fatalf("graphs differ: %v vs %v", a, b)
	}
}

func TestLoadSaveGraphMLJSON(t *testing.T) {
	dir := t.TempDir()
	g := gen.Caveman(3, 4, false)
	for _, name := range []string{"g.graphml", "g.json"} {
		p := filepath.Join(dir, name)
		if err := SaveFile(p, "", g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := LoadFile(p, "", false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertSameGraph(t, g, g2)
	}
}
