// Package graphio reads and writes graphs in the formats the paper's inputs
// come in: SNAP-style whitespace edge lists, DIMACS shortest-path challenge
// files (the road networks), plus a fast binary CSR format for caching
// generated datasets between harness runs.
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// ReadEdgeList parses a SNAP-style edge list: one "src dst" pair per line,
// '#' or '%' lines are comments, blank lines ignored. Vertex ids may be
// arbitrary non-negative integers; they are remapped to a dense [0, n) space
// in first-appearance order. Returns the graph and the dense->original id
// mapping.
func ReadEdgeList(r io.Reader, directed bool) (*graph.Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	remap := make(map[int64]int32)
	var orig []int64
	id := func(raw int64) int32 {
		if v, ok := remap[raw]; ok {
			return v
		}
		v := int32(len(orig))
		remap[raw] = v
		orig = append(orig, raw)
		return v
	}
	var edges []graph.Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graphio: line %d: want 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, nil, fmt.Errorf("graphio: line %d: negative vertex id", lineNo)
		}
		edges = append(edges, graph.Edge{From: id(u), To: id(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graphio: %v", err)
	}
	return graph.NewFromEdges(len(orig), edges, directed), orig, nil
}

// ReadWeightedEdgeList parses a three-column "src dst weight" list with the
// same comment/remap rules as ReadEdgeList. Missing weights default to 1.
func ReadWeightedEdgeList(r io.Reader, directed bool) (*graph.Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	remap := make(map[int64]int32)
	var orig []int64
	id := func(raw int64) int32 {
		if v, ok := remap[raw]; ok {
			return v
		}
		v := int32(len(orig))
		remap[raw] = v
		orig = append(orig, raw)
		return v
	}
	var edges []graph.WeightedEdge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graphio: line %d: want >= 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, nil, fmt.Errorf("graphio: line %d: negative vertex id", lineNo)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("graphio: line %d: bad weight: %v", lineNo, err)
			}
			if !(w > 0) {
				return nil, nil, fmt.Errorf("graphio: line %d: non-positive weight %v", lineNo, w)
			}
		}
		edges = append(edges, graph.WeightedEdge{From: id(u), To: id(v), W: w})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graphio: %v", err)
	}
	return graph.NewWeightedFromEdges(len(orig), edges, directed), orig, nil
}

// WriteWeightedEdgeList writes g as a three-column weighted edge list.
func WriteWeightedEdgeList(w io.Writer, g *graph.Graph) error {
	if !g.Weighted() {
		return fmt.Errorf("graphio: graph is unweighted; use WriteEdgeList")
	}
	bw := bufio.NewWriter(w)
	kind := "Undirected"
	if g.Directed() {
		kind = "Directed"
	}
	fmt.Fprintf(bw, "# %s weighted graph\n# Nodes: %d Edges: %d\n", kind, g.NumVertices(), g.NumEdges())
	for _, e := range g.WeightedEdges() {
		fmt.Fprintf(bw, "%d\t%d\t%g\n", e.From, e.To, e.W)
	}
	return bw.Flush()
}

// ReadDIMACSWeighted parses a DIMACS .gr file keeping arc weights (the road
// networks' travel times), unlike ReadDIMACS which drops them.
func ReadDIMACSWeighted(r io.Reader, directed bool) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := -1
	var edges []graph.WeightedEdge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if len(fields) < 4 {
				return nil, fmt.Errorf("graphio: line %d: bad problem line", lineNo)
			}
			nn, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
			}
			n = nn
		case "a", "e":
			if n < 0 {
				return nil, fmt.Errorf("graphio: line %d: arc before problem line", lineNo)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("graphio: line %d: weighted arc needs 3 fields", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graphio: line %d: bad arc", lineNo)
			}
			if u < 1 || u > n || v < 1 || v > n {
				return nil, fmt.Errorf("graphio: line %d: vertex out of range", lineNo)
			}
			if !(w > 0) {
				return nil, fmt.Errorf("graphio: line %d: non-positive weight", lineNo)
			}
			edges = append(edges, graph.WeightedEdge{From: int32(u - 1), To: int32(v - 1), W: w})
		default:
			return nil, fmt.Errorf("graphio: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graphio: missing problem line")
	}
	return graph.NewWeightedFromEdges(n, edges, directed), nil
}

// WriteEdgeList writes g as a SNAP-style edge list with a descriptive header.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	kind := "Undirected"
	if g.Directed() {
		kind = "Directed"
	}
	fmt.Fprintf(bw, "# %s graph\n# Nodes: %d Edges: %d\n", kind, g.NumVertices(), g.NumEdges())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d\t%d\n", e.From, e.To)
	}
	return bw.Flush()
}

// ReadDIMACS parses a DIMACS shortest-path challenge graph ("p sp n m"
// problem line, "a u v w" arc lines, 1-indexed vertices; weights are ignored
// since the paper treats road networks as unweighted). DIMACS files list each
// undirected road segment as two arcs; pass directed=false to collapse them.
func ReadDIMACS(r io.Reader, directed bool) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := -1
	var edges []graph.Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if len(fields) < 4 {
				return nil, fmt.Errorf("graphio: line %d: bad problem line", lineNo)
			}
			nn, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
			}
			n = nn
		case "a", "e":
			if n < 0 {
				return nil, fmt.Errorf("graphio: line %d: arc before problem line", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graphio: line %d: bad arc line", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graphio: line %d: bad arc endpoints", lineNo)
			}
			if u < 1 || u > n || v < 1 || v > n {
				return nil, fmt.Errorf("graphio: line %d: vertex out of range", lineNo)
			}
			edges = append(edges, graph.Edge{From: int32(u - 1), To: int32(v - 1)})
		default:
			return nil, fmt.Errorf("graphio: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graphio: missing problem line")
	}
	return graph.NewFromEdges(n, edges, directed), nil
}

// The binary CSR cache format comes in two versions. v1 ("APGR\x01") packs
// the header into 25 bytes, which leaves the adjacency array misaligned in
// the file. v2 ("APGR\x02") pads the magic to 8 bytes so the header is 28
// bytes and both the degree table (offset 28) and the adjacency array
// (offset 28+4n) are 4-byte aligned — the property the memory-mapped reader
// needs to reinterpret the mapping as []int32 without copying. WriteBinary
// emits v2; every reader accepts both.
const (
	binMagic  = "APGR\x01"
	binMagic2 = "APGR\x02"
	// binPad follows the v2 magic, and binHdrSize is the full v2 header:
	// magic(5) + pad(3) + flags(4) + n(8) + arcs(8).
	binPad     = 3
	binHdrSize = 28
)

// WriteBinary writes g in the repository's binary CSR cache format (v2).
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic2); err != nil {
		return err
	}
	if _, err := bw.Write(make([]byte, binPad)); err != nil {
		return err
	}
	flags := uint32(0)
	if g.Directed() {
		flags = 1
	}
	hdr := []any{flags, uint64(g.NumVertices()), uint64(g.NumArcs())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for u := 0; u < g.NumVertices(); u++ {
		if err := binary.Write(bw, binary.LittleEndian, uint32(g.OutDegree(int32(u)))); err != nil {
			return err
		}
	}
	for u := 0; u < g.NumVertices(); u++ {
		if err := binary.Write(bw, binary.LittleEndian, g.Out(int32(u))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readBinHeader consumes a v1 or v2 header and returns the declared shape
// after the shared plausibility checks. Readers must still validate the
// degree table against the declared arc count before trusting either number.
func readBinHeader(br io.Reader) (flags uint32, n, arcs uint64, hdrLen int, err error) {
	magic := make([]byte, len(binMagic))
	if _, err = io.ReadFull(br, magic); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("graphio: reading magic: %v", err)
	}
	hdrLen = len(binMagic) + 4 + 8 + 8
	switch string(magic) {
	case binMagic:
	case binMagic2:
		hdrLen = binHdrSize
		pad := make([]byte, binPad)
		if _, err = io.ReadFull(br, pad); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("graphio: reading header pad: %v", err)
		}
		if pad[0] != 0 || pad[1] != 0 || pad[2] != 0 {
			return 0, 0, 0, 0, fmt.Errorf("graphio: non-zero header padding %v", pad)
		}
	default:
		return 0, 0, 0, 0, fmt.Errorf("graphio: bad magic %q", magic)
	}
	if err = binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return 0, 0, 0, 0, err
	}
	if err = binary.Read(br, binary.LittleEndian, &n); err != nil {
		return 0, 0, 0, 0, err
	}
	if err = binary.Read(br, binary.LittleEndian, &arcs); err != nil {
		return 0, 0, 0, 0, err
	}
	if n > 1<<31 || arcs > 1<<40 {
		return 0, 0, 0, 0, fmt.Errorf("graphio: implausible sizes n=%d arcs=%d", n, arcs)
	}
	return flags, n, arcs, hdrLen, nil
}

// ReadBinary reads a graph written by WriteBinary (either format version).
// It is the lenient reader: rows are rebuilt through graph.NewFromEdges, so
// unsorted or duplicate neighbors in a hand-crafted file are tolerated.
// Loading pipelines use ReadBinaryCSR, which adopts the CSR directly with
// bounded working memory and strict row validation.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	flags, n, arcs, _, err := readBinHeader(br)
	if err != nil {
		return nil, err
	}
	// Stream the degree table in bounded chunks, validating the derived CSR
	// offsets as they accumulate: a degree that would wrap an int32 offset
	// (non-monotonic in CSR space) or push the prefix sum past the declared
	// arc count is rejected before the adjacency array is ever sized — a
	// hostile header cannot make us allocate ahead of the data it actually
	// ships. (append grows degs geometrically with bytes read, so a
	// truncated stream costs memory proportional to its real length, not to
	// the header's claim.)
	const binChunk = 1 << 16
	degs := make([]uint32, 0, min(n, binChunk))
	buf := make([]uint32, min(n, binChunk))
	var total uint64
	for read := uint64(0); read < n; {
		chunk := buf[:min(n-read, binChunk)]
		if err := binary.Read(br, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		for i, d := range chunk {
			if d > 1<<31-1 {
				return nil, fmt.Errorf("graphio: vertex %d degree %d wraps the CSR offset (non-monotonic)", read+uint64(i), d)
			}
			total += uint64(d)
			if total > arcs {
				return nil, fmt.Errorf("graphio: degree prefix sum %d at vertex %d exceeds arc count %d", total, read+uint64(i), arcs)
			}
		}
		degs = append(degs, chunk...)
		read += uint64(len(chunk))
	}
	if total != arcs {
		return nil, fmt.Errorf("graphio: degree sum %d != arc count %d", total, arcs)
	}
	directed := flags&1 != 0
	// Stream the adjacency the same way, walking the degree table in step;
	// neighbors are range-checked as they arrive.
	var edges []graph.Edge
	abuf := make([]int32, min(arcs, binChunk))
	u, consumed := uint64(0), uint32(0)
	for read := uint64(0); read < arcs; {
		chunk := abuf[:min(arcs-read, binChunk)]
		if err := binary.Read(br, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		for _, v := range chunk {
			for consumed == degs[u] {
				u++
				consumed = 0
			}
			if v < 0 || uint64(v) >= n {
				return nil, fmt.Errorf("graphio: neighbor %d out of range", v)
			}
			if directed || int32(u) <= v {
				edges = append(edges, graph.Edge{From: int32(u), To: v})
			}
			consumed++
		}
		read += uint64(len(chunk))
	}
	return graph.NewFromEdges(int(n), edges, directed), nil
}

// Format names accepted by LoadFile/SaveFile.
const (
	FormatEdgeList = "edgelist"
	FormatDIMACS   = "dimacs"
	FormatBinary   = "bin"
	FormatGraphML  = "graphml"
	FormatJSON     = "json"
)

// LoadFile reads a graph file, inferring format from the extension
// (.txt/.el -> edge list, .gr -> DIMACS, .bin -> binary) unless format is
// non-empty.
func LoadFile(path, format string, directed bool) (*graph.Graph, error) {
	if format == "" {
		format = inferFormat(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case FormatEdgeList:
		g, _, err := ReadEdgeList(f, directed)
		return g, err
	case FormatDIMACS:
		return ReadDIMACS(f, directed)
	case FormatBinary:
		size := int64(-1)
		if fi, err := f.Stat(); err == nil {
			size = fi.Size()
		}
		return readBinaryCSRSized(f, size)
	case FormatGraphML:
		g, _, err := ReadGraphML(f)
		return g, err
	case FormatJSON:
		return ReadJSON(f)
	default:
		return nil, fmt.Errorf("graphio: unknown format %q", format)
	}
}

// SaveFile writes a graph file; format inference mirrors LoadFile
// (DIMACS output is not supported).
func SaveFile(path, format string, g *graph.Graph) error {
	if format == "" {
		format = inferFormat(path)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case FormatEdgeList:
		return WriteEdgeList(f, g)
	case FormatBinary:
		return WriteBinary(f, g)
	case FormatGraphML:
		return WriteGraphML(f, g)
	case FormatJSON:
		return WriteJSON(f, g)
	default:
		return fmt.Errorf("graphio: cannot write format %q", format)
	}
}

func inferFormat(path string) string {
	switch {
	case strings.HasSuffix(path, ".gr"):
		return FormatDIMACS
	case strings.HasSuffix(path, ".bin"):
		return FormatBinary
	case strings.HasSuffix(path, ".graphml") || strings.HasSuffix(path, ".xml"):
		return FormatGraphML
	case strings.HasSuffix(path, ".json"):
		return FormatJSON
	default:
		return FormatEdgeList
	}
}
