package graphio

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// binHeader assembles a binary-format header (magic, flags, n, arcs) plus an
// optional degree table — the raw material for hardening tests and fuzz
// seeds targeting ReadBinary's pre-allocation validation.
func binHeader(flags uint32, n, arcs uint64, degs []uint32) []byte {
	var buf bytes.Buffer
	buf.WriteString(binMagic)
	binary.Write(&buf, binary.LittleEndian, flags)
	binary.Write(&buf, binary.LittleEndian, n)
	binary.Write(&buf, binary.LittleEndian, arcs)
	if degs != nil {
		binary.Write(&buf, binary.LittleEndian, degs)
	}
	return buf.Bytes()
}

// Fuzz targets: the parsers must never panic on arbitrary input — they
// either return a graph or an error. Run with `go test -fuzz FuzzReadEdgeList
// ./internal/graphio` for continuous fuzzing; the seed corpus below runs as
// part of the normal test suite.

func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"",
		"# comment\n1 2\n",
		"1 2\n2 3\n3 1\n",
		"999999999999999999999 1\n",
		"1 2 extra fields here\n",
		"-1 5\n",
		"a b\n",
		strings.Repeat("7 8\n", 100),
		"\x00\x01\x02",
		"1\t2\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s), true)
		f.Add([]byte(s), false)
	}
	f.Fuzz(func(t *testing.T, data []byte, directed bool) {
		g, _, err := ReadEdgeList(bytes.NewReader(data), directed)
		if err == nil && g != nil {
			// Returned graphs must be internally consistent.
			if g.NumArcs() < 0 || g.NumVertices() < 0 {
				t.Fatal("negative sizes")
			}
			var buf bytes.Buffer
			if werr := WriteEdgeList(&buf, g); werr != nil {
				t.Fatalf("write-back failed: %v", werr)
			}
		}
	})
}

func FuzzReadWeightedEdgeList(f *testing.F) {
	seeds := []string{
		"0 1 2.5\n",
		"0 1\n",
		"0 1 -1\n",
		"0 1 NaN\n",
		"0 1 Inf\n",
		"0 1 1e308\n1 2 1e-308\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s), false)
	}
	f.Fuzz(func(t *testing.T, data []byte, directed bool) {
		g, _, err := ReadWeightedEdgeList(bytes.NewReader(data), directed)
		if err == nil && g != nil && g.NumArcs() > 0 {
			// Every accepted weight must be positive.
			for u := int32(0); int(u) < g.NumVertices(); u++ {
				for _, w := range g.OutWeights(u) {
					if !(w > 0) {
						t.Fatalf("accepted non-positive weight %v", w)
					}
				}
			}
		}
	})
}

func FuzzReadDIMACS(f *testing.F) {
	seeds := []string{
		"p sp 3 2\na 1 2 5\na 2 3 4\n",
		"c only comments\n",
		"p sp 0 0\n",
		"p sp -1 2\n",
		"p sp 2 1\na 1 2 1\nq\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadDIMACS(bytes.NewReader(data), false)
		if err == nil && g != nil && g.NumVertices() < 0 {
			t.Fatal("negative vertex count accepted")
		}
		ReadDIMACSWeighted(bytes.NewReader(data), true)
	})
}

func FuzzReadBinary(f *testing.F) {
	// A valid file plus mutations.
	var buf bytes.Buffer
	g, _, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"), false)
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("APGR\x01garbage"))
	f.Add([]byte{})
	// Header claims 2 vertices / 1 arc but the first degree already exceeds
	// the arc count (prefix sum past arcs).
	f.Add(binHeader(0, 2, 1, []uint32{5, 0}))
	// A degree that would wrap an int32 CSR offset (non-monotonic).
	f.Add(binHeader(0, 2, 1, []uint32{0x8000_0000, 0}))
	// Huge arc count with no adjacency payload: must fail on the degree
	// stream, not allocate per the header's claim.
	f.Add(binHeader(0, 4, 1<<30, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic and never allocate absurdly (the header caps
		// guard that); errors are fine.
		ReadBinary(bytes.NewReader(data))
	})
}
