// Package sssp provides single-source shortest paths over weighted graphs:
// a reference binary-heap Dijkstra and the Meyer–Sanders delta-stepping
// algorithm with shared-memory parallel relaxation. Delta-stepping is the
// parallel weighted substrate the weighted APGRE engine (internal/core) uses
// the way the unweighted engine uses level-synchronous BFS — the paper
// treats weighted parallelism as out of scope; this package closes that gap.
package sssp

import (
	"container/heap"
	"math"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// Unreached marks unreachable vertices in distance slices.
var Unreached = math.Inf(1)

// Dijkstra computes distances from s over a weighted graph (positive
// weights) with a binary heap and lazy deletion.
func Dijkstra(g *graph.Graph, s graph.V) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[s] = 0
	pq := &dijkstraPQ{}
	heap.Push(pq, dijkstraItem{0, s})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(dijkstraItem)
		if it.d != dist[it.v] {
			continue
		}
		wts := g.OutWeights(it.v)
		for i, w := range g.Out(it.v) {
			if nd := it.d + wts[i]; nd < dist[w] {
				dist[w] = nd
				heap.Push(pq, dijkstraItem{nd, w})
			}
		}
	}
	return dist
}

type dijkstraItem struct {
	d float64
	v graph.V
}

type dijkstraPQ []dijkstraItem

func (q dijkstraPQ) Len() int           { return len(q) }
func (q dijkstraPQ) Less(i, j int) bool { return q[i].d < q[j].d }
func (q dijkstraPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *dijkstraPQ) Push(x any)        { *q = append(*q, x.(dijkstraItem)) }
func (q *dijkstraPQ) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// DefaultDelta picks the classic Δ heuristic: the average edge weight
// (clamped positive), balancing bucket count against re-relaxations.
func DefaultDelta(g *graph.Graph) float64 {
	if g.NumArcs() == 0 {
		return 1
	}
	var sum float64
	for u := 0; u < g.NumVertices(); u++ {
		for _, w := range g.OutWeights(graph.V(u)) {
			sum += w
		}
	}
	d := sum / float64(g.NumArcs())
	if d <= 0 {
		return 1
	}
	return d
}

// Workspace holds reusable delta-stepping scratch — the distance array, the
// relaxation bag, the bucket queue and a free list of consumed bucket slices
// — so repeated single-source calls (the weighted fine engine runs one per
// root) stop allocating once warm. The zero value is ready to use; a
// Workspace is single-goroutine (the parallelism is inside each call).
type Workspace struct {
	dist    []float64
	buckets [][]graph.V
	settled []graph.V
	reins   []graph.V
	free    [][]graph.V
	bag     *par.Bag[graph.V]
	bagP    int
}

// grab returns an empty vertex slice, reusing a consumed bucket when one is
// free.
func (ws *Workspace) grab() []graph.V {
	if k := len(ws.free) - 1; k >= 0 {
		b := ws.free[k]
		ws.free[k] = nil
		ws.free = ws.free[:k]
		return b[:0]
	}
	return nil
}

// pushBucket files v under bucket idx, growing the queue as needed.
func (ws *Workspace) pushBucket(v graph.V, idx int) {
	for len(ws.buckets) <= idx {
		ws.buckets = append(ws.buckets, nil)
	}
	if ws.buckets[idx] == nil {
		ws.buckets[idx] = ws.grab()
	}
	ws.buckets[idx] = append(ws.buckets[idx], v)
}

// DeltaStepping computes distances from s with bucketed parallel relaxation:
// bucket i holds tentative distances in [iΔ, (i+1)Δ); light edges (w ≤ Δ)
// are relaxed iteratively within the bucket, heavy edges once per settled
// vertex. delta <= 0 selects DefaultDelta; workers <= 0 means GOMAXPROCS.
// Each call allocates fresh scratch; loops over many sources should reuse a
// Workspace instead.
func DeltaStepping(g *graph.Graph, s graph.V, delta float64, workers int) []float64 {
	return new(Workspace).DeltaStepping(g, s, delta, workers)
}

// DeltaStepping is the workspace-reusing form of the package-level function:
// identical algorithm and results, but distances land in the workspace's own
// array (valid until the next call) and all scratch is recycled.
func (ws *Workspace) DeltaStepping(g *graph.Graph, s graph.V, delta float64, workers int) []float64 {
	n := g.NumVertices()
	if cap(ws.dist) < n {
		ws.dist = make([]float64, n)
	}
	dist := ws.dist[:n:n]
	for i := range dist {
		dist[i] = Unreached
	}
	if n == 0 {
		return dist
	}
	if delta <= 0 {
		delta = DefaultDelta(g)
	}
	p := par.Workers(workers)
	dist[s] = 0

	for i := range ws.buckets {
		if b := ws.buckets[i]; b != nil {
			ws.buckets[i] = nil
			ws.free = append(ws.free, b)
		}
	}
	ws.buckets = ws.buckets[:0]
	ws.pushBucket(s, 0)
	if ws.bag == nil || ws.bagP != p {
		ws.bag = par.NewBag[graph.V](p)
		ws.bagP = p
	}
	bag := ws.bag
	inBucket := func(v graph.V, i int) bool {
		d := atomicLoadFloat(&dist[v])
		return d >= float64(i)*delta && d < float64(i+1)*delta
	}

	// relax atomically lowers dist[v] and reports whether it changed.
	relax := func(v graph.V, nd float64) bool {
		for {
			old := atomicLoadFloat(&dist[v])
			if nd >= old {
				return false
			}
			if atomicCASFloat(&dist[v], old, nd) {
				return true
			}
		}
	}

	for i := 0; i < len(ws.buckets); i++ {
		settled := ws.settled[:0]
		// Light-edge fixpoint within bucket i.
		frontier := ws.buckets[i]
		ws.buckets[i] = nil
		for len(frontier) > 0 {
			cur := frontier
			frontier = nil
			// Deduplicate lazily: process a vertex only if it still belongs
			// to this bucket.
			par.ForWorker(len(cur), p, 0, func(w, k int) {
				v := cur[k]
				if !inBucket(v, i) {
					return
				}
				dv := atomicLoadFloat(&dist[v])
				wts := g.OutWeights(v)
				for j, u := range g.Out(v) {
					if wts[j] > delta {
						continue
					}
					if relax(u, dv+wts[j]) {
						bag.Add(w, u)
					}
				}
			})
			settled = append(settled, cur...)
			reinserted := bag.Drain(ws.reins)
			ws.reins = reinserted
			ws.free = append(ws.free, cur) // consumed; recycle its backing array
			for _, v := range reinserted {
				if inBucket(v, i) {
					if frontier == nil {
						frontier = ws.grab()
					}
					frontier = append(frontier, v)
				} else {
					ws.pushBucket(v, int(atomicLoadFloat(&dist[v])/delta))
				}
			}
		}
		// Heavy edges of everything settled in this bucket.
		par.ForWorker(len(settled), p, 0, func(w, k int) {
			v := settled[k]
			dv := atomicLoadFloat(&dist[v])
			if dv >= float64(i+1)*delta || dv < float64(i)*delta {
				return // stale duplicate from a light-phase reinsertion
			}
			wts := g.OutWeights(v)
			for j, u := range g.Out(v) {
				if wts[j] <= delta {
					continue
				}
				if relax(u, dv+wts[j]) {
					bag.Add(w, u)
				}
			}
		})
		ws.settled = settled[:0]
		ws.reins = bag.Drain(ws.reins)
		for _, v := range ws.reins {
			ws.pushBucket(v, int(atomicLoadFloat(&dist[v])/delta))
		}
	}
	return dist
}

func atomicLoadFloat(addr *float64) float64 {
	return math.Float64frombits(atomic.LoadUint64((*uint64)(floatPtr(addr))))
}

func atomicCASFloat(addr *float64, old, new float64) bool {
	return atomic.CompareAndSwapUint64((*uint64)(floatPtr(addr)),
		math.Float64bits(old), math.Float64bits(new))
}
