package sssp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestDijkstraHand(t *testing.T) {
	// 0 -1- 1 -1- 2, plus a heavy shortcut 0 -5- 2.
	g := graph.NewWeightedFromEdges(3, []graph.WeightedEdge{
		{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1}, {From: 0, To: 2, W: 5},
	}, false)
	d := Dijkstra(g, 0)
	if d[0] != 0 || d[1] != 1 || d[2] != 2 {
		t.Fatalf("dist = %v", d)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := graph.NewWeightedFromEdges(3, []graph.WeightedEdge{{From: 0, To: 1, W: 2}}, true)
	d := Dijkstra(g, 0)
	if !math.IsInf(d[2], 1) {
		t.Fatalf("dist[2] = %v, want +Inf", d[2])
	}
	if d[1] != 2 {
		t.Fatalf("dist[1] = %v", d[1])
	}
}

func sameDists(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ia, ib := math.IsInf(a[i], 1), math.IsInf(b[i], 1)
		if ia != ib {
			return false
		}
		if !ia && math.Abs(a[i]-b[i]) > 1e-9*(1+a[i]) {
			return false
		}
	}
	return true
}

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	cases := []*graph.Graph{
		gen.WithRandomWeights(gen.Grid2D(12, 12), 7, 1),
		gen.WithRandomWeights(gen.BarabasiAlbert(300, 3, 2), 9, 2),
		gen.WithRandomWeights(gen.ErdosRenyi(200, 800, true, 3), 5, 3),
		gen.WithRandomWeights(gen.SocialLike(gen.SocialParams{N: 400, AvgDeg: 5,
			Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 4}), 6, 4),
		gen.WithRandomWeights(gen.Path(64), 9, 5),
	}
	for gi, g := range cases {
		want := Dijkstra(g, 0)
		for _, delta := range []float64{0, 0.5, 1, 3, 100} {
			for _, p := range []int{1, 3} {
				got := DeltaStepping(g, 0, delta, p)
				if !sameDists(want, got) {
					t.Fatalf("graph %d delta %v workers %d: distances differ", gi, delta, p)
				}
			}
		}
	}
}

func TestDeltaSteppingSingleVertex(t *testing.T) {
	g := graph.NewWeightedFromEdges(1, nil, false)
	d := DeltaStepping(g, 0, 0, 2)
	if d[0] != 0 {
		t.Fatalf("dist = %v", d)
	}
}

func TestDefaultDelta(t *testing.T) {
	g := graph.NewWeightedFromEdges(3, []graph.WeightedEdge{
		{From: 0, To: 1, W: 2}, {From: 1, To: 2, W: 4},
	}, false)
	if d := DefaultDelta(g); d != 3 {
		t.Fatalf("delta = %v, want 3 (avg)", d)
	}
	if d := DefaultDelta(graph.NewWeightedFromEdges(2, nil, false)); d != 1 {
		t.Fatalf("empty delta = %v, want 1", d)
	}
}

// Property: delta-stepping agrees with Dijkstra on random weighted graphs
// across Δ choices.
func TestQuickDeltaStepping(t *testing.T) {
	f := func(seed int64, cfg uint8) bool {
		directed := cfg&1 != 0
		base := gen.ErdosRenyi(80, 240, directed, seed)
		g := gen.WithRandomWeights(base, 1+int(cfg>>1)%9, seed+1)
		want := Dijkstra(g, 0)
		got := DeltaStepping(g, 0, float64(cfg%5), 2)
		return sameDists(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
