package sssp

import "unsafe"

// floatPtr reinterprets a float64 pointer for atomic bit operations.
func floatPtr(addr *float64) unsafe.Pointer { return unsafe.Pointer(addr) }
