package decompose

import "sort"

// SizeInfo describes one sub-graph's size for Table 4.
type SizeInfo struct {
	Verts int
	Arcs  int64
}

// SubgraphSizes returns per-sub-graph sizes sorted by decreasing vertex
// count (ties by arcs) — the shape Table 4 reports (top, second, third
// sub-graph).
func (d *Decomposition) SubgraphSizes() []SizeInfo {
	out := make([]SizeInfo, len(d.Subgraphs))
	for i, sg := range d.Subgraphs {
		out[i] = SizeInfo{Verts: sg.NumVerts(), Arcs: sg.NumArcs()}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Verts != out[j].Verts {
			return out[i].Verts > out[j].Verts
		}
		return out[i].Arcs > out[j].Arcs
	})
	return out
}

// TotalRoots returns the total number of BFS roots across sub-graphs; the
// difference versus the vertex count is the total-redundancy saving.
func (d *Decomposition) TotalRoots() int64 {
	var t int64
	for _, sg := range d.Subgraphs {
		t += int64(len(sg.Roots))
	}
	return t
}
