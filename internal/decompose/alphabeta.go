package decompose

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
)

// computeAlphaBeta fills Alpha and Beta for every boundary articulation
// point of every sub-graph, by the method selected in opt.
func computeAlphaBeta(d *Decomposition, opt Options) error {
	switch opt.AlphaBeta {
	case AlphaBetaAuto:
		if d.G.Directed() {
			alphaBetaBFS(d, opt)
		} else {
			alphaBetaTree(d)
		}
	case AlphaBetaTree:
		if d.G.Directed() {
			return fmt.Errorf("decompose: AlphaBetaTree requires an undirected graph")
		}
		alphaBetaTree(d)
	case AlphaBetaBFS:
		alphaBetaBFS(d, opt)
	default:
		return fmt.Errorf("decompose: unknown AlphaBeta method %d", opt.AlphaBeta)
	}
	return nil
}

// alphaBetaTree computes α = β for undirected graphs via subtree sums on the
// sub-graph/articulation-point bipartite forest, in O(V + E) total: removing
// the tree edge (SGi, a) splits a's tree in two; α_SGi(a) is the vertex
// weight on a's side minus one (excluding a itself). Each graph vertex is
// attributed to exactly one tree node — boundary APs to their own AP node,
// every other vertex to its unique sub-graph — so subtree sums count
// vertices exactly once. This is an O(#AP · (V+E)) → O(V+E) improvement over
// the paper's per-AP BFS; TestTreeMatchesBFS pins the equivalence.
func alphaBetaTree(d *Decomposition) {
	numSG := len(d.Subgraphs)
	apIndex := map[graph.V]int32{}
	var apVerts []graph.V
	for _, sg := range d.Subgraphs {
		for _, la := range sg.Arts {
			v := sg.Verts[la]
			if _, ok := apIndex[v]; !ok {
				apIndex[v] = int32(len(apVerts))
				apVerts = append(apVerts, v)
			}
		}
	}
	numAP := len(apVerts)
	adjSG := make([][]int32, numSG) // sub-graph -> AP node ids
	adjAP := make([][]int32, numAP) // AP node -> sub-graph ids
	for si, sg := range d.Subgraphs {
		for _, la := range sg.Arts {
			ai := apIndex[sg.Verts[la]]
			adjSG[si] = append(adjSG[si], ai)
			adjAP[ai] = append(adjAP[ai], int32(si))
		}
	}
	// Node weights: AP nodes weigh 1; a sub-graph weighs its vertices that
	// are not boundary APs.
	wSG := make([]int64, numSG)
	for si, sg := range d.Subgraphs {
		for l := range sg.Verts {
			if !sg.IsArt[l] {
				wSG[si]++
			}
		}
	}

	// Iterative DFS over the forest. Node encoding: sub-graphs occupy
	// [0, numSG), AP node a is numSG + a.
	total := numSG + numAP
	sub := make([]int64, total)
	parent := make([]int32, total)
	visited := make([]bool, total)
	treeTotal := make([]int64, total)
	order := make([]int32, 0, total)
	var stack []int32

	for root := 0; root < total; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		parent[root] = -1
		start := len(order)
		stack = append(stack[:0], int32(root))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, u)
			if int(u) < numSG {
				for _, a := range adjSG[u] {
					w := int32(numSG) + a
					if !visited[w] {
						visited[w] = true
						parent[w] = u
						stack = append(stack, w)
					}
				}
			} else {
				for _, s := range adjAP[u-int32(numSG)] {
					if !visited[s] {
						visited[s] = true
						parent[s] = u
						stack = append(stack, s)
					}
				}
			}
		}
		// Reverse discovery order is a valid children-before-parents order
		// for a DFS tree, so one backward pass accumulates subtree sums.
		var tt int64
		for i := len(order) - 1; i >= start; i-- {
			u := order[i]
			if int(u) < numSG {
				sub[u] += wSG[u]
			} else {
				sub[u]++
			}
			if parent[u] >= 0 {
				sub[parent[u]] += sub[u]
			} else {
				tt = sub[u]
			}
		}
		for i := start; i < len(order); i++ {
			treeTotal[order[i]] = tt
		}
	}

	for si, sg := range d.Subgraphs {
		for _, la := range sg.Arts {
			apNode := int32(numSG) + apIndex[sg.Verts[la]]
			sgNode := int32(si)
			var apSide int64
			switch {
			case parent[apNode] == sgNode:
				apSide = sub[apNode]
			case parent[sgNode] == apNode:
				apSide = treeTotal[sgNode] - sub[sgNode]
			default:
				// Cannot happen in a forest: every (SGi, a) incidence is a
				// tree edge, so one endpoint is the other's DFS parent.
				panic("decompose: bipartite incidence is not a tree edge")
			}
			alpha := float64(apSide - 1)
			sg.Alpha[la] = alpha
			sg.Beta[la] = alpha
		}
	}
}

// abScratch is per-worker reusable state for alphaBetaBFS.
type abScratch struct {
	inSG    []int32 // sub-graph membership, epoch-marked
	visited []int32 // BFS visited, epoch-marked
	sgEpoch int32
	bfsEp   int32
	queue   []graph.V
}

// count runs a BFS from a over `from`, never entering vertices of the
// current sub-graph other than a, and returns the number of vertices reached
// beyond a.
func (sc *abScratch) count(from *graph.Graph, a graph.V) float64 {
	sc.bfsEp++
	ep := sc.bfsEp
	sc.visited[a] = ep
	sc.queue = append(sc.queue[:0], a)
	var reached int64
	for len(sc.queue) > 0 {
		u := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		for _, v := range from.Out(u) {
			if sc.visited[v] == ep {
				continue
			}
			if sc.inSG[v] == sc.sgEpoch && v != a {
				continue
			}
			sc.visited[v] = ep
			sc.queue = append(sc.queue, v)
			reached++
		}
	}
	return float64(reached)
}

// alphaBetaBFS computes α and β per the paper's operational definition (§4):
// a BFS from each boundary articulation point a that never re-enters the
// sub-graph counts "the number of vertices which a can reach without passing
// through SGi", and a reverse BFS counts β. Sub-graphs are processed in
// parallel with per-worker scratch, mirroring the paper's "parallel BFS"
// step.
func alphaBetaBFS(d *Decomposition, opt Options) {
	g := d.G
	n := g.NumVertices()
	directed := g.Directed()
	var tr *graph.Graph
	if directed {
		tr = g.Transpose()
	}
	p := par.Workers(opt.Workers)
	scratches := make([]*abScratch, p)
	par.ForWorker(len(d.Subgraphs), p, 1, func(w, task int) {
		sc := scratches[w]
		if sc == nil {
			sc = &abScratch{inSG: make([]int32, n), visited: make([]int32, n)}
			scratches[w] = sc
		}
		sg := d.Subgraphs[task]
		if len(sg.Arts) == 0 {
			return
		}
		sc.sgEpoch++
		for _, v := range sg.Verts {
			sc.inSG[v] = sc.sgEpoch
		}
		for _, la := range sg.Arts {
			a := sg.Verts[la]
			sg.Alpha[la] = sc.count(g, a)
			if directed {
				sg.Beta[la] = sc.count(tr, a)
			} else {
				sg.Beta[la] = sg.Alpha[la]
			}
		}
	})
}
