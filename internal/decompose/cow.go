package decompose

// Copy-on-write clone support for immutable decomposition epochs
// (internal/core.Incremental): a mutation never edits the published
// decomposition in place. Instead the mutator shallow-clones the
// Decomposition, swaps cloned Subgraphs in for the ones a mutation will
// write, applies MutateEdge/RefreshRoots/RecomputeAlphaBeta to the clones,
// and publishes the finished epoch with one atomic pointer store. Readers
// holding the previous epoch keep a fully consistent, never-changing view.
//
// The clones share everything a mutation does not write. Both flavors drop
// the lazy caches (asGraph, the EnsureIn transpose) rather than share them:
// the originals' caches may be built concurrently by readers of the old
// epoch, and reading the cache fields outside their sync.Once would race.
// Clones rebuild the caches lazily if and when an engine needs them.

// CloneShallow returns a Decomposition sharing every Subgraph (and the
// graph) with d. Callers replace entries of the returned Subgraphs slice
// with clones before mutating, and swap in the post-mutation graph with
// SetGraph.
func (d *Decomposition) CloneShallow() *Decomposition {
	return &Decomposition{
		G:               d.G,
		Subgraphs:       append([]*Subgraph(nil), d.Subgraphs...),
		TopIndex:        d.TopIndex,
		NumArticulation: d.NumArticulation,
		BCC:             d.BCC,
	}
}

// CloneForMutation returns a copy of s prepared for MutateEdge followed by
// RefreshRoots: the γ/root bookkeeping and α/β arrays are deep-copied
// (RefreshRoots rewrites Gamma and reuses Roots' backing array in place;
// RecomputeAlphaBeta rewrites Alpha/Beta), while the CSR, vertex list and
// boundary flags are shared — MutateEdge replaces offs/adj wholesale rather
// than editing them, so sharing the pre-mutation arrays is safe.
func (s *Subgraph) CloneForMutation() *Subgraph {
	return &Subgraph{
		ID:       s.ID,
		Verts:    s.Verts,
		offs:     s.offs,
		adj:      s.adj,
		wts:      s.wts,
		IsArt:    s.IsArt,
		Arts:     s.Arts,
		Alpha:    append([]float64(nil), s.Alpha...),
		Beta:     append([]float64(nil), s.Beta...),
		Gamma:    append([]int32(nil), s.Gamma...),
		Roots:    append([]int32(nil), s.Roots...),
		directed: s.directed,
	}
}

// CloneForAlphaBeta returns a copy of s whose Alpha/Beta arrays are owned
// (RecomputeAlphaBeta rewrites them for every sub-graph) and everything
// else — CSR, vertex list, γ/roots — is shared with the original, which a
// pure α/β refresh never touches.
func (s *Subgraph) CloneForAlphaBeta() *Subgraph {
	return &Subgraph{
		ID:       s.ID,
		Verts:    s.Verts,
		offs:     s.offs,
		adj:      s.adj,
		wts:      s.wts,
		IsArt:    s.IsArt,
		Arts:     s.Arts,
		Alpha:    append([]float64(nil), s.Alpha...),
		Beta:     append([]float64(nil), s.Beta...),
		Gamma:    s.Gamma,
		Roots:    s.Roots,
		directed: s.directed,
	}
}
