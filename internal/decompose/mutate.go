package decompose

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
)

// Mutation support for incremental BC (internal/core.Incremental): an edge
// whose endpoints share one sub-graph can be inserted or removed without
// re-partitioning — shortest paths between sub-graph vertices can never
// leave the sub-graph either before or after the change, so the partition
// stays valid (conservatively so after a block-splitting removal). The local
// CSR and the γ/root bookkeeping always need refreshing; α/β also need a
// refresh when reachability *through* the sub-graph can carry outside
// regions (directed graphs, and undirected graphs once a removal may have
// split a sub-graph internally) — internal/core.applyLocal decides.

// MutateEdge adds (add=true) or removes the local edge between lu and lv,
// rebuilding the sub-graph's CSR. For undirected decompositions both arc
// directions change; for directed ones exactly the arc lu->lv. Weighted
// sub-graphs are not supported (weighted incremental BC is future work).
func (s *Subgraph) MutateEdge(add bool, lu, lv int32, directed bool) error {
	if s.wts != nil {
		return fmt.Errorf("decompose: MutateEdge on weighted sub-graph")
	}
	if lu == lv {
		return fmt.Errorf("decompose: self-loop")
	}
	if lu < 0 || lv < 0 || int(lu) >= s.NumVerts() || int(lv) >= s.NumVerts() {
		return fmt.Errorf("decompose: local id out of range")
	}
	has := func(a, b int32) bool {
		row := s.Out(a)
		i := sort.Search(len(row), func(i int) bool { return row[i] >= b })
		return i < len(row) && row[i] == b
	}
	if add && has(lu, lv) {
		return fmt.Errorf("decompose: arc %d->%d already present", lu, lv)
	}
	if !add && !has(lu, lv) {
		return fmt.Errorf("decompose: arc %d->%d absent", lu, lv)
	}
	type pair struct{ from, to int32 }
	changes := []pair{{lu, lv}}
	if !directed {
		changes = append(changes, pair{lv, lu})
	}
	nl := s.NumVerts()
	newOffs := make([]int64, nl+1)
	delta := make(map[int32]int64, 2)
	for _, c := range changes {
		if add {
			delta[c.from]++
		} else {
			delta[c.from]--
		}
	}
	for i := 0; i < nl; i++ {
		newOffs[i+1] = newOffs[i] + int64(len(s.Out(int32(i)))) + delta[int32(i)]
	}
	newAdj := make([]int32, newOffs[nl])
	for i := int32(0); int(i) < nl; i++ {
		row := append([]int32(nil), s.Out(i)...)
		for _, c := range changes {
			if c.from != i {
				continue
			}
			if add {
				row = append(row, c.to)
			} else {
				for k, x := range row {
					if x == c.to {
						row = append(row[:k], row[k+1:]...)
						break
					}
				}
			}
		}
		sort.Slice(row, func(x, y int) bool { return row[x] < row[y] })
		copy(newAdj[newOffs[i]:newOffs[i+1]], row)
	}
	s.offs, s.adj = newOffs, newAdj
	// The lazy transpose (EnsureIn) mirrors the CSR just rebuilt; drop it so
	// the next bottom-up sweep rebuilds it from the new arcs.
	s.inOnce = sync.Once{}
	s.inOffs, s.inAdj = nil, nil
	return nil
}

// RefreshRoots recomputes γ and the root set of sub-graph si against the
// decomposition's (updated) graph; call after MutateEdge and after swapping
// in the mutated graph with SetGraph.
func (d *Decomposition) RefreshRoots(si int, disableGamma bool) {
	one := &Decomposition{G: d.G, Subgraphs: []*Subgraph{d.Subgraphs[si]}}
	computeGammaRoots(one, Options{DisableGamma: disableGamma})
}

// SetGraph swaps the underlying graph after an edge mutation. The caller
// guarantees the new graph differs only by intra-sub-graph edges.
func (d *Decomposition) SetGraph(g *graph.Graph) { d.G = g }

// RecomputeAlphaBeta refreshes every sub-graph's α/β against the current
// graph, keeping the partition. Needed after intra-sub-graph arc changes
// whenever reachability through the mutated sub-graph can shift other
// sub-graphs' counts: always on directed graphs, and on undirected graphs
// after a removal may have split a sub-graph internally (and after
// insertions while such a split persists). It always uses the BFS counting
// method: the undirected tree method reads only the partition shape, which
// a block-splitting removal silently invalidates, while a blocked BFS walks
// the actual mutated graph.
func (d *Decomposition) RecomputeAlphaBeta(workers int) error {
	return computeAlphaBeta(d, Options{AlphaBeta: AlphaBetaBFS, Workers: workers})
}
