package decompose

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Mutation support for incremental BC (internal/core.Incremental): an edge
// whose endpoints share one sub-graph can be inserted or removed without
// touching the rest of the decomposition — the boundary articulation points,
// α and β are all functions of the *outside* regions, which an intra-
// sub-graph edge never reaches, and shortest paths between sub-graph
// vertices can never leave the sub-graph either before or after the change.
// Only the local CSR and the γ/root bookkeeping need refreshing.

// MutateEdge adds (add=true) or removes the local edge between lu and lv,
// rebuilding the sub-graph's CSR. For undirected decompositions both arc
// directions change; for directed ones exactly the arc lu->lv. Weighted
// sub-graphs are not supported (weighted incremental BC is future work).
func (s *Subgraph) MutateEdge(add bool, lu, lv int32, directed bool) error {
	if s.wts != nil {
		return fmt.Errorf("decompose: MutateEdge on weighted sub-graph")
	}
	if lu == lv {
		return fmt.Errorf("decompose: self-loop")
	}
	if lu < 0 || lv < 0 || int(lu) >= s.NumVerts() || int(lv) >= s.NumVerts() {
		return fmt.Errorf("decompose: local id out of range")
	}
	has := func(a, b int32) bool {
		row := s.Out(a)
		i := sort.Search(len(row), func(i int) bool { return row[i] >= b })
		return i < len(row) && row[i] == b
	}
	if add && has(lu, lv) {
		return fmt.Errorf("decompose: arc %d->%d already present", lu, lv)
	}
	if !add && !has(lu, lv) {
		return fmt.Errorf("decompose: arc %d->%d absent", lu, lv)
	}
	type pair struct{ from, to int32 }
	changes := []pair{{lu, lv}}
	if !directed {
		changes = append(changes, pair{lv, lu})
	}
	nl := s.NumVerts()
	newOffs := make([]int64, nl+1)
	delta := make(map[int32]int64, 2)
	for _, c := range changes {
		if add {
			delta[c.from]++
		} else {
			delta[c.from]--
		}
	}
	for i := 0; i < nl; i++ {
		newOffs[i+1] = newOffs[i] + int64(len(s.Out(int32(i)))) + delta[int32(i)]
	}
	newAdj := make([]int32, newOffs[nl])
	for i := int32(0); int(i) < nl; i++ {
		row := append([]int32(nil), s.Out(i)...)
		for _, c := range changes {
			if c.from != i {
				continue
			}
			if add {
				row = append(row, c.to)
			} else {
				for k, x := range row {
					if x == c.to {
						row = append(row[:k], row[k+1:]...)
						break
					}
				}
			}
		}
		sort.Slice(row, func(x, y int) bool { return row[x] < row[y] })
		copy(newAdj[newOffs[i]:newOffs[i+1]], row)
	}
	s.offs, s.adj = newOffs, newAdj
	return nil
}

// RefreshRoots recomputes γ and the root set of sub-graph si against the
// decomposition's (updated) graph; call after MutateEdge and after swapping
// in the mutated graph with SetGraph.
func (d *Decomposition) RefreshRoots(si int, disableGamma bool) {
	one := &Decomposition{G: d.G, Subgraphs: []*Subgraph{d.Subgraphs[si]}}
	computeGammaRoots(one, Options{DisableGamma: disableGamma})
}

// SetGraph swaps the underlying graph after an edge mutation. The caller
// guarantees the new graph differs only by intra-sub-graph edges.
func (d *Decomposition) SetGraph(g *graph.Graph) { d.G = g }

// RecomputeAlphaBeta refreshes every sub-graph's α/β against the current
// graph, keeping the partition. Needed after intra-sub-graph arc changes on
// *directed* graphs: reachability between outside regions routes through the
// mutated sub-graph, so other sub-graphs' α/β can shift even though the
// partition itself stays valid. (Undirected α/β are pure region counts and
// never change under intra-sub-graph edits.)
func (d *Decomposition) RecomputeAlphaBeta(workers int) error {
	return computeAlphaBeta(d, Options{AlphaBeta: AlphaBetaAuto, Workers: workers})
}
