package decompose

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func mustDecompose(t *testing.T, g *graph.Graph, opt Options) *Decomposition {
	t.Helper()
	d, err := Decompose(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStarCollapsesToOneSubgraph(t *testing.T) {
	g := gen.Star(10)
	d := mustDecompose(t, g, Options{})
	if len(d.Subgraphs) != 1 {
		t.Fatalf("subgraphs = %d, want 1", len(d.Subgraphs))
	}
	sg := d.Subgraphs[0]
	if sg.NumVerts() != 10 || sg.NumArcs() != 18 {
		t.Fatalf("top: v=%d arcs=%d", sg.NumVerts(), sg.NumArcs())
	}
	if len(sg.Arts) != 0 {
		t.Fatalf("star should have no boundary APs, got %d", len(sg.Arts))
	}
	// All 9 leaves fold into γ(hub); only the hub remains a root.
	hub := sg.LocalID(0)
	if sg.Gamma[hub] != 9 {
		t.Fatalf("gamma(hub) = %d, want 9", sg.Gamma[hub])
	}
	if len(sg.Roots) != 1 || sg.Roots[0] != hub {
		t.Fatalf("roots = %v, want just the hub", sg.Roots)
	}
}

func TestDisableGamma(t *testing.T) {
	g := gen.Star(10)
	d := mustDecompose(t, g, Options{DisableGamma: true})
	sg := d.Subgraphs[0]
	if len(sg.Roots) != 10 {
		t.Fatalf("roots = %d, want 10 with gamma disabled", len(sg.Roots))
	}
	for _, gm := range sg.Gamma {
		if gm != 0 {
			t.Fatal("gamma must be zero when disabled")
		}
	}
}

func TestCavemanChain(t *testing.T) {
	// Cliques 0..3 of size 5 chained by bridges 0-5, 5-10, 10-15. With
	// threshold 3 the block-cut tree (bridge b1 hangs off b0 via AP 5, not
	// off clique 1) yields five groups: the top clique absorbs bridge 0-5;
	// the two middle bridges form their own {5,10,15} group; each remaining
	// clique stands alone.
	g := gen.Caveman(4, 5, false)
	d := mustDecompose(t, g, Options{Threshold: 3})
	if len(d.Subgraphs) != 5 {
		t.Fatalf("subgraphs = %d, want 5", len(d.Subgraphs))
	}
	if d.NumArticulation != 3 {
		t.Fatalf("boundary APs = %d, want 3 (vertices 5, 10, 15)", d.NumArticulation)
	}
	// The subgraph holding vertex 6 is clique 1 = {5..9}, boundary AP 5.
	var sg1 *Subgraph
	for _, sg := range d.Subgraphs {
		if sg.LocalID(6) >= 0 {
			sg1 = sg
			break
		}
	}
	if sg1 == nil {
		t.Fatal("no subgraph holds vertex 6")
	}
	if sg1.NumVerts() != 5 {
		t.Fatalf("sg1 verts = %d, want 5", sg1.NumVerts())
	}
	a5 := sg1.LocalID(5)
	if a5 < 0 || !sg1.IsArt[a5] || len(sg1.Arts) != 1 {
		t.Fatalf("sg1 boundary APs = %v, want exactly vertex 5", sg1.Arts)
	}
	// α(5) from clique 1: everything except clique 1's exclusive vertices
	// and 5 itself = 20 - 4 - 1 = 15.
	if sg1.Alpha[a5] != 15 {
		t.Fatalf("alpha(5) = %v, want 15", sg1.Alpha[a5])
	}
	// The bridge group {5,10,15} sees clique volumes through each AP.
	var sgB *Subgraph
	for _, sg := range d.Subgraphs {
		if sg.NumVerts() == 3 {
			sgB = sg
			break
		}
	}
	if sgB == nil {
		t.Fatal("no 3-vertex bridge subgraph found")
	}
	for _, la := range sgB.Arts {
		want := 4.0 // the clique behind this AP, minus the AP itself
		if sgB.Verts[la] == 5 {
			want = 9 // clique 0 (5 vertices incl. 0) + clique 1's exclusive 4
		}
		if sgB.Alpha[la] != want {
			t.Fatalf("bridge alpha(%d) = %v, want %v", sgB.Verts[la], sgB.Alpha[la], want)
		}
		if sgB.Beta[la] != sgB.Alpha[la] {
			t.Fatal("beta != alpha on undirected graph")
		}
	}
}

func TestBiconnectedGraphSingleSubgraph(t *testing.T) {
	g := gen.Cycle(30)
	d := mustDecompose(t, g, Options{})
	if len(d.Subgraphs) != 1 || d.NumArticulation != 0 {
		t.Fatalf("cycle: %d subgraphs, %d APs", len(d.Subgraphs), d.NumArticulation)
	}
	if got := len(d.Subgraphs[0].Roots); got != 30 {
		t.Fatalf("cycle roots = %d, want 30", got)
	}
}

func TestArcConservation(t *testing.T) {
	graphs := []*graph.Graph{
		gen.SocialLike(gen.SocialParams{N: 800, AvgDeg: 5, Communities: 10, TopShare: 0.5, LeafFrac: 0.3, Seed: 31}),
		gen.SocialLike(gen.SocialParams{N: 600, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.2, Directed: true, Reciprocity: 0.4, Seed: 32}),
		gen.RoadLike(gen.RoadParams{Rows: 12, Cols: 12, DeleteFrac: 0.1, SpurFrac: 0.1, SpurLen: 2, Seed: 33}),
		gen.Tree(200, 34),
	}
	for gi, g := range graphs {
		d := mustDecompose(t, g, Options{Threshold: 8})
		var arcs int64
		for _, sg := range d.Subgraphs {
			arcs += sg.NumArcs()
		}
		if arcs != g.NumArcs() {
			t.Fatalf("graph %d: subgraph arcs %d != graph arcs %d", gi, arcs, g.NumArcs())
		}
	}
}

func TestVertexCoverage(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 500, AvgDeg: 4, Communities: 8, TopShare: 0.4, LeafFrac: 0.25, Seed: 35})
	d := mustDecompose(t, g, Options{Threshold: 8})
	seen := make([]int, g.NumVertices())
	for _, sg := range d.Subgraphs {
		for _, v := range sg.Verts {
			seen[v]++
		}
	}
	for v, c := range seen {
		switch {
		case c == 0:
			t.Fatalf("vertex %d in no subgraph", v)
		case c > 1 && !d.BCC.IsArticulation[v]:
			t.Fatalf("non-AP vertex %d in %d subgraphs", v, c)
		}
	}
}

func TestLocalAdjacencyMatchesGlobal(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 300, AvgDeg: 5, Communities: 5, TopShare: 0.5, LeafFrac: 0.2, Directed: true, Reciprocity: 0.5, Seed: 36})
	d := mustDecompose(t, g, Options{Threshold: 8})
	for _, sg := range d.Subgraphs {
		for l := int32(0); int(l) < sg.NumVerts(); l++ {
			for _, lw := range sg.Out(l) {
				u, v := sg.Verts[l], sg.Verts[lw]
				if !g.HasArc(u, v) {
					t.Fatalf("subgraph arc %d->%d missing in G", u, v)
				}
			}
		}
	}
}

func TestTreeMatchesBFS(t *testing.T) {
	graphs := []*graph.Graph{
		gen.SocialLike(gen.SocialParams{N: 700, AvgDeg: 5, Communities: 9, TopShare: 0.5, LeafFrac: 0.3, Seed: 41}),
		gen.RoadLike(gen.RoadParams{Rows: 10, Cols: 14, DeleteFrac: 0.12, SpurFrac: 0.15, SpurLen: 3, Seed: 42}),
		gen.Tree(300, 43),
		gen.Lollipop(10, 20),
	}
	for gi, g := range graphs {
		dTree := mustDecompose(t, g, Options{Threshold: 6, AlphaBeta: AlphaBetaTree})
		dBFS := mustDecompose(t, g, Options{Threshold: 6, AlphaBeta: AlphaBetaBFS})
		if len(dTree.Subgraphs) != len(dBFS.Subgraphs) {
			t.Fatalf("graph %d: nondeterministic partition", gi)
		}
		for si := range dTree.Subgraphs {
			a, b := dTree.Subgraphs[si], dBFS.Subgraphs[si]
			for _, la := range a.Arts {
				if a.Alpha[la] != b.Alpha[la] {
					t.Fatalf("graph %d sg %d AP %d: tree alpha %v != bfs alpha %v",
						gi, si, a.Verts[la], a.Alpha[la], b.Alpha[la])
				}
				if a.Beta[la] != b.Beta[la] {
					t.Fatalf("graph %d sg %d AP %d: beta mismatch", gi, si, a.Verts[la])
				}
			}
		}
	}
}

func TestTreeMethodRejectsDirected(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, true, 1)
	if _, err := Decompose(g, Options{AlphaBeta: AlphaBetaTree}); err == nil {
		t.Fatal("expected error for AlphaBetaTree on directed graph")
	}
}

func TestDirectedAlphaBetaHand(t *testing.T) {
	// Triangle 0->1->2->0 with a directed tail 2->3 and source 4->0.
	// Undirected blocks: {0,1,2}, {2,3}, {0,4}. Threshold default merges the
	// 2-vertex blocks into the triangle group: single subgraph, no APs.
	// Use threshold 1 so nothing merges on size, but <=2-vertex blocks whose
	// father is top still merge... so instead verify the directed alpha/beta
	// on a graph whose blocks are all large enough: two directed triangles
	// sharing vertex 2, plus a one-way tail 2->5->6->2 forming a third cycle.
	edges := []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}, // triangle A
		{From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 2}, // triangle B
	}
	g := graph.NewFromEdges(5, edges, true)
	d := mustDecompose(t, g, Options{Threshold: 2})
	if len(d.Subgraphs) != 2 {
		t.Fatalf("subgraphs = %d, want 2", len(d.Subgraphs))
	}
	for _, sg := range d.Subgraphs {
		if len(sg.Arts) != 1 {
			t.Fatalf("want exactly one boundary AP per subgraph, got %d", len(sg.Arts))
		}
		la := sg.Arts[0]
		if sg.Verts[la] != 2 {
			t.Fatalf("boundary AP = %d, want 2", sg.Verts[la])
		}
		// From vertex 2, both directions reach the two other vertices of the
		// opposite triangle.
		if sg.Alpha[la] != 2 || sg.Beta[la] != 2 {
			t.Fatalf("alpha=%v beta=%v, want 2/2", sg.Alpha[la], sg.Beta[la])
		}
	}
}

func TestDirectedAlphaBetaAsymmetric(t *testing.T) {
	// Triangle 0->1->2->0 plus one-way sink chain 2->3->4 (no return) and
	// one-way source chain 6->5->2.
	edges := []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0},
		{From: 2, To: 3}, {From: 3, To: 4},
		{From: 6, To: 5}, {From: 5, To: 2},
	}
	g := graph.NewFromEdges(7, edges, true)
	d := mustDecompose(t, g, Options{Threshold: 1})
	// Find the subgraph of the triangle; vertex 1 is interior to it.
	var tri *Subgraph
	for _, sg := range d.Subgraphs {
		if sg.LocalID(1) >= 0 {
			tri = sg
		}
	}
	if tri == nil {
		t.Fatal("no triangle subgraph")
	}
	// The 2-vertex blocks {2,3} and {2,5} adjacent to the top (triangle)
	// block merge into it per Algorithm 1, so the top subgraph is
	// {0,1,2,3,5} with boundary APs 3 (toward sink block {3,4}) and 5
	// (toward source block {5,6}).
	if tri.NumVerts() != 5 {
		t.Fatalf("top subgraph has %d verts, want 5", tri.NumVerts())
	}
	l3, l5 := tri.LocalID(3), tri.LocalID(5)
	if l3 < 0 || l5 < 0 || !tri.IsArt[l3] || !tri.IsArt[l5] {
		t.Fatalf("vertices 3 and 5 should be boundary APs; arts=%v", tri.Arts)
	}
	// α(3): 3 reaches {4} outside; β(3): nothing outside reaches 3.
	if tri.Alpha[l3] != 1 || tri.Beta[l3] != 0 {
		t.Fatalf("AP 3: alpha=%v beta=%v, want 1/0", tri.Alpha[l3], tri.Beta[l3])
	}
	// α(5): 5 reaches nothing outside; β(5): {6} reaches 5.
	if tri.Alpha[l5] != 0 || tri.Beta[l5] != 1 {
		t.Fatalf("AP 5: alpha=%v beta=%v, want 0/1", tri.Alpha[l5], tri.Beta[l5])
	}
}

// Property: on undirected connected graphs, for every boundary AP a shared
// by k subgraphs, Σ_i α_SGi(a) == (k-1) * (componentSize - 1).
func TestQuickAlphaIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.SocialLike(gen.SocialParams{N: 300, AvgDeg: 4, Communities: 6,
			TopShare: 0.4, LeafFrac: 0.3, Seed: seed})
		d, err := Decompose(g, Options{Threshold: 6})
		if err != nil {
			return false
		}
		n := g.NumVertices()
		alphaSum := map[graph.V]float64{}
		mult := map[graph.V]int{}
		for _, sg := range d.Subgraphs {
			for _, la := range sg.Arts {
				alphaSum[sg.Verts[la]] += sg.Alpha[la]
				mult[sg.Verts[la]]++
			}
		}
		for v, k := range mult {
			want := float64(k-1) * float64(n-1)
			if math.Abs(alphaSum[v]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRootsGammaConsistency(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 400, AvgDeg: 4, Communities: 5,
		TopShare: 0.5, LeafFrac: 0.35, Seed: 51})
	d := mustDecompose(t, g, Options{})
	for _, sg := range d.Subgraphs {
		var gammaTotal int64
		for _, gm := range sg.Gamma {
			gammaTotal += int64(gm)
		}
		if int(gammaTotal) != sg.NumVerts()-len(sg.Roots) {
			t.Fatalf("gamma total %d != removed %d", gammaTotal, sg.NumVerts()-len(sg.Roots))
		}
		if sg.NumVerts() > 0 && len(sg.Roots) == 0 {
			t.Fatal("subgraph lost all roots")
		}
	}
	if d.TotalRoots() >= int64(g.NumVertices()) {
		t.Fatal("expected some total-redundancy elimination on a leafy graph")
	}
}

func TestK2Component(t *testing.T) {
	// A lone edge: both endpoints qualify for removal; the tie-break must
	// keep vertex 0 rooted.
	g := graph.NewFromEdges(2, []graph.Edge{{From: 0, To: 1}}, false)
	d := mustDecompose(t, g, Options{})
	if len(d.Subgraphs) != 1 {
		t.Fatalf("subgraphs = %d", len(d.Subgraphs))
	}
	sg := d.Subgraphs[0]
	if len(sg.Roots) != 1 {
		t.Fatalf("roots = %v, want exactly one", sg.Roots)
	}
	if sg.Verts[sg.Roots[0]] != 0 {
		t.Fatalf("surviving root = %d, want 0", sg.Verts[sg.Roots[0]])
	}
}

func TestEmptyAndIsolated(t *testing.T) {
	d := mustDecompose(t, graph.NewFromEdges(0, nil, false), Options{})
	if len(d.Subgraphs) != 0 || d.TopIndex != -1 {
		t.Fatal("empty graph decomposition wrong")
	}
	// Isolated vertices produce no subgraphs.
	g := graph.NewFromEdges(5, []graph.Edge{{From: 0, To: 1}}, false)
	d2 := mustDecompose(t, g, Options{})
	if len(d2.Subgraphs) != 1 {
		t.Fatalf("subgraphs = %d, want 1 (isolated vertices skipped)", len(d2.Subgraphs))
	}
}

func TestDisconnectedComponents(t *testing.T) {
	// Two separate caveman chains: each component decomposes independently.
	a := gen.Caveman(3, 4, false)
	edges := a.Edges()
	off := int32(a.NumVertices())
	for _, e := range gen.Caveman(2, 5, false).Edges() {
		edges = append(edges, graph.Edge{From: e.From + off, To: e.To + off})
	}
	g := graph.NewFromEdges(int(off)+10, edges, false)
	d := mustDecompose(t, g, Options{Threshold: 3})
	// First chain: 3 cliques + the {0,4,8} bridge group; second: 2 cliques
	// (its bridge merges into the top clique).
	if len(d.Subgraphs) != 6 {
		t.Fatalf("subgraphs = %d, want 6", len(d.Subgraphs))
	}
	// α of an AP in the first component must never count second-component
	// vertices.
	for _, sg := range d.Subgraphs {
		for _, la := range sg.Arts {
			if sg.Verts[la] < off && sg.Alpha[la] > float64(off-1) {
				t.Fatalf("alpha leaked across components: %v", sg.Alpha[la])
			}
		}
	}
}

func TestSubgraphSizesSorted(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 600, AvgDeg: 5, Communities: 8,
		TopShare: 0.6, LeafFrac: 0.2, Seed: 61})
	d := mustDecompose(t, g, Options{Threshold: 8})
	sizes := d.SubgraphSizes()
	for i := 1; i < len(sizes); i++ {
		if sizes[i].Verts > sizes[i-1].Verts {
			t.Fatal("sizes not sorted")
		}
	}
	if sizes[0].Verts != d.Subgraphs[d.TopIndex].NumVerts() {
		t.Fatal("TopIndex does not match largest size")
	}
}

func TestThresholdMonotonic(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 900, AvgDeg: 5, Communities: 14,
		TopShare: 0.4, LeafFrac: 0.3, Seed: 71})
	prev := -1
	for _, th := range []int{2, 8, 64, 100000} {
		d := mustDecompose(t, g, Options{Threshold: th})
		cur := len(d.Subgraphs)
		if prev >= 0 && cur > prev {
			t.Fatalf("threshold %d produced more subgraphs (%d) than smaller threshold (%d)", th, cur, prev)
		}
		prev = cur
	}
	// A huge threshold merges every block whose father is not the top block,
	// so only top-adjacent groups of 3+ vertices survive alongside the top.
	d := mustDecompose(t, g, Options{Threshold: 1 << 30})
	if len(d.Subgraphs) > prev {
		t.Fatalf("max threshold: %d subgraphs, want <= %d", len(d.Subgraphs), prev)
	}
}

func TestMutateEdgeErrors(t *testing.T) {
	g := gen.Caveman(2, 4, false)
	d := mustDecompose(t, g, Options{Threshold: 3})
	sg := d.Subgraphs[0]
	if err := sg.MutateEdge(true, 0, 0, false); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := sg.MutateEdge(true, -1, 0, false); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := sg.MutateEdge(true, 0, int32(sg.NumVerts()), false); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	// Existing arc cannot be added; absent arc cannot be removed.
	lu, lv := int32(0), sg.Out(0)[0]
	if err := sg.MutateEdge(true, lu, lv, false); err == nil {
		t.Fatal("duplicate add accepted")
	}
	var absent int32 = -1
	for cand := int32(0); int(cand) < sg.NumVerts(); cand++ {
		if cand == lu {
			continue
		}
		found := false
		for _, w := range sg.Out(lu) {
			if w == cand {
				found = true
			}
		}
		if !found {
			absent = cand
			break
		}
	}
	if absent >= 0 {
		if err := sg.MutateEdge(false, lu, absent, false); err == nil {
			t.Fatal("absent removal accepted")
		}
	}
	// Weighted sub-graphs refuse mutation.
	wd := mustDecompose(t, gen.WithRandomWeights(g, 3, 1), Options{Threshold: 3})
	if err := wd.Subgraphs[0].MutateEdge(true, 0, 1, false); err == nil {
		t.Fatal("weighted mutation accepted")
	}
}

func TestMutateEdgeRoundTrip(t *testing.T) {
	g := gen.Caveman(3, 5, false)
	d := mustDecompose(t, g, Options{Threshold: 3})
	sg := d.Subgraphs[0]
	lu, lv := int32(0), sg.Out(0)[0]
	arcsBefore := sg.NumArcs()
	if err := sg.MutateEdge(false, lu, lv, false); err != nil {
		t.Fatal(err)
	}
	if sg.NumArcs() != arcsBefore-2 {
		t.Fatalf("arcs = %d, want %d", sg.NumArcs(), arcsBefore-2)
	}
	if err := sg.MutateEdge(true, lu, lv, false); err != nil {
		t.Fatal(err)
	}
	if sg.NumArcs() != arcsBefore {
		t.Fatal("round trip changed arc count")
	}
	for _, w := range sg.Out(lu) {
		if w == lv {
			return
		}
	}
	t.Fatal("re-added arc missing")
}

// TestEnsureIn checks the lazy transpose CSR: on directed sub-graphs In(v)
// must list exactly the sources of arcs into v (sorted), on undirected ones
// it must alias the out-CSR, and MutateEdge must invalidate it.
func TestEnsureIn(t *testing.T) {
	dg := gen.ErdosRenyi(60, 180, true, 11)
	d := mustDecompose(t, dg, Options{Threshold: 4})
	for _, sg := range d.Subgraphs {
		if sg.HasIn() {
			t.Fatal("in-CSR present before EnsureIn")
		}
		if !sg.Directed() {
			t.Fatal("directed flag lost")
		}
		sg.EnsureIn()
		if !sg.HasIn() {
			t.Fatal("in-CSR missing after EnsureIn")
		}
		// Model transpose from Out.
		want := make(map[int32][]int32)
		for u := int32(0); int(u) < sg.NumVerts(); u++ {
			for _, v := range sg.Out(u) {
				want[v] = append(want[v], u)
			}
		}
		for v := int32(0); int(v) < sg.NumVerts(); v++ {
			got := sg.In(v)
			if len(got) != len(want[v]) {
				t.Fatalf("In(%d) has %d arcs, want %d", v, len(got), len(want[v]))
			}
			for i, u := range want[v] {
				if got[i] != u {
					t.Fatalf("In(%d) = %v, want %v (sorted by source)", v, got, want[v])
				}
			}
		}
	}

	ug := gen.Caveman(3, 5, false)
	ud := mustDecompose(t, ug, Options{Threshold: 3})
	sg := ud.Subgraphs[0]
	sg.EnsureIn()
	for v := int32(0); int(v) < sg.NumVerts(); v++ {
		out, in := sg.Out(v), sg.In(v)
		if len(out) != len(in) {
			t.Fatalf("undirected In(%d) != Out(%d)", v, v)
		}
		for i := range out {
			if out[i] != in[i] {
				t.Fatalf("undirected In(%d) = %v, want Out = %v", v, in, out)
			}
		}
	}
	lu, lv := int32(0), sg.Out(0)[0]
	if err := sg.MutateEdge(false, lu, lv, false); err != nil {
		t.Fatal(err)
	}
	if sg.HasIn() {
		t.Fatal("MutateEdge left a stale in-CSR")
	}
	sg.EnsureIn()
	for _, u := range sg.In(lv) {
		if u == lu {
			t.Fatal("stale arc in rebuilt in-CSR")
		}
	}
}
