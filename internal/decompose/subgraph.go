package decompose

import (
	"sort"

	"repro/internal/bcc"
	"repro/internal/graph"
)

// buildSubgraphs materializes one Subgraph per merge group: vertex lists
// (sorted by global id for determinism), local CSR with each graph arc
// assigned to exactly one sub-graph (the one owning its undirected edge's
// block), and the boundary articulation flags.
func buildSubgraphs(d *Decomposition, g *graph.Graph, res *bcc.Result, blockGroup []int32, opt Options) {
	numGroups := 0
	for _, gr := range blockGroup {
		if int(gr)+1 > numGroups {
			numGroups = int(gr) + 1
		}
	}
	n := g.NumVertices()

	// Collect the vertex set of each group (dedup after sort: a vertex can
	// appear in several blocks of the same group).
	groupVerts := make([][]graph.V, numGroups)
	for b := 0; b < res.NumBlocks(); b++ {
		gr := blockGroup[b]
		groupVerts[gr] = append(groupVerts[gr], res.BlockVerts[b]...)
	}
	for gr := range groupVerts {
		vs := groupVerts[gr]
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		w := 0
		for i, v := range vs {
			if i > 0 && v == vs[w-1] {
				continue
			}
			vs[w] = v
			w++
		}
		groupVerts[gr] = vs[:w]
	}

	// Boundary articulation points: articulation vertices whose blocks span
	// more than one group.
	isBoundary := make([]bool, n)
	for v := 0; v < n; v++ {
		if !res.IsArticulation[v] {
			continue
		}
		blocks := res.VertexBlocks[v]
		for i := 1; i < len(blocks); i++ {
			if blockGroup[blocks[i]] != blockGroup[blocks[0]] {
				isBoundary[v] = true
				break
			}
		}
	}

	blocksOf := make([][]int32, numGroups)
	for b := 0; b < res.NumBlocks(); b++ {
		blocksOf[blockGroup[b]] = append(blocksOf[blockGroup[b]], int32(b))
	}

	d.Subgraphs = make([]*Subgraph, numGroups)
	local := make([]int32, n) // global -> local, valid only for the group being built
	weighted := g.Weighted()
	type arc struct {
		from, to int32
		w        float64
	}
	for gr := 0; gr < numGroups; gr++ {
		sg := &Subgraph{ID: gr, Verts: groupVerts[gr], directed: g.Directed()}
		d.Subgraphs[gr] = sg
		for i, v := range sg.Verts {
			local[v] = int32(i)
		}
		var arcs []arc
		addArc := func(gu, gv graph.V, lu, lv int32) {
			a := arc{from: lu, to: lv}
			if weighted {
				a.w = g.ArcWeight(g.ArcPos(gu, gv))
			}
			arcs = append(arcs, a)
		}
		for _, b := range blocksOf[gr] {
			for _, e := range res.BlockEdges[b] {
				lu, lv := local[e.From], local[e.To]
				if g.Directed() {
					if g.HasArc(e.From, e.To) {
						addArc(e.From, e.To, lu, lv)
					}
					if g.HasArc(e.To, e.From) {
						addArc(e.To, e.From, lv, lu)
					}
				} else {
					addArc(e.From, e.To, lu, lv)
					addArc(e.To, e.From, lv, lu)
				}
			}
		}
		// Counting-sort into a local CSR.
		nl := len(sg.Verts)
		offs := make([]int64, nl+1)
		for _, a := range arcs {
			offs[a.from+1]++
		}
		for i := 0; i < nl; i++ {
			offs[i+1] += offs[i]
		}
		adj := make([]int32, len(arcs))
		var wts []float64
		if weighted {
			wts = make([]float64, len(arcs))
		}
		cur := make([]int64, nl)
		for _, a := range arcs {
			pos := offs[a.from] + cur[a.from]
			adj[pos] = a.to
			if weighted {
				wts[pos] = a.w
			}
			cur[a.from]++
		}
		for i := 0; i < nl; i++ {
			row := adj[offs[i]:offs[i+1]]
			if weighted {
				wrow := wts[offs[i]:offs[i+1]]
				sort.Sort(&arcSorter{row, wrow})
			} else {
				sort.Slice(row, func(x, y int) bool { return row[x] < row[y] })
			}
		}
		sg.offs, sg.adj, sg.wts = offs, adj, wts
		sg.IsArt = make([]bool, nl)
		sg.Alpha = make([]float64, nl)
		sg.Beta = make([]float64, nl)
		sg.Gamma = make([]int32, nl)
		for i, v := range sg.Verts {
			if isBoundary[v] {
				sg.IsArt[i] = true
				sg.Arts = append(sg.Arts, int32(i))
			}
		}
	}

	for v := 0; v < n; v++ {
		if isBoundary[v] {
			d.NumArticulation++
		}
	}
}

// arcSorter sorts a local adjacency row and its weights in lockstep.
type arcSorter struct {
	adj []int32
	wts []float64
}

func (s *arcSorter) Len() int           { return len(s.adj) }
func (s *arcSorter) Less(i, j int) bool { return s.adj[i] < s.adj[j] }
func (s *arcSorter) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.wts[i], s.wts[j] = s.wts[j], s.wts[i]
}

// LocalID returns the local id of global vertex v in sg, or -1.
func (s *Subgraph) LocalID(v graph.V) int32 {
	i := sort.Search(len(s.Verts), func(i int) bool { return s.Verts[i] >= v })
	if i < len(s.Verts) && s.Verts[i] == v {
		return int32(i)
	}
	return -1
}

// computeGammaRoots fills Gamma and Roots per sub-graph (Theorem 3's
// total-redundancy elimination). A vertex u is removed from the root set and
// folded into γ of its neighbour s when its whole DAG derives from D_s:
// directed, no in-edges and a single out-edge u->s; undirected, a single
// edge u-s (with an id tie-break so mutually-qualifying pairs keep one root).
func computeGammaRoots(d *Decomposition, opt Options) {
	g := d.G
	und := g.Undirected()
	qualifies := func(v graph.V) (graph.V, bool) {
		if g.Directed() {
			if g.OutDegree(v) == 1 && g.InDegree(v) == 0 {
				return g.Out(v)[0], true
			}
			return -1, false
		}
		if und.OutDegree(v) == 1 {
			return und.Out(v)[0], true
		}
		return -1, false
	}
	if g.Directed() {
		g.EnsureTranspose()
	}
	for _, sg := range d.Subgraphs {
		for l := range sg.Gamma {
			sg.Gamma[l] = 0 // idempotent: RefreshRoots re-runs this pass
		}
		removed := make([]bool, sg.NumVerts())
		if !opt.DisableGamma {
			for l, v := range sg.Verts {
				s, ok := qualifies(v)
				if !ok {
					continue
				}
				if _, sToo := qualifies(s); sToo && v < s {
					continue // keep the smaller id as the surviving root
				}
				ls := sg.LocalID(s)
				if ls < 0 {
					continue
				}
				removed[l] = true
				sg.Gamma[ls]++
			}
		}
		sg.Roots = sg.Roots[:0]
		for l := range sg.Verts {
			if !removed[l] {
				sg.Roots = append(sg.Roots, int32(l))
			}
		}
	}
}
