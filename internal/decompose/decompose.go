// Package decompose implements the paper's graph partition (Algorithm 1,
// GRAPHPARTITION): it splits a graph into sub-graphs along articulation
// points by contracting the block-cut tree with a size threshold, builds a
// local CSR per sub-graph, and computes the three per-articulation-point
// quantities the APGRE dependencies need:
//
//	α_SGi(a) — #vertices a reaches outside SGi      (paper §3.1)
//	β_SGi(a) — #vertices outside SGi that reach a
//	γ_SGi(s) — #neighbours of s whose DAGs are derivable from D_s
//	            (no in-edges and a single out-edge to s; degree-1 leaves
//	            in the undirected case)
//
// Deviation from the paper, documented in DESIGN.md: disconnected inputs are
// decomposed per connected component (each component gets its own top block)
// instead of lumping all unvisited blocks into one residual sub-graph; this
// preserves correctness for arbitrary inputs. Isolated vertices produce no
// sub-graph (their BC terms are all zero).
package decompose

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bcc"
	"repro/internal/graph"
)

// DefaultThreshold is the block-merge threshold used when Options.Threshold
// is unset. The paper does not publish its THRESHOLD; 64 keeps tiny blocks
// from becoming scheduling overhead while leaving real communities separate,
// and BenchmarkAblationThreshold sweeps it.
const DefaultThreshold = 64

// AlphaBetaMethod selects how α and β are computed.
type AlphaBetaMethod int

const (
	// AlphaBetaAuto uses the O(V+E) block-tree subtree counting for
	// undirected graphs and per-articulation-point BFS for directed ones.
	AlphaBetaAuto AlphaBetaMethod = iota
	// AlphaBetaTree forces subtree counting (undirected only).
	AlphaBetaTree
	// AlphaBetaBFS forces the paper-faithful per-articulation-point BFS
	// (§4: "The second step uses parallel BFS to count α and β").
	AlphaBetaBFS
)

// Options configures Decompose.
type Options struct {
	// Threshold is Algorithm 1's THRESHOLD: a non-top block smaller than
	// this merges into its father. <= 0 means DefaultThreshold.
	Threshold int
	// AlphaBeta selects the α/β computation method.
	AlphaBeta AlphaBetaMethod
	// Workers bounds parallelism in the α/β step; <= 0 means GOMAXPROCS.
	Workers int
	// DisableGamma turns off total-redundancy elimination (every vertex
	// stays a root and γ ≡ 0); used by the ablation benchmarks.
	DisableGamma bool
	// Timings, when non-nil, receives the phase durations (the "graph
	// partition" and "counting α/β" slices of the paper's Figure 8).
	Timings *Timings
}

// Timings records how long the two preprocessing phases took.
type Timings struct {
	Partition time.Duration
	AlphaBeta time.Duration
}

// Subgraph is one sub-graph SGi(V, E, A) of the decomposition, stored as a
// local CSR over local vertex ids [0, len(Verts)).
type Subgraph struct {
	ID int
	// Verts maps local id -> global id. Boundary articulation points appear
	// in every sub-graph they connect (paper §3.1 property 4).
	Verts []graph.V
	// Local CSR over out-arcs; wts is parallel to adj when the source graph
	// is weighted (nil otherwise).
	offs []int64
	adj  []int32
	wts  []float64

	// IsArt[l] reports whether local vertex l is a boundary articulation
	// point of this sub-graph (a member of A_sgi).
	IsArt []bool
	// Arts lists the local ids of boundary articulation points.
	Arts []int32
	// Alpha[l] = α_SGi(v) for boundary APs, 0 otherwise.
	Alpha []float64
	// Beta[l] = β_SGi(v) for boundary APs, 0 otherwise.
	Beta []float64
	// Gamma[l] = γ_SGi(v): how many removed neighbours derive their DAG
	// from v.
	Gamma []int32
	// Roots lists the local ids in R_sgi (BFS roots after total-redundancy
	// removal).
	Roots []int32

	directed bool // whether the parent graph is directed

	asGraph *graph.Graph // lazy AsGraph cache

	// Lazy transpose CSR for bottom-up sweeps; built by EnsureIn. For
	// undirected parents the arc set is symmetric, so the in-CSR aliases the
	// out-CSR instead of being materialized.
	inOnce sync.Once
	inOffs []int64
	inAdj  []int32
}

// NumVerts returns the number of local vertices.
func (s *Subgraph) NumVerts() int { return len(s.Verts) }

// NumArcs returns the number of local out-arcs.
func (s *Subgraph) NumArcs() int64 { return s.offs[len(s.Verts)] }

// Out returns the local out-neighbors of local vertex l.
func (s *Subgraph) Out(l int32) []int32 { return s.adj[s.offs[l]:s.offs[l+1]] }

// OutWeights returns the weights parallel to Out(l); nil for unweighted
// decompositions.
func (s *Subgraph) OutWeights(l int32) []float64 {
	if s.wts == nil {
		return nil
	}
	return s.wts[s.offs[l]:s.offs[l+1]]
}

// Weighted reports whether the sub-graph carries arc weights.
func (s *Subgraph) Weighted() bool { return s.wts != nil }

// Directed reports whether the parent graph was directed.
func (s *Subgraph) Directed() bool { return s.directed }

// EnsureIn builds the in-arc (transpose) CSR if it is not present yet, so
// that In can be called. For undirected parents the out-CSR is already
// symmetric and is aliased instead of copied. Safe for concurrent callers;
// concurrent with a MutateEdge it is not (same contract as every other
// accessor).
func (s *Subgraph) EnsureIn() {
	s.inOnce.Do(func() {
		if !s.directed {
			s.inOffs, s.inAdj = s.offs, s.adj
			return
		}
		nl := len(s.Verts)
		offs := make([]int64, nl+1)
		for _, v := range s.adj {
			offs[v+1]++
		}
		for i := 0; i < nl; i++ {
			offs[i+1] += offs[i]
		}
		adj := make([]int32, len(s.adj))
		cur := make([]int64, nl)
		for u := int32(0); int(u) < nl; u++ {
			for _, v := range s.Out(u) {
				adj[offs[v]+cur[v]] = u
				cur[v]++
			}
		}
		s.inOffs, s.inAdj = offs, adj
	})
}

// HasIn reports whether the in-CSR has been built (or aliased).
func (s *Subgraph) HasIn() bool { return s.inOffs != nil }

// In returns the local in-neighbors of local vertex l. EnsureIn must have
// been called first.
func (s *Subgraph) In(l int32) []int32 { return s.inAdj[s.inOffs[l]:s.inOffs[l+1]] }

// AsGraph materializes the sub-graph as a standalone graph.Graph over local
// ids (arcs reproduced exactly, so it is built "directed" even when the
// parent graph is undirected — the arc set is already symmetric then).
// The result is cached; callers must not mutate the sub-graph afterwards.
func (s *Subgraph) AsGraph() *graph.Graph {
	if s.asGraph != nil {
		return s.asGraph
	}
	if s.wts != nil {
		edges := make([]graph.WeightedEdge, 0, s.NumArcs())
		for u := int32(0); int(u) < s.NumVerts(); u++ {
			wts := s.OutWeights(u)
			for i, v := range s.Out(u) {
				edges = append(edges, graph.WeightedEdge{From: u, To: v, W: wts[i]})
			}
		}
		s.asGraph = graph.NewWeightedFromEdges(s.NumVerts(), edges, true)
	} else {
		edges := make([]graph.Edge, 0, s.NumArcs())
		for u := int32(0); int(u) < s.NumVerts(); u++ {
			for _, v := range s.Out(u) {
				edges = append(edges, graph.Edge{From: u, To: v})
			}
		}
		s.asGraph = graph.NewFromEdges(s.NumVerts(), edges, true)
	}
	return s.asGraph
}

// Decomposition is the result of Decompose.
type Decomposition struct {
	G         *graph.Graph
	Subgraphs []*Subgraph
	// TopIndex is the index of the largest sub-graph (paper's top sub-graph,
	// Table 4) in Subgraphs, or -1 if there are none.
	TopIndex int
	// NumArticulation is the number of distinct boundary articulation points.
	NumArticulation int
	// BCC is the underlying biconnected decomposition (retained for
	// analyzers and tests).
	BCC *bcc.Result
}

// Decompose runs the full partition pipeline: FINDBCC, block-tree DFS with
// threshold merging, sub-graph construction with γ/R, and α/β counting.
func Decompose(g *graph.Graph, opt Options) (*Decomposition, error) {
	if g.NumVertices() == 0 {
		return &Decomposition{G: g, TopIndex: -1}, nil
	}
	if opt.Threshold <= 0 {
		opt.Threshold = DefaultThreshold
	}
	if opt.AlphaBeta == AlphaBetaTree && g.Directed() {
		return nil, fmt.Errorf("decompose: AlphaBetaTree requires an undirected graph")
	}
	start := time.Now()
	res := bcc.Find(g)
	groups := mergeBlocks(g, res, opt.Threshold)
	d := &Decomposition{G: g, TopIndex: -1, BCC: res}
	buildSubgraphs(d, g, res, groups, opt)
	partitionDone := time.Now()
	if err := computeAlphaBeta(d, opt); err != nil {
		return nil, err
	}
	if opt.Timings != nil {
		opt.Timings.Partition = partitionDone.Sub(start)
		opt.Timings.AlphaBeta = time.Since(partitionDone)
	}
	computeGammaRoots(d, opt)
	for i, sg := range d.Subgraphs {
		if d.TopIndex < 0 || sg.NumVerts() > d.Subgraphs[d.TopIndex].NumVerts() {
			d.TopIndex = i
		}
	}
	return d, nil
}

// mergeBlocks contracts the block-cut tree per Algorithm 1: a DFS from each
// component's largest block, merging a popped block into its father when it
// is small (or has <= 2 vertices and the father is the top block). It returns
// for each block the group (future sub-graph) id it belongs to, or -1 for
// none.
func mergeBlocks(g *graph.Graph, res *bcc.Result, threshold int) (blockGroup []int32) {
	nb := res.NumBlocks()
	blockGroup = make([]int32, nb)
	for i := range blockGroup {
		blockGroup[i] = -1
	}
	if nb == 0 {
		return blockGroup
	}
	// Union of merged blocks, tracked with a union-find onto the surviving
	// parent block; sizes track deduplicated vertex counts (two blocks share
	// exactly one vertex, the connecting articulation point).
	parent := make([]int32, nb)
	size := make([]int64, nb)
	for b := 0; b < nb; b++ {
		parent[b] = int32(b)
		size[b] = int64(len(res.BlockVerts[b]))
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	visited := make([]bool, nb)
	// apOwner[v] is the first block whose frame scanned vertex v. A later
	// block skips vertices it does not own, so all blocks hanging off one
	// articulation point become children of the owning block — this walks
	// the true block-cut tree instead of the block clique around each AP
	// (otherwise siblings chain under each other and the "father is the top
	// block" merge rule of Algorithm 1 never fires).
	apOwner := make([]int32, g.NumVertices())
	for i := range apOwner {
		apOwner[i] = -1
	}
	type frame struct {
		block  int32
		father int32 // block id we were discovered from, -1 at root
		ai, bi int   // iteration state over block vertices / their blocks
	}
	// Component roots: largest block first within each component; iterate
	// blocks in decreasing size order so each component's DFS starts at its
	// maximal block (the paper's topBCC).
	order := make([]int32, nb)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if len(res.BlockVerts[a]) != len(res.BlockVerts[b]) {
			return len(res.BlockVerts[a]) > len(res.BlockVerts[b])
		}
		return a < b
	})

	var stack []frame
	for _, top := range order {
		if visited[top] {
			continue
		}
		visited[top] = true
		stack = append(stack[:0], frame{block: top, father: -1})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			verts := res.BlockVerts[f.block]
			for f.ai < len(verts) {
				v := verts[f.ai]
				if apOwner[v] == -1 {
					apOwner[v] = f.block
				} else if apOwner[v] != f.block {
					// Owned by an ancestor: its other blocks are our
					// siblings, discovered by the owner, not by us.
					f.ai++
					f.bi = 0
					continue
				}
				blocks := res.VertexBlocks[v]
				for f.bi < len(blocks) {
					nxt := blocks[f.bi]
					f.bi++
					if !visited[nxt] {
						visited[nxt] = true
						stack = append(stack, frame{block: nxt, father: f.block})
						advanced = true
						break
					}
				}
				if advanced {
					break
				}
				f.ai++
				f.bi = 0
			}
			if advanced {
				continue
			}
			// Post-order: decide whether this (possibly already merged-into)
			// group joins its father's group.
			cur := find(f.block)
			stack = stack[:len(stack)-1]
			if f.father < 0 {
				continue
			}
			fat := find(f.father)
			topGroup := find(top)
			mergeIt := false
			if fat != topGroup && size[cur] < int64(threshold) {
				mergeIt = true
			} else if fat == topGroup && size[cur] <= 2 {
				mergeIt = true
			}
			if mergeIt {
				// Child and father share exactly one articulation point.
				size[fat] += size[cur] - 1
				parent[cur] = fat
			}
		}
	}
	// Assign group ids to surviving roots.
	next := int32(0)
	groupID := make(map[int32]int32)
	for b := int32(0); int(b) < nb; b++ {
		r := find(b)
		id, ok := groupID[r]
		if !ok {
			id = next
			next++
			groupID[r] = id
		}
		blockGroup[b] = id
	}
	return blockGroup
}
