package decompose

import (
	"testing"

	"repro/internal/bfs"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Cross-validation of α and β against their paper definitions computed with
// the independent BFS package: α_SGi(a) = vertices a reaches without passing
// through SGi; β_SGi(a) = vertices that reach a without passing through SGi.
func TestAlphaBetaDefinition(t *testing.T) {
	graphs := []*graph.Graph{
		gen.SocialLike(gen.SocialParams{N: 250, AvgDeg: 4, Communities: 6,
			TopShare: 0.4, LeafFrac: 0.3, Seed: 81}),
		gen.SocialLike(gen.SocialParams{N: 250, AvgDeg: 4, Communities: 6,
			TopShare: 0.4, LeafFrac: 0.3, Directed: true, Reciprocity: 0.4, Seed: 82}),
		gen.RoadLike(gen.RoadParams{Rows: 8, Cols: 8, DeleteFrac: 0.15,
			SpurFrac: 0.2, SpurLen: 2, Seed: 83}),
	}
	for gi, g := range graphs {
		d, err := Decompose(g, Options{Threshold: 6})
		if err != nil {
			t.Fatal(err)
		}
		for _, sg := range d.Subgraphs {
			inSG := make(map[graph.V]bool, sg.NumVerts())
			for _, v := range sg.Verts {
				inSG[v] = true
			}
			for _, la := range sg.Arts {
				a := sg.Verts[la]
				blocked := func(v graph.V) bool { return inSG[v] && v != a }
				alpha := float64(bfs.ReachableCount(g, a, blocked) - 1)
				beta := float64(bfs.ReverseReachableCount(g, a, blocked) - 1)
				if sg.Alpha[la] != alpha {
					t.Fatalf("graph %d sg %d AP %d: alpha %v, definition %v",
						gi, sg.ID, a, sg.Alpha[la], alpha)
				}
				if sg.Beta[la] != beta {
					t.Fatalf("graph %d sg %d AP %d: beta %v, definition %v",
						gi, sg.ID, a, sg.Beta[la], beta)
				}
			}
		}
	}
}
