package approx

import (
	"math"
	"testing"

	"repro/internal/brandes"
	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/gen"
	"repro/internal/graph"
)

// testGraphs mirrors the seed suites: small structured graphs plus
// social-like generators with articulation-point structure.
func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":     gen.Path(20),
		"star":     gen.Star(20),
		"lollipop": gen.Lollipop(6, 10),
		"tree":     gen.Tree(50, 1),
		"caveman":  gen.Caveman(4, 6, false),
		"grid":     gen.Grid2D(6, 6),
		"social": gen.SocialLike(gen.SocialParams{
			N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 1}),
		"socialDir": gen.SocialLike(gen.SocialParams{
			N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3,
			Directed: true, Reciprocity: 0.5, Seed: 2}),
		"er": gen.ErdosRenyi(300, 900, false, 7),
	}
}

// exactReference computes BC with the exact coarse serial path: sub-graphs
// in index order, serial sweeps, roots in sg.Roots order — the schedule a
// full-budget estimator replays.
func exactReference(t *testing.T, g *graph.Graph) []float64 {
	t.Helper()
	bc, err := core.Compute(g, core.Options{Workers: 1, Strategy: core.StrategyCoarseOnly})
	if err != nil {
		t.Fatal(err)
	}
	return bc
}

// TestExactBudgetBitMatch is the K == n acceptance check: a budget covering
// every root must reproduce exact BC bit-identically (same sweeps, same
// accumulation order), with Exact set and zero error.
func TestExactBudgetBitMatch(t *testing.T) {
	for name, g := range testGraphs() {
		want := exactReference(t, g)
		res, err := Estimate(g, Options{Pivots: g.NumVertices(), Seed: 42})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Exact {
			t.Errorf("%s: full budget not flagged exact", name)
		}
		if res.ErrEstimate != 0 {
			t.Errorf("%s: exact result reports error %g", name, res.ErrEstimate)
		}
		for v := range want {
			if res.BC[v] != want[v] {
				t.Fatalf("%s: vertex %d: approx %v != exact %v (bit mismatch)",
					name, v, res.BC[v], want[v])
			}
		}
		// Cross-check against plain Brandes within tolerance (the strategy
		// equivalence itself is covered by core's tests).
		serial := brandes.Serial(g)
		for v := range serial {
			if math.Abs(res.BC[v]-serial[v]) > 1e-7*(1+math.Abs(serial[v])) {
				t.Fatalf("%s: vertex %d: approx %v vs brandes %v", name, v, res.BC[v], serial[v])
			}
		}
	}
}

// TestExactBudgetWorkersBitMatch pins that the full-budget path is
// deterministic and still bit-exact with parallel workers (contributions are
// computed per sub-graph and folded serially in index order).
func TestExactBudgetWorkersBitMatch(t *testing.T) {
	g := testGraphs()["social"]
	want := exactReference(t, g)
	res, err := Estimate(g, Options{Pivots: g.NumVertices(), Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if res.BC[v] != want[v] {
			t.Fatalf("vertex %d: %v != %v with 4 workers", v, res.BC[v], want[v])
		}
	}
}

// TestSeededDeterminism: identical options reproduce identical estimates,
// for any worker count; a different seed samples a different pivot set.
func TestSeededDeterminism(t *testing.T) {
	g := testGraphs()["social"]
	opt := Options{Pivots: 60, Seed: 11}
	a, err := Estimate(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	optP := opt
	optP.Workers = 4
	c, err := Estimate(g, optP)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pivots != b.Pivots || a.ErrEstimate != b.ErrEstimate {
		t.Fatalf("same seed, different metadata: %+v vs %+v", a, b)
	}
	for v := range a.BC {
		if a.BC[v] != b.BC[v] {
			t.Fatalf("same seed, vertex %d differs: %v vs %v", v, a.BC[v], b.BC[v])
		}
		if a.BC[v] != c.BC[v] {
			t.Fatalf("worker count changed vertex %d: %v vs %v", v, a.BC[v], c.BC[v])
		}
	}
	optO := opt
	optO.Seed = 12
	d, err := Estimate(g, optO)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.BC {
		if a.BC[v] != d.BC[v] {
			same = false
			break
		}
	}
	if same && !a.Exact {
		t.Fatal("different seeds produced identical non-exact estimates")
	}
}

// normalizedMaxErr is max_v |a-b| / ((n-1)(n-2)).
func normalizedMaxErr(a, b []float64) float64 {
	n := len(a)
	norm := 1.0
	if n > 2 {
		norm = 1 / (float64(n-1) * float64(n-2))
	}
	worst := 0.0
	for v := range a {
		if d := math.Abs(a[v] - b[v]); d > worst {
			worst = d
		}
	}
	return worst * norm
}

// TestAdaptiveEps: the adaptive mode terminates, reports an error bound at
// or below the target, and the measured error is in the bound's ballpark.
// Seeded sampling keeps this deterministic, so the loose factor only covers
// the bootstrap's approximation, not run-to-run noise.
func TestAdaptiveEps(t *testing.T) {
	g := testGraphs()["social"]
	exact := exactReference(t, g)
	const eps = 0.02
	res, err := Estimate(g, Options{Eps: eps, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact && res.ErrEstimate > eps {
		t.Fatalf("stopped with error estimate %g > eps %g", res.ErrEstimate, eps)
	}
	if got := normalizedMaxErr(res.BC, exact); got > 5*eps {
		t.Fatalf("measured normalized error %g far above eps %g", got, eps)
	}
	if res.Pivots <= 0 || res.Pivots > int(res.ExactRoots) {
		t.Fatalf("implausible pivot count %d (exact roots %d)", res.Pivots, res.ExactRoots)
	}
}

// TestEstimatorRefinement drives an Estimator by hand, as bcd does: pivots
// grow monotonically, the error estimate becomes finite after two batches,
// and saturation reaches the exact scores.
func TestEstimatorRefinement(t *testing.T) {
	g := testGraphs()["caveman"]
	exact := exactReference(t, g)
	est, err := NewEstimator(mustDecompose(t, g), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	prev := est.Pivots()
	for i := 0; i < 100 && !est.Exact(); i++ {
		ran := est.Refine(4)
		if ran < 0 || est.Pivots() < prev {
			t.Fatalf("pivot count went backwards: %d -> %d", prev, est.Pivots())
		}
		prev = est.Pivots()
		if est.Batches() >= 2 && math.IsInf(est.ErrorEstimate(), 1) {
			t.Fatal("error estimate still infinite with >= 2 batches")
		}
	}
	if !est.Exact() {
		t.Fatalf("estimator failed to saturate after %d pivots", est.Pivots())
	}
	if est.ErrorEstimate() != 0 {
		t.Fatalf("saturated estimator reports error %g", est.ErrorEstimate())
	}
	got := est.Estimate()
	for v := range exact {
		if math.Abs(got[v]-exact[v]) > 1e-9*(1+math.Abs(exact[v])) {
			t.Fatalf("saturated estimate differs at %d: %v vs %v", v, got[v], exact[v])
		}
	}
}

func mustDecompose(t *testing.T, g *graph.Graph) *decompose.Decomposition {
	t.Helper()
	d, err := decompose.Decompose(g, decompose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestOptionValidation covers the error paths: no mode selected and
// weighted input.
func TestOptionValidation(t *testing.T) {
	g := gen.Path(10)
	if _, err := Estimate(g, Options{}); err == nil {
		t.Fatal("expected error when neither Pivots nor Eps is set")
	}
	w := gen.WithRandomWeights(gen.Lollipop(4, 4), 5, 3)
	if _, err := Estimate(w, Options{Pivots: 4}); err == nil {
		t.Fatal("expected error for weighted graph")
	}
}

// TestEmptyAndTiny covers degenerate inputs.
func TestEmptyAndTiny(t *testing.T) {
	empty := graph.NewFromEdges(0, nil, false)
	res, err := Estimate(empty, Options{Pivots: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BC) != 0 || !res.Exact {
		t.Fatalf("empty graph: %+v", res)
	}
	two := graph.NewFromEdges(2, []graph.Edge{{From: 0, To: 1}}, false)
	res, err = Estimate(two, Options{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.BC[0] != 0 || res.BC[1] != 0 {
		t.Fatalf("two-vertex graph: %+v", res)
	}
}

// TestZQuantile pins the critical values the stopping rule uses.
func TestZQuantile(t *testing.T) {
	cases := map[float64]float64{0.95: 1.959964, 0.99: 2.575829, 0.90: 1.644854}
	for conf, want := range cases {
		if got := zQuantile(conf); math.Abs(got-want) > 1e-4 {
			t.Errorf("zQuantile(%g) = %v, want %v", conf, got, want)
		}
	}
}
