package approx

import (
	"math"
	"testing"

	"repro/internal/core"
)

// TestEngineBitMatch pins the estimator's engine-independence: the batched
// msbfs pivot path must reproduce the scalar path bit for bit at partial
// budgets (same seed → same pivot sets → identical sweep arithmetic) and at
// the full-budget exact replay, for serial and parallel workers.
func TestEngineBitMatch(t *testing.T) {
	for name, g := range testGraphs() {
		for _, pivots := range []int{20, g.NumVertices()} {
			for _, workers := range []int{1, 4} {
				opt := Options{Pivots: pivots, Seed: 11, Workers: workers}
				want, err := Estimate(g, opt)
				if err != nil {
					t.Fatalf("%s scalar: %v", name, err)
				}
				opt.Engine = core.EngineMSBFS
				got, err := Estimate(g, opt)
				if err != nil {
					t.Fatalf("%s msbfs: %v", name, err)
				}
				if want.Pivots != got.Pivots || want.Exact != got.Exact {
					t.Fatalf("%s pivots=%d w=%d: shape diverged: (%d,%v) vs (%d,%v)",
						name, pivots, workers, want.Pivots, want.Exact, got.Pivots, got.Exact)
				}
				for v := range want.BC {
					if math.Float64bits(want.BC[v]) != math.Float64bits(got.BC[v]) {
						t.Fatalf("%s pivots=%d w=%d vertex %d: scalar %v, msbfs %v",
							name, pivots, workers, v, want.BC[v], got.BC[v])
					}
				}
			}
		}
	}
}

// TestEngineExactBudgetBitMatch: the full-budget msbfs estimator still
// replays the exact coarse serial path bit for bit — batching must not cost
// the K == n guarantee.
func TestEngineExactBudgetBitMatch(t *testing.T) {
	for name, g := range testGraphs() {
		want := exactReference(t, g)
		res, err := Estimate(g, Options{
			Pivots: g.NumVertices(), Seed: 42, Engine: core.EngineMSBFS,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Exact {
			t.Errorf("%s: full budget not flagged exact", name)
		}
		for v := range want {
			if res.BC[v] != want[v] {
				t.Fatalf("%s: vertex %d: msbfs approx %v != exact %v (bit mismatch)",
					name, v, res.BC[v], want[v])
			}
		}
	}
}

// TestEngineValidation: an out-of-range engine is rejected up front.
func TestEngineValidation(t *testing.T) {
	g := testGraphs()["path"]
	if _, err := Estimate(g, Options{Pivots: 4, Engine: core.RootEngine(9)}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
