package approx

import (
	"math"
	"math/rand"
)

// ErrorEstimate bootstraps the stored batch vectors into a per-vertex
// confidence-interval half-width for the mean batch estimate and returns the
// maximum over vertices on the normalized BC scale (divided by (n−1)(n−2)).
// It returns 0 once the estimate is exact and +Inf while fewer than two
// batches exist. Results are cached until the next refinement and are
// deterministic: the bootstrap RNG is derived from the seed and the pivot
// count.
func (e *Estimator) ErrorEstimate() float64 {
	if len(e.open) == 0 {
		return 0
	}
	if len(e.batches) < 2 {
		return math.Inf(1)
	}
	if e.errValid {
		return e.errCached
	}
	k := len(e.batches)
	rng := rand.New(rand.NewSource(e.seed ^ 0x5deece66d ^ int64(e.pivots)<<17))
	m1 := make([]float64, e.n)
	m2 := make([]float64, e.n)
	mean := make([]float64, e.n)
	invK := 1 / float64(k)
	for r := 0; r < bootstrapResamples; r++ {
		for v := range mean {
			mean[v] = 0
		}
		for j := 0; j < k; j++ {
			b := e.batches[rng.Intn(k)]
			for v, x := range b {
				mean[v] += x
			}
		}
		for v, m := range mean {
			m *= invK
			m1[v] += m
			m2[v] += m * m
		}
	}
	z := zQuantile(e.conf)
	invR := 1 / float64(bootstrapResamples)
	maxHW := 0.0
	for v := range m1 {
		mu := m1[v] * invR
		va := m2[v]*invR - mu*mu
		if va <= 0 {
			continue
		}
		if hw := z * math.Sqrt(va); hw > maxHW {
			maxHW = hw
		}
	}
	e.errCached = maxHW * e.norm
	e.errValid = true
	return e.errCached
}

// zQuantile returns the two-sided standard-normal critical value for the
// given confidence level (e.g. 0.95 → ≈1.96), via Acklam's rational
// approximation of the inverse normal CDF (relative error < 1.2e-9 — far
// below the bootstrap's own noise).
func zQuantile(confidence float64) float64 {
	p := (1 + confidence) / 2
	return probit(p)
}

// probit is Acklam's inverse standard-normal CDF approximation.
func probit(p float64) float64 {
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
}
