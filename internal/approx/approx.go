// Package approx estimates betweenness centrality from a sample of source
// pivots, fused with the APGRE decomposition (internal/decompose +
// internal/core).
//
// Exact APGRE runs one four-dependency sweep per root in every sub-graph's
// root set R_i (the vertices surviving γ folding). BC factorizes over those
// sweeps:
//
//	BC(v) = Σ_i Σ_{s ∈ R_i} C_{i,s}(v)
//
// where C_{i,s} is root s's full contribution bundle — δ_i2i, δ_i2o, δ_o2i,
// δ_o2o and the γ root term, including every α/β boundary seed. The
// estimator samples k_i roots uniformly without replacement from each R_i
// and scales that sub-graph's sampled contributions by |R_i|/k_i
// (Horvitz–Thompson with equal inclusion probabilities), which keeps the
// estimate unbiased per vertex. The α/β/γ corrections stay exact under
// sampling because they are properties of the decomposition evaluated
// inside each sampled sweep, not quantities being sampled; only the outer
// sum over roots is subsampled.
//
// Budgets are allocated across sub-graphs proportionally to sub-graph size
// and capped at |R_i|, so a budget of n (the whole-graph root count) or more
// saturates every sub-graph: each scale factor becomes exactly 1 and the
// estimator replays the exact engine's root schedule through the same
// core.RootSweep arithmetic — full-budget results bit-match the exact
// coarse serial path (see TestExactBudgetBitMatch). Sub-graphs with at most
// presolveRoots roots are always solved exactly up front; sampling only
// pays off in large sub-graphs, and exactness there is nearly free.
//
// The adaptive mode (Options.Eps) keeps drawing fixed-size pivot batches.
// Each batch is itself an unbiased estimate of the still-sampled part of
// BC, so a percentile-free bootstrap over the per-batch estimate vectors
// yields a per-vertex confidence-interval half-width; refinement stops once
// the maximum half-width, on the normalized scale BC/((n−1)(n−2)), drops
// below Eps. The stopping rule is a heuristic (batches estimating
// sub-graphs that later saturate make it conservative); the bcbench
// error-vs-speedup experiment validates it against measured error.
package approx

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/graph"
)

// Defaults and tuning constants.
const (
	// DefaultBatchSize is the pivot count per adaptive refinement batch.
	DefaultBatchSize = 64
	// DefaultConfidence is the two-sided confidence level of the adaptive
	// stopping rule's per-vertex intervals.
	DefaultConfidence = 0.95
	// presolveRoots: sub-graphs with at most this many roots are solved
	// exactly during estimator construction instead of being sampled.
	presolveRoots = 32
	// maxStoredBatches bounds the memory of the bootstrap: beyond this many
	// batch vectors, adjacent pairs are averaged (which preserves the mean
	// and the variance of the mean the bootstrap estimates).
	maxStoredBatches = 32
	// bootstrapResamples is the number of bootstrap resamples per error
	// evaluation.
	bootstrapResamples = 64
)

// Options configures an estimate. Exactly one of Pivots or Eps selects the
// mode for Estimate/EstimateDecomposed; NewEstimator accepts either (the
// caller drives refinement explicitly).
type Options struct {
	// Pivots is the fixed source-sample budget. Budgets >= the vertex count
	// (or the decomposition's total root count) are served by the exact
	// root schedule. Tiny sub-graphs are always solved exactly, so the
	// budget is a target, not a hard cap.
	Pivots int
	// Eps selects adaptive mode: sample until the maximum per-vertex
	// confidence-interval half-width on normalized BC drops below Eps.
	Eps float64
	// MaxPivots caps adaptive refinement; <= 0 means "until exact".
	MaxPivots int
	// BatchSize is the pivots per refinement batch; <= 0 means
	// DefaultBatchSize.
	BatchSize int
	// Confidence is the level of the stopping rule's intervals; outside
	// (0,1) means DefaultConfidence.
	Confidence float64
	// Seed makes the sampler deterministic: the same seed, options and
	// graph reproduce identical estimates for any worker count.
	Seed int64
	// Workers bounds goroutine parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Threshold is the decomposition merge threshold (used by Estimate,
	// which decomposes; EstimateDecomposed ignores it).
	Threshold int
	// Engine selects the sweep kernel pivots run through: core.EngineScalar
	// (the zero value) runs one root per sweep, core.EngineMSBFS batches a
	// sub-graph's pivots bit-parallel (core.RootSweep.RunBatch). Batching is
	// bit-identical to scalar sweeps, so estimates — including the
	// full-budget exact replay — do not depend on the choice.
	Engine core.RootEngine
}

// Result is a finished estimate.
type Result struct {
	// BC holds the estimated scores (directed-sum convention, same as the
	// exact engine).
	BC []float64
	// Pivots is the number of root sweeps actually run (sampled plus
	// presolved), and ExactRoots the sweeps the exact engine would run.
	Pivots     int
	ExactRoots int64
	// Batches is the number of stochastic refinement batches drawn.
	Batches int
	// Exact reports that every sub-graph saturated: BC carries no sampling
	// error.
	Exact bool
	// ErrEstimate is the bootstrap confidence-interval half-width on
	// normalized BC (max over vertices): 0 when Exact, +Inf when fewer
	// than two batches exist to estimate from.
	ErrEstimate float64
}

// Estimate decomposes g and runs EstimateDecomposed.
func Estimate(g *graph.Graph, opt Options) (*Result, error) {
	if g.Weighted() {
		return nil, fmt.Errorf("approx: weighted graphs are not supported")
	}
	d, err := decompose.Decompose(g, decompose.Options{
		Threshold: opt.Threshold,
		Workers:   opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	return EstimateDecomposed(d, opt)
}

// EstimateDecomposed runs the estimator over an existing decomposition in
// the mode Options selects: fixed budget (Pivots > 0) or adaptive (Eps > 0).
func EstimateDecomposed(d *decompose.Decomposition, opt Options) (*Result, error) {
	est, err := NewEstimator(d, opt)
	if err != nil {
		return nil, err
	}
	switch {
	case opt.Pivots > 0:
		est.EnsureBudget(opt.Pivots)
	case opt.Eps > 0:
		est.EnsureEps(opt.Eps)
	default:
		return nil, fmt.Errorf("approx: Options needs Pivots > 0 or Eps > 0")
	}
	r := est.Result()
	return &r, nil
}
