package approx

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/par"
)

// subSampler is the per-sub-graph sampling state.
type subSampler struct {
	sg *decompose.Subgraph
	// perm is a seeded shuffle of sg.Roots, consumed front to back; the
	// prefix perm[:next] is always a uniform without-replacement sample of
	// the root set. Presolved sub-graphs never allocate it.
	perm []int32
	next int
	// sum accumulates ΣC over consumed roots (local ids); once done, it is
	// the sub-graph's exact contribution.
	sum     []float64
	contrib []float64 // per-batch scratch
	done    bool      // every root consumed: contribution is exact
}

func (s *subSampler) rootCount() int { return len(s.sg.Roots) }

// Estimator is a refinable per-sub-graph pivot sampler. It is not safe for
// concurrent use; callers (the bcd registry) serialize access externally.
type Estimator struct {
	d         *decompose.Decomposition
	directed  bool
	n         int     // vertices in the whole graph
	norm      float64 // 1/((n-1)(n-2)) — normalized-BC divisor
	conf      float64
	batch     int
	maxPivots int
	seed      int64
	workers   int

	engine core.RootEngine

	subs       []*subSampler // index-aligned with d.Subgraphs
	open       []int         // indices of sub-graphs still being sampled
	totalRoots int64
	pivots     int
	presolved  int // pivots spent by the construction-time presolve pass

	// batches holds per-batch unbiased estimate vectors of the still-open
	// part of BC (global ids), the bootstrap's resampling units.
	batches [][]float64

	sweeps    []*core.RootSweep // per-worker exact-arithmetic sweeps
	errCached float64
	errValid  bool
}

// NewEstimator prepares sampling state over d (seeded root shuffles) and
// presolves every sub-graph with at most presolveRoots roots exactly. No
// stochastic sampling happens until Refine/EnsureBudget/EnsureEps.
func NewEstimator(d *decompose.Decomposition, opt Options) (*Estimator, error) {
	if d.G.Weighted() {
		return nil, fmt.Errorf("approx: weighted graphs are not supported")
	}
	switch opt.Engine {
	case core.EngineScalar, core.EngineMSBFS:
	default:
		return nil, fmt.Errorf("approx: unknown root engine %d", opt.Engine)
	}
	n := d.G.NumVertices()
	e := &Estimator{
		d:         d,
		directed:  d.G.Directed(),
		n:         n,
		norm:      1,
		conf:      opt.Confidence,
		batch:     opt.BatchSize,
		maxPivots: opt.MaxPivots,
		seed:      opt.Seed,
		workers:   opt.Workers,
		engine:    opt.Engine,
	}
	if n > 2 {
		e.norm = 1 / (float64(n-1) * float64(n-2))
	}
	if e.conf <= 0 || e.conf >= 1 {
		e.conf = DefaultConfidence
	}
	if e.batch <= 0 {
		e.batch = DefaultBatchSize
	}
	e.rngShuffle(opt.Seed)
	e.presolved = e.pivots
	return e, nil
}

// rngShuffle builds the per-sub-graph samplers with seeded permutations and
// runs the presolve pass. Split out of NewEstimator only for clarity.
func (e *Estimator) rngShuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var presolve []int
	for i, sg := range e.d.Subgraphs {
		s := &subSampler{sg: sg, sum: make([]float64, sg.NumVerts())}
		e.subs = append(e.subs, s)
		e.totalRoots += int64(len(sg.Roots))
		if len(sg.Roots) <= presolveRoots {
			presolve = append(presolve, i)
			continue
		}
		// Fisher–Yates over a copy; sg.Roots keeps its exact-engine order
		// so the full-budget path can replay it verbatim.
		s.perm = append([]int32(nil), sg.Roots...)
		rng.Shuffle(len(s.perm), func(a, b int) {
			s.perm[a], s.perm[b] = s.perm[b], s.perm[a]
		})
		e.open = append(e.open, i)
	}
	e.runExactSubs(presolve)
}

// ensureSweeps sizes the per-worker scratch pool.
func (e *Estimator) ensureSweeps(p int) {
	for len(e.sweeps) < p {
		e.sweeps = append(e.sweeps, &core.RootSweep{})
	}
}

// sweepRoots runs the given roots of one sub-graph through sw with the
// configured engine. Both paths are bit-identical (RunBatch's contract), so
// everything downstream — sums, batch vectors, the full-budget replay — is
// engine-independent to the last bit.
func (e *Estimator) sweepRoots(sw *core.RootSweep, sg *decompose.Subgraph, roots []int32) {
	if e.engine == core.EngineMSBFS {
		sw.RunBatch(sg, roots, e.directed)
		return
	}
	for _, r := range roots {
		sw.Run(sg, r, e.directed)
	}
}

// growZero returns dst resized to n with every element zeroed.
func growZero(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// runExactSubs finishes the listed sub-graphs exactly. Sub-graphs that were
// never sampled replay sg.Roots in the exact engine's order, which is what
// makes untouched-estimator full-budget runs bit-identical to the exact
// coarse serial path; partially sampled ones finish their permutation tail
// (exact values, root order differs, so last-bit rounding may differ).
func (e *Estimator) runExactSubs(idxs []int) {
	if len(idxs) == 0 {
		return
	}
	p := par.Workers(e.workers)
	e.ensureSweeps(p)
	ran := make([]int, len(idxs))
	par.ForWorker(len(idxs), p, 1, func(w, k int) {
		s := e.subs[idxs[k]]
		roots := s.sg.Roots
		if s.next > 0 {
			roots = s.perm[s.next:]
		}
		sw := e.sweeps[w]
		e.sweepRoots(sw, s.sg, roots)
		s.contrib = growZero(s.contrib, s.sg.NumVerts())
		sw.Collect(s.contrib)
		for l, c := range s.contrib {
			if c != 0 {
				s.sum[l] += c
			}
		}
		ran[k] = len(roots)
	})
	for k, si := range idxs {
		s := e.subs[si]
		e.pivots += ran[k]
		s.next = s.rootCount()
		s.done = true
		s.contrib = nil
	}
	e.dropDone()
	e.errValid = false
}

// dropDone removes finished sub-graphs from the open list.
func (e *Estimator) dropDone() {
	open := e.open[:0]
	for _, si := range e.open {
		if !e.subs[si].done {
			open = append(open, si)
		}
	}
	e.open = open
}

// Refine draws one stochastic batch of roughly `budget` pivots, allocated
// across the open sub-graphs proportionally to sub-graph size with at least
// one pivot each (every open sub-graph must appear in every batch for the
// batch vector to be an unbiased estimate of the open part). Returns the
// number of pivots actually run; 0 means the estimate is already exact.
func (e *Estimator) Refine(budget int) int {
	if len(e.open) == 0 || budget <= 0 {
		return 0
	}
	e.errValid = false

	var totalN int64
	for _, si := range e.open {
		totalN += int64(e.subs[si].sg.NumVerts())
	}
	alloc := make([]int, len(e.open))
	for k, si := range e.open {
		s := e.subs[si]
		a := int(int64(budget) * int64(s.sg.NumVerts()) / totalN)
		if a < 1 {
			a = 1
		}
		if rem := s.rootCount() - s.next; a > rem {
			a = rem
		}
		alloc[k] = a
	}

	p := par.Workers(e.workers)
	e.ensureSweeps(p)
	open := append([]int(nil), e.open...)
	par.ForWorker(len(open), p, 1, func(w, k int) {
		s := e.subs[open[k]]
		sw := e.sweeps[w]
		e.sweepRoots(sw, s.sg, s.perm[s.next:s.next+alloc[k]])
		s.contrib = growZero(s.contrib, s.sg.NumVerts())
		sw.Collect(s.contrib)
	})

	// Serial fold in sub-graph index order: deterministic for any worker
	// count (each sub-graph's contribution was computed sequentially by one
	// worker; only the fold below touches shared vectors).
	bvec := make([]float64, e.n)
	ran := 0
	for k, si := range open {
		s := e.subs[si]
		scale := float64(s.rootCount()) / float64(alloc[k])
		for l, v := range s.sg.Verts {
			if c := s.contrib[l]; c != 0 {
				s.sum[l] += c
				bvec[v] += scale * c
			}
		}
		s.next += alloc[k]
		if s.next == s.rootCount() {
			s.done = true
			s.contrib = nil
		}
		ran += alloc[k]
	}
	e.pivots += ran
	e.batches = append(e.batches, bvec)
	if len(e.batches) >= maxStoredBatches {
		e.collapseBatches()
	}
	e.dropDone()
	return ran
}

// collapseBatches averages adjacent batch-vector pairs, halving the stored
// count. Pair averages are themselves unbiased batch estimates, and the mean
// over the collapsed set equals the mean over the originals, so the
// bootstrap's variance-of-the-mean target is preserved.
func (e *Estimator) collapseBatches() {
	half := len(e.batches) / 2
	for j := 0; j < half; j++ {
		a, b := e.batches[2*j], e.batches[2*j+1]
		for v := range a {
			a[v] = (a[v] + b[v]) / 2
		}
		e.batches[j] = a
	}
	e.batches = e.batches[:half]
}

// RunExact finishes every open sub-graph exactly; afterwards Exact() is true
// and ErrorEstimate() is 0.
func (e *Estimator) RunExact() {
	if len(e.open) == 0 {
		return
	}
	e.runExactSubs(append([]int(nil), e.open...))
	e.batches = nil
}

// EnsureBudget refines until at least `pivots` stochastic root sweeps have
// run beyond the construction-time presolve pass. Presolve sweeps are not
// charged against the budget: they cover the many tiny sub-graphs whose
// sweeps are near-free, and charging them would starve the large sub-graphs
// that dominate both cost and variance of exactly the sweeps the caller is
// paying for. Budgets covering every root (>= the vertex count or the total
// root count) switch to the exact schedule. A fresh estimator splits a small
// budget into two batches so the bootstrap has something to resample.
func (e *Estimator) EnsureBudget(pivots int) {
	if pivots >= e.n || int64(pivots)+int64(e.presolved) >= e.totalRoots {
		e.RunExact()
		return
	}
	target := e.presolved + pivots
	for e.pivots < target && len(e.open) > 0 {
		rem := target - e.pivots
		b := e.batch
		if len(e.batches) == 0 && rem <= b && rem >= 2 {
			b = (rem + 1) / 2
		}
		if b > rem {
			b = rem
		}
		if e.Refine(b) == 0 {
			break
		}
	}
	// The presolve pass may have exhausted the budget on its own, but an
	// estimate must never silently drop the open sub-graphs (that would be
	// biased, not just noisy), and one batch cannot bootstrap an error bar.
	// Top up to two minimal batches: Refine gives every open sub-graph at
	// least one pivot regardless of the budget passed.
	for len(e.batches) < 2 && len(e.open) > 0 {
		if e.Refine(len(e.open)) == 0 {
			break
		}
	}
}

// EnsureEps refines until the bootstrap error estimate drops to eps (on the
// normalized BC scale), every sub-graph saturates, or Options.MaxPivots is
// hit. eps <= 0 demands exactness.
func (e *Estimator) EnsureEps(eps float64) {
	if eps <= 0 {
		e.RunExact()
		return
	}
	for len(e.open) > 0 && (e.maxPivots <= 0 || e.pivots < e.maxPivots) {
		if len(e.batches) >= 2 && e.ErrorEstimate() <= eps {
			return
		}
		if e.Refine(e.batch) == 0 {
			break
		}
	}
}

// Estimate assembles the current scores: exact sums for finished sub-graphs,
// Horvitz–Thompson scaled sums (|R_i|/k_i) for sampled ones, folded in
// sub-graph index order so results are deterministic for any worker count.
func (e *Estimator) Estimate() []float64 {
	out := make([]float64, e.n)
	for _, s := range e.subs {
		switch {
		case s.done:
			for l, v := range s.sg.Verts {
				if c := s.sum[l]; c != 0 {
					out[v] += c
				}
			}
		case s.next > 0:
			scale := float64(s.rootCount()) / float64(s.next)
			for l, v := range s.sg.Verts {
				if c := s.sum[l]; c != 0 {
					out[v] += scale * c
				}
			}
		}
	}
	return out
}

// Exact reports whether every sub-graph has been solved in full.
func (e *Estimator) Exact() bool { return len(e.open) == 0 }

// Pivots returns the number of root sweeps run so far.
func (e *Estimator) Pivots() int { return e.pivots }

// ExactRoots returns the sweep count of the exact engine (Σ|R_i|).
func (e *Estimator) ExactRoots() int64 { return e.totalRoots }

// Batches returns the number of stored stochastic batch vectors.
func (e *Estimator) Batches() int { return len(e.batches) }

// Release returns the estimator's pooled sweep workspaces to the shared
// core arena. The estimator stays usable — ensureSweeps re-acquires scratch
// on the next Refine/EnsureBudget call — so long-lived holders (the bcd
// estimator cache) call Release when discarding or idling an estimator to
// keep the pool's in-use gauge honest.
func (e *Estimator) Release() {
	for _, sw := range e.sweeps {
		sw.Release()
	}
	e.sweeps = e.sweeps[:0]
}

// Result snapshots the estimator into a finished Result.
func (e *Estimator) Result() Result {
	return Result{
		BC:          e.Estimate(),
		Pivots:      e.pivots,
		ExactRoots:  e.totalRoots,
		Batches:     len(e.batches),
		Exact:       e.Exact(),
		ErrEstimate: e.ErrorEstimate(),
	}
}
