// Package metrics computes the performance figures the paper reports —
// TEPS_BC = n·m/t (§5.1, citing [35]) and speedups — and renders the
// aligned text tables the benchmark harness prints.
package metrics

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// TEPS returns the BC traversal rate n·m/t in edges per second. The metric
// is defined against the classic O(nm) algorithm's work regardless of how
// much work the measured algorithm actually did — like MFLOPS for matrix
// multiplication measured against O(N³) — which is exactly how APGRE's rates
// can exceed the memory bandwidth implied by naive traversal.
func TEPS(n int, m int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) * float64(m) / d.Seconds()
}

// MTEPS is TEPS in millions (the unit of Table 3).
func MTEPS(n int, m int64, d time.Duration) float64 {
	return TEPS(n, m, d) / 1e6
}

// Speedup returns base/measured, the ratio form of Figure 6.
func Speedup(base, measured time.Duration) float64 {
	if measured <= 0 {
		return 0
	}
	return base.Seconds() / measured.Seconds()
}

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case time.Duration:
			row[i] = FormatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with padded columns.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FormatFloat renders a float compactly: large values without decimals,
// small ones with enough precision to compare.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// FormatDuration renders a duration with millisecond precision for the
// table column widths used by the harness.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Percent renders a fraction as a percentage.
func Percent(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// FormatMTEPS renders a search rate for the tables. TEPS/MTEPS return the
// sentinel 0 for non-positive durations (a sub-resolution timer or a missing
// measurement), which must not be confused with a real rate — render n/a.
func FormatMTEPS(v float64) string {
	if v <= 0 {
		return "n/a"
	}
	return FormatFloat(v)
}

// FormatSpeedup renders a speedup ratio; 0 is Speedup's sentinel for an
// unmeasurable denominator, rendered n/a rather than "0.00x".
func FormatSpeedup(v float64) string {
	if v <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", v)
}
