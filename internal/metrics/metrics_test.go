package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTEPS(t *testing.T) {
	// n=1000, m=1e6, t=1s → 1e9 TEPS = 1000 MTEPS.
	if got := TEPS(1000, 1_000_000, time.Second); got != 1e9 {
		t.Fatalf("TEPS = %v", got)
	}
	if got := MTEPS(1000, 1_000_000, time.Second); got != 1000 {
		t.Fatalf("MTEPS = %v", got)
	}
	if TEPS(10, 10, 0) != 0 {
		t.Fatal("zero duration must yield 0")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(4*time.Second, time.Second); got != 4 {
		t.Fatalf("speedup = %v", got)
	}
	if Speedup(time.Second, 0) != 0 {
		t.Fatal("zero measured must yield 0")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"graph", "time", "mteps"}}
	tb.AddRow("enron", 1500*time.Millisecond, 123.456)
	tb.AddRow("wiki-talk-very-long", 70*time.Microsecond, 2400.0)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "1.50s") || !strings.Contains(out, "2400") {
		t.Fatalf("formatting wrong:\n%s", out)
	}
	// Columns aligned: header and first row start of col2 must match.
	hIdx := strings.Index(lines[1], "time")
	rIdx := strings.Index(lines[3], "1.50s")
	if hIdx != rIdx {
		t.Fatalf("column misaligned: %d vs %d\n%s", hIdx, rIdx, out)
	}
}

func TestFormats(t *testing.T) {
	cases := map[float64]string{0: "0", 5000: "5000", 42.42: "42.4", 1.23456: "1.235"}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatDuration(2 * time.Millisecond); got != "2.0ms" {
		t.Fatalf("FormatDuration = %q", got)
	}
	if got := FormatDuration(900 * time.Nanosecond); got != "0µs" {
		t.Fatalf("FormatDuration = %q", got)
	}
	if got := Percent(0.123); got != "12.3%" {
		t.Fatalf("Percent = %q", got)
	}
}

// TestSentinelRendering pins that the 0 sentinels TEPS/Speedup return for
// non-positive durations render as n/a, not as a real measurement.
func TestSentinelRendering(t *testing.T) {
	if got := FormatMTEPS(MTEPS(10, 10, 0)); got != "n/a" {
		t.Fatalf("zero-duration MTEPS rendered %q, want n/a", got)
	}
	if got := FormatMTEPS(MTEPS(10, 10, -time.Second)); got != "n/a" {
		t.Fatalf("negative-duration MTEPS rendered %q, want n/a", got)
	}
	if got := FormatMTEPS(123.456); got != "123.5" {
		t.Fatalf("real MTEPS rendered %q", got)
	}
	if got := FormatSpeedup(Speedup(time.Second, 0)); got != "n/a" {
		t.Fatalf("zero-duration speedup rendered %q, want n/a", got)
	}
	if got := FormatSpeedup(2.5); got != "2.50x" {
		t.Fatalf("real speedup rendered %q", got)
	}
}
