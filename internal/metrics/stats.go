package metrics

// Rank-quality statistics for the approximate-BC evaluation. They live here
// rather than in internal/approx so the bench harness's quality columns and
// any offline analyzer share one dependency-free implementation.

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// kendallExactLimit caps the O(n²) exact pair enumeration; above it
// KendallTau estimates from kendallSamplePairs random pairs instead (BC
// vectors grow with graph scale, and the estimate's noise is far below the
// rank differences the experiment looks for).
const (
	kendallExactLimit  = 2048
	kendallSamplePairs = 2_000_000
)

// KendallTau computes the τ-b rank correlation between two equally long
// score vectors: (C−D)/√((C+D+Tx)(C+D+Ty)) over vertex pairs, where ties on
// both sides are discarded. It returns 0 for degenerate inputs (length < 2,
// or one side all-tied). For n above kendallExactLimit the pair set is
// sampled uniformly with the given seed, making the result an estimate —
// deterministic for a fixed seed.
func KendallTau(x, y []float64, seed int64) float64 {
	n := len(x)
	if n < 2 || len(y) != n {
		return 0
	}
	var c, d, tx, ty int64
	tally := func(i, j int) {
		dx := x[i] - x[j]
		dy := y[i] - y[j]
		switch {
		case dx == 0 && dy == 0: // tied on both sides: uninformative
		case dx == 0:
			tx++
		case dy == 0:
			ty++
		case (dx > 0) == (dy > 0):
			c++
		default:
			d++
		}
	}
	if n <= kendallExactLimit {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				tally(i, j)
			}
		}
	} else {
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < kendallSamplePairs; k++ {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if i != j {
				tally(i, j)
			}
		}
	}
	denomX := float64(c + d + tx)
	denomY := float64(c + d + ty)
	if denomX == 0 || denomY == 0 {
		return 0
	}
	num := float64(c - d)
	return num / (math.Sqrt(denomX) * math.Sqrt(denomY))
}

// Percentile returns the p-th percentile (0 < p <= 100) of samples by the
// nearest-rank definition, sorting a copy so the caller's order is
// preserved. Empty input returns 0. The load harness (cmd/bcdload) uses it
// for its latency records.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
