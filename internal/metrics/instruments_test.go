package metrics

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters never decrease
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 0.1, 10, 1) // unsorted + duplicate on purpose
	if got := h.Bounds(); len(got) != 3 || got[0] != 0.1 || got[1] != 1 || got[2] != 10 {
		t.Fatalf("bounds = %v, want [0.1 1 10]", got)
	}
	for _, v := range []float64{0.1, 0.5, 1, 2, 100} {
		h.Observe(v)
	}
	buckets, sum, count := h.Snapshot()
	// Bounds are inclusive upper edges: 0.1 -> bucket 0, 1 -> bucket 1.
	want := []uint64{1, 2, 1, 1}
	for i, w := range want {
		if buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, buckets[i], w, buckets)
		}
	}
	if count != 5 || sum != 103.6 {
		t.Fatalf("count=%d sum=%v, want 5 and 103.6", count, sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(0.5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	_, sum, count := h.Snapshot()
	if count != 8000 || sum != 8000 {
		t.Fatalf("count=%d sum=%v, want 8000/8000", count, sum)
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty bounds")
		}
	}()
	NewHistogram()
}
