package metrics

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleRecord() Record {
	return Record{
		Experiment: "tables2-3",
		Graph:      "email-enron",
		Algorithm:  "apgre",
		Workers:    4,
		Scale:      0.25,
		Verts:      600,
		Edges:      4200,
		Wall:       125 * time.Millisecond,
		MTEPS:      20.16,
		Speedup:    3.4,
		Breakdown: &PhaseBreakdown{
			Partition:     5 * time.Millisecond,
			AlphaBeta:     3 * time.Millisecond,
			TopBC:         100 * time.Millisecond,
			RestBC:        17 * time.Millisecond,
			Total:         125 * time.Millisecond,
			TraversedArcs: 90000,
			Roots:         410,
			Subgraphs:     12,
			Articulations: 40,
		},
	}
}

// TestRecordRoundTrip: encode → decode → equal, through an on-disk document.
func TestRecordRoundTrip(t *testing.T) {
	rec := NewRecorder(0.25, 4)
	rec.Add(sampleRecord())
	serial := sampleRecord()
	serial.Algorithm = "serial"
	serial.Speedup = 1
	serial.Breakdown = nil
	rec.Add(serial)

	path, err := rec.WriteFile(filepath.Join(t.TempDir(), "bench.json"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadDocument(path)
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Document()
	if !reflect.DeepEqual(*got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", *got, want)
	}
	if got.Schema != SchemaVersion || got.GoVersion == "" || got.CreatedAt.IsZero() {
		t.Fatalf("document header incomplete: %+v", got)
	}
}

// TestWriteFileDirectory: a directory path yields a BENCH_<stamp>.json name.
func TestWriteFileDirectory(t *testing.T) {
	rec := NewRecorder(1, 1)
	rec.Add(sampleRecord())
	dir := t.TempDir()
	path, err := rec.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "BENCH_") || !strings.HasSuffix(base, ".json") {
		t.Fatalf("unexpected artifact name %q", base)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("artifact %q not inside %q", path, dir)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestReadDocumentRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDocument(path); err == nil {
		t.Fatal("schema mismatch must error")
	}
}

func compareDocs(t *testing.T, mutate func(*Record)) ([]Regression, []string) {
	t.Helper()
	old := NewRecorder(0.25, 4)
	old.Add(sampleRecord())
	oldDoc := old.Document()
	newDoc := old.Document()
	newDoc.Records = append([]Record(nil), newDoc.Records...)
	if mutate != nil {
		mutate(&newDoc.Records[0])
	}
	return Compare(&oldDoc, &newDoc, 10)
}

// TestCompare: identical documents carry no regressions; a doctored wall time
// or traversed-arc count beyond tolerance is flagged; shrinkage never is.
func TestCompare(t *testing.T) {
	if regs, missing := compareDocs(t, nil); len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("identical docs: regs=%v missing=%v", regs, missing)
	}
	regs, _ := compareDocs(t, func(r *Record) { r.Wall = r.Wall * 3 / 2 })
	if len(regs) != 1 || regs[0].Field != "wall_ns" {
		t.Fatalf("wall regression not caught: %v", regs)
	}
	if regs[0].Pct < 49 || regs[0].Pct > 51 {
		t.Fatalf("wrong pct: %v", regs[0])
	}
	regs, _ = compareDocs(t, func(r *Record) {
		bd := *r.Breakdown
		bd.TraversedArcs *= 2
		r.Breakdown = &bd
	})
	if len(regs) != 1 || regs[0].Field != "traversed_arcs" {
		t.Fatalf("arc regression not caught: %v", regs)
	}
	// Within tolerance (10%): no regression.
	if regs, _ := compareDocs(t, func(r *Record) { r.Wall += r.Wall / 20 }); len(regs) != 0 {
		t.Fatalf("5%% growth flagged at 10%% tolerance: %v", regs)
	}
	// Faster is never a regression.
	if regs, _ := compareDocs(t, func(r *Record) { r.Wall /= 2 }); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
	// Unsupported cells are exempt.
	if regs, _ := compareDocs(t, func(r *Record) { r.Wall *= 10; r.Unsupported = true }); len(regs) != 0 {
		t.Fatalf("unsupported cell flagged: %v", regs)
	}
}

func TestCompareMissing(t *testing.T) {
	old := NewRecorder(0.25, 4)
	old.Add(sampleRecord())
	extra := sampleRecord()
	extra.Graph = "usa-roadny"
	old.Add(extra)
	oldDoc := old.Document()

	newRec := NewRecorder(0.25, 4)
	newRec.Add(sampleRecord())
	newDoc := newRec.Document()

	regs, missing := Compare(&oldDoc, &newDoc, 10)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if len(missing) != 1 || !strings.Contains(missing[0], "usa-roadny") {
		t.Fatalf("missing = %v", missing)
	}
}

// TestNilRecorder: a nil recorder is inert, so call sites don't branch.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Add(sampleRecord())
	if r.Len() != 0 {
		t.Fatal("nil recorder must report 0 records")
	}
}
