package metrics

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleRecord() Record {
	return Record{
		Experiment: "tables2-3",
		Graph:      "email-enron",
		Algorithm:  "apgre",
		Workers:    4,
		Scale:      0.25,
		Verts:      600,
		Edges:      4200,
		Wall:       125 * time.Millisecond,
		MTEPS:      20.16,
		Speedup:    3.4,
		Breakdown: &PhaseBreakdown{
			Partition:     5 * time.Millisecond,
			AlphaBeta:     3 * time.Millisecond,
			TopBC:         100 * time.Millisecond,
			RestBC:        17 * time.Millisecond,
			Total:         125 * time.Millisecond,
			TraversedArcs: 90000,
			Roots:         410,
			Subgraphs:     12,
			Articulations: 40,
		},
	}
}

// TestRecordRoundTrip: encode → decode → equal, through an on-disk document.
func TestRecordRoundTrip(t *testing.T) {
	rec := NewRecorder(0.25, 4)
	rec.Add(sampleRecord())
	serial := sampleRecord()
	serial.Algorithm = "serial"
	serial.Speedup = 1
	serial.Breakdown = nil
	rec.Add(serial)

	path, err := rec.WriteFile(filepath.Join(t.TempDir(), "bench.json"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadDocument(path)
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Document()
	if !reflect.DeepEqual(*got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", *got, want)
	}
	if got.Schema != SchemaVersion || got.GoVersion == "" || got.CreatedAt.IsZero() {
		t.Fatalf("document header incomplete: %+v", got)
	}
}

// TestWriteFileDirectory: a directory path yields a BENCH_<stamp>.json name.
func TestWriteFileDirectory(t *testing.T) {
	rec := NewRecorder(1, 1)
	rec.Add(sampleRecord())
	dir := t.TempDir()
	path, err := rec.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "BENCH_") || !strings.HasSuffix(base, ".json") {
		t.Fatalf("unexpected artifact name %q", base)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("artifact %q not inside %q", path, dir)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestReadDocumentRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDocument(path); err == nil {
		t.Fatal("schema mismatch must error")
	}
}

func compareDocs(t *testing.T, mutate func(*Record)) ([]Regression, []string) {
	t.Helper()
	old := NewRecorder(0.25, 4)
	old.Add(sampleRecord())
	oldDoc := old.Document()
	newDoc := old.Document()
	newDoc.Records = append([]Record(nil), newDoc.Records...)
	if mutate != nil {
		mutate(&newDoc.Records[0])
	}
	return Compare(&oldDoc, &newDoc, 10)
}

// TestCompare: identical documents carry no regressions; a doctored wall time
// or traversed-arc count beyond tolerance is flagged; shrinkage never is.
func TestCompare(t *testing.T) {
	if regs, missing := compareDocs(t, nil); len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("identical docs: regs=%v missing=%v", regs, missing)
	}
	regs, _ := compareDocs(t, func(r *Record) { r.Wall = r.Wall * 3 / 2 })
	if len(regs) != 1 || regs[0].Field != "wall_ns" {
		t.Fatalf("wall regression not caught: %v", regs)
	}
	if regs[0].Pct < 49 || regs[0].Pct > 51 {
		t.Fatalf("wrong pct: %v", regs[0])
	}
	regs, _ = compareDocs(t, func(r *Record) {
		bd := *r.Breakdown
		bd.TraversedArcs *= 2
		r.Breakdown = &bd
	})
	if len(regs) != 1 || regs[0].Field != "traversed_arcs" {
		t.Fatalf("arc regression not caught: %v", regs)
	}
	// Within tolerance (10%): no regression.
	if regs, _ := compareDocs(t, func(r *Record) { r.Wall += r.Wall / 20 }); len(regs) != 0 {
		t.Fatalf("5%% growth flagged at 10%% tolerance: %v", regs)
	}
	// Faster is never a regression.
	if regs, _ := compareDocs(t, func(r *Record) { r.Wall /= 2 }); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
	// Unsupported cells are exempt.
	if regs, _ := compareDocs(t, func(r *Record) { r.Wall *= 10; r.Unsupported = true }); len(regs) != 0 {
		t.Fatalf("unsupported cell flagged: %v", regs)
	}
}

// TestCompareAllocs: per-sweep allocation growth is gated like wall time,
// with an absolute one-alloc grace so near-zero noise never trips it.
func TestCompareAllocs(t *testing.T) {
	mkDoc := func(allocs float64) Document {
		rec := NewRecorder(0.25, 4)
		r := sampleRecord()
		r.AllocsPerSweep = allocs
		rec.Add(r)
		return rec.Document()
	}
	oldDoc, newDoc := mkDoc(2), mkDoc(40)
	regs, _ := Compare(&oldDoc, &newDoc, 10)
	if len(regs) != 1 || regs[0].Field != "allocs_per_sweep" {
		t.Fatalf("alloc regression not caught: %v", regs)
	}
	// Sub-one-alloc growth is within the absolute grace even when the
	// relative growth is large.
	oldDoc, newDoc = mkDoc(0.01), mkDoc(0.9)
	if regs, _ := Compare(&oldDoc, &newDoc, 10); len(regs) != 0 {
		t.Fatalf("near-zero alloc noise flagged: %v", regs)
	}
	// A zero-alloc baseline (field omitted) never gates.
	oldDoc, newDoc = mkDoc(0), mkDoc(50)
	if regs, _ := Compare(&oldDoc, &newDoc, 10); len(regs) != 0 {
		t.Fatalf("absent baseline flagged: %v", regs)
	}
}

func TestCompareMissing(t *testing.T) {
	old := NewRecorder(0.25, 4)
	old.Add(sampleRecord())
	extra := sampleRecord()
	extra.Graph = "usa-roadny"
	old.Add(extra)
	oldDoc := old.Document()

	newRec := NewRecorder(0.25, 4)
	newRec.Add(sampleRecord())
	newDoc := newRec.Document()

	regs, missing := Compare(&oldDoc, &newDoc, 10)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if len(missing) != 1 || !strings.Contains(missing[0], "usa-roadny") {
		t.Fatalf("missing = %v", missing)
	}
}

// TestKeyDistinguishesWorkersAndScheduler pins the key schema: records that
// differ only in worker count or scheduler name must not collide, so -check
// never diffs a 1-worker run against an 8-worker one or a static sweep cell
// against its dynamic counterpart. Legacy records (no scheduler) keep the old
// key shape so historical BENCH_*.json documents stay comparable.
func TestKeyDistinguishesWorkersAndScheduler(t *testing.T) {
	base := sampleRecord()
	if want := "tables2-3/email-enron/apgre/p=4"; base.Key() != want {
		t.Fatalf("legacy key changed: got %q want %q", base.Key(), want)
	}

	p8 := base
	p8.Workers = 8
	if base.Key() == p8.Key() {
		t.Fatalf("worker counts collide: %q", base.Key())
	}

	dyn := base
	dyn.Scheduler = "dynamic"
	sta := base
	sta.Scheduler = "static"
	if dyn.Key() == sta.Key() || dyn.Key() == base.Key() {
		t.Fatalf("scheduler names collide: dyn=%q sta=%q base=%q",
			dyn.Key(), sta.Key(), base.Key())
	}
	if want := "tables2-3/email-enron/apgre/p=4/s=dynamic"; dyn.Key() != want {
		t.Fatalf("scheduler key: got %q want %q", dyn.Key(), want)
	}

	// Pivots and scheduler compose in a fixed order.
	both := dyn
	both.Pivots = 64
	if want := "tables2-3/email-enron/apgre/p=4/k=64/s=dynamic"; both.Key() != want {
		t.Fatalf("composed key: got %q want %q", both.Key(), want)
	}

	// Engine cells diff independently too, composing after the scheduler;
	// records without an engine keep their pre-engine key shape.
	msb := base
	msb.Engine = "msbfs"
	if msb.Key() == base.Key() {
		t.Fatalf("engine names collide: %q", msb.Key())
	}
	if want := "tables2-3/email-enron/apgre/p=4/e=msbfs"; msb.Key() != want {
		t.Fatalf("engine key: got %q want %q", msb.Key(), want)
	}
	all := both
	all.Engine = "scalar"
	if want := "tables2-3/email-enron/apgre/p=4/k=64/s=dynamic/e=scalar"; all.Key() != want {
		t.Fatalf("fully composed key: got %q want %q", all.Key(), want)
	}

	// Compare treats different worker counts / schedulers as disjoint cells:
	// a regression in one must not hide behind the other.
	old := NewRecorder(0.25, 4)
	old.Add(base)
	old.Add(dyn)
	oldDoc := old.Document()
	newRec := NewRecorder(0.25, 4)
	slow := dyn
	slow.Wall *= 2
	newRec.Add(base)
	newRec.Add(slow)
	newDoc := newRec.Document()
	regs, missing := Compare(&oldDoc, &newDoc, 10)
	if len(missing) != 0 {
		t.Fatalf("unexpected coverage change: %v", missing)
	}
	if len(regs) != 1 || !strings.Contains(regs[0].Key, "/s=dynamic") {
		t.Fatalf("scheduler cell regression not isolated: %v", regs)
	}
}

// TestNilRecorder: a nil recorder is inert, so call sites don't branch.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Add(sampleRecord())
	if r.Len() != 0 {
		t.Fatal("nil recorder must report 0 records")
	}
}
