package metrics

// Lock-free instruments for long-running processes: monotonically increasing
// counters, settable gauges and fixed-bucket histograms. They are the value
// types behind the bcd daemon's /metrics endpoint — internal/server/promtext
// renders families of them in Prometheus text exposition format — but carry
// no exposition concerns themselves, so offline harnesses can reuse them.

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n events; negative n is ignored (counters never decrease).
func (c *Counter) Add(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (use a negative n to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a Gauge for continuous quantities (error estimates, ratios);
// the value is stored as float64 bits so Set/Value stay lock-free.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the level.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current level.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets. Bounds are the
// inclusive upper edges of the finite buckets; observations above the last
// bound land in the implicit +Inf bucket. Observe is safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, the last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// NewHistogram builds a histogram with the given finite bucket bounds, which
// are sorted and deduplicated. At least one finite bound is required so the
// histogram carries distribution information; NewHistogram panics otherwise
// (instrument construction is programmer error territory, like a bad pattern
// in regexp.MustCompile).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	w := 0
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("metrics: histogram bounds must be finite")
		}
		if i > 0 && b == bs[w-1] {
			continue
		}
		bs[w] = b
		w++
	}
	bs = bs[:w]
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// DurationBuckets are the default latency bounds in seconds, spanning
// sub-millisecond cache hits to multi-second recomputations.
func DurationBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: inclusive upper edge
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			break
		}
	}
	h.count.Add(1)
}

// Bounds returns the finite bucket upper edges.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Snapshot returns per-bucket counts (finite buckets in bound order, then the
// +Inf bucket), the observation sum and the observation count. The snapshot
// is not atomic across buckets, but each bucket value is individually
// consistent — the standard Prometheus collection contract.
func (h *Histogram) Snapshot() (buckets []uint64, sum float64, count uint64) {
	buckets = make([]uint64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
	}
	return buckets, math.Float64frombits(h.sum.Load()), h.count.Load()
}
