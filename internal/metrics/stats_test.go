package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestKendallTauPerfectAndReversed(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	if got := KendallTau(x, x, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("identical rankings: tau = %v, want 1", got)
	}
	rev := []float64{6, 5, 4, 3, 2, 1}
	if got := KendallTau(x, rev, 1); math.Abs(got+1) > 1e-12 {
		t.Fatalf("reversed rankings: tau = %v, want -1", got)
	}
}

func TestKendallTauDegenerate(t *testing.T) {
	if got := KendallTau([]float64{1}, []float64{2}, 1); got != 0 {
		t.Fatalf("short input: %v", got)
	}
	if got := KendallTau([]float64{3, 3, 3}, []float64{1, 2, 3}, 1); got != 0 {
		t.Fatalf("all-tied side: %v", got)
	}
	if got := KendallTau([]float64{1, 2}, []float64{1, 2, 3}, 1); got != 0 {
		t.Fatalf("length mismatch: %v", got)
	}
}

// TestKendallTauSampledAgreesWithExact checks the sampled estimator on a
// vector just above the exact limit against the exact value computed here.
func TestKendallTauSampledAgreesWithExact(t *testing.T) {
	n := kendallExactLimit + 100
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) + 50*rng.NormFloat64() // strongly but not perfectly correlated
	}
	var c, d int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if (x[i]-x[j] > 0) == (y[i]-y[j] > 0) {
				c++
			} else {
				d++
			}
		}
	}
	exact := float64(c-d) / float64(c+d)
	got := KendallTau(x, y, 7)
	if math.Abs(got-exact) > 0.01 {
		t.Fatalf("sampled tau %v vs exact %v", got, exact)
	}
}

func TestFloatGauge(t *testing.T) {
	var g FloatGauge
	if g.Value() != 0 {
		t.Fatalf("zero value: %v", g.Value())
	}
	g.Set(0.125)
	if g.Value() != 0.125 {
		t.Fatalf("after Set: %v", g.Value())
	}
	g.Set(-3.5)
	if g.Value() != -3.5 {
		t.Fatalf("after negative Set: %v", g.Value())
	}
}
