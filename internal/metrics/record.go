package metrics

// Machine-readable benchmark records. Every bcbench timing experiment emits
// one Record per (experiment, graph, algorithm, workers) cell; the harness
// bundles them into a Document and writes a BENCH_<stamp>.json artifact that
// EXPERIMENTS.md numbers can cite and that Compare gates regressions against
// PR-over-PR. Durations serialize as nanosecond integers (Go's default for
// time.Duration), so the schema stays trivially parseable from any language.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"
)

// SchemaVersion identifies the record layout; bump on breaking changes so
// Compare can refuse to diff incompatible documents.
const SchemaVersion = 1

// PhaseBreakdown mirrors core.Breakdown field-for-field (internal/metrics
// stays dependency-free, so the harness converts rather than imports): the
// Figure-8 phase timings plus the work counters.
type PhaseBreakdown struct {
	Partition     time.Duration `json:"partition_ns"`
	AlphaBeta     time.Duration `json:"alpha_beta_ns"`
	TopBC         time.Duration `json:"top_bc_ns"`
	RestBC        time.Duration `json:"rest_bc_ns"`
	Total         time.Duration `json:"total_ns"`
	TraversedArcs int64         `json:"traversed_arcs"`
	Roots         int64         `json:"roots"`
	Subgraphs     int           `json:"subgraphs"`
	Articulations int           `json:"articulations"`
}

// Record is one measured cell of the paper's evaluation.
type Record struct {
	// Experiment names the table/figure the record belongs to
	// (e.g. "tables2-3", "figure8", "figure9", "ext-weighted").
	Experiment string `json:"experiment"`
	Graph      string `json:"graph"`
	Algorithm  string `json:"algorithm"`
	Workers    int    `json:"workers"`
	// Scale is the dataset size multiplier the stand-in was built at.
	Scale float64       `json:"scale"`
	Verts int           `json:"verts"`
	Edges int64         `json:"edges"`
	Wall  time.Duration `json:"wall_ns"`
	// MTEPS is n·m/t in millions; 0 is the "not measurable" sentinel
	// (non-positive duration), rendered n/a by the text tables.
	MTEPS float64 `json:"mteps"`
	// Speedup is serial/measured; 0 is the sentinel, 1 marks the serial
	// baseline itself.
	Speedup float64 `json:"speedup_vs_serial"`
	// TraversedArcs duplicates Breakdown.TraversedArcs for algorithms that
	// report work without a full phase breakdown.
	TraversedArcs int64           `json:"traversed_arcs,omitempty"`
	Breakdown     *PhaseBreakdown `json:"breakdown,omitempty"`
	// Pivots is the approximate-mode source-sample budget actually run;
	// 0 (omitted) for exact algorithms.
	Pivots int `json:"pivots,omitempty"`
	// MaxAbsErr is the measured max per-vertex |approx − exact| on the
	// normalized BC scale (divided by (n−1)(n−2)).
	MaxAbsErr float64 `json:"max_abs_err,omitempty"`
	// KendallTau is the rank correlation (τ-b) of the approximate scores
	// against exact BC.
	KendallTau float64 `json:"kendall_tau,omitempty"`
	// Unsupported marks the paper's "-" cells (e.g. async on directed
	// graphs); such records carry no timing.
	Unsupported bool `json:"unsupported,omitempty"`
	// Scheduler names the work-distribution scheme the cell ran under
	// (core.Scheduler.String(): "dynamic", "static"). Empty for experiments
	// that predate the scheduler option, keeping their keys stable.
	Scheduler string `json:"scheduler,omitempty"`
	// AllocsPerSweep is the mean heap allocations per root sweep (mallocs
	// delta across the timed region divided by the root count) — the
	// workspace arena keeps warm sweeps at ~0. Omitted by experiments that
	// do not measure it; Compare gates it like wall time.
	AllocsPerSweep float64 `json:"allocs_per_sweep,omitempty"`
	// Engine names the sweep kernel the cell ran under
	// (core.RootEngine.String(): "scalar", "msbfs"). Empty for experiments
	// that predate the engine option, keeping their keys stable.
	Engine string `json:"engine,omitempty"`
	// LoadNs is how long loading the graph into memory took, for records
	// measuring the scale pipeline's load paths (Algorithm "load-inmem",
	// "load-stream", "load-mmap"). Load records carry Wall = 0, the
	// regression-gate sentinel: load time is environment-bound (page cache,
	// disk), so Compare tracks it without gating on it.
	LoadNs time.Duration `json:"load_ns,omitempty"`
	// PeakRSSBytes is the process peak resident set after the measured load
	// (Linux VmHWM; runtime MemStats.Sys elsewhere), measured in a fresh
	// child process per load so generation scratch never inflates it. The
	// at-scale artifact records it to pin the streamed/mmap ≤ ~2× CSR
	// acceptance bound.
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
}

// Key identifies a record for cross-document comparison. The worker count is
// always part of the key (runs at different -workers never collide in -check),
// approximate-mode cells carry their pivot count so one graph's whole
// error-vs-speedup curve stays addressable, and scheduler-sweep and
// engine-sweep cells carry their scheme names so each variant's measurements
// diff independently. Empty Scheduler/Engine add nothing, keeping keys from
// older documents stable.
func (r Record) Key() string {
	key := fmt.Sprintf("%s/%s/%s/p=%d", r.Experiment, r.Graph, r.Algorithm, r.Workers)
	if r.Pivots > 0 {
		key += fmt.Sprintf("/k=%d", r.Pivots)
	}
	if r.Scheduler != "" {
		key += "/s=" + r.Scheduler
	}
	if r.Engine != "" {
		key += "/e=" + r.Engine
	}
	return key
}

// Document is the top-level BENCH_*.json artifact.
type Document struct {
	Schema    int       `json:"schema"`
	CreatedAt time.Time `json:"created_at"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	MaxProcs  int       `json:"max_procs"`
	Scale     float64   `json:"scale"`
	Workers   int       `json:"workers"`
	Records   []Record  `json:"records"`
}

// Recorder accumulates records across experiments; safe for concurrent Add.
type Recorder struct {
	mu  sync.Mutex
	doc Document
}

// NewRecorder starts a document stamped with the current toolchain and the
// harness-wide scale/workers settings.
func NewRecorder(scale float64, workers int) *Recorder {
	return &Recorder{doc: Document{
		Schema:    SchemaVersion,
		CreatedAt: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Scale:     scale,
		Workers:   workers,
	}}
}

// Add appends one record. Nil recorders are inert so call sites need no
// "is recording enabled" branches.
func (r *Recorder) Add(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.doc.Records = append(r.doc.Records, rec)
}

// Len reports how many records have been added.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.doc.Records)
}

// Document returns a copy of the accumulated document.
func (r *Recorder) Document() Document {
	r.mu.Lock()
	defer r.mu.Unlock()
	doc := r.doc
	doc.Records = append([]Record(nil), r.doc.Records...)
	return doc
}

// WriteFile writes the document as indented JSON. If path is an existing
// directory (or ends in a path separator) the file is named
// BENCH_<UTC stamp>.json inside it; otherwise path is used verbatim. The
// final path is returned.
func (r *Recorder) WriteFile(path string) (string, error) {
	if path == "" {
		return "", fmt.Errorf("metrics: empty record path")
	}
	doc := r.Document()
	if fi, err := os.Stat(path); (err == nil && fi.IsDir()) || os.IsPathSeparator(path[len(path)-1]) {
		stamp := doc.CreatedAt.Format("20060102T150405Z")
		path = filepath.Join(path, fmt.Sprintf("BENCH_%s.json", stamp))
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadDocument loads a BENCH_*.json artifact.
func ReadDocument(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this build reads %d", path, doc.Schema, SchemaVersion)
	}
	return &doc, nil
}

// Regression is one gate violation found by Compare.
type Regression struct {
	Key string // Record.Key of the offending measurement
	// Field is "wall_ns", "traversed_arcs" or "allocs_per_sweep".
	Field    string
	Old, New float64
	// Pct is the relative growth in percent ((new-old)/old·100).
	Pct float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (+%.1f%%)", r.Key, r.Field, r.Old, r.New, r.Pct)
}

// Compare diffs two documents record-by-record and returns the regressions:
// wall time, traversed arcs or per-sweep allocations that grew by more than
// tolerancePct percent.
// Records missing from either side are returned in missing (informational —
// coverage changes are not regressions, but silent disappearance of a
// measurement should be visible). Sentinel (zero/unsupported) measurements
// never regress.
func Compare(old, new *Document, tolerancePct float64) (regs []Regression, missing []string) {
	idx := make(map[string]Record, len(new.Records))
	for _, rec := range new.Records {
		idx[rec.Key()] = rec
	}
	seen := make(map[string]bool, len(old.Records))
	for _, o := range old.Records {
		key := o.Key()
		seen[key] = true
		n, ok := idx[key]
		if !ok {
			missing = append(missing, key+" (only in old)")
			continue
		}
		if o.Unsupported || n.Unsupported {
			continue
		}
		if reg, bad := regressed(key, "wall_ns", float64(o.Wall), float64(n.Wall), tolerancePct); bad {
			regs = append(regs, reg)
		}
		oArcs, nArcs := arcsOf(o), arcsOf(n)
		if reg, bad := regressed(key, "traversed_arcs", float64(oArcs), float64(nArcs), tolerancePct); bad {
			regs = append(regs, reg)
		}
		// Allocation regressions get an absolute grace of one alloc per
		// sweep on top of the relative tolerance: near zero, percentage
		// growth is all noise.
		if o.AllocsPerSweep > 0 && n.AllocsPerSweep > o.AllocsPerSweep+1 {
			if reg, bad := regressed(key, "allocs_per_sweep", o.AllocsPerSweep, n.AllocsPerSweep, tolerancePct); bad {
				regs = append(regs, reg)
			}
		}
	}
	for _, n := range new.Records {
		if !seen[n.Key()] {
			missing = append(missing, n.Key()+" (only in new)")
		}
	}
	sort.Strings(missing)
	return regs, missing
}

func arcsOf(r Record) int64 {
	if r.Breakdown != nil && r.Breakdown.TraversedArcs > 0 {
		return r.Breakdown.TraversedArcs
	}
	return r.TraversedArcs
}

func regressed(key, field string, old, new, tolerancePct float64) (Regression, bool) {
	if old <= 0 || new <= old {
		return Regression{}, false
	}
	pct := 100 * (new - old) / old
	if pct <= tolerancePct {
		return Regression{}, false
	}
	return Regression{Key: key, Field: field, Old: old, New: new, Pct: pct}, true
}
