package metrics

// GraphCensus is the machine-readable form of the articulation-point census
// bcstats prints — the Figure 2/Table 4 measurements for one graph. It is the
// single serialization shared by `bcstats -json` and the bcd daemon's
// GET /v1/graphs/{name}/stats endpoint (internal/core.BuildCensus fills it),
// so the CLI and the service can never drift apart. Like Record it is pure
// data: internal/metrics stays dependency-free.

// CensusSchemaVersion identifies the census layout; bump on breaking changes.
const CensusSchemaVersion = 1

// DegreeCensus summarizes the degree distribution.
type DegreeCensus struct {
	Min      int     `json:"min"`
	Max      int     `json:"max"`
	Mean     float64 `json:"mean"`
	Isolated int     `json:"isolated"`
	// Sources counts no-in single-out vertices (directed leaf analogue).
	Sources int `json:"sources"`
}

// SubgraphCensus is one sub-graph's share of the decomposition (Table 4 row).
type SubgraphCensus struct {
	Verts int   `json:"verts"`
	Arcs  int64 `json:"arcs"`
	// VertShare is Verts over the graph's vertex count, in [0,1].
	VertShare float64 `json:"vert_share"`
}

// DecompositionCensus profiles the articulation-point partition.
type DecompositionCensus struct {
	Threshold   int   `json:"threshold"`
	Subgraphs   int   `json:"subgraphs"`
	BoundaryAPs int   `json:"boundary_aps"`
	Roots       int64 `json:"roots"`
	// Largest lists the biggest sub-graphs by vertex count (at most five —
	// the shape Table 4 reports).
	Largest []SubgraphCensus `json:"largest,omitempty"`
}

// RedundancyCensus reports the Figure 7 redundancy split.
type RedundancyCensus struct {
	// Method is "exact" or "sampled".
	Method    string  `json:"method"`
	Effective float64 `json:"effective"`
	Partial   float64 `json:"partial"`
	Total     float64 `json:"total"`
}

// SCCCensus profiles strong connectivity (directed graphs only).
type SCCCensus struct {
	Count   int `json:"count"`
	Largest int `json:"largest"`
}

// GraphCensus bundles everything bcstats measures about one graph.
type GraphCensus struct {
	Schema   int    `json:"schema"`
	Graph    string `json:"graph"`
	Directed bool   `json:"directed"`
	Verts    int    `json:"verts"`
	Edges    int64  `json:"edges"`
	Arcs     int64  `json:"arcs"`

	Degree DegreeCensus `json:"degree"`
	// ArticulationPoints counts cut vertices of the (underlying undirected)
	// graph; SingleEdgeVertices counts degree-1 leaves.
	ArticulationPoints int        `json:"articulation_points"`
	SingleEdgeVertices int        `json:"single_edge_vertices"`
	SCC                *SCCCensus `json:"scc,omitempty"`

	Decomposition DecompositionCensus `json:"decomposition"`
	Redundancy    *RedundancyCensus   `json:"redundancy,omitempty"`
}
