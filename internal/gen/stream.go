package gen

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// The in-memory generators above top out around 10^5 edges: they build a
// []graph.Edge and hand it to NewFromEdges, so a 10^7-edge graph would spend
// its peak RSS on an edge list that exists only to be thrown away. The
// streaming generators below describe a graph as deterministic chunks of
// arcs instead; BuildCSR replays the chunks twice (degree count, then
// placement) directly into CSR arrays, so generation's memory high-water is
// the CSR itself — the same arrays WriteBinary then streams to disk.

// streamGenChunk is the number of arc samples per chunk — the unit of
// parallel work and of deterministic seeding.
const streamGenChunk = 1 << 16

// Stream describes a graph as Chunks independent arc chunks. Emit must be a
// pure function of its chunk index: chunk c always yields the same arcs in
// the same order, regardless of which worker replays it or how many times.
// That contract is what makes BuildCSR's output independent of parallelism —
// degrees accumulate commutatively and row canonicalization erases placement
// order, so the graph is a function of the arc multiset alone.
//
// yield is called once per arc. Undirected streams must yield both
// orientations of every edge; BuildCSR adopts rows as placed (after
// canonicalization) and the undirected engine stack assumes symmetric
// adjacency.
type Stream struct {
	N        int
	Directed bool
	Chunks   int
	Emit     func(chunk int, yield func(u, v int32))
}

// BuildCSR materializes a Stream as a graph using the given number of
// workers (<= 0 means GOMAXPROCS). Two passes over the chunks: workers pull
// chunk indices from a shared counter, first bumping per-vertex degree
// counters, then — after a serial prefix sum — placing each arc at an
// atomically claimed slot in its final row. Rows land in nondeterministic
// order, so the result goes through graph.NewFromCSRUnsorted, which sorts,
// dedups, and drops self-loops; the returned graph is byte-identical for any
// worker count.
func BuildCSR(s *Stream, workers int) *graph.Graph {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := s.N
	run := func(visit func(u, v int32)) {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					c := int(next.Add(1) - 1)
					if c >= s.Chunks {
						return
					}
					s.Emit(c, visit)
				}
			}()
		}
		wg.Wait()
	}

	// Degree pass. degs is offset by one so the prefix sum below turns it
	// into the CSR offset array in place.
	degs := make([]int64, n+1)
	run(func(u, v int32) {
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			panic(fmt.Sprintf("gen: stream arc (%d,%d) out of range [0,%d)", u, v, n))
		}
		atomic.AddInt64(&degs[u+1], 1)
	})
	for i := 0; i < n; i++ {
		degs[i+1] += degs[i]
	}

	// Placement pass: cursor[u] hands out slots within u's row.
	cursors := make([]int64, n)
	copy(cursors, degs[:n])
	adj := make([]graph.V, degs[n])
	run(func(u, v int32) {
		adj[atomic.AddInt64(&cursors[u], 1)-1] = v
	})
	return graph.NewFromCSRUnsorted(n, degs, adj, s.Directed)
}

// splitmix64 is the SplitMix64 finalizer — one multiply-xorshift cascade
// that turns a (seed, chunk) pair into an independent-looking stream seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chunkSeed derives the RNG seed for one chunk of one stream. tag separates
// the independent sub-streams of a composite (cores, bridges, chains) so
// chunk 0 of each draws from unrelated sequences.
func chunkSeed(seed int64, tag, chunk uint64) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)^tag*0x9e3779b97f4a7c15) + chunk))
}

// rmatSample draws one R-MAT arc by the standard quadrant walk (same
// recurrence as the in-memory RMAT generator).
func rmatSample(r *rand.Rand, n int, a, b, c float64) (int, int) {
	u, v := 0, 0
	for bit := n >> 1; bit >= 1; bit >>= 1 {
		p := r.Float64()
		switch {
		case p < a:
		case p < a+b:
			v += bit
		case p < a+b+c:
			u += bit
		default:
			u += bit
			v += bit
		}
	}
	return u, v
}

// RMATStream is the streaming counterpart of RMAT: 2^scale vertices,
// edgeFactor·2^scale arc samples, partitioned into fixed-size chunks that
// each reseed independently via chunkSeed — so any worker can replay any
// chunk and the realized graph is the same at every parallelism. (It is a
// different — equally valid — sample of the R-MAT distribution than the
// in-memory RMAT at the same seed, whose single RNG sequence cannot be
// chunked.) Self-loop samples are skipped; duplicate samples collapse in
// CSR canonicalization, matching the in-memory generator's semantics.
func RMATStream(scale, edgeFactor int, a, b, c float64, directed bool, seed int64) *Stream {
	n := 1 << uint(scale)
	if d := 1 - a - b - c; d < 0 {
		panic(fmt.Sprintf("gen: RMAT probabilities sum to %v > 1", a+b+c))
	}
	m := int64(edgeFactor) * int64(n)
	chunks := int((m + streamGenChunk - 1) / streamGenChunk)
	return &Stream{
		N:        n,
		Directed: directed,
		Chunks:   chunks,
		Emit: func(chunk int, yield func(u, v int32)) {
			r := rand.New(rand.NewSource(chunkSeed(seed, 1, uint64(chunk))))
			lo := int64(chunk) * streamGenChunk
			hi := min(lo+streamGenChunk, m)
			for e := lo; e < hi; e++ {
				u, v := rmatSample(r, n, a, b, c)
				if u == v {
					continue
				}
				yield(int32(u), int32(v))
				if !directed {
					yield(int32(v), int32(u))
				}
			}
		},
	}
}

// CompositeParams shapes CompositeStream: Cores power-law cores of
// 2^CoreScale vertices each (R-MAT inside, EdgeFactor samples per vertex),
// stitched into a tree by single bridge edges, with a chain periphery
// hanging off pseudo-random core vertices. PeriphFrac is the fraction of all
// vertices that live in the periphery (clamped to [0, 0.9]); chains have
// exactly ChainLen vertices.
type CompositeParams struct {
	Cores      int
	CoreScale  int
	EdgeFactor int
	A, B, C    float64
	PeriphFrac float64
	ChainLen   int
	Directed   bool
	Seed       int64
}

// CompositeStream builds the scale-realistic AP-structure family: the cores
// supply the giant power-law biconnected mass the paper's social/web inputs
// have, while every bridge endpoint and every non-leaf chain vertex is an
// articulation point and every bridge/chain edge is its own biconnected
// component — so with nc chains of length L the census has at least
// nc·(L−1) articulation points, nc·L single-edge BCCs, and nc degree-1
// leaves (total-redundancy candidates), tunable directly via PeriphFrac and
// ChainLen. Directed chains are oriented core-ward (one out-arc per chain
// vertex, no in-arcs), the paper's directed total-redundancy pattern;
// bridges always carry both arcs so cores stay mutually reachable.
//
// Vertex layout is deterministic: core c occupies [c·2^CoreScale,
// (c+1)·2^CoreScale), chain i occupies ChainLen consecutive vertices
// starting at cores·2^CoreScale + i·ChainLen.
func CompositeStream(p CompositeParams) *Stream {
	if p.Cores < 1 {
		p.Cores = 1
	}
	if p.ChainLen < 1 {
		p.ChainLen = 1
	}
	if p.PeriphFrac < 0 {
		p.PeriphFrac = 0
	}
	if p.PeriphFrac > 0.9 {
		p.PeriphFrac = 0.9
	}
	if d := 1 - p.A - p.B - p.C; d < 0 {
		panic(fmt.Sprintf("gen: composite core probabilities sum to %v > 1", p.A+p.B+p.C))
	}
	coreN := 1 << uint(p.CoreScale)
	coresTotal := p.Cores * coreN
	periph := int(float64(coresTotal) * p.PeriphFrac / (1 - p.PeriphFrac))
	numChains := periph / p.ChainLen
	n := coresTotal + numChains*p.ChainLen

	coreM := int64(p.EdgeFactor) * int64(coreN)
	coreChunks := int((coreM + streamGenChunk - 1) / streamGenChunk)
	chainsPerChunk := max(1, streamGenChunk/(p.ChainLen+1))
	periphChunks := (numChains + chainsPerChunk - 1) / chainsPerChunk
	bridgeChunk := p.Cores * coreChunks // single chunk holding all core bridges

	both := func(yield func(u, v int32), u, v int32) {
		yield(u, v)
		yield(v, u)
	}
	return &Stream{
		N:        n,
		Directed: p.Directed,
		Chunks:   bridgeChunk + 1 + periphChunks,
		Emit: func(chunk int, yield func(u, v int32)) {
			switch {
			case chunk < bridgeChunk:
				// One core's R-MAT sample range, offset into its id block.
				core, sub := chunk/coreChunks, chunk%coreChunks
				base := int32(core * coreN)
				r := rand.New(rand.NewSource(chunkSeed(p.Seed, 2, uint64(chunk))))
				lo := int64(sub) * streamGenChunk
				hi := min(lo+streamGenChunk, coreM)
				for e := lo; e < hi; e++ {
					u, v := rmatSample(r, coreN, p.A, p.B, p.C)
					if u == v {
						continue
					}
					if p.Directed {
						yield(base+int32(u), base+int32(v))
					} else {
						both(yield, base+int32(u), base+int32(v))
					}
				}
			case chunk == bridgeChunk:
				// Tree of cores: core c bridges to a pseudo-random vertex of a
				// pseudo-random earlier core, preferring core 0 (the paper's
				// one-huge-top-sub-graph profile). Both arcs even when
				// directed, like SocialLike's community bridges.
				r := rand.New(rand.NewSource(chunkSeed(p.Seed, 3, 0)))
				for c := 1; c < p.Cores; c++ {
					parent := r.Intn(c)
					if r.Float64() < 0.6 {
						parent = 0
					}
					u := int32(parent*coreN + r.Intn(coreN))
					both(yield, u, int32(c*coreN))
				}
			default:
				// A run of chains. Anchors are a function of the chain index
				// (not the chunk), so the chunk partition never shapes the
				// graph.
				pi := chunk - bridgeChunk - 1
				lo := pi * chainsPerChunk
				hi := min(lo+chainsPerChunk, numChains)
				for i := lo; i < hi; i++ {
					anchor := int32(uint64(chunkSeed(p.Seed, 4, uint64(i))) % uint64(coresTotal))
					prev := anchor
					v := int32(coresTotal + i*p.ChainLen)
					for k := 0; k < p.ChainLen; k++ {
						if p.Directed {
							yield(v, prev) // core-ward out-arc only
						} else {
							both(yield, v, prev)
						}
						prev = v
						v++
					}
				}
			}
		},
	}
}
