package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// SocialParams tunes SocialLike, the stand-in for the paper's social/email/
// collaboration networks. The knobs map directly onto the structure APGRE
// exploits (DESIGN.md §3):
//
//   - Communities and TopShare shape Table 4's decomposition profile (the top
//     sub-graph's share of vertices/edges);
//   - LeafFrac sets the degree-1 vertex fraction, i.e. the total-redundancy
//     band of Figure 7;
//   - AvgDeg sets overall density (power-law within communities);
//   - Reciprocity only matters for directed graphs.
type SocialParams struct {
	N           int     // total vertices (cores + leaves)
	AvgDeg      int     // average degree of community cores (>= 2)
	Communities int     // number of community cores (>= 1)
	TopShare    float64 // fraction of core vertices in the top community (0..1)
	LeafFrac    float64 // fraction of N that are degree-1 leaves (0..1)
	Directed    bool
	Reciprocity float64 // directed only: probability an edge gets both arcs
	Seed        int64
}

// SocialLike builds a connected community graph: each community is a
// preferential-attachment core, communities hang off the top community in a
// tree through single bridge edges (whose endpoints become articulation
// points), and LeafFrac·N degree-1 leaves attach to degree-weighted core
// vertices. For directed output, leaves get a single out-edge and no
// in-edges — exactly the paper's total-redundancy pattern.
func SocialLike(p SocialParams) *graph.Graph {
	if p.Communities < 1 {
		p.Communities = 1
	}
	if p.AvgDeg < 2 {
		p.AvgDeg = 2
	}
	if p.TopShare <= 0 || p.TopShare > 1 {
		p.TopShare = 0.5
	}
	r := rand.New(rand.NewSource(p.Seed))
	nLeaves := int(p.LeafFrac * float64(p.N))
	nCore := p.N - nLeaves
	minCore := 3 * p.Communities
	if nCore < minCore {
		nCore = minCore
		nLeaves = p.N - nCore
		if nLeaves < 0 {
			nLeaves = 0
		}
	}

	// Community sizes: the top community gets TopShare of the core, every
	// other community gets a base of 3 plus a random share of the remainder.
	// The sizes sum exactly to nCore.
	sizes := make([]int, p.Communities)
	sizes[0] = int(p.TopShare * float64(nCore))
	if min := nCore - 3*(p.Communities-1); sizes[0] > min {
		sizes[0] = min
	}
	if sizes[0] < 3 {
		sizes[0] = 3
	}
	for c := 1; c < p.Communities; c++ {
		sizes[c] = 3
	}
	for rest := nCore - sizes[0] - 3*(p.Communities-1); rest > 0; rest-- {
		if p.Communities == 1 {
			sizes[0]++
			continue
		}
		sizes[1+r.Intn(p.Communities-1)]++
	}

	var edges []graph.Edge
	starts := make([]int, p.Communities)
	total := 0
	k := p.AvgDeg / 2
	if k < 1 {
		k = 1
	}
	// degreeList repeats endpoints for degree-weighted leaf attachment.
	var degreeList []int32
	for c := 0; c < p.Communities; c++ {
		starts[c] = total
		sz := sizes[c]
		kc := k
		if kc > sz-1 {
			// BarabasiAlbert would otherwise grow the community past sz and
			// collide with the next community's id range.
			kc = sz - 1
		}
		sub := BarabasiAlbert(sz, kc, p.Seed+int64(c)*7919+1)
		for _, e := range sub.Edges() {
			u, v := e.From+int32(total), e.To+int32(total)
			edges = append(edges, graph.Edge{From: u, To: v})
			degreeList = append(degreeList, u, v)
		}
		total += sz
	}
	// Bridge each community to a random earlier one (tree of communities).
	for c := 1; c < p.Communities; c++ {
		parent := r.Intn(c)
		// Moderately prefer the top community as parent, mimicking the
		// paper's star-of-communities profiles (Table 4: one huge top SG).
		if r.Float64() < 0.6 {
			parent = 0
		}
		u := int32(starts[parent] + r.Intn(sizes[parent]))
		v := int32(starts[c] + r.Intn(sizes[c]))
		edges = append(edges, graph.Edge{From: u, To: v})
	}
	coreEdges := len(edges)

	// Leaves.
	for i := 0; i < nLeaves; i++ {
		leaf := int32(total + i)
		hub := degreeList[r.Intn(len(degreeList))]
		edges = append(edges, graph.Edge{From: leaf, To: hub})
	}
	n := total + nLeaves

	if !p.Directed {
		return graph.NewFromEdges(n, edges, false)
	}
	// Orient: core edges get one random direction, plus the reverse with
	// probability Reciprocity. Bridge edges always get both directions so the
	// directed graph stays mutually reachable across communities (the paper's
	// directed inputs are weakly connected with reachable cores). Leaf edges
	// stay single out-arcs from the leaf.
	var dir []graph.Edge
	for i, e := range edges {
		switch {
		case i >= coreEdges: // leaf edge: out-arc only
			dir = append(dir, e)
		case i >= coreEdges-(p.Communities-1): // bridge: both arcs
			dir = append(dir, e, graph.Edge{From: e.To, To: e.From})
		default:
			if r.Intn(2) == 0 {
				e.From, e.To = e.To, e.From
			}
			dir = append(dir, e)
			if r.Float64() < p.Reciprocity {
				dir = append(dir, graph.Edge{From: e.To, To: e.From})
			}
		}
	}
	return graph.NewFromEdges(n, dir, true)
}

// WebParams tunes WebLike, the stand-in for web crawls (NotreDame,
// web-BerkStan, web-Google): directed, hierarchical site structure with dense
// intra-site linkage and sparse cross-site links.
type WebParams struct {
	N        int
	Sites    int     // number of "web sites" (hierarchical clusters)
	AvgDeg   int     // average out-degree within a site
	LeafFrac float64 // pages with a single outgoing link and no inlinks
	Seed     int64
}

// WebLike returns a directed web-crawl-like graph: each site is an RMAT-ish
// preferential cluster with reciprocal navigation links, sites are linked in
// a tree through bidirectional hub-hub bridges (articulation structure), and
// LeafFrac·N stub pages point at site hubs.
func WebLike(p WebParams) *graph.Graph {
	if p.Sites < 1 {
		p.Sites = 1
	}
	sp := SocialParams{
		N:           p.N,
		AvgDeg:      p.AvgDeg,
		Communities: p.Sites,
		TopShare:    0.6,
		LeafFrac:    p.LeafFrac,
		Directed:    true,
		Reciprocity: 0.75, // web navigation is largely bidirectional in-site
		Seed:        p.Seed,
	}
	return SocialLike(sp)
}

// RoadParams tunes RoadLike, the stand-in for the DIMACS road networks.
type RoadParams struct {
	Rows, Cols int
	DeleteFrac float64 // fraction of grid edges removed (creates cut structure)
	SpurFrac   float64 // per-vertex probability of a degree-1 spur chain
	SpurLen    int     // max spur chain length
	Seed       int64
}

// RoadLike returns an undirected road-network-like graph: a 2-D lattice with
// random edge deletions (then reduced to its largest connected component) and
// short dead-end spur chains. Road graphs have a dominant biconnected core
// with modest articulation structure — Table 4 reports 88% of usa-roadNY in
// the top sub-graph — and this generator lands in the same band.
func RoadLike(p RoadParams) *graph.Graph {
	r := rand.New(rand.NewSource(p.Seed))
	base := Grid2D(p.Rows, p.Cols)
	var edges []graph.Edge
	for _, e := range base.Edges() {
		if r.Float64() < p.DeleteFrac {
			continue
		}
		edges = append(edges, e)
	}
	g := graph.NewFromEdges(p.Rows*p.Cols, edges, false)
	g, _ = graph.LargestComponent(g)

	if p.SpurLen < 1 {
		p.SpurLen = 1
	}
	n := g.NumVertices()
	edges = g.Edges()
	next := n
	for v := 0; v < n; v++ {
		if r.Float64() >= p.SpurFrac {
			continue
		}
		length := 1 + r.Intn(p.SpurLen)
		prev := int32(v)
		for k := 0; k < length; k++ {
			edges = append(edges, graph.Edge{From: prev, To: int32(next)})
			prev = int32(next)
			next++
		}
	}
	return graph.NewFromEdges(next, edges, false)
}

// HumanDiseaseLike mimics Figure 2's Human Disease Network (1419 vertices,
// 3926 edges): many small disease clusters bridged through shared-gene hub
// nodes, giving a high articulation-point count at small scale.
func HumanDiseaseLike(seed int64) *graph.Graph {
	return SocialLike(SocialParams{
		N:           1419,
		AvgDeg:      7,
		Communities: 90,
		TopShare:    0.25,
		LeafFrac:    0.15,
		Seed:        seed,
	})
}
