// Package gen provides deterministic, seeded synthetic graph generators.
//
// The paper evaluates on SNAP/DIMACS datasets that are not available offline;
// per DESIGN.md §3 every experiment instead runs on generators from this
// package, tuned so the structural properties APGRE exploits — articulation
// point density, volume hanging off cut vertices, and degree-1 leaf counts —
// match each paper input's redundancy profile.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ErdosRenyi returns a G(n, m) random graph: m distinct edges drawn uniformly
// (self-loops excluded, duplicates retried). Dense uniform graphs are almost
// surely biconnected, so they are the "no redundancy to eliminate" control.
func ErdosRenyi(n int, m int64, directed bool, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	maxM := int64(n) * int64(n-1)
	if !directed {
		maxM /= 2
	}
	if m > maxM {
		m = maxM
	}
	seen := make(map[[2]int32]bool, m)
	edges := make([]graph.Edge, 0, m)
	for int64(len(edges)) < m {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v {
			continue
		}
		key := [2]int32{u, v}
		if !directed && u > v {
			key = [2]int32{v, u}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, graph.Edge{From: u, To: v})
	}
	return graph.NewFromEdges(n, edges, directed)
}

// BarabasiAlbert returns an undirected preferential-attachment graph: each
// new vertex attaches to k existing vertices chosen proportionally to degree.
// Produces the power-law degree distribution of §2.2 ("a small subset of the
// vertices are connected to a large fraction of the graph").
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	r := rand.New(rand.NewSource(seed))
	// Repeated-endpoint list: choosing a uniform element is degree-weighted.
	targets := make([]int32, 0, 2*n*k)
	edges := make([]graph.Edge, 0, n*k)
	// Seed clique of k+1 vertices.
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			edges = append(edges, graph.Edge{From: int32(u), To: int32(v)})
			targets = append(targets, int32(u), int32(v))
		}
	}
	chosen := make([]int32, 0, k)
	for u := k + 1; u < n; u++ {
		// Draw k distinct degree-weighted endpoints. The slice (not a map)
		// keeps iteration deterministic: seeded generators must reproduce
		// bit-identical graphs across runs.
		chosen = chosen[:0]
		for len(chosen) < k {
			cand := targets[r.Intn(len(targets))]
			dup := false
			for _, c := range chosen {
				if c == cand {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, cand)
			}
		}
		for _, v := range chosen {
			edges = append(edges, graph.Edge{From: int32(u), To: v})
			targets = append(targets, int32(u), v)
		}
	}
	return graph.NewFromEdges(n, edges, false)
}

// RMAT returns a recursive-matrix (Kronecker-style) graph with 2^scale
// vertices and edgeFactor * 2^scale edge samples, using the standard
// (a,b,c,d) quadrant probabilities. Duplicate samples collapse in CSR
// construction, so the realized edge count is slightly lower.
func RMAT(scale int, edgeFactor int, a, b, c float64, directed bool, seed int64) *graph.Graph {
	n := 1 << uint(scale)
	d := 1 - a - b - c
	if d < 0 {
		panic(fmt.Sprintf("gen: RMAT probabilities sum to %v > 1", a+b+c))
	}
	r := rand.New(rand.NewSource(seed))
	m := int64(edgeFactor) * int64(n)
	edges := make([]graph.Edge, 0, m)
	for e := int64(0); e < m; e++ {
		u, v := 0, 0
		for bit := n >> 1; bit >= 1; bit >>= 1 {
			p := r.Float64()
			switch {
			case p < a:
			case p < a+b:
				v += bit
			case p < a+b+c:
				u += bit
			default:
				u += bit
				v += bit
			}
		}
		if u != v {
			edges = append(edges, graph.Edge{From: int32(u), To: int32(v)})
		}
	}
	return graph.NewFromEdges(n, edges, directed)
}

// Grid2D returns the rows×cols lattice graph (undirected). Grids are
// biconnected, the road-network building block.
func Grid2D(rows, cols int) *graph.Graph {
	n := rows * cols
	edges := make([]graph.Edge, 0, 2*n)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{From: id(r, c), To: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{From: id(r, c), To: id(r+1, c)})
			}
		}
	}
	return graph.NewFromEdges(n, edges, false)
}

// Path returns the n-vertex path graph, the extreme articulation-point case:
// every interior vertex is a cut vertex.
func Path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32(i + 1)})
	}
	return graph.NewFromEdges(n, edges, false)
}

// Cycle returns the n-vertex cycle, which is biconnected (no articulation
// points) — the negative control for the decomposition.
func Cycle(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32((i + 1) % n)})
	}
	return graph.NewFromEdges(n, edges, false)
}

// Star returns the star with one hub and n-1 leaves; the hub is the sole
// articulation point and all leaves are total-redundancy candidates.
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{From: 0, To: int32(i)})
	}
	return graph.NewFromEdges(n, edges, false)
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{From: int32(u), To: int32(v)})
		}
	}
	return graph.NewFromEdges(n, edges, false)
}

// Lollipop returns a clique of cliqueSize with a path of pathLen hanging off
// vertex 0 — the textbook partial-redundancy example (the clique is a common
// sub-DAG for every path vertex).
func Lollipop(cliqueSize, pathLen int) *graph.Graph {
	n := cliqueSize + pathLen
	var edges []graph.Edge
	for u := 0; u < cliqueSize; u++ {
		for v := u + 1; v < cliqueSize; v++ {
			edges = append(edges, graph.Edge{From: int32(u), To: int32(v)})
		}
	}
	prev := int32(0)
	for i := 0; i < pathLen; i++ {
		next := int32(cliqueSize + i)
		edges = append(edges, graph.Edge{From: prev, To: next})
		prev = next
	}
	return graph.NewFromEdges(n, edges, false)
}

// Tree returns a random tree on n vertices: vertex i attaches to a uniform
// earlier vertex. Trees are all articulation points, the extreme
// decomposition case.
func Tree(n int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{From: int32(r.Intn(i)), To: int32(i)})
	}
	return graph.NewFromEdges(n, edges, false)
}

// WithRandomWeights returns a weighted copy of g with integer edge weights
// drawn uniformly from [1, maxW]. Integer weights keep shortest-path-length
// ties exact under float64 arithmetic (see internal/brandes's weighted
// engine notes).
func WithRandomWeights(g *graph.Graph, maxW int, seed int64) *graph.Graph {
	if maxW < 1 {
		maxW = 1
	}
	r := rand.New(rand.NewSource(seed))
	var wedges []graph.WeightedEdge
	for _, e := range g.Edges() {
		wedges = append(wedges, graph.WeightedEdge{
			From: e.From, To: e.To, W: float64(1 + r.Intn(maxW)),
		})
	}
	return graph.NewWeightedFromEdges(g.NumVertices(), wedges, g.Directed())
}

// Caveman returns numCliques cliques of cliqueSize arranged in a ring, each
// consecutive pair joined by a single bridge edge; every bridge endpoint is
// an articulation point. (With a ring the bridge edges form a cycle, so use
// ring=false for a path arrangement with strictly tree-like block structure.)
func Caveman(numCliques, cliqueSize int, ring bool) *graph.Graph {
	n := numCliques * cliqueSize
	var edges []graph.Edge
	for c := 0; c < numCliques; c++ {
		base := c * cliqueSize
		for u := 0; u < cliqueSize; u++ {
			for v := u + 1; v < cliqueSize; v++ {
				edges = append(edges, graph.Edge{From: int32(base + u), To: int32(base + v)})
			}
		}
		if c+1 < numCliques {
			edges = append(edges, graph.Edge{From: int32(base), To: int32(base + cliqueSize)})
		}
	}
	if ring && numCliques > 2 {
		edges = append(edges, graph.Edge{From: int32((numCliques - 1) * cliqueSize), To: 0})
	}
	return graph.NewFromEdges(n, edges, false)
}
