package gen

import (
	"testing"

	"repro/internal/bcc"
	"repro/internal/graph"
)

func sameGraph(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.Directed() != b.Directed() ||
		a.NumArcs() != b.NumArcs() {
		return false
	}
	for u := 0; u < a.NumVertices(); u++ {
		ra, rb := a.Out(int32(u)), b.Out(int32(u))
		if len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i] != rb[i] {
				return false
			}
		}
	}
	return true
}

func testComposite(directed bool, seed int64) CompositeParams {
	return CompositeParams{
		Cores: 4, CoreScale: 6, EdgeFactor: 4,
		A: 0.57, B: 0.19, C: 0.19,
		PeriphFrac: 0.25, ChainLen: 4,
		Directed: directed, Seed: seed,
	}
}

// TestBuildCSRDeterministicAcrossWorkers pins the streamed generators' core
// contract: because every chunk reseeds independently and rows are
// canonicalized after placement, the realized graph is a pure function of
// (stream parameters, seed) — byte-identical at any parallelism.
func TestBuildCSRDeterministicAcrossWorkers(t *testing.T) {
	streams := map[string]func() *Stream{
		"rmat":     func() *Stream { return RMATStream(10, 4, 0.57, 0.19, 0.19, false, 42) },
		"rmat-dir": func() *Stream { return RMATStream(9, 4, 0.57, 0.19, 0.19, true, 7) },
		"composite": func() *Stream {
			return CompositeStream(testComposite(false, 5))
		},
		"composite-dir": func() *Stream {
			return CompositeStream(testComposite(true, 5))
		},
	}
	for name, mk := range streams {
		base := BuildCSR(mk(), 1)
		for _, w := range []int{2, 3, 8} {
			if g := BuildCSR(mk(), w); !sameGraph(base, g) {
				t.Fatalf("%s: graph at workers=%d differs from workers=1", name, w)
			}
		}
		// A different seed must not reproduce the same graph (the reseeding
		// cascade actually reaches the samples).
		if name == "rmat" {
			other := BuildCSR(RMATStream(10, 4, 0.57, 0.19, 0.19, false, 43), 1)
			if sameGraph(base, other) {
				t.Fatalf("%s: seeds 42 and 43 generated identical graphs", name)
			}
		}
	}
}

func TestRMATStreamShape(t *testing.T) {
	g := BuildCSR(RMATStream(10, 8, 0.57, 0.19, 0.19, false, 1), 4)
	if g.NumVertices() != 1<<10 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Duplicate samples collapse, so arcs land below 2*edgeFactor*n but not
	// catastrophically below.
	if g.NumArcs() < 4*1024 || g.NumArcs() > 16*1024 {
		t.Fatalf("arcs = %d out of expected band", g.NumArcs())
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Out(int32(u)) {
			if !g.HasArc(v, int32(u)) {
				t.Fatalf("undirected stream produced asymmetric arc %d->%d", u, v)
			}
		}
	}
}

// TestCompositeStreamCensus checks the structural guarantee CompositeStream
// documents: with nc chains of length L, at least nc·(L−1) articulation
// points and nc degree-1 leaves, on top of the core mass — the knobs the
// at-scale experiments use to dial a realistic AP/BCC census.
func TestCompositeStreamCensus(t *testing.T) {
	for _, directed := range []bool{false, true} {
		p := testComposite(directed, 5)
		coresTotal := p.Cores << uint(p.CoreScale)
		periph := int(float64(coresTotal) * p.PeriphFrac / (1 - p.PeriphFrac))
		nc := periph / p.ChainLen

		g := BuildCSR(CompositeStream(p), 4)
		if want := coresTotal + nc*p.ChainLen; g.NumVertices() != want {
			t.Fatalf("directed=%v: n = %d, want %d", directed, g.NumVertices(), want)
		}
		if g.Directed() != directed {
			t.Fatalf("directedness lost")
		}
		aps, deg1 := bcc.CountArticulationPoints(g)
		if want := nc * (p.ChainLen - 1); aps < want {
			t.Errorf("directed=%v: %d articulation points, want >= %d from the chain periphery",
				directed, aps, want)
		}
		if deg1 < nc {
			t.Errorf("directed=%v: %d degree-1 leaves, want >= %d chain tails", directed, deg1, nc)
		}
	}
}

// Chains anchor at seed-determined core vertices; the bridge chunk wires
// every core into one tree. R-MAT leaves some core vertices isolated or in
// tiny fragments, so exact connectivity is not guaranteed — but the giant
// component must dominate, or the family would not stress the decomposition
// the way the at-scale experiments assume.
func TestCompositeStreamConnectivity(t *testing.T) {
	p := testComposite(false, 5)
	g := BuildCSR(CompositeStream(p), 4)
	seen := make([]bool, g.NumVertices())
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Out(u) {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	if n := g.NumVertices(); count < n*8/10 {
		t.Fatalf("giant component has %d of %d vertices, want >= 80%%", count, n)
	}
}
