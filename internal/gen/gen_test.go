package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, false, 1)
	if g.NumVertices() != 100 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 300 {
		t.Fatalf("m = %d, want 300", g.NumEdges())
	}
	gd := ErdosRenyi(50, 200, true, 2)
	if gd.NumEdges() != 200 || !gd.Directed() {
		t.Fatalf("directed ER wrong: m=%d", gd.NumEdges())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(60, 120, false, 42)
	b := ErdosRenyi(60, 120, false, 42)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := ErdosRenyi(60, 120, false, 43)
	same := true
	ec := c.Edges()
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestErdosRenyiClampsM(t *testing.T) {
	g := ErdosRenyi(5, 1000, false, 1)
	if g.NumEdges() != 10 { // K5
		t.Fatalf("m = %d, want 10", g.NumEdges())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 7)
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Every non-seed vertex adds exactly k distinct edges.
	wantM := int64(3*2 + (500-4)*3) // seed K4 has 6 edges
	if g.NumEdges() != wantM {
		t.Fatalf("m = %d, want %d", g.NumEdges(), wantM)
	}
	_, count := graph.ConnectedComponents(g)
	if count != 1 {
		t.Fatalf("BA graph not connected: %d components", count)
	}
	st := graph.Stats(g)
	if st.MaxOut < 20 {
		t.Fatalf("BA hub degree %d suspiciously small — no power-law tail", st.MaxOut)
	}
}

// Every seeded generator must reproduce bit-identical graphs across calls —
// a regression test for the map-iteration nondeterminism once present in
// BarabasiAlbert (it made "deterministic" experiments unrepeatable).
func TestGeneratorsBitIdentical(t *testing.T) {
	builders := map[string]func() *graph.Graph{
		"ba":   func() *graph.Graph { return BarabasiAlbert(300, 3, 5) },
		"er":   func() *graph.Graph { return ErdosRenyi(200, 600, true, 5) },
		"rmat": func() *graph.Graph { return RMAT(8, 4, 0.57, 0.19, 0.19, false, 5) },
		"tree": func() *graph.Graph { return Tree(200, 5) },
		"social": func() *graph.Graph {
			return SocialLike(SocialParams{N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 5})
		},
		"road": func() *graph.Graph {
			return RoadLike(RoadParams{Rows: 12, Cols: 12, DeleteFrac: 0.1, SpurFrac: 0.1, SpurLen: 2, Seed: 5})
		},
		"web": func() *graph.Graph { return WebLike(WebParams{N: 300, Sites: 5, AvgDeg: 6, LeafFrac: 0.2, Seed: 5}) },
	}
	for name, build := range builders {
		a, b := build(), build()
		ea, eb := a.Edges(), b.Edges()
		if len(ea) != len(eb) {
			t.Fatalf("%s: nondeterministic edge count", name)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: nondeterministic edges at %d: %v vs %v", name, i, ea[i], eb[i])
			}
		}
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, true, 3)
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 8*1024 {
		t.Fatalf("m = %d out of range", g.NumEdges())
	}
	st := graph.Stats(g)
	if st.MaxOut < 30 {
		t.Fatalf("RMAT hub degree %d — skew missing", st.MaxOut)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RMAT with bad probabilities should panic")
		}
	}()
	RMAT(4, 2, 0.5, 0.4, 0.3, false, 1)
}

func TestStructuredGraphs(t *testing.T) {
	if g := Grid2D(5, 7); g.NumVertices() != 35 || g.NumEdges() != int64(5*6+4*7) {
		t.Fatalf("grid: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g := Path(10); g.NumEdges() != 9 {
		t.Fatalf("path m=%d", g.NumEdges())
	}
	if g := Cycle(10); g.NumEdges() != 10 {
		t.Fatalf("cycle m=%d", g.NumEdges())
	}
	if g := Star(10); g.NumEdges() != 9 || g.OutDegree(0) != 9 {
		t.Fatalf("star wrong")
	}
	if g := Complete(6); g.NumEdges() != 15 {
		t.Fatalf("K6 m=%d", g.NumEdges())
	}
	if g := Lollipop(5, 4); g.NumVertices() != 9 || g.NumEdges() != 10+4 {
		t.Fatalf("lollipop n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g := Tree(100, 5); g.NumEdges() != 99 {
		t.Fatalf("tree m=%d", g.NumEdges())
	}
	if _, c := graph.ConnectedComponents(Tree(100, 5)); c != 1 {
		t.Fatal("tree not connected")
	}
}

func TestCaveman(t *testing.T) {
	g := Caveman(4, 5, false)
	if g.NumVertices() != 20 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// 4 cliques of 10 edges + 3 bridges.
	if g.NumEdges() != 43 {
		t.Fatalf("m = %d, want 43", g.NumEdges())
	}
	if _, c := graph.ConnectedComponents(g); c != 1 {
		t.Fatal("caveman not connected")
	}
	ring := Caveman(4, 5, true)
	if ring.NumEdges() != 44 {
		t.Fatalf("ring m = %d, want 44", ring.NumEdges())
	}
}

func TestSocialLikeUndirected(t *testing.T) {
	g := SocialLike(SocialParams{N: 2000, AvgDeg: 6, Communities: 12, TopShare: 0.5, LeafFrac: 0.3, Seed: 9})
	if g.NumVertices() != 2000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if _, c := graph.ConnectedComponents(g); c != 1 {
		t.Fatal("social graph not connected")
	}
	st := graph.Stats(g)
	// Leaf fraction should be at least the requested 30% (hubs can also end
	// up degree-1 only by accident, never below).
	if got := float64(st.Degree1) / 2000; got < 0.28 {
		t.Fatalf("degree-1 fraction %.2f, want >= 0.28", got)
	}
}

func TestSocialLikeDirected(t *testing.T) {
	g := SocialLike(SocialParams{N: 1500, AvgDeg: 6, Communities: 8, TopShare: 0.5,
		LeafFrac: 0.25, Directed: true, Reciprocity: 0.5, Seed: 11})
	if !g.Directed() {
		t.Fatal("not directed")
	}
	if _, c := graph.ConnectedComponents(g); c != 1 {
		t.Fatal("directed social graph not weakly connected")
	}
	st := graph.Stats(g)
	if st.Sources < 300 {
		t.Fatalf("Sources = %d, want >= 300 (leaves must be no-in single-out)", st.Sources)
	}
}

func TestWebLike(t *testing.T) {
	g := WebLike(WebParams{N: 1200, Sites: 10, AvgDeg: 8, LeafFrac: 0.2, Seed: 13})
	if !g.Directed() || g.NumVertices() != 1200 {
		t.Fatalf("weblike wrong: %v", g)
	}
	if _, c := graph.ConnectedComponents(g); c != 1 {
		t.Fatal("web graph not weakly connected")
	}
}

func TestRoadLike(t *testing.T) {
	g := RoadLike(RoadParams{Rows: 30, Cols: 30, DeleteFrac: 0.1, SpurFrac: 0.05, SpurLen: 3, Seed: 17})
	if g.Directed() {
		t.Fatal("road graph must be undirected")
	}
	if _, c := graph.ConnectedComponents(g); c != 1 {
		t.Fatal("road graph not connected")
	}
	st := graph.Stats(g)
	if st.MeanOut > 4.5 {
		t.Fatalf("road mean degree %.2f too high", st.MeanOut)
	}
	if st.MaxOut > 8 {
		t.Fatalf("road max degree %d too high", st.MaxOut)
	}
}

func TestHumanDiseaseLike(t *testing.T) {
	g := HumanDiseaseLike(1)
	if g.NumVertices() != 1419 {
		t.Fatalf("n = %d, want 1419", g.NumVertices())
	}
	// Edge count in the ballpark of the real network's 3926.
	if g.NumEdges() < 2500 || g.NumEdges() > 5500 {
		t.Fatalf("m = %d, want ~3926", g.NumEdges())
	}
}

// Property: SocialLike is always weakly connected and has the requested size,
// across a range of parameters.
func TestQuickSocialConnected(t *testing.T) {
	f := func(seed int64, commsRaw, leafRaw uint8) bool {
		comms := 1 + int(commsRaw%15)
		leaf := float64(leafRaw%50) / 100
		g := SocialLike(SocialParams{N: 800, AvgDeg: 4, Communities: comms,
			TopShare: 0.5, LeafFrac: leaf, Seed: seed})
		if g.NumVertices() != 800 {
			return false
		}
		_, c := graph.ConnectedComponents(g)
		return c == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
