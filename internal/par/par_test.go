package par

import (
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 63, 1000} {
		for _, p := range []int{1, 2, 3, 8} {
			seen := make([]int32, n)
			For(n, p, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d p=%d: index %d visited %d times", n, p, i, c)
				}
			}
		}
	}
}

func TestForWorkerCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 100, 5000} {
		for _, p := range []int{1, 3, 16} {
			seen := make([]int32, n)
			used := ForWorker(n, p, 7, func(w, i int) {
				if w < 0 {
					t.Errorf("negative worker id")
				}
				atomic.AddInt32(&seen[i], 1)
			})
			if used < 1 && n > 0 {
				t.Fatalf("ForWorker returned %d workers", used)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d p=%d: index %d visited %d times", n, p, i, c)
				}
			}
		}
	}
}

func TestForWorkerIDsWithinRange(t *testing.T) {
	var maxW int64 = -1
	used := ForWorker(10000, 4, 16, func(w, i int) {
		for {
			old := atomic.LoadInt64(&maxW)
			if int64(w) <= old || atomic.CompareAndSwapInt64(&maxW, old, int64(w)) {
				break
			}
		}
	})
	if int(maxW) >= used {
		t.Fatalf("worker id %d out of range [0,%d)", maxW, used)
	}
}

func TestForDynamicCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100, 5000} {
		for _, p := range []int{1, 2, 8, 16} {
			for _, chunk := range []int{0, 1, 7, 10000} {
				seen := make([]int32, n)
				ForDynamic(n, p, chunk, func(i int) { atomic.AddInt32(&seen[i], 1) })
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("n=%d p=%d chunk=%d: index %d visited %d times", n, p, chunk, i, c)
					}
				}
			}
		}
	}
}

// TestForDynamicEdgeCases pins the three degenerate shapes: an empty range
// never invokes the callback, n < p still covers every index exactly once,
// and a chunk larger than n degrades to one inline pass.
func TestForDynamicEdgeCases(t *testing.T) {
	var calls int32
	ForDynamic(0, 8, 4, func(i int) { atomic.AddInt32(&calls, 1) })
	if calls != 0 {
		t.Fatalf("n=0 invoked the callback %d times", calls)
	}

	const n, p = 3, 16 // n < p
	seen := make([]int32, n)
	ForDynamic(n, p, 1, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("n<p: index %d visited %d times", i, c)
		}
	}

	// chunk > n: the whole range is one chunk, which must run inline on the
	// caller's goroutine — order is therefore sequential.
	var order []int
	ForDynamic(5, 4, 99, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("chunk>n order = %v, want 0..4 in order", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("chunk>n visited %d indices, want 5", len(order))
	}
}

// TestForDynamicSkewedCoverage drives the scheduler's motivating workload —
// one iteration several orders of magnitude more expensive than the rest —
// and checks completeness; BenchmarkSkewed* measures the static-vs-dynamic
// gap on the same shape.
func TestForDynamicSkewedCoverage(t *testing.T) {
	const n = 64
	done := make([]int32, n)
	ForDynamic(n, 4, 1, func(i int) {
		if i == 0 {
			sink := 0
			for k := 0; k < 200000; k++ {
				sink += k
			}
			_ = sink
		}
		atomic.AddInt32(&done[i], 1)
	})
	for i, c := range done {
		if c != 1 {
			t.Fatalf("skewed workload: index %d ran %d times", i, c)
		}
	}
}

// TestForSmallLoopRunsInline is the regression test for the tiny-n chunk
// math: loops with at most ~4 iterations per worker must run inline on the
// caller's goroutine (the plain append below would be flagged by -race
// otherwise), in index order, instead of spawning one goroutine per element.
func TestForSmallLoopRunsInline(t *testing.T) {
	const p = 8
	for _, n := range []int{1, 2, 5, 4 * p} {
		var order []int
		For(n, p, func(i int) { order = append(order, i) })
		if len(order) != n {
			t.Fatalf("n=%d: visited %d indices", n, len(order))
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("n=%d: order = %v, want sequential", n, order)
			}
		}
	}
}

// skewedWork burns cycles proportional to the iteration's cost in a skewed
// distribution: the first index carries half the total work, mimicking one
// giant biconnected component among thousands of tiny ones.
func skewedWork(i int) {
	iters := 64
	if i == 0 {
		iters = 64 * 256
	}
	sink := 0
	for k := 0; k < iters; k++ {
		sink += k ^ (k << 1)
	}
	if sink == -1 {
		panic("unreachable")
	}
}

// BenchmarkSkewedStatic vs BenchmarkSkewedDynamic: static contiguous chunking
// pins the heavy index-0 chunk to one worker that also owns ~n/p light
// iterations, while dynamic claiming lets the other workers drain the light
// tail concurrently. Run with -cpu 4 (or any p > 1) to see the gap.
func BenchmarkSkewedStatic(b *testing.B) {
	const n = 256
	p := runtime.GOMAXPROCS(0)
	for b.Loop() {
		For(n, p, skewedWork)
	}
}

func BenchmarkSkewedDynamic(b *testing.B) {
	const n = 256
	p := runtime.GOMAXPROCS(0)
	for b.Loop() {
		ForDynamic(n, p, 1, skewedWork)
	}
}

func TestDynamicSum(t *testing.T) {
	const n = 12345
	var sum int64
	Dynamic(n, 8, 10, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	want := int64(n) * int64(n-1) / 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestBagDrain(t *testing.T) {
	b := NewBag[int](4)
	want := []int{}
	for w := 0; w < 4; w++ {
		for k := 0; k < 10; k++ {
			v := w*100 + k
			b.Add(w, v)
			want = append(want, v)
		}
	}
	if b.Size() != len(want) {
		t.Fatalf("Size = %d, want %d", b.Size(), len(want))
	}
	got := b.Drain(nil)
	sort.Ints(got)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("Drain returned %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if b.Size() != 0 {
		t.Fatalf("bag not empty after Drain: %d", b.Size())
	}
	// Drain into a reused buffer must not keep stale entries.
	b.Add(0, 42)
	got2 := b.Drain(got)
	if len(got2) != 1 || got2[0] != 42 {
		t.Fatalf("reuse Drain = %v, want [42]", got2)
	}
}

func TestBagZeroWorkers(t *testing.T) {
	b := NewBag[string](0)
	b.Add(0, "x")
	if got := b.Drain(nil); len(got) != 1 || got[0] != "x" {
		t.Fatalf("Drain = %v", got)
	}
}

// Property: For and a serial loop compute identical reductions.
func TestQuickForEquivalence(t *testing.T) {
	f := func(vals []int32, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		var parSum int64
		For(len(vals), p, func(i int) { atomic.AddInt64(&parSum, int64(vals[i])) })
		var serSum int64
		for _, v := range vals {
			serSum += int64(v)
		}
		return parSum == serSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyRange pins the n == 0 contract for every loop primitive: the
// callback must never fire, and ForWorker must still report at least one
// worker because callers size per-worker scratch slices by its return value.
func TestEmptyRange(t *testing.T) {
	var calls int32
	count := func(args ...int) { atomic.AddInt32(&calls, 1) }
	For(0, 4, func(i int) { count(i) })
	Dynamic(0, 4, 8, func(i int) { count(i) })
	Pool(0, 4, func(task int) { count(task) })
	if calls != 0 {
		t.Fatalf("empty range invoked the callback %d times", calls)
	}
	for _, p := range []int{0, 1, 4} {
		used := ForWorker(0, p, 0, func(w, i int) { count(w, i) })
		if used < 1 {
			t.Fatalf("ForWorker(0, %d) returned %d workers; scratch sizing needs >= 1", p, used)
		}
	}
	if calls != 0 {
		t.Fatalf("ForWorker on empty range invoked the callback %d times", calls)
	}
}

// TestFewerTasksThanWorkers pins n < p: every index runs exactly once and
// worker ids stay in [0, used).
func TestFewerTasksThanWorkers(t *testing.T) {
	const n, p = 3, 16
	seen := make([]int32, n)
	Pool(n, p, func(task int) { atomic.AddInt32(&seen[task], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("Pool: task %d ran %d times", i, c)
		}
	}
	seen = make([]int32, n)
	used := ForWorker(n, p, 0, func(w, i int) {
		if w < 0 || w >= p {
			t.Errorf("worker id %d out of range", w)
		}
		atomic.AddInt32(&seen[i], 1)
	})
	if used < 1 || used > p {
		t.Fatalf("ForWorker used = %d, want within [1,%d]", used, p)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("ForWorker: index %d ran %d times", i, c)
		}
	}
	seen = make([]int32, n)
	For(n, p, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("For: index %d ran %d times", i, c)
		}
	}
}

func TestPoolUnevenTasks(t *testing.T) {
	work := make([]int64, 9)
	Pool(9, 3, func(task int) {
		// Task 0 is much heavier; dynamic scheduling must still complete all.
		iters := 1
		if task == 0 {
			iters = 100000
		}
		var s int64
		for k := 0; k < iters; k++ {
			s += int64(k)
		}
		atomic.StoreInt64(&work[task], s+1)
	})
	for i, v := range work {
		if v == 0 {
			t.Fatalf("task %d never ran", i)
		}
	}
}
