// Package par is the parallel runtime substrate: a small, allocation-conscious
// analogue of the CilkPlus constructs the paper's implementation uses
// (cilk_for and reducer bags). It provides bounded parallel-for loops with
// static and dynamic scheduling and per-worker "bags" whose contents are
// merged without locks at level barriers.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean GOMAXPROCS.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// For runs fn(i) for every i in [0, n) using p workers with contiguous static
// chunking. fn must be safe to call concurrently for distinct i. When p == 1
// or the loop is small (fewer than ~4 iterations per worker) it runs inline
// with no goroutines: spawning p goroutines for a handful of iterations costs
// more than the iterations themselves, and before this clamp the chunk math
// could degenerate to one goroutine per element for tiny n.
func For(n, p int, fn func(i int)) {
	p = Workers(p)
	if p > n {
		p = n
	}
	if p <= 1 || n <= 4*p {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + p - 1) / p
	for w := 0; w < p; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForWorker is like For but also passes the worker index in [0, p) so the
// callback can use per-worker scratch space. It returns the worker count
// actually used, which is the length callers should size scratch slices to.
// The grain parameter bounds dynamic chunk size; grain <= 0 picks a default.
func ForWorker(n, p, grain int, fn func(worker, i int)) int {
	p = Workers(p)
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	if p == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return 1
	}
	if grain <= 0 {
		grain = n / (8 * p)
		if grain < 64 {
			grain = 64
		}
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
	return p
}

// ForDynamic runs fn(i) for every i in [0, n) with dynamic chunked
// scheduling: p workers repeatedly claim the next `chunk` consecutive indices
// from a shared atomic counter until the range is drained. Early claimants of
// expensive iterations naturally take fewer chunks, so skewed per-iteration
// costs balance without any cost model — the work-stealing analogue the
// sub-graph scheduler (internal/core) drains its cost-ordered unit queue
// with. chunk <= 0 picks a default of n/(8p), at least 1; when p == 1 or a
// single chunk covers the whole range the loop runs inline.
func ForDynamic(n, p, chunk int, fn func(i int)) {
	if n <= 0 {
		return
	}
	p = Workers(p)
	if p > n {
		p = n
	}
	if chunk <= 0 {
		chunk = n / (8 * p)
		if chunk < 1 {
			chunk = 1
		}
	}
	if p <= 1 || chunk >= n {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Dynamic is ForDynamic under its historical name (grain == chunk).
func Dynamic(n, p, grain int, fn func(i int)) {
	ForDynamic(n, p, grain, fn)
}

// Bag accumulates values from many workers without locking: each worker
// appends to a private slice, and Drain concatenates them. It is the
// reduction-bag analogue used to build the next BFS frontier.
type Bag[T any] struct {
	parts [][]T
}

// NewBag returns a Bag for p workers.
func NewBag[T any](p int) *Bag[T] {
	if p < 1 {
		p = 1
	}
	return &Bag[T]{parts: make([][]T, p)}
}

// Add appends v to worker w's private part. Calls with distinct w are safe
// concurrently; calls sharing w must be serialized by the caller (each worker
// uses its own index).
func (b *Bag[T]) Add(w int, v T) {
	b.parts[w] = append(b.parts[w], v)
}

// Drain appends all parts to dst (reusing its capacity), resets the bag's
// parts to empty (retaining their capacity), and returns the combined slice.
func (b *Bag[T]) Drain(dst []T) []T {
	dst = dst[:0]
	for i, p := range b.parts {
		dst = append(dst, p...)
		b.parts[i] = p[:0]
	}
	return dst
}

// Size returns the total number of buffered values.
func (b *Bag[T]) Size() int {
	s := 0
	for _, p := range b.parts {
		s += len(p)
	}
	return s
}

// Pool runs tasks produced by a queue of indices with p workers; it is a thin
// convenience over Dynamic with grain 1 for task-level (not loop-level)
// parallelism, e.g. "one task per sub-graph".
func Pool(tasks, p int, fn func(task int)) {
	Dynamic(tasks, p, 1, fn)
}
