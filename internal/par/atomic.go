package par

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// AddFloat64 atomically adds delta to *addr with a CAS loop. It is the
// float-accumulation primitive used where several workers update a shared
// dependency or BC slot concurrently.
func AddFloat64(addr *float64, delta float64) {
	bits := (*uint64)(unsafe.Pointer(addr))
	for {
		old := atomic.LoadUint64(bits)
		neu := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(bits, old, neu) {
			return
		}
	}
}
