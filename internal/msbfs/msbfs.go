// Package msbfs implements a bit-parallel multi-source batched sweep engine
// for APGRE betweenness centrality: one traversal carries up to 64 roots at
// once, sharing a single CSR stream across the whole batch instead of
// re-reading the adjacency once per root.
//
// # Lane layout
//
// A batch assigns each root a lane — one bit position of a 64-bit machine
// word (ws.LaneWidth). Per-vertex lane masks then compress 64 traversal
// states into single words:
//
//	seen[v]  — lanes whose root has reached v at any depth so far
//	mask d,v — lanes whose root reached v at exactly depth d
//
// and the per-lane numeric state (σ path counts, the four APGRE dependency
// accumulators, the per-root BC contribution) lives in LaneWidth-strided
// arrays carved out of the shared ws arena (slot v·64+l belongs to lane l).
// The forward σ-BFS processes one depth level of the whole batch at a time:
// for each vertex u in the level's union frontier, each out-arc u→w is
// examined once, and the lanes that step from u to w fall out of one word
// operation, propagate = mask(u) &^ seen[w] — the lanes at depth d on u that
// have not seen w yet are exactly the lanes for which w is at depth d+1 via
// parent u. σ accumulates per lane over those bits. The backward pass walks
// the recorded levels deepest-first; the lanes for which w is a successor of
// v are again one word op, mask(v) & mask(w at d+1), and the four-dependency
// recursion with the α/β/γ boundary seeds runs per set lane exactly as in
// the scalar engine (internal/core).
//
// # Why batching stays bit-exact
//
// The batched engine reproduces the scalar serial engine bit for bit, which
// is what lets it slot behind the deterministic scheduler unobserved:
//
//   - σ path counts are integers stored in float64. Their sums are exact
//     (no rounding below 2⁵³), so accumulation order — where the batched
//     level-parallel order differs from scalar BFS discovery order — cannot
//     change a single bit. This is the same argument the direction-
//     optimizing sweep relies on.
//   - Per lane, the backward dependency sums add successor terms in
//     adjacency (sg.Out) order, the scalar engine's order, and the α/β
//     seeds fold in at the same position in the sequence; float64 operations
//     therefore replay the scalar engine's instruction stream operand for
//     operand.
//   - Each lane's finished contribution is staged in a per-lane BC slot and
//     folded into the sub-graph accumulator per vertex in ascending lane
//     order after the batch — lane order is root order, so every BC slot
//     sees the exact addition sequence the scalar engine produces running
//     those roots one after another.
//
// # Memory and reset discipline
//
// Level masks are stored sparsely — per level, a list of (vertex, mask)
// pairs in discovery order — so a batch costs O(visited incidences) extra
// memory, not O(levels·|V|). One dense lane-mask scratch array (ws.LaneFront)
// serves as the random-access view: the forward pass accumulates each next
// level in it and converts to sparse form at the level barrier; the backward
// pass replays each level's sparse list back into it while descending.
// All per-vertex state honours the arena's sparse-reset contract: the kernel
// walks only the vertices the batch touched, and the per-lane δ/BC arrays
// need no reset at all because every visited (vertex, lane) slot is written
// before it is read.
package msbfs

import (
	"math/bits"

	"repro/internal/decompose"
	"repro/internal/ws"
)

// LaneWidth is the maximum batch size: one root per bit of a lane word.
const LaneWidth = ws.LaneWidth

// level is one recorded BFS depth: the vertices some lane first reached at
// this depth, in discovery order, with the lane masks parallel to them.
type level struct {
	verts []int32
	masks []uint64
}

// Kernel runs bit-parallel multi-source APGRE sweeps over one sub-graph at a
// time. It is single-threaded scratch, one per worker, reusable across
// batches and sub-graphs of any size; the per-vertex numeric state lives in
// the ws.Sweep passed to Run, so a pooled arena serves the kernel exactly as
// it serves the scalar engines.
type Kernel struct {
	// Per-lane root metadata, filled at the start of every batch.
	rootAt  [LaneWidth]int32
	beta    [LaneWidth]float64
	gamma   [LaneWidth]float64
	artMask uint64 // lanes whose root is a boundary articulation point

	levels  []level
	touched []int32 // vertices reached by any lane this batch, in first-seen order
}

// grow returns the d-th level, extending the level list as needed. Callers
// rely on Run's end-of-batch truncation for freshness.
func (k *Kernel) grow(d int) *level {
	for len(k.levels) <= d {
		k.levels = append(k.levels, level{})
	}
	return &k.levels[d]
}

// Run executes one batched multi-source sweep: forward σ-BFS from all roots
// at once, the backward four-dependency accumulation with the α/β/γ boundary
// terms per lane, and the in-root-order fold into s.BC. roots must hold at
// most LaneWidth local vertex ids of sg (duplicates are allowed — lanes are
// independent). Returns the traversed-arc count under the engine-wide metric,
// Σ over (root, visited vertex) of the vertex's out-degree.
//
// The scratch s is grown with the lane arrays on demand and returned to its
// clean-slot state before Run returns, so the caller's pooled-sweep
// discipline is unchanged.
func (k *Kernel) Run(sg *decompose.Subgraph, roots []int32, directed bool, s *ws.Sweep) int64 {
	if len(roots) == 0 {
		return 0
	}
	if len(roots) > LaneWidth {
		panic("msbfs: batch exceeds LaneWidth roots")
	}
	s.GrowLanes(sg.NumVerts())
	sigma := s.LaneSigma
	seen := s.LaneSeen
	dense := s.LaneFront

	k.artMask = 0
	for l, r := range roots {
		k.rootAt[l] = r
		k.beta[l] = sg.Beta[r]
		k.gamma[l] = float64(sg.Gamma[r])
		if sg.IsArt[r] {
			k.artMask |= 1 << uint(l)
		}
	}
	k.touched = k.touched[:0]

	// Depth 0: seed every root's lane. The dense scratch deduplicates
	// repeated root vertices exactly as it deduplicates a level's frontier.
	lv0 := k.grow(0)
	for l, r := range roots {
		if dense[r] == 0 {
			lv0.verts = append(lv0.verts, r)
		}
		dense[r] |= 1 << uint(l)
		sigma[int(r)*LaneWidth+l] = 1
	}
	for _, r := range lv0.verts {
		m := dense[r]
		lv0.masks = append(lv0.masks, m)
		k.touched = append(k.touched, r)
		seen[r] = m
		dense[r] = 0
	}

	// Forward: one shared pass over the CSR per depth level of the batch.
	last := 0
	for d := 0; ; d++ {
		curVerts, curMasks := k.levels[d].verts, k.levels[d].masks
		nxt := k.grow(d + 1)
		for i, u := range curVerts {
			um := curMasks[i]
			ub := int(u) * LaneWidth
			for _, w := range sg.Out(u) {
				prop := um &^ seen[w]
				if prop == 0 {
					continue
				}
				if dense[w] == 0 {
					nxt.verts = append(nxt.verts, w)
				}
				dense[w] |= prop
				wb := int(w) * LaneWidth
				if prop == ^uint64(0) {
					// All 64 lanes step together: a straight-line block add.
					sw, su := sigma[wb:wb+LaneWidth], sigma[ub:ub+LaneWidth]
					for l := range sw {
						sw[l] += su[l]
					}
				} else {
					for m := prop; m != 0; m &= m - 1 {
						l := bits.TrailingZeros64(m)
						sigma[wb+l] += sigma[ub+l]
					}
				}
			}
		}
		// Level barrier: freeze the next frontier into sparse form, publish
		// its lanes to seen, and hand the dense scratch back clean.
		for _, w := range nxt.verts {
			m := dense[w]
			nxt.masks = append(nxt.masks, m)
			if seen[w] == 0 {
				k.touched = append(k.touched, w)
			}
			seen[w] |= m
			dense[w] = 0
		}
		if len(nxt.verts) == 0 {
			last = d
			break
		}
	}

	k.backward(sg, directed, s, last)

	// Fold finished per-lane contributions into the sub-graph accumulator in
	// ascending lane (= root) order per vertex, count traversed arcs, and
	// sparse-reset σ and seen. The δ and BC lane arrays are assign-only.
	bcLane := s.LaneBC
	bc := s.BC
	var traversed int64
	for _, v := range k.touched {
		m := seen[v]
		vb := int(v) * LaneWidth
		traversed += int64(len(sg.Out(v))) * int64(bits.OnesCount64(m))
		if m == ^uint64(0) {
			x := bc[v]
			for l := vb; l < vb+LaneWidth; l++ {
				x += bcLane[l]
				sigma[l] = 0
			}
			bc[v] = x
		} else {
			for ; m != 0; m &= m - 1 {
				l := vb + bits.TrailingZeros64(m)
				bc[v] += bcLane[l]
				sigma[l] = 0
			}
		}
		seen[v] = 0
	}
	for d := range k.levels {
		k.levels[d].verts = k.levels[d].verts[:0]
		k.levels[d].masks = k.levels[d].masks[:0]
	}
	return traversed
}

// backward runs the four-dependency accumulation over the recorded levels,
// deepest first. On entry the dense scratch is all zero (= the successor
// masks of the empty level past last); while descending it always holds the
// lane masks of level d+1 when level d is being processed.
func (k *Kernel) backward(sg *decompose.Subgraph, directed bool, s *ws.Sweep, last int) {
	sigma := s.LaneSigma
	dense := s.LaneFront
	di2i, di2o, do2o := s.LaneDi2i, s.LaneDi2o, s.LaneDo2o
	bcLane := s.LaneBC
	art := k.artMask
	for d := last; d >= 0; d-- {
		lvVerts, lvMasks := k.levels[d].verts, k.levels[d].masks
		for i, v := range lvVerts {
			vm := lvMasks[i]
			vb := int(v) * LaneWidth
			// Zero this vertex's active accumulator slots; like the scalar
			// engine's locals, they then collect successor terms in sg.Out
			// order before the seeds fold in.
			for m := vm; m != 0; m &= m - 1 {
				l := vb + bits.TrailingZeros64(m)
				di2i[l] = 0
				di2o[l] = 0
			}
			for m := vm & art; m != 0; m &= m - 1 {
				do2o[vb+bits.TrailingZeros64(m)] = 0
			}
			for _, w := range sg.Out(v) {
				sm := vm & dense[w]
				if sm == 0 {
					continue
				}
				wb := int(w) * LaneWidth
				for ; sm != 0; sm &= sm - 1 {
					l := bits.TrailingZeros64(sm)
					r := sigma[vb+l] / sigma[wb+l]
					di2i[vb+l] += r * (1 + di2i[wb+l])
					di2o[vb+l] += r * di2o[wb+l]
					if art&(1<<uint(l)) != 0 {
						do2o[vb+l] += r * do2o[wb+l]
					}
				}
			}
			isArtV := sg.IsArt[v]
			alphaV := sg.Alpha[v]
			for m := vm; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				sIsArt := art&(1<<uint(l)) != 0
				if v != k.rootAt[l] {
					if isArtV {
						di2o[vb+l] += alphaV // δ_i2o seed (Eq. 4)
						if sIsArt {
							do2o[vb+l] += k.beta[l] * alphaV // δ_o2o seed (Eq. 6)
						}
					}
					i2i, i2o := di2i[vb+l], di2o[vb+l]
					var o2o float64
					if sIsArt {
						o2o = do2o[vb+l]
					}
					contrib := (1+k.gamma[l])*(i2i+i2o) + o2o
					if sIsArt {
						contrib += k.beta[l] * i2i // δ_o2i = β(s)·δ_i2i (Eq. 5)
					}
					bcLane[vb+l] = contrib
				} else if k.gamma[l] > 0 {
					root := di2i[vb+l] + di2o[vb+l]
					if sIsArt {
						root += alphaV // see serialState.runRoot
					}
					if !directed {
						root-- // undirected folded-leaf correction (DESIGN.md §1)
					}
					bcLane[vb+l] = k.gamma[l] * root
				} else {
					// The scalar engine adds nothing for this root vertex;
					// write the zero so the fold reads a defined slot.
					bcLane[vb+l] = 0
				}
			}
		}
		// Roll the dense successor view down one level: drop level d+1's
		// masks, publish level d's for the next iteration.
		if d < last {
			for _, w := range k.levels[d+1].verts {
				dense[w] = 0
			}
		}
		for i, v := range lvVerts {
			dense[v] = lvMasks[i]
		}
	}
	// Level 0's masks are still published; return the scratch clean.
	for _, v := range k.levels[0].verts {
		dense[v] = 0
	}
}
