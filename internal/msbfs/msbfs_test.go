package msbfs_test

import (
	"math"
	"testing"

	"repro/internal/brandes"
	"repro/internal/decompose"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/msbfs"
	"repro/internal/ws"
)

// testGraphs mirrors the nine-family equivalence suite used across the repo,
// plus a disconnected graph (two components and isolated vertices), which
// the kernel must handle: lanes whose root cannot reach a vertex simply never
// set their bit there.
func testGraphs() map[string]*graph.Graph {
	disc := graph.NewFromEdges(30, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 0},
		{From: 2, To: 4}, {From: 4, To: 5},
		// second component: a small clique with a tail
		{From: 10, To: 11}, {From: 11, To: 12}, {From: 12, To: 10},
		{From: 12, To: 13}, {From: 13, To: 14},
		// vertices 15..29 isolated
	}, false)
	return map[string]*graph.Graph{
		"path":     gen.Path(20),
		"star":     gen.Star(20),
		"lollipop": gen.Lollipop(6, 10),
		"tree":     gen.Tree(50, 1),
		"caveman":  gen.Caveman(4, 6, false),
		"grid":     gen.Grid2D(6, 6),
		"social": gen.SocialLike(gen.SocialParams{
			N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3, Seed: 1}),
		"socialDir": gen.SocialLike(gen.SocialParams{
			N: 400, AvgDeg: 5, Communities: 6, TopShare: 0.5, LeafFrac: 0.3,
			Directed: true, Reciprocity: 0.5, Seed: 2}),
		"er":           gen.ErdosRenyi(300, 900, false, 7),
		"disconnected": disc,
	}
}

// runBatched computes full BC for g by decomposing and feeding every
// sub-graph's root set to the kernel in batches of the given width — the
// kernel-level equivalent of core.Compute with the msbfs engine.
func runBatched(t *testing.T, g *graph.Graph, width int) []float64 {
	t.Helper()
	d, err := decompose.Decompose(g, decompose.Options{Threshold: 8})
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	bc := make([]float64, g.NumVertices())
	var k msbfs.Kernel
	var sw ws.Sweep
	directed := g.Directed()
	for _, sg := range d.Subgraphs {
		n := sg.NumVerts()
		sw.GrowLanes(n)
		for lo := 0; lo < len(sg.Roots); lo += width {
			hi := lo + width
			if hi > len(sg.Roots) {
				hi = len(sg.Roots)
			}
			k.Run(sg, sg.Roots[lo:hi], directed, &sw)
		}
		for l, v := range sg.Verts {
			bc[v] += sw.BC[l]
			sw.BC[l] = 0
		}
	}
	if err := sw.CheckClean(); err != nil {
		t.Fatalf("sweep dirty after batched runs: %v", err)
	}
	return bc
}

func bcClose(want, got []float64, tol float64) (int, bool) {
	for i := range want {
		diff := math.Abs(want[i] - got[i])
		if scale := math.Abs(want[i]); scale > 1 {
			diff /= scale
		}
		if diff > tol {
			return i, false
		}
	}
	return -1, true
}

// TestKernelMatchesBrandes checks the batched kernel against serial Brandes
// on every family, at a full batch width, a width that does not divide the
// root count, and single-lane batches.
func TestKernelMatchesBrandes(t *testing.T) {
	for name, g := range testGraphs() {
		want := brandes.Serial(g)
		for _, width := range []int{msbfs.LaneWidth, 7, 1} {
			got := runBatched(t, g, width)
			if i, ok := bcClose(want, got, 1e-9); !ok {
				t.Fatalf("%s width=%d: kernel differs from Brandes at vertex %d: want %v got %v",
					name, width, i, want[i], got[i])
			}
		}
	}
}

// TestKernelBatchWidthBitInvariant pins the package's central claim: the
// batch width cannot change a single output bit, because σ sums are exact
// integer arithmetic and per-lane float sequences replay the scalar order.
// Width 1 is the scalar engine's one-root-at-a-time schedule; 64 and the
// non-dividing 7 must match it bit for bit.
func TestKernelBatchWidthBitInvariant(t *testing.T) {
	for name, g := range testGraphs() {
		base := runBatched(t, g, 1)
		for _, width := range []int{7, msbfs.LaneWidth} {
			got := runBatched(t, g, width)
			for v := range base {
				if math.Float64bits(base[v]) != math.Float64bits(got[v]) {
					t.Fatalf("%s: width %d differs from width 1 at vertex %d: %v vs %v",
						name, width, v, base[v], got[v])
				}
			}
		}
	}
}

// TestKernelDuplicateRoots verifies that lanes are independent even when a
// batch repeats a root: running {r, r} must produce exactly twice running
// {r} (addition of equal floats is exact doubling only in sum order — here
// both lanes produce identical contributions, folded in lane order, which
// equals running the root twice sequentially).
func TestKernelDuplicateRoots(t *testing.T) {
	g := gen.Lollipop(5, 5)
	d, err := decompose.Decompose(g, decompose.Options{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	var k msbfs.Kernel
	var once, twice ws.Sweep
	for _, sg := range d.Subgraphs {
		if len(sg.Roots) == 0 {
			continue
		}
		r := sg.Roots[0]
		k.Run(sg, []int32{r}, false, &once)
		k.Run(sg, []int32{r}, false, &once)
		k.Run(sg, []int32{r, r}, false, &twice)
		n := sg.NumVerts()
		for l := 0; l < n; l++ {
			if math.Float64bits(once.BC[l]) != math.Float64bits(twice.BC[l]) {
				t.Fatalf("sg %d vertex %d: sequential %v, duplicate-lane batch %v",
					sg.ID, l, once.BC[l], twice.BC[l])
			}
			once.BC[l], twice.BC[l] = 0, 0
		}
	}
}

// TestKernelTraversedMetric pins the traversed-arc accounting to the scalar
// definition: Σ over (root, visited vertex) of out-degree. On a path graph
// every root visits every vertex of its sub-graph.
func TestKernelTraversedMetric(t *testing.T) {
	g := gen.Complete(8) // one biconnected block, no decomposition splits
	d, err := decompose.Decompose(g, decompose.Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Subgraphs) != 1 {
		t.Fatalf("complete graph decomposed into %d sub-graphs", len(d.Subgraphs))
	}
	sg := d.Subgraphs[0]
	var k msbfs.Kernel
	var sw ws.Sweep
	traversed := k.Run(sg, sg.Roots, false, &sw)
	// Every root visits all 8 vertices, each of out-degree 7.
	want := int64(len(sg.Roots)) * 8 * 7
	if traversed != want {
		t.Fatalf("traversed = %d, want %d", traversed, want)
	}
	for l := range sw.BC[:sg.NumVerts()] {
		sw.BC[l] = 0
	}
	if err := sw.CheckClean(); err != nil {
		t.Fatalf("sweep dirty: %v", err)
	}
}

// TestKernelEmptyAndOversizedBatch covers the contract edges: an empty batch
// is a no-op, a batch beyond LaneWidth panics.
func TestKernelEmptyAndOversizedBatch(t *testing.T) {
	g := gen.Path(4)
	d, err := decompose.Decompose(g, decompose.Options{Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	sg := d.Subgraphs[0]
	var k msbfs.Kernel
	var sw ws.Sweep
	if got := k.Run(sg, nil, false, &sw); got != 0 {
		t.Fatalf("empty batch traversed %d arcs", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized batch did not panic")
		}
	}()
	k.Run(sg, make([]int32, msbfs.LaneWidth+1), false, &sw)
}
