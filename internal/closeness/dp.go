package closeness

import (
	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/par"
)

// The distance-sum DP. For each incidence (sub-graph SGj, boundary AP a)
// define the directed quantity
//
//	E(a→SGj) = Σ_{t in the tree component on SGj's side of the edge} dist(a, t)
//	         = W_j(a) + Σ_{b ∈ A_j, b≠a} [ dist_j(a,b)·α_j(b) + S_j(b) ]
//
// with W_j(a) = Σ_{t∈SGj} dist_j(a,t) and S_j(b) = Σ_{SGk ∋ b, k≠j} E(b→SGk).
// The sub-graph/AP incidence structure is a forest, so the dependencies are
// acyclic and one memoized traversal computes every E.
type distDP struct {
	d *decompose.Decomposition
	// per sub-graph, parallel to sg.Arts: W_j(a) and dist_j(a, b) tables.
	w      [][]float64
	distAP [][][]int32
	// incidences of each boundary AP: (sub-graph index, position in Arts).
	incsOf map[graph.V][]incRef
	// e[si][k] = E(a→SG_si) for a = Arts[k].
	e [][]float64
	// done[si][k] marks computed entries.
	done [][]bool
}

type incRef struct {
	si int
	k  int // index into Subgraphs[si].Arts
}

// buildDistanceDP precomputes the per-sub-graph AP distance tables (one BFS
// per AP per sub-graph, parallel across sub-graphs) and resolves the DP.
func buildDistanceDP(d *decompose.Decomposition, workers int) *distDP {
	dp := &distDP{
		d:      d,
		w:      make([][]float64, len(d.Subgraphs)),
		distAP: make([][][]int32, len(d.Subgraphs)),
		incsOf: map[graph.V][]incRef{},
		e:      make([][]float64, len(d.Subgraphs)),
		done:   make([][]bool, len(d.Subgraphs)),
	}
	for si, sg := range d.Subgraphs {
		dp.w[si] = make([]float64, len(sg.Arts))
		dp.distAP[si] = make([][]int32, len(sg.Arts))
		dp.e[si] = make([]float64, len(sg.Arts))
		dp.done[si] = make([]bool, len(sg.Arts))
		for k, la := range sg.Arts {
			dp.incsOf[sg.Verts[la]] = append(dp.incsOf[sg.Verts[la]], incRef{si, k})
		}
	}

	// Per-AP BFS tables.
	p := par.Workers(workers)
	scratches := make([]*bfsScratch, p)
	par.ForWorker(len(d.Subgraphs), p, 1, func(wk, si int) {
		sc := scratches[wk]
		if sc == nil {
			sc = &bfsScratch{}
			scratches[wk] = sc
		}
		sg := d.Subgraphs[si]
		sc.ensure(sg.NumVerts())
		for k, la := range sg.Arts {
			sum, _ := sc.bfsSums(sg, la)
			dp.w[si][k] = sum
			row := make([]int32, len(sg.Arts))
			for k2, lb := range sg.Arts {
				row[k2] = sc.dist[lb] // -1 if unreachable (cannot happen: connected)
			}
			dp.distAP[si][k] = row
		}
		sc.sparseReset()
	})

	dp.resolve()
	return dp
}

// resolve computes every E with an explicit-stack memoized traversal.
func (dp *distDP) resolve() {
	type frame struct{ si, k int }
	var stack []frame
	for si := range dp.e {
		for k := range dp.e[si] {
			if dp.done[si][k] {
				continue
			}
			stack = append(stack[:0], frame{si, k})
			for len(stack) > 0 {
				f := stack[len(stack)-1]
				if dp.done[f.si][f.k] {
					stack = stack[:len(stack)-1]
					continue
				}
				// Dependencies: for every other AP b of SG_f.si, every
				// incidence of b outside SG_f.si.
				ready := true
				sg := dp.d.Subgraphs[f.si]
				for k2 := range sg.Arts {
					if k2 == f.k {
						continue
					}
					for _, inc := range dp.incsOf[sg.Verts[sg.Arts[k2]]] {
						if inc.si == f.si {
							continue
						}
						if !dp.done[inc.si][inc.k] {
							stack = append(stack, frame{inc.si, inc.k})
							ready = false
						}
					}
				}
				if !ready {
					continue
				}
				// All inputs available: evaluate.
				val := dp.w[f.si][f.k]
				for k2, lb := range sg.Arts {
					if k2 == f.k {
						continue
					}
					dAB := dp.distAP[f.si][f.k][k2]
					if dAB < 0 {
						continue
					}
					val += float64(dAB)*sg.Alpha[lb] + dp.sBeyond(f.si, sg.Verts[lb])
				}
				dp.e[f.si][f.k] = val
				dp.done[f.si][f.k] = true
				stack = stack[:len(stack)-1]
			}
		}
	}
}

// sBeyond returns S_j(b) = Σ_{SGk ∋ b, k≠j} E(b→SGk); callers guarantee the
// inputs are resolved.
func (dp *distDP) sBeyond(si int, b graph.V) float64 {
	var s float64
	for _, inc := range dp.incsOf[b] {
		if inc.si != si {
			s += dp.e[inc.si][inc.k]
		}
	}
	return s
}

// beyondSum returns Σ_{t beyond AP a, away from SG_si} dist(a, t) — the
// cross term the farness assembly adds per boundary AP.
func (dp *distDP) beyondSum(si int, a graph.V) float64 {
	return dp.sBeyond(si, a)
}
