package closeness

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func assertResultsEqual(t *testing.T, g *graph.Graph, label string) {
	t.Helper()
	want := Exact(g, 2)
	got, err := Decomposed(g, Options{Workers: 2, Threshold: 4})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	for v := range want.Farness {
		if math.Abs(want.Farness[v]-got.Farness[v]) > 1e-9*(1+want.Farness[v]) {
			t.Fatalf("%s: farness differs at %d: %v vs %v", label, v,
				want.Farness[v], got.Farness[v])
		}
		if want.Reach[v] != got.Reach[v] {
			t.Fatalf("%s: reach differs at %d: %v vs %v", label, v,
				want.Reach[v], got.Reach[v])
		}
		if math.Abs(want.Closeness[v]-got.Closeness[v]) > 1e-9 {
			t.Fatalf("%s: closeness differs at %d", label, v)
		}
	}
}

func TestExactPath(t *testing.T) {
	res := Exact(gen.Path(5), 1)
	// Vertex 0: 1+2+3+4 = 10; vertex 2: 2+1+1+2 = 6.
	if res.Farness[0] != 10 || res.Farness[2] != 6 {
		t.Fatalf("farness = %v", res.Farness)
	}
	if res.Reach[0] != 4 {
		t.Fatalf("reach = %v", res.Reach)
	}
	if res.Closeness[2] != 4.0/6.0 {
		t.Fatalf("closeness[2] = %v", res.Closeness[2])
	}
}

func TestExactDirected(t *testing.T) {
	g := graph.NewFromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}}, true)
	res := Exact(g, 1)
	if res.Farness[0] != 3 || res.Reach[0] != 2 {
		t.Fatalf("source farness/reach = %v/%v", res.Farness[0], res.Reach[0])
	}
	if res.Farness[2] != 0 || res.Closeness[2] != 0 {
		t.Fatalf("sink should have zero closeness: %v", res.Farness[2])
	}
}

func TestDecomposedMatchesExact(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":     gen.Path(20),
		"star":     gen.Star(15),
		"cycle":    gen.Cycle(12),
		"lollipop": gen.Lollipop(6, 8),
		"caveman":  gen.Caveman(4, 5, false),
		"tree":     gen.Tree(60, 1),
		"social": gen.SocialLike(gen.SocialParams{N: 400, AvgDeg: 4, Communities: 7,
			TopShare: 0.4, LeafFrac: 0.35, Seed: 2}),
		"road": gen.RoadLike(gen.RoadParams{Rows: 8, Cols: 9, DeleteFrac: 0.12,
			SpurFrac: 0.2, SpurLen: 2, Seed: 3}),
		"grid": gen.Grid2D(6, 6),
		"K2":   graph.NewFromEdges(2, []graph.Edge{{From: 0, To: 1}}, false),
	}
	for label, g := range cases {
		assertResultsEqual(t, g, label)
	}
}

func TestDecomposedDisconnected(t *testing.T) {
	// Two components, one with leaves.
	edges := append(gen.Star(6).Edges(),
		graph.Edge{From: 6, To: 7}, graph.Edge{From: 7, To: 8})
	g := graph.NewFromEdges(9, edges, false)
	assertResultsEqual(t, g, "disconnected")
}

func TestDecomposedRejectsDirected(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, true, 1)
	if _, err := Decomposed(g, Options{}); err == nil {
		t.Fatal("expected error for directed input")
	}
}

func TestDecomposedEmpty(t *testing.T) {
	res, err := Decomposed(graph.NewFromEdges(0, nil, false), Options{})
	if err != nil || len(res.Farness) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
}

// Property: decomposed closeness equals exact closeness on random social
// graphs across thresholds.
func TestQuickDecomposedEquivalence(t *testing.T) {
	f := func(seed int64, thRaw uint8) bool {
		th := []int{1, 4, 64}[int(thRaw)%3]
		g := gen.SocialLike(gen.SocialParams{N: 150, AvgDeg: 4, Communities: 5,
			TopShare: 0.4, LeafFrac: 0.3, Seed: seed})
		want := Exact(g, 1)
		got, err := Decomposed(g, Options{Threshold: th})
		if err != nil {
			return false
		}
		for v := range want.Farness {
			if math.Abs(want.Farness[v]-got.Farness[v]) > 1e-9*(1+want.Farness[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStarCloseness(t *testing.T) {
	got, err := Decomposed(gen.Star(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Hub: farness 9; leaves: 1 + 2*8 = 17.
	if got.Farness[0] != 9 {
		t.Fatalf("hub farness = %v", got.Farness[0])
	}
	for v := 1; v < 10; v++ {
		if got.Farness[v] != 17 {
			t.Fatalf("leaf farness = %v", got.Farness[v])
		}
	}
}

func TestHarmonicPath(t *testing.T) {
	// Path 0-1-2: H(0) = 1 + 1/2; H(1) = 2.
	g := gen.Path(3)
	h := Harmonic(g, 1)
	if math.Abs(h[0]-1.5) > 1e-12 || math.Abs(h[1]-2) > 1e-12 {
		t.Fatalf("harmonic = %v", h)
	}
}

func TestHarmonicDisconnected(t *testing.T) {
	// Harmonic handles disconnection gracefully (unreachable adds 0).
	g := graph.NewFromEdges(4, []graph.Edge{{From: 0, To: 1}}, false)
	h := Harmonic(g, 2)
	if h[0] != 1 || h[2] != 0 {
		t.Fatalf("harmonic = %v", h)
	}
}

func TestHarmonicDirected(t *testing.T) {
	g := graph.NewFromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}}, true)
	h := Harmonic(g, 1)
	if math.Abs(h[0]-1.5) > 1e-12 || h[2] != 0 {
		t.Fatalf("harmonic = %v", h)
	}
}

func TestHarmonicMatchesBruteOnSocial(t *testing.T) {
	g := gen.SocialLike(gen.SocialParams{N: 150, AvgDeg: 4, Communities: 4,
		TopShare: 0.5, LeafFrac: 0.3, Seed: 12})
	h := Harmonic(g, 3)
	// Independent check via the Exact closeness BFS distances for a few
	// sources.
	for _, s := range []graph.V{0, 10, 149} {
		want := 0.0
		dist := bfsDistances(g, s)
		for _, d := range dist {
			if d > 0 {
				want += 1 / float64(d)
			}
		}
		if math.Abs(h[s]-want) > 1e-9 {
			t.Fatalf("harmonic[%d] = %v, want %v", s, h[s], want)
		}
	}
}

func bfsDistances(g *graph.Graph, s graph.V) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []graph.V{s}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Out(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
