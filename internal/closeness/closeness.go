// Package closeness computes closeness centrality, and demonstrates that the
// paper's articulation-point decomposition accelerates centralities beyond
// betweenness: for any vertex s in sub-graph SGi and any target t beyond a
// boundary articulation point a, dist(s,t) = dist_SGi(s,a) + dist(a,t), so
// one BFS per vertex *within its sub-graph* plus a distance-sum DP over the
// sub-graph/articulation-point tree replaces one BFS per vertex over the
// whole graph. The γ total-redundancy folding carries over too: a degree-1
// leaf u attached to s has farness(u) = farness(s) + n_component − 2.
package closeness

import (
	"fmt"

	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/par"
)

// Result holds per-vertex closeness data. Farness is the sum of distances to
// every reachable vertex; Reach the number of reachable vertices (excluding
// the vertex itself); Closeness the classic (Reach)/(Farness) score
// normalized by component, i.e. Reach²/((n-1)·Farness) in Wasserman–Faust
// form is left to callers — we report the simple Reach/Farness, 0 for
// isolated vertices.
type Result struct {
	Farness   []float64
	Reach     []int64
	Closeness []float64
}

func newResult(n int) *Result {
	return &Result{
		Farness:   make([]float64, n),
		Reach:     make([]int64, n),
		Closeness: make([]float64, n),
	}
}

func (r *Result) finish() {
	for v := range r.Farness {
		if r.Farness[v] > 0 {
			r.Closeness[v] = float64(r.Reach[v]) / r.Farness[v]
		}
	}
}

// Exact computes closeness with one BFS per vertex (the baseline the
// decomposed variant is verified against). Works for directed graphs too,
// summing over forward-reachable targets.
func Exact(g *graph.Graph, workers int) *Result {
	n := g.NumVertices()
	res := newResult(n)
	p := par.Workers(workers)
	type scratch struct {
		dist  []int32
		queue []graph.V
	}
	scratches := make([]*scratch, p)
	par.ForWorker(n, p, 64, func(w, si int) {
		sc := scratches[w]
		if sc == nil {
			sc = &scratch{dist: make([]int32, n)}
			for i := range sc.dist {
				sc.dist[i] = -1
			}
			scratches[w] = sc
		}
		s := graph.V(si)
		sc.queue = append(sc.queue[:0], s)
		sc.dist[s] = 0
		var far float64
		var reach int64
		for head := 0; head < len(sc.queue); head++ {
			u := sc.queue[head]
			for _, v := range g.Out(u) {
				if sc.dist[v] < 0 {
					sc.dist[v] = sc.dist[u] + 1
					far += float64(sc.dist[v])
					reach++
					sc.queue = append(sc.queue, v)
				}
			}
		}
		res.Farness[s] = far
		res.Reach[s] = reach
		for _, v := range sc.queue {
			sc.dist[v] = -1
		}
	})
	res.finish()
	return res
}

// Options configures Decomposed.
type Options struct {
	Workers   int
	Threshold int
}

// Decomposed computes exact closeness on an undirected graph through the
// articulation-point decomposition. Directed graphs are rejected (forward
// and reverse distance sums would need separate DPs; future work).
func Decomposed(g *graph.Graph, opt Options) (*Result, error) {
	if g.Directed() {
		return nil, fmt.Errorf("closeness: Decomposed requires an undirected graph")
	}
	n := g.NumVertices()
	res := newResult(n)
	if n == 0 {
		return res, nil
	}
	d, err := decompose.Decompose(g, decompose.Options{
		Threshold: opt.Threshold, Workers: opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	labels, compCount := graph.ConnectedComponents(g)
	compSize := make([]int64, compCount)
	for _, l := range labels {
		compSize[l]++
	}

	dp := buildDistanceDP(d, opt.Workers)

	// Per-sub-graph farness assembly: one BFS per root within the sub-graph,
	// plus the precomputed cross terms. Sub-graphs run in parallel; each
	// vertex's farness is owned by one sub-graph run (shared APs are
	// assembled only in their first sub-graph).
	p := par.Workers(opt.Workers)
	assembled := make([]int32, n) // epoch: -1 not yet; used to claim APs
	for i := range assembled {
		assembled[i] = -1
	}
	// Claim pass (sequential, cheap): vertex assembled by first sub-graph
	// containing it.
	for si, sg := range d.Subgraphs {
		for _, v := range sg.Verts {
			if assembled[v] < 0 {
				assembled[v] = int32(si)
			}
		}
	}
	scratches := make([]*bfsScratch, p)
	par.ForWorker(len(d.Subgraphs), p, 1, func(w, si int) {
		sc := scratches[w]
		if sc == nil {
			sc = &bfsScratch{}
			scratches[w] = sc
		}
		sg := d.Subgraphs[si]
		sc.ensure(sg.NumVerts())
		// Cross-term constants for this sub-graph: for each boundary AP a,
		// its beyond-count α and beyond-distance-sum S.
		type cross struct {
			la    int32
			alpha float64
			s     float64
		}
		var crosses []cross
		for _, la := range sg.Arts {
			crosses = append(crosses, cross{
				la:    la,
				alpha: sg.Alpha[la],
				s:     dp.beyondSum(si, sg.Verts[la]),
			})
		}
		for _, ls := range sg.Roots {
			v := sg.Verts[ls]
			if assembled[v] != int32(si) {
				continue // AP assembled by an earlier sub-graph
			}
			inner, _ := sc.bfsSums(sg, ls)
			far := inner
			for _, c := range crosses {
				dla := sc.dist[c.la]
				if dla < 0 {
					continue // other component inside a (merged) sub-graph
				}
				far += float64(dla)*c.alpha + c.s
			}
			res.Farness[v] = far
			res.Reach[v] = compSize[labels[v]] - 1
		}
		sc.sparseReset()
	})

	// γ-folded leaves: farness(u) = farness(s) + n_c − 2.
	for _, sg := range d.Subgraphs {
		inRoots := make(map[int32]bool, len(sg.Roots))
		for _, l := range sg.Roots {
			inRoots[l] = true
		}
		for l, v := range sg.Verts {
			if inRoots[int32(l)] {
				continue
			}
			s := g.Out(v)[0] // single neighbour by construction
			res.Farness[v] = res.Farness[s] + float64(compSize[labels[v]]-2)
			res.Reach[v] = compSize[labels[v]] - 1
		}
	}
	res.finish()
	return res, nil
}

// bfsScratch runs sub-graph-local BFS keeping the dist array for cross-term
// lookups until sparseReset.
type bfsScratch struct {
	alloc int
	dist  []int32
	queue []int32
	seen  []int32
}

func (sc *bfsScratch) ensure(n int) {
	if sc.alloc >= n {
		return
	}
	sc.alloc = n
	sc.dist = make([]int32, n)
	for i := range sc.dist {
		sc.dist[i] = -1
	}
}

// bfsSums BFSes sg from local root s and returns (Σ dist, #reached beyond s).
// sc.dist stays valid until sparseReset.
func (sc *bfsScratch) bfsSums(sg *decompose.Subgraph, s int32) (float64, int64) {
	sc.sparseReset()
	sc.queue = append(sc.queue[:0], s)
	sc.seen = append(sc.seen[:0], s)
	sc.dist[s] = 0
	var sum float64
	var reach int64
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		for _, v := range sg.Out(u) {
			if sc.dist[v] < 0 {
				sc.dist[v] = sc.dist[u] + 1
				sum += float64(sc.dist[v])
				reach++
				sc.queue = append(sc.queue, v)
				sc.seen = append(sc.seen, v)
			}
		}
	}
	return sum, reach
}

func (sc *bfsScratch) sparseReset() {
	for _, v := range sc.seen {
		sc.dist[v] = -1
	}
	sc.seen = sc.seen[:0]
}
