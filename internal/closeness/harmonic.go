package closeness

import (
	"repro/internal/graph"
	"repro/internal/par"
)

// Harmonic computes harmonic centrality H(v) = Σ_{t≠v} 1/dist(v,t)
// (unreachable targets contribute 0), the disconnected-robust alternative to
// classic closeness. The reciprocal does not factor through articulation
// points (1/(d1+d2) ≠ f(d1)+g(d2)), so no decomposition shortcut exists and
// the computation is one BFS per vertex, parallelized over sources.
func Harmonic(g *graph.Graph, workers int) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	p := par.Workers(workers)
	type scratch struct {
		dist  []int32
		queue []graph.V
	}
	scratches := make([]*scratch, p)
	par.ForWorker(n, p, 64, func(w, si int) {
		sc := scratches[w]
		if sc == nil {
			sc = &scratch{dist: make([]int32, n)}
			for i := range sc.dist {
				sc.dist[i] = -1
			}
			scratches[w] = sc
		}
		s := graph.V(si)
		sc.queue = append(sc.queue[:0], s)
		sc.dist[s] = 0
		var h float64
		for head := 0; head < len(sc.queue); head++ {
			u := sc.queue[head]
			for _, v := range g.Out(u) {
				if sc.dist[v] < 0 {
					sc.dist[v] = sc.dist[u] + 1
					h += 1 / float64(sc.dist[v])
					sc.queue = append(sc.queue, v)
				}
			}
		}
		out[s] = h
		for _, v := range sc.queue {
			sc.dist[v] = -1
		}
	})
	return out
}
