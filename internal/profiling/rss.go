package profiling

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// PeakRSSBytes reports the process's peak resident set size. On Linux it
// reads VmHWM from /proc/self/status — the kernel's high-water mark, which
// includes memory-mapped file pages that were actually touched (exactly what
// the scale pipeline's load probes need: a zero-copy mmap load only "costs"
// the pages the validator faulted in). Elsewhere it falls back to
// runtime.MemStats.Sys, the Go heap's OS footprint — an overestimate that
// misses mapped files, adequate for the portable build only.
func PeakRSSBytes() int64 {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}
