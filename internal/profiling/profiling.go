// Package profiling wires the standard pprof/trace collectors behind the
// -cpuprofile/-memprofile/-trace flags shared by cmd/bc and cmd/bcbench, so
// hot-path work can be profiled without per-command boilerplate.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Session holds the collectors started by Start; Stop finalizes them.
type Session struct {
	cpuFile   *os.File
	traceFile *os.File
	memPath   string
}

// Start begins CPU profiling and execution tracing for every non-empty path
// and remembers where to write the heap profile at Stop. Empty paths are
// skipped, so callers pass flag values through unconditionally.
func Start(cpuPath, memPath, tracePath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		s.cpuFile = f
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			s.Stop()
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			s.Stop()
			return nil, fmt.Errorf("trace: %w", err)
		}
		s.traceFile = f
	}
	return s, nil
}

// Stop flushes every active collector; the first error wins but all
// collectors are still torn down.
func (s *Session) Stop() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.traceFile != nil {
		trace.Stop()
		keep(s.traceFile.Close())
		s.traceFile = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // get up-to-date allocation statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
		s.memPath = ""
	}
	return first
}
