#!/usr/bin/env sh
# ci.sh — the repository's verification gauntlet:
#   1. hygiene: gofmt -l must be clean, go vet ./... must pass
#   2. tier-1: go build ./... && go test ./...
#   3. race pass over the parallel hot paths and the serving subsystem
#      (core, par, brandes, server)
#   4. bcbench -json smoke run on the smallest dataset, then the regression
#      gate self-compared (identical inputs must exit 0)
set -eu
cd "$(dirname "$0")"

echo "==> hygiene: gofmt -l"
unformatted=$(gofmt -l cmd internal examples)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> hygiene: go vet ./..."
go vet ./...

echo "==> tier-1: go build ./... && go test ./..."
go build ./...
go test ./...

echo "==> race: internal/core internal/par internal/brandes internal/server"
go test -race ./internal/core ./internal/par ./internal/brandes ./internal/server

echo "==> bcbench -json smoke (email-enron, scale 0.05)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/bcbench -table 2 -datasets email-enron -scale 0.05 -json "$tmp"
artifact=$(ls "$tmp"/BENCH_*.json)
echo "==> bcbench -check self-compare ($artifact)"
go run ./cmd/bcbench -check -tolerance 5 "$artifact" "$artifact"

echo "ci.sh: all checks passed"
