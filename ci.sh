#!/usr/bin/env sh
# ci.sh — the repository's verification gauntlet:
#   1. hygiene: gofmt -l must be clean, go vet ./... must pass
#   2. tier-1: go build ./... && go test ./...
#   3. godoc gate: every internal package must open with a package comment
#   4. race pass over the parallel hot paths and the serving subsystem
#      (core, par, brandes, approx, server, the ws arena, the msbfs kernel),
#      plus an explicit scheduler gate: the dynamic unit scheduler must match
#      serial Brandes at workers 1, 2, 4 and 8 under -race, and an msbfs
#      gate: the bit-parallel engine must bit-match the scalar engine (and
#      the serial-cutoff fallback must be bit-invisible) under -race
#   5. allocation gates: warm pooled sweeps (core, brandes) and the bcd
#      top-K serving path must be allocation-free, and the workspace pool
#      must survive 8 concurrent checkouts under -race; then a -benchmem
#      benchmark smoke compile-and-run
#   6. bcbench -json smoke run on the smallest dataset, then the regression
#      gate self-compared (identical inputs must exit 0); same for a tiny
#      -engine sweep, whose records carry the /e=<engine> key suffix
#   7. approx smoke: full-budget sampling must bit-match exact BC (the
#      estimator's own K==n self-check on a tiny graph), plus the bcbench
#      error-vs-speedup sweep at tiny scale
#   8. durability smoke: race-built bcd is killed with SIGKILL mid-life and
#      must recover its graph from snapshot+WAL with bit-exact top-K
#   9. load smoke: bcdload drives a short mixed read/mutate phase against the
#      recovered daemon; any non-200/429 answer fails the run
set -eu
cd "$(dirname "$0")"

echo "==> hygiene: gofmt -l"
unformatted=$(gofmt -l cmd internal examples)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> hygiene: go vet ./..."
go vet ./...

echo "==> tier-1: go build ./... && go test ./..."
go build ./...
go test ./...

echo "==> godoc gate: package comments on every internal package"
undocumented=""
for dir in internal/*/ internal/server/promtext/; do
    pkgfiles=$(ls "$dir"*.go 2>/dev/null | grep -v '_test\.go$' || true)
    [ -n "$pkgfiles" ] || continue
    documented=0
    for f in $pkgfiles; do
        # A package comment is a comment line (or block end) immediately
        # above the package clause.
        if awk 'prev ~ /^(\/\/|.*\*\/)/ && $0 ~ /^package / {found=1} {prev=$0} END {exit !found}' "$f"; then
            documented=1
            break
        fi
    done
    if [ "$documented" -eq 0 ]; then
        undocumented="$undocumented $dir"
    fi
done
if [ -n "$undocumented" ]; then
    echo "godoc gate: packages missing a package comment:$undocumented" >&2
    exit 1
fi

echo "==> race: internal/core internal/par internal/brandes internal/approx internal/server internal/ws internal/msbfs"
go test -race ./internal/core ./internal/par ./internal/brandes ./internal/approx ./internal/server ./internal/ws ./internal/msbfs

echo "==> scheduler gate: BC vs serial Brandes at workers 1,2,4(,8) under -race"
# The worker-sweep test runs the dynamic scheduler at workers 1, 2, 4 and 8
# on all nine graph families and asserts the scores match serial Brandes
# within the suite tolerance; the equivalence and determinism tests pin
# static==dynamic and run-to-run bit stability.
go test -race -count=1 \
    -run 'TestSchedulerWorkerSweepMatchesBrandes|TestSchedulerStaticDynamicEquivalent|TestSchedulerDeterministic' \
    ./internal/core

echo "==> msbfs gate: batched engine bit-match vs scalar under -race"
# The kernel suite pins Brandes equivalence and batch-width bit-invariance;
# the core suite pins scalar==msbfs bit-equality at workers 1,2,4,8 across
# all families (directed and disconnected included) and that the
# small-graph serial-cutoff fallback never changes a bit.
go test -race -count=1 \
    -run 'TestKernelMatchesBrandes|TestKernelBatchWidthBitInvariant' \
    ./internal/msbfs
go test -race -count=1 \
    -run 'TestMSBFSEngineBitMatchesScalar|TestMSBFSEngineDeterministic|TestDynamicSerialCutoffBoundary' \
    ./internal/core

echo "==> alloc gates: warm sweeps and the top-K serving path allocate zero"
go test -count=1 \
    -run 'TestRootSweepWarmAllocs|TestSerialSweepWarmAllocs|TestTopKServingWarmAllocs|TestPoolRace' \
    ./internal/core ./internal/brandes ./internal/server ./internal/ws

echo "==> bench smoke: go test -bench -benchmem on the arena-backed paths"
go test -run=NONE -bench=. -benchtime=1x -benchmem ./internal/ws ./internal/core

echo "==> bcbench -json smoke (email-enron, scale 0.05)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/bcbench -table 2 -datasets email-enron -scale 0.05 -json "$tmp"
artifact=$(ls "$tmp"/BENCH_*.json)
echo "==> bcbench -check self-compare ($artifact)"
go run ./cmd/bcbench -check -tolerance 5 "$artifact" "$artifact"

echo "==> bcbench -engine smoke (email-enron, scale 0.05) + -check self-compare"
# The engine sweep cross-checks msbfs against scalar bit-for-bit inside the
# run; the self-compare proves the /e=<engine> record keys round-trip.
go run ./cmd/bcbench -engine -datasets email-enron -scale 0.05 -json "$tmp/engine.json"
go run ./cmd/bcbench -check -tolerance 5 "$tmp/engine.json" "$tmp/engine.json"

echo "==> approx smoke: K==n bit-match + tiny error-vs-speedup sweep"
go test -race -run 'TestExactBudgetBitMatch|TestSeededDeterminism' ./internal/approx
go run ./cmd/bcbench -approx -datasets email-enron -scale 0.05 -json "$tmp/approx"

echo "==> scale smoke: streamed gen -> stream + mmap loads agree bit-for-bit"
# Capped stand-in for the at-scale pipeline: generate a ~1e5-edge composite
# graph straight to binary, load it through the streaming reader and through
# mmap, and demand bit-identical approximate BC (same seed => same pivots, so
# any divergence is a loader bug, not sampling noise).
go run ./cmd/graphgen -type composite -cores 4 -rmatscale 12 -k 6 \
    -workers 4 -seed 7 -o "$tmp/scale.bin"
go build -o "$tmp/bc" ./cmd/bc
"$tmp/bc" -in "$tmp/scale.bin" -approx -pivots 48 -top 5 |
    sed -n '/top 5 vertices/,$p' >"$tmp/bc_stream.txt"
"$tmp/bc" -in "$tmp/scale.bin" -mmap -approx -pivots 48 -top 5 |
    sed -n '/top 5 vertices/,$p' >"$tmp/bc_mmap.txt"
cmp "$tmp/bc_stream.txt" "$tmp/bc_mmap.txt" || {
    echo "scale smoke: streamed and mmapped loads computed different BC" >&2
    exit 1
}

echo "==> scale smoke: one budgeted at-scale cell (composite-stream) + -check"
# One family through the full -atscale path: load probes (in-memory vs
# streaming vs mmap, with the mmap/stream graph bit-compare inside), the
# sched/engine/approx cells on a root budget, and a -check round-trip of the
# resulting artifact.
go run ./cmd/bcbench -atscale -scale 2 -workers 2 -datasets composite-stream \
    -rootbudget 64 -graphdir "$tmp/atscale-graphs" -json "$tmp/atscale.json"
go run ./cmd/bcbench -check -tolerance 5 "$tmp/atscale.json" "$tmp/atscale.json"

echo "==> durability smoke: SIGKILL bcd, recover, compare top-K bit-exact"
go build -race -o "$tmp/bcd" ./cmd/bcd
go build -race -o "$tmp/bcdload" ./cmd/bcdload
bcd_addr=127.0.0.1:8741
bcd_pid=""
trap '[ -n "${bcd_pid:-}" ] && kill "$bcd_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

wait_healthz() {
    i=0
    while ! curl -fsS "http://$bcd_addr/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || { echo "bcd never came up" >&2; exit 1; }
        sleep 0.1
    done
}
wait_ready() {
    i=0
    while ! curl -fsS "http://$bcd_addr/v1/graphs/$1" 2>/dev/null | grep -q '"state": "ready"'; do
        i=$((i + 1))
        [ "$i" -lt 300 ] || { echo "graph $1 never became ready" >&2; exit 1; }
        sleep 0.1
    done
}

"$tmp/bcd" -addr "$bcd_addr" -quiet -data-dir "$tmp/bcddata" >"$tmp/bcd.log" 2>&1 &
bcd_pid=$!
wait_healthz
curl -fsS -X POST "http://$bcd_addr/v1/graphs" -d \
    '{"name":"kill","n":12,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],[8,9],[9,10],[10,11],[0,7]]}' \
    >/dev/null
wait_ready kill
curl -fsS -X POST "http://$bcd_addr/v1/graphs/kill/edges?from=1&to=3" >/dev/null
curl -fsS -X POST "http://$bcd_addr/v1/graphs/kill/edges?from=9&to=4" >/dev/null
curl -fsS -X DELETE "http://$bcd_addr/v1/graphs/kill/edges?from=0&to=7" >/dev/null
curl -fsS "http://$bcd_addr/v1/graphs/kill/bc?top=12" >"$tmp/top_before.json"
kill -9 "$bcd_pid"
wait "$bcd_pid" 2>/dev/null || true
"$tmp/bcd" -addr "$bcd_addr" -quiet -data-dir "$tmp/bcddata" >"$tmp/bcd2.log" 2>&1 &
bcd_pid=$!
wait_healthz
grep -q 'recovering 1 graph' "$tmp/bcd2.log" || {
    echo "durability smoke: restart did not recover the graph" >&2
    cat "$tmp/bcd2.log" >&2
    exit 1
}
wait_ready kill
curl -fsS "http://$bcd_addr/v1/graphs/kill/bc?top=12" >"$tmp/top_after.json"
cmp "$tmp/top_before.json" "$tmp/top_after.json" || {
    echo "durability smoke: recovered top-K differs from pre-kill top-K" >&2
    exit 1
}

echo "==> load smoke: bcdload mixed read/mutate phase (429-only overload)"
"$tmp/bcdload" -addr "http://$bcd_addr" -graph mix -dataset email-enron \
    -scale 0.05 -readers 2 -mutators 1 -burst 4 -pace 300ms -top 5 \
    -baseline 2s -duration 4s
kill "$bcd_pid"
wait "$bcd_pid" 2>/dev/null || true
bcd_pid=""

echo "ci.sh: all checks passed"
