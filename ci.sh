#!/usr/bin/env sh
# ci.sh — the repository's verification gauntlet:
#   1. tier-1: go build ./... && go test ./...
#   2. race pass over the parallel hot paths (core, par, brandes)
#   3. bcbench -json smoke run on the smallest dataset, then the regression
#      gate self-compared (identical inputs must exit 0)
set -eu
cd "$(dirname "$0")"

echo "==> tier-1: go build ./... && go test ./..."
go build ./...
go test ./...

echo "==> race: internal/core internal/par internal/brandes"
go test -race ./internal/core ./internal/par ./internal/brandes

echo "==> bcbench -json smoke (email-enron, scale 0.05)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/bcbench -table 2 -datasets email-enron -scale 0.05 -json "$tmp"
artifact=$(ls "$tmp"/BENCH_*.json)
echo "==> bcbench -check self-compare ($artifact)"
go run ./cmd/bcbench -check -tolerance 5 "$artifact" "$artifact"

echo "ci.sh: all checks passed"
