package repro

// End-to-end CLI tests: build each command once and drive it through its
// main flows, the way a user would.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

// buildCLIs compiles all four commands into a shared temp dir.
func buildCLIs(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "repro-cli")
		if cliErr != nil {
			return
		}
		for _, cmd := range []string{"bc", "bcstats", "graphgen", "bcbench"} {
			out := filepath.Join(cliDir, cmd)
			c := exec.Command("go", "build", "-o", out, "./cmd/"+cmd)
			c.Dir = mustGetwd()
			if msg, err := c.CombinedOutput(); err != nil {
				cliErr = &cliBuildError{cmd, string(msg), err}
				return
			}
		}
	})
	if cliErr != nil {
		t.Fatal(cliErr)
	}
	return cliDir
}

type cliBuildError struct {
	cmd, output string
	err         error
}

func (e *cliBuildError) Error() string {
	return "building " + e.cmd + ": " + e.err.Error() + "\n" + e.output
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return wd
}

func runCLI(t *testing.T, name string, args ...string) string {
	t.Helper()
	dir := buildCLIs(t)
	out, err := exec.Command(filepath.Join(dir, name), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func runCLIExpectError(t *testing.T, name string, args ...string) string {
	t.Helper()
	dir := buildCLIs(t)
	out, err := exec.Command(filepath.Join(dir, name), args...).CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v: expected failure, got:\n%s", name, args, out)
	}
	return string(out)
}

func TestCLIGraphgenAndBC(t *testing.T) {
	tmp := t.TempDir()
	gpath := filepath.Join(tmp, "g.txt")
	out := runCLI(t, "graphgen", "-type", "social", "-n", "400", "-o", gpath)
	if !strings.Contains(out, "wrote graph") {
		t.Fatalf("graphgen output: %s", out)
	}
	out = runCLI(t, "bc", "-in", gpath, "-top", "5", "-v")
	for _, want := range []string{"apgre finished", "breakdown:", "rank"} {
		if !strings.Contains(out, want) {
			t.Fatalf("bc output missing %q:\n%s", want, out)
		}
	}
	// Every algorithm runs on the same file.
	for _, algo := range []string{"serial", "preds", "succs", "locksyncfree", "async", "hybrid"} {
		out = runCLI(t, "bc", "-in", gpath, "-algo", algo, "-top", "1")
		if !strings.Contains(out, algo+" finished") {
			t.Fatalf("algo %s output:\n%s", algo, out)
		}
	}
}

func TestCLIBCMetrics(t *testing.T) {
	tmp := t.TempDir()
	gpath := filepath.Join(tmp, "g.bin")
	runCLI(t, "graphgen", "-type", "caveman", "-n", "40", "-communities", "4", "-o", gpath)
	if out := runCLI(t, "bc", "-in", gpath, "-metric", "closeness", "-top", "3"); !strings.Contains(out, "closeness") {
		t.Fatalf("closeness output:\n%s", out)
	}
	if out := runCLI(t, "bc", "-in", gpath, "-metric", "edge", "-top", "3"); !strings.Contains(out, "edges by betweenness") {
		t.Fatalf("edge output:\n%s", out)
	}
	runCLIExpectError(t, "bc", "-in", gpath, "-metric", "nope")
	runCLIExpectError(t, "bc", "-in", filepath.Join(tmp, "missing.txt"))
	runCLIExpectError(t, "bc")
}

func TestCLIBCWeighted(t *testing.T) {
	tmp := t.TempDir()
	wpath := filepath.Join(tmp, "w.txt")
	if err := os.WriteFile(wpath, []byte("0 1 2\n1 2 2\n0 2 10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "bc", "-in", wpath, "-weighted", "-top", "3")
	if !strings.Contains(out, "apgre finished") {
		t.Fatalf("weighted output:\n%s", out)
	}
	// Vertex 1 must top the list: the heavy direct edge is bypassed.
	lines := strings.Split(out, "\n")
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "1 ") && strings.Contains(l, " 1 ") {
			found = true
		}
	}
	if !found && !strings.Contains(out, "1     1") {
		t.Fatalf("vertex 1 not ranked first:\n%s", out)
	}
}

func TestCLIBCStats(t *testing.T) {
	out := runCLI(t, "bcstats", "-dataset", "email-enron", "-scale", "0.05")
	for _, want := range []string{"articulation points:", "decomposition", "redundancy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("bcstats missing %q:\n%s", want, out)
		}
	}
	out = runCLI(t, "bcstats", "-dataset", "human-disease")
	if !strings.Contains(out, "human-disease") {
		t.Fatalf("bcstats human-disease:\n%s", out)
	}
	runCLIExpectError(t, "bcstats", "-dataset", "nope")
	runCLIExpectError(t, "bcstats")
}

func TestCLIBCBench(t *testing.T) {
	out := runCLI(t, "bcbench", "-table", "4", "-scale", "0.05", "-datasets", "usa-roadny")
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "usa-roadny") {
		t.Fatalf("bcbench output:\n%s", out)
	}
	runCLIExpectError(t, "bcbench") // no experiment selected
}

func TestCLIGraphgenVariants(t *testing.T) {
	tmp := t.TempDir()
	for _, typ := range []string{"er", "ba", "grid", "tree", "star", "path", "cycle", "road", "web", "rmat"} {
		p := filepath.Join(tmp, typ+".txt")
		out := runCLI(t, "graphgen", "-type", typ, "-n", "64", "-o", p)
		if !strings.Contains(out, "wrote graph") {
			t.Fatalf("%s: %s", typ, out)
		}
	}
	// Dataset mode.
	p := filepath.Join(tmp, "ds.txt")
	runCLI(t, "graphgen", "-dataset", "usa-roadny", "-scale", "0.05", "-o", p)
	runCLIExpectError(t, "graphgen", "-type", "nope", "-o", p)
	runCLIExpectError(t, "graphgen", "-type", "er")
	runCLIExpectError(t, "graphgen", "-dataset", "nope", "-o", p)
}
