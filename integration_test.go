package repro

// Integration tests: the full pipeline — dataset generation, decomposition,
// APGRE, baselines, analyzers — run end-to-end over every Table 1 stand-in
// at reduced scale, cross-checking exactness and the structural claims the
// experiments rely on.

import (
	"math"
	"testing"

	"repro/internal/brandes"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/decompose"
)

func TestIntegrationAllDatasetsExact(t *testing.T) {
	for _, ds := range datasets.All() {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			g := ds.Build(0.1)
			want := brandes.Serial(g)
			got, err := core.Compute(g, core.Options{Workers: 2, FineCutoff: 200})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if math.Abs(want[v]-got[v]) > 1e-9*math.Max(1, math.Abs(want[v])) {
					t.Fatalf("APGRE differs from Brandes at vertex %d: %v vs %v",
						v, want[v], got[v])
				}
			}
		})
	}
}

func TestIntegrationBaselinesAgree(t *testing.T) {
	// One representative undirected and directed dataset, all baselines.
	for _, name := range []string{"com-youtube", "web-google"} {
		ds, err := datasets.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := ds.Build(0.08)
		want := brandes.Serial(g)
		check := func(label string, got []float64) {
			t.Helper()
			for v := range want {
				if math.Abs(want[v]-got[v]) > 1e-9*math.Max(1, math.Abs(want[v])) {
					t.Fatalf("%s/%s differs at %d", name, label, v)
				}
			}
		}
		check("preds", brandes.Preds(g, 2))
		check("succs", brandes.Succs(g, 2))
		check("lockSyncFree", brandes.LockSyncFree(g, 2))
		check("hybrid", brandes.Hybrid(g, 2))
		if !g.Directed() {
			got, err := brandes.Async(g, 2)
			if err != nil {
				t.Fatal(err)
			}
			check("async", got)
		}
	}
}

// The experiments' qualitative claims must hold at bench scale: APGRE does
// strictly less traversal work than Brandes on every stand-in, and the
// decomposition is non-trivial everywhere.
func TestIntegrationWorkReduction(t *testing.T) {
	for _, ds := range datasets.All() {
		g := ds.Build(0.25)
		d, err := decompose.Decompose(g, decompose.Options{})
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		var bd core.Breakdown
		if _, err := core.ComputeDecomposed(d, core.Options{Breakdown: &bd}); err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		rep := core.AnalyzeRedundancy(g, d, 128, 1)
		if rep.Effective >= 1.0 {
			t.Errorf("%s: no work reduction (effective=%.2f)", ds.Name, rep.Effective)
		}
		if len(d.Subgraphs) < 2 {
			t.Errorf("%s: trivial decomposition", ds.Name)
		}
	}
}

// Road graphs must be APGRE's weakest case and leafy social graphs its
// strongest, mirroring the paper's Figure 6 ordering.
func TestIntegrationSpeedupOrdering(t *testing.T) {
	effective := func(name string) float64 {
		ds, err := datasets.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := ds.Build(0.25)
		d, err := decompose.Decompose(g, decompose.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return core.AnalyzeRedundancy(g, d, 128, 1).Effective
	}
	road := effective("usa-roadny")
	euall := effective("email-euall")
	if euall >= road {
		t.Fatalf("expected email-euall effective work (%.2f) < usa-roadny (%.2f)", euall, road)
	}
}
