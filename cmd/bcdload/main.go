// Command bcdload is a closed-loop mixed read/mutate load generator for a
// running bcd daemon. It answers the serving-layer question the paper's
// offline numbers cannot: does the amortized decomposition actually hold up
// as a service — do cached top-K reads stay fast while mutation bursts are
// coalesced into few epochs, and is overload shed with 429 instead of being
// misreported as client error?
//
// Two phases, both closed-loop (each worker issues its next request only
// after the previous one finishes, so the offered load adapts to the
// server):
//
//  1. baseline — readers only, measuring the undisturbed cached-read
//     latency distribution;
//  2. mixed — the same readers plus mutator workers toggling edges as fast
//     as admission control lets them.
//
// The summary compares the two read distributions (the p99 ratio is the
// "reads never queue behind a rebuild" check), reports the
// mutations-per-epoch amortization factor observed via the graph's epoch
// counter, and fails on any unexpected status (anything other than 200 for
// reads; 200/429 for mutations).
//
//	bcdload -addr http://localhost:8723 -graph load -dataset email-enron \
//	        -readers 4 -mutators 4 -duration 10s -out bench/
//
// With -out, results land as a BENCH_*.json document (internal/metrics
// schema v1). Latency-percentile records use Wall for the percentile value,
// TraversedArcs for the request count behind it, and the "mutate" record's
// Speedup field carries the mutations-per-epoch amortization factor.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8723", "bcd base URL")
		graphName = flag.String("graph", "load", "graph name to target (loaded if absent)")
		dataset   = flag.String("dataset", "email-enron", "dataset to load when the graph is absent")
		scale     = flag.Float64("scale", 0.25, "dataset scale for the initial load")
		readers   = flag.Int("readers", 4, "concurrent closed-loop top-K readers")
		mutators  = flag.Int("mutators", 2, "concurrent edge-mutator workers")
		burst     = flag.Int("burst", 8, "mutations each mutator fires concurrently per round (exercises batching)")
		pace      = flag.Duration("pace", 500*time.Millisecond, "idle time between a mutator's bursts (0 = saturate)")
		top       = flag.Int("top", 10, "top-K size requested by readers")
		duration  = flag.Duration("duration", 10*time.Second, "length of the mixed phase")
		baseline  = flag.Duration("baseline", 0, "length of the read-only baseline phase (0 = same as -duration)")
		out       = flag.String("out", "", "BENCH_*.json output path or directory (empty = stdout summary only)")
		maxRatio  = flag.Float64("max-p99-ratio", 0, "fail if mixed read p99 exceeds baseline p99 by this factor (0 = report only)")
		quiet     = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "bcdload: ", 0)
	if *quiet {
		logger.SetOutput(io.Discard)
	}
	if *baseline <= 0 {
		*baseline = *duration
	}

	h := &harness{
		base:   *addr,
		graph:  *graphName,
		client: &http.Client{Timeout: 60 * time.Second},
		log:    logger,
	}

	verts, err := h.ensureLoaded(*dataset, *scale)
	if err != nil {
		logger.SetOutput(os.Stderr)
		logger.Fatalf("load %q: %v", *graphName, err)
	}
	logger.Printf("graph %q ready (%d vertices)", *graphName, verts)

	pairs, err := h.claimMutatorPairs(*mutators**burst, verts)
	if err != nil {
		logger.SetOutput(os.Stderr)
		logger.Fatalf("mutator setup: %v", err)
	}

	logger.Printf("baseline: %d readers for %s", *readers, *baseline)
	base := h.runPhase(*readers, nil, 0, 0, *top, *baseline)

	infoBefore, err := h.info()
	if err != nil {
		logger.SetOutput(os.Stderr)
		logger.Fatalf("info: %v", err)
	}
	logger.Printf("mixed: %d readers + %d mutators (burst %d, pace %s) for %s",
		*readers, *mutators, *burst, *pace, *duration)
	mixed := h.runPhase(*readers, pairs, *burst, *pace, *top, *duration)
	infoAfter, err := h.info()
	if err != nil {
		logger.SetOutput(os.Stderr)
		logger.Fatalf("info: %v", err)
	}

	epochs := int64(infoAfter.Epoch - infoBefore.Epoch)
	applied := mixed.mutateOK.Load()
	amortization := 0.0
	if epochs > 0 {
		amortization = float64(applied) / float64(epochs)
	}

	baseP50 := metrics.Percentile(base.readLat, 50)
	baseP99 := metrics.Percentile(base.readLat, 99)
	mixP50 := metrics.Percentile(mixed.readLat, 50)
	mixP99 := metrics.Percentile(mixed.readLat, 99)
	mutP99 := metrics.Percentile(mixed.mutLat, 99)

	fmt.Printf("read  baseline: n=%d p50=%s p99=%s\n", len(base.readLat), baseP50, baseP99)
	fmt.Printf("read  mixed:    n=%d p50=%s p99=%s\n", len(mixed.readLat), mixP50, mixP99)
	fmt.Printf("mutate:         ok=%d overload429=%d p99=%s\n", applied, mixed.mutate429.Load(), mutP99)
	fmt.Printf("epochs:         %d published for %d mutations (%.1f mutations/epoch)\n", epochs, applied, amortization)
	ratio := 0.0
	if baseP99 > 0 {
		ratio = float64(mixP99) / float64(baseP99)
	}
	fmt.Printf("read p99 ratio: %.2fx (mixed vs baseline)\n", ratio)

	unexpected := base.unexpected.Load() + mixed.unexpected.Load()
	if unexpected > 0 {
		fmt.Fprintf(os.Stderr, "bcdload: FAIL: %d unexpected responses (want only 200 for reads, 200/429 for mutations); last: %s\n",
			unexpected, mixed.lastUnexpected())
		os.Exit(1)
	}
	if *maxRatio > 0 && ratio > *maxRatio {
		fmt.Fprintf(os.Stderr, "bcdload: FAIL: mixed read p99 %s is %.2fx baseline %s (gate %.2fx)\n",
			mixP99, ratio, baseP99, *maxRatio)
		os.Exit(1)
	}

	if *out != "" {
		rec := metrics.NewRecorder(*scale, *readers)
		add := func(alg string, wall time.Duration, n int, speedup float64) {
			rec.Add(metrics.Record{
				Experiment:    "bcdload",
				Graph:         *graphName,
				Algorithm:     alg,
				Workers:       *readers,
				Scale:         *scale,
				Verts:         infoAfter.Verts,
				Edges:         infoAfter.Edges,
				Wall:          wall,
				Speedup:       speedup,
				TraversedArcs: int64(n),
			})
		}
		add("read-baseline-p50", baseP50, len(base.readLat), 0)
		add("read-baseline-p99", baseP99, len(base.readLat), 0)
		add("read-mixed-p50", mixP50, len(mixed.readLat), 0)
		add("read-mixed-p99", mixP99, len(mixed.readLat), ratio)
		add("mutate-p99", mutP99, int(applied), amortization)
		// Overload accounting: every rejected mutation must have been a 429
		// (any 400/500 would have failed the run above), so this count is
		// the proof the admission-control path answered correctly.
		add("mutate-overload-429", 0, int(mixed.mutate429.Load()), 0)
		path, err := rec.WriteFile(*out)
		if err != nil {
			logger.SetOutput(os.Stderr)
			logger.Fatalf("write records: %v", err)
		}
		fmt.Printf("records: %s\n", path)
	}
}

// harness holds the shared HTTP plumbing.
type harness struct {
	base   string
	graph  string
	client *http.Client
	log    *log.Logger
}

// entryInfo mirrors the fields of the server's EntryInfo that bcdload reads.
type entryInfo struct {
	State string `json:"state"`
	Error string `json:"error"`
	Verts int    `json:"verts"`
	Edges int64  `json:"edges"`
	Epoch uint64 `json:"epoch"`
}

func (h *harness) info() (entryInfo, error) {
	resp, err := h.client.Get(h.base + "/v1/graphs/" + h.graph)
	if err != nil {
		return entryInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return entryInfo{}, fmt.Errorf("GET info: %d %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var info entryInfo
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// ensureLoaded loads the target graph if bcd does not already serve it
// (a 409 conflict means it exists — e.g. recovered from a durable data dir)
// and polls until it is ready.
func (h *harness) ensureLoaded(dataset string, scale float64) (int, error) {
	spec, _ := json.Marshal(map[string]any{
		"name": h.graph, "dataset": dataset, "scale": scale,
	})
	resp, err := h.client.Post(h.base+"/v1/graphs", "application/json", bytes.NewReader(spec))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted, http.StatusConflict:
	default:
		return 0, fmt.Errorf("POST /v1/graphs: unexpected status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		info, err := h.info()
		if err != nil {
			return 0, err
		}
		switch info.State {
		case "ready":
			return info.Verts, nil
		case "loading":
			time.Sleep(50 * time.Millisecond)
		default:
			return 0, fmt.Errorf("graph %q is %s: %s", h.graph, info.State, info.Error)
		}
	}
	return 0, fmt.Errorf("graph %q still loading after 5m", h.graph)
}

// mutPair is one mutator's dedicated edge; the worker toggles it so every
// request is valid (never a duplicate insert or absent removal) and the only
// expected statuses are 200 and 429.
type mutPair struct{ u, v int }

// claimMutatorPairs finds one absent vertex pair per mutator and inserts it
// (untimed), so the measured loop can alternate remove/insert cleanly.
func (h *harness) claimMutatorPairs(mutators, verts int) ([]mutPair, error) {
	if mutators == 0 {
		return nil, nil
	}
	if verts < 4 {
		return nil, fmt.Errorf("graph too small (%d vertices) for mutators", verts)
	}
	rng := rand.New(rand.NewSource(7))
	pairs := make([]mutPair, 0, mutators)
	for len(pairs) < mutators {
		claimed := false
		for try := 0; try < 200; try++ {
			u, v := rng.Intn(verts), rng.Intn(verts)
			if u == v {
				continue
			}
			code, err := h.mutate(true, u, v)
			if err != nil {
				return nil, err
			}
			if code == http.StatusTooManyRequests {
				time.Sleep(100 * time.Millisecond)
				continue
			}
			if code == http.StatusOK {
				pairs = append(pairs, mutPair{u, v})
				claimed = true
				break
			}
			// 400: the edge already exists (or is otherwise unusable) — try
			// another pair.
		}
		if !claimed {
			return nil, fmt.Errorf("could not claim an absent edge after 200 tries")
		}
	}
	return pairs, nil
}

func (h *harness) mutate(add bool, u, v int) (int, error) {
	url := fmt.Sprintf("%s/v1/graphs/%s/edges?from=%d&to=%d", h.base, h.graph, u, v)
	method := http.MethodPost
	if !add {
		method = http.MethodDelete
	}
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// phaseResult aggregates one phase's closed-loop measurements.
type phaseResult struct {
	mu      sync.Mutex
	readLat []time.Duration
	mutLat  []time.Duration

	readOK     atomic.Int64
	mutateOK   atomic.Int64
	mutate429  atomic.Int64
	unexpected atomic.Int64
	lastBad    atomic.Pointer[string]
}

func (p *phaseResult) lastUnexpected() string {
	if s := p.lastBad.Load(); s != nil {
		return *s
	}
	return "(none)"
}

func (p *phaseResult) noteUnexpected(kind string, code int) {
	p.unexpected.Add(1)
	s := fmt.Sprintf("%s -> %d", kind, code)
	p.lastBad.Store(&s)
}

// runPhase drives readers (and mutators, when pairs is non-empty) for d and
// collects latencies. Readers are closed-loop: each one's next request
// starts only after the previous response is fully read. Mutators model
// bursty write traffic: each fires its `burst` edge toggles concurrently,
// waits for every acknowledgement, then idles for `pace` — the concurrent
// burst is what lands multiple ops in one server-side batch, and the pacing
// keeps the offered write load from saturating the host, which is the
// regime the "reads stay flat" comparison is about.
func (h *harness) runPhase(readers int, pairs []mutPair, burst int, pace time.Duration, top int, d time.Duration) *phaseResult {
	res := &phaseResult{}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	readURL := fmt.Sprintf("%s/v1/graphs/%s/bc?top=%d", h.base, h.graph, top)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lat []time.Duration
			for !closed(stop) {
				start := time.Now()
				resp, err := h.client.Get(readURL)
				if err != nil {
					res.noteUnexpected("read", 0)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				took := time.Since(start)
				if resp.StatusCode == http.StatusOK {
					res.readOK.Add(1)
					lat = append(lat, took)
				} else {
					res.noteUnexpected("read", resp.StatusCode)
				}
			}
			res.mu.Lock()
			res.readLat = append(res.readLat, lat...)
			res.mu.Unlock()
		}()
	}

	if burst > 0 {
		for off := 0; off+burst <= len(pairs); off += burst {
			wg.Add(1)
			go func(mine []mutPair) {
				defer wg.Done()
				// Each pair was inserted at claim time; the first toggle
				// removes it.
				add := make([]bool, len(mine))
				var mu sync.Mutex
				var lat []time.Duration
				for !closed(stop) {
					var batch sync.WaitGroup
					for i := range mine {
						batch.Add(1)
						go func(i int) {
							defer batch.Done()
							start := time.Now()
							code, err := h.mutate(add[i], mine[i].u, mine[i].v)
							if err != nil {
								res.noteUnexpected("mutate", 0)
								return
							}
							took := time.Since(start)
							switch code {
							case http.StatusOK:
								res.mutateOK.Add(1)
								add[i] = !add[i]
								mu.Lock()
								lat = append(lat, took)
								mu.Unlock()
							case http.StatusTooManyRequests:
								// Admission control said back off; honoring
								// it is part of the protocol under test —
								// the pair is retried next round.
								res.mutate429.Add(1)
							default:
								res.noteUnexpected("mutate", code)
							}
						}(i)
					}
					batch.Wait()
					if pace > 0 {
						select {
						case <-stop:
						case <-time.After(pace):
						}
					}
				}
				res.mu.Lock()
				res.mutLat = append(res.mutLat, lat...)
				res.mu.Unlock()
			}(pairs[off : off+burst])
		}
	}

	time.Sleep(d)
	close(stop)
	wg.Wait()
	return res
}

func closed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}
