// Command bcstats prints the articulation-point census and decomposition
// profile of a graph — the measurements behind the paper's Figure 2
// motivation and Table 4.
//
//	bcstats -dataset wiki-talk -scale 0.25
//	bcstats -in graph.txt -directed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bcc"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/metrics"
)

func main() {
	var (
		in       = flag.String("in", "", "graph file (edge list, .gr, or .bin)")
		format   = flag.String("format", "", "input format override")
		directed = flag.Bool("directed", false, "treat edge-list input as directed")
		dataset  = flag.String("dataset", "", "named synthetic dataset instead of a file")
		scale    = flag.Float64("scale", 0.25, "dataset scale")
		thresh   = flag.Int("threshold", 0, "decomposition threshold")
	)
	flag.Parse()

	g, name, err := load(*in, *format, *directed, *dataset, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcstats: %v\n", err)
		os.Exit(1)
	}

	st := graph.Stats(g)
	aps, deg1 := bcc.CountArticulationPoints(g)
	fmt.Printf("graph %s: %v\n", name, g)
	fmt.Printf("degree: min=%d max=%d mean=%.2f isolated=%d\n",
		st.MinOut, st.MaxOut, st.MeanOut, st.Isolated)
	fmt.Printf("articulation points: %d (%.1f%%)\n",
		aps, 100*float64(aps)/float64(max(1, g.NumVertices())))
	fmt.Printf("single-edge vertices: %d (%.1f%%), no-in single-out sources: %d\n",
		deg1, 100*float64(deg1)/float64(max(1, g.NumVertices())), st.Sources)
	if g.Directed() {
		_, sccCount := graph.StronglyConnectedComponents(g)
		fmt.Printf("strongly connected components: %d (largest %d vertices)\n",
			sccCount, graph.LargestSCCSize(g))
	}

	d, err := decompose.Decompose(g, decompose.Options{Threshold: *thresh})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcstats: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ndecomposition (threshold=%d): %d sub-graphs, %d boundary APs, %d roots of %d vertices\n",
		*thresh, len(d.Subgraphs), d.NumArticulation, d.TotalRoots(), g.NumVertices())
	sizes := d.SubgraphSizes()
	t := &metrics.Table{Title: "largest sub-graphs", Headers: []string{"rank", "verts", "arcs", "V share"}}
	for i := 0; i < len(sizes) && i < 5; i++ {
		t.AddRow(i+1, sizes[i].Verts, sizes[i].Arcs,
			metrics.Percent(float64(sizes[i].Verts)/float64(g.NumVertices())))
	}
	t.Render(os.Stdout)

	rep := core.AnalyzeRedundancy(g, d, 0, 1)
	method := "exact"
	if rep.Sampled {
		method = "sampled"
	}
	fmt.Printf("\nredundancy (%s): effective=%s partial=%s total=%s\n",
		method, metrics.Percent(rep.Effective), metrics.Percent(rep.Partial), metrics.Percent(rep.Total))
}

func load(in, format string, directed bool, dataset string, scale float64) (*graph.Graph, string, error) {
	switch {
	case dataset != "":
		ds, err := datasets.ByName(dataset)
		if err != nil {
			if dataset == "human-disease" {
				d, g := datasets.HumanDisease()
				return g, d.Name, nil
			}
			return nil, "", err
		}
		return ds.Build(scale), ds.Name, nil
	case in != "":
		g, err := graphio.LoadFile(in, format, directed)
		return g, in, err
	default:
		return nil, "", fmt.Errorf("need -in FILE or -dataset NAME (one of %v)", datasets.Names())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
