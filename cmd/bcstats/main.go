// Command bcstats prints the articulation-point census and decomposition
// profile of a graph — the measurements behind the paper's Figure 2
// motivation and Table 4.
//
//	bcstats -dataset wiki-talk -scale 0.25
//	bcstats -in graph.txt -directed
//	bcstats -dataset email-enron -json
//
// With -json the census is emitted as the same metrics.GraphCensus document
// the bcd daemon serves at GET /v1/graphs/{name}/stats, so scripted pipelines
// can consume either source interchangeably.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/metrics"
)

func main() {
	var (
		in       = flag.String("in", "", "graph file (edge list, .gr, or .bin)")
		format   = flag.String("format", "", "input format override")
		directed = flag.Bool("directed", false, "treat edge-list input as directed")
		dataset  = flag.String("dataset", "", "named synthetic dataset instead of a file")
		scale    = flag.Float64("scale", 0.25, "dataset scale")
		thresh   = flag.Int("threshold", 0, "decomposition threshold")
		sample   = flag.Int("sample", 0, "sample this many sources for the redundancy analysis (0 = exact)")
		asJSON   = flag.Bool("json", false, "emit the census as JSON instead of text")
	)
	flag.Parse()

	g, name, err := load(*in, *format, *directed, *dataset, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcstats: %v\n", err)
		os.Exit(1)
	}
	d, err := decompose.Decompose(g, decompose.Options{Threshold: *thresh})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcstats: %v\n", err)
		os.Exit(1)
	}
	c := core.BuildCensus(name, g, d, core.CensusOptions{
		Threshold:         *thresh,
		RedundancySampleK: *sample,
		Seed:              1,
	})

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c); err != nil {
			fmt.Fprintf(os.Stderr, "bcstats: %v\n", err)
			os.Exit(1)
		}
		return
	}
	renderText(os.Stdout, g, c)
}

// renderText prints the human-readable census from the same GraphCensus
// document -json serializes, so the two outputs cannot drift apart.
func renderText(w *os.File, g *graph.Graph, c metrics.GraphCensus) {
	fmt.Fprintf(w, "graph %s: %v\n", c.Graph, g)
	fmt.Fprintf(w, "degree: min=%d max=%d mean=%.2f isolated=%d\n",
		c.Degree.Min, c.Degree.Max, c.Degree.Mean, c.Degree.Isolated)
	fmt.Fprintf(w, "articulation points: %d (%.1f%%)\n",
		c.ArticulationPoints, 100*float64(c.ArticulationPoints)/float64(max(1, c.Verts)))
	fmt.Fprintf(w, "single-edge vertices: %d (%.1f%%), no-in single-out sources: %d\n",
		c.SingleEdgeVertices, 100*float64(c.SingleEdgeVertices)/float64(max(1, c.Verts)), c.Degree.Sources)
	if c.SCC != nil {
		fmt.Fprintf(w, "strongly connected components: %d (largest %d vertices)\n",
			c.SCC.Count, c.SCC.Largest)
	}

	fmt.Fprintf(w, "\ndecomposition (threshold=%d): %d sub-graphs, %d boundary APs, %d roots of %d vertices\n",
		c.Decomposition.Threshold, c.Decomposition.Subgraphs,
		c.Decomposition.BoundaryAPs, c.Decomposition.Roots, c.Verts)
	t := &metrics.Table{Title: "largest sub-graphs", Headers: []string{"rank", "verts", "arcs", "V share"}}
	for i, sg := range c.Decomposition.Largest {
		t.AddRow(i+1, sg.Verts, sg.Arcs, metrics.Percent(sg.VertShare))
	}
	t.Render(w)

	if r := c.Redundancy; r != nil {
		fmt.Fprintf(w, "\nredundancy (%s): effective=%s partial=%s total=%s\n",
			r.Method, metrics.Percent(r.Effective), metrics.Percent(r.Partial), metrics.Percent(r.Total))
	}
}

func load(in, format string, directed bool, dataset string, scale float64) (*graph.Graph, string, error) {
	switch {
	case dataset != "":
		ds, err := datasets.ByName(dataset)
		if err != nil {
			if dataset == "human-disease" {
				d, g := datasets.HumanDisease()
				return g, d.Name, nil
			}
			return nil, "", err
		}
		return ds.Build(scale), ds.Name, nil
	case in != "":
		g, err := graphio.LoadFile(in, format, directed)
		return g, in, err
	default:
		return nil, "", fmt.Errorf("need -in FILE or -dataset NAME (one of %v)", datasets.Names())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
