// Command bc computes centrality for a graph file and prints the top-scoring
// vertices (or edges).
//
//	bc -in graph.txt -algo apgre -top 20
//	bc -in road.gr -format dimacs -algo succs -workers 8
//	bc -in roads.txt -weighted -top 10          # Dijkstra-based APGRE
//	bc -in graph.txt -approx -pivots 512        # sampled BC, fixed budget
//	bc -in graph.txt -approx -eps 0.01          # sampled BC, adaptive accuracy
//	bc -in graph.txt -metric closeness
//	bc -in graph.txt -metric edge -top 10       # edge betweenness
//	bc -in big.bin -mmap -top 20                # mmap the CSR instead of copying it
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/graphio"
	"repro/internal/metrics"
	"repro/internal/profiling"
)

func main() {
	var (
		in         = flag.String("in", "", "graph file (edge list, .gr, or .bin)")
		format     = flag.String("format", "", "input format override")
		directed   = flag.Bool("directed", false, "treat edge-list input as directed")
		weighted   = flag.Bool("weighted", false, "read edge weights (3rd column / DIMACS arc weights)")
		useMmap    = flag.Bool("mmap", false, "memory-map binary input (zero-copy adjacency when supported)")
		metric     = flag.String("metric", "bc", "metric: bc|closeness|edge")
		algo       = flag.String("algo", "apgre", "algorithm: apgre|serial|preds|succs|locksyncfree|async|hybrid")
		workers    = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		topK       = flag.Int("top", 10, "print the top-K entries")
		thresh     = flag.Int("threshold", 0, "APGRE decomposition threshold")
		approxMode = flag.Bool("approx", false, "estimate BC from sampled pivots (decomposition-aware)")
		pivots     = flag.Int("pivots", 0, "approx: fixed pivot budget (>= n reproduces exact BC)")
		eps        = flag.Float64("eps", 0, "approx: adaptive mode, target CI half-width on normalized BC")
		seed       = flag.Int64("seed", 1, "approx: sampling seed")
		verbose    = flag.Bool("v", false, "print APGRE phase breakdown")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "bc: -in FILE is required")
		os.Exit(2)
	}

	var g *repro.Graph
	if *useMmap {
		if *weighted || (*format != "" && *format != "bin") || (*format == "" && !strings.HasSuffix(*in, ".bin")) {
			fmt.Fprintln(os.Stderr, "bc: -mmap requires unweighted binary (.bin) input")
			os.Exit(2)
		}
		mg, err := graphio.MmapGraph(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bc: %v\n", err)
			os.Exit(1)
		}
		// The mapping must outlive every sweep over the adjacency; this is a
		// one-shot CLI, so unmapping at process exit (never) is fine, but keep
		// the Close for symmetry with long-lived embedders like bcd.
		defer mg.Close()
		g = mg.Graph
		mode := "copied (fallback)"
		if mg.ZeroCopy {
			mode = "zero-copy"
		}
		fmt.Printf("loaded %v (mmap, %s)\n", g, mode)
	} else {
		var err error
		g, err = load(*in, *format, *directed, *weighted)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %v\n", g)
	}

	prof, err := profiling.Start(*cpuprofile, *memprofile, *traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bc: %v\n", err)
		os.Exit(1)
	}

	switch *metric {
	case "bc":
		if *approxMode {
			if *weighted {
				prof.Stop()
				fmt.Fprintln(os.Stderr, "bc: -approx supports unweighted graphs only")
				os.Exit(2)
			}
			runApproxBC(g, *workers, *thresh, *topK, *pivots, *eps, *seed)
			break
		}
		runBC(g, *algo, *workers, *thresh, *topK, *verbose, *weighted)
	case "closeness":
		runCloseness(g, *workers, *topK)
	case "edge":
		runEdgeBC(g, *workers, *topK)
	default:
		prof.Stop()
		fmt.Fprintf(os.Stderr, "bc: unknown -metric %q\n", *metric)
		os.Exit(2)
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "bc: profiling: %v\n", err)
		os.Exit(1)
	}
}

func load(in, format string, directed, weighted bool) (*repro.Graph, error) {
	if !weighted {
		return repro.LoadGraph(in, format, directed)
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if format == "dimacs" || (format == "" && hasSuffix(in, ".gr")) {
		return graphio.ReadDIMACSWeighted(f, directed)
	}
	g, _, err := graphio.ReadWeightedEdgeList(f, directed)
	return g, err
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func runBC(g *repro.Graph, algo string, workers, thresh, topK int, verbose, weighted bool) {
	var bd repro.Breakdown
	opt := repro.Options{
		Algorithm: repro.Algorithm(algo),
		Workers:   workers,
		Threshold: thresh,
	}
	if verbose {
		opt.Breakdown = &bd
	}
	start := time.Now()
	var bc []float64
	var err error
	if weighted {
		bc, err = repro.WeightedBetweennessCentrality(g, opt)
	} else {
		bc, err = repro.BetweennessCentrality(g, opt)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bc: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Printf("%s finished in %s (%s MTEPS)\n", algo,
		metrics.FormatDuration(elapsed), metrics.FormatMTEPS(metrics.MTEPS(g.NumVertices(), g.NumEdges(), elapsed)))
	if verbose && opt.Algorithm == repro.AlgoAPGRE {
		fmt.Printf("breakdown: partition=%s alpha/beta=%s bc(top)=%s bc(rest)=%s subgraphs=%d APs=%d roots=%d\n",
			metrics.FormatDuration(bd.Partition), metrics.FormatDuration(bd.AlphaBeta),
			metrics.FormatDuration(bd.TopBC), metrics.FormatDuration(bd.RestBC),
			bd.Subgraphs, bd.Articulations, bd.Roots)
	}
	t := &metrics.Table{Title: fmt.Sprintf("top %d vertices by betweenness", topK),
		Headers: []string{"rank", "vertex", "bc"}}
	for i, vs := range repro.TopK(bc, topK) {
		t.AddRow(i+1, vs.Vertex, vs.Score)
	}
	t.Render(os.Stdout)
}

func runApproxBC(g *repro.Graph, workers, thresh, topK, pivots int, eps float64, seed int64) {
	opt := repro.ApproxOptions{
		Pivots:    pivots,
		Eps:       eps,
		Seed:      seed,
		Workers:   workers,
		Threshold: thresh,
	}
	if opt.Pivots <= 0 && opt.Eps <= 0 {
		opt.Eps = 0.05 // match bcd's default accuracy target
	}
	start := time.Now()
	res, err := repro.ApproximateBCDecomposed(g, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bc: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	quality := fmt.Sprintf("err<=%.4g", res.ErrEstimate)
	if res.Exact {
		quality = "exact"
	}
	fmt.Printf("approx finished in %s (pivots=%d/%d, %s)\n",
		metrics.FormatDuration(elapsed), res.Pivots, res.ExactRoots, quality)
	t := &metrics.Table{Title: fmt.Sprintf("top %d vertices by approximate betweenness", topK),
		Headers: []string{"rank", "vertex", "bc"}}
	for i, vs := range repro.TopK(res.BC, topK) {
		t.AddRow(i+1, vs.Vertex, vs.Score)
	}
	t.Render(os.Stdout)
}

func runCloseness(g *repro.Graph, workers, topK int) {
	start := time.Now()
	res, err := repro.ClosenessCentrality(g, workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bc: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("closeness finished in %s\n", metrics.FormatDuration(time.Since(start)))
	t := &metrics.Table{Title: fmt.Sprintf("top %d vertices by closeness", topK),
		Headers: []string{"rank", "vertex", "closeness", "farness"}}
	for i, vs := range repro.TopK(res.Closeness, topK) {
		t.AddRow(i+1, vs.Vertex, vs.Score, res.Farness[vs.Vertex])
	}
	t.Render(os.Stdout)
}

func runEdgeBC(g *repro.Graph, workers, topK int) {
	start := time.Now()
	scores := repro.EdgeBetweenness(g, workers)
	fmt.Printf("edge betweenness finished in %s\n", metrics.FormatDuration(time.Since(start)))
	if topK > len(scores) {
		topK = len(scores)
	}
	t := &metrics.Table{Title: fmt.Sprintf("top %d edges by betweenness", topK),
		Headers: []string{"rank", "edge", "bc"}}
	for i, es := range scores[:topK] {
		t.AddRow(i+1, fmt.Sprintf("%d-%d", es.Edge.From, es.Edge.To), es.Score)
	}
	t.Render(os.Stdout)
}
