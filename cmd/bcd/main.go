// Command bcd is the long-running betweenness-centrality daemon: it keeps
// named graphs loaded with their articulation-point decomposition and BC
// scores cached, serves queries over a JSON HTTP API, and absorbs edge
// updates through the incremental engine instead of recomputing from
// scratch.
//
//	bcd -addr :8723
//	bcd -addr :8723 -preload enron=email-enron:0.05
//	bcd -addr :8723 -preload big=@/data/big.bin    # stream a graph file from disk
//
// Endpoints (see README "Serving" for curl examples):
//
//	POST   /v1/graphs                      load a graph (async)
//	GET    /v1/graphs                      list
//	GET    /v1/graphs/{name}               status / info
//	DELETE /v1/graphs/{name}               unload
//	GET    /v1/graphs/{name}/bc?top=K      top-K BC scores
//	  ...?mode=approx&pivots=K|eps=E       sampled estimate (headers carry
//	                                       X-BC-Pivots / X-BC-Error-Estimate)
//	GET    /v1/graphs/{name}/vertices/{v}  one vertex
//	POST   /v1/graphs/{name}/edges         insert edge
//	DELETE /v1/graphs/{name}/edges         remove edge
//	GET    /v1/graphs/{name}/stats         articulation-point census
//	GET    /healthz                        liveness
//	GET    /metrics                        Prometheus text format
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8723", "listen address")
		workers   = flag.Int("workers", 2, "concurrent graph build jobs")
		queue     = flag.Int("queue", 16, "build job queue depth")
		threshold = flag.Int("threshold", 0, "default decomposition threshold (0 = library default)")
		preload   = flag.String("preload", "", "comma-separated name=dataset[:scale] or name=@/path/file graphs to load at startup")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		quiet     = flag.Bool("quiet", false, "suppress per-request logging")

		dataDir    = flag.String("data-dir", "", "durability directory: per-graph WAL + snapshots, replayed on restart (empty = in-memory only)")
		snapEvery  = flag.Int("snapshot-every", 256, "WAL records between snapshot compactions")
		mutQueue   = flag.Int("mutation-queue", 128, "per-graph pending-mutation queue depth (beyond it: 429)")
		mutBatch   = flag.Int("mutation-batch", 64, "max mutations coalesced into one epoch publish")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint attached to 429 overload responses")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "bcd: ", log.LstdFlags)
	reqLog := logger
	if *quiet {
		reqLog = nil
	}

	reg := server.NewRegistry(server.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		DefaultThreshold:   *threshold,
		DataDir:            *dataDir,
		SnapshotEvery:      *snapEvery,
		MutationQueueDepth: *mutQueue,
		MutationBatch:      *mutBatch,
		RetryAfter:         *retryAfter,
	})
	srv := server.New(reg, reqLog)

	// Recovery before preload: a graph that survives on disk wins over a
	// -preload entry of the same name (Load would 409 on the conflict).
	if names, err := reg.Recover(); err != nil {
		logger.Fatalf("recover from %s: %v", *dataDir, err)
	} else if len(names) > 0 {
		logger.Printf("recovering %d graph(s) from %s: %s", len(names), *dataDir, strings.Join(names, ", "))
	}

	if err := preloadGraphs(reg, *preload); err != nil {
		logger.Fatalf("preload: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("serving on %s (workers=%d, queue=%d)", *addr, *workers, *queue)

	select {
	case err := <-errCh:
		logger.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight queries up to the
	// timeout, then abort queued recompute jobs.
	logger.Printf("shutting down (drain %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("drain incomplete: %v", err)
	}
	reg.Close()
	logger.Printf("bye")
}

// preloadGraphs parses "name=dataset[:scale],..." and enqueues the loads.
// An "@"-prefixed source is a file path instead of a dataset name
// ("big=@/data/big.bin"); .bin files go through graphio's streaming CSR
// reader, so preloading a 10^7-edge graph does not spike beyond the CSR
// it keeps resident.
func preloadGraphs(reg *server.Registry, spec string) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, src, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("bad -preload entry %q (want name=dataset[:scale] or name=@/path/file)", part)
		}
		var ls server.LoadSpec
		if path, isFile := strings.CutPrefix(src, "@"); isFile {
			ls = server.LoadSpec{Name: name, Path: path}
		} else {
			dataset, scaleStr, hasScale := strings.Cut(src, ":")
			scale := 0.25
			if hasScale {
				v, err := strconv.ParseFloat(scaleStr, 64)
				if err != nil {
					return fmt.Errorf("bad scale in -preload entry %q: %v", part, err)
				}
				scale = v
			}
			ls = server.LoadSpec{Name: name, Dataset: dataset, Scale: scale}
		}
		if _, err := reg.Load(ls); err != nil {
			// A recovered durable graph already owns this name; keep it — it
			// carries the mutation history the fresh dataset would lose.
			var conflict *server.ConflictError
			if errors.As(err, &conflict) {
				continue
			}
			return err
		}
	}
	return nil
}
