// Command graphgen generates synthetic graphs and writes them to disk.
//
//	graphgen -type social -n 10000 -avgdeg 6 -communities 40 -leaf 0.3 -o g.txt
//	graphgen -type road -rows 100 -cols 100 -o road.bin
//	graphgen -dataset wiki-talk -scale 0.5 -o wiki.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
)

func main() {
	var (
		typ      = flag.String("type", "", "generator: social|web|road|er|ba|rmat|grid|tree|star|path|cycle|caveman")
		dataset  = flag.String("dataset", "", "named dataset stand-in instead of -type")
		scale    = flag.Float64("scale", 1.0, "dataset scale")
		out      = flag.String("o", "", "output file (.txt edge list or .bin CSR)")
		format   = flag.String("format", "", "output format override")
		n        = flag.Int("n", 1000, "vertex count")
		m        = flag.Int64("m", 4000, "edge count (er)")
		k        = flag.Int("k", 3, "attachment/edge factor (ba, rmat)")
		avgdeg   = flag.Int("avgdeg", 6, "average degree (social, web)")
		comms    = flag.Int("communities", 16, "community/site count (social, web)")
		topShare = flag.Float64("top", 0.5, "top community share (social)")
		leaf     = flag.Float64("leaf", 0.2, "degree-1 leaf fraction (social, web)")
		directed = flag.Bool("directed", false, "directed output (social, er, rmat)")
		recip    = flag.Float64("reciprocity", 0.5, "directed reciprocity (social)")
		rows     = flag.Int("rows", 50, "grid rows (road, grid)")
		cols     = flag.Int("cols", 50, "grid cols (road, grid)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -o FILE is required")
		os.Exit(2)
	}

	var g *graph.Graph
	switch {
	case *dataset != "":
		ds, err := datasets.ByName(*dataset)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		g = ds.Build(*scale)
	default:
		switch *typ {
		case "social":
			g = gen.SocialLike(gen.SocialParams{N: *n, AvgDeg: *avgdeg, Communities: *comms,
				TopShare: *topShare, LeafFrac: *leaf, Directed: *directed, Reciprocity: *recip, Seed: *seed})
		case "web":
			g = gen.WebLike(gen.WebParams{N: *n, Sites: *comms, AvgDeg: *avgdeg, LeafFrac: *leaf, Seed: *seed})
		case "road":
			g = gen.RoadLike(gen.RoadParams{Rows: *rows, Cols: *cols, DeleteFrac: 0.1,
				SpurFrac: 0.1, SpurLen: 3, Seed: *seed})
		case "er":
			g = gen.ErdosRenyi(*n, *m, *directed, *seed)
		case "ba":
			g = gen.BarabasiAlbert(*n, *k, *seed)
		case "rmat":
			scalePow := 1
			for 1<<scalePow < *n {
				scalePow++
			}
			g = gen.RMAT(scalePow, *k, 0.57, 0.19, 0.19, *directed, *seed)
		case "grid":
			g = gen.Grid2D(*rows, *cols)
		case "tree":
			g = gen.Tree(*n, *seed)
		case "star":
			g = gen.Star(*n)
		case "path":
			g = gen.Path(*n)
		case "cycle":
			g = gen.Cycle(*n)
		case "caveman":
			g = gen.Caveman(*comms, *n/max(1, *comms), false)
		default:
			fmt.Fprintf(os.Stderr, "graphgen: unknown -type %q\n", *typ)
			os.Exit(2)
		}
	}

	if err := graphio.SaveFile(*out, *format, g); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %v to %s\n", g, *out)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
