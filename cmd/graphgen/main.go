// Command graphgen generates synthetic graphs and writes them to disk.
//
//	graphgen -type social -n 10000 -avgdeg 6 -communities 40 -leaf 0.3 -o g.txt
//	graphgen -type road -rows 100 -cols 100 -o road.bin
//	graphgen -dataset wiki-talk -scale 0.5 -o wiki.txt
//
// The streamed generators build multi-million-edge graphs chunk-parallel
// without ever materializing an edge list (see internal/gen's Stream):
//
//	graphgen -type rmat-stream -rmatscale 20 -k 8 -workers 8 -o big.bin
//	graphgen -type composite -cores 8 -rmatscale 17 -k 8 -periph 0.25 -chain 4 -o comp.bin
//
// -census appends the articulation-point/BCC census of the emitted graph
// (the same JSON as `bcstats -json`) so a generated family can be verified
// against its intended structure; -censusout writes it to a file instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/decompose"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
)

func main() {
	var (
		typ       = flag.String("type", "", "generator: social|web|road|er|ba|rmat|rmat-stream|composite|grid|tree|star|path|cycle|caveman")
		dataset   = flag.String("dataset", "", "named dataset stand-in instead of -type")
		scale     = flag.Float64("scale", 1.0, "dataset scale")
		out       = flag.String("o", "", "output file (.txt edge list or .bin CSR)")
		format    = flag.String("format", "", "output format override")
		n         = flag.Int("n", 1000, "vertex count")
		m         = flag.Int64("m", 4000, "edge count (er)")
		k         = flag.Int("k", 3, "attachment/edge factor (ba, rmat, rmat-stream, composite)")
		avgdeg    = flag.Int("avgdeg", 6, "average degree (social, web)")
		comms     = flag.Int("communities", 16, "community/site count (social, web)")
		topShare  = flag.Float64("top", 0.5, "top community share (social)")
		leaf      = flag.Float64("leaf", 0.2, "degree-1 leaf fraction (social, web)")
		directed  = flag.Bool("directed", false, "directed output (social, er, rmat, rmat-stream, composite)")
		recip     = flag.Float64("reciprocity", 0.5, "directed reciprocity (social)")
		rows      = flag.Int("rows", 50, "grid rows (road, grid)")
		cols      = flag.Int("cols", 50, "grid cols (road, grid)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallel generation workers for streamed types (0 = GOMAXPROCS)")
		rmatScale = flag.Int("rmatscale", 16, "rmat-stream: log2 vertex count; composite: log2 core vertex count")
		cores     = flag.Int("cores", 8, "composite: number of power-law cores")
		periph    = flag.Float64("periph", 0.25, "composite: fraction of vertices in the chain periphery")
		chain     = flag.Int("chain", 4, "composite: chain length (vertices per periphery chain)")
		census    = flag.Bool("census", false, "print the emitted graph's AP/BCC census as JSON")
		censusOut = flag.String("censusout", "", "write the census JSON to this file instead of stdout")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -o FILE is required")
		os.Exit(2)
	}

	var g *graph.Graph
	switch {
	case *dataset != "":
		ds, err := datasets.ByName(*dataset)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		g = ds.Build(*scale)
	default:
		switch *typ {
		case "social":
			g = gen.SocialLike(gen.SocialParams{N: *n, AvgDeg: *avgdeg, Communities: *comms,
				TopShare: *topShare, LeafFrac: *leaf, Directed: *directed, Reciprocity: *recip, Seed: *seed})
		case "web":
			g = gen.WebLike(gen.WebParams{N: *n, Sites: *comms, AvgDeg: *avgdeg, LeafFrac: *leaf, Seed: *seed})
		case "road":
			g = gen.RoadLike(gen.RoadParams{Rows: *rows, Cols: *cols, DeleteFrac: 0.1,
				SpurFrac: 0.1, SpurLen: 3, Seed: *seed})
		case "er":
			g = gen.ErdosRenyi(*n, *m, *directed, *seed)
		case "ba":
			g = gen.BarabasiAlbert(*n, *k, *seed)
		case "rmat":
			scalePow := 1
			for 1<<scalePow < *n {
				scalePow++
			}
			g = gen.RMAT(scalePow, *k, 0.57, 0.19, 0.19, *directed, *seed)
		case "rmat-stream":
			g = gen.BuildCSR(gen.RMATStream(*rmatScale, *k, 0.57, 0.19, 0.19, *directed, *seed), *workers)
		case "composite":
			g = gen.BuildCSR(gen.CompositeStream(gen.CompositeParams{
				Cores: *cores, CoreScale: *rmatScale, EdgeFactor: *k,
				A: 0.57, B: 0.19, C: 0.19,
				PeriphFrac: *periph, ChainLen: *chain,
				Directed: *directed, Seed: *seed,
			}), *workers)
		case "grid":
			g = gen.Grid2D(*rows, *cols)
		case "tree":
			g = gen.Tree(*n, *seed)
		case "star":
			g = gen.Star(*n)
		case "path":
			g = gen.Path(*n)
		case "cycle":
			g = gen.Cycle(*n)
		case "caveman":
			g = gen.Caveman(*comms, *n/max(1, *comms), false)
		default:
			fmt.Fprintf(os.Stderr, "graphgen: unknown -type %q\n", *typ)
			os.Exit(2)
		}
	}

	if err := graphio.SaveFile(*out, *format, g); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %v to %s\n", g, *out)

	if *census || *censusOut != "" {
		if err := emitCensus(g, *out, *censusOut, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: census: %v\n", err)
			os.Exit(1)
		}
	}
}

// emitCensus decomposes the emitted graph and prints/writes the same census
// JSON as `bcstats -json`, so the generated family's AP/BCC structure can be
// checked against what the generator promised. The redundancy analysis runs
// sampled (it would otherwise cost a full sweep per source on a
// multi-million-edge graph).
func emitCensus(g *graph.Graph, name, path string, workers int) error {
	d, err := decompose.Decompose(g, decompose.Options{Workers: workers})
	if err != nil {
		return err
	}
	c := core.BuildCensus(name, g, d, core.CensusOptions{RedundancySampleK: 64, Seed: 1})
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path != "" {
		return os.WriteFile(path, data, 0o644)
	}
	_, err = os.Stdout.Write(data)
	return err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
