package main

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/brandes"
	"repro/internal/closeness"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// extensions prints the measurements for the repository's beyond-the-paper
// features (DESIGN.md extension inventory): weighted APGRE vs
// Dijkstra-Brandes, AP-accelerated closeness vs per-vertex BFS, and
// incremental update throughput vs recomputation.
func extensions(c config) error {
	if err := extWeighted(c); err != nil {
		return err
	}
	fmt.Fprintln(c.w())
	if err := extCloseness(c); err != nil {
		return err
	}
	fmt.Fprintln(c.w())
	if err := extIncremental(c); err != nil {
		return err
	}
	fmt.Fprintln(c.w())
	return extApproximation(c)
}

// extApproximation measures the pivot strategies' top-10 recall and mean
// relative error against exact BC at 5%/10%/20% sample rates (the Brandes &
// Pich [20] comparison, run on the enron stand-in).
func extApproximation(c config) error {
	ds, err := dsByName("email-enron")
	if err != nil {
		return err
	}
	g := ds.Build(c.scale)
	exact := brandes.Serial(g)
	exactTop := topSet(exact, 10)

	t := &metrics.Table{
		Title:   "Extension E7+. Approximation quality (email-enron stand-in)",
		Headers: []string{"strategy", "sample%", "recall@10", "mean rel err"},
	}
	strategies := []struct {
		name string
		s    brandes.PivotStrategy
	}{
		{"uniform", brandes.PivotUniform},
		{"degree", brandes.PivotDegree},
		{"maxmin", brandes.PivotMaxMin},
	}
	for _, strat := range strategies {
		for _, frac := range []float64{0.05, 0.10, 0.20} {
			k := int(frac * float64(g.NumVertices()))
			approx, err := brandes.SampledWith(g, k, strat.s, 17)
			if err != nil {
				return err
			}
			hits := 0
			for v := range topSet(approx, 10) {
				if exactTop[v] {
					hits++
				}
			}
			var relErr float64
			var counted int
			for v := range exact {
				if exact[v] > 0 {
					d := approx[v] - exact[v]
					if d < 0 {
						d = -d
					}
					relErr += d / exact[v]
					counted++
				}
			}
			t.AddRow(strat.name, fmt.Sprintf("%.0f%%", 100*frac),
				fmt.Sprintf("%d/10", hits), fmt.Sprintf("%.3f", relErr/float64(counted)))
		}
	}
	t.Render(c.w())
	return nil
}

func topSet(x []float64, k int) map[int]bool {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] > x[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := map[int]bool{}
	for _, i := range idx[:k] {
		out[i] = true
	}
	return out
}

func extWeighted(c config) error {
	t := &metrics.Table{
		Title:   "Extension E2. Weighted BC: Dijkstra-Brandes vs weighted APGRE",
		Headers: []string{"graph", "dijkstra-brandes", "weighted APGRE", "speedup"},
	}
	for _, ds := range c.selected() {
		g := gen.WithRandomWeights(ds.Build(c.scale), 9, 7)
		start := time.Now()
		brandes.WeightedSerial(g)
		base := time.Since(start)
		c.record(metrics.Record{Experiment: "ext-weighted", Graph: ds.Name,
			Algorithm: "dijkstra-brandes", Workers: 1,
			Verts: g.NumVertices(), Edges: g.NumEdges(), Wall: base, Speedup: 1})
		var bd core.Breakdown
		start = time.Now()
		if _, err := core.ComputeWeighted(g, core.Options{Workers: c.workers,
			Threshold: c.threshold, Breakdown: &bd}); err != nil {
			return err
		}
		apgre := time.Since(start)
		c.record(metrics.Record{Experiment: "ext-weighted", Graph: ds.Name,
			Algorithm: "weighted-apgre", Workers: c.workers,
			Verts: g.NumVertices(), Edges: g.NumEdges(), Wall: apgre,
			Speedup: metrics.Speedup(base, apgre), TraversedArcs: bd.TraversedArcs})
		t.AddRow(ds.Name, base, apgre, metrics.FormatSpeedup(metrics.Speedup(base, apgre)))
	}
	t.Render(c.w())
	return nil
}

func extCloseness(c config) error {
	t := &metrics.Table{
		Title:   "Extension E5. Closeness: per-vertex BFS vs AP-accelerated",
		Headers: []string{"graph", "exact BFS", "decomposed", "speedup"},
	}
	for _, ds := range c.selected() {
		if ds.Directed {
			continue // the decomposed engine is undirected-only
		}
		g := ds.Build(c.scale)
		start := time.Now()
		closeness.Exact(g, c.workers)
		base := time.Since(start)
		c.record(metrics.Record{Experiment: "ext-closeness", Graph: ds.Name,
			Algorithm: "exact-bfs", Workers: c.workers,
			Verts: g.NumVertices(), Edges: g.NumEdges(), Wall: base, Speedup: 1})
		start = time.Now()
		if _, err := closeness.Decomposed(g, closeness.Options{Workers: c.workers, Threshold: c.threshold}); err != nil {
			return err
		}
		dec := time.Since(start)
		c.record(metrics.Record{Experiment: "ext-closeness", Graph: ds.Name,
			Algorithm: "decomposed", Workers: c.workers,
			Verts: g.NumVertices(), Edges: g.NumEdges(), Wall: dec,
			Speedup: metrics.Speedup(base, dec)})
		t.AddRow(ds.Name, base, dec, metrics.FormatSpeedup(metrics.Speedup(base, dec)))
	}
	t.Render(c.w())
	return nil
}

func extIncremental(c config) error {
	t := &metrics.Table{
		Title: "Extension E6. Incremental BC: 20 triadic edge updates",
		Headers: []string{"graph", "initial build", "per-update", "rebuilds",
			"full recompute (ref)"},
	}
	for _, name := range []string{"email-enron", "com-youtube"} {
		if !c.keepDataset(name) {
			continue
		}
		ds, err := dsByName(name)
		if err != nil {
			return err
		}
		g := ds.Build(c.scale)
		start := time.Now()
		inc, err := core.NewIncremental(g, core.Options{Threshold: c.threshold})
		if err != nil {
			return err
		}
		build := time.Since(start)
		r := rand.New(rand.NewSource(13))
		applied := 0
		start = time.Now()
		for applied < 20 {
			u := graph.V(r.Intn(g.NumVertices()))
			nbrs := inc.Graph().Out(u)
			if len(nbrs) == 0 {
				continue
			}
			hop := nbrs[r.Intn(len(nbrs))]
			nn := inc.Graph().Out(hop)
			if len(nn) == 0 {
				continue
			}
			v := nn[r.Intn(len(nn))]
			if u == v {
				continue
			}
			var opErr error
			if inc.Graph().HasArc(u, v) {
				opErr = inc.RemoveEdge(u, v)
			} else {
				opErr = inc.InsertEdge(u, v)
			}
			if opErr != nil {
				return opErr
			}
			applied++
		}
		stream := time.Since(start)
		start = time.Now()
		if _, err := core.Compute(inc.Graph(), core.Options{Threshold: c.threshold}); err != nil {
			return err
		}
		full := time.Since(start)
		ig := inc.Graph()
		c.record(metrics.Record{Experiment: "ext-incremental", Graph: name,
			Algorithm: "incremental-update", Workers: c.workers,
			Verts: ig.NumVertices(), Edges: ig.NumEdges(), Wall: stream / 20,
			Speedup: metrics.Speedup(full, stream/20)})
		c.record(metrics.Record{Experiment: "ext-incremental", Graph: name,
			Algorithm: "full-recompute", Workers: c.workers,
			Verts: ig.NumVertices(), Edges: ig.NumEdges(), Wall: full, Speedup: 1})
		t.AddRow(name, build, stream/20, inc.FullRebuilds(), full)
	}
	t.Render(c.w())
	return nil
}
