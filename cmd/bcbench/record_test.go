package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/metrics"
)

// runTinyTimings runs the Tables 2–3 sweep on the two tiny test datasets with
// recording enabled and returns the artifact path.
func runTinyTimings(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	c.rec = metrics.NewRecorder(c.scale, c.workers)
	if err := timings(c, map[string]bool{"t2": true, "t3": true}); err != nil {
		t.Fatal(err)
	}
	path, err := c.rec.WriteFile(filepath.Join(t.TempDir(), "bench.json"))
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func keysOf(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestJSONGoldenSchema pins the BENCH_*.json layout: the exact top-level
// keys, the exact keys of a measured record, and the exact breakdown keys.
// If this test fails, bump metrics.SchemaVersion and update the docs —
// downstream tooling parses these artifacts.
func TestJSONGoldenSchema(t *testing.T) {
	data, err := os.ReadFile(runTinyTimings(t))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}

	wantDoc := []string{"created_at", "go_version", "goarch", "goos",
		"max_procs", "records", "scale", "schema", "workers"}
	if got := keysOf(doc); !equalStrings(got, wantDoc) {
		t.Fatalf("document keys = %v, want %v", got, wantDoc)
	}
	if doc["schema"].(float64) != float64(metrics.SchemaVersion) {
		t.Fatalf("schema = %v", doc["schema"])
	}

	records := doc["records"].([]any)
	if len(records) == 0 {
		t.Fatal("no records")
	}
	wantRec := []string{"algorithm", "edges", "experiment", "graph", "mteps",
		"scale", "speedup_vs_serial", "verts", "wall_ns", "workers"}
	wantBD := []string{"alpha_beta_ns", "articulations", "partition_ns",
		"rest_bc_ns", "roots", "subgraphs", "top_bc_ns", "total_ns",
		"traversed_arcs"}
	var sawAPGRE bool
	for _, raw := range records {
		rec := raw.(map[string]any)
		got := keysOf(rec)
		switch rec["algorithm"] {
		case "apgre":
			sawAPGRE = true
			want := append([]string{"allocs_per_sweep", "breakdown", "traversed_arcs"}, wantRec...)
			sort.Strings(want)
			if !equalStrings(got, want) {
				t.Fatalf("apgre record keys = %v, want %v", got, want)
			}
			bd := rec["breakdown"].(map[string]any)
			if gotBD := keysOf(bd); !equalStrings(gotBD, wantBD) {
				t.Fatalf("breakdown keys = %v, want %v", gotBD, wantBD)
			}
		case "serial":
			if !equalStrings(got, wantRec) {
				t.Fatalf("serial record keys = %v, want %v", got, wantRec)
			}
		}
	}
	if !sawAPGRE {
		t.Fatal("no apgre record emitted")
	}
}

// TestJSONRecordsCoverTables pins the acceptance bar: one record per
// (graph, algorithm) cell of Tables 2–3 including the serial baseline, and
// the APGRE records carry a non-zero Breakdown.Total.
func TestJSONRecordsCoverTables(t *testing.T) {
	doc, err := metrics.ReadDocument(runTinyTimings(t))
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]metrics.Record{}
	for _, rec := range doc.Records {
		byKey[rec.Graph+"/"+rec.Algorithm] = rec
	}
	algos := []string{"serial", "apgre", "preds", "succs", "lockSyncFree", "async", "hybrid"}
	for _, graph := range []string{"email-enron", "usa-roadny"} {
		for _, algo := range algos {
			rec, ok := byKey[graph+"/"+algo]
			if !ok {
				t.Fatalf("missing record for %s/%s", graph, algo)
			}
			if rec.Unsupported {
				continue
			}
			if rec.Wall <= 0 {
				t.Errorf("%s/%s: non-positive wall time %v", graph, algo, rec.Wall)
			}
			if algo == "apgre" {
				if rec.Breakdown == nil || rec.Breakdown.Total <= 0 {
					t.Errorf("%s/apgre: missing or zero Breakdown.Total: %+v", graph, rec.Breakdown)
				}
				if rec.Breakdown != nil && rec.Breakdown.Total !=
					rec.Breakdown.Partition+rec.Breakdown.AlphaBeta+rec.Breakdown.TopBC+rec.Breakdown.RestBC {
					t.Errorf("%s/apgre: Total != phase sum: %+v", graph, rec.Breakdown)
				}
			}
		}
	}
}

// TestRunCheck drives the regression gate end-to-end: identical documents
// exit 0, a doctored wall-time regression exits 1, bad usage exits 2.
func TestRunCheck(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doctor func(*metrics.Record)) string {
		rec := metrics.NewRecorder(0.05, 1)
		r := metrics.Record{Experiment: "tables2-3", Graph: "email-enron",
			Algorithm: "apgre", Workers: 1, Scale: 0.05, Verts: 100, Edges: 400,
			Wall: 20 * time.Millisecond, MTEPS: 2, Speedup: 1.5,
			TraversedArcs: 5000}
		if doctor != nil {
			doctor(&r)
		}
		rec.Add(r)
		path, err := rec.WriteFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("old.json", nil)
	same := write("same.json", nil)
	slow := write("slow.json", func(r *metrics.Record) { r.Wall *= 2 })
	work := write("work.json", func(r *metrics.Record) { r.TraversedArcs *= 3 })

	if code := runCheck([]string{base, same}, 10); code != 0 {
		t.Fatalf("identical docs: exit %d, want 0", code)
	}
	if code := runCheck([]string{base, slow}, 10); code != 1 {
		t.Fatalf("doctored wall time: exit %d, want 1", code)
	}
	if code := runCheck([]string{base, work}, 10); code != 1 {
		t.Fatalf("doctored traversed arcs: exit %d, want 1", code)
	}
	if code := runCheck([]string{base}, 10); code != 2 {
		t.Fatalf("one arg: exit %d, want 2", code)
	}
	if code := runCheck([]string{base, filepath.Join(dir, "absent.json")}, 10); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
}

// TestApproxRecordRoundTrip pins the approximate-mode record fields: they
// survive the JSON round trip, stay omitted on exact records, and the key
// carries the pivot budget so a whole error-vs-speedup curve is addressable.
func TestApproxRecordRoundTrip(t *testing.T) {
	rec := metrics.NewRecorder(0.05, 1)
	rec.Add(metrics.Record{Experiment: "approx", Graph: "email-enron",
		Algorithm: "approx", Workers: 1, Scale: 0.05, Verts: 100, Edges: 400,
		Wall: 5 * time.Millisecond, Speedup: 4,
		Pivots: 20, MaxAbsErr: 0.012, KendallTau: 0.93})
	rec.Add(metrics.Record{Experiment: "approx", Graph: "email-enron",
		Algorithm: "apgre", Workers: 1, Scale: 0.05, Verts: 100, Edges: 400,
		Wall: 20 * time.Millisecond, Speedup: 1})
	path, err := rec.WriteFile(filepath.Join(t.TempDir(), "approx.json"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := metrics.ReadDocument(path)
	if err != nil {
		t.Fatal(err)
	}
	sampled, exact := doc.Records[0], doc.Records[1]
	if sampled.Pivots != 20 || sampled.MaxAbsErr != 0.012 || sampled.KendallTau != 0.93 {
		t.Fatalf("approx fields lost in round trip: %+v", sampled)
	}
	if sampled.Key() != "approx/email-enron/approx/p=1/k=20" {
		t.Fatalf("sampled key = %s", sampled.Key())
	}
	if exact.Key() != "approx/email-enron/apgre/p=1" {
		t.Fatalf("exact key = %s", exact.Key())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	exactRaw := raw["records"].([]any)[1].(map[string]any)
	for _, k := range []string{"pivots", "max_abs_err", "kendall_tau"} {
		if _, present := exactRaw[k]; present {
			t.Fatalf("exact record should omit %q: %v", k, keysOf(exactRaw))
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
