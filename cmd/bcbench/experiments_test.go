package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func tinyConfig(buf *bytes.Buffer) config {
	return config{
		scale:    0.05,
		workers:  1,
		datasets: map[string]bool{"email-enron": true, "usa-roadny": true},
		out:      buf,
	}
}

func countDataRows(out string) int {
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "email-enron") || strings.HasPrefix(line, "usa-roadny") {
			rows++
		}
	}
	return rows
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := table1(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 1") || countDataRows(out) != 2 {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// Paper sizes present.
	if !strings.Contains(out, "36692") {
		t.Fatal("paper vertex count missing")
	}
}

func TestTable4Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := table4(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	if countDataRows(buf.String()) != 2 {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestFigure2Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := figure2(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "human-disease") {
		t.Fatal("human disease row missing")
	}
	if countDataRows(out) != 2 {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestFigure7Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := figure7(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "effective") || countDataRows(out) != 2 {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// Undirected datasets must be analyzed exactly.
	if !strings.Contains(out, "exact") {
		t.Fatal("exact method missing")
	}
}

func TestTimingsRendersAllThree(t *testing.T) {
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	c.algos = map[string]bool{"apgre": true, "succs": true}
	if err := timings(c, map[string]bool{"t2": true, "t3": true, "f6": true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Table 3", "Figure 6", "apgre", "succs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	if strings.Contains(out, "preds") {
		t.Fatal("algo filter leaked preds into the table")
	}
}

func TestFigure8Renders(t *testing.T) {
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	c.datasets = map[string]bool{"usa-roadny": true}
	if err := figure8(c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "partition") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestSplitCSV(t *testing.T) {
	if splitCSV("") != nil {
		t.Fatal("empty string should give nil")
	}
	m := splitCSV("a, b ,c,,")
	if len(m) != 3 || !m["a"] || !m["b"] || !m["c"] {
		t.Fatalf("splitCSV = %v", m)
	}
}

func TestDatasetFilter(t *testing.T) {
	c := config{datasets: map[string]bool{"usa-roadny": true}}
	sel := c.selected()
	if len(sel) != 1 || sel[0].Name != "usa-roadny" {
		t.Fatalf("selected = %v", sel)
	}
	c2 := config{}
	if len(c2.selected()) != 12 {
		t.Fatal("nil filter should select all")
	}
}

func TestSchedulerExperimentRenders(t *testing.T) {
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	c.datasets = map[string]bool{"usa-roadny": true}
	c.rec = metrics.NewRecorder(c.scale, c.workers)
	if err := schedulerExperiment(c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Scheduler sweep", "static", "dynamic", "gain@8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	// 2 schedulers × 4 worker counts, every record tagged so static and
	// dynamic cells never collide under -check.
	doc := c.rec.Document()
	if len(doc.Records) != 8 {
		t.Fatalf("want 8 records, got %d", len(doc.Records))
	}
	keys := map[string]bool{}
	for _, r := range doc.Records {
		if r.Experiment != "scheduler" || r.Scheduler == "" {
			t.Fatalf("record missing scheduler tag: %+v", r)
		}
		if !strings.Contains(r.Key(), "/s="+r.Scheduler) {
			t.Fatalf("key lacks scheduler: %s", r.Key())
		}
		if keys[r.Key()] {
			t.Fatalf("duplicate key %s", r.Key())
		}
		keys[r.Key()] = true
		if r.Scheduler == "static" && r.Speedup != 1 {
			t.Fatalf("static baseline speedup = %v, want 1", r.Speedup)
		}
		if r.Scheduler == "dynamic" && r.Speedup <= 0 {
			t.Fatalf("dynamic record missing speedup vs static: %+v", r)
		}
		if r.Breakdown == nil || r.Breakdown.Total <= 0 {
			t.Fatalf("scheduler record missing breakdown: %+v", r)
		}
	}
}

func TestApproxExperimentRenders(t *testing.T) {
	var buf bytes.Buffer
	c := tinyConfig(&buf)
	c.rec = metrics.NewRecorder(c.scale, c.workers)
	if err := approxExperiment(c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "error vs speedup") || countDataRows(out) < 4 {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// Per dataset: one exact baseline record plus at least one sampled record
	// carrying the new fields.
	doc := c.rec.Document()
	sampled := 0
	for _, r := range doc.Records {
		if r.Experiment != "approx" {
			t.Fatalf("unexpected experiment %q", r.Experiment)
		}
		if r.Algorithm != "approx" {
			continue
		}
		sampled++
		if r.Pivots <= 0 || r.KendallTau == 0 {
			t.Fatalf("sampled record missing approx fields: %+v", r)
		}
		if !strings.Contains(r.Key(), "/k=") {
			t.Fatalf("sampled record key lacks pivot budget: %s", r.Key())
		}
	}
	if sampled < 2 {
		t.Fatalf("want sampled records for both datasets, got %d", sampled)
	}
}
