// Command bcbench regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic dataset stand-ins:
//
//	bcbench -table 1          # Table 1: the evaluation graphs
//	bcbench -table 2          # Table 2: execution time per algorithm
//	bcbench -table 3          # Table 3: search rate (MTEPS)
//	bcbench -table 4          # Table 4: decomposition shape
//	bcbench -figure 2         # Figure 2: articulation/leaf census
//	bcbench -figure 6         # Figure 6: speedup over serial
//	bcbench -figure 7         # Figure 7: redundancy breakdown
//	bcbench -figure 8         # Figure 8: APGRE time breakdown
//	bcbench -figure 9         # Figure 9: thread scaling, all algorithms
//	bcbench -figure 10        # Figure 10: APGRE thread scaling
//	bcbench -all              # everything, in paper order
//
// -scale multiplies dataset sizes (default 0.25 keeps a full -all run in
// minutes); -datasets and -algos filter; -workers sets the thread count for
// the fixed-thread tables (default GOMAXPROCS).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate paper Table N (1-4)")
		figure   = flag.Int("figure", 0, "regenerate paper Figure N (2, 6-10)")
		all      = flag.Bool("all", false, "run every table and figure")
		scale    = flag.Float64("scale", 0.25, "dataset size multiplier")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count for fixed-thread experiments")
		datasets = flag.String("datasets", "", "comma-separated dataset filter (default all)")
		algos    = flag.String("algos", "", "comma-separated algorithm filter (default all)")
		thresh   = flag.Int("threshold", 0, "APGRE decomposition threshold (0 = default)")
		ext      = flag.Bool("ext", false, "run the extension experiments (weighted, closeness, incremental)")
	)
	flag.Parse()

	cfg := config{
		scale:     *scale,
		workers:   *workers,
		threshold: *thresh,
		datasets:  splitCSV(*datasets),
		algos:     splitCSV(*algos),
	}

	run := func(name string, fn func(config) error) {
		if err := fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "bcbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	ran := false
	if *all || *table == 1 {
		run("table1", table1)
		ran = true
	}
	if *all || *table == 4 {
		run("table4", table4)
		ran = true
	}
	if *all || *figure == 2 {
		run("figure2", figure2)
		ran = true
	}
	if *all || *figure == 7 {
		run("figure7", figure7)
		ran = true
	}
	if *all || *table == 2 || *table == 3 || *figure == 6 {
		// One measurement sweep feeds Table 2, Table 3 and Figure 6.
		want := map[string]bool{
			"t2": *all || *table == 2,
			"t3": *all || *table == 3,
			"f6": *all || *figure == 6,
		}
		run("tables2-3+figure6", func(c config) error { return timings(c, want) })
		ran = true
	}
	if *all || *figure == 8 {
		run("figure8", figure8)
		ran = true
	}
	if *all || *figure == 9 {
		run("figure9", figure9)
		ran = true
	}
	if *all || *figure == 10 {
		run("figure10", figure10)
		ran = true
	}
	if *all || *ext {
		run("extensions", extensions)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func splitCSV(s string) map[string]bool {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	out := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out[p] = true
		}
	}
	return out
}
