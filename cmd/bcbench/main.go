// Command bcbench regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic dataset stand-ins:
//
//	bcbench -table 1          # Table 1: the evaluation graphs
//	bcbench -table 2          # Table 2: execution time per algorithm
//	bcbench -table 3          # Table 3: search rate (MTEPS)
//	bcbench -table 4          # Table 4: decomposition shape
//	bcbench -figure 2         # Figure 2: articulation/leaf census
//	bcbench -figure 6         # Figure 6: speedup over serial
//	bcbench -figure 7         # Figure 7: redundancy breakdown
//	bcbench -figure 8         # Figure 8: APGRE time breakdown
//	bcbench -figure 9         # Figure 9: thread scaling, all algorithms
//	bcbench -figure 10        # Figure 10: APGRE thread scaling
//	bcbench -approx           # approximate BC: error vs speedup sweep
//	bcbench -sched            # scheduler sweep: static vs dynamic units
//	bcbench -engine           # engine sweep: scalar vs msbfs batched sweeps
//	bcbench -all              # everything, in paper order
//
// -scale multiplies dataset sizes (default 0.25 keeps a full -all run in
// minutes); -datasets and -algos filter; -workers sets the thread count for
// the fixed-thread tables (default GOMAXPROCS).
//
// Machine-readable records and the regression gate:
//
//	bcbench -all -json .                        # also write BENCH_<stamp>.json
//	bcbench -check old.json new.json            # exit 1 on perf regressions
//	bcbench -check -tolerance 25 old.json new.json
//
// -json writes every timing result as a structured record (see
// internal/metrics.Document); -check compares two such documents and exits
// non-zero when wall time or traversed arcs grew beyond -tolerance percent.
//
// Profiling: -cpuprofile, -memprofile and -trace write the standard pprof/
// trace artifacts for the whole run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/metrics"
	"repro/internal/profiling"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate paper Table N (1-4)")
		figure     = flag.Int("figure", 0, "regenerate paper Figure N (2, 6-10)")
		all        = flag.Bool("all", false, "run every table and figure")
		scale      = flag.Float64("scale", 0.25, "dataset size multiplier")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count for fixed-thread experiments")
		datasets   = flag.String("datasets", "", "comma-separated dataset filter (default all)")
		algos      = flag.String("algos", "", "comma-separated algorithm filter (default all)")
		thresh     = flag.Int("threshold", 0, "APGRE decomposition threshold (0 = default)")
		ext        = flag.Bool("ext", false, "run the extension experiments (weighted, closeness, incremental)")
		approxExp  = flag.Bool("approx", false, "run the approximate-BC error-vs-speedup sweep")
		sched      = flag.Bool("sched", false, "run the static-vs-dynamic scheduler worker sweep")
		engineExp  = flag.Bool("engine", false, "run the scalar-vs-msbfs sweep-engine comparison")
		atscale    = flag.Bool("atscale", false, "run the at-scale load/scheduler/engine/approx profile (pair with -scale 100)")
		rootBudget = flag.Int("rootbudget", 256, "at-scale: total BFS-root budget per compute cell (0 = full exact)")
		graphDir   = flag.String("graphdir", "", "at-scale: cache generated .bin graphs here (default: fresh temp dir, removed)")
		loadprobe  = flag.String("loadprobe", "", "internal: load this .bin file, print one-line JSON load metrics, exit")
		loadmode   = flag.String("loadmode", "stream", "internal: loader for -loadprobe (inmem|stream|mmap)")
		jsonOut    = flag.String("json", "", "write a machine-readable BENCH_<stamp>.json to this file or directory")
		check      = flag.Bool("check", false, "compare two BENCH_*.json files (old new) and fail on regressions")
		tolerance  = flag.Float64("tolerance", 10, "allowed wall-time / traversed-arc growth for -check, in percent")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	// The load probe runs before anything else: it is the measurement child
	// the at-scale profile spawns per load cell, and must do nothing but load
	// and report (see atscale.go).
	if *loadprobe != "" {
		os.Exit(runLoadProbe(*loadprobe, *loadmode))
	}

	if *check {
		os.Exit(runCheck(flag.Args(), *tolerance))
	}

	prof, err := profiling.Start(*cpuprofile, *memprofile, *traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcbench: %v\n", err)
		os.Exit(1)
	}

	cfg := config{
		scale:      *scale,
		workers:    *workers,
		threshold:  *thresh,
		datasets:   splitCSV(*datasets),
		algos:      splitCSV(*algos),
		rootBudget: *rootBudget,
		graphDir:   *graphDir,
	}
	if *jsonOut != "" {
		cfg.rec = metrics.NewRecorder(*scale, *workers)
	}

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "bcbench: %s: %v\n", name, err)
		prof.Stop()
		os.Exit(1)
	}
	run := func(name string, fn func(config) error) {
		if err := fn(cfg); err != nil {
			fail(name, err)
		}
		fmt.Println()
	}

	ran := false
	if *all || *table == 1 {
		run("table1", table1)
		ran = true
	}
	if *all || *table == 4 {
		run("table4", table4)
		ran = true
	}
	if *all || *figure == 2 {
		run("figure2", figure2)
		ran = true
	}
	if *all || *figure == 7 {
		run("figure7", figure7)
		ran = true
	}
	if *all || *table == 2 || *table == 3 || *figure == 6 {
		// One measurement sweep feeds Table 2, Table 3 and Figure 6.
		want := map[string]bool{
			"t2": *all || *table == 2,
			"t3": *all || *table == 3,
			"f6": *all || *figure == 6,
		}
		run("tables2-3+figure6", func(c config) error { return timings(c, want) })
		ran = true
	}
	if *all || *figure == 8 {
		run("figure8", figure8)
		ran = true
	}
	if *all || *figure == 9 {
		run("figure9", figure9)
		ran = true
	}
	if *all || *figure == 10 {
		run("figure10", figure10)
		ran = true
	}
	if *all || *ext {
		run("extensions", extensions)
		ran = true
	}
	if *all || *approxExp {
		run("approx", approxExperiment)
		ran = true
	}
	if *all || *sched {
		run("scheduler", schedulerExperiment)
		ran = true
	}
	if *all || *engineExp {
		run("engine", engineExperiment)
		ran = true
	}
	// -atscale is deliberately NOT part of -all: it generates multi-million-
	// edge graphs and belongs to its own -scale 100 invocation (see
	// EXPERIMENTS.md "At-scale sweeps").
	if *atscale {
		run("atscale", atScaleExperiment)
		ran = true
	}
	if !ran {
		prof.Stop()
		flag.Usage()
		os.Exit(2)
	}
	if cfg.rec != nil {
		if cfg.rec.Len() == 0 {
			fmt.Fprintln(os.Stderr, "bcbench: -json set but the selected experiments produced no timing records")
		} else if path, err := cfg.rec.WriteFile(*jsonOut); err != nil {
			fail("json", err)
		} else {
			fmt.Printf("wrote %d benchmark records to %s\n", cfg.rec.Len(), path)
		}
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "bcbench: profiling: %v\n", err)
		os.Exit(1)
	}
}

// runCheck implements the regression gate: load old and new record documents,
// diff them, and report. Returns the process exit code (0 clean, 1 regressed,
// 2 usage/IO error).
func runCheck(args []string, tolerancePct float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "bcbench: -check needs exactly two arguments: old.json new.json")
		return 2
	}
	oldDoc, err := metrics.ReadDocument(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcbench: %v\n", err)
		return 2
	}
	newDoc, err := metrics.ReadDocument(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcbench: %v\n", err)
		return 2
	}
	regs, missing := metrics.Compare(oldDoc, newDoc, tolerancePct)
	for _, m := range missing {
		fmt.Fprintf(os.Stderr, "bcbench: warning: record coverage changed: %s\n", m)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "bcbench: %d regression(s) beyond %.1f%% tolerance:\n", len(regs), tolerancePct)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Printf("bcbench: no regressions (%d records compared, tolerance %.1f%%)\n",
		len(oldDoc.Records), tolerancePct)
	return 0
}

func splitCSV(s string) map[string]bool {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	out := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out[p] = true
		}
	}
	return out
}
