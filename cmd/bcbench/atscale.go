package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/decompose"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/metrics"
	"repro/internal/profiling"
)

// The at-scale profile re-runs the scheduler/engine/approx sweeps on graphs
// ~100× the size of the standard harness stand-ins — the band where the
// paper's own evaluation lives (10^5–10^7 edges) and where the dynamic
// scheduler, bottom-up σ-BFS and MS-BFS lanes are past their break-even
// points. Full exact BC is infeasible there (n root sweeps over 10^7 arcs),
// so every compute cell runs under core.Options.RootBudget: a deterministic
// proportional prefix of each sub-graph's roots, giving a Graph500-style
// sweep-throughput measurement that is bit-comparable across schedulers,
// engines and worker counts. Graphs are staged to .bin files so the load
// paths (in-memory rebuild vs streaming CSR vs mmap) are measured in fresh
// child processes whose peak RSS reflects only the load under test.

// scaleFamily is one at-scale benchmark graph: either a dataset stand-in
// built at the harness -scale, or a streamed generator sized from it.
type scaleFamily struct {
	name  string
	build func(c config) *graph.Graph
}

// rmatExponent sizes the streamed families: 2^e vertices with e chosen so
// the vertex count tracks ~10k·scale, clamped to [10, 22]. At the artifact
// scale of 100 this gives 2^20 vertices and (×edge factor 8, both arc
// directions) a ~1.6·10^7-arc undirected R-MAT.
func rmatExponent(scale float64) int {
	e := int(math.Round(math.Log2(10240 * math.Max(scale, 0.01))))
	if e < 10 {
		e = 10
	}
	if e > 22 {
		e = 22
	}
	return e
}

func atScaleFamilies(c config) []scaleFamily {
	e := rmatExponent(c.scale)
	fromDataset := func(name string) scaleFamily {
		return scaleFamily{name, func(c config) *graph.Graph {
			ds, err := datasets.ByName(name)
			if err != nil {
				panic(err)
			}
			return ds.Build(c.scale)
		}}
	}
	return []scaleFamily{
		// Two Table-1 stand-ins rebuilt at the at-scale multiplier: the
		// social family (huge leaf fold) and the road family (one giant
		// biconnected core). Undirected, so α/β uses the O(V+E) tree method
		// and preprocessing stays proportionate at a million vertices.
		fromDataset("com-youtube"),
		fromDataset("usa-roadbay"),
		// The streamed families generated chunk-parallel without edge lists:
		// a plain power-law R-MAT (undirected and directed) and the
		// composite with controlled AP/BCC census.
		{"rmat-stream", func(c config) *graph.Graph {
			return gen.BuildCSR(gen.RMATStream(e, 8, 0.57, 0.19, 0.19, false, 42), c.workers)
		}},
		{"rmat-stream-dir", func(c config) *graph.Graph {
			return gen.BuildCSR(gen.RMATStream(e-1, 8, 0.57, 0.19, 0.19, true, 44), c.workers)
		}},
		{"composite-stream", func(c config) *graph.Graph {
			return gen.BuildCSR(gen.CompositeStream(gen.CompositeParams{
				Cores: 8, CoreScale: e - 3, EdgeFactor: 8,
				A: 0.57, B: 0.19, C: 0.19,
				PeriphFrac: 0.25, ChainLen: 4, Seed: 43,
			}), c.workers)
		}},
	}
}

// loadProbe is the one-line JSON a `bcbench -loadprobe FILE -loadmode M`
// child prints: the load wall time and the process peak RSS attributable to
// that load alone, plus the CSR's resident size for the RSS ratio.
type loadProbe struct {
	Mode         string `json:"mode"`
	Verts        int    `json:"verts"`
	Arcs         int64  `json:"arcs"`
	LoadNs       int64  `json:"load_ns"`
	PeakRSSBytes int64  `json:"peak_rss_bytes"`
	CSRBytes     int64  `json:"csr_bytes"`
	ZeroCopy     bool   `json:"zero_copy"`
}

// runLoadProbe implements the hidden -loadprobe mode. It runs in a child
// process per (file, mode) cell so VmHWM is a clean per-load measurement —
// in-process it would be polluted by generation scratch and earlier loads.
func runLoadProbe(path, mode string) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "bcbench: loadprobe %s %s: %v\n", mode, path, err)
		return 1
	}
	start := time.Now()
	var g *graph.Graph
	var zero bool
	switch mode {
	case "inmem":
		f, err := os.Open(path)
		if err != nil {
			return fail(err)
		}
		g, err = graphio.ReadBinary(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
	case "stream":
		// The production path: LoadFile stats the file, so the streaming
		// reader preallocates the CSR at its verified final size.
		var err error
		g, err = graphio.LoadFile(path, graphio.FormatBinary, false)
		if err != nil {
			return fail(err)
		}
	case "mmap":
		m, err := graphio.MmapGraph(path)
		if err != nil {
			return fail(err)
		}
		g, zero = m.Graph, m.ZeroCopy
	default:
		fmt.Fprintf(os.Stderr, "bcbench: -loadmode must be inmem|stream|mmap, got %q\n", mode)
		return 2
	}
	el := time.Since(start)
	p := loadProbe{
		Mode:         mode,
		Verts:        g.NumVertices(),
		Arcs:         g.NumArcs(),
		LoadNs:       int64(el),
		PeakRSSBytes: profiling.PeakRSSBytes(),
		CSRBytes:     csrBytes(g),
		ZeroCopy:     zero,
	}
	if err := json.NewEncoder(os.Stdout).Encode(p); err != nil {
		return fail(err)
	}
	return 0
}

// csrBytes is the resident size of the CSR arrays themselves — the
// denominator of the acceptance bound "streamed/mmap peak RSS below ~2× the
// CSR's resident size".
func csrBytes(g *graph.Graph) int64 {
	return 8*int64(g.NumVertices()+1) + 4*g.NumArcs()
}

// probeLoad spawns this binary as a load probe and parses its JSON line.
func probeLoad(path, mode string) (loadProbe, error) {
	exe, err := os.Executable()
	if err != nil {
		return loadProbe{}, err
	}
	cmd := exec.Command(exe, "-loadprobe", path, "-loadmode", mode)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return loadProbe{}, fmt.Errorf("load probe %s: %w", mode, err)
	}
	var p loadProbe
	if err := json.Unmarshal(out, &p); err != nil {
		return loadProbe{}, fmt.Errorf("load probe %s: %w", mode, err)
	}
	return p, nil
}

// sameGraph compares two graphs arc-for-arc (the streamed-vs-mmap loader
// bit-equality check that rides along with every at-scale run).
func sameGraph(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() ||
		a.Directed() != b.Directed() {
		return false
	}
	for u := 0; u < a.NumVertices(); u++ {
		oa, ob := a.Out(int32(u)), b.Out(int32(u))
		if len(oa) != len(ob) {
			return false
		}
		for i := range oa {
			if oa[i] != ob[i] {
				return false
			}
		}
	}
	return true
}

// bcEquivalent checks two BC vectors agree within relative 1e-9 per vertex.
// The engines are bit-identical on the canonical small families (pinned by
// internal/core's engine tests), but at 10^5+ vertices the batched engine's
// different summation association accumulates ulp-level drift on a few
// vertices, so the at-scale gate is a tight relative tolerance rather than
// Float64bits equality.
func bcEquivalent(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		diff := math.Abs(a[i] - b[i])
		if diff > 1e-9 && diff > 1e-9*math.Max(math.Abs(a[i]), math.Abs(b[i])) {
			return false
		}
	}
	return true
}

// atScaleExperiment stages every family to a .bin, measures the three load
// paths in child processes, then runs the budgeted scheduler, engine and
// approx sweeps on the streamed graph. See the file comment for why the
// compute cells use RootBudget.
func atScaleExperiment(c config) error {
	dir := c.graphDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "bcbench-atscale")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	budget := c.rootBudget

	loadT := &metrics.Table{
		Title: fmt.Sprintf("At-scale load paths (scale %g). Child-process wall time and peak RSS per loader", c.scale),
		Headers: []string{"graph", "verts", "arcs", "csr MiB",
			"inmem", "rss", "stream", "rss", "mmap", "rss", "rss/csr", "zerocopy"},
	}
	schedT := &metrics.Table{
		Title:   fmt.Sprintf("At-scale scheduler sweep (root budget %d)", budget),
		Headers: []string{"graph", "scheduler", "p=1", fmt.Sprintf("p=%d", c.workers), "speedup", "gain vs static"},
	}
	engineT := &metrics.Table{
		Title:   fmt.Sprintf("At-scale engine sweep (root budget %d)", budget),
		Headers: []string{"graph", "engine", "p=1", fmt.Sprintf("p=%d", c.workers), "speedup", "gain vs scalar"},
	}
	approxT := &metrics.Table{
		Title:   fmt.Sprintf("At-scale approx throughput (%d pivots)", budget),
		Headers: []string{"graph", "p=1", fmt.Sprintf("p=%d", c.workers), "speedup"},
	}

	for _, fam := range atScaleFamilies(c) {
		if !c.keepDataset(fam.name) {
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("%s_s%g.bin", fam.name, c.scale))
		if _, err := os.Stat(path); err != nil {
			t0 := time.Now()
			g := fam.build(c)
			fmt.Fprintf(c.w(), "%s: generated %v in %s\n", fam.name, g, time.Since(t0).Round(time.Millisecond))
			if err := graphio.SaveFile(path, "", g); err != nil {
				return err
			}
		}

		// Load paths, one fresh child process per cell.
		probes := map[string]loadProbe{}
		for _, mode := range []string{"inmem", "stream", "mmap"} {
			p, err := probeLoad(path, mode)
			if err != nil {
				return err
			}
			probes[mode] = p
			c.record(metrics.Record{Experiment: "atscale-load", Graph: fam.name,
				Algorithm: "load-" + mode, Workers: 1,
				Verts: p.Verts, Edges: p.Arcs,
				LoadNs: time.Duration(p.LoadNs), PeakRSSBytes: p.PeakRSSBytes})
		}
		sp := probes["stream"]
		ratio := float64(maxI64(probes["stream"].PeakRSSBytes, probes["mmap"].PeakRSSBytes)) / float64(sp.CSRBytes)
		loadT.AddRow(fam.name, sp.Verts, sp.Arcs, fmt.Sprintf("%.0f", float64(sp.CSRBytes)/(1<<20)),
			metrics.FormatDuration(time.Duration(probes["inmem"].LoadNs)), fmtMiB(probes["inmem"].PeakRSSBytes),
			metrics.FormatDuration(time.Duration(probes["stream"].LoadNs)), fmtMiB(probes["stream"].PeakRSSBytes),
			metrics.FormatDuration(time.Duration(probes["mmap"].LoadNs)), fmtMiB(probes["mmap"].PeakRSSBytes),
			fmt.Sprintf("%.2f", ratio), fmt.Sprintf("%v", probes["mmap"].ZeroCopy))
		// The ~2x acceptance bound only means something once the CSR dwarfs
		// the Go runtime's own ~4 MiB baseline RSS; below that the ratio
		// mostly measures the runtime, not the loader.
		if ratio > 2 && sp.CSRBytes >= 16<<20 {
			fmt.Fprintf(c.w(), "WARNING: %s: streamed/mmap peak RSS is %.2fx the CSR size (bound: ~2x)\n", fam.name, ratio)
		}

		// The sweep graph comes from the streaming loader; the mmap loader
		// must agree arc-for-arc.
		g, err := graphio.LoadFile(path, "", false)
		if err != nil {
			return err
		}
		mapped, err := graphio.MmapGraph(path)
		if err != nil {
			return err
		}
		if !sameGraph(g, mapped.Graph) {
			return fmt.Errorf("%s: mmap and streamed loads disagree", fam.name)
		}
		if err := mapped.Close(); err != nil {
			return err
		}

		t0 := time.Now()
		d, err := decompose.Decompose(g, decompose.Options{Threshold: c.threshold, Workers: c.workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(c.w(), "%s: decomposed in %s (%d sub-graphs, %d boundary APs)\n",
			fam.name, time.Since(t0).Round(time.Millisecond), len(d.Subgraphs), d.NumArticulation)

		runCell := func(w int, sched core.Scheduler, eng core.RootEngine) ([]float64, core.Breakdown, time.Duration, error) {
			var bd core.Breakdown
			start := time.Now()
			bc, err := core.ComputeDecomposed(d, core.Options{Workers: w,
				Threshold: c.threshold, Scheduler: sched, RootEngine: eng,
				RootBudget: budget, Breakdown: &bd})
			return bc, bd, time.Since(start), err
		}

		// Worker columns for every sweep: p=1 always, p=workers when it is a
		// distinct cell (on the 1-proc container -workers 8 still runs — the
		// p=8 column then measures scheduling overhead under timesharing, the
		// same honest 1-core reading as EXPERIMENTS.md's Figure 9 discussion).
		pList := []int{1}
		if c.workers > 1 {
			pList = append(pList, c.workers)
		}

		// Scheduler sweep: static vs dynamic at p=1 and p=workers.
		static := map[int]time.Duration{}
		var dynWall map[int]time.Duration
		for _, sc := range []core.Scheduler{core.SchedulerStatic, core.SchedulerDynamic} {
			walls := map[int]time.Duration{}
			var row []any
			row = append(row, fam.name, sc.String())
			for _, w := range pList {
				_, bd, dur, err := runCell(w, sc, core.EngineScalar)
				if err != nil {
					return err
				}
				walls[w] = dur
				rec := metrics.Record{Experiment: "atscale-sched", Graph: fam.name,
					Algorithm: "apgre", Workers: w, Scheduler: sc.String(),
					Verts: g.NumVertices(), Edges: g.NumEdges(), Wall: dur,
					MTEPS:         metrics.MTEPS(g.NumVertices(), g.NumEdges(), dur),
					TraversedArcs: bd.TraversedArcs, Breakdown: breakdownRecord(bd)}
				if sc == core.SchedulerStatic {
					static[w] = dur
					rec.Speedup = 1
				} else {
					rec.Speedup = metrics.Speedup(static[w], dur)
				}
				c.record(rec)
				row = append(row, metrics.FormatDuration(dur))
			}
			pLast := pList[len(pList)-1]
			if len(pList) == 1 {
				row = append(row, "-", "-")
			} else {
				row = append(row, metrics.FormatSpeedup(metrics.Speedup(walls[1], walls[pLast])))
			}
			if sc == core.SchedulerDynamic {
				row = append(row, metrics.FormatSpeedup(metrics.Speedup(static[pLast], walls[pLast])))
				dynWall = walls
			} else {
				row = append(row, "-")
			}
			schedT.AddRow(row...)
		}
		// On a multi-proc host p=workers must actually win; on a 1-proc
		// container the honest bar is overhead neutrality — timesharing the
		// same root set across goroutines should cost no more than ~25%.
		if len(pList) > 1 {
			if procs := runtime.GOMAXPROCS(0); procs > 1 && dynWall[c.workers] >= dynWall[1] {
				fmt.Fprintf(c.w(), "WARNING: %s: p=%d (%s) not faster than p=1 (%s) under the dynamic scheduler\n",
					fam.name, c.workers, dynWall[c.workers], dynWall[1])
			} else if procs == 1 && float64(dynWall[c.workers]) > 1.25*float64(dynWall[1]) {
				fmt.Fprintf(c.w(), "WARNING: %s: p=%d dynamic-scheduler overhead %.2fx p=1 exceeds the 1.25x neutrality bound on this 1-proc host\n",
					fam.name, c.workers, float64(dynWall[c.workers])/float64(dynWall[1]))
			}
		}

		// Engine sweep: scalar vs msbfs, bit-verified against each other.
		scalarWall := map[int]time.Duration{}
		scalarBC := map[int][]float64{}
		for _, eng := range []core.RootEngine{core.EngineScalar, core.EngineMSBFS} {
			walls := map[int]time.Duration{}
			var row []any
			row = append(row, fam.name, eng.String())
			for _, w := range pList {
				bc, bd, dur, err := runCell(w, core.SchedulerDynamic, eng)
				if err != nil {
					return err
				}
				walls[w] = dur
				rec := metrics.Record{Experiment: "atscale-engine", Graph: fam.name,
					Algorithm: "apgre", Workers: w, Engine: eng.String(),
					Verts: g.NumVertices(), Edges: g.NumEdges(), Wall: dur,
					MTEPS:         metrics.MTEPS(g.NumVertices(), g.NumEdges(), dur),
					TraversedArcs: bd.TraversedArcs}
				if eng == core.EngineScalar {
					scalarWall[w] = dur
					scalarBC[w] = bc
					rec.Speedup = 1
				} else {
					rec.Speedup = metrics.Speedup(scalarWall[w], dur)
					if !bcEquivalent(bc, scalarBC[w]) {
						return fmt.Errorf("%s: msbfs BC differs from scalar at p=%d", fam.name, w)
					}
				}
				c.record(rec)
				row = append(row, metrics.FormatDuration(dur))
			}
			if len(pList) == 1 {
				row = append(row, "-", "-")
			} else {
				row = append(row, metrics.FormatSpeedup(metrics.Speedup(walls[1], walls[c.workers])))
			}
			if eng == core.EngineMSBFS {
				row = append(row, metrics.FormatSpeedup(metrics.Speedup(scalarWall[pList[len(pList)-1]], walls[pList[len(pList)-1]])))
			} else {
				row = append(row, "-")
			}
			engineT.AddRow(row...)
		}

		// Approx throughput: the sampled estimator at the same pivot budget.
		// No error columns at this size — there is no exact baseline to diff
		// against; the small-scale -approx sweep still owns the error story.
		approxWall := map[int]time.Duration{}
		for _, w := range pList {
			start := time.Now()
			res, err := approx.Estimate(g, approx.Options{Pivots: budget, Seed: 1,
				Workers: w, Threshold: c.threshold})
			if err != nil {
				return err
			}
			dur := time.Since(start)
			approxWall[w] = dur
			rec := metrics.Record{Experiment: "atscale-approx", Graph: fam.name,
				Algorithm: "approx", Workers: w, Pivots: res.Pivots,
				Verts: g.NumVertices(), Edges: g.NumEdges(), Wall: dur,
				MTEPS: metrics.MTEPS(g.NumVertices(), g.NumEdges(), dur)}
			if w == 1 {
				rec.Speedup = 1
			} else {
				rec.Speedup = metrics.Speedup(approxWall[1], dur)
			}
			c.record(rec)
		}
		if len(pList) == 1 {
			approxT.AddRow(fam.name, metrics.FormatDuration(approxWall[1]), "-", "-")
		} else {
			approxT.AddRow(fam.name,
				metrics.FormatDuration(approxWall[1]), metrics.FormatDuration(approxWall[c.workers]),
				metrics.FormatSpeedup(metrics.Speedup(approxWall[1], approxWall[c.workers])))
		}
	}

	loadT.Render(c.w())
	fmt.Fprintln(c.w())
	schedT.Render(c.w())
	fmt.Fprintln(c.w())
	engineT.Render(c.w())
	fmt.Fprintln(c.w())
	approxT.Render(c.w())
	return nil
}

func fmtMiB(b int64) string {
	return fmt.Sprintf("%.0fMiB", float64(b)/(1<<20))
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
