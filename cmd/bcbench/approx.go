package main

import (
	"fmt"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/metrics"
)

// approxFractions are the pivot budgets swept by the error-vs-speedup
// experiment, as fractions of n. Budgets below approxMinPivots are raised to
// it; budgets at or above n are skipped (they would just replay exact BC).
var approxFractions = []float64{0.01, 0.02, 0.05, 0.10, 0.20}

const approxMinPivots = 16

// approxSeed keeps the experiment reproducible run-to-run; the estimator's
// only nondeterminism is its sampling permutation.
const approxSeed = 1

// approxExperiment measures the sampled estimator against exact APGRE on
// every selected dataset: one exact baseline, then one estimator run per
// pivot budget. Error is reported on the normalized scale (max absolute
// deviation divided by (n-1)(n-2)), next to the estimator's own bootstrap
// CI half-width and the Kendall tau-b rank correlation of the two score
// vectors — ranking quality is what most approximate-BC consumers care
// about.
func approxExperiment(c config) error {
	t := &metrics.Table{
		Title: fmt.Sprintf("Approximate BC: error vs speedup on %d workers (scale=%v)", c.workers, c.scale),
		Headers: []string{"graph", "pivots", "frac", "wall", "speedup",
			"max|err| (norm)", "est err", "kendall tau"},
	}
	for _, ds := range c.selected() {
		if ds.Directed {
			// The estimator handles directed graphs, but the exact/approx
			// comparison is most informative on the undirected stand-ins the
			// paper's decomposition targets; keep them and skip the rest when
			// no explicit dataset filter is set.
			if c.datasets == nil {
				continue
			}
		}
		g := ds.Build(c.scale)
		n := g.NumVertices()

		start := time.Now()
		exact, err := core.Compute(g, core.Options{Workers: c.workers, Threshold: c.threshold})
		if err != nil {
			return err
		}
		exactWall := time.Since(start)
		c.record(metrics.Record{Experiment: "approx", Graph: ds.Name,
			Algorithm: "apgre", Workers: c.workers, Verts: n, Edges: g.NumEdges(),
			Wall: exactWall, MTEPS: metrics.MTEPS(n, g.NumEdges(), exactWall), Speedup: 1})
		t.AddRow(ds.Name, n, "1.00", metrics.FormatDuration(exactWall), "1.0x", "0", "0", "1.000")

		norm := 1.0
		if n > 2 {
			norm = 1 / (float64(n-1) * float64(n-2))
		}
		lastPivots := -1
		for _, frac := range approxFractions {
			k := int(frac * float64(n))
			if k < approxMinPivots {
				k = approxMinPivots
			}
			if k >= n {
				continue
			}
			start = time.Now()
			res, err := approx.Estimate(g, approx.Options{Pivots: k, Seed: approxSeed,
				Workers: c.workers, Threshold: c.threshold})
			if err != nil {
				return err
			}
			wall := time.Since(start)
			// Small budgets can all land on the estimator's floor (presolve
			// plus two minimal batches); identical pivot counts mean an
			// identical seeded run, so keep only the first.
			if res.Pivots == lastPivots {
				continue
			}
			lastPivots = res.Pivots

			maxErr := 0.0
			for v := range exact {
				if d := res.BC[v] - exact[v]; d > maxErr {
					maxErr = d
				} else if -d > maxErr {
					maxErr = -d
				}
			}
			maxErr *= norm
			tau := metrics.KendallTau(exact, res.BC, approxSeed)
			c.record(metrics.Record{Experiment: "approx", Graph: ds.Name,
				Algorithm: "approx", Workers: c.workers, Verts: n, Edges: g.NumEdges(),
				Wall: wall, Speedup: metrics.Speedup(exactWall, wall),
				Pivots: res.Pivots, MaxAbsErr: maxErr, KendallTau: tau})
			t.AddRow(ds.Name, res.Pivots, fmt.Sprintf("%.2f", float64(res.Pivots)/float64(n)),
				metrics.FormatDuration(wall), metrics.FormatSpeedup(metrics.Speedup(exactWall, wall)),
				fmt.Sprintf("%.3g", maxErr), estErrCell(res),
				fmt.Sprintf("%.3f", tau))
		}
	}
	t.Render(c.w())
	return nil
}

// estErrCell renders the estimator's self-reported error; "-" when too few
// batches were taken to bootstrap one (the +Inf sentinel).
func estErrCell(res *approx.Result) string {
	if res.Exact {
		return "0"
	}
	if res.ErrEstimate != res.ErrEstimate || res.ErrEstimate > 1e300 {
		return "-"
	}
	return fmt.Sprintf("%.3g", res.ErrEstimate)
}
