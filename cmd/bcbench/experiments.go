package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/bcc"
	"repro/internal/brandes"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/decompose"
	"repro/internal/graph"
	"repro/internal/metrics"
)

type config struct {
	scale      float64
	workers    int
	threshold  int
	datasets   map[string]bool
	algos      map[string]bool
	rootBudget int               // -atscale: total BFS-root budget per compute cell
	graphDir   string            // -atscale: where generated .bin graphs are cached
	out        io.Writer         // defaults to os.Stdout in main; injectable in tests
	rec        *metrics.Recorder // nil unless -json is set; Recorder no-ops on nil
}

func (c config) w() io.Writer {
	if c.out != nil {
		return c.out
	}
	return os.Stdout
}

// record emits one machine-readable benchmark record alongside the text
// tables (nil recorder → no-op).
func (c config) record(rec metrics.Record) {
	if rec.Scale == 0 {
		rec.Scale = c.scale
	}
	c.rec.Add(rec)
}

// breakdownRecord converts core's instrumentation into the serializable
// mirror type (internal/metrics does not import internal/core).
func breakdownRecord(bd core.Breakdown) *metrics.PhaseBreakdown {
	return &metrics.PhaseBreakdown{
		Partition:     bd.Partition,
		AlphaBeta:     bd.AlphaBeta,
		TopBC:         bd.TopBC,
		RestBC:        bd.RestBC,
		Total:         bd.Total,
		TraversedArcs: bd.TraversedArcs,
		Roots:         bd.Roots,
		Subgraphs:     bd.Subgraphs,
		Articulations: bd.Articulations,
	}
}

func (c config) keepDataset(name string) bool {
	return c.datasets == nil || c.datasets[name]
}

func (c config) keepAlgo(name string) bool {
	return c.algos == nil || c.algos[name]
}

func dsByName(name string) (datasets.Dataset, error) { return datasets.ByName(name) }

func (c config) selected() []datasets.Dataset {
	var out []datasets.Dataset
	for _, d := range datasets.All() {
		if c.keepDataset(d.Name) {
			out = append(out, d)
		}
	}
	return out
}

// table1 prints the evaluation graphs: paper sizes and generated stand-in
// sizes at the current scale.
func table1(c config) error {
	t := &metrics.Table{
		Title:   "Table 1. Evaluation graphs (synthetic stand-ins, scale=" + fmt.Sprint(c.scale) + ")",
		Headers: []string{"graph", "paper|V|", "paper|E|", "dir", "gen|V|", "gen|E|", "description"},
	}
	for _, d := range c.selected() {
		g := d.Build(c.scale)
		dir := "N"
		if d.Directed {
			dir = "Y"
		}
		t.AddRow(d.Name, d.PaperVerts, d.PaperEdges, dir, g.NumVertices(), g.NumEdges(), d.Description)
	}
	t.Render(c.w())
	return nil
}

// table4 prints the decomposition shape: sub-graph count and the top three
// sub-graphs' sizes with their share of the whole graph.
func table4(c config) error {
	t := &metrics.Table{
		Title: "Table 4. Size of sub-graphs (top three)",
		Headers: []string{"graph", "#SG", "#AP", "top V", "top E", "V/G.V", "E/G.E",
			"2nd V", "2nd E", "3rd V", "3rd E"},
	}
	for _, ds := range c.selected() {
		g := ds.Build(c.scale)
		d, err := decompose.Decompose(g, decompose.Options{Threshold: c.threshold, Workers: c.workers})
		if err != nil {
			return err
		}
		sizes := d.SubgraphSizes()
		get := func(i int) (int, int64) {
			if i < len(sizes) {
				return sizes[i].Verts, sizes[i].Arcs / arcDiv(g)
			}
			return 0, 0
		}
		v0, e0 := get(0)
		v1, e1 := get(1)
		v2, e2 := get(2)
		t.AddRow(ds.Name, len(d.Subgraphs), d.NumArticulation, v0, e0,
			metrics.Percent(float64(v0)/float64(g.NumVertices())),
			metrics.Percent(float64(e0*arcDiv(g))/float64(g.NumArcs())),
			v1, e1, v2, e2)
	}
	t.Render(c.w())
	return nil
}

// arcDiv converts arcs to logical edges for reporting.
func arcDiv(g *graph.Graph) int64 {
	if g.Directed() {
		return 1
	}
	return 2
}

// figure2 prints the motivation census: articulation points and single-edge
// vertices per graph, plus the Human Disease Network stand-in.
func figure2(c config) error {
	t := &metrics.Table{
		Title:   "Figure 2. Articulation points and single-edge vertices",
		Headers: []string{"graph", "|V|", "|E|", "#articulation", "AP%", "#degree-1", "deg1%"},
	}
	row := func(name string, g *graph.Graph) {
		aps, deg1 := bcc.CountArticulationPoints(g)
		n := float64(g.NumVertices())
		t.AddRow(name, g.NumVertices(), g.NumEdges(), aps, metrics.Percent(float64(aps)/n),
			deg1, metrics.Percent(float64(deg1)/n))
	}
	hd, hg := datasets.HumanDisease()
	row(hd.Name, hg)
	for _, d := range c.selected() {
		row(d.Name, d.Build(c.scale))
	}
	t.Render(c.w())
	return nil
}

// figure7 prints the redundancy breakdown of Brandes' work.
func figure7(c config) error {
	t := &metrics.Table{
		Title:   "Figure 7. Breakdown of BC computation (share of Brandes' work)",
		Headers: []string{"graph", "effective", "partial-redundant", "total-redundant", "method"},
	}
	for _, ds := range c.selected() {
		g := ds.Build(c.scale)
		d, err := decompose.Decompose(g, decompose.Options{Threshold: c.threshold, Workers: c.workers})
		if err != nil {
			return err
		}
		rep := core.AnalyzeRedundancy(g, d, 0, 1)
		method := "exact"
		if rep.Sampled {
			method = "sampled"
		}
		t.AddRow(ds.Name, metrics.Percent(rep.Effective), metrics.Percent(rep.Partial),
			metrics.Percent(rep.Total), method)
	}
	t.Render(c.w())
	return nil
}

// algoRunner runs one named algorithm, returning scores (ignored) and an
// "unsupported" flag mirroring the paper's "-" table entries. bd is filled
// with phase instrumentation by the algorithms that support it (APGRE); the
// baselines ignore it.
type algoRunner struct {
	name string
	run  func(g *graph.Graph, workers, threshold int, bd *core.Breakdown) ([]float64, error)
}

func runners() []algoRunner {
	return []algoRunner{
		{"apgre", func(g *graph.Graph, w, th int, bd *core.Breakdown) ([]float64, error) {
			return core.Compute(g, core.Options{Workers: w, Threshold: th, Breakdown: bd})
		}},
		{"preds", func(g *graph.Graph, w, _ int, _ *core.Breakdown) ([]float64, error) { return brandes.Preds(g, w), nil }},
		{"succs", func(g *graph.Graph, w, _ int, _ *core.Breakdown) ([]float64, error) { return brandes.Succs(g, w), nil }},
		{"lockSyncFree", func(g *graph.Graph, w, _ int, _ *core.Breakdown) ([]float64, error) {
			return brandes.LockSyncFree(g, w), nil
		}},
		{"async", func(g *graph.Graph, w, _ int, _ *core.Breakdown) ([]float64, error) { return brandes.Async(g, w) }},
		{"hybrid", func(g *graph.Graph, w, _ int, _ *core.Breakdown) ([]float64, error) { return brandes.Hybrid(g, w), nil }},
	}
}

// timings runs serial Brandes plus every algorithm on every dataset once and
// prints whichever of Table 2 (seconds), Table 3 (MTEPS) and Figure 6
// (speedups) were requested.
func timings(c config, want map[string]bool) error {
	type meas struct {
		name    string
		n       int
		m       int64
		serial  time.Duration
		algo    map[string]time.Duration
		missing map[string]bool
	}
	var res []meas
	rs := runners()
	for _, ds := range c.selected() {
		g := ds.Build(c.scale)
		m := meas{name: ds.Name, n: g.NumVertices(), m: g.NumEdges(),
			algo: map[string]time.Duration{}, missing: map[string]bool{}}
		start := time.Now()
		brandes.Serial(g)
		m.serial = time.Since(start)
		c.record(metrics.Record{Experiment: "tables2-3", Graph: ds.Name,
			Algorithm: "serial", Workers: 1, Verts: m.n, Edges: m.m,
			Wall: m.serial, MTEPS: metrics.MTEPS(m.n, m.m, m.serial), Speedup: 1})
		for _, r := range rs {
			if !c.keepAlgo(r.name) {
				continue
			}
			var bd core.Breakdown
			var ms0 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start = time.Now()
			_, err := r.run(g, c.workers, c.threshold, &bd)
			if err != nil {
				m.missing[r.name] = true // e.g. async on directed graphs
				c.record(metrics.Record{Experiment: "tables2-3", Graph: ds.Name,
					Algorithm: r.name, Workers: c.workers, Verts: m.n, Edges: m.m,
					Unsupported: true})
				continue
			}
			d := time.Since(start)
			m.algo[r.name] = d
			rec := metrics.Record{Experiment: "tables2-3", Graph: ds.Name,
				Algorithm: r.name, Workers: c.workers, Verts: m.n, Edges: m.m,
				Wall: d, MTEPS: metrics.MTEPS(m.n, m.m, d),
				Speedup: metrics.Speedup(m.serial, d)}
			if r.name == "apgre" {
				rec.Breakdown = breakdownRecord(bd)
				rec.TraversedArcs = bd.TraversedArcs
				if bd.Roots > 0 {
					// Mallocs delta per root sweep: the workspace arena
					// should keep this near zero once warm (a -check against
					// an older artifact flags allocation regressions).
					var ms1 runtime.MemStats
					runtime.ReadMemStats(&ms1)
					rec.AllocsPerSweep = float64(ms1.Mallocs-ms0.Mallocs) / float64(bd.Roots)
				}
			}
			c.record(rec)
		}
		res = append(res, m)
	}

	headers := []string{"graph", "serial"}
	for _, r := range rs {
		if c.keepAlgo(r.name) {
			headers = append(headers, r.name)
		}
	}
	cell := func(m meas, name string, f func(meas, time.Duration) string) string {
		if m.missing[name] {
			return "-"
		}
		d, ok := m.algo[name]
		if !ok {
			return "-"
		}
		return f(m, d)
	}

	if want["t2"] {
		t := &metrics.Table{
			Title:   fmt.Sprintf("Table 2. Execution time on %d workers (scale=%v)", c.workers, c.scale),
			Headers: headers,
		}
		for _, m := range res {
			row := []any{m.name, metrics.FormatDuration(m.serial)}
			for _, r := range rs {
				if c.keepAlgo(r.name) {
					row = append(row, cell(m, r.name, func(m meas, d time.Duration) string {
						return metrics.FormatDuration(d)
					}))
				}
			}
			t.AddRow(row...)
		}
		t.Render(c.w())
		fmt.Fprintln(c.w())
	}
	if want["t3"] {
		t := &metrics.Table{
			Title:   fmt.Sprintf("Table 3. Search rate in MTEPS (n·m/t) on %d workers", c.workers),
			Headers: headers,
		}
		for _, m := range res {
			row := []any{m.name, metrics.FormatMTEPS(metrics.MTEPS(m.n, m.m, m.serial))}
			for _, r := range rs {
				if c.keepAlgo(r.name) {
					row = append(row, cell(m, r.name, func(m meas, d time.Duration) string {
						return metrics.FormatMTEPS(metrics.MTEPS(m.n, m.m, d))
					}))
				}
			}
			t.AddRow(row...)
		}
		t.Render(c.w())
		fmt.Fprintln(c.w())
	}
	if want["f6"] {
		t := &metrics.Table{
			Title:   "Figure 6. Speedup relative to serial Brandes",
			Headers: headers[:1:1],
		}
		t.Headers = append(t.Headers, headers[2:]...) // drop the serial column
		for _, m := range res {
			row := []any{m.name}
			for _, r := range rs {
				if c.keepAlgo(r.name) {
					row = append(row, cell(m, r.name, func(m meas, d time.Duration) string {
						return metrics.FormatSpeedup(metrics.Speedup(m.serial, d))
					}))
				}
			}
			t.AddRow(row...)
		}
		t.Render(c.w())
	}
	return nil
}

// figure8 prints APGRE's execution time breakdown.
func figure8(c config) error {
	t := &metrics.Table{
		Title: fmt.Sprintf("Figure 8. APGRE execution time breakdown on %d workers", c.workers),
		Headers: []string{"graph", "partition", "alpha/beta", "bc(top)", "bc(rest)",
			"extra%", "total"},
	}
	for _, ds := range c.selected() {
		g := ds.Build(c.scale)
		var bd core.Breakdown
		start := time.Now()
		if _, err := core.Compute(g, core.Options{Workers: c.workers,
			Threshold: c.threshold, Breakdown: &bd}); err != nil {
			return err
		}
		c.record(metrics.Record{Experiment: "figure8", Graph: ds.Name,
			Algorithm: "apgre", Workers: c.workers,
			Verts: g.NumVertices(), Edges: g.NumEdges(), Wall: time.Since(start),
			TraversedArcs: bd.TraversedArcs, Breakdown: breakdownRecord(bd)})
		extra := float64(bd.Partition+bd.AlphaBeta) / float64(bd.Total)
		t.AddRow(ds.Name, bd.Partition, bd.AlphaBeta, bd.TopBC, bd.RestBC,
			metrics.Percent(extra), bd.Total)
	}
	t.Render(c.w())
	return nil
}

// figure9 sweeps worker counts for every algorithm on the dblp stand-in.
func figure9(c config) error {
	ds, err := datasets.ByName("dblp-2010")
	if err != nil {
		return err
	}
	g := ds.Build(c.scale)
	sweep := []int{1, 2, 4, 6, 8, 12}
	t := &metrics.Table{
		Title:   fmt.Sprintf("Figure 9. Parallel scaling on %s (%d vertices, %d edges)", ds.Name, g.NumVertices(), g.NumEdges()),
		Headers: append([]string{"algorithm"}, workerHeaders(sweep)...),
	}
	for _, r := range runners() {
		if !c.keepAlgo(r.name) {
			continue
		}
		row := []any{r.name}
		for _, w := range sweep {
			var bd core.Breakdown
			start := time.Now()
			if _, err := r.run(g, w, c.threshold, &bd); err != nil {
				row = append(row, "-")
				c.record(metrics.Record{Experiment: "figure9", Graph: ds.Name,
					Algorithm: r.name, Workers: w, Verts: g.NumVertices(),
					Edges: g.NumEdges(), Unsupported: true})
				continue
			}
			d := time.Since(start)
			rec := metrics.Record{Experiment: "figure9", Graph: ds.Name,
				Algorithm: r.name, Workers: w, Verts: g.NumVertices(),
				Edges: g.NumEdges(), Wall: d,
				MTEPS: metrics.MTEPS(g.NumVertices(), g.NumEdges(), d)}
			if r.name == "apgre" {
				rec.Breakdown = breakdownRecord(bd)
				rec.TraversedArcs = bd.TraversedArcs
			}
			c.record(rec)
			row = append(row, metrics.FormatDuration(d))
		}
		t.AddRow(row...)
	}
	t.Render(c.w())
	return nil
}

// figure10 sweeps APGRE worker counts up to 32 on the two largest stand-ins.
func figure10(c config) error {
	sweep := []int{1, 2, 4, 8, 16, 24, 32}
	t := &metrics.Table{
		Title:   "Figure 10. APGRE scaling to 32 workers",
		Headers: append([]string{"graph"}, workerHeaders(sweep)...),
	}
	for _, name := range []string{"wiki-talk", "com-youtube"} {
		if !c.keepDataset(name) {
			continue
		}
		ds, err := datasets.ByName(name)
		if err != nil {
			return err
		}
		g := ds.Build(c.scale)
		row := []any{name}
		for _, w := range sweep {
			var bd core.Breakdown
			start := time.Now()
			if _, err := core.Compute(g, core.Options{Workers: w,
				Threshold: c.threshold, Breakdown: &bd}); err != nil {
				return err
			}
			d := time.Since(start)
			c.record(metrics.Record{Experiment: "figure10", Graph: name,
				Algorithm: "apgre", Workers: w, Verts: g.NumVertices(),
				Edges: g.NumEdges(), Wall: d,
				MTEPS:         metrics.MTEPS(g.NumVertices(), g.NumEdges(), d),
				TraversedArcs: bd.TraversedArcs, Breakdown: breakdownRecord(bd)})
			row = append(row, metrics.FormatDuration(d))
		}
		t.AddRow(row...)
	}
	t.Render(c.w())
	return nil
}

// schedulerExperiment sweeps worker counts under both work-distribution
// schemes — the legacy static phase-A/phase-B split and the cost-ordered
// dynamic unit scheduler (core.SchedulerDynamic) — on every selected dataset.
// It is the Figure 9 analogue for the scheduler itself: the dynamic row's
// speedup column is measured against the static scheduler at the same worker
// count, so the BENCH record directly certifies the scheduler win.
func schedulerExperiment(c config) error {
	sweep := []int{1, 2, 4, 8}
	t := &metrics.Table{
		Title:   "Scheduler sweep. APGRE static vs dynamic unit scheduler",
		Headers: append([]string{"graph", "scheduler"}, append(workerHeaders(sweep), "gain@8")...),
	}
	scheds := []struct {
		name string
		s    core.Scheduler
	}{
		{core.SchedulerStatic.String(), core.SchedulerStatic},
		{core.SchedulerDynamic.String(), core.SchedulerDynamic},
	}
	for _, ds := range c.selected() {
		g := ds.Build(c.scale)
		static := map[int]time.Duration{}
		for _, sc := range scheds {
			row := []any{ds.Name, sc.name}
			var gain string
			for _, w := range sweep {
				var bd core.Breakdown
				start := time.Now()
				if _, err := core.Compute(g, core.Options{Workers: w,
					Threshold: c.threshold, Scheduler: sc.s, Breakdown: &bd}); err != nil {
					return err
				}
				d := time.Since(start)
				rec := metrics.Record{Experiment: "scheduler", Graph: ds.Name,
					Algorithm: "apgre", Workers: w, Scheduler: sc.name,
					Verts: g.NumVertices(), Edges: g.NumEdges(), Wall: d,
					MTEPS:         metrics.MTEPS(g.NumVertices(), g.NumEdges(), d),
					TraversedArcs: bd.TraversedArcs, Breakdown: breakdownRecord(bd)}
				if sc.s == core.SchedulerStatic {
					static[w] = d
					rec.Speedup = 1
				} else {
					rec.Speedup = metrics.Speedup(static[w], d)
					if w == 8 {
						gain = metrics.FormatSpeedup(rec.Speedup)
					}
				}
				c.record(rec)
				row = append(row, metrics.FormatDuration(d))
			}
			if gain == "" {
				gain = "-"
			}
			t.AddRow(append(row, gain)...)
		}
	}
	t.Render(c.w())
	return nil
}

// engineExperiment sweeps the root-sweep kernel — the scalar one-root-per-
// sweep baseline vs the bit-parallel multi-source batched engine
// (core.EngineMSBFS) — at serial and the harness worker count on every
// selected dataset. The decomposition is built once per graph and kept out of
// the timed region, so the MTEPS column isolates the sweep kernels
// themselves; the msbfs row's speedup column is measured against the scalar
// engine at the same worker count, so the BENCH record directly certifies the
// batching win. Every msbfs cell is also checked bit-for-bit against the
// scalar result at the same worker count — the engine-equivalence contract
// rides along with each benchmark run instead of living only in unit tests.
func engineExperiment(c config) error {
	sweep := []int{1, c.workers}
	if c.workers <= 1 {
		sweep = []int{1}
	}
	engines := []core.RootEngine{core.EngineScalar, core.EngineMSBFS}
	t := &metrics.Table{
		Title:   "Engine sweep. APGRE scalar vs bit-parallel msbfs sweeps",
		Headers: append([]string{"graph", "engine"}, append(workerHeaders(sweep), "gain")...),
	}
	for _, ds := range c.selected() {
		g := ds.Build(c.scale)
		d, err := decompose.Decompose(g, decompose.Options{
			Threshold: c.threshold, Workers: c.workers})
		if err != nil {
			return err
		}
		scalarWall := map[int]time.Duration{}
		scalarBC := map[int][]float64{}
		for _, eng := range engines {
			row := []any{ds.Name, eng.String()}
			var gain string
			for _, w := range sweep {
				// Best-of-N with an adaptive N: sub-millisecond cells are
				// noise-dominated in one shot, so repeat until ~150ms of
				// total measurement (capped at 20 reps) and keep the
				// fastest run. The work is deterministic, so the fastest
				// run is the least-perturbed measurement of the same
				// computation — the 2× claim should not hinge on scheduler
				// jitter.
				var bd core.Breakdown
				var bc []float64
				var dur time.Duration
				for rep, spent := 0, time.Duration(0); rep == 0 || (spent < 150*time.Millisecond && rep < 20); rep++ {
					var repBd core.Breakdown
					start := time.Now()
					repBC, err := core.ComputeDecomposed(d, core.Options{Workers: w,
						Threshold: c.threshold, RootEngine: eng, Breakdown: &repBd})
					if err != nil {
						return err
					}
					el := time.Since(start)
					spent += el
					if rep == 0 || el < dur {
						dur, bc, bd = el, repBC, repBd
					}
				}
				rec := metrics.Record{Experiment: "engine", Graph: ds.Name,
					Algorithm: "apgre", Workers: w, Engine: eng.String(),
					Verts: g.NumVertices(), Edges: g.NumEdges(), Wall: dur,
					MTEPS:         metrics.MTEPS(g.NumVertices(), g.NumEdges(), dur),
					TraversedArcs: bd.TraversedArcs}
				if eng == core.EngineScalar {
					scalarWall[w] = dur
					scalarBC[w] = bc
					rec.Speedup = 1
				} else {
					rec.Speedup = metrics.Speedup(scalarWall[w], dur)
					if w == sweep[len(sweep)-1] {
						gain = metrics.FormatSpeedup(rec.Speedup)
					}
					for v := range bc {
						if math.Float64bits(bc[v]) != math.Float64bits(scalarBC[w][v]) {
							return fmt.Errorf("engine sweep: %s p=%d vertex %d: msbfs %v != scalar %v",
								ds.Name, w, v, bc[v], scalarBC[w][v])
						}
					}
				}
				c.record(rec)
				row = append(row, metrics.FormatDuration(dur))
			}
			if gain == "" {
				gain = "-"
			}
			t.AddRow(append(row, gain)...)
		}
	}
	t.Render(c.w())
	return nil
}

func workerHeaders(sweep []int) []string {
	out := make([]string, len(sweep))
	for i, w := range sweep {
		out[i] = fmt.Sprintf("p=%d", w)
	}
	return out
}
